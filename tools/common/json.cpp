#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace manet::json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string& err) : s_(text), err_(err) {}

  bool parse(Value& out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::string& err_;

  bool fail(const std::string& what) {
    err_ = "JSON parse error (line " + std::to_string(line_) + "): " + what;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      if (s_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool value(Value& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    out.line = line_;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = Value::Kind::kString; return string(out.str);
      case 't': return keyword("true", out, Value::Kind::kBool, true);
      case 'f': return keyword("false", out, Value::Kind::kBool, false);
      case 'n': return keyword("null", out, Value::Kind::kNull, false);
      default: return number(out);
    }
  }

  bool keyword(std::string_view word, Value& out, Value::Kind kind, bool b) {
    if (s_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    out.kind = kind;
    out.boolean = b;
    return true;
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number '" + token + "'");
    out.kind = Value::Kind::kNumber;
    return true;
  }

  bool string(std::string& out) {
    if (!eat('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\n') ++line_;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Names in our artifacts are ASCII; decode BMP escapes to UTF-8 so
          // the parser never silently corrupts a name it must match later.
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool array(Value& out) {
    if (!eat('[')) return fail("expected array");
    out.kind = Value::Kind::kArray;
    if (eat(']')) return true;
    for (;;) {
      Value v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool object(Value& out) {
    if (!eat('{')) return fail("expected object");
    out.kind = Value::Kind::kObject;
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      const int key_line = line_;
      std::string key;
      if (!string(key)) return false;
      if (!eat(':')) return fail("expected ':' after object key");
      Value v;
      if (!value(v)) return false;
      // A scalar's own line is where it starts; for error reporting the key's
      // line is the more useful anchor, and they differ only in odd layouts.
      if (v.line == 0) v.line = key_line;
      out.object.emplace_back(std::move(key), std::move(v));
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}' in object");
    }
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* Value::kind_name(Kind k) {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

bool parse(std::string_view text, Value& out, std::string& err) {
  return Parser(text, err).parse(out);
}

void escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

std::string escaped(std::string_view s) {
  std::ostringstream os;
  escape(os, s);
  return os.str();
}

bool read_file(const std::filesystem::path& p, std::string& out, std::string& err) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    err = "cannot read " + p.string();
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace manet::json
