// Minimal JSON support shared by the repo's tooling.
//
// Three consumers read or write JSON — tools/bench_gate (baselines and sweep
// artifacts), tools/manet_report (cross-run metric diffs) and the scenario
// spec loader (src/scenario/spec.*) — and they all talk to producers this
// repo controls. A strict recursive-descent parser over the JSON grammar is
// therefore all that is needed: no external dependency, no streaming modes,
// no lenient extensions. The parser used to live inside bench_gate; it was
// hoisted here so the spec loader and report tool reuse it instead of
// growing hand-rolled copies.
//
// Every parsed Value records the 1-based source line it started on, so
// semantic validators (the scenario spec loader) can report
// "file:line: key: message" errors that point into the user's file, not
// just parse failures.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manet::json {

/// One parsed JSON value (a tree; objects keep insertion order).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order
  /// 1-based line in the source text where this value started (0 when the
  /// value was built programmatically rather than parsed).
  int line = 0;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// The number, or `fallback` when this value is not a number.
  [[nodiscard]] double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }

  /// Human name of a Kind ("object", "string", ...) for error messages.
  [[nodiscard]] static const char* kind_name(Kind k);
};

/// Parse `text` into `out`. On failure returns false and sets `err` to
/// "JSON parse error (line N): what".
[[nodiscard]] bool parse(std::string_view text, Value& out, std::string& err);

/// Append `s` to `os` escaped for inclusion inside a JSON string literal
/// (quotes not included).
void escape(std::ostream& os, std::string_view s);

/// `s` escaped as above, returned as a string.
[[nodiscard]] std::string escaped(std::string_view s);

/// Slurp a file. On failure returns false and sets `err`.
[[nodiscard]] bool read_file(const std::filesystem::path& p, std::string& out,
                             std::string& err);

}  // namespace manet::json
