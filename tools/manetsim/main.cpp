// manetsim — run MANET experiments from declarative scenario files.
//
//   manetsim run <scenario.json> [--seeds=N] [--threads=N] [--duration=S]
//                [--out-dir=DIR] [--cell=SUBSTR]
//   manetsim validate <scenario.json>...
//   manetsim list-protocols
//
// `run` expands the spec (src/scenario/spec.hpp documents the schema) into a
// labeled cell grid, executes it on one SweepRunner pool, and writes the same
// <out-dir>/<name>.{json,csv} artifacts the C++ benches write — a spec and
// its bench twin produce byte-identical per-seed results. The MANET_BENCH_*
// environment knobs apply exactly as they do to the benches (so the CI bench
// recipe drives both sides identically); explicit flags override both the
// spec and the environment.
//
// Exit codes: 0 success, 1 run/write failure, 2 usage or spec validation
// error (every diagnostic is printed as "file:line: key: message").
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace {

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: manetsim run <scenario.json> [--seeds=N] [--threads=N] [--duration=S]\n"
               "                    [--out-dir=DIR] [--cell=SUBSTR]\n"
               "       manetsim validate <scenario.json>...\n"
               "       manetsim list-protocols\n");
  return out == stderr ? 2 : 0;
}

/// --key=value flag parsing; returns nullptr when `arg` is not `--key=`.
const char* flag_value(const char* arg, const char* key) {
  const std::size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) != 0 || arg[n] != '=') return nullptr;
  return arg + n + 1;
}

bool parse_long(const char* s, long& out) {
  char* end = nullptr;
  out = std::strtol(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

int cmd_list_protocols() {
  for (const manet::routing::ProtocolEntry& e : manet::protocol_registry()) {
    std::printf("%s\n", e.name);
  }
  return 0;
}

int cmd_validate(const std::vector<const char*>& files) {
  bool all_ok = true;
  for (const char* file : files) {
    const manet::spec::ScenarioSpec spec = manet::spec::load_file(file);
    if (spec.ok()) {
      std::printf("%s: OK (%zu cells, seeds=%d)\n", file, spec.cells.size(), spec.seeds);
    } else {
      std::fputs(spec.error_report().c_str(), stderr);
      all_ok = false;
    }
  }
  return all_ok ? 0 : 2;
}

int cmd_run(const char* file, const std::vector<const char*>& flags) {
  long seeds_flag = 0;
  long threads_flag = -1;
  double duration_flag = 0.0;
  std::string out_dir_flag;
  std::string cell_filter;
  for (const char* arg : flags) {
    if (const char* v = flag_value(arg, "--seeds")) {
      if (!parse_long(v, seeds_flag) || seeds_flag < 1) {
        std::fprintf(stderr, "manetsim: --seeds must be a positive integer, got \"%s\"\n", v);
        return 2;
      }
    } else if (const char* v = flag_value(arg, "--threads")) {
      if (!parse_long(v, threads_flag) || threads_flag < 0) {
        std::fprintf(stderr, "manetsim: --threads must be >= 0 (0 = hw concurrency), got \"%s\"\n",
                     v);
        return 2;
      }
    } else if (const char* v = flag_value(arg, "--duration")) {
      if (!parse_double(v, duration_flag) || duration_flag <= 0.0) {
        std::fprintf(stderr, "manetsim: --duration must be positive seconds, got \"%s\"\n", v);
        return 2;
      }
    } else if (const char* v = flag_value(arg, "--out-dir")) {
      out_dir_flag = v;
    } else if (const char* v = flag_value(arg, "--cell")) {
      cell_filter = v;
    } else {
      std::fprintf(stderr, "manetsim: unknown flag \"%s\"\n", arg);
      return usage(stderr);
    }
  }

  manet::spec::ScenarioSpec spec = manet::spec::load_file(file);
  if (!spec.ok()) {
    std::fputs(spec.error_report().c_str(), stderr);
    return 2;
  }

  // Environment knobs apply like they do to the benches; flags trump both.
  const manet::BenchEnv env = manet::BenchEnv::parse(/*default_seeds=*/spec.seeds);
  const int seeds = seeds_flag > 0 ? static_cast<int>(seeds_flag) : env.seeds;
  const unsigned threads =
      threads_flag >= 0 ? static_cast<unsigned>(threads_flag) : env.threads;
  std::string out_dir = spec.out_dir;
  if (env.results_dir != "results") out_dir = env.results_dir;
  if (!out_dir_flag.empty()) out_dir = out_dir_flag;

  std::vector<manet::SweepCell> cells;
  for (manet::SweepCell& cell : spec.cells) {
    if (!cell_filter.empty() && cell.label.find(cell_filter) == std::string::npos) continue;
    env.apply_duration(cell.config);
    if (duration_flag > 0.0) cell.config.duration = manet::seconds_f(duration_flag);
    cells.push_back(std::move(cell));
  }
  if (cells.empty()) {
    std::fprintf(stderr, "manetsim: --cell=%s matches none of the %zu cell labels\n",
                 cell_filter.c_str(), spec.cells.size());
    return 2;
  }

  if (!spec.description.empty()) std::printf("%s\n", spec.description.c_str());
  const manet::SweepRunner runner(seeds, threads);
  manet::SweepResult sweep = runner.run(cells);
  sweep.name = spec.name;

  std::printf("%-28s %9s %10s %10s %8s %8s\n", "cell", "pdr", "delay_ms", "kbps", "nrl",
              "hops");
  for (const manet::SweepCellResult& cell : sweep.cells) {
    const manet::Aggregate& a = cell.aggregate;
    std::printf("%-28s %9.4f %10.3f %10.2f %8.3f %8.3f\n", cell.label.c_str(), a.pdr.mean,
                a.delay_ms.mean, a.throughput_kbps.mean, a.nrl.mean, a.avg_hops.mean);
  }

  const std::string json_path = out_dir + "/" + spec.name + ".json";
  const std::string csv_path = out_dir + "/" + spec.name + ".csv";
  const bool ok = sweep.write_json(json_path) && sweep.write_csv(csv_path);
  std::printf("\nsweep: %zu cells x %d seeds on %u threads in %.2f s (%.0f events/s)\n",
              sweep.cells.size(), sweep.seeds_per_cell, sweep.threads, sweep.wall_s,
              sweep.events_per_sec);
  if (ok) std::printf("artifacts: %s %s\n", json_path.c_str(), csv_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string_view cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(stdout);
  if (cmd == "list-protocols") return cmd_list_protocols();
  if (cmd == "validate") {
    if (argc < 3) {
      std::fprintf(stderr, "manetsim: validate needs at least one scenario file\n");
      return usage(stderr);
    }
    return cmd_validate({argv + 2, argv + argc});
  }
  if (cmd == "run") {
    if (argc < 3) {
      std::fprintf(stderr, "manetsim: run needs a scenario file\n");
      return usage(stderr);
    }
    return cmd_run(argv[2], {argv + 3, argv + argc});
  }
  std::fprintf(stderr, "manetsim: unknown command \"%s\"\n", argv[1]);
  return usage(stderr);
}
