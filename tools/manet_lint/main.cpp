#include "lint.hpp"

int main(int argc, char** argv) { return manet::lint::run_cli(argc, argv); }
