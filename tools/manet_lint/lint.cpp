#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/json.hpp"

namespace manet::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"MLNT001", "banned-rand", "allow-rand",
     "rand()/srand() draw from hidden global state; use a named RngStream"},
    {"MLNT002", "random-device", "allow-rng",
     "std::random_device is hardware entropy — unreproducible by design"},
    {"MLNT003", "wall-clock-call", "allow-wall-clock",
     "time()/clock()/gettimeofday() read the host clock, not sim time"},
    {"MLNT004", "wall-clock-chrono", "allow-wall-clock",
     "std::chrono reads the host clock; sim code must use core/time.hpp"},
    {"MLNT005", "rng-outside-core", "allow-rng",
     "<random> engines/distributions are banned outside core/rng"},
    {"MLNT006", "unordered-iteration", "order-independent",
     "iterating an unordered container lets hash order leak into behaviour"},
    {"MLNT007", "missing-pragma-once", "allow-no-pragma-once",
     "headers must start with #pragma once"},
    {"MLNT008", "float-equality", "allow-float-eq",
     "==/!= against floating-point literals is numerically fragile"},
    {"MLNT009", "bad-suppression", "",
     "manet-lint suppression with unknown tag or missing rationale"},
    {"MLNT010", "scenario-config-aggregate", "allow-scenario-config",
     "brace-constructing ScenarioConfig bypasses ScenarioBuilder validation"},
    {"MLNT011", "shard-unsafe-global", "allow-global-state",
     "mutable namespace-scope/static state in src/ defeats shard confinement"},
    {"MLNT012", "cross-node-access", "cross-shard-audited",
     "direct access to another node's state bypasses the shard-safe delivery path"},
    {"MLNT013", "foreign-shard-schedule", "allow-foreign-schedule",
     "scheduling into a foreign node/shard context outside the CrossShardQueue path"},
    {"MLNT014", "missing-restart-override", "allow-no-restart",
     "RoutingProtocol subclass lacks an on_node_restart() cold-restart override"},
    {"MLNT015", "full-node-scan", "allow-node-scan",
     "iterating every node in PHY/MAC/net code defeats grid-local candidate selection"},
};

[[nodiscard]] const RuleInfo* rule_by_id(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

[[nodiscard]] bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Per-line views: code with comments/strings blanked, plus the comment text
// ---------------------------------------------------------------------------

struct LineView {
  std::string code;     ///< comments and string/char literal bodies blanked
  std::string comment;  ///< text of any // or /* */ comment on the line
};

/// Split raw text into per-line code/comment views. String and character
/// literals are blanked in `code` so their contents can't trip rules;
/// comment text is preserved separately for suppression parsing.
[[nodiscard]] std::vector<LineView> preprocess(const std::string& text) {
  std::vector<LineView> out;
  LineView cur;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = (i + 1 < text.size()) ? text[i + 1] : '\0';
    if (c == '\n') {
      out.push_back(std::move(cur));
      cur = LineView{};
      in_string = in_char = false;  // unterminated literals don't span lines here
      continue;
    }
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        cur.comment += " ";
        ++i;
      } else {
        cur.comment += c;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        cur.code += '"';
      }
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
        cur.code += '\'';
      }
      continue;
    }
    if (c == '/' && next == '/') {
      cur.comment += text.substr(i + 2, text.find('\n', i) - i - 2);
      i = text.find('\n', i);
      if (i == std::string::npos) break;
      out.push_back(std::move(cur));
      cur = LineView{};
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      // Digit separators like 1'000 must not open a "char literal": only
      // treat ' as one when not directly preceded by an identifier char.
      in_string = true;
      cur.code += '"';
      continue;
    }
    if (c == '\'' && !(i > 0 && is_ident(text[i - 1]))) {
      in_char = true;
      cur.code += '\'';
      continue;
    }
    cur.code += c;
  }
  out.push_back(std::move(cur));
  return out;
}

// ---------------------------------------------------------------------------
// Small matching helpers (hand-rolled: precise boundaries, no regex escaping)
// ---------------------------------------------------------------------------

/// True if `code` calls `name` as a free (or std::-qualified) function:
/// boundary before, then optional spaces, then '('.
[[nodiscard]] bool has_call(const std::string& code, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t end = pos + name.size();
    const bool lb = pos == 0 || (!is_ident(code[pos - 1]) && code[pos - 1] != '.') ||
                    (pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':');
    // Member access (`x.time(...)`) refers to sim-time accessors, not libc.
    const bool member = pos > 0 && (code[pos - 1] == '.' ||
                                    (pos >= 2 && code[pos - 1] == '>' && code[pos - 2] == '-'));
    std::size_t j = end;
    if (lb && !member && (end >= code.size() || !is_ident(code[end]))) {
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && code[j] == '(') return true;
    }
    pos = end;
  }
  return false;
}

/// True if `code` contains `word` with identifier boundaries on both sides.
[[nodiscard]] bool has_word(const std::string& code, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool lb = pos == 0 || !is_ident(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool rb = end >= code.size() || !is_ident(code[end]);
    if (lb && rb) return true;
    pos = end;
  }
  return false;
}

[[nodiscard]] bool is_float_literal(std::string_view tok) {
  if (!tok.empty() && (tok.back() == 'f' || tok.back() == 'F')) tok.remove_suffix(1);
  const std::size_t dot = tok.find('.');
  if (dot == std::string_view::npos || tok.empty()) return false;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    if (i == dot) continue;
    if (std::isdigit(static_cast<unsigned char>(tok[i])) == 0) return false;
  }
  return dot > 0 || tok.size() > 1;  // "1.0", "1.", ".5" — but not "."
}

/// Does the line compare (==/!=) against a floating-point literal?
[[nodiscard]] bool has_float_equality(const std::string& code) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if ((code[i] != '=' && code[i] != '!') || code[i + 1] != '=') continue;
    if (i + 2 < code.size() && code[i + 2] == '=') continue;  // skip a == =...
    if (i > 0 && (code[i - 1] == '<' || code[i - 1] == '>' || code[i - 1] == '=')) continue;
    // Token after the operator.
    std::size_t a = i + 2;
    while (a < code.size() && code[a] == ' ') ++a;
    std::size_t ae = a;
    while (ae < code.size() && (is_ident(code[ae]) || code[ae] == '.')) ++ae;
    if (is_float_literal(std::string_view(code).substr(a, ae - a))) return true;
    // Token before the operator.
    std::size_t b = i;
    while (b > 0 && code[b - 1] == ' ') --b;
    std::size_t bs = b;
    while (bs > 0 && (is_ident(code[bs - 1]) || code[bs - 1] == '.')) --bs;
    if (is_float_literal(std::string_view(code).substr(bs, b - bs))) return true;
  }
  return false;
}

/// Names of variables/members declared as std::unordered_map/unordered_set
/// anywhere in `code_text` (newlines allowed inside the template argument
/// list — declarations are matched across lines).
[[nodiscard]] std::unordered_set<std::string> unordered_decls(const std::string& code_text) {
  std::unordered_set<std::string> names;
  static constexpr std::string_view kMarkers[] = {"std::unordered_map", "std::unordered_set"};
  for (const std::string_view marker : kMarkers) {
    std::size_t pos = 0;
    while ((pos = code_text.find(marker, pos)) != std::string::npos) {
      std::size_t i = pos + marker.size();
      while (i < code_text.size() && std::isspace(static_cast<unsigned char>(code_text[i]))) ++i;
      if (i >= code_text.size() || code_text[i] != '<') {
        pos += marker.size();
        continue;
      }
      int depth = 0;
      for (; i < code_text.size(); ++i) {
        if (code_text[i] == '<') ++depth;
        if (code_text[i] == '>' && --depth == 0) break;
      }
      ++i;  // past '>'
      while (i < code_text.size() &&
             (std::isspace(static_cast<unsigned char>(code_text[i])) || code_text[i] == '&' ||
              code_text[i] == '*')) {
        ++i;
      }
      std::size_t ne = i;
      while (ne < code_text.size() && is_ident(code_text[ne])) ++ne;
      if (ne > i) {
        std::size_t after = ne;
        while (after < code_text.size() &&
               std::isspace(static_cast<unsigned char>(code_text[after]))) {
          ++after;
        }
        const char t = after < code_text.size() ? code_text[after] : '\0';
        if (t == ';' || t == '=' || t == '{' || t == '(' || t == ',' || t == ')') {
          names.insert(code_text.substr(i, ne - i));
        }
      }
      pos = ne;
    }
  }
  return names;
}

/// Does the line brace-construct a ScenarioConfig? Flags `ScenarioConfig{...}`,
/// `ScenarioConfig cfg{...}` and `ScenarioConfig cfg = {...}`. Plain
/// default construction (`ScenarioConfig cfg;`), copies, and reference/
/// pointer parameters are fine — only aggregate construction skips the
/// builder's validation while silently accepting field-order mistakes.
[[nodiscard]] bool has_scenario_aggregate(const std::string& code) {
  static constexpr std::string_view kName = "ScenarioConfig";
  std::size_t pos = 0;
  while ((pos = code.find(kName, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const std::size_t end = pos + kName.size();
    const bool lb = pos == 0 || !is_ident(code[pos - 1]);
    pos = end;
    if (!lb || (end < code.size() && is_ident(code[end]))) continue;
    {  // a definition (`struct ScenarioConfig {`) is not a construction
      std::size_t b = start;
      while (b > 0 && code[b - 1] == ' ') --b;
      std::size_t bs = b;
      while (bs > 0 && is_ident(code[bs - 1])) --bs;
      const std::string_view prev = std::string_view(code).substr(bs, b - bs);
      if (prev == "struct" || prev == "class") continue;
    }
    std::size_t i = end;
    while (i < code.size() && code[i] == ' ') ++i;
    if (i < code.size() && code[i] == '{') return true;  // ScenarioConfig{...}
    std::size_t ne = i;
    while (ne < code.size() && is_ident(code[ne])) ++ne;
    if (ne == i) continue;  // `&`, `*`, `>`, ... — a use, not a declaration
    i = ne;
    while (i < code.size() && code[i] == ' ') ++i;
    if (i < code.size() && code[i] == '{') return true;  // ScenarioConfig cfg{...}
    if (i < code.size() && code[i] == '=') {
      ++i;
      while (i < code.size() && code[i] == ' ') ++i;
      if (i < code.size() && code[i] == '{') return true;  // ... cfg = {...}
    }
  }
  return false;
}

/// The container expression iterated by a range-for on this line, if any:
/// matches `for (... : expr)` and returns `expr` when it is a bare
/// identifier (possibly `this->x`); compound expressions return "".
[[nodiscard]] std::string range_for_target(const std::string& code) {
  const std::size_t f = code.find("for");
  if (f == std::string::npos || !has_word(code, "for")) return {};
  const std::size_t colon = code.rfind(':');
  if (colon == std::string::npos || colon == 0) return {};
  if (code[colon - 1] == ':') return {};  // `::` qualifier, not a range-for
  if (colon + 1 < code.size() && code[colon + 1] == ':') return {};
  std::size_t a = colon + 1;
  while (a < code.size() && code[a] == ' ') ++a;
  std::size_t e = a;
  while (e < code.size() && is_ident(code[e])) ++e;
  std::size_t close = e;
  while (close < code.size() && code[close] == ' ') ++close;
  if (close >= code.size() || code[close] != ')') return {};
  return code.substr(a, e - a);
}

/// A loop over every node (MLNT015): a range-for whose target is one of the
/// all-nodes containers, or an index loop bounded by their size. The
/// container names are the simulator's own (`nodes_` in the scenario/net
/// layers, `trx_`/`mob_` in the channel); per-event code must go through
/// GridIndex::query / neighbors_of instead, so any surviving full scan is
/// either a bug or a deliberately-annotated periodic path (grid refresh).
[[nodiscard]] bool has_full_node_scan(const std::string& code) {
  static constexpr std::string_view kContainers[] = {"nodes_", "trx_", "mob_"};
  const std::string target = range_for_target(code);
  for (const std::string_view c : kContainers) {
    if (target == c) return true;
  }
  if (!has_word(code, "for")) return false;
  if (code.find("node_count()") != std::string::npos) return true;
  for (const std::string_view c : kContainers) {
    if (code.find(std::string(c) + ".size()") != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Scope-aware analysis (MLNT011/MLNT014)
//
// A lightweight C++ tokenizer plus a brace-matching scope walker — enough
// structure to tell a namespace-scope variable from a local, a class data
// member from a function, and to see a whole class body, without dragging in
// libclang. Heuristic classification of `{`: a head containing `namespace`
// opens a namespace, `enum` an enumeration, `class`/`struct`/`union`
// (without a parameter list) a class, anything with `(` a function, and the
// rest an initializer/plain block. Fixtures in tests/lint_fixtures pin the
// corner cases.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

/// Tokenize blanked per-line code into identifiers and punctuation (`::` is
/// one token). Preprocessor lines are skipped entirely.
[[nodiscard]] std::vector<Token> tokenize(const std::vector<LineView>& lines) {
  std::vector<Token> out;
  bool continued = false;  // previous line was a preprocessor line ending in '\'
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    const int lineno = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
    if (continued || (i < code.size() && code[i] == '#')) {
      // Skip the directive and every backslash-continued line after it —
      // braces inside a macro body would unbalance the scope walker.
      std::size_t e = code.size();
      while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1]))) --e;
      continued = e > 0 && code[e - 1] == '\\';
      continue;
    }
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (is_ident(c)) {
        std::size_t e = i;
        while (e < code.size() && is_ident(code[e])) ++e;
        out.push_back({code.substr(i, e - i), lineno, true});
        i = e - 1;
        continue;
      }
      if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        out.push_back({"::", lineno, false});
        ++i;
        continue;
      }
      out.push_back({std::string(1, c), lineno, false});
    }
  }
  return out;
}

struct MutableStatic {
  int line = 0;
  std::string name;
  const char* kind = "";  ///< "namespace-scope", "static data member", "function-local static"
};

struct ProtocolClass {
  int line = 0;
  std::string name;
  bool has_restart = false;
};

struct ScopeAnalysis {
  std::vector<MutableStatic> mutable_statics;
  std::vector<ProtocolClass> protocol_classes;
};

[[nodiscard]] bool stmt_contains(const std::vector<Token>& s, std::string_view word) {
  return std::any_of(s.begin(), s.end(),
                     [&](const Token& t) { return t.ident && t.text == word; });
}

/// Does the statement head read as a function declarator rather than a
/// variable? A `(` before any `=` means a parameter list came first.
[[nodiscard]] bool function_like(const std::vector<Token>& s) {
  for (const Token& t : s) {
    if (t.text == "=") return false;
    if (t.text == "(") return true;
  }
  return false;
}

/// Walk the token stream tracking scopes; collect mutable static/global
/// variable declarations and RoutingProtocol subclasses.
[[nodiscard]] ScopeAnalysis analyze_scopes(const std::vector<Token>& toks) {
  ScopeAnalysis out;

  struct Scope {
    char kind;            ///< 'n'amespace, 'c'lass, 'f'unction, 'b'lock/init, 'e'num
    int proto_class = -1; ///< index into out.protocol_classes when a tracked class
  };
  std::vector<Scope> scopes;  // empty vector == translation-unit (namespace) scope
  std::vector<Token> stmt;    // tokens since the last ; { }

  const auto scope_kind = [&]() -> char { return scopes.empty() ? 'n' : scopes.back().kind; };

  // Flag `stmt` as a mutable variable declaration unless it is const, a
  // type/alias/using declaration, or a function declarator.
  const auto flag_variable = [&](const char* kind) {
    if (stmt.empty()) return;
    static constexpr std::string_view kSkip[] = {
        "const",    "constexpr", "using",   "typedef",       "extern",  "friend",
        "template", "operator",  "class",   "struct",        "union",   "enum",
        "namespace","return",    "public",  "protected",     "private", "static_assert",
        "goto",     "case",      "default", "if",            "for",     "while",
        "switch",   "do",        "else",    "try",           "catch",   "co_return",
    };
    for (const std::string_view w : kSkip) {
      if (stmt_contains(stmt, w)) return;
    }
    if (function_like(stmt)) return;
    std::string name;
    for (const Token& t : stmt) {
      if (t.text == "=") break;
      if (t.ident) name = t.text;
    }
    if (name.empty()) return;
    out.mutable_statics.push_back({stmt.front().line, name, kind});
  };

  // Dispatch the statement head per scope before it is cleared (used on both
  // `;` and brace-initializer `{`).
  const auto process_stmt = [&] {
    switch (scope_kind()) {
      case 'n': flag_variable("namespace-scope"); break;
      case 'c':
        if (stmt_contains(stmt, "static") || stmt_contains(stmt, "thread_local")) {
          flag_variable("static data member");
        }
        break;
      case 'f':
      case 'b':
        if (stmt_contains(stmt, "static") || stmt_contains(stmt, "thread_local")) {
          flag_variable("function-local static");
        }
        break;
      default: break;  // 'e': enumerators
    }
  };

  for (const Token& tok : toks) {
    if (tok.text == "{") {
      Scope next{'b', -1};
      const char enclosing = scope_kind();
      if (stmt_contains(stmt, "namespace") || stmt_contains(stmt, "extern")) {
        next.kind = 'n';
      } else if (stmt_contains(stmt, "enum")) {
        next.kind = 'e';
      } else if ((stmt_contains(stmt, "class") || stmt_contains(stmt, "struct") ||
                  stmt_contains(stmt, "union")) &&
                 !std::any_of(stmt.begin(), stmt.end(),
                              [](const Token& t) { return t.text == "("; })) {
        next.kind = 'c';
        // `class X final : public [manet::]RoutingProtocol` — record the
        // subclass so a missing on_node_restart override can be reported.
        std::string name;
        bool base_list = false;
        bool derives = false;
        for (const Token& t : stmt) {
          if (t.ident && name.empty() &&
              !(t.text == "class" || t.text == "struct" || t.text == "union" ||
                t.text == "template" || t.text == "typename" || t.text == "final")) {
            name = t.text;
          }
          if (t.text == ":") base_list = true;
          if (base_list && t.ident && t.text == "RoutingProtocol") derives = true;
        }
        if (derives && name != "RoutingProtocol") {
          next.proto_class = static_cast<int>(out.protocol_classes.size());
          out.protocol_classes.push_back({stmt.front().line, name, false});
        }
      } else if ((enclosing == 'n' || enclosing == 'c') &&
                 std::any_of(stmt.begin(), stmt.end(),
                             [](const Token& t) { return t.text == "("; })) {
        next.kind = 'f';
      } else {
        // Brace initializer (`Foo g{...};`) or a block: the head may still
        // declare a variable at the enclosing scope — flag it now, because
        // the `;` after the closing brace will see an empty head.
        process_stmt();
      }
      scopes.push_back(next);
      stmt.clear();
      continue;
    }
    if (tok.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
      continue;
    }
    if (tok.text == ";") {
      process_stmt();
      stmt.clear();
      continue;
    }
    // `public:` / `private:` / `protected:` labels would otherwise merge
    // into the following member declaration and hide it behind the skip
    // list.
    if (tok.text == ":" && stmt.size() == 1 && stmt.front().ident &&
        (stmt.front().text == "public" || stmt.front().text == "protected" ||
         stmt.front().text == "private")) {
      stmt.clear();
      continue;
    }
    if (tok.ident && tok.text == "on_node_restart") {
      for (const Scope& s : scopes) {
        if (s.proto_class >= 0) {
          out.protocol_classes[static_cast<std::size_t>(s.proto_class)].has_restart = true;
        }
      }
    }
    stmt.push_back(tok);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shard-safety line matchers (MLNT012/MLNT013)
// ---------------------------------------------------------------------------

/// Member call `<expr>.name(` / `<expr>->name(` with identifier boundaries.
[[nodiscard]] bool has_member_call(const std::string& code, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t end = pos + name.size();
    const bool member = pos > 0 && (code[pos - 1] == '.' ||
                                    (pos >= 2 && code[pos - 1] == '>' && code[pos - 2] == '-'));
    if (member && (end >= code.size() || !is_ident(code[end]))) {
      std::size_t j = end;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && code[j] == '(') return true;
    }
    pos = end;
  }
  return false;
}

/// Direct peer-state access: `nodes_[...]` indexing or a `.node(`/`->node(`
/// member call (Scenario::node(id) and friends).
[[nodiscard]] bool has_cross_node_access(const std::string& code) {
  if (code.find("nodes_[") != std::string::npos) return true;
  return has_member_call(code, "node");
}

/// `X.sim().<method>` / `X->sim().<method>` where X is not the owning node:
/// scheduling (or cancelling) through a *foreign* node's simulator handle.
/// Returns the foreign expression's identifier, or "" when clean. Bare
/// `sim().schedule(...)` (the component's own accessor) and `sim_.` members
/// are the sanctioned forms.
[[nodiscard]] std::string foreign_sim_schedule(const std::string& code) {
  std::size_t pos = 0;
  while ((pos = code.find("sim", pos)) != std::string::npos) {
    const std::size_t end = pos + 3;
    const bool lb = pos == 0 || !is_ident(code[pos - 1]);
    if (!lb || (end < code.size() && is_ident(code[end]))) {
      pos = end;
      continue;
    }
    // Match `sim ( ) . <method>`.
    std::size_t j = end;
    const auto skip_spaces = [&] { while (j < code.size() && code[j] == ' ') ++j; };
    skip_spaces();
    if (j >= code.size() || code[j] != '(') { pos = end; continue; }
    ++j;
    skip_spaces();
    if (j >= code.size() || code[j] != ')') { pos = end; continue; }
    ++j;
    skip_spaces();
    if (j >= code.size() || code[j] != '.') { pos = end; continue; }
    ++j;
    skip_spaces();
    std::size_t me = j;
    while (me < code.size() && is_ident(code[me])) ++me;
    const std::string_view method = std::string_view(code).substr(j, me - j);
    if (method != "schedule" && method != "schedule_at" && method != "schedule_on" &&
        method != "cancel") {
      pos = end;
      continue;
    }
    // Owner of the sim() call: the expression before `.sim()` / `->sim()`.
    std::size_t b = pos;
    while (b > 0 && code[b - 1] == ' ') --b;
    bool member = false;
    if (b > 0 && code[b - 1] == '.') {
      member = true;
      --b;
    } else if (b >= 2 && code[b - 1] == '>' && code[b - 2] == '-') {
      member = true;
      b -= 2;
    }
    if (!member) { pos = end; continue; }  // own accessor: sim().schedule(...)
    while (b > 0 && code[b - 1] == ' ') --b;
    std::size_t bs = b;
    while (bs > 0 && is_ident(code[bs - 1])) --bs;
    const std::string owner = code.substr(bs, b - bs);
    if (owner != "node_" && owner != "node" && owner != "this") return owner.empty() ? "<expr>" : owner;
    pos = end;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppressions {
  // line (1-based) -> tags active for that line
  std::vector<std::vector<std::string>> line_tags;
  std::unordered_set<std::string> disabled_rules;  // file-level
  std::vector<Finding> errors;                     // MLNT009
};

[[nodiscard]] std::string trim(std::string s) {
  const auto issp = [](char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; };
  while (!s.empty() && issp(s.front())) s.erase(s.begin());
  while (!s.empty() && issp(s.back())) s.pop_back();
  return s;
}

[[nodiscard]] bool known_tag(std::string_view tag) {
  return std::any_of(kRules.begin(), kRules.end(), [&](const RuleInfo& r) {
    return tag == r.tag || tag == r.id;
  });
}

/// Parse `manet-lint:` directives. A directive on a code line covers that
/// line; one on a comment-only line covers the next line that has code.
[[nodiscard]] Suppressions collect_suppressions(const std::string& path,
                                                const std::vector<LineView>& lines) {
  Suppressions sup;
  sup.line_tags.resize(lines.size() + 2);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    const std::size_t d = comment.find("manet-lint:");
    if (d == std::string::npos) continue;
    const int lineno = static_cast<int>(i) + 1;
    std::string rest = trim(comment.substr(d + std::string_view("manet-lint:").size()));
    // Tag is the first token; everything after a `-` or in `(...)` after a
    // disable(...) is the rationale.
    std::size_t te = 0;
    while (te < rest.size() && (is_ident(rest[te]) || rest[te] == '-')) {
      // a lone '-' separator ends the tag
      if (rest[te] == '-' && te + 1 < rest.size() && rest[te + 1] == ' ') break;
      ++te;
    }
    std::string tag = trim(rest.substr(0, te));
    std::string after = trim(te < rest.size() ? rest.substr(te) : "");
    if (tag == "disable" && !after.empty() && after.front() == '(') {
      const std::size_t close = after.find(')');
      if (close == std::string::npos) {
        sup.errors.push_back({path, lineno, "MLNT009", "unclosed disable(...) directive"});
        continue;
      }
      const std::string id = trim(after.substr(1, close - 1));
      const std::string rationale = trim(after.substr(close + 1));
      if (rule_by_id(id) == nullptr) {
        sup.errors.push_back({path, lineno, "MLNT009", "disable(" + id + "): unknown rule id"});
        continue;
      }
      if (rationale.size() < 4) {
        sup.errors.push_back({path, lineno, "MLNT009",
                              "disable(" + id + ") needs a rationale: `// manet-lint: disable(" +
                                  id + ") - <why this file is exempt>`"});
        continue;
      }
      if (lineno > 40) {
        sup.errors.push_back({path, lineno, "MLNT009",
                              "disable(...) must appear in the first 40 lines of the file"});
        continue;
      }
      sup.disabled_rules.insert(id);
      continue;
    }
    if (!known_tag(tag)) {
      sup.errors.push_back(
          {path, lineno, "MLNT009",
           "unknown suppression tag \"" + tag + "\" (see manet_lint --list-rules)"});
      continue;
    }
    // Rationale: require a few words after `<tag> -`.
    std::string rationale = after;
    if (!rationale.empty() && rationale.front() == '-') rationale = trim(rationale.substr(1));
    if (rationale.size() < 4) {
      sup.errors.push_back({path, lineno, "MLNT009",
                            "suppression \"" + tag + "\" needs a rationale: `// manet-lint: " +
                                tag + " - <why this is safe>`"});
      continue;
    }
    // Attach to this line if it has code, otherwise to the next code line.
    std::size_t target = i;
    if (trim(lines[i].code).empty()) {
      target = i + 1;
      while (target < lines.size() && trim(lines[target].code).empty() &&
             lines[target].comment.find("manet-lint:") == std::string::npos) {
        ++target;
      }
    }
    if (target < sup.line_tags.size()) {
      sup.line_tags[target + 1].push_back(tag);  // 1-based
    }
  }
  return sup;
}

[[nodiscard]] bool suppressed(const Suppressions& sup, const RuleInfo& rule, int line) {
  if (sup.disabled_rules.contains(rule.id)) return true;
  if (line < 1 || static_cast<std::size_t>(line) >= sup.line_tags.size()) return false;
  for (const std::string& t : sup.line_tags[static_cast<std::size_t>(line)]) {
    if (t == rule.tag || t == rule.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h") || path.ends_with(".hh");
}

/// Is `path` under directory `dir` ("src/", "src/routing/", ...)? Matches
/// both relative ("src/core/x.cpp") and absolute ("/repo/src/core/x.cpp")
/// spellings.
[[nodiscard]] bool in_path(const std::string& path, std::string_view dir) {
  if (path.rfind(dir, 0) == 0) return true;
  return path.find("/" + std::string(dir)) != std::string::npos;
}

/// Does this scan unit schedule events, transmit, or implement routing state?
/// MLNT006 applies only there — hash order in a pure utility is harmless.
[[nodiscard]] bool order_sensitive(const std::string& path, const std::string& all_code) {
  if (path.find("/routing/") != std::string::npos) return true;
  static constexpr std::string_view kMarkers[] = {".schedule(",     ".schedule_at(",
                                                  "send_broadcast", "send_with_next_hop",
                                                  ".enqueue(",      "sim().schedule"};
  return std::any_of(std::begin(kMarkers), std::end(kMarkers),
                     [&](std::string_view m) { return all_code.find(m) != std::string::npos; });
}

void check(const std::string& path, const std::vector<LineView>& lines,
           const std::string& all_code, const std::string& paired_code,
           std::vector<Finding>& out) {
  const Suppressions sup = collect_suppressions(path, lines);
  out.insert(out.end(), sup.errors.begin(), sup.errors.end());

  const auto add = [&](const char* id, int line, std::string msg) {
    const RuleInfo* rule = rule_by_id(id);
    if (suppressed(sup, *rule, line)) return;
    out.push_back({path, line, id, std::move(msg)});
  };

  const bool in_core_rng = path.find("core/rng") != std::string::npos;
  const std::unordered_set<std::string> unordered = [&] {
    auto names = unordered_decls(all_code);
    auto paired = unordered_decls(paired_code);
    names.insert(paired.begin(), paired.end());
    return names;
  }();
  const bool mlnt006_applies = order_sensitive(path, all_code + paired_code);
  // src/scenario/ is the one place allowed to assemble configs by hand (it
  // IS the builder/validator).
  const bool mlnt010_applies = path.find("/scenario/") == std::string::npos;
  // Shard-safety scopes. MLNT011 covers all simulator code; MLNT012 the
  // layers that hold per-node state plus the composition root (scenario owns
  // nodes_, so its accesses are exactly the ones that need an audit trail);
  // MLNT013's member-call form everywhere except the kernel and the PHY
  // delivery path, which ARE the sanctioned cross-shard machinery.
  const bool in_src = in_path(path, "src/");
  const bool node_layer = in_path(path, "src/routing/") || in_path(path, "src/mac/") ||
                          in_path(path, "src/net/") || in_path(path, "src/transport/");
  const bool mlnt012_applies = node_layer || in_path(path, "src/scenario/");
  const bool mlnt013_member = !in_path(path, "src/core/") && !in_path(path, "src/phy/");
  // MLNT015 polices the per-event layers: PHY (channel candidate selection),
  // MAC and net. Scenario/tools may still walk every node — setup and
  // reporting are not hot paths.
  const bool mlnt015_applies =
      in_path(path, "src/phy/") || in_path(path, "src/mac/") || in_path(path, "src/net/");

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (trim(code).empty()) continue;
    const int n = static_cast<int>(i) + 1;

    if (has_call(code, "rand") || has_call(code, "srand")) {
      add("MLNT001", n,
          "rand()/srand() is banned: draw from a named RngStream (core/rng.hpp) so every "
          "replication is reproducible from (seed, scenario) alone");
    }
    if (code.find("random_device") != std::string::npos) {
      add("MLNT002", n,
          "std::random_device is hardware entropy and can never be replayed; seed a named "
          "RngStream from the scenario seed instead");
    }
    for (const std::string_view fn :
         {"time", "clock", "gettimeofday", "localtime", "gmtime", "ftime"}) {
      if (has_call(code, fn)) {
        add("MLNT003", n,
            std::string(fn) + "() reads the host clock; sim code must use Simulator::now() / "
                              "core/time.hpp (annotate profiling code with `// manet-lint: "
                              "allow-wall-clock - <why>`)");
        break;
      }
    }
    if (has_word(code, "chrono")) {
      add("MLNT004", n,
          "std::chrono is wall-clock time: nondeterministic across hosts and runs. Use SimTime "
          "for simulated time; profiling-only reads need `// manet-lint: allow-wall-clock - "
          "<why>`");
    }
    if (!in_core_rng) {
      static constexpr std::string_view kEngines[] = {
          "mt19937",       "mt19937_64", "minstd_rand",           "minstd_rand0",
          "ranlux24",      "ranlux48",   "default_random_engine", "knuth_b",
          "philox4x32_10",
      };
      bool hit = code.find("_distribution") != std::string::npos ||
                 code.find("<random>") != std::string::npos;
      for (const std::string_view e : kEngines) {
        hit = hit || has_word(code, e);
      }
      if (hit) {
        add("MLNT005", n,
            "<random> engines/distributions outside core/rng fragment the seeding discipline; "
            "derive a child RngStream(root_seed, name, index) instead");
      }
    }
    if (mlnt006_applies && !unordered.empty()) {
      std::string target = range_for_target(code);
      if (target.empty() && has_word(code, "for")) {
        for (const std::string& name : unordered) {
          if (code.find(name + ".begin()") != std::string::npos ||
              code.find(name + ".cbegin()") != std::string::npos) {
            target = name;
            break;
          }
        }
      }
      if (!target.empty() && unordered.contains(target)) {
        add("MLNT006", n,
            "iterating unordered container `" + target +
                "` in event-scheduling/routing code: hash order must never reach the event "
                "queue or a packet. Use std::map/std::set, iterate a sorted copy, or annotate "
                "`// manet-lint: order-independent - <why>`");
      }
    }
    if (has_float_equality(code)) {
      add("MLNT008", n,
          "==/!= against a floating-point literal: compare integers (SimTime ns) or use an "
          "explicit tolerance; exact FP equality breaks under reordering/FMA");
    }
    if (mlnt010_applies && has_scenario_aggregate(code)) {
      add("MLNT010", n,
          "brace-constructing ScenarioConfig bypasses build-time validation and breaks on any "
          "field reorder; chain ScenarioBuilder setters and build() instead (or annotate "
          "`// manet-lint: allow-scenario-config - <why>`)");
    }
    if (mlnt012_applies && has_cross_node_access(code)) {
      add("MLNT012", n,
          "direct access to another node's state (`nodes_[...]`/`.node(...)`) bypasses the "
          "shard-safe delivery path; route through Channel/CrossShardQueue, or annotate "
          "`// manet-lint: cross-shard-audited - <why it is shard-safe>`");
    }
    if (mlnt015_applies && has_full_node_scan(code)) {
      add("MLNT015", n,
          "loop over every node in per-event code: O(N) per transmission/tick is what caps "
          "city-scale runs. Use GridIndex::query / Channel::neighbors_of for grid-local "
          "candidates; genuinely periodic whole-population work (position refresh) carries "
          "`// manet-lint: allow-node-scan - <why this is not per-event>`");
    }
    if (mlnt013_member && has_member_call(code, "schedule_on")) {
      add("MLNT013", n,
          "schedule_on() injects into a foreign shard's queue; outside the kernel/PHY delivery "
          "path that must go through Channel (or carry `// manet-lint: allow-foreign-schedule "
          "- <why>`)");
    } else if (node_layer) {
      const std::string owner = foreign_sim_schedule(code);
      if (!owner.empty()) {
        add("MLNT013", n,
            "scheduling through `" + owner +
                "`'s simulator handle runs the callback in a foreign node/shard context; "
                "schedule via the owning component's own sim() (or annotate "
                "`// manet-lint: allow-foreign-schedule - <why>`)");
      }
    }
  }

  // Scope-aware rules: one tokenize + scope walk per scan unit.
  const ScopeAnalysis sc = analyze_scopes(tokenize(lines));
  if (in_src) {
    for (const MutableStatic& g : sc.mutable_statics) {
      add("MLNT011", g.line,
          std::string("mutable ") + g.kind + " state `" + g.name +
              "` is shared across shards and defeats parallel dispatch; make it const, move "
              "it into per-node/per-scenario state, or annotate `// manet-lint: "
              "allow-global-state - <why it is shard-safe>`");
    }
  }
  for (const ProtocolClass& c : sc.protocol_classes) {
    if (!c.has_restart) {
      add("MLNT014", c.line,
          "RoutingProtocol subclass `" + c.name +
              "` has no on_node_restart() override: a crashed node would resurrect with "
              "stale routing state. Override it to cold-start (clear tables/seqnos), or "
              "annotate `// manet-lint: allow-no-restart - <why>`");
    }
  }

  if (is_header(path)) {
    bool found = false;
    for (std::size_t i = 0; i < lines.size() && i < 50; ++i) {
      if (lines[i].code.find("#pragma once") != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      add("MLNT007", 1, "header lacks #pragma once (double inclusion ODR hazard)");
    }
  }
}

[[nodiscard]] std::string read_file(const std::filesystem::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

[[nodiscard]] std::string joined_code(const std::vector<LineView>& lines) {
  std::string all;
  for (const LineView& l : lines) {
    all += l.code;
    all += '\n';
  }
  return all;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> lint_text(const std::string& path, const std::string& text,
                               const std::string& paired_text) {
  std::vector<Finding> out;
  const std::vector<LineView> lines = preprocess(text);
  const std::string paired_code =
      paired_text.empty() ? std::string{} : joined_code(preprocess(paired_text));
  check(path, lines, joined_code(lines), paired_code, out);
  return out;
}

std::vector<Finding> lint_file(const std::filesystem::path& p) {
  bool ok = false;
  const std::string text = read_file(p, ok);
  if (!ok) {
    return {{p.generic_string(), 0, "MLNT000", "cannot read file"}};
  }
  std::string paired;
  if (p.extension() == ".cpp" || p.extension() == ".cc") {
    for (const char* ext : {".hpp", ".h", ".hh"}) {
      std::filesystem::path header = p;
      header.replace_extension(ext);
      if (std::filesystem::exists(header)) {
        bool hok = false;
        paired = read_file(header, hok);
        break;
      }
    }
  }
  return lint_text(p.generic_string(), text, paired);
}

std::string format_finding(const Finding& f, Format fmt) {
  const RuleInfo* rule = rule_by_id(f.rule);
  const char* name = rule != nullptr ? rule->name : "io-error";
  if (fmt == Format::kGithub) {
    // GitHub Actions workflow command: renders as an inline annotation on
    // the PR diff. The message must stay single-line (ours always are).
    return "::error file=" + f.file + ",line=" + std::to_string(f.line) + ",title=" + f.rule +
           " " + name + "::" + f.message;
  }
  if (fmt == Format::kJson) {
    return "{\"file\": \"" + json::escaped(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"rule\": \"" + json::escaped(f.rule) + "\", \"name\": \"" + name +
           "\", \"message\": \"" + json::escaped(f.message) + "\"}";
  }
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + " [" + name + "] " + f.message;
}

std::vector<Finding> lint_paths(const std::vector<std::filesystem::path>& roots) {
  std::vector<Finding> out;
  std::vector<std::filesystem::path> files;
  const auto wanted = [](const std::filesystem::path& p) {
    const auto ext = p.extension();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" || ext == ".hh";
  };
  for (const std::filesystem::path& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!std::filesystem::is_directory(root, ec)) {
      files.push_back(root);  // surfaces as MLNT000 cannot-read
      continue;
    }
    std::filesystem::recursive_directory_iterator it(root, ec);
    if (ec) {
      out.push_back({root.generic_string(), 0, "MLNT000",
                     "cannot open directory: " + ec.message()});
      continue;
    }
    for (; it != std::filesystem::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) {
        out.push_back({root.generic_string(), 0, "MLNT000",
                       "directory walk failed: " + ec.message()});
        break;
      }
      const std::string name = it->path().filename().string();
      if (it->is_directory(ec) && (name == "build" || name == ".git" || name == "lint_fixtures")) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file(ec) && wanted(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& f : files) {
    auto fs = lint_file(f);
    out.insert(out.end(), fs.begin(), fs.end());
  }
  return out;
}

int run_cli(int argc, const char* const* argv) {
  std::vector<std::filesystem::path> roots;
  Format fmt = Format::kHuman;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      std::printf("%-8s  %-24s  %-24s  %s\n", "id", "name", "suppression tag", "summary");
      for (const RuleInfo& r : kRules) {
        std::printf("%-8s  %-24s  %-24s  %s\n", r.id, r.name, r.tag[0] ? r.tag : "-", r.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: manet_lint [--list-rules] [--format=human|github|json] <file|dir>...\n"
                  "Scans C++ sources for manetsim determinism/shard-safety violations.\n"
                  "  --format=github   emit ::error workflow-command annotations for CI\n"
                  "  --format=json     emit one JSON array of findings (machine-readable)\n"
                  "Exit code: 0 clean, 1 findings, 2 usage error or nonexistent path.\n");
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const std::string_view v = arg.substr(9);
      if (v == "github") {
        fmt = Format::kGithub;
      } else if (v == "human") {
        fmt = Format::kHuman;
      } else if (v == "json") {
        fmt = Format::kJson;
      } else {
        std::fprintf(stderr,
                     "manet_lint: unknown format '%.*s' (expected human, github, or json)\n",
                     static_cast<int>(v.size()), v.data());
        return 2;
      }
      continue;
    }
    if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "manet_lint: unknown option '%.*s' (try --help)\n",
                   static_cast<int>(arg.size()), arg.data());
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "manet_lint: no paths given (try --help)\n");
    return 2;
  }
  // A typo'd CI path must fail loudly: linting nothing and reporting "clean"
  // is how a required check silently stops checking anything.
  bool missing = false;
  for (const std::filesystem::path& r : roots) {
    std::error_code ec;
    if (!std::filesystem::exists(r, ec) || ec) {
      std::fprintf(stderr, "manet_lint: path does not exist: %s\n", r.generic_string().c_str());
      missing = true;
    }
  }
  if (missing) return 2;
  const std::vector<Finding> findings = lint_paths(roots);
  if (fmt == Format::kJson) {
    // One valid JSON document (an array), not JSON-lines: downstream tooling
    // can hand the whole artifact to any parser, including tools/common.
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      std::printf("%s\n  %s", i == 0 ? "" : ",", format_finding(findings[i], fmt).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
  } else {
    for (const Finding& f : findings) {
      std::printf("%s\n", format_finding(f, fmt).c_str());
    }
  }
  if (findings.empty()) {
    std::fprintf(stderr, "manet_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "manet_lint: %zu finding(s)\n", findings.size());
  return 1;
}

}  // namespace manet::lint
