// manet_lint — a simulator-invariant checker for the manetsim tree.
//
// The Boukerche-style protocol comparison is only credible if every run is
// bit-identical for a given seed regardless of host, compiler, or thread
// count. The compiler cannot enforce that; this tool checks the source for
// the project-specific rules that make it true:
//
//   MLNT001 banned-rand          rand()/srand() instead of core/rng streams
//   MLNT002 random-device        std::random_device (hardware entropy)
//   MLNT003 wall-clock-call      time()/clock()/gettimeofday() in sim code
//   MLNT004 wall-clock-chrono    std::chrono outside annotated profiling code
//   MLNT005 rng-outside-core     <random> engines/distributions outside core/rng
//   MLNT006 unordered-iteration  iterating unordered containers where order
//                                can leak into packets or the event queue
//   MLNT007 missing-pragma-once  header without #pragma once
//   MLNT008 float-equality       ==/!= against floating-point literals
//   MLNT009 bad-suppression      malformed or rationale-free suppression
//   MLNT010 scenario-config-aggregate  brace-construction bypassing builder
//
// Shard-safety rules (the static half of the shard-safety checker; the
// dynamic half is core/shard_sentinel.hpp). These are scope-aware: a
// lightweight tokenizer tracks namespace/class/function nesting, so the
// checker knows a `static` inside a function from a class data member and
// can see a whole class body when looking for a missing override:
//
//   MLNT011 shard-unsafe-global  mutable namespace-scope/static state in src/
//   MLNT012 cross-node-access    touching another node's state directly
//   MLNT013 foreign-shard-schedule  scheduling into a foreign shard context
//   MLNT014 missing-restart-override  RoutingProtocol subclass without
//                                on_node_restart()
//
// Suppressions: append `// manet-lint: <tag> - <rationale>` to the offending
// line (or the line directly above it). Each rule has a tag (see rules()).
// A rationale is mandatory — a suppression without one is itself a finding.
// Whole-file opt-outs use the same comment marker with a
// `disable(MLNT00X) - <rationale>` directive within the first 40 lines.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace manet::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     ///< e.g. "MLNT006"
  std::string message;  ///< what happened + fix-it hint
};

struct RuleInfo {
  const char* id;       ///< "MLNT001"
  const char* name;     ///< "banned-rand"
  const char* tag;      ///< suppression tag, e.g. "allow-rand"
  const char* summary;  ///< one-line description
};

/// The rule table, in id order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Output styles for findings: the human one-liner, GitHub Actions
/// workflow-command annotations (`::error file=...,line=...`) that render
/// inline on the PR diff, or JSON objects (the CLI wraps them in one array —
/// a machine-readable findings artifact, shared tools/common/json.* shapes).
enum class Format { kHuman, kGithub, kJson };

/// Render one finding in the given format (no trailing newline).
[[nodiscard]] std::string format_finding(const Finding& f, Format fmt);

/// Lint one file given its text. `paired_text` is the matching header of a
/// .cpp (member containers are declared there); empty when not applicable.
[[nodiscard]] std::vector<Finding> lint_text(const std::string& path, const std::string& text,
                                             const std::string& paired_text = {});

/// Lint a file on disk; for foo.cpp the sibling foo.hpp/.h is loaded as the
/// paired header automatically.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& p);

/// Recursively lint every .cpp/.hpp/.h under `roots` (files are accepted
/// too). Findings come back sorted by file then line.
[[nodiscard]] std::vector<Finding> lint_paths(const std::vector<std::filesystem::path>& roots);

/// Command-line driver: prints findings and returns the process exit code
/// (0 clean, 1 findings, 2 usage error / nonexistent path). Paths that do
/// not exist are hard errors, never silently skipped; unreadable files
/// surface as MLNT000 findings naming the path.
int run_cli(int argc, const char* const* argv);

}  // namespace manet::lint
