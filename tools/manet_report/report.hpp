// manet_report — cross-run metric diff for sweep artifacts.
//
// Compares two results/<name>.json files (the SweepResult::to_json() shape:
// cells[].label + metrics.{name}.{mean,se}) cell by cell and metric by
// metric, printing a table with percent deltas and failing when any metric
// drifts beyond the tolerance. Because every metric is a pure function of
// (scenario, seed), the default tolerance is 0: a committed baseline must be
// reproduced exactly, which is the contract the CI scenario job gates on.
// Profiling fields (wall_s, events_per_sec, rss) are machine noise and are
// deliberately ignored.
//
// Exit codes: 0 identical within tolerance, 1 drift or shape mismatch
// (missing/extra cells, metric sets, replication counts), 2 usage/IO/parse
// error.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"

namespace manet::report {

struct Options {
  /// Max allowed relative drift per metric mean (0 = exact match).
  double tolerance = 0.0;
};

/// One compared (cell, metric) pair.
struct Row {
  std::string cell;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  bool drifted = false;
};

struct Result {
  std::vector<Row> rows;             ///< baseline order: cells, then metrics
  std::vector<std::string> problems; ///< shape mismatches, in discovery order
  int drifted = 0;                   ///< rows over tolerance

  [[nodiscard]] bool ok() const { return drifted == 0 && problems.empty(); }
  /// The rendered comparison table + problem list + a one-line verdict.
  [[nodiscard]] std::string render(const Options& opt) const;
};

/// Compare two parsed sweep artifacts. Shape errors (no "cells" array, cells
/// without labels/metrics) land in `problems`, never throw.
[[nodiscard]] Result compare(const json::Value& baseline, const json::Value& current,
                             const Options& opt);

/// CLI driver: manet_report <baseline.json> <current.json> [--tolerance=F].
int run_cli(int argc, const char* const* argv);

}  // namespace manet::report
