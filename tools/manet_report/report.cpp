#include "report.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

namespace manet::report {

namespace {

using json::Value;

/// cells[] of a sweep artifact, or nullptr + a problem entry.
const Value* cells_of(const Value& root, const char* which, std::vector<std::string>& problems) {
  if (!root.is_object()) {
    problems.emplace_back(std::string(which) + ": top level is not an object");
    return nullptr;
  }
  const Value* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    problems.emplace_back(std::string(which) + ": no \"cells\" array (not a sweep artifact?)");
    return nullptr;
  }
  return cells;
}

const Value* find_cell(const Value& cells, const std::string& label) {
  for (const Value& c : cells.array) {
    const Value* l = c.find("label");
    if (l != nullptr && l->is_string() && l->str == label) return &c;
  }
  return nullptr;
}

/// Relative drift of `cur` against `base` (absolute when base == 0).
/// Exact comparisons are the point here: metrics are pure functions of
/// (scenario, seed), so the tolerance-0 gate must treat any bit-level
/// difference as drift rather than round it away.
double drift_of(double base, double cur) {
  const double d = std::abs(cur - base);
  if (d == 0.0) return 0.0;  // manet-lint: allow-float-eq - tolerance-0 gate is deliberately exact
  return base != 0.0  // manet-lint: allow-float-eq - division guard, not a tolerance check
             ? d / std::abs(base)
             : std::numeric_limits<double>::infinity();
}

std::string fmt_delta(double base, double cur) {
  if (cur == base) return "=";
  if (base == 0.0) return "n/a (baseline 0)";  // manet-lint: allow-float-eq - division guard
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.4g%%", (cur - base) / base * 100.0);
  return buf;
}

}  // namespace

Result compare(const Value& baseline, const Value& current, const Options& opt) {
  Result r;
  const Value* bcells = cells_of(baseline, "baseline", r.problems);
  const Value* ccells = cells_of(current, "current", r.problems);
  if (bcells == nullptr || ccells == nullptr) return r;

  const Value* bseeds = baseline.find("seeds_per_cell");
  const Value* cseeds = current.find("seeds_per_cell");
  if (bseeds != nullptr && cseeds != nullptr && bseeds->is_number() && cseeds->is_number() &&
      bseeds->number != cseeds->number) {
    std::ostringstream os;
    os << "seeds_per_cell differs: baseline " << bseeds->number << ", current "
       << cseeds->number << " (runs are not comparable)";
    r.problems.push_back(os.str());
  }

  for (const Value& bcell : bcells->array) {
    const Value* label = bcell.find("label");
    if (label == nullptr || !label->is_string()) {
      r.problems.emplace_back("baseline: cell without a string \"label\"");
      continue;
    }
    const Value* ccell = find_cell(*ccells, label->str);
    if (ccell == nullptr) {
      r.problems.push_back("cell \"" + label->str + "\" is in the baseline but not the current run");
      continue;
    }
    const Value* bm = bcell.find("metrics");
    const Value* cm = ccell->find("metrics");
    if (bm == nullptr || !bm->is_object() || cm == nullptr || !cm->is_object()) {
      r.problems.push_back("cell \"" + label->str + "\": missing \"metrics\" object");
      continue;
    }
    for (const auto& [mname, mval] : bm->object) {
      const Value* bmean = mval.find("mean");
      const Value* cmetric = cm->find(mname);
      const Value* cmean = cmetric != nullptr ? cmetric->find("mean") : nullptr;
      if (bmean == nullptr || !bmean->is_number()) {
        r.problems.push_back("cell \"" + label->str + "\": baseline metric \"" + mname +
                             "\" has no numeric mean");
        continue;
      }
      if (cmean == nullptr || !cmean->is_number()) {
        r.problems.push_back("cell \"" + label->str + "\": metric \"" + mname +
                             "\" is in the baseline but not the current run");
        continue;
      }
      Row row;
      row.cell = label->str;
      row.metric = mname;
      row.baseline = bmean->number;
      row.current = cmean->number;
      row.drifted = drift_of(row.baseline, row.current) > opt.tolerance;
      if (row.drifted) ++r.drifted;
      r.rows.push_back(std::move(row));
    }
    // Metrics only the current run carries are a shape change too.
    for (const auto& [mname, mval] : cm->object) {
      (void)mval;
      if (bm->find(mname) == nullptr) {
        r.problems.push_back("cell \"" + label->str + "\": metric \"" + mname +
                             "\" is in the current run but not the baseline");
      }
    }
  }
  for (const Value& ccell : ccells->array) {
    const Value* label = ccell.find("label");
    if (label != nullptr && label->is_string() && find_cell(*bcells, label->str) == nullptr) {
      r.problems.push_back("cell \"" + label->str + "\" is in the current run but not the baseline");
    }
  }
  return r;
}

std::string Result::render(const Options& opt) const {
  std::ostringstream os;
  os.precision(10);
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %-18s %16s %16s  %s\n", "cell", "metric", "baseline",
                "current", "delta");
  os << line;
  for (const Row& row : rows) {
    std::snprintf(line, sizeof line, "%-28s %-18s %16.10g %16.10g  %s%s\n", row.cell.c_str(),
                  row.metric.c_str(), row.baseline, row.current,
                  fmt_delta(row.baseline, row.current).c_str(), row.drifted ? "  DRIFT" : "");
    os << line;
  }
  for (const std::string& p : problems) os << "problem: " << p << '\n';
  os << "manet_report: " << rows.size() << " metrics compared, " << drifted
     << " drifted (tolerance " << opt.tolerance << "), " << problems.size() << " problem(s)\n";
  return os.str();
}

int run_cli(int argc, const char* const* argv) {
  Options opt;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      char* end = nullptr;
      opt.tolerance = std::strtod(arg + 12, &end);
      if (end == arg + 12 || *end != '\0' || opt.tolerance < 0.0) {
        std::fprintf(stderr, "manet_report: --tolerance must be a number >= 0, got \"%s\"\n",
                     arg + 12);
        return 2;
      }
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "manet_report: unknown flag \"%s\"\n", arg);
      return 2;
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      std::fprintf(stderr, "manet_report: too many arguments\n");
      return 2;
    }
  }
  if (npaths != 2) {
    std::fprintf(stderr,
                 "usage: manet_report <baseline.json> <current.json> [--tolerance=F]\n");
    return 2;
  }

  Value parsed[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    std::string err;
    if (!json::read_file(paths[i], text, err)) {
      std::fprintf(stderr, "manet_report: %s\n", err.c_str());
      return 2;
    }
    if (!json::parse(text, parsed[i], err)) {
      std::fprintf(stderr, "manet_report: %s: %s\n", paths[i], err.c_str());
      return 2;
    }
  }

  const Result r = compare(parsed[0], parsed[1], opt);
  std::fputs(r.render(opt).c_str(), stdout);
  return r.ok() ? 0 : 1;
}

}  // namespace manet::report
