#include "report.hpp"

int main(int argc, char** argv) { return manet::report::run_cli(argc, argv); }
