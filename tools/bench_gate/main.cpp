#include "gate.hpp"

int main(int argc, char** argv) { return manet::gate::run_cli(argc, argv); }
