// bench_gate — the continuous-benchmark regression gate.
//
// The simulator's throughput (events/sec) is the multiplier on every figure
// reproduction, so it is guarded like a test: a checked-in baseline
// (BENCH_kernel.json) records what the kernel sustained when the baseline
// was last refreshed, and CI fails when a fresh run regresses past a
// noise-tolerant threshold. The tool understands three input shapes:
//
//   * google-benchmark JSON (micro_kernel --benchmark_format=json):
//     entries come from benchmarks[].{name, items_per_second}
//   * sweep artifacts / SweepResult::to_baseline_json():
//     entries come from entries[].{name, events_per_sec, wall_s}, or from a
//     full sweep JSON's top-level + per-cell profile numbers
//   * its own baseline files (the `record` output)
//
// Comparison policy: events/sec gates (machine-comparable rate of fixed,
// deterministic work); memory-per-node (bytes_per_node, the scale sweep's
// peak-RSS/N metric) gates in the opposite direction — growth past the
// threshold fails — whenever both baseline and fresh entries carry it;
// wall-clock is reported and only gates under --strict-wall, because
// absolute seconds do not transfer across machines.
#pragma once

#include <string>
#include <vector>

namespace manet::gate {

/// One named performance measurement.
struct Entry {
  std::string name;
  double events_per_sec = 0.0;
  double wall_s = 0.0;          ///< 0 = not measured (e.g. google-benchmark inputs)
  double bytes_per_node = 0.0;  ///< peak RSS / N; 0 = not measured, not gated
};

/// Parse `text` (any of the three supported JSON shapes) into entries.
/// Returns false and sets `err` on malformed input or an unrecognized shape.
[[nodiscard]] bool extract_entries(const std::string& text, std::vector<Entry>& out,
                                   std::string& err);

/// Render entries as a baseline file (the shape `check` and `record` read).
[[nodiscard]] std::string to_baseline_json(const std::vector<Entry>& entries);

struct CheckOptions {
  double max_regress = 0.25;  ///< fail when fresh events/sec is >25% below
                              ///< baseline, or bytes_per_node >25% above it
  bool strict_wall = false;   ///< also fail on wall-clock regressions
};

struct CheckResult {
  bool ok = true;
  int compared = 0;
  std::vector<std::string> failures;  ///< human-readable, one per violation
  std::string report;                 ///< full comparison table
};

/// Compare fresh entries against the baseline. Every baseline entry must be
/// present in the fresh set — a silently vanished benchmark would otherwise
/// un-gate itself.
[[nodiscard]] CheckResult check(const std::vector<Entry>& baseline,
                                const std::vector<Entry>& fresh, const CheckOptions& opts);

/// CLI driver (see --help). Exit code: 0 ok, 1 regression/missing entry,
/// 2 usage or I/O error.
int run_cli(int argc, const char* const* argv);

}  // namespace manet::gate
