#include "gate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string_view>

#include "common/json.hpp"

namespace manet::gate {

namespace {

// The JSON DOM lives in tools/common/json.* (shared with manet_report and
// the scenario spec loader); this tool only keeps its shape extractors.
using json::Value;

/// google-benchmark --benchmark_format=json: benchmarks[].items_per_second.
/// Aggregate rows (mean/median/stddev under --benchmark_repetitions) are
/// skipped so a baseline recorded without repetitions stays comparable.
bool extract_google_benchmark(const Value& root, std::vector<Entry>& out, std::string& err) {
  const Value* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != Value::Kind::kArray) {
    err = "google-benchmark JSON has no 'benchmarks' array";
    return false;
  }
  for (const Value& b : benches->array) {
    const Value* run_type = b.find("run_type");
    if (run_type != nullptr && run_type->str == "aggregate") continue;
    const Value* name = b.find("name");
    const Value* ips = b.find("items_per_second");
    if (name == nullptr || name->kind != Value::Kind::kString) continue;
    if (ips == nullptr || ips->kind != Value::Kind::kNumber) continue;
    Entry e;
    e.name = name->str;
    e.events_per_sec = ips->number;
    out.push_back(std::move(e));
  }
  if (out.empty()) {
    err = "no benchmarks with items_per_second found (benchmarks must call "
          "SetItemsProcessed)";
    return false;
  }
  return true;
}

/// The gate's own shape: {"schema": 1, "entries": [{name, events_per_sec,
/// wall_s}]} — emitted by `record` and by SweepResult::to_baseline_json().
bool extract_baseline(const Value& root, std::vector<Entry>& out, std::string& err) {
  const Value* entries = root.find("entries");
  if (entries == nullptr || entries->kind != Value::Kind::kArray) {
    err = "baseline JSON has no 'entries' array";
    return false;
  }
  for (const Value& v : entries->array) {
    const Value* name = v.find("name");
    if (name == nullptr || name->kind != Value::Kind::kString) {
      err = "baseline entry missing 'name'";
      return false;
    }
    Entry e;
    e.name = name->str;
    if (const Value* eps = v.find("events_per_sec")) e.events_per_sec = eps->num_or(0.0);
    if (const Value* w = v.find("wall_s")) e.wall_s = w->num_or(0.0);
    if (const Value* b = v.find("bytes_per_node")) e.bytes_per_node = b->num_or(0.0);
    out.push_back(std::move(e));
  }
  return true;
}

/// A full SweepResult::to_json() artifact: top-level throughput plus each
/// cell's profile. Lets CI gate directly on the sweep artifact it already
/// uploads, without a second emission pass.
bool extract_sweep(const Value& root, std::vector<Entry>& out, std::string& err) {
  const Value* name = root.find("name");
  const Value* cells = root.find("cells");
  if (name == nullptr || cells == nullptr || cells->kind != Value::Kind::kArray) {
    err = "sweep JSON missing 'name'/'cells'";
    return false;
  }
  Entry top;
  top.name = name->str;
  if (const Value* eps = root.find("events_per_sec")) top.events_per_sec = eps->num_or(0.0);
  if (const Value* w = root.find("wall_s")) top.wall_s = w->num_or(0.0);
  out.push_back(std::move(top));
  for (const Value& c : cells->array) {
    const Value* label = c.find("label");
    const Value* profile = c.find("profile");
    if (label == nullptr || profile == nullptr) continue;
    Entry e;
    e.name = name->str + "/" + label->str;
    if (const Value* eps = profile->find("events_per_sec")) e.events_per_sec = eps->num_or(0.0);
    if (const Value* w = profile->find("wall_s")) e.wall_s = w->num_or(0.0);
    if (const Value* b = profile->find("bytes_per_node")) e.bytes_per_node = b->num_or(0.0);
    out.push_back(std::move(e));
  }
  return true;
}

[[nodiscard]] std::string format_rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM/s", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk/s", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f/s", v);
  }
  return buf;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bench_gate record --out <baseline.json> <input.json>...\n"
               "       bench_gate check --baseline <baseline.json> [--max-regress F]\n"
               "                  [--strict-wall] <input.json>...\n"
               "\n"
               "Inputs may be google-benchmark JSON (--benchmark_format=json with\n"
               "SetItemsProcessed), sweep artifacts (SweepResult::to_json), or prior\n"
               "baseline files; entries from all inputs are concatenated.\n"
               "\n"
               "  record        merge inputs into a baseline file\n"
               "  check         fail (exit 1) when any baseline entry regresses its\n"
               "                events/sec by more than --max-regress (default 0.25),\n"
               "                grows its bytes_per_node (peak RSS / N, when both\n"
               "                sides measured it) past the same threshold, or is\n"
               "                missing from the fresh inputs\n"
               "  --strict-wall also gate wall_s (off by default: wall-clock does\n"
               "                not transfer across machines)\n");
}

[[nodiscard]] bool load_inputs(const std::vector<std::string>& paths, std::vector<Entry>& out) {
  for (const std::string& path : paths) {
    std::string text;
    std::string err;
    if (!json::read_file(path, text, err) || !extract_entries(text, out, err)) {
      std::fprintf(stderr, "bench_gate: %s: %s\n", path.c_str(), err.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

bool extract_entries(const std::string& text, std::vector<Entry>& out, std::string& err) {
  Value root;
  if (!json::parse(text, root, err)) return false;
  if (root.kind != Value::Kind::kObject) {
    err = "top-level JSON value is not an object";
    return false;
  }
  if (root.find("benchmarks") != nullptr) return extract_google_benchmark(root, out, err);
  if (root.find("entries") != nullptr) return extract_baseline(root, out, err);
  if (root.find("cells") != nullptr) return extract_sweep(root, out, err);
  err = "unrecognized shape: expected 'benchmarks', 'entries', or 'cells'";
  return false;
}

std::string to_baseline_json(const std::vector<Entry>& entries) {
  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"schema\": 1,\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"";
    json::escape(os, e.name);
    os << "\", \"events_per_sec\": " << e.events_per_sec << ", \"wall_s\": " << e.wall_s;
    if (e.bytes_per_node > 0.0) os << ", \"bytes_per_node\": " << e.bytes_per_node;
    os << '}';
  }
  os << "\n  ]\n}\n";
  return os.str();
}

CheckResult check(const std::vector<Entry>& baseline, const std::vector<Entry>& fresh,
                  const CheckOptions& opts) {
  CheckResult r;
  std::map<std::string, const Entry*> by_name;
  for (const Entry& e : fresh) by_name[e.name] = &e;

  std::ostringstream os;
  os.precision(4);
  for (const Entry& base : baseline) {
    const auto it = by_name.find(base.name);
    if (it == by_name.end()) {
      r.failures.push_back(base.name + ": present in baseline but missing from fresh run");
      os << "MISS  " << base.name << "\n";
      continue;
    }
    const Entry& now = *it->second;
    ++r.compared;

    bool bad = false;
    std::string detail;
    if (base.events_per_sec > 0.0) {
      const double delta = now.events_per_sec / base.events_per_sec - 1.0;
      detail = format_rate(base.events_per_sec) + " -> " + format_rate(now.events_per_sec);
      char pct[32];
      std::snprintf(pct, sizeof pct, " (%+.1f%%)", delta * 100.0);
      detail += pct;
      if (delta < -opts.max_regress) {
        bad = true;
        r.failures.push_back(base.name + ": events/sec regressed " + detail);
      }
    }
    // Memory-per-node gates upward: more bytes per node is the regression.
    // Gated only when both sides measured it, so baselines that predate the
    // metric (and non-scale entries) stay comparable.
    if (base.bytes_per_node > 0.0 && now.bytes_per_node > 0.0) {
      const double delta = now.bytes_per_node / base.bytes_per_node - 1.0;
      char mem[96];
      std::snprintf(mem, sizeof mem, "  %.0f -> %.0f B/node (%+.1f%%)", base.bytes_per_node,
                    now.bytes_per_node, delta * 100.0);
      detail += mem;
      if (delta > opts.max_regress) {
        bad = true;
        r.failures.push_back(base.name + ": bytes/node regressed" + std::string(mem));
      }
    }
    if (opts.strict_wall && base.wall_s > 0.0 && now.wall_s > 0.0) {
      const double delta = now.wall_s / base.wall_s - 1.0;
      if (delta > opts.max_regress) {
        bad = true;
        char buf[96];
        std::snprintf(buf, sizeof buf, ": wall_s regressed %.3fs -> %.3fs (%+.1f%%)",
                      base.wall_s, now.wall_s, delta * 100.0);
        r.failures.push_back(base.name + buf);
      }
    }
    os << (bad ? "FAIL  " : "ok    ") << base.name;
    if (!detail.empty()) os << "  " << detail;
    os << "\n";
  }
  r.ok = r.failures.empty();
  r.report = os.str();
  return r;
}

int run_cli(int argc, const char* const* argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string_view cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(stdout);
    return 0;
  }

  std::string out_path;
  std::string baseline_path;
  CheckOptions opts;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_gate: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return 2;
      out_path = v;
    } else if (arg == "--baseline") {
      const char* v = next("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--max-regress") {
      const char* v = next("--max-regress");
      if (v == nullptr) return 2;
      char* end = nullptr;
      opts.max_regress = std::strtod(v, &end);
      if (end == v || opts.max_regress < 0.0) {
        std::fprintf(stderr, "bench_gate: bad --max-regress '%s'\n", v);
        return 2;
      }
    } else if (arg == "--strict-wall") {
      opts.strict_wall = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_gate: unknown flag '%s'\n", std::string(arg).c_str());
      usage(stderr);
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "bench_gate: no input files\n");
    return 2;
  }

  if (cmd == "record") {
    if (out_path.empty()) {
      std::fprintf(stderr, "bench_gate: record requires --out\n");
      return 2;
    }
    std::vector<Entry> entries;
    if (!load_inputs(inputs, entries)) return 2;
    const std::filesystem::path p(out_path);
    std::error_code ec;
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(p, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_gate: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << to_baseline_json(entries);
    std::printf("bench_gate: recorded %zu entries to %s\n", entries.size(), out_path.c_str());
    return out ? 0 : 2;
  }

  if (cmd == "check") {
    if (baseline_path.empty()) {
      std::fprintf(stderr, "bench_gate: check requires --baseline\n");
      return 2;
    }
    std::string text;
    std::string err;
    std::vector<Entry> baseline;
    if (!json::read_file(baseline_path, text, err) || !extract_entries(text, baseline, err)) {
      std::fprintf(stderr, "bench_gate: %s: %s\n", baseline_path.c_str(), err.c_str());
      return 2;
    }
    std::vector<Entry> fresh;
    if (!load_inputs(inputs, fresh)) return 2;
    const CheckResult r = check(baseline, fresh, opts);
    std::fputs(r.report.c_str(), stdout);
    if (!r.ok) {
      std::fprintf(stderr, "bench_gate: %zu violation(s) vs %s (threshold %.0f%%):\n",
                   r.failures.size(), baseline_path.c_str(), opts.max_regress * 100.0);
      for (const std::string& f : r.failures) std::fprintf(stderr, "  %s\n", f.c_str());
      return 1;
    }
    std::printf("bench_gate: %d compared, all within %.0f%% of baseline\n", r.compared,
                opts.max_regress * 100.0);
    return 0;
  }

  std::fprintf(stderr, "bench_gate: unknown command '%s'\n", std::string(cmd).c_str());
  usage(stderr);
  return 2;
}

}  // namespace manet::gate
