// Protocol shootout: run all seven routing protocols on the *same* random
// scenario (identical mobility and traffic, thanks to named RNG streams) and
// print a side-by-side comparison — a one-command mini version of the
// paper's whole evaluation. The (protocol × seed) grid runs as one sweep on
// a shared worker pool, and a JSON artifact lands in results/.
//
//   ./build/examples/protocol_shootout [nodes] [vmax] [seeds]

#include <cstdio>
#include <cstdlib>

#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  ScenarioConfig base;
  base.num_nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50;
  base.v_max = argc > 2 ? std::atof(argv[2]) : 10.0;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 3;
  base.duration = seconds(120);
  base.seed = 1000;

  std::vector<SweepCell> cells;
  for (const Protocol p : kAllProtocols) {
    ScenarioConfig cfg = base;
    cfg.protocol = p;
    cells.push_back({to_string(p), cfg});
  }

  std::printf("protocol shootout: %u nodes, v_max %.0f m/s, %d seeds, %.0f s each\n\n",
              base.num_nodes, base.v_max, seeds, base.duration.sec());

  const SweepRunner runner(seeds);
  SweepResult sweep = runner.run(cells);
  sweep.name = "protocol_shootout";

  std::printf("%-6s | %8s | %10s | %8s | %8s | %12s\n", "proto", "PDR %", "delay ms",
              "NRL", "NML", "kbit/s");
  std::printf("-------+----------+------------+----------+----------+-------------\n");
  for (const SweepCellResult& cell : sweep.cells) {
    const Aggregate& a = cell.aggregate;
    std::printf("%-6s | %8.1f | %10.2f | %8.2f | %8.2f | %12.1f\n", cell.label.c_str(),
                a.pdr.mean * 100.0, a.delay_ms.mean, a.nrl.mean, a.nml.mean,
                a.throughput_kbps.mean);
  }
  std::printf("\nSame seed => identical mobility & traffic for every protocol.\n");
  std::printf("%zu cells x %d seeds on %u threads: %.2f s wall, %.0f events/s\n",
              sweep.cells.size(), sweep.seeds_per_cell, sweep.threads, sweep.wall_s,
              sweep.events_per_sec);
  if (sweep.write_json("results/protocol_shootout.json")) {
    std::printf("artifact: results/protocol_shootout.json\n");
  }
  return 0;
}
