// Protocol shootout: run all seven routing protocols on the *same* random
// scenario (identical mobility and traffic, thanks to named RNG streams) and
// print a side-by-side comparison — a one-command mini version of the
// paper's whole evaluation. The (protocol × seed) grid runs as one sweep on
// a shared worker pool, and a JSON artifact lands in results/.
//
//   ./build/examples/protocol_shootout [nodes] [vmax] [seeds]

#include <cstdio>
#include <cstdlib>

#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  ScenarioBuilder base;
  base.nodes(argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50)
      .speed(0.1, argc > 2 ? std::atof(argv[2]) : 10.0)
      .duration(seconds(120))
      .seed(1000);
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 3;

  // The registry is iterable: every registered protocol gets a sweep cell,
  // so protocol #8 shows up here with zero changes to this file.
  std::vector<SweepCell> cells;
  for (const routing::ProtocolEntry& entry : protocol_registry()) {
    cells.push_back({entry.name, base.protocol(entry.name).build()});
  }
  const ScenarioConfig ref = cells.front().config;

  std::printf("protocol shootout: %u nodes, v_max %.0f m/s, %d seeds, %.0f s each\n\n",
              ref.num_nodes, ref.v_max, seeds, ref.duration.sec());

  const SweepRunner runner(seeds);
  SweepResult sweep = runner.run(cells);
  sweep.name = "protocol_shootout";

  std::printf("%-6s | %8s | %10s | %8s | %8s | %12s\n", "proto", "PDR %", "delay ms",
              "NRL", "NML", "kbit/s");
  std::printf("-------+----------+------------+----------+----------+-------------\n");
  for (const SweepCellResult& cell : sweep.cells) {
    const Aggregate& a = cell.aggregate;
    std::printf("%-6s | %8.1f | %10.2f | %8.2f | %8.2f | %12.1f\n", cell.label.c_str(),
                a.pdr.mean * 100.0, a.delay_ms.mean, a.nrl.mean, a.nml.mean,
                a.throughput_kbps.mean);
  }
  std::printf("\nSame seed => identical mobility & traffic for every protocol.\n");
  std::printf("%zu cells x %d seeds on %u threads: %.2f s wall, %.0f events/s\n",
              sweep.cells.size(), sweep.seeds_per_cell, sweep.threads, sweep.wall_s,
              sweep.events_per_sec);
  if (sweep.write_json("results/protocol_shootout.json")) {
    std::printf("artifact: results/protocol_shootout.json\n");
  }
  return 0;
}
