// Protocol shootout: run all five routing protocols on the *same* random
// scenario (identical mobility and traffic, thanks to named RNG streams) and
// print a side-by-side comparison — a one-command mini version of the
// paper's whole evaluation.
//
//   ./build/examples/protocol_shootout [nodes] [vmax] [seeds]

#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  ScenarioConfig cfg;
  cfg.num_nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50;
  cfg.v_max = argc > 2 ? std::atof(argv[2]) : 10.0;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 3;
  cfg.duration = seconds(120);
  cfg.seed = 1000;

  std::printf("protocol shootout: %u nodes, v_max %.0f m/s, %d seeds, %.0f s each\n\n",
              cfg.num_nodes, cfg.v_max, seeds, cfg.duration.sec());
  std::printf("%-6s | %8s | %10s | %8s | %8s | %12s\n", "proto", "PDR %", "delay ms",
              "NRL", "NML", "kbit/s");
  std::printf("-------+----------+------------+----------+----------+-------------\n");

  ExperimentRunner runner(seeds);
  for (const Protocol p : kAllProtocols) {
    cfg.protocol = p;
    const Aggregate a = runner.run(cfg);
    std::printf("%-6s | %8.1f | %10.2f | %8.2f | %8.2f | %12.1f\n", to_string(p),
                a.pdr.mean * 100.0, a.delay_ms.mean, a.nrl.mean, a.nml.mean,
                a.throughput_kbps.mean);
  }
  std::printf("\nSame seed => identical mobility & traffic for every protocol.\n");
  return 0;
}
