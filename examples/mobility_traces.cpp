// Mobility workbench: generate random-waypoint and random-walk traces and
// report the statistics the MANET literature cares about — average speed
// over time (the classic RWP speed-decay pitfall), neighbour counts, and
// link-change rate at a given radio range. Emits CSV to stdout for plotting.
//
//   ./build/examples/mobility_traces [waypoint|walk] [nodes] [vmax] [pause_s]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "geom/vec2.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const bool walk = argc > 1 && std::strcmp(argv[1], "walk") == 0;
  const int n = argc > 2 ? std::atoi(argv[2]) : 50;
  const double vmax = argc > 3 ? std::atof(argv[3]) : 20.0;
  const double pause_s = argc > 4 ? std::atof(argv[4]) : 0.0;
  const Area area{1000.0, 1000.0};
  const double range = 250.0;

  std::vector<MobilityPtr> nodes;
  for (int i = 0; i < n; ++i) {
    if (walk) {
      RandomWalkConfig cfg;
      cfg.area = area;
      cfg.v_max = vmax;
      nodes.push_back(
          std::make_unique<RandomWalk>(cfg, RngStream(7, "mobility", static_cast<std::uint64_t>(i))));
    } else {
      RandomWaypointConfig cfg;
      cfg.area = area;
      cfg.v_max = vmax;
      cfg.pause = seconds_f(pause_s);
      nodes.push_back(std::make_unique<RandomWaypoint>(
          cfg, RngStream(7, "mobility", static_cast<std::uint64_t>(i))));
    }
  }

  std::fprintf(stderr, "model=%s nodes=%d vmax=%.0f pause=%.0fs range=%.0fm\n",
               walk ? "random-walk" : "random-waypoint", n, vmax, pause_s, range);
  std::printf("t_s,avg_speed_mps,avg_neighbors,link_changes\n");

  const SimTime step = seconds(1);
  std::vector<Vec2> prev(static_cast<std::size_t>(n));
  std::vector<std::vector<bool>> linked(static_cast<std::size_t>(n),
                                        std::vector<bool>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) prev[static_cast<std::size_t>(i)] = nodes[static_cast<std::size_t>(i)]->position_at(SimTime::zero());

  for (int t = 1; t <= 300; ++t) {
    const SimTime now = step * t;
    double speed_sum = 0.0;
    std::vector<Vec2> pos(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pos[static_cast<std::size_t>(i)] = nodes[static_cast<std::size_t>(i)]->position_at(now);
      speed_sum += distance(prev[static_cast<std::size_t>(i)], pos[static_cast<std::size_t>(i)]) / step.sec();
    }
    int links = 0;
    int changes = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const bool now_linked =
            distance2(pos[static_cast<std::size_t>(i)], pos[static_cast<std::size_t>(j)]) <= range * range;
        if (now_linked) ++links;
        if (now_linked != linked[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) ++changes;
        linked[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = now_linked;
      }
    }
    std::printf("%d,%.3f,%.2f,%d\n", t, speed_sum / n, 2.0 * links / n, changes);
    prev = pos;
  }
  return 0;
}
