// simulate — the command-line front end to manetsim.
//
// Everything the ScenarioConfig exposes, driveable from a shell. Runs the
// requested number of replications (in parallel) and prints mean ± standard
// error for every metric.
//
//   ./build/examples/simulate --protocol olsr --nodes 70 --vmax 15 [...]
//       --duration 150 --connections 10 --seeds 5
//   ./build/examples/simulate --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace manet;

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: simulate [options]\n"
      "  --protocol P     aodv|dsr|cbrp|dsdv|olsr|lar|tora   (default aodv)\n"
      "  --nodes N        node count                          (default 50)\n"
      "  --area WxH       area in metres                      (default 1000x1000)\n"
      "  --vmax V         max speed m/s                       (default 20)\n"
      "  --pause S        waypoint pause seconds              (default 0)\n"
      "  --static         immobile nodes\n"
      "  --mobility M     waypoint|walk|gauss-markov|manhattan\n"
      "  --traffic T      cbr|onoff                           (default cbr)\n"
      "  --connections C  CBR flows                           (default 10)\n"
      "  --rate R         packets per second per flow         (default 4)\n"
      "  --duration S     simulated seconds                   (default 150)\n"
      "  --loss P         per-frame loss probability          (default 0)\n"
      "  --no-rts         disable RTS/CTS\n"
      "  --trace FILE     write an ns-2-style event trace\n"
      "  --seed S         root seed                           (default 1)\n"
      "  --seeds K        replications (seed, seed+1, ...)    (default 1)\n"
      "  --quiet          print only the metric rows\n");
  std::exit(code);
}

Protocol parse_protocol(const std::string& s) {
  if (s == "aodv") return Protocol::kAodv;
  if (s == "dsr") return Protocol::kDsr;
  if (s == "cbrp") return Protocol::kCbrp;
  if (s == "dsdv") return Protocol::kDsdv;
  if (s == "olsr") return Protocol::kOlsr;
  if (s == "lar") return Protocol::kLar;
  if (s == "tora") return Protocol::kTora;
  std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
  usage(2);
}

MobilityKind parse_mobility(const std::string& s) {
  if (s == "waypoint") return MobilityKind::kRandomWaypoint;
  if (s == "walk") return MobilityKind::kRandomWalk;
  if (s == "gauss-markov") return MobilityKind::kGaussMarkov;
  if (s == "manhattan") return MobilityKind::kManhattan;
  std::fprintf(stderr, "unknown mobility model '%s'\n", s.c_str());
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  int seeds = 1;
  bool quiet = false;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--protocol") cfg.protocol = parse_protocol(need(i));
    else if (arg == "--nodes") cfg.num_nodes = static_cast<std::uint32_t>(std::atoi(need(i)));
    else if (arg == "--area") {
      const std::string v = need(i);
      const auto x = v.find('x');
      if (x == std::string::npos) usage(2);
      cfg.area = {std::atof(v.substr(0, x).c_str()), std::atof(v.substr(x + 1).c_str())};
    } else if (arg == "--vmax") cfg.v_max = std::atof(need(i));
    else if (arg == "--pause") cfg.pause = seconds_f(std::atof(need(i)));
    else if (arg == "--static") cfg.static_nodes = true;
    else if (arg == "--mobility") cfg.mobility = parse_mobility(need(i));
    else if (arg == "--traffic") cfg.traffic =
        std::strcmp(need(i), "onoff") == 0 ? TrafficKind::kOnOff : TrafficKind::kCbr;
    else if (arg == "--connections") cfg.num_connections =
        static_cast<std::uint32_t>(std::atoi(need(i)));
    else if (arg == "--rate") cfg.cbr_interval = seconds_f(1.0 / std::atof(need(i)));
    else if (arg == "--duration") cfg.duration = seconds_f(std::atof(need(i)));
    else if (arg == "--loss") cfg.phy.frame_loss_rate = std::atof(need(i));
    else if (arg == "--no-rts") cfg.mac.use_rts = false;
    else if (arg == "--trace") cfg.trace_path = need(i);
    else if (arg == "--seed") cfg.seed = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--seeds") seeds = std::atoi(need(i));
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(2);
    }
  }

  if (!quiet) {
    std::printf("manetsim simulate — %s, %d replication(s)\n\n%s\n", to_string(cfg.protocol),
                seeds, cfg.parameter_table().c_str());
  }

  const ExperimentRunner runner(seeds > 0 ? seeds : 1);
  const Aggregate a = runner.run(cfg);

  std::printf("metric                 mean ± se\n");
  std::printf("---------------------  -------------------\n");
  std::printf("pdr_pct                %s\n",
              format_metric({a.pdr.mean * 100.0, a.pdr.se * 100.0}, 2).c_str());
  std::printf("delay_ms               %s\n", format_metric(a.delay_ms, 2).c_str());
  std::printf("nrl                    %s\n", format_metric(a.nrl, 3).c_str());
  std::printf("nml                    %s\n", format_metric(a.nml, 3).c_str());
  std::printf("throughput_kbps        %s\n", format_metric(a.throughput_kbps, 1).c_str());
  std::printf("avg_hops               %s\n", format_metric(a.avg_hops, 2).c_str());
  std::printf("connectivity_pct       %s\n",
              format_metric({a.connectivity.mean * 100.0, a.connectivity.se * 100.0}, 1).c_str());
  return 0;
}
