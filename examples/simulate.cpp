// simulate — the command-line front end to manetsim.
//
// Everything the ScenarioConfig exposes, driveable from a shell. Runs the
// requested number of replications (in parallel) and prints mean ± standard
// error for every metric.
//
//   ./build/examples/simulate --protocol olsr --nodes 70 --vmax 15 [...]
//       --duration 150 --connections 10 --seeds 5
//   ./build/examples/simulate --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/builder.hpp"
#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace manet;

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: simulate [options]\n"
      "  --protocol P     aodv|dsr|cbrp|dsdv|olsr|lar|tora   (default aodv)\n"
      "  --nodes N        node count                          (default 50)\n"
      "  --area WxH       area in metres                      (default 1000x1000)\n"
      "  --vmax V         max speed m/s                       (default 20)\n"
      "  --pause S        waypoint pause seconds              (default 0)\n"
      "  --static         immobile nodes\n"
      "  --mobility M     waypoint|walk|gauss-markov|manhattan\n"
      "  --traffic T      cbr|onoff                           (default cbr)\n"
      "  --connections C  CBR flows                           (default 10)\n"
      "  --rate R         packets per second per flow         (default 4)\n"
      "  --duration S     simulated seconds                   (default 150)\n"
      "  --loss P         per-frame loss probability          (default 0)\n"
      "  --no-rts         disable RTS/CTS\n"
      "  --trace FILE     write an ns-2-style event trace\n"
      "  --shards K       kernel shards (0 = MANET_SHARDS)    (default 0)\n"
      "  --seed S         root seed                           (default 1)\n"
      "  --seeds K        replications (seed, seed+1, ...)    (default 1)\n"
      "  --quiet          print only the metric rows\n");
  std::exit(code);
}

MobilityKind parse_mobility(const std::string& s) {
  if (s == "waypoint") return MobilityKind::kRandomWaypoint;
  if (s == "walk") return MobilityKind::kRandomWalk;
  if (s == "gauss-markov") return MobilityKind::kGaussMarkov;
  if (s == "manhattan") return MobilityKind::kManhattan;
  std::fprintf(stderr, "unknown mobility model '%s'\n", s.c_str());
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioBuilder builder;
  int seeds = 1;
  bool quiet = false;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--protocol") {
      const std::string name = need(i);
      if (protocol_registry().by_name(name) == nullptr) {
        std::fprintf(stderr, "unknown protocol '%s'\n", name.c_str());
        usage(2);
      }
      builder.protocol(name);
    } else if (arg == "--nodes") builder.nodes(static_cast<std::uint32_t>(std::atoi(need(i))));
    else if (arg == "--area") {
      const std::string v = need(i);
      const auto x = v.find('x');
      if (x == std::string::npos) usage(2);
      builder.area(std::atof(v.substr(0, x).c_str()), std::atof(v.substr(x + 1).c_str()));
    } else if (arg == "--vmax") builder.speed(0.1, std::atof(need(i)));
    else if (arg == "--pause") builder.pause(seconds_f(std::atof(need(i))));
    else if (arg == "--static") builder.static_nodes();
    else if (arg == "--mobility") builder.mobility(parse_mobility(need(i)));
    else if (arg == "--traffic") builder.traffic(
        std::strcmp(need(i), "onoff") == 0 ? TrafficKind::kOnOff : TrafficKind::kCbr);
    else if (arg == "--connections") builder.connections(
        static_cast<std::uint32_t>(std::atoi(need(i))));
    else if (arg == "--rate") builder.cbr_interval(seconds_f(1.0 / std::atof(need(i))));
    else if (arg == "--duration") builder.duration(seconds_f(std::atof(need(i))));
    else if (arg == "--loss") builder.frame_loss(std::atof(need(i)));
    else if (arg == "--no-rts") builder.with([](ScenarioConfig& c) { c.mac.use_rts = false; });
    else if (arg == "--trace") builder.trace(need(i));
    else if (arg == "--shards") builder.shards(static_cast<std::uint32_t>(std::atoi(need(i))));
    else if (arg == "--seed") builder.seed(std::strtoull(need(i), nullptr, 10));
    else if (arg == "--seeds") seeds = std::atoi(need(i));
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(2);
    }
  }

  const ScenarioConfig cfg = builder.build();
  if (!quiet) {
    std::printf("manetsim simulate — %s, %d replication(s)\n\n%s\n", to_string(cfg.protocol),
                seeds, cfg.parameter_table().c_str());
  }

  const ExperimentRunner runner(seeds > 0 ? seeds : 1);
  const Aggregate a = runner.run(cfg);

  std::printf("metric                 mean ± se\n");
  std::printf("---------------------  -------------------\n");
  std::printf("pdr_pct                %s\n",
              format_metric({a.pdr.mean * 100.0, a.pdr.se * 100.0}, 2).c_str());
  std::printf("delay_ms               %s\n", format_metric(a.delay_ms, 2).c_str());
  std::printf("nrl                    %s\n", format_metric(a.nrl, 3).c_str());
  std::printf("nml                    %s\n", format_metric(a.nml, 3).c_str());
  std::printf("throughput_kbps        %s\n", format_metric(a.throughput_kbps, 1).c_str());
  std::printf("avg_hops               %s\n", format_metric(a.avg_hops, 2).c_str());
  std::printf("connectivity_pct       %s\n",
              format_metric({a.connectivity.mean * 100.0, a.connectivity.se * 100.0}, 1).c_str());
  return 0;
}
