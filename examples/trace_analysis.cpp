// Trace-driven analysis — the original ns-2 methodology, end to end.
//
// Runs one scenario with event tracing enabled, then post-processes the
// trace file exactly the way the 1998-2001 papers post-processed out.tr
// with awk: recompute packet delivery ratio and per-hop forwarding counts
// from the raw events, and cross-check them against the in-simulator
// metrics. Demonstrates the TraceWriter API and doubles as a sanity check
// that the two accounting paths agree.
//
//   ./build/examples/trace_analysis [aodv|dsr|cbrp|dsdv|olsr|lar]

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const std::string trace_path = "/tmp/manetsim_trace_analysis.tr";
  ScenarioBuilder builder;
  if (argc > 1) builder.protocol(argv[1]);  // registry lookup, case-insensitive
  const ScenarioConfig cfg = builder.nodes(30)
                                 .area(800.0, 800.0)
                                 .speed(0.1, 10.0)
                                 .connections(6)
                                 .duration(seconds(60))
                                 .seed(7)
                                 .trace(trace_path)
                                 .build();

  std::printf("trace analysis — %s, trace at %s\n\n", to_string(cfg.protocol),
              trace_path.c_str());
  const ScenarioResult r = Scenario::run_once(cfg);

  // awk-style pass over the trace.
  std::ifstream in(trace_path);
  std::uint64_t sends = 0, receives = 0, forwards = 0, drops = 0;
  std::map<std::string, int> drop_reasons;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Format: <ev> <time> _<node>_ RTR <uid> <type> <bytes> [<src> -> <dst>] <note>
    std::istringstream ls(line);
    char ev;
    double t;
    std::string node, layer, type;
    std::uint64_t uid, bytes;
    ls >> ev >> t >> node >> layer >> uid >> type >> bytes;
    if (type != "cbr") continue;
    switch (ev) {
      case 's': ++sends; break;
      case 'r': ++receives; break;
      case 'f': ++forwards; break;
      case 'D': {
        ++drops;
        std::string bracket, arrow, dst, reason;
        ls >> bracket >> arrow >> dst >> reason;
        ++drop_reasons[reason];
        break;
      }
      default: break;
    }
  }

  const double trace_pdr = sends > 0 ? static_cast<double>(receives) / sends : 0.0;
  std::printf("from the trace:\n");
  std::printf("  data sends    : %llu\n", static_cast<unsigned long long>(sends));
  std::printf("  data receives : %llu  (PDR %.1f %%)\n",
              static_cast<unsigned long long>(receives), trace_pdr * 100.0);
  std::printf("  forwards      : %llu  (%.2f per delivered packet)\n",
              static_cast<unsigned long long>(forwards),
              receives ? static_cast<double>(forwards) / receives : 0.0);
  std::printf("  drops         : %llu\n", static_cast<unsigned long long>(drops));
  for (const auto& [reason, n] : drop_reasons) {
    std::printf("      %-18s %d\n", reason.c_str(), n);
  }

  std::printf("\nfrom the in-simulator metrics:\n");
  std::printf("  PDR %.1f %%, delay %.2f ms, NRL %.2f, NML %.2f\n", r.pdr * 100.0, r.delay_ms,
              r.nrl, r.nml);

  const bool agree =
      sends == r.data_originated && receives == r.data_delivered;
  std::printf("\ncross-check: trace and metrics %s\n",
              agree ? "AGREE exactly" : "DISAGREE (bug!)");
  return agree ? 0 : 1;
}
