// Extending manetsim with a custom routing protocol.
//
// Implements naive network-wide flooding ("every data packet is broadcast;
// every node rebroadcasts unseen packets") through the public RoutingProtocol
// interface, runs it against AODV on the same scenario, and prints the
// comparison. Flooding delivers well but at a crushing MAC cost — a nice
// demonstration of why the paper's protocols exist, and a template for
// plugging in your own design.

#include <cstdio>
#include <unordered_set>

#include "net/node.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace manet;

class Flooding final : public RoutingProtocol {
 public:
  explicit Flooding(Node& node) : RoutingProtocol(node) {}

  void start() override {}

  void route_packet(Packet pkt) override {
    // Every data packet travels as a broadcast storm. Duplicate suppression
    // by (source, flow, seq); delivery is handled by the Node when a copy
    // reaches the destination... except broadcasts are not addressed, so we
    // deliver by inspection here and rebroadcast otherwise.
    if (!seen_.insert(key(pkt)).second) return;
    if (pkt.ip.ttl <= 1) {
      node_.drop(pkt, DropReason::kTtlExpired);
      return;
    }
    --pkt.ip.ttl;
    node_.send_broadcast(std::move(pkt));
  }

  void on_control(const Packet&, NodeId) override {}

  // Cold restart: a resurrected node must not suppress "duplicates" it saw
  // in its previous life, or post-recovery floods die at the first hop.
  void on_node_restart() override { seen_.clear(); }

  [[nodiscard]] const char* name() const override { return "FLOOD"; }

 private:
  static std::uint64_t key(const Packet& p) {
    return (static_cast<std::uint64_t>(p.ip.src) << 40) ^
           (static_cast<std::uint64_t>(p.app.flow) << 20) ^ p.app.seq;
  }
  std::unordered_set<std::uint64_t> seen_;
};

ScenarioResult run_flooding(const ScenarioConfig& cfg) {
  // Assemble manually: Scenario's factory only knows registered protocols, so
  // this is exactly what a downstream user with a new protocol would write.
  Scenario s(cfg);
  s.build();
  std::vector<std::unique_ptr<Flooding>> agents;
  for (std::size_t i = 0; i < s.size(); ++i) {
    agents.push_back(std::make_unique<Flooding>(s.node(i)));
    s.node(i).set_routing(agents.back().get());
  }
  return s.run();
}

void print_row(const char* name, const ScenarioResult& r) {
  std::printf("%-6s | %7.1f %% | %9.2f ms | %7.2f | %7.2f\n", name, r.pdr * 100.0,
              r.delay_ms, r.nrl, r.nml);
}

}  // namespace

int main() {
  ScenarioBuilder builder;
  builder.nodes(30).area(800.0, 800.0).speed(0.1, 10.0).connections(6).duration(seconds(60)).seed(
      99);
  const ScenarioConfig cfg = builder.build();

  std::printf("custom protocol demo: naive flooding vs AODV, %u nodes\n\n", cfg.num_nodes);
  std::printf("proto  |     PDR   |     delay    |   NRL   |   NML\n");
  std::printf("-------+-----------+--------------+---------+---------\n");

  print_row("FLOOD", run_flooding(cfg));

  print_row("AODV", Scenario::run_once(builder.protocol(Protocol::kAodv).build()));

  std::printf(
      "\nFlooding needs no control packets (NRL 0) but every data packet is\n"
      "transmitted by every node — compare per-packet MAC cost and watch the\n"
      "medium saturate as the network grows.\n");
  return 0;
}
