// Quickstart: simulate 50 mobile nodes running AODV for 150 seconds and
// print the four canonical metrics. Change `cfg.protocol` to compare.
//
//   ./build/examples/quickstart [aodv|dsr|cbrp|dsdv|olsr] [seed]

#include <cstdio>
#include <cstring>
#include <string>

#include "scenario/scenario.hpp"

namespace {

manet::Protocol parse_protocol(const char* s) {
  using manet::Protocol;
  if (std::strcmp(s, "dsr") == 0) return Protocol::kDsr;
  if (std::strcmp(s, "cbrp") == 0) return Protocol::kCbrp;
  if (std::strcmp(s, "dsdv") == 0) return Protocol::kDsdv;
  if (std::strcmp(s, "olsr") == 0) return Protocol::kOlsr;
  return Protocol::kAodv;
}

}  // namespace

int main(int argc, char** argv) {
  manet::ScenarioConfig cfg;
  cfg.protocol = argc > 1 ? parse_protocol(argv[1]) : manet::Protocol::kAodv;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("manetsim quickstart — %s, %u nodes, %g s\n\n",
              manet::to_string(cfg.protocol), cfg.num_nodes, cfg.duration.sec());
  std::printf("%s\n", cfg.parameter_table().c_str());

  manet::Scenario scenario(cfg);
  const manet::ScenarioResult r = scenario.run();

  std::printf("Results:\n");
  std::printf("  packet delivery ratio : %.1f %%\n", r.pdr * 100.0);
  std::printf("  avg end-to-end delay  : %.2f ms\n", r.delay_ms);
  std::printf("  normalized routing ld : %.2f tx/pkt\n", r.nrl);
  std::printf("  normalized MAC load   : %.2f tx/pkt\n", r.nml);
  std::printf("  throughput            : %.1f kbit/s\n", r.throughput_kbps);
  std::printf("  avg hops              : %.2f\n", r.avg_hops);
  std::printf("  oracle connectivity   : %.1f %% (PDR upper bound)\n", r.connectivity * 100.0);
  std::printf("  data sent/delivered   : %llu / %llu\n",
              static_cast<unsigned long long>(r.data_originated),
              static_cast<unsigned long long>(r.data_delivered));
  std::printf("  events executed       : %llu\n",
              static_cast<unsigned long long>(r.events));
  std::printf("\n%s\n", scenario.stats().summary(cfg.duration).c_str());
  return 0;
}
