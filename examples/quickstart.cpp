// Quickstart: simulate 50 mobile nodes running AODV for 150 seconds and
// print the four canonical metrics. Pass any registered protocol name to
// compare (the registry does case-insensitive lookup and rejects typos
// with the full list of registered names).
//
//   ./build/examples/quickstart [aodv|dsr|cbrp|dsdv|olsr|lar|tora] [seed]

#include <cstdio>
#include <cstdlib>

#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  manet::ScenarioBuilder builder;
  if (argc > 1) builder.protocol(argv[1]);
  builder.seed(argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42);
  const manet::ScenarioConfig cfg = builder.build();

  std::printf("manetsim quickstart — %s, %u nodes, %g s\n\n",
              manet::to_string(cfg.protocol), cfg.num_nodes, cfg.duration.sec());
  std::printf("%s\n", cfg.parameter_table().c_str());

  manet::Scenario scenario(cfg);
  const manet::ScenarioResult r = scenario.run();

  std::printf("Results:\n");
  std::printf("  packet delivery ratio : %.1f %%\n", r.pdr * 100.0);
  std::printf("  avg end-to-end delay  : %.2f ms\n", r.delay_ms);
  std::printf("  normalized routing ld : %.2f tx/pkt\n", r.nrl);
  std::printf("  normalized MAC load   : %.2f tx/pkt\n", r.nml);
  std::printf("  throughput            : %.1f kbit/s\n", r.throughput_kbps);
  std::printf("  avg hops              : %.2f\n", r.avg_hops);
  std::printf("  oracle connectivity   : %.1f %% (PDR upper bound)\n", r.connectivity * 100.0);
  std::printf("  data sent/delivered   : %llu / %llu\n",
              static_cast<unsigned long long>(r.data_originated),
              static_cast<unsigned long long>(r.data_delivered));
  std::printf("  events executed       : %llu\n",
              static_cast<unsigned long long>(r.events));
  std::printf("\n%s\n", scenario.stats().summary(cfg.duration).c_str());
  return 0;
}
