// Per-flow accounting in the style of ns-3's FlowMonitor.
//
// One FlowMonitor per simulation run. The reliable transport (src/transport)
// reports each flow's transmissions, retransmissions and in-order deliveries;
// the monitor keeps one fixed-size record per flow — counters and running
// sums only, never per-packet history — so memory is O(active flows)
// regardless of how many packets a flow moves. Finished flows can be
// retire()d out of the active table into a frozen list, keeping the hot map
// sized by what is actually in flight.
//
// Jitter follows the RFC 3550 idea reduced to its deterministic core: the
// mean absolute difference between consecutive one-way delays of a flow.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/time.hpp"
#include "packet/packet.hpp"

namespace manet {

/// Accounting record of one flow. All counters are cumulative over the run.
struct FlowRecord {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t tx_packets = 0;  ///< distinct segments first-transmitted
  std::uint64_t tx_bytes = 0;    ///< payload bytes of those segments
  std::uint64_t rx_packets = 0;  ///< segments delivered in order at the sink
  std::uint64_t rx_bytes = 0;    ///< payload bytes of those deliveries
  std::uint64_t retransmissions = 0;
  double delay_sum_s = 0.0;      ///< sum of end-to-end delays over rx_packets
  double jitter_sum_s = 0.0;     ///< sum of |delay_i - delay_{i-1}|
  std::uint64_t jitter_samples = 0;
  SimTime first_tx = SimTime::zero();
  SimTime last_rx = SimTime::zero();

  [[nodiscard]] double avg_delay_ms() const {
    return rx_packets == 0 ? 0.0 : delay_sum_s * 1e3 / static_cast<double>(rx_packets);
  }
  [[nodiscard]] double mean_jitter_ms() const {
    return jitter_samples == 0 ? 0.0
                               : jitter_sum_s * 1e3 / static_cast<double>(jitter_samples);
  }

 private:
  friend class FlowMonitor;
  double last_delay_s_ = 0.0;
  bool has_last_delay_ = false;
};

class FlowMonitor {
 public:
  /// A segment's first transmission (retransmissions go to on_retransmit).
  void on_tx(std::uint32_t flow, NodeId src, NodeId dst, std::size_t payload_bytes, SimTime at);
  void on_retransmit(std::uint32_t flow);
  /// An in-order delivery at the sink; `delay` is end-to-end (original send
  /// to delivery, retransmission latency included).
  void on_rx(std::uint32_t flow, std::size_t payload_bytes, SimTime delay, SimTime at);

  /// Move a flow out of the active table into the frozen finished list.
  /// Totals are preserved; later on_* calls for the id reopen a fresh record.
  void retire(std::uint32_t flow);

  /// Active record for `flow`, or nullptr if absent (never saw traffic, or
  /// retired).
  [[nodiscard]] const FlowRecord* find(std::uint32_t flow) const;
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] std::size_t finished_count() const { return finished_.size(); }

  /// Every record — active and finished — sorted by flow id (finished flows
  /// keep their retirement order within an id, though ids are unique in
  /// practice). The canonical artifact-emission view.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, FlowRecord>> all() const;

  [[nodiscard]] std::uint64_t total_rx_bytes() const;
  [[nodiscard]] std::uint64_t total_retransmissions() const;

 private:
  std::map<std::uint32_t, FlowRecord> active_;
  std::vector<std::pair<std::uint32_t, FlowRecord>> finished_;
};

}  // namespace manet
