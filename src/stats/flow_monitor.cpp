#include "stats/flow_monitor.hpp"

#include <algorithm>

namespace manet {

void FlowMonitor::on_tx(std::uint32_t flow, NodeId src, NodeId dst, std::size_t payload_bytes,
                        SimTime at) {
  FlowRecord& f = active_[flow];
  if (f.tx_packets == 0 && f.rx_packets == 0) {
    f.src = src;
    f.dst = dst;
    f.first_tx = at;
  }
  ++f.tx_packets;
  f.tx_bytes += payload_bytes;
}

void FlowMonitor::on_retransmit(std::uint32_t flow) { ++active_[flow].retransmissions; }

void FlowMonitor::on_rx(std::uint32_t flow, std::size_t payload_bytes, SimTime delay,
                        SimTime at) {
  FlowRecord& f = active_[flow];
  ++f.rx_packets;
  f.rx_bytes += payload_bytes;
  const double d = delay.sec();
  f.delay_sum_s += d;
  if (f.has_last_delay_) {
    f.jitter_sum_s += d >= f.last_delay_s_ ? d - f.last_delay_s_ : f.last_delay_s_ - d;
    ++f.jitter_samples;
  }
  f.last_delay_s_ = d;
  f.has_last_delay_ = true;
  f.last_rx = at;
}

void FlowMonitor::retire(std::uint32_t flow) {
  const auto it = active_.find(flow);
  if (it == active_.end()) return;
  finished_.emplace_back(it->first, it->second);
  active_.erase(it);
}

const FlowRecord* FlowMonitor::find(std::uint32_t flow) const {
  const auto it = active_.find(flow);
  return it == active_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::uint32_t, FlowRecord>> FlowMonitor::all() const {
  std::vector<std::pair<std::uint32_t, FlowRecord>> out(finished_);
  out.insert(out.end(), active_.begin(), active_.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::uint64_t FlowMonitor::total_rx_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [id, f] : active_) n += f.rx_bytes;
  for (const auto& [id, f] : finished_) n += f.rx_bytes;
  return n;
}

std::uint64_t FlowMonitor::total_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& [id, f] : active_) n += f.retransmissions;
  for (const auto& [id, f] : finished_) n += f.retransmissions;
  return n;
}

}  // namespace manet
