// Per-run metric collection.
//
// One StatsCollector per simulation run; every layer increments it directly,
// so no trace files are written or post-processed (ns-2 users did this with
// awk over out.tr — we fold the same arithmetic into the run). The four
// canonical metrics of the paper family are derived here:
//
//   PDR  = delivered data packets / originated data packets
//   delay = mean end-to-end latency over delivered data packets
//   NRL  = routing-control transmissions (each hop counts) / delivered
//   NML  = (routing + RTS + CTS + MAC ACK + ARP) transmissions / delivered
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/time.hpp"

namespace manet {

/// Why a packet was dropped. Kept fine-grained: the distribution of drop
/// reasons is how one debugs a protocol and explains a PDR curve.
enum class DropReason : std::uint8_t {
  kIfqFull,         ///< interface queue overflow (congestion)
  kMacRetryLimit,   ///< unicast retries exhausted (link break / collision storm)
  kNoRoute,         ///< routing had no route and could not buffer
  kBufferTimeout,   ///< sat in a route-request buffer too long
  kBufferOverflow,  ///< route-request buffer full
  kTtlExpired,      ///< TTL reached zero
  kArpFail,         ///< ARP could not resolve next hop
  kLoop,            ///< routing loop detected (same packet seen again)
  kProtocol,        ///< protocol-specific discard (e.g. stale source route)
  kNodeDown,        ///< held by a node that crashed (fault injection)
  kTransportGiveUp, ///< reliable transport exhausted max_retx and aborted the flow incarnation
  kCount_
};

[[nodiscard]] const char* to_string(DropReason r);

class StatsCollector {
 public:
  // -- data path -----------------------------------------------------------
  void on_data_originated(std::uint32_t flow = 0);
  /// `at` (absolute sim-time of the delivery) feeds the fault-recovery
  /// metrics; the zero default keeps fault-free call sites unchanged.
  void on_data_delivered(SimTime delay, std::size_t payload_bytes, std::uint32_t hops,
                         std::uint32_t flow = 0, SimTime at = SimTime::zero());
  void on_data_dropped(DropReason r) { ++drops_[static_cast<std::size_t>(r)]; }
  /// A further copy of an already-delivered packet reached the sink (route
  /// flaps, flooding protocols); not counted in PDR.
  void on_duplicate_delivery() { ++duplicate_deliveries_; }

  // -- control path (counted per transmission, i.e. per hop) ---------------
  void on_routing_tx(std::size_t bytes) {
    ++routing_tx_;
    routing_bytes_ += bytes;
  }
  void on_mac_ctrl_tx() { ++mac_ctrl_tx_; }  // RTS / CTS / MAC ACK
  void on_arp_tx() { ++arp_tx_; }
  void on_data_tx() { ++data_tx_; }  // per-hop data transmissions (incl. retries)

  // -- physical layer ------------------------------------------------------
  void on_collision() { ++collisions_; }
  void on_tx_energy(double joules) { energy_tx_j_ += joules; }
  void on_rx_energy(double joules) { energy_rx_j_ += joules; }

  // -- fault injection -------------------------------------------------------
  void on_node_crash() { ++crashes_; }
  /// A decodable frame was corrupted by the channel fault process.
  void on_fault_corruption(bool data_frame) {
    ++fault_corrupted_;
    if (data_frame) ++fault_corrupted_data_;
  }
  /// A connectivity fault (crash, link blackout, partition) began/healed.
  /// Corruption windows are deliberately not counted: they degrade links
  /// without severing them, so they don't define an outage to recover from.
  void on_fault_begin(SimTime at);
  void on_fault_end(SimTime at);

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t fault_corrupted() const { return fault_corrupted_; }
  [[nodiscard]] std::uint64_t fault_corrupted_data() const { return fault_corrupted_data_; }
  [[nodiscard]] std::uint64_t delivered_during_fault() const { return delivered_during_fault_; }
  [[nodiscard]] std::uint64_t delivered_after_fault() const { return delivered_after_fault_; }
  /// Mean time from a fault healing to the next successful data delivery —
  /// the observable route-repair latency. 0 if no heal was ever followed by
  /// a delivery.
  [[nodiscard]] double mean_repair_latency_s() const;

  // -- raw counters ---------------------------------------------------------
  [[nodiscard]] std::uint64_t data_originated() const { return data_originated_; }
  [[nodiscard]] std::uint64_t data_delivered() const { return data_delivered_; }
  [[nodiscard]] std::uint64_t data_tx() const { return data_tx_; }
  [[nodiscard]] std::uint64_t routing_tx() const { return routing_tx_; }
  [[nodiscard]] std::uint64_t routing_bytes() const { return routing_bytes_; }
  [[nodiscard]] std::uint64_t mac_ctrl_tx() const { return mac_ctrl_tx_; }
  [[nodiscard]] std::uint64_t arp_tx() const { return arp_tx_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  [[nodiscard]] std::uint64_t duplicate_deliveries() const { return duplicate_deliveries_; }
  /// Total application payload bytes over delivered data packets (the
  /// numerator of throughput; cross-checked against FlowMonitor rx bytes).
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] double energy_tx_j() const { return energy_tx_j_; }
  [[nodiscard]] double energy_rx_j() const { return energy_rx_j_; }
  /// Radio energy (tx+rx airtime only; idle/sleep not modelled) per
  /// delivered data packet, in millijoules; 0 when nothing was delivered.
  [[nodiscard]] double energy_per_delivered_mj() const {
    if (data_delivered_ == 0) return 0.0;
    return (energy_tx_j_ + energy_rx_j_) * 1e3 / static_cast<double>(data_delivered_);
  }
  [[nodiscard]] std::uint64_t drops(DropReason r) const {
    return drops_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] std::uint64_t total_drops() const;

  // -- derived metrics -------------------------------------------------------
  /// Packet delivery ratio in [0,1]; 1 when nothing was sent.
  [[nodiscard]] double pdr() const;
  /// Mean end-to-end delay of delivered packets, seconds; 0 if none.
  [[nodiscard]] double avg_delay_s() const;
  /// Mean hop count of delivered packets; 0 if none.
  [[nodiscard]] double avg_hops() const;
  /// Normalized routing load (per delivered packet).
  [[nodiscard]] double nrl() const;
  /// Normalized MAC load (per delivered packet).
  [[nodiscard]] double nml() const;
  /// Delivered application throughput in bit/s over `duration`.
  [[nodiscard]] double throughput_bps(SimTime duration) const;

  // -- per-flow breakdown -----------------------------------------------------
  struct FlowStats {
    std::uint64_t originated = 0;
    std::uint64_t delivered = 0;
    double delay_sum_s = 0.0;

    [[nodiscard]] double pdr() const {
      return originated == 0 ? 1.0
                             : static_cast<double>(delivered) / static_cast<double>(originated);
    }
    [[nodiscard]] double avg_delay_s() const {
      return delivered == 0 ? 0.0 : delay_sum_s / static_cast<double>(delivered);
    }
  };
  /// Stats of one flow (zeros if the flow never sent).
  [[nodiscard]] FlowStats flow(std::uint32_t id) const;
  /// All flows seen, sorted by id.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, FlowStats>> flows() const;

  /// Multi-line human-readable summary (examples and debugging).
  [[nodiscard]] std::string summary(SimTime duration) const;

 private:
  std::uint64_t data_originated_ = 0;
  std::uint64_t data_delivered_ = 0;
  std::uint64_t data_tx_ = 0;
  std::uint64_t routing_tx_ = 0;
  std::uint64_t routing_bytes_ = 0;
  std::uint64_t mac_ctrl_tx_ = 0;
  std::uint64_t arp_tx_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t duplicate_deliveries_ = 0;
  double energy_tx_j_ = 0.0;
  double energy_rx_j_ = 0.0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t hops_sum_ = 0;
  double delay_sum_s_ = 0.0;
  std::uint64_t drops_[static_cast<std::size_t>(DropReason::kCount_)] = {};
  std::map<std::uint32_t, FlowStats> flows_;

  // Fault accounting.
  std::uint64_t crashes_ = 0;
  std::uint64_t fault_corrupted_ = 0;
  std::uint64_t fault_corrupted_data_ = 0;
  std::uint64_t delivered_during_fault_ = 0;
  std::uint64_t delivered_after_fault_ = 0;
  int active_faults_ = 0;
  bool any_heal_ = false;
  /// Heal instants not yet matched with a delivery; drained (one repair-
  /// latency sample each) by the first delivery at or after them.
  std::vector<SimTime> pending_heals_;
  double repair_latency_sum_s_ = 0.0;
  std::uint64_t repair_latency_samples_ = 0;
};

}  // namespace manet
