#include "stats/stats.hpp"

#include <sstream>

namespace manet {

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kIfqFull: return "ifq-full";
    case DropReason::kMacRetryLimit: return "mac-retry-limit";
    case DropReason::kNoRoute: return "no-route";
    case DropReason::kBufferTimeout: return "buffer-timeout";
    case DropReason::kBufferOverflow: return "buffer-overflow";
    case DropReason::kTtlExpired: return "ttl-expired";
    case DropReason::kArpFail: return "arp-fail";
    case DropReason::kLoop: return "routing-loop";
    case DropReason::kProtocol: return "protocol-discard";
    case DropReason::kNodeDown: return "node-down";
    case DropReason::kTransportGiveUp: return "transport-give-up";
    case DropReason::kCount_: break;
  }
  return "?";
}

void StatsCollector::on_data_originated(std::uint32_t flow) {
  ++data_originated_;
  ++flows_[flow].originated;
}

void StatsCollector::on_data_delivered(SimTime delay, std::size_t payload_bytes,
                                       std::uint32_t hops, std::uint32_t flow, SimTime at) {
  ++data_delivered_;
  delay_sum_s_ += delay.sec();
  delivered_bytes_ += payload_bytes;
  hops_sum_ += hops;
  FlowStats& f = flows_[flow];
  ++f.delivered;
  f.delay_sum_s += delay.sec();

  // Fault-recovery bookkeeping. `at` is zero (and the fault counters idle)
  // unless the scenario armed a fault plan.
  if (active_faults_ > 0) {
    ++delivered_during_fault_;
  } else if (any_heal_) {
    ++delivered_after_fault_;
  }
  if (!pending_heals_.empty()) {
    for (const SimTime heal : pending_heals_) {
      repair_latency_sum_s_ += (at - heal).sec();
      ++repair_latency_samples_;
    }
    pending_heals_.clear();
  }
}

void StatsCollector::on_fault_begin(SimTime /*at*/) { ++active_faults_; }

void StatsCollector::on_fault_end(SimTime at) {
  --active_faults_;
  any_heal_ = true;
  pending_heals_.push_back(at);
}

double StatsCollector::mean_repair_latency_s() const {
  if (repair_latency_samples_ == 0) return 0.0;
  return repair_latency_sum_s_ / static_cast<double>(repair_latency_samples_);
}

StatsCollector::FlowStats StatsCollector::flow(std::uint32_t id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? FlowStats{} : it->second;
}

std::vector<std::pair<std::uint32_t, StatsCollector::FlowStats>> StatsCollector::flows() const {
  return {flows_.begin(), flows_.end()};  // std::map: already sorted by id
}

std::uint64_t StatsCollector::total_drops() const {
  std::uint64_t n = 0;
  for (const auto d : drops_) n += d;
  return n;
}

double StatsCollector::pdr() const {
  if (data_originated_ == 0) return 1.0;
  return static_cast<double>(data_delivered_) / static_cast<double>(data_originated_);
}

double StatsCollector::avg_delay_s() const {
  if (data_delivered_ == 0) return 0.0;
  return delay_sum_s_ / static_cast<double>(data_delivered_);
}

double StatsCollector::avg_hops() const {
  if (data_delivered_ == 0) return 0.0;
  return static_cast<double>(hops_sum_) / static_cast<double>(data_delivered_);
}

double StatsCollector::nrl() const {
  // When nothing was delivered, normalize by 1 to keep the metric finite —
  // a convention also used in the ns-2 scripts of this literature.
  const double denom = data_delivered_ > 0 ? static_cast<double>(data_delivered_) : 1.0;
  return static_cast<double>(routing_tx_) / denom;
}

double StatsCollector::nml() const {
  const double denom = data_delivered_ > 0 ? static_cast<double>(data_delivered_) : 1.0;
  return static_cast<double>(routing_tx_ + mac_ctrl_tx_ + arp_tx_) / denom;
}

double StatsCollector::throughput_bps(SimTime duration) const {
  if (duration <= SimTime::zero()) return 0.0;
  return static_cast<double>(delivered_bytes_) * 8.0 / duration.sec();
}

std::string StatsCollector::summary(SimTime duration) const {
  std::ostringstream os;
  os << "data: " << data_originated_ << " sent, " << data_delivered_ << " delivered (PDR "
     << pdr() * 100.0 << "%)\n";
  os << "delay: " << avg_delay_s() * 1e3 << " ms avg over " << avg_hops() << " hops avg\n";
  os << "routing: " << routing_tx_ << " ctrl tx (" << routing_bytes_ << " B), NRL " << nrl()
     << "\n";
  os << "mac: " << mac_ctrl_tx_ << " ctrl tx, " << arp_tx_ << " arp tx, NML " << nml() << ", "
     << collisions_ << " collisions\n";
  os << "throughput: " << throughput_bps(duration) / 1e3 << " kbit/s\n";
  os << "drops:";
  for (std::size_t i = 0; i < static_cast<std::size_t>(DropReason::kCount_); ++i) {
    if (drops_[i] != 0) {
      os << ' ' << to_string(static_cast<DropReason>(i)) << '=' << drops_[i];
    }
  }
  os << '\n';
  if (crashes_ != 0 || fault_corrupted_ != 0 || any_heal_) {
    os << "faults: " << crashes_ << " crashes, " << fault_corrupted_ << " frames corrupted, "
       << delivered_during_fault_ << " delivered during / " << delivered_after_fault_
       << " after outages, repair " << mean_repair_latency_s() * 1e3 << " ms avg\n";
  }
  if (!flows_.empty()) {
    os << "per-flow:";
    for (const auto& [id, f] : flows_) {
      os << " #" << id << "=" << f.delivered << '/' << f.originated;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace manet
