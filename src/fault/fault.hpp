// Deterministic fault injection.
//
// A FaultPlan compiles a FaultConfig into a fixed, seeded schedule of timed
// fault events — node crash/restart pairs, per-link blackout windows,
// region-level partitions, and a channel corruption window — before the
// simulation starts. The scenario builder turns each FaultEvent into an
// ordinary simulator event, so a faulted run remains a pure function of
// (scenario, seed): the schedule itself never consults simulation state, and
// the only mid-run randomness (per-frame corruption draws) comes from its own
// named RngStream that is touched only while a corruption window is active.
//
// FaultRuntime is the mutable view the stack consults on the hot path: which
// nodes are currently down, which links are blacked out, whether the
// partition cut is active, and the current corruption probability. It is
// updated exclusively by the scheduled fault events, which keeps
// boundary-instant semantics consistent with event-queue ordering rather
// than depending on time-window comparisons at every call site.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "geom/vec2.hpp"
#include "packet/packet.hpp"

namespace manet {

/// Knobs for the compiled fault schedule. All rates are expectations over the
/// whole run; the compiled plan is deterministic given (config, seed).
struct FaultConfig {
  /// Expected number of crash/restart cycles per node over the run.
  double crash_rate = 0.0;
  /// Mean downtime of a crashed node (exponential, clamped to >= 100ms).
  SimTime downtime_mean = seconds(10);

  /// Number of per-link blackout windows over the run (each picks a random
  /// node pair and silences frames between them in both directions).
  int link_blackouts = 0;
  /// Mean blackout duration (exponential, clamped to >= 100ms).
  SimTime blackout_mean = seconds(5);

  /// Probability that a decodable frame is corrupted while the corruption
  /// window is active (demoted to noise at every receiver independently).
  double corrupt_rate = 0.0;
  SimTime corrupt_from = SimTime::zero();
  SimTime corrupt_until = SimTime::zero();  ///< zero => until end of run

  /// One region partition: nodes on opposite sides of a vertical cut at
  /// x = partition_frac * area.width cannot hear each other while active.
  bool partition = false;
  double partition_frac = 0.5;
  SimTime partition_from = SimTime::zero();
  SimTime partition_until = SimTime::zero();  ///< zero => until end of run

  /// Crashes and blackouts are drawn uniformly in [window_from, duration);
  /// keeping the first seconds clean lets protocols converge before faults.
  SimTime window_from = seconds(10);

  [[nodiscard]] bool enabled() const {
    return crash_rate > 0.0 || link_blackouts > 0 || corrupt_rate > 0.0 || partition;
  }
};

enum class FaultEventKind : std::uint8_t {
  kCrash,
  kRestart,
  kLinkDown,
  kLinkUp,
  kPartitionStart,
  kPartitionEnd,
  kCorruptStart,
  kCorruptEnd,
};

[[nodiscard]] const char* to_string(FaultEventKind kind);

/// One compiled fault event. Meaning of the fields depends on kind:
/// crash/restart use a; link events use the pair (a, b); partition events use
/// value as the x-coordinate of the cut; corrupt events use value as the
/// corruption probability.
struct FaultEvent {
  SimTime at;
  FaultEventKind kind = FaultEventKind::kCrash;
  NodeId a = 0;
  NodeId b = 0;
  double value = 0.0;
};

/// The full compiled schedule: a sorted, immutable list of FaultEvents.
class FaultPlan {
 public:
  /// Compile a deterministic schedule. Pure function of the arguments — no
  /// global state, no wall clock.
  [[nodiscard]] static FaultPlan compile(const FaultConfig& cfg, std::uint32_t num_nodes,
                                         const Area& area, SimTime duration,
                                         std::uint64_t seed);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// The [crash, restart) windows of one node, in time order. A missing
  /// restart (crash too close to the end of the run) yields an open-ended
  /// window capped at SimTime::max().
  [[nodiscard]] std::vector<std::pair<SimTime, SimTime>> down_windows(NodeId id) const;

  /// One line per event — the byte-exact schedule fingerprint the
  /// determinism tests pin.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Mutable fault state consulted by Channel on every transmission. Updated
/// only by the scheduled FaultEvents (via apply), never by the hot path.
class FaultRuntime {
 public:
  /// Apply one scheduled event to the masks. Crash/restart bookkeeping for
  /// the node object itself (MAC/ARP flush, trace records) lives in the
  /// scenario's dispatcher; this only maintains the channel-visible state.
  void apply(const FaultEvent& ev);

  [[nodiscard]] bool node_down(NodeId id) const { return down_.count(id) > 0; }

  /// True if frames between a and b are currently suppressed — either an
  /// active per-link blackout or the two positions straddling an active
  /// partition cut.
  [[nodiscard]] bool link_blocked(NodeId a, NodeId b, const Vec2& pa, const Vec2& pb) const {
    if (partition_active_ && (pa.x < partition_x_) != (pb.x < partition_x_)) return true;
    if (blackouts_.empty()) return false;
    return blackouts_.count(ordered_pair(a, b)) > 0;
  }

  /// Current per-frame corruption probability (0 outside corrupt windows).
  [[nodiscard]] double corrupt_rate() const { return corrupt_rate_; }

  [[nodiscard]] bool any_node_down() const { return !down_.empty(); }

 private:
  [[nodiscard]] static std::pair<NodeId, NodeId> ordered_pair(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  std::set<NodeId> down_;
  std::set<std::pair<NodeId, NodeId>> blackouts_;
  bool partition_active_ = false;
  double partition_x_ = 0.0;
  double corrupt_rate_ = 0.0;
};

}  // namespace manet
