#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/assert.hpp"

namespace manet {
namespace {

/// Floor on exponential draws so a fault window is always observable: a
/// sub-100ms blackout is shorter than one route-repair round trip and would
/// only add noise to the recovery metrics.
constexpr SimTime kMinFaultDuration = milliseconds(100);

SimTime draw_duration(RngStream& rng, SimTime mean) {
  const SimTime d = seconds_f(rng.exponential(mean.sec()));
  return d < kMinFaultDuration ? kMinFaultDuration : d;
}

/// Expected-count -> integer count: floor(rate) certain events plus one more
/// with probability frac(rate). Keeps E[count] == rate without a Poisson
/// sampler (one uniform draw, trivially reproducible).
int draw_count(RngStream& rng, double rate) {
  MANET_EXPECTS(rate >= 0.0);
  const double fl = std::floor(rate);
  int n = static_cast<int>(fl);
  if (rng.chance(rate - fl)) ++n;
  return n;
}

}  // namespace

const char* to_string(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kCrash: return "crash";
    case FaultEventKind::kRestart: return "restart";
    case FaultEventKind::kLinkDown: return "link-down";
    case FaultEventKind::kLinkUp: return "link-up";
    case FaultEventKind::kPartitionStart: return "partition-start";
    case FaultEventKind::kPartitionEnd: return "partition-end";
    case FaultEventKind::kCorruptStart: return "corrupt-start";
    case FaultEventKind::kCorruptEnd: return "corrupt-end";
  }
  return "?";
}

FaultPlan FaultPlan::compile(const FaultConfig& cfg, std::uint32_t num_nodes, const Area& area,
                             SimTime duration, std::uint64_t seed) {
  MANET_EXPECTS(duration > SimTime::zero());
  FaultPlan plan;
  if (!cfg.enabled()) return plan;

  const SimTime window_from = cfg.window_from < duration ? cfg.window_from : SimTime::zero();

  // Node crashes: each node draws from its own stream, so the schedule for
  // node i does not depend on how many crashes node j happened to draw.
  if (cfg.crash_rate > 0.0) {
    for (NodeId id = 0; id < num_nodes; ++id) {
      RngStream rng(seed, "fault-crash", id);
      const int crashes = draw_count(rng, cfg.crash_rate);
      std::vector<std::pair<SimTime, SimTime>> windows;
      for (int k = 0; k < crashes; ++k) {
        const SimTime at = seconds_f(rng.uniform(window_from.sec(), duration.sec()));
        const SimTime up = at + draw_duration(rng, cfg.downtime_mean);
        windows.emplace_back(at, up);
      }
      std::sort(windows.begin(), windows.end());
      // Drop windows that begin inside an earlier one: a node cannot crash
      // while already down.
      SimTime busy_until = SimTime::zero();
      for (const auto& [at, up] : windows) {
        if (at < busy_until) continue;
        plan.events_.push_back({at, FaultEventKind::kCrash, id, 0, 0.0});
        if (up < duration) {
          plan.events_.push_back({up, FaultEventKind::kRestart, id, 0, 0.0});
        }
        busy_until = up;
      }
    }
  }

  // Link blackouts: random distinct pairs, window drawn from one stream.
  if (cfg.link_blackouts > 0 && num_nodes >= 2) {
    RngStream rng(seed, "fault-link");
    for (int k = 0; k < cfg.link_blackouts; ++k) {
      const auto a = static_cast<NodeId>(rng.uniform_int(0, num_nodes - 1));
      auto b = static_cast<NodeId>(rng.uniform_int(0, num_nodes - 2));
      if (b >= a) ++b;
      const SimTime at = seconds_f(rng.uniform(window_from.sec(), duration.sec()));
      const SimTime up = at + draw_duration(rng, cfg.blackout_mean);
      plan.events_.push_back({at, FaultEventKind::kLinkDown, a, b, 0.0});
      if (up < duration) plan.events_.push_back({up, FaultEventKind::kLinkUp, a, b, 0.0});
    }
  }

  if (cfg.partition) {
    const double cut_x = cfg.partition_frac * area.width;
    const SimTime from = cfg.partition_from;
    const SimTime until =
        cfg.partition_until > SimTime::zero() ? cfg.partition_until : duration;
    plan.events_.push_back({from, FaultEventKind::kPartitionStart, 0, 0, cut_x});
    if (until < duration) {
      plan.events_.push_back({until, FaultEventKind::kPartitionEnd, 0, 0, cut_x});
    }
  }

  if (cfg.corrupt_rate > 0.0) {
    const SimTime from = cfg.corrupt_from;
    const SimTime until = cfg.corrupt_until > SimTime::zero() ? cfg.corrupt_until : duration;
    plan.events_.push_back({from, FaultEventKind::kCorruptStart, 0, 0, cfg.corrupt_rate});
    if (until < duration) {
      plan.events_.push_back({until, FaultEventKind::kCorruptEnd, 0, 0, 0.0});
    }
  }

  // Total order on (at, kind, a, b): scheduling the events in list order then
  // gives a deterministic event-queue insertion order regardless of how the
  // schedule was assembled above.
  std::sort(plan.events_.begin(), plan.events_.end(), [](const FaultEvent& x, const FaultEvent& y) {
    if (x.at != y.at) return x.at < y.at;
    if (x.kind != y.kind) return x.kind < y.kind;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return plan;
}

std::vector<std::pair<SimTime, SimTime>> FaultPlan::down_windows(NodeId id) const {
  std::vector<std::pair<SimTime, SimTime>> out;
  for (const FaultEvent& ev : events_) {
    if (ev.a != id) continue;
    if (ev.kind == FaultEventKind::kCrash) {
      out.emplace_back(ev.at, SimTime::max());
    } else if (ev.kind == FaultEventKind::kRestart) {
      MANET_ASSERT_MSG(!out.empty() && out.back().second == SimTime::max(),
                       "node %u: restart at %lldns without a preceding crash", id,
                       static_cast<long long>(ev.at.ns()));
      out.back().second = ev.at;
    }
  }
  return out;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char line[128];
  for (const FaultEvent& ev : events_) {
    std::snprintf(line, sizeof(line), "%lld %s %u %u %.12g\n",
                  static_cast<long long>(ev.at.ns()), manet::to_string(ev.kind), ev.a, ev.b,
                  ev.value);
    out += line;
  }
  return out;
}

void FaultRuntime::apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEventKind::kCrash:
      down_.insert(ev.a);
      break;
    case FaultEventKind::kRestart:
      down_.erase(ev.a);
      break;
    case FaultEventKind::kLinkDown:
      blackouts_.insert(ordered_pair(ev.a, ev.b));
      break;
    case FaultEventKind::kLinkUp:
      blackouts_.erase(ordered_pair(ev.a, ev.b));
      break;
    case FaultEventKind::kPartitionStart:
      partition_active_ = true;
      partition_x_ = ev.value;
      break;
    case FaultEventKind::kPartitionEnd:
      partition_active_ = false;
      break;
    case FaultEventKind::kCorruptStart:
      corrupt_rate_ = ev.value;
      break;
    case FaultEventKind::kCorruptEnd:
      corrupt_rate_ = 0.0;
      break;
  }
}

}  // namespace manet
