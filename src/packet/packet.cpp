#include "packet/packet.hpp"

#include <atomic>

namespace manet {

namespace {
// Atomic so concurrently-running replications (ExperimentRunner worker
// threads) never mint the same uid.
// manet-lint: allow-global-state - atomic uid mint; uids identify trace lines but never influence simulated behaviour
std::atomic<std::uint64_t> g_next_uid{1};
}  // namespace

Packet::Packet() : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

std::size_t Packet::size_bytes() const {
  switch (mac.type) {
    case MacFrameType::kRts: return kMacRtsBytes;
    case MacFrameType::kCts: return kMacCtsBytes;
    case MacFrameType::kAck: return kMacAckBytes;
    case MacFrameType::kData: break;
  }
  std::size_t n = kMacDataHeaderBytes;
  if (kind == PacketKind::kArp) return n + kArpBytes;
  n += kIpHeaderBytes;
  if (kind == PacketKind::kData) {
    n += kUdpHeaderBytes + payload_bytes;
    if (transport.kind != SegKind::kNone) n += kTransportHeaderBytes;
  }
  if (routing) n += routing->size_bytes();
  return n;
}

std::shared_ptr<const Packet> PacketArena::make(const Packet& src) {
  std::unique_ptr<Packet> p;
  if (!pool_->free.empty()) {
    p = std::move(pool_->free.back());
    pool_->free.pop_back();
    *p = src;  // copy-assign: headers + a shared payload handle, no clone
  } else {
    p = std::make_unique<Packet>(src);
  }
  // The deleter holds the pool by value, so a copy still in flight when the
  // arena's owner (the Channel) is destroyed recycles into a pool that
  // simply dies with the last shared_ptr — no dangling either way.
  return {p.release(), Recycle{pool_}};
}

void PacketArena::Recycle::operator()(const Packet* p) const {
  pool->free.emplace_back(const_cast<Packet*>(p));
}

}  // namespace manet
