#include "packet/packet.hpp"

#include <atomic>

namespace manet {

namespace {
// Atomic so concurrently-running replications (ExperimentRunner worker
// threads) never mint the same uid.
std::atomic<std::uint64_t> g_next_uid{1};
}  // namespace

Packet::Packet() : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

Packet::Packet(const Packet& o)
    : kind(o.kind),
      mac(o.mac),
      arp(o.arp),
      ip(o.ip),
      app(o.app),
      payload_bytes(o.payload_bytes),
      routing(o.routing ? o.routing->clone() : nullptr),
      uid_(o.uid_) {}

Packet& Packet::operator=(const Packet& o) {
  if (this == &o) return *this;
  kind = o.kind;
  mac = o.mac;
  arp = o.arp;
  ip = o.ip;
  app = o.app;
  payload_bytes = o.payload_bytes;
  routing = o.routing ? o.routing->clone() : nullptr;
  uid_ = o.uid_;
  return *this;
}

std::size_t Packet::size_bytes() const {
  switch (mac.type) {
    case MacFrameType::kRts: return kMacRtsBytes;
    case MacFrameType::kCts: return kMacCtsBytes;
    case MacFrameType::kAck: return kMacAckBytes;
    case MacFrameType::kData: break;
  }
  std::size_t n = kMacDataHeaderBytes;
  if (kind == PacketKind::kArp) return n + kArpBytes;
  n += kIpHeaderBytes;
  if (kind == PacketKind::kData) n += kUdpHeaderBytes + payload_bytes;
  if (routing) n += routing->size_bytes();
  return n;
}

}  // namespace manet
