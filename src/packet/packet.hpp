// The packet model.
//
// Packets are value types: the channel hands each receiver its own copy, so a
// forwarding node can rewrite headers without aliasing surprises. Protocol-
// specific routing content (AODV RREQs, DSR source routes, OLSR TC bodies,
// ...) hangs off the packet as a clonable polymorphic payload, which keeps
// this module independent of the individual routing protocols.
//
// Byte sizes follow the conventions of the ns-2 wireless stack the paper
// family used, so transmission times and byte-counted overheads are
// meaningful: 512-byte CBR payloads ride in ~580-byte frames at 2 Mbit/s.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/time.hpp"

namespace manet {

/// Flat node identifier; doubles as the MAC and network address (one radio
/// interface per node, as in the paper family's scenarios).
using NodeId = std::uint32_t;

/// Link- and network-level broadcast address.
inline constexpr NodeId kBroadcast = 0xFFFF'FFFFu;

// ---------------------------------------------------------------------------
// Header sizes (bytes). 802.11-style MAC framing + PLCP handled by the MAC.
// ---------------------------------------------------------------------------
inline constexpr std::size_t kMacDataHeaderBytes = 34;  // 24 hdr + 6 SNAP + 4 FCS
inline constexpr std::size_t kMacRtsBytes = 20;
inline constexpr std::size_t kMacCtsBytes = 14;
inline constexpr std::size_t kMacAckBytes = 14;
inline constexpr std::size_t kArpBytes = 28;
inline constexpr std::size_t kIpHeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;
/// Extra bytes the reliable transport adds on top of the UDP header (seq,
/// cumulative ack, epoch — a TCP-ish 20-byte total). Charged only when a
/// packet actually carries a transport segment, so open-loop UDP traffic
/// keeps its historical frame sizes byte-for-byte.
inline constexpr std::size_t kTransportHeaderBytes = 12;

// ---------------------------------------------------------------------------
// MAC header
// ---------------------------------------------------------------------------
enum class MacFrameType : std::uint8_t { kData, kRts, kCts, kAck };

struct MacHeader {
  MacFrameType type = MacFrameType::kData;
  NodeId src = 0;
  NodeId dst = kBroadcast;
  /// Remaining medium-reservation time (the NAV field of RTS/CTS/DATA).
  SimTime duration = SimTime::zero();
  /// Per-transmitter sequence number, for receive-side duplicate filtering
  /// when a MAC ACK is lost and the data frame is retransmitted.
  std::uint16_t seq = 0;
  /// Retry flag (set on MAC retransmissions).
  bool retry = false;
};

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------
struct ArpHeader {
  bool is_request = true;
  NodeId sender = 0;
  NodeId target = 0;
};

// ---------------------------------------------------------------------------
// Network layer
// ---------------------------------------------------------------------------
enum class IpProto : std::uint8_t { kUdp, kRouting };

struct IpHeader {
  NodeId src = 0;
  NodeId dst = kBroadcast;
  std::uint8_t ttl = 64;
  IpProto proto = IpProto::kUdp;
};

// ---------------------------------------------------------------------------
// Application (CBR) — rides over UDP. `sent_at` stamps origination time for
// the end-to-end-delay metric; flow/seq key the PDR bookkeeping.
// ---------------------------------------------------------------------------
struct AppHeader {
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;
  SimTime sent_at = SimTime::zero();
};

// ---------------------------------------------------------------------------
// Reliable transport (src/transport) — rides between app and net. A packet
// with kind == kNone carries no transport segment at all (the open-loop
// CBR/UDP path); kData is a sequenced payload segment, kAck a cumulative
// acknowledgement. `epoch` numbers the sender's incarnation of the flow so a
// receiver can tell a cold-restarted sender from a stale retransmission.
// ---------------------------------------------------------------------------
enum class SegKind : std::uint8_t {
  kNone,  ///< no transport header (plain UDP datagram)
  kData,  ///< sequenced data segment
  kAck,   ///< cumulative ACK: `seq` is the next expected segment number
};

struct TransportHeader {
  SegKind kind = SegKind::kNone;
  std::uint32_t seq = 0;    ///< data: segment number; ack: cumulative ack
  std::uint32_t epoch = 0;  ///< sender incarnation (bumps on abort/restart)
};

// ---------------------------------------------------------------------------
// Routing payloads: protocol-defined, clonable, size-aware.
// ---------------------------------------------------------------------------
class RoutingPayload {
 public:
  virtual ~RoutingPayload() = default;
  [[nodiscard]] virtual std::unique_ptr<RoutingPayload> clone() const = 0;
  /// On-the-wire size of the routing content in bytes.
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;
};

/// CRTP helper: gives a concrete payload a copy-based clone().
template <class Derived>
class RoutingPayloadBase : public RoutingPayload {
 public:
  [[nodiscard]] std::unique_ptr<RoutingPayload> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Copy-on-write handle to a routing payload.
//
// Copying a Packet used to deep-clone its payload — so a broadcast to k
// neighbours did k virtual clone()s plus k frees, and every per-receiver
// copy in the PHY repeated the cost. Payloads are immutable in practice
// (receivers read them; only source-route forwarding rewrites one), so the
// handle shares a const payload across copies and clones only on mutate()
// when the payload is actually shared. Behaviour is identical to the deep
// copy: a mutation through mutate() can never be observed by another packet.
class RoutingPayloadPtr {
 public:
  RoutingPayloadPtr() = default;
  RoutingPayloadPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  RoutingPayloadPtr(std::unique_ptr<RoutingPayload> p)  // NOLINT(google-explicit-constructor)
      : p_(std::move(p)) {}
  template <class Derived>
    requires std::is_base_of_v<RoutingPayload, Derived>
  RoutingPayloadPtr(std::unique_ptr<Derived> p)  // NOLINT(google-explicit-constructor)
      : p_(std::move(p)) {}

  RoutingPayloadPtr& operator=(std::nullptr_t) {
    p_.reset();
    return *this;
  }

  /// Read access. Shared with every other packet copied from the same
  /// origin; never mutate through a cast of this pointer.
  [[nodiscard]] const RoutingPayload* get() const { return p_.get(); }
  const RoutingPayload* operator->() const { return p_.get(); }

  /// Write access: clones the payload first iff it is shared (copy-on-write).
  /// Returns nullptr when empty.
  [[nodiscard]] RoutingPayload* mutate() {
    if (p_ == nullptr) return nullptr;
    if (p_.use_count() > 1) p_ = std::shared_ptr<const RoutingPayload>(p_->clone());
    // Sole owner: casting away const is safe — the object was created
    // non-const and nobody else can observe it.
    return const_cast<RoutingPayload*>(p_.get());
  }

  [[nodiscard]] explicit operator bool() const { return p_ != nullptr; }
  [[nodiscard]] bool operator==(std::nullptr_t) const { return p_ == nullptr; }

  /// True when this handle and `o` share one payload object (tests).
  [[nodiscard]] bool shares_with(const RoutingPayloadPtr& o) const { return p_ == o.p_; }

 private:
  std::shared_ptr<const RoutingPayload> p_;
};

// ---------------------------------------------------------------------------
// Packet
// ---------------------------------------------------------------------------
enum class PacketKind : std::uint8_t {
  kArp,             ///< ARP request/reply (link-local)
  kData,            ///< application data (CBR over UDP)
  kRoutingControl,  ///< a routing-protocol control message
};

class Packet {
 public:
  Packet();
  Packet(const Packet& o) = default;
  Packet& operator=(const Packet& o) = default;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  /// Globally unique id (fresh per construction; preserved by copies so a
  /// frame and its per-receiver copies correlate in logs).
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  PacketKind kind = PacketKind::kData;
  MacHeader mac;
  ArpHeader arp;  // valid iff kind == kArp
  IpHeader ip;    // valid unless kind == kArp
  AppHeader app;  // valid iff kind == kData
  TransportHeader transport;  // kNone unless the reliable transport is in play

  /// Application payload size in bytes (e.g. 512 for the paper's CBR).
  std::size_t payload_bytes = 0;

  /// Protocol-owned routing content: a control message body, or a source
  /// route / extension attached to a data packet. May be null. Shared
  /// between copies of the packet; use routing.mutate() to modify in place.
  RoutingPayloadPtr routing;

  /// Total frame size in bytes as transmitted on the air (MAC framing
  /// included); drives the transmission-time calculation.
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  std::uint64_t uid_;
};

/// Per-simulation pool of delivery Packet copies.
//
// The channel hands every decodable arrival a shared read-only copy of the
// transmitted frame. Those copies are born and die at an enormous rate (one
// per transmission, k receivers share it), so the arena recycles the Packet
// allocations instead of round-tripping the allocator: the shared_ptr's
// deleter returns the object to the free list. Single-threaded by design —
// one arena per simulation, and a simulation never leaves its worker thread.
class PacketArena {
 public:
  /// A pooled read-only copy of `src` (same uid, shared routing payload).
  [[nodiscard]] std::shared_ptr<const Packet> make(const Packet& src);

 private:
  struct Pool {
    std::vector<std::unique_ptr<Packet>> free;
  };
  struct Recycle {
    std::shared_ptr<Pool> pool;
    void operator()(const Packet* p) const;
  };
  std::shared_ptr<Pool> pool_ = std::make_shared<Pool>();
};

}  // namespace manet
