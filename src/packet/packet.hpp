// The packet model.
//
// Packets are value types: the channel hands each receiver its own copy, so a
// forwarding node can rewrite headers without aliasing surprises. Protocol-
// specific routing content (AODV RREQs, DSR source routes, OLSR TC bodies,
// ...) hangs off the packet as a clonable polymorphic payload, which keeps
// this module independent of the individual routing protocols.
//
// Byte sizes follow the conventions of the ns-2 wireless stack the paper
// family used, so transmission times and byte-counted overheads are
// meaningful: 512-byte CBR payloads ride in ~580-byte frames at 2 Mbit/s.
#pragma once

#include <cstdint>
#include <memory>

#include "core/time.hpp"

namespace manet {

/// Flat node identifier; doubles as the MAC and network address (one radio
/// interface per node, as in the paper family's scenarios).
using NodeId = std::uint32_t;

/// Link- and network-level broadcast address.
inline constexpr NodeId kBroadcast = 0xFFFF'FFFFu;

// ---------------------------------------------------------------------------
// Header sizes (bytes). 802.11-style MAC framing + PLCP handled by the MAC.
// ---------------------------------------------------------------------------
inline constexpr std::size_t kMacDataHeaderBytes = 34;  // 24 hdr + 6 SNAP + 4 FCS
inline constexpr std::size_t kMacRtsBytes = 20;
inline constexpr std::size_t kMacCtsBytes = 14;
inline constexpr std::size_t kMacAckBytes = 14;
inline constexpr std::size_t kArpBytes = 28;
inline constexpr std::size_t kIpHeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;

// ---------------------------------------------------------------------------
// MAC header
// ---------------------------------------------------------------------------
enum class MacFrameType : std::uint8_t { kData, kRts, kCts, kAck };

struct MacHeader {
  MacFrameType type = MacFrameType::kData;
  NodeId src = 0;
  NodeId dst = kBroadcast;
  /// Remaining medium-reservation time (the NAV field of RTS/CTS/DATA).
  SimTime duration = SimTime::zero();
  /// Per-transmitter sequence number, for receive-side duplicate filtering
  /// when a MAC ACK is lost and the data frame is retransmitted.
  std::uint16_t seq = 0;
  /// Retry flag (set on MAC retransmissions).
  bool retry = false;
};

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------
struct ArpHeader {
  bool is_request = true;
  NodeId sender = 0;
  NodeId target = 0;
};

// ---------------------------------------------------------------------------
// Network layer
// ---------------------------------------------------------------------------
enum class IpProto : std::uint8_t { kUdp, kRouting };

struct IpHeader {
  NodeId src = 0;
  NodeId dst = kBroadcast;
  std::uint8_t ttl = 64;
  IpProto proto = IpProto::kUdp;
};

// ---------------------------------------------------------------------------
// Application (CBR) — rides over UDP. `sent_at` stamps origination time for
// the end-to-end-delay metric; flow/seq key the PDR bookkeeping.
// ---------------------------------------------------------------------------
struct AppHeader {
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;
  SimTime sent_at = SimTime::zero();
};

// ---------------------------------------------------------------------------
// Routing payloads: protocol-defined, clonable, size-aware.
// ---------------------------------------------------------------------------
class RoutingPayload {
 public:
  virtual ~RoutingPayload() = default;
  [[nodiscard]] virtual std::unique_ptr<RoutingPayload> clone() const = 0;
  /// On-the-wire size of the routing content in bytes.
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;
};

/// CRTP helper: gives a concrete payload a copy-based clone().
template <class Derived>
class RoutingPayloadBase : public RoutingPayload {
 public:
  [[nodiscard]] std::unique_ptr<RoutingPayload> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

// ---------------------------------------------------------------------------
// Packet
// ---------------------------------------------------------------------------
enum class PacketKind : std::uint8_t {
  kArp,             ///< ARP request/reply (link-local)
  kData,            ///< application data (CBR over UDP)
  kRoutingControl,  ///< a routing-protocol control message
};

class Packet {
 public:
  Packet();
  Packet(const Packet& o);
  Packet& operator=(const Packet& o);
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  /// Globally unique id (fresh per construction; preserved by copies so a
  /// frame and its per-receiver copies correlate in logs).
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  PacketKind kind = PacketKind::kData;
  MacHeader mac;
  ArpHeader arp;  // valid iff kind == kArp
  IpHeader ip;    // valid unless kind == kArp
  AppHeader app;  // valid iff kind == kData

  /// Application payload size in bytes (e.g. 512 for the paper's CBR).
  std::size_t payload_bytes = 0;

  /// Protocol-owned routing content: a control message body, or a source
  /// route / extension attached to a data packet. May be null.
  std::unique_ptr<RoutingPayload> routing;

  /// Total frame size in bytes as transmitted on the air (MAC framing
  /// included); drives the transmission-time calculation.
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  std::uint64_t uid_;
};

}  // namespace manet
