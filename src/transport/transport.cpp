#include "transport/transport.hpp"

#include <utility>

#include "core/assert.hpp"
#include "net/node.hpp"

namespace manet {

namespace {

/// Congestion window in whole segments (the double carries fractional
/// additive increase between ACKs).
[[nodiscard]] std::uint32_t effective_cwnd(double cwnd) {
  return cwnd < 1.0 ? 1u : static_cast<std::uint32_t>(cwnd);
}

}  // namespace

ReliableTransport::ReliableTransport(Node& node, const TransportConfig& cfg,
                                     FlowMonitor* monitor)
    : node_(node), sim_(node.sim()), cfg_(cfg), monitor_(monitor) {}

bool ReliableTransport::try_send(std::uint32_t flow, NodeId dst, std::size_t payload_bytes,
                                 std::uint32_t app_seq) {
  auto it = send_flows_.find(flow);
  if (it == send_flows_.end()) {
    SenderFlow f;
    f.dst = dst;
    f.epoch = ++next_epoch_;
    f.cwnd = static_cast<double>(cfg_.cwnd_init);
    f.rto = cfg_.rto_initial;
    it = send_flows_.emplace(flow, std::move(f)).first;
  }
  SenderFlow& f = it->second;
  MANET_ASSERT(f.dst == dst);
  if (f.window.size() >= cfg_.buffer_packets) return false;  // closed loop

  // Accepted: this is the origination instant for PDR and delay purposes,
  // exactly where the open-loop path counts it.
  node_.stats().on_data_originated(flow);

  Segment seg;
  seg.pkt.kind = PacketKind::kData;
  seg.pkt.ip.dst = dst;
  seg.pkt.app.flow = flow;
  seg.pkt.app.seq = app_seq;
  seg.pkt.app.sent_at = sim_.now();
  seg.pkt.payload_bytes = payload_bytes;
  seg.pkt.transport.kind = SegKind::kData;
  seg.pkt.transport.epoch = f.epoch;

  if (node_.down()) {
    // Offered load destroyed by the fault: counted against PDR, not queued —
    // matching what the open-loop path does when its host is crashed. No
    // segment number is consumed: a sequence gap that was never transmitted
    // would stall the receiver's cumulative point for good.
    seg.pkt.transport.seq = f.snd_next;
    node_.drop(seg.pkt, DropReason::kNodeDown);
    return true;
  }
  if (dst == node_.id()) {  // degenerate self-flow: no network involved
    seg.pkt.ip.src = node_.id();
    seg.pkt.ip.ttl = kInitialTtl;
    if (monitor_ != nullptr) {
      monitor_->on_tx(flow, node_.id(), dst, payload_bytes, sim_.now());
    }
    deliver_in_order(seg.pkt);
    return true;
  }
  seg.pkt.transport.seq = f.snd_next++;
  f.window.push_back(std::move(seg));
  transmit_window(flow, f);
  return true;
}

void ReliableTransport::transmit_window(std::uint32_t flow, SenderFlow& f) {
  const std::uint32_t cw = effective_cwnd(f.cwnd);
  while (f.inflight < cw && f.inflight < f.window.size()) {
    Segment& seg = f.window[f.inflight];
    seg.first_tx = sim_.now();
    if (monitor_ != nullptr) {
      monitor_->on_tx(flow, node_.id(), f.dst, seg.pkt.payload_bytes, sim_.now());
    }
    ++f.inflight;
    node_.transport_send(seg.pkt);
  }
  if (f.inflight > 0 && !f.rto_armed) arm_rto(flow, f);
}

void ReliableTransport::arm_rto(std::uint32_t flow, SenderFlow& f) {
  cancel_rto(f);
  SimTime t = f.rto;
  for (std::uint32_t i = 0; i < f.backoff && t < cfg_.rto_max; ++i) t = t * 2;
  if (t > cfg_.rto_max) t = cfg_.rto_max;
  f.rto_timer = sim_.schedule(t, [this, flow] { on_rto(flow); });
  f.rto_armed = true;
}

void ReliableTransport::cancel_rto(SenderFlow& f) {
  if (!f.rto_armed) return;
  sim_.cancel(f.rto_timer);
  f.rto_armed = false;
}

void ReliableTransport::on_rto(std::uint32_t flow) {
  const auto it = send_flows_.find(flow);
  if (it == send_flows_.end()) return;
  SenderFlow& f = it->second;
  f.rto_armed = false;
  if (f.inflight == 0) return;
  Segment& head = f.window.front();
  ++head.retx;
  if (head.retx > cfg_.max_retx) {
    abort_flow(flow);
    return;
  }
  head.retransmitted = true;
  // Multiplicative decrease + exponential timer backoff; only the head is
  // retransmitted (cumulative ACKs make anything beyond it speculative).
  f.cwnd = f.cwnd / 2.0 < 1.0 ? 1.0 : f.cwnd / 2.0;
  ++f.backoff;
  if (monitor_ != nullptr) monitor_->on_retransmit(flow);
  node_.transport_send(head.pkt);
  arm_rto(flow, f);
}

void ReliableTransport::abort_flow(std::uint32_t flow) {
  const auto it = send_flows_.find(flow);
  if (it == send_flows_.end()) return;
  SenderFlow& f = it->second;
  cancel_rto(f);
  for (const Segment& seg : f.window) {
    node_.drop(seg.pkt, DropReason::kTransportGiveUp);
  }
  ++aborts_;
  send_flows_.erase(it);
  // The next try_send() re-creates the flow with a fresh (higher) epoch; the
  // receiver adopts it and resequences from zero.
}

void ReliableTransport::on_ack(const Packet& pkt) {
  const auto it = send_flows_.find(pkt.app.flow);
  if (it == send_flows_.end()) return;
  SenderFlow& f = it->second;
  if (pkt.transport.epoch != f.epoch) return;  // stale incarnation
  const std::uint32_t ack = pkt.transport.seq;
  if (ack <= f.snd_una) return;  // duplicate/old cumulative ACK
  // A cumulative ACK can only cover transmitted segments.
  const std::uint32_t limit = f.snd_una + f.inflight;
  const std::uint32_t upto = ack < limit ? ack : limit;

  bool sampled = false;
  double sample_s = 0.0;
  while (f.snd_una < upto) {
    MANET_ASSERT(!f.window.empty());
    const Segment& seg = f.window.front();
    if (!seg.retransmitted) {  // Karn's algorithm
      sample_s = (sim_.now() - seg.first_tx).sec();
      sampled = true;
    }
    // Additive increase: ~one segment per window's worth of ACKed segments.
    if (f.cwnd < static_cast<double>(cfg_.cwnd_max)) {
      f.cwnd += 1.0 / f.cwnd;
      if (f.cwnd > static_cast<double>(cfg_.cwnd_max)) {
        f.cwnd = static_cast<double>(cfg_.cwnd_max);
      }
    }
    f.window.pop_front();
    --f.inflight;
    ++f.snd_una;
  }
  if (sampled) {
    // Jacobson estimators; deviation measured against the pre-update srtt.
    if (!f.have_rtt) {
      f.srtt_s = sample_s;
      f.rttvar_s = sample_s / 2.0;
      f.have_rtt = true;
    } else {
      const double err = sample_s - f.srtt_s;
      f.srtt_s += err / 8.0;
      f.rttvar_s += ((err < 0.0 ? -err : err) - f.rttvar_s) / 4.0;
    }
    SimTime rto = seconds_f(f.srtt_s + 4.0 * f.rttvar_s);
    if (rto < cfg_.rto_min) rto = cfg_.rto_min;
    if (rto > cfg_.rto_max) rto = cfg_.rto_max;
    f.rto = rto;
  }
  f.backoff = 0;  // forward progress clears the backoff ladder
  cancel_rto(f);
  transmit_window(pkt.app.flow, f);  // re-arms the RTO while anything is inflight
}

void ReliableTransport::on_segment(const Packet& pkt) {
  const std::uint32_t flow = pkt.app.flow;
  auto it = recv_flows_.find(flow);
  if (it == recv_flows_.end()) {
    ReceiverFlow f;
    f.epoch = pkt.transport.epoch;
    it = recv_flows_.emplace(flow, std::move(f)).first;
  }
  ReceiverFlow& f = it->second;
  if (pkt.transport.epoch < f.epoch) return;  // stale incarnation: ignore
  if (pkt.transport.epoch > f.epoch) {
    // The sender cold-restarted (or gave up and began anew): adopt.
    f.epoch = pkt.transport.epoch;
    f.rcv_next = 0;
    f.ooo.clear();
  }
  const std::uint32_t seq = pkt.transport.seq;
  if (seq == f.rcv_next) {
    deliver_in_order(pkt);
    ++f.rcv_next;
    auto next = f.ooo.find(f.rcv_next);
    while (next != f.ooo.end()) {
      deliver_in_order(next->second);
      f.ooo.erase(next);
      ++f.rcv_next;
      next = f.ooo.find(f.rcv_next);
    }
  } else if (seq > f.rcv_next) {
    if (f.ooo.size() < cfg_.buffer_packets) {
      f.ooo.emplace(seq, pkt);
    } else if (f.ooo.find(seq) == f.ooo.end()) {
      node_.drop(pkt, DropReason::kBufferOverflow);
    }
  } else {
    // Below the cumulative point: a retransmission of something already
    // delivered (the ACK it needs is re-sent below).
    node_.stats().on_duplicate_delivery();
  }
  send_ack(flow, f, pkt.ip.src);
}

void ReliableTransport::deliver_in_order(const Packet& pkt) {
  if (monitor_ != nullptr) {
    monitor_->on_rx(pkt.app.flow, pkt.payload_bytes, sim_.now() - pkt.app.sent_at, sim_.now());
  }
  node_.deliver_to_sink(pkt);
  if (probe_) probe_(pkt);
}

void ReliableTransport::send_ack(std::uint32_t flow, const ReceiverFlow& f, NodeId to) {
  Packet ack;
  ack.kind = PacketKind::kData;
  ack.ip.dst = to;
  ack.app.flow = flow;
  ack.app.sent_at = sim_.now();
  ack.payload_bytes = 0;
  ack.transport.kind = SegKind::kAck;
  ack.transport.seq = f.rcv_next;
  ack.transport.epoch = f.epoch;
  node_.transport_send(std::move(ack));
}

void ReliableTransport::on_node_restart() {
  for (auto& [flow, f] : send_flows_) cancel_rto(f);
  send_flows_.clear();
  recv_flows_.clear();
  // next_epoch_ survives: a monotonic identity counter, per the contract in
  // routing_api.hpp that DSDV/OLSR sequence numbers also rely on.
}

ReliableTransport::SenderView ReliableTransport::sender_view(std::uint32_t flow) const {
  const auto it = send_flows_.find(flow);
  if (it == send_flows_.end()) return {};
  const SenderFlow& f = it->second;
  SenderView v;
  v.exists = true;
  v.epoch = f.epoch;
  v.snd_una = f.snd_una;
  v.snd_next = f.snd_next;
  v.inflight = f.inflight;
  v.queued = f.window.size();
  v.cwnd = f.cwnd;
  v.rto = f.rto;
  v.backoff = f.backoff;
  v.head_retx = f.window.empty() ? 0 : f.window.front().retx;
  v.srtt_s = f.srtt_s;
  return v;
}

ReliableTransport::ReceiverView ReliableTransport::receiver_view(std::uint32_t flow) const {
  const auto it = recv_flows_.find(flow);
  if (it == recv_flows_.end()) return {};
  const ReceiverFlow& f = it->second;
  ReceiverView v;
  v.exists = true;
  v.epoch = f.epoch;
  v.rcv_next = f.rcv_next;
  v.buffered = f.ooo.size();
  return v;
}

}  // namespace manet
