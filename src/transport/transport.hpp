// A lightweight reliable transport between the app and net layers.
//
// One ReliableTransport per node, mirroring the per-node protocol stacks: all
// flow state lives inside the node that owns the flow endpoint, so the shard
// kernel's confinement argument extends unchanged (segments and ACKs travel
// as ordinary routed data packets; nothing reaches across nodes directly).
//
// The mechanics are a deliberately small TCP subset, enough to reproduce the
// closed-loop behaviour the congestion-collapse experiments need:
//
//   * per-flow sequence numbers with cumulative ACKs (receiver ACKs every
//     segment with the next expected number; no SACK),
//   * retransmission timeout from Jacobson/Karn srtt/rttvar estimators with
//     exponential backoff, head-of-window retransmission only,
//   * an AIMD congestion window counted in segments: +1 per RTT's worth of
//     new ACKs, halved on every timeout,
//   * a bounded send buffer whose backpressure closes the loop — when it is
//     full, try_send() refuses and the application must hold its next packet.
//
// Incarnations: each (re)start of a flow gets a fresh `epoch` from a per-node
// monotonic counter. The counter survives Node::restart() — like DSDV/OLSR
// sequence numbers, it is a monotonic identity, not routing state — so a
// receiver can always order a cold-restarted sender ahead of stale
// retransmissions still in flight. Everything else cold-resets on restart.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "core/simulator.hpp"
#include "core/time.hpp"
#include "packet/packet.hpp"
#include "stats/flow_monitor.hpp"

namespace manet {

class Node;

/// Knobs of the reliable transport; validated by ScenarioBuilder.
struct TransportConfig {
  bool enabled = false;  ///< off: apps originate open-loop UDP as before
  SimTime rto_initial = milliseconds(1000);
  SimTime rto_min = milliseconds(200);
  SimTime rto_max = seconds(60);
  std::uint32_t cwnd_init = 2;    ///< initial congestion window (segments)
  std::uint32_t cwnd_max = 32;    ///< additive increase stops here
  std::uint32_t max_retx = 7;     ///< per-segment retransmissions before giving up
  std::uint32_t buffer_packets = 64;  ///< send-buffer bound (closed-loop backpressure)
};

class ReliableTransport {
 public:
  ReliableTransport(Node& node, const TransportConfig& cfg, FlowMonitor* monitor);
  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  // -- sender side ------------------------------------------------------------
  /// Offer one application packet to the flow. Returns false when the send
  /// buffer is full (closed loop: the app must retry later and NOT consume
  /// its sequence number). On acceptance the packet counts as originated —
  /// even on a crashed node, where the fault immediately destroys it.
  bool try_send(std::uint32_t flow, NodeId dst, std::size_t payload_bytes,
                std::uint32_t app_seq);

  // -- packet input (called by Node::mac_deliver for packets to this node) ----
  /// A data segment addressed to this node.
  void on_segment(const Packet& pkt);
  /// A cumulative ACK addressed to this node.
  void on_ack(const Packet& pkt);

  /// Cold-reset every flow (sender and receiver side). The epoch counter
  /// survives — see the header comment.
  void on_node_restart();

  /// Test hook: observe every in-order delivery this node's receiver makes,
  /// in delivery order (the reference-model oracle hangs off this).
  void set_delivery_probe(std::function<void(const Packet&)> probe) {
    probe_ = std::move(probe);
  }

  // -- introspection (tests, artifact emission) -------------------------------
  struct SenderView {
    bool exists = false;
    std::uint32_t epoch = 0;
    std::uint32_t snd_una = 0;   ///< lowest unacknowledged segment number
    std::uint32_t snd_next = 0;  ///< next segment number to assign
    std::uint32_t inflight = 0;  ///< transmitted and unacknowledged segments
    std::size_t queued = 0;      ///< segments in the send buffer (incl. inflight)
    double cwnd = 0.0;
    SimTime rto = SimTime::zero();
    std::uint32_t backoff = 0;
    std::uint32_t head_retx = 0;
    double srtt_s = 0.0;
  };
  struct ReceiverView {
    bool exists = false;
    std::uint32_t epoch = 0;
    std::uint32_t rcv_next = 0;  ///< next in-order segment number expected
    std::size_t buffered = 0;    ///< out-of-order segments held
  };
  [[nodiscard]] SenderView sender_view(std::uint32_t flow) const;
  [[nodiscard]] ReceiverView receiver_view(std::uint32_t flow) const;
  [[nodiscard]] std::size_t sender_flow_count() const { return send_flows_.size(); }
  [[nodiscard]] std::size_t receiver_flow_count() const { return recv_flows_.size(); }
  /// Flow incarnations aborted after max_retx exhausted.
  [[nodiscard]] std::uint64_t aborts() const { return aborts_; }
  /// Next incarnation number the counter would mint (monotone over restarts).
  [[nodiscard]] std::uint32_t epoch_counter() const { return next_epoch_; }

 private:
  struct Segment {
    Packet pkt;  ///< fully-built data packet; retransmissions send copies
    std::uint32_t retx = 0;
    bool retransmitted = false;  ///< Karn: never sample RTT off such a segment
    SimTime first_tx = SimTime::zero();
  };
  struct SenderFlow {
    NodeId dst = 0;
    std::uint32_t epoch = 0;
    std::uint32_t snd_una = 0;
    std::uint32_t snd_next = 0;
    std::uint32_t inflight = 0;
    std::deque<Segment> window;  ///< [snd_una, snd_next): inflight head + unsent tail
    double cwnd = 1.0;
    double srtt_s = 0.0;
    double rttvar_s = 0.0;
    bool have_rtt = false;
    SimTime rto = SimTime::zero();
    std::uint32_t backoff = 0;
    EventId rto_timer = 0;
    bool rto_armed = false;
  };
  struct ReceiverFlow {
    std::uint32_t epoch = 0;
    std::uint32_t rcv_next = 0;
    std::map<std::uint32_t, Packet> ooo;  ///< out-of-order hold, bounded
  };

  void transmit_window(std::uint32_t flow, SenderFlow& f);
  void arm_rto(std::uint32_t flow, SenderFlow& f);
  void cancel_rto(SenderFlow& f);
  void on_rto(std::uint32_t flow);
  /// Give up on the current incarnation: drop everything buffered, erase the
  /// flow. The next try_send() starts a fresh epoch.
  void abort_flow(std::uint32_t flow);
  void deliver_in_order(const Packet& pkt);
  void send_ack(std::uint32_t flow, const ReceiverFlow& f, NodeId to);

  Node& node_;
  Simulator& sim_;
  TransportConfig cfg_;
  FlowMonitor* monitor_;  ///< may be null (unit tests without accounting)
  std::map<std::uint32_t, SenderFlow> send_flows_;
  std::map<std::uint32_t, ReceiverFlow> recv_flows_;
  std::uint32_t next_epoch_ = 0;  ///< survives on_node_restart() deliberately
  std::uint64_t aborts_ = 0;
  std::function<void(const Packet&)> probe_;
};

}  // namespace manet
