// 2-D geometry primitives. Simulation areas in the paper family are planar
// rectangles (e.g. 1000 m × 1000 m, 1500 m × 300 m).
#pragma once

#include <cmath>

namespace manet {

/// A point or displacement in the plane, in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return {a.x * k, a.y * k}; }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Euclidean distance.
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared distance — prefer for range comparisons (no sqrt).
[[nodiscard]] constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// An axis-aligned rectangle [0,width] × [0,height] anchored at the origin.
struct Area {
  double width = 0.0;
  double height = 0.0;

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  /// Clamp a point into the area.
  [[nodiscard]] constexpr Vec2 clamp(Vec2 p) const {
    auto cl = [](double v, double hi) { return v < 0.0 ? 0.0 : (v > hi ? hi : v); };
    return {cl(p.x, width), cl(p.y, height)};
  }
};

}  // namespace manet
