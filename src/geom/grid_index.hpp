// Uniform-grid spatial index.
//
// The channel must find "all nodes within carrier-sense range of the
// transmitter" on every frame. A brute-force scan is O(N) per transmission;
// with the grid the query is O(nodes in the 3×3 neighbourhood of cells),
// which is what makes 90-node × 150 s runs fast. Cell size is chosen as the
// query radius so a radius query touches at most 9 cells.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace manet {

class GridIndex {
 public:
  /// `area` is the bounding region; `cell` the cell edge length in metres.
  GridIndex(Area area, double cell);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const { return pos_.size(); }

  /// Add a point; returns its id (dense, starting at 0).
  std::uint32_t insert(Vec2 p);

  /// Move point `id` to a new position.
  void update(std::uint32_t id, Vec2 p);

  /// Current position of a point.
  [[nodiscard]] Vec2 position(std::uint32_t id) const { return pos_[id]; }

  /// Collect ids of all points within `radius` of `center` (inclusive),
  /// excluding `exclude` (pass a value >= size() to exclude nothing).
  /// Results are appended to `out` in ascending id order.
  void query(Vec2 center, double radius, std::uint32_t exclude,
             std::vector<std::uint32_t>& out) const;

  /// Number of grid columns (the x axis of the cell lattice). The shard map
  /// stripes nodes into contiguous column bands of this lattice.
  [[nodiscard]] std::size_t columns() const { return nx_; }

  /// Column index of a position, in [0, columns()).
  [[nodiscard]] std::size_t column_of(Vec2 p) const;

 private:
  [[nodiscard]] std::size_t cell_of(Vec2 p) const;

  Area area_;
  double cell_;
  std::size_t nx_, ny_;
  std::vector<std::vector<std::uint32_t>> cells_;  // ids per cell
  std::vector<Vec2> pos_;
  std::vector<std::size_t> cell_idx_;  // current cell of each id
};

}  // namespace manet
