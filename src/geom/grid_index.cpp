#include "geom/grid_index.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace manet {

GridIndex::GridIndex(Area area, double cell) : area_(area), cell_(cell) {
  MANET_EXPECTS(cell > 0.0);
  MANET_EXPECTS(area.width > 0.0 && area.height > 0.0);
  nx_ = static_cast<std::size_t>(std::ceil(area.width / cell)) + 1;
  ny_ = static_cast<std::size_t>(std::ceil(area.height / cell)) + 1;
  cells_.resize(nx_ * ny_);
}

std::size_t GridIndex::column_of(Vec2 p) const {
  const Vec2 q = area_.clamp(p);
  return std::min(static_cast<std::size_t>(q.x / cell_), nx_ - 1);
}

std::size_t GridIndex::cell_of(Vec2 p) const {
  const Vec2 q = area_.clamp(p);
  const auto cx = static_cast<std::size_t>(q.x / cell_);
  const auto cy = static_cast<std::size_t>(q.y / cell_);
  return std::min(cy, ny_ - 1) * nx_ + std::min(cx, nx_ - 1);
}

std::uint32_t GridIndex::insert(Vec2 p) {
  const auto id = static_cast<std::uint32_t>(pos_.size());
  pos_.push_back(p);
  const std::size_t c = cell_of(p);
  cell_idx_.push_back(c);
  cells_[c].push_back(id);
  return id;
}

void GridIndex::update(std::uint32_t id, Vec2 p) {
  MANET_EXPECTS(id < pos_.size());
  pos_[id] = p;
  const std::size_t c = cell_of(p);
  if (c == cell_idx_[id]) return;
  auto& old_cell = cells_[cell_idx_[id]];
  old_cell.erase(std::find(old_cell.begin(), old_cell.end(), id));
  cells_[c].push_back(id);
  cell_idx_[id] = c;
}

void GridIndex::query(Vec2 center, double radius, std::uint32_t exclude,
                      std::vector<std::uint32_t>& out) const {
  const std::size_t first = out.size();
  const double r2 = radius * radius;
  const Vec2 lo = area_.clamp({center.x - radius, center.y - radius});
  const Vec2 hi = area_.clamp({center.x + radius, center.y + radius});
  const auto cx0 = static_cast<std::size_t>(lo.x / cell_);
  const auto cy0 = static_cast<std::size_t>(lo.y / cell_);
  const auto cx1 = std::min(static_cast<std::size_t>(hi.x / cell_), nx_ - 1);
  const auto cy1 = std::min(static_cast<std::size_t>(hi.y / cell_), ny_ - 1);
  for (std::size_t cy = cy0; cy <= cy1; ++cy) {
    for (std::size_t cx = cx0; cx <= cx1; ++cx) {
      for (const std::uint32_t id : cells_[cy * nx_ + cx]) {
        if (id == exclude) continue;
        if (distance2(pos_[id], center) <= r2) out.push_back(id);
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

}  // namespace manet
