#include "phy/transceiver.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "core/shard_sentinel.hpp"
#include "phy/channel.hpp"

namespace manet {

Transceiver::Transceiver(Simulator& sim, const PhyConfig& cfg, NodeId id)
    : sim_(sim), cfg_(cfg), id_(id) {}

void Transceiver::update_busy_edges(bool was_busy) {
  const bool busy = medium_busy();
  if (busy == was_busy || listener_ == nullptr) return;
  if (busy) {
    listener_->phy_busy_start();
  } else {
    listener_->phy_busy_end();
  }
}

SimTime Transceiver::transmit(const Packet& frame) {
  MANET_EXPECTS(channel_ != nullptr);
  MANET_EXPECTS(!transmitting_);
  const bool was_busy = medium_busy();
  transmitting_ = true;
  // Half-duplex: anything arriving right now is lost.
  for (auto& rx : active_) rx.corrupted = true;
  const SimTime airtime = channel_->transmit(id_, frame);
  if (stats_ != nullptr) stats_->on_tx_energy(cfg_.tx_power_w * airtime.sec());
  sim_.schedule(airtime, [this] { tx_end(); });
  update_busy_edges(was_busy);
  return airtime;
}

void Transceiver::tx_end() {
  MANET_ASSERT(transmitting_);
  const bool was_busy = medium_busy();
  transmitting_ = false;
  update_busy_edges(was_busy);
}

void Transceiver::set_down(bool down) {
  down_ = down;
  if (down) {
    // A crash mid-reception loses the frame; the pending rx_end events still
    // drain active_ and rx_energy_ normally.
    for (auto& rx : active_) rx.corrupted = true;
  }
}

void Transceiver::rx_start(const Packet* frame, SimTime airtime) {
  MANET_SENTINEL_CHECK(id_, "Transceiver::rx_start");
  if (down_) return;
  const bool was_busy = medium_busy();
  ActiveRx rx;
  rx.key = next_key_++;
  rx.end = sim_.now() + airtime;
  rx.airtime = airtime;
  rx.carrier_only = (frame == nullptr);
  rx.corrupted = false;
  if (frame != nullptr) rx.frame = *frame;
  // Collision rule: a second overlapping arrival corrupts every decodable
  // frame in flight, including the new one. Carrier-only arrivals corrupt
  // decodable frames too (they are interference), and vice versa.
  if (!active_.empty()) {
    for (auto& other : active_) other.corrupted = true;
    rx.corrupted = true;
  }
  // Receiving while transmitting: frame lost (half-duplex).
  if (transmitting_) rx.corrupted = true;

  ++rx_energy_;
  const std::uint64_t key = rx.key;
  active_.push_back(std::move(rx));
  sim_.schedule(airtime, [this, key] { rx_end(key); });
  update_busy_edges(was_busy);
}

void Transceiver::rx_end(std::uint64_t key) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [key](const ActiveRx& r) { return r.key == key; });
  MANET_ASSERT(it != active_.end());
  const bool was_busy = medium_busy();
  ActiveRx rx = std::move(*it);
  active_.erase(it);
  --rx_energy_;
  MANET_ASSERT(rx_energy_ >= 0);

  if (stats_ != nullptr) stats_->on_rx_energy(cfg_.rx_power_w * rx.airtime.sec());
  if (!rx.carrier_only) {
    // A frame whose tail overlapped our own transmission is also lost.
    if (transmitting_) rx.corrupted = true;
    if (rx.corrupted) {
      ++frames_corrupt_;
      if (stats_ != nullptr) stats_->on_collision();
    } else {
      ++frames_rx_;
      if (listener_ != nullptr) listener_->phy_rx(rx.frame);
    }
  }
  update_busy_edges(was_busy);
}

}  // namespace manet
