// Radio parameters.
//
// Defaults model the 914 MHz / 2 Mbit/s Lucent WaveLAN radio the ns-2 CMU
// wireless extensions shipped with — the radio of the whole 1998–2001
// comparison literature: 250 m nominal (two-ray ground) communication range
// and a 550 m carrier-sense/interference range.
#pragma once

#include <cmath>
#include <cstddef>

#include "core/time.hpp"
#include "geom/vec2.hpp"

namespace manet {

struct PhyConfig {
  double data_rate_bps = 2e6;    ///< payload bit rate
  double rx_range_m = 250.0;     ///< frames decodable within this distance
  double cs_range_m = 550.0;     ///< energy detectable (interferes) within this
  SimTime preamble = microseconds(192);  ///< PLCP preamble+header at 1 Mbit/s
  double propagation_mps = 3e8;  ///< speed of light

  /// Independent per-frame loss probability at each receiver — a stand-in
  /// for fading/shadowing on top of the unit-disk model (0 = ideal channel).
  /// Lost frames still carry energy (they interfere and trip carrier sense).
  double frame_loss_rate = 0.0;

  // Energy model (ns-2 WaveLAN-style defaults, joules = watts x seconds).
  double tx_power_w = 1.4;  ///< transmit power draw
  double rx_power_w = 1.0;  ///< receive power draw

  // -- urban obstacle/shadowing model (off by default) -------------------------
  // A street-canyon approximation for the Manhattan-grid scenario family:
  // buildings fill the blocks, so two radios decode each other at full range
  // only when they share a street corridor (x- or y-coordinates within one
  // street width). Non-line-of-sight pairs fall back to a short
  // around-the-corner diffraction range plus an extra independent loss draw.
  // Carrier-sense/interference reach is deliberately unchanged — energy
  // leaks over rooftops — which keeps MAC timing comparable between the
  // open-field and urban families. street_width_m == 0 disables the model
  // entirely: no LOS tests, no extra RNG draws, open-field goldens intact.
  double street_width_m = 0.0;    ///< corridor half-plane width; 0 = open field
  double nlos_rx_range_m = 75.0;  ///< decode range without line of sight
  double nlos_loss_rate = 0.0;    ///< extra per-frame loss on NLOS links

  /// True when the urban street-canyon model is active.
  [[nodiscard]] bool urban() const { return street_width_m > 0.0; }

  /// Street-corridor line-of-sight test (always true in the open field).
  [[nodiscard]] bool line_of_sight(Vec2 a, Vec2 b) const {
    if (!urban()) return true;
    return std::abs(a.x - b.x) <= street_width_m || std::abs(a.y - b.y) <= street_width_m;
  }

  /// Time on air for a frame of `bytes`.
  [[nodiscard]] SimTime airtime(std::size_t bytes) const {
    const double tx_s = static_cast<double>(bytes) * 8.0 / data_rate_bps;
    return preamble + seconds_f(tx_s);
  }

  /// One-way propagation delay over `meters`.
  [[nodiscard]] SimTime propagation(double meters) const {
    return seconds_f(meters / propagation_mps);
  }

  /// Upper bound on propagation delay within carrier-sense range; used for
  /// MAC timeout sizing.
  [[nodiscard]] SimTime max_propagation() const { return propagation(cs_range_m); }

  /// Lower bound on the propagation delay from a node in one spatial shard
  /// to a node in another — the PHY's contribution to the conservative
  /// kernel's lookahead. Stripe boundaries can place nodes of adjacent
  /// shards arbitrarily close, so this is the 0 m floor; kept as a named
  /// hook so a shard map that guarantees an inter-shard gap can raise it.
  [[nodiscard]] SimTime min_propagation() const { return propagation(0.0); }
};

}  // namespace manet
