// The shared wireless channel.
//
// Connects all transceivers. On each transmission it finds the nodes within
// carrier-sense range of the transmitter (grid spatial index + exact
// distance check), computes per-receiver propagation delays, and schedules
// energy/frame arrivals at each. Node positions come from the mobility
// models; the grid is refreshed periodically and queried with a slack margin
// of 2 · v_max · refresh-interval so candidates are never missed between
// refreshes.
#pragma once

#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "fault/fault.hpp"
#include "geom/grid_index.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/phy_config.hpp"
#include "phy/transceiver.hpp"
#include "stats/stats.hpp"

namespace manet {

class Channel {
 public:
  /// `seed` feeds the channel's own randomness (the frame-loss process).
  Channel(Simulator& sim, const PhyConfig& cfg, Area area,
          SimTime refresh = milliseconds(250), std::uint64_t seed = 1);

  /// Register a node. Transceiver ids must be dense and registered in order
  /// (0, 1, 2, ...); the ScenarioBuilder guarantees this. The channel does
  /// not own either object.
  void add(Transceiver* trx, MobilityModel* mob);

  /// Begin periodic position refresh; call once after all nodes are added.
  void start();

  /// Transmit: schedules arrivals at every node in carrier-sense range.
  /// Returns the time on air.
  SimTime transmit(NodeId sender, const Packet& frame);

  [[nodiscard]] const PhyConfig& config() const { return cfg_; }

  /// Current position of a node (refreshes its grid slot).
  [[nodiscard]] Vec2 position_of(NodeId id);

  /// Ids of nodes within `radius` of node `id` at current time (exact).
  /// Exposed for tests and for topology dumps in examples.
  std::vector<NodeId> neighbors_of(NodeId id, double radius);

  // -- fault injection --------------------------------------------------------
  /// Attach the fault masks (crashed nodes, blacked-out links, corruption
  /// rate). Null (the default) means no faults; transmit() then takes its
  /// original path with zero extra RNG draws.
  void set_fault(const FaultRuntime* fault) { fault_ = fault; }
  /// Sink for corruption accounting (optional).
  void set_stats(StatsCollector* stats) { stats_ = stats; }

  // -- sharding ---------------------------------------------------------------
  /// Attach the node -> shard map (sharded kernel only; see core/shard.hpp).
  /// Frame arrivals are then scheduled onto the receiver's shard and the
  /// periodic position refresh fans out across the shard executor. Null (the
  /// default) keeps the single-queue fast path. The map must outlive the
  /// channel and cover every node registered with add().
  void set_shards(const ShardMap* map) { shard_map_ = map; }

 private:
  void refresh_positions();
  /// Schedule a frame/energy arrival at `dst` — onto its shard when sharded.
  void schedule_rx(NodeId dst, SimTime prop, EventCallback cb);

  Simulator& sim_;
  PhyConfig cfg_;
  GridIndex grid_;
  SimTime refresh_;
  RngStream loss_rng_;
  RngStream fault_rng_;   ///< corruption draws; untouched outside corrupt windows
  RngStream shadow_rng_;  ///< urban NLOS draws; untouched in open-field runs
  const FaultRuntime* fault_ = nullptr;
  StatsCollector* stats_ = nullptr;
  const ShardMap* shard_map_ = nullptr;
  std::vector<Vec2> refresh_pos_;  ///< parallel-refresh output slots, by node id
  PacketArena arena_;  ///< pools the per-transmission delivery copies
  double max_speed_ = 0.0;
  std::vector<Transceiver*> trx_;
  std::vector<MobilityModel*> mob_;
  std::vector<std::uint32_t> scratch_;
};

}  // namespace manet
