#include "phy/channel.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet {

Channel::Channel(Simulator& sim, const PhyConfig& cfg, Area area, SimTime refresh,
                 std::uint64_t seed)
    : sim_(sim),
      cfg_(cfg),
      grid_(area, cfg.cs_range_m),
      refresh_(refresh),
      loss_rng_(seed, "channel-loss"),
      fault_rng_(seed, "fault-corrupt"),
      shadow_rng_(seed, "urban-shadow") {
  MANET_EXPECTS(refresh > SimTime::zero());
  MANET_EXPECTS(cfg.frame_loss_rate >= 0.0 && cfg.frame_loss_rate < 1.0);
  MANET_EXPECTS(cfg.street_width_m >= 0.0);
  MANET_EXPECTS(cfg.nlos_loss_rate >= 0.0 && cfg.nlos_loss_rate < 1.0);
  if (cfg.urban()) MANET_EXPECTS(cfg.nlos_rx_range_m > 0.0 && cfg.nlos_rx_range_m <= cfg.rx_range_m);
}

void Channel::add(Transceiver* trx, MobilityModel* mob) {
  MANET_EXPECTS(trx != nullptr && mob != nullptr);
  MANET_EXPECTS(trx->id() == trx_.size());  // dense registration order
  trx->attach_channel(this);
  trx_.push_back(trx);
  mob_.push_back(mob);
  max_speed_ = std::max(max_speed_, mob->max_speed());
  const std::uint32_t gid = grid_.insert(mob->position_at(sim_.now()));
  MANET_ASSERT(gid == trx->id());
}

void Channel::start() {
  sim_.schedule(refresh_, [this] { refresh_positions(); });
}

void Channel::refresh_positions() {
  ShardExecutor* exec = sim_.executor();
  if (exec != nullptr && shard_map_ != nullptr && shard_map_->size() == trx_.size()) {
    // Shard-parallel phase: integrating a mobility model forward only touches
    // that node's state and RNG stream, and each node belongs to exactly one
    // shard, so the workers write disjoint model state and disjoint output
    // slots. Per-node streams also make the draw order across nodes
    // irrelevant — the positions are a pure function of (seed, node, t).
    const SimTime t = sim_.now();
    refresh_pos_.resize(trx_.size());
    exec->run([&](unsigned shard) {
      for (const std::uint32_t i : shard_map_->nodes_of(shard)) {
        refresh_pos_[i] = mob_[i]->position_at(t);
      }
    });
    // The grid is shared; mutate it serially in id order — same order the
    // single-threaded loop used, so cell occupancy lists stay identical.
    // manet-lint: allow-node-scan - periodic 4 Hz grid refresh, not per-event
    for (std::uint32_t i = 0; i < trx_.size(); ++i) grid_.update(i, refresh_pos_[i]);
  } else {
    // manet-lint: allow-node-scan - periodic 4 Hz grid refresh, not per-event
    for (std::uint32_t i = 0; i < trx_.size(); ++i) {
      grid_.update(i, mob_[i]->position_at(sim_.now()));
    }
  }
  sim_.schedule(refresh_, [this] { refresh_positions(); });
}

void Channel::schedule_rx(NodeId dst, SimTime prop, EventCallback cb) {
  if (shard_map_ == nullptr) {
    sim_.schedule(prop, std::move(cb));
  } else {
    sim_.schedule_on(shard_map_->shard_of(dst), prop, std::move(cb));
  }
}

Vec2 Channel::position_of(NodeId id) {
  MANET_EXPECTS(id < mob_.size());
  const Vec2 p = mob_[id]->position_at(sim_.now());
  grid_.update(id, p);
  return p;
}

SimTime Channel::transmit(NodeId sender, const Packet& frame) {
  MANET_EXPECTS(sender < trx_.size());
  const SimTime airtime = cfg_.airtime(frame.size_bytes());
  // A crashed sender radiates nothing. (The node gates its own sends too;
  // this catches MAC events already in flight at the crash instant.)
  if (fault_ != nullptr && fault_->node_down(sender)) return airtime;
  const Vec2 src = position_of(sender);
  const double corrupt_rate = fault_ != nullptr ? fault_->corrupt_rate() : 0.0;

  // Grid query with slack: a node may have moved up to v_max * refresh since
  // its slot was updated, and the sender itself is exact, hence one factor of
  // v_max for the candidate plus a safety margin.
  const double slack = max_speed_ * refresh_.sec() * 2.0 + 1.0;
  scratch_.clear();
  grid_.query(src, cfg_.cs_range_m + slack, sender, scratch_);

  const double rx2 = cfg_.rx_range_m * cfg_.rx_range_m;
  const double cs2 = cfg_.cs_range_m * cfg_.cs_range_m;
  const bool urban = cfg_.urban();
  const double nlos_rx2 = cfg_.nlos_rx_range_m * cfg_.nlos_rx_range_m;
  // One pooled read-only copy is shared by every decodable arrival of this
  // transmission (receivers copy what they need at rx_start); a broadcast to
  // k neighbours no longer deep-copies the frame k times.
  std::shared_ptr<const Packet> copy;
  for (const std::uint32_t id : scratch_) {
    // A down receiver absorbs nothing — not even carrier energy; its radio
    // is off. A blacked-out or partition-cut link is silent in both
    // directions. Both checks precede any RNG draw so that fault-free runs
    // consume the loss stream identically with or without a FaultRuntime.
    if (fault_ != nullptr && fault_->node_down(id)) continue;
    const Vec2 dst = mob_[id]->position_at(sim_.now());
    grid_.update(id, dst);
    if (fault_ != nullptr && fault_->link_blocked(sender, id, src, dst)) continue;
    const double d2 = distance2(src, dst);
    if (d2 > cs2) continue;
    const SimTime prop = cfg_.propagation(std::sqrt(d2));
    Transceiver* rx = trx_[id];
    bool faded = cfg_.frame_loss_rate > 0.0 && loss_rng_.chance(cfg_.frame_loss_rate);
    // Urban street-canyon shadowing: an NLOS pair decodes only within the
    // short diffraction range, and then only past an extra loss draw. The
    // shadow stream is consumed solely on urban NLOS decode candidates, so
    // open-field runs (urban == false) draw exactly as before — the pinned
    // goldens never see this branch. Interference (the carrier-only path
    // below) is untouched: energy still trips carrier sense at cs_range.
    if (urban && d2 <= rx2 && !cfg_.line_of_sight(src, dst)) {
      if (d2 > nlos_rx2) {
        faded = true;
      } else if (!faded && cfg_.nlos_loss_rate > 0.0 && shadow_rng_.chance(cfg_.nlos_loss_rate)) {
        faded = true;
      }
    }
    if (d2 <= rx2 && !faded && corrupt_rate > 0.0 && fault_rng_.chance(corrupt_rate)) {
      // Channel corruption: the frame still arrives as interference (the
      // carrier-only path below), it just cannot be decoded.
      faded = true;
      if (stats_ != nullptr) stats_->on_fault_corruption(frame.kind == PacketKind::kData);
    }
    if (d2 <= rx2 && !faded) {
      if (copy == nullptr) copy = arena_.make(frame);
      schedule_rx(id, prop, [rx, copy, airtime] { rx->rx_start(copy.get(), airtime); });
    } else {
      // Carrier/interference only.
      schedule_rx(id, prop, [rx, airtime] { rx->rx_start(nullptr, airtime); });
    }
  }
  return airtime;
}

std::vector<NodeId> Channel::neighbors_of(NodeId id, double radius) {
  const Vec2 p = position_of(id);
  // Refresh candidates exactly, as transmit() does.
  const double slack = max_speed_ * refresh_.sec() * 2.0 + 1.0;
  scratch_.clear();
  grid_.query(p, radius + slack, id, scratch_);
  std::vector<NodeId> out;
  const double r2 = radius * radius;
  for (const std::uint32_t cand : scratch_) {
    const Vec2 q = mob_[cand]->position_at(sim_.now());
    grid_.update(cand, q);
    if (distance2(p, q) <= r2) out.push_back(cand);
  }
  return out;
}

}  // namespace manet
