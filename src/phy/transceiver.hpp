// Per-node radio transceiver.
//
// Models a half-duplex radio with carrier sensing and receiver-side collision
// behaviour:
//   * the medium is "busy" whenever the node is transmitting or any energy
//     from transmissions within carrier-sense range is arriving;
//   * two receptions overlapping in time at a receiver corrupt each other
//     (no capture effect — a deliberately pessimistic simplification noted in
//     DESIGN.md);
//   * transmitting while a frame is arriving corrupts that frame
//     (half-duplex).
// The MAC observes the medium through busy()/idle edges and receives only
// frames that survived uncorrupted.
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulator.hpp"
#include "packet/packet.hpp"
#include "phy/phy_config.hpp"
#include "stats/stats.hpp"

namespace manet {

class Channel;

/// Callbacks the MAC registers with its transceiver.
class PhyListener {
 public:
  virtual ~PhyListener() = default;
  /// The medium transitioned idle -> busy.
  virtual void phy_busy_start() = 0;
  /// The medium transitioned busy -> idle.
  virtual void phy_busy_end() = 0;
  /// A frame arrived intact.
  virtual void phy_rx(const Packet& frame) = 0;
};

class Transceiver {
 public:
  Transceiver(Simulator& sim, const PhyConfig& cfg, NodeId id);

  void attach_channel(Channel* ch) { channel_ = ch; }
  void set_listener(PhyListener* l) { listener_ = l; }
  /// Optional energy/collision accounting sink.
  void set_stats(StatsCollector* s) { stats_ = s; }
  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const PhyConfig& config() const { return cfg_; }

  /// True while transmitting or while any in-range energy is arriving.
  [[nodiscard]] bool medium_busy() const { return transmitting_ || rx_energy_ > 0; }
  [[nodiscard]] bool transmitting() const { return transmitting_; }

  /// Start transmitting `frame`; the caller (MAC) guarantees its own access
  /// rules. Returns the time on air.
  SimTime transmit(const Packet& frame);

  // -- called by the Channel --------------------------------------------------
  /// Energy (and possibly a decodable frame) starts arriving for `airtime`.
  /// `frame` is null for carrier-only arrivals (transmitter beyond rx range
  /// but within carrier-sense range).
  void rx_start(const Packet* frame, SimTime airtime);

  // -- fault injection --------------------------------------------------------
  /// Power the radio down/up. While down, new arrivals are ignored and any
  /// reception already in flight is corrupted; rx_end events for those still
  /// fire, keeping the energy bookkeeping balanced.
  void set_down(bool down);
  [[nodiscard]] bool down() const { return down_; }

  // -- introspection for tests -----------------------------------------------
  [[nodiscard]] std::uint64_t frames_received() const { return frames_rx_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return frames_corrupt_; }

 private:
  struct ActiveRx {
    std::uint64_t key;
    SimTime end;
    SimTime airtime;
    Packet frame;     // decodable content (unused when carrier_only)
    bool carrier_only;
    bool corrupted;
  };

  void rx_end(std::uint64_t key);
  void tx_end();
  void update_busy_edges(bool was_busy);

  Simulator& sim_;
  PhyConfig cfg_;
  NodeId id_;
  Channel* channel_ = nullptr;
  PhyListener* listener_ = nullptr;
  StatsCollector* stats_ = nullptr;

  bool transmitting_ = false;
  bool down_ = false;
  int rx_energy_ = 0;
  std::vector<ActiveRx> active_;
  std::uint64_t next_key_ = 0;
  std::uint64_t frames_rx_ = 0;
  std::uint64_t frames_corrupt_ = 0;
};

}  // namespace manet
