#include "net/arp.hpp"

#include "core/shard_sentinel.hpp"

namespace manet {

Arp::Arp(Simulator& sim, NodeId self, WifiMac& mac, StatsCollector& stats)
    : sim_(sim), self_(self), mac_(mac), stats_(stats) {}

void Arp::send(Packet pkt, NodeId next_hop) {
  MANET_SENTINEL_CHECK(self_, "Arp::send");
  if (next_hop == kBroadcast) {
    pkt.mac.dst = kBroadcast;
    mac_.enqueue(std::move(pkt));
    return;
  }
  if (const auto it = cache_.find(next_hop); it != cache_.end()) {
    pkt.mac.dst = it->second;
    mac_.enqueue(std::move(pkt));
    return;
  }
  auto [it, inserted] = pending_.try_emplace(next_hop);
  if (!inserted) {
    // ns-2 semantics: the newest packet waits; the previous one is dropped.
    drop_pending(it->second.pkt);
    it->second.pkt = std::move(pkt);
    return;  // a request is already outstanding
  }
  it->second.pkt = std::move(pkt);
  it->second.tries = 1;
  send_request(next_hop);
  it->second.timer = sim_.schedule(kRetryDelay, [this, next_hop] { on_timeout(next_hop); });
}

void Arp::reset() {
  for (auto& [target, pending] : pending_) {
    sim_.cancel(pending.timer);
    if (pending.pkt.kind == PacketKind::kData) stats_.on_data_dropped(DropReason::kNodeDown);
  }
  pending_.clear();
  cache_.clear();
}

void Arp::drop_pending(Packet& pkt) {
  if (pkt.kind == PacketKind::kData) stats_.on_data_dropped(DropReason::kArpFail);
}

void Arp::send_request(NodeId target) {
  Packet req;
  req.kind = PacketKind::kArp;
  req.arp = ArpHeader{.is_request = true, .sender = self_, .target = target};
  req.mac.dst = kBroadcast;
  mac_.enqueue(std::move(req));
}

void Arp::on_timeout(NodeId target) {
  auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (it->second.tries >= kMaxTries) {
    Packet stranded = std::move(it->second.pkt);
    pending_.erase(it);
    if (on_failure_) {
      on_failure_(stranded, target);  // link-layer feedback to routing
    } else {
      drop_pending(stranded);
    }
    return;
  }
  ++it->second.tries;
  send_request(target);
  it->second.timer = sim_.schedule(kRetryDelay, [this, target] { on_timeout(target); });
}

void Arp::on_receive(const Packet& frame) {
  // Learn the sender's mapping from any ARP frame.
  cache_[frame.arp.sender] = frame.mac.src;

  if (frame.arp.is_request) {
    if (frame.arp.target != self_) return;
    Packet reply;
    reply.kind = PacketKind::kArp;
    reply.arp = ArpHeader{.is_request = false, .sender = self_, .target = frame.arp.sender};
    reply.mac.dst = frame.mac.src;
    mac_.enqueue(std::move(reply));
  }

  // Resolution complete? Flush the waiting packet.
  if (auto it = pending_.find(frame.arp.sender); it != pending_.end()) {
    sim_.cancel(it->second.timer);
    Packet pkt = std::move(it->second.pkt);
    pending_.erase(it);
    pkt.mac.dst = cache_[frame.arp.sender];
    mac_.enqueue(std::move(pkt));
  }
}

}  // namespace manet
