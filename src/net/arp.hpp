// Address Resolution Protocol.
//
// Addresses are flat (the MAC address equals the network address), so
// resolution always succeeds after one request/reply exchange — but the
// exchange itself is real traffic, contends for the medium, and is counted
// in the normalized MAC load exactly as the paper family's methodology
// prescribes ("routing control packets, CTS, RTS, ARP requests and replies,
// and MAC ACKs"). Behaviour mirrors the ns-2 ARP module: one packet may wait
// per unresolved destination (a newer one evicts it), with bounded
// re-requests.
#pragma once

#include <functional>
#include <map>

#include "core/simulator.hpp"
#include "mac/wifi_mac.hpp"
#include "packet/packet.hpp"
#include "stats/stats.hpp"

namespace manet {

class Arp {
 public:
  static constexpr int kMaxTries = 3;
  static constexpr SimTime kRetryDelay = milliseconds(300);

  Arp(Simulator& sim, NodeId self, WifiMac& mac, StatsCollector& stats);

  /// Called when resolution of a next hop definitively fails with a packet
  /// still waiting — link-layer failure feedback, exactly like MAC retry
  /// exhaustion (an unresolvable neighbour is a gone neighbour). When unset,
  /// the waiting data packet is counted as an ARP drop.
  using FailureHandler = std::function<void(const Packet&, NodeId next_hop)>;
  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }

  /// Send `pkt` towards the link-layer neighbour `next_hop` (may be
  /// kBroadcast, which needs no resolution).
  void send(Packet pkt, NodeId next_hop);

  /// Handle a received ARP frame.
  void on_receive(const Packet& frame);

  /// True if `next_hop` is already resolved (tests).
  [[nodiscard]] bool resolved(NodeId next_hop) const { return cache_.contains(next_hop); }

  /// Fault injection: the node crashed. Cancels retry timers, drops waiting
  /// data packets (DropReason::kNodeDown — not routed through the failure
  /// handler, since the routing state is being flushed too) and empties the
  /// cache, so resolution starts from scratch after restart.
  void reset();

 private:
  struct Pending {
    Packet pkt;
    int tries = 0;
    EventId timer = kInvalidEventId;
  };

  void send_request(NodeId target);
  void on_timeout(NodeId target);
  void drop_pending(Packet& pkt);

  Simulator& sim_;
  NodeId self_;
  WifiMac& mac_;
  StatsCollector& stats_;
  FailureHandler on_failure_;
  // Ordered so any future sweep over these tables (timeout audits, cache
  // dumps) is deterministic by construction; today both are keyed-only.
  std::map<NodeId, NodeId> cache_;     // net addr -> MAC addr
  std::map<NodeId, Pending> pending_;  // awaiting resolution
};

}  // namespace manet
