// The interface every routing protocol implements.
//
// Lives in net/ (not routing/) so the Node can hold a protocol pointer
// without the network layer depending on any concrete protocol. Protocols
// receive three kinds of upcalls — data to route (originated or to be
// forwarded), control messages addressed to them, and 802.11 link-layer
// failure feedback — and drive the node through its send helpers.
#pragma once

#include "packet/packet.hpp"

namespace manet {

class Node;

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  /// Called once after the whole network is wired; schedule periodic
  /// activity (hellos, dumps, ...) here.
  virtual void start() = 0;

  /// Route a data packet: either freshly originated at this node or received
  /// for forwarding (TTL already decremented by the Node).
  virtual void route_packet(Packet pkt) = 0;

  /// A routing control message arrived; `from` is the transmitting
  /// neighbour.
  virtual void on_control(const Packet& pkt, NodeId from) = 0;

  /// The MAC exhausted retries sending `pkt` to `next_hop`. Default: count
  /// the loss if it carried data.
  virtual void on_link_failure(const Packet& pkt, NodeId next_hop);

  /// The host node restarted after a crash (fault injection). Protocols must
  /// come back with *cold* state: routing tables, neighbour sets, duplicate
  /// caches and pending discoveries flushed, buffered data dropped, exactly
  /// as a rebooted router would. Monotonic identity counters (DSDV/OLSR
  /// sequence numbers) may survive — real implementations persist them to
  /// avoid their stale advertisements beating fresh ones. Default: nothing
  /// to flush.
  virtual void on_node_restart() {}

  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  explicit RoutingProtocol(Node& node) : node_(node) {}
  Node& node_;  // NOLINT(*-non-private-member-variables-in-classes) — protocols are Node extensions
};

}  // namespace manet
