// The interface every routing protocol implements, and the registry that
// enumerates the implementations.
//
// Lives in net/ (not routing/) so the Node can hold a protocol pointer
// without the network layer depending on any concrete protocol. Protocols
// receive three kinds of upcalls — data to route (originated or to be
// forwarded), control messages addressed to them, and 802.11 link-layer
// failure feedback — and drive the node through its send helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "packet/packet.hpp"

namespace manet {

class Node;
struct ScenarioConfig;

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  /// Called once after the whole network is wired; schedule periodic
  /// activity (hellos, dumps, ...) here.
  virtual void start() = 0;

  /// Route a data packet: either freshly originated at this node or received
  /// for forwarding (TTL already decremented by the Node).
  virtual void route_packet(Packet pkt) = 0;

  /// A routing control message arrived; `from` is the transmitting
  /// neighbour.
  virtual void on_control(const Packet& pkt, NodeId from) = 0;

  /// The MAC exhausted retries sending `pkt` to `next_hop`. Default: count
  /// the loss if it carried data.
  virtual void on_link_failure(const Packet& pkt, NodeId next_hop);

  /// The host node restarted after a crash (fault injection). Protocols must
  /// come back with *cold* state: routing tables, neighbour sets, duplicate
  /// caches and pending discoveries flushed, buffered data dropped, exactly
  /// as a rebooted router would. Monotonic identity counters (DSDV/OLSR
  /// sequence numbers) may survive — real implementations persist them to
  /// avoid their stale advertisements beating fresh ones. Default: nothing
  /// to flush.
  virtual void on_node_restart() {}

  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  explicit RoutingProtocol(Node& node) : node_(node) {}
  Node& node_;  // NOLINT(*-non-private-member-variables-in-classes) — protocols are Node extensions
};

namespace routing {

/// One registered protocol implementation.
struct ProtocolEntry {
  /// Canonical uppercase name ("AODV"); also the name() the instances report.
  const char* name;
  /// Value of the scenario-layer Protocol enum, used for by-enum dispatch.
  std::uint8_t id;
  /// Instantiate the protocol for `node`. The factory reads its own config
  /// block out of the ScenarioConfig (defined in the scenario layer, hence
  /// opaque here) and seeds itself from the passed stream.
  std::unique_ptr<RoutingProtocol> (*make)(Node& node, const ScenarioConfig& cfg, RngStream rng);
};

/// Name/enum -> factory table for the implemented routing protocols.
///
/// The scenario layer registers every implementation once (see
/// protocol_registry() in scenario/scenario.hpp); everything downstream —
/// protocol construction, name rendering, name parsing, "run all protocols"
/// loops in benches and tests — iterates or queries this table instead of
/// maintaining its own switch over the enum. Adding protocol #8 is one enum
/// value plus one add() line.
class Registry {
 public:
  /// Register an entry. Names and ids must be unique; name lookups are
  /// case-insensitive, so names that differ only by case collide.
  void add(const ProtocolEntry& entry);

  /// Lookup by case-insensitive name ("aodv" matches "AODV"); nullptr when
  /// absent.
  [[nodiscard]] const ProtocolEntry* by_name(std::string_view name) const;

  /// Lookup by Protocol enum value; nullptr when absent.
  [[nodiscard]] const ProtocolEntry* by_id(std::uint8_t id) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Iteration, in registration order (the benches' canonical table order).
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  std::vector<ProtocolEntry> entries_;
};

}  // namespace routing

}  // namespace manet
