// A mobile node: radio + MAC + ARP + routing hook + data sink.
//
// The Node is the composition root of one protocol stack instance. It owns
// the transceiver, MAC, and ARP module; the routing protocol is attached
// after construction (it needs a reference back to the node). Data packets
// addressed to this node terminate here and feed the metrics; everything
// else is steered to the routing protocol.
#pragma once

#include <memory>
#include <unordered_set>

#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "mac/wifi_mac.hpp"
#include "mobility/mobility_model.hpp"
#include "net/arp.hpp"
#include "net/routing_api.hpp"
#include "phy/channel.hpp"
#include "phy/transceiver.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace manet {

class ReliableTransport;

/// Initial TTL on originated data packets; also bounds flooding.
inline constexpr std::uint8_t kInitialTtl = 64;

class Node final : public MacListener {
 public:
  /// Constructs the stack and registers the node with the channel. Nodes
  /// must be constructed in id order (0, 1, 2, ...). `mobility` is non-owning
  /// and must outlive the node — the Scenario's MobilityPool arena holds all
  /// models contiguously so the channel's position refresh walks them in
  /// cache order.
  Node(Simulator& sim, StatsCollector& stats, Channel& channel, NodeId id,
       MobilityModel* mobility, const MacConfig& mac_cfg, std::uint64_t root_seed);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  void set_routing(RoutingProtocol* rp) { routing_ = rp; }
  /// Attach the (optional) reliable transport endpoint of this node. When
  /// set, data packets carrying a transport header are steered to it instead
  /// of the raw sink, and restart() cold-resets it alongside routing.
  void set_transport(ReliableTransport* t) { transport_ = t; }
  /// Attach an (optional, shared) event trace.
  void set_trace(TraceWriter* t) { trace_ = t; }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] StatsCollector& stats() { return stats_; }
  [[nodiscard]] MobilityModel& mobility() { return *mobility_; }
  [[nodiscard]] WifiMac& mac() { return mac_; }
  [[nodiscard]] Transceiver& transceiver() { return trx_; }
  [[nodiscard]] Arp& arp() { return arp_; }
  [[nodiscard]] RoutingProtocol* routing() { return routing_; }
  [[nodiscard]] ReliableTransport* transport() { return transport_; }

  // -- application side -------------------------------------------------------
  /// Originate a data packet (called by traffic sources). Stamps network
  /// headers, counts it, and hands it to the routing protocol.
  void originate(Packet pkt);

  /// Send a transport segment or ACK (called by the reliable transport).
  /// Same header stamping and routing as originate(), but no origination
  /// accounting: the transport counts each application packet exactly once
  /// at try_send() acceptance, however often it is retransmitted.
  void transport_send(Packet pkt);

  // -- fault injection ---------------------------------------------------------
  /// Crash: power the radio down and flush the volatile stack state (MAC
  /// queue, ARP cache, buffered frames). The routing protocol object stays
  /// alive — its timers may fire while down, but the node gates every send
  /// and the channel delivers nothing, so a down node is fully silent.
  void crash();
  /// Restart after a crash: radio up, routing state flushed cold via
  /// RoutingProtocol::on_node_restart(). Idempotent pairing is the fault
  /// plan's responsibility (crash/restart events strictly alternate).
  void restart();
  [[nodiscard]] bool down() const { return down_; }

  // -- services for the routing protocol ---------------------------------------
  /// Send a packet to a specific link-layer neighbour (ARP resolves).
  void send_with_next_hop(Packet pkt, NodeId next_hop);
  /// Broadcast a packet to all neighbours (no ARP, no MAC ACK).
  void send_broadcast(Packet pkt);
  /// Count a dropped data packet (no-op for control packets).
  void drop(const Packet& pkt, DropReason r);
  /// Decrement TTL in place; on expiry drops the packet and returns false.
  bool decrement_ttl(Packet& pkt);

  // -- MacListener -------------------------------------------------------------
  void mac_deliver(const Packet& frame) override;
  void mac_link_failure(const Packet& frame, NodeId next_hop) override;

 private:
  // The transport's receive side delivers in-order payloads to the sink.
  friend class ReliableTransport;

  void deliver_to_sink(const Packet& pkt);

  /// Sink-side duplicate filter key. Bit budget: 20 bits each for flow,
  /// source id and sequence number — ample for any scenario here (flows and
  /// nodes number in the tens, per-flow sequence wraps after 10^6 packets).
  static std::uint64_t sink_key(const Packet& pkt) {
    return (static_cast<std::uint64_t>(pkt.app.flow & 0xFFFFF) << 44) |
           (static_cast<std::uint64_t>(pkt.ip.src & 0xFFFFF) << 24) |
           (pkt.app.seq & 0xFFFFF);
  }

  Simulator& sim_;
  StatsCollector& stats_;
  NodeId id_;
  MobilityModel* mobility_;  ///< non-owning; lives in the scenario's pool
  Transceiver trx_;
  WifiMac mac_;
  Arp arp_;
  RoutingProtocol* routing_ = nullptr;
  ReliableTransport* transport_ = nullptr;
  TraceWriter* trace_ = nullptr;
  bool down_ = false;
  // Survives crashes deliberately: the sink filter is measurement apparatus
  // (PDR counts unique application packets), not protocol state.
  std::unordered_set<std::uint64_t> sink_seen_;
};

}  // namespace manet
