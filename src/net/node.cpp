#include "net/node.hpp"

#include "core/assert.hpp"
#include "core/shard_sentinel.hpp"
#include "transport/transport.hpp"

namespace manet {

Node::Node(Simulator& sim, StatsCollector& stats, Channel& channel, NodeId id,
           MobilityModel* mobility, const MacConfig& mac_cfg, std::uint64_t root_seed)
    : sim_(sim),
      stats_(stats),
      id_(id),
      mobility_(mobility),
      trx_(sim, channel.config(), id),
      mac_(sim, mac_cfg, trx_, stats, RngStream(root_seed, "mac", id)),
      arp_(sim, id, mac_, stats) {
  MANET_EXPECTS(mobility_ != nullptr);
  trx_.set_stats(&stats);
  mac_.set_listener(this);
  // ARP give-up is link-layer failure feedback, same as MAC retry exhaustion.
  arp_.set_failure_handler(
      [this](const Packet& pkt, NodeId next_hop) { mac_link_failure(pkt, next_hop); });
  channel.add(&trx_, mobility_);
}

void Node::originate(Packet pkt) {
  MANET_SENTINEL_CHECK(id_, "Node::originate");
  pkt.kind = PacketKind::kData;
  pkt.ip.src = id_;
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kUdp;
  stats_.on_data_originated(pkt.app.flow);
  if (down_) {
    // The application keeps generating while its host is crashed (the flow
    // doesn't know); those packets are offered load that the fault destroys,
    // so they count against PDR rather than silently vanishing.
    drop(pkt, DropReason::kNodeDown);
    return;
  }
  if (trace_ != nullptr) trace_->record('s', sim_.now(), id_, pkt);
  if (pkt.ip.dst == id_) {  // degenerate self-flow
    deliver_to_sink(pkt);
    return;
  }
  MANET_ASSERT(routing_ != nullptr);
  routing_->route_packet(std::move(pkt));
}

void Node::transport_send(Packet pkt) {
  MANET_SENTINEL_CHECK(id_, "Node::transport_send");
  pkt.kind = PacketKind::kData;
  pkt.ip.src = id_;
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kUdp;
  if (down_) {
    // The transport's RTO timers keep firing between crash and restart;
    // their retransmissions go nowhere, like routing timer output.
    drop(pkt, DropReason::kNodeDown);
    return;
  }
  if (trace_ != nullptr) trace_->record('s', sim_.now(), id_, pkt);
  MANET_ASSERT(routing_ != nullptr);
  routing_->route_packet(std::move(pkt));
}

void Node::crash() {
  MANET_SENTINEL_CHECK(id_, "Node::crash");
  MANET_EXPECTS(!down_);
  down_ = true;
  trx_.set_down(true);
  mac_.reset();
  arp_.reset();
  stats_.on_node_crash();
  if (trace_ != nullptr) trace_->record_fault(sim_.now(), id_, "crash");
}

void Node::restart() {
  MANET_SENTINEL_CHECK(id_, "Node::restart");
  MANET_EXPECTS(down_);
  down_ = false;
  trx_.set_down(false);
  if (routing_ != nullptr) routing_->on_node_restart();
  if (transport_ != nullptr) transport_->on_node_restart();
  if (trace_ != nullptr) trace_->record_fault(sim_.now(), id_, "restart");
}

void Node::send_with_next_hop(Packet pkt, NodeId next_hop) {
  MANET_SENTINEL_CHECK(id_, "Node::send_with_next_hop");
  if (down_) {
    // Routing timers may still fire while down; their output goes nowhere.
    drop(pkt, DropReason::kNodeDown);
    return;
  }
  arp_.send(std::move(pkt), next_hop);
}

void Node::send_broadcast(Packet pkt) {
  MANET_SENTINEL_CHECK(id_, "Node::send_broadcast");
  if (down_) {
    drop(pkt, DropReason::kNodeDown);
    return;
  }
  pkt.mac.dst = kBroadcast;
  mac_.enqueue(std::move(pkt));
}

void Node::drop(const Packet& pkt, DropReason r) {
  MANET_SENTINEL_CHECK(id_, "Node::drop");
  // Pure ACKs carry no application payload; counting them as data drops
  // would skew the drop distribution against the transport's control chatter.
  if (pkt.kind == PacketKind::kData && pkt.transport.kind != SegKind::kAck) {
    stats_.on_data_dropped(r);
  }
  if (trace_ != nullptr) trace_->record('D', sim_.now(), id_, pkt, to_string(r));
}

bool Node::decrement_ttl(Packet& pkt) {
  if (pkt.ip.ttl <= 1) {
    drop(pkt, DropReason::kTtlExpired);
    return false;
  }
  --pkt.ip.ttl;
  return true;
}

void Node::deliver_to_sink(const Packet& pkt) {
  // PDR counts unique application packets; late duplicate copies (route
  // flaps, flooding protocols) are tallied separately.
  if (!sink_seen_.insert(sink_key(pkt)).second) {
    stats_.on_duplicate_delivery();
    return;
  }
  const SimTime delay = sim_.now() - pkt.app.sent_at;
  const auto hops = static_cast<std::uint32_t>(kInitialTtl - pkt.ip.ttl + 1);
  stats_.on_data_delivered(delay, pkt.payload_bytes, hops, pkt.app.flow, sim_.now());
  if (trace_ != nullptr) trace_->record('r', sim_.now(), id_, pkt);
}

void Node::mac_deliver(const Packet& frame) {
  MANET_SENTINEL_CHECK(id_, "Node::mac_deliver");
  // The channel excludes down receivers and the transceiver corrupts
  // receptions in flight at the crash instant, so nothing can reach here
  // while down — the recovery-invariant suite depends on this.
  MANET_ASSERT_MSG(!down_, "node %u t=%lldns: frame delivered to a crashed node", id_,
                   static_cast<long long>(sim_.now().ns()));
  switch (frame.kind) {
    case PacketKind::kArp:
      arp_.on_receive(frame);
      return;
    case PacketKind::kRoutingControl:
      if (routing_ != nullptr) routing_->on_control(frame, frame.mac.src);
      return;
    case PacketKind::kData: {
      if (frame.ip.dst == id_) {
        // Transport-carrying packets terminate in the transport endpoint; a
        // bare datagram (or any segment on a transport-less node) falls
        // through to the raw sink as before.
        if (transport_ != nullptr && frame.transport.kind == SegKind::kAck) {
          transport_->on_ack(frame);
          return;
        }
        if (transport_ != nullptr && frame.transport.kind == SegKind::kData) {
          transport_->on_segment(frame);
          return;
        }
        deliver_to_sink(frame);
        return;
      }
      // Forwarding: TTL is charged here, once per hop, for every protocol.
      Packet pkt = frame;
      if (!decrement_ttl(pkt)) return;
      if (trace_ != nullptr) trace_->record('f', sim_.now(), id_, pkt);
      if (routing_ != nullptr) routing_->route_packet(std::move(pkt));
      return;
    }
  }
}

void Node::mac_link_failure(const Packet& frame, NodeId next_hop) {
  if (routing_ != nullptr) {
    routing_->on_link_failure(frame, next_hop);
  } else {
    drop(frame, DropReason::kMacRetryLimit);
  }
}

}  // namespace manet
