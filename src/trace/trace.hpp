// Event tracing in the spirit of ns-2's wireless trace format.
//
// The original methodology post-processed ns-2 trace files with awk; our
// metrics are computed in-simulator instead, but a trace remains invaluable
// for debugging a protocol run and for external analysis. The writer
// records network-layer events, one line each:
//
//   <ev> <time> _<node>_ <layer> <uid> <type> <bytes> [<src> -> <dst>] <note>
//
// where <ev> is s (send/originate), f (forward), r (receive at destination),
// D (drop, with the reason as <note>). Attach a TraceWriter to a Scenario
// via ScenarioConfig::trace_path, or to individual Nodes with set_trace().
#pragma once

#include <cstdio>
#include <string>

#include "core/time.hpp"
#include "packet/packet.hpp"

namespace manet {

class TraceWriter {
 public:
  /// Opens `path` for writing (truncates). Throws nothing; check ok().
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void record(char event, SimTime now, NodeId node, const Packet& pkt,
              const char* note = "");

  /// Record a fault-lifecycle event (no packet involved):
  ///   F <time> _<node>_ FLT <what>
  /// `node` is kBroadcast for network-wide faults (partition, corruption
  /// window), rendered as `_*_`.
  void record_fault(SimTime now, NodeId node, const char* what);

  /// Number of lines written so far.
  [[nodiscard]] std::uint64_t lines() const { return lines_; }

  /// Flush buffered lines to disk.
  void flush();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t lines_ = 0;
};

/// Short type tag for the trace line ("cbr", "arp", "rtr", "mac").
[[nodiscard]] const char* trace_type(const Packet& pkt);

}  // namespace manet
