#include "trace/trace.hpp"

namespace manet {

const char* trace_type(const Packet& pkt) {
  switch (pkt.mac.type) {
    case MacFrameType::kRts:
    case MacFrameType::kCts:
    case MacFrameType::kAck:
      return "mac";
    case MacFrameType::kData: break;
  }
  switch (pkt.kind) {
    case PacketKind::kArp: return "arp";
    case PacketKind::kRoutingControl: return "rtr";
    case PacketKind::kData: return "cbr";
  }
  return "?";
}

TraceWriter::TraceWriter(const std::string& path) { file_ = std::fopen(path.c_str(), "w"); }

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceWriter::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void TraceWriter::record(char event, SimTime now, NodeId node, const Packet& pkt,
                         const char* note) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "%c %.9f _%u_ RTR %llu %s %zu [%u -> %u]%s%s\n", event, now.sec(), node,
               static_cast<unsigned long long>(pkt.uid()), trace_type(pkt), pkt.size_bytes(),
               pkt.ip.src, pkt.ip.dst, note[0] != '\0' ? " " : "", note);
  ++lines_;
}

void TraceWriter::record_fault(SimTime now, NodeId node, const char* what) {
  if (file_ == nullptr) return;
  if (node == kBroadcast) {
    std::fprintf(file_, "F %.9f _*_ FLT %s\n", now.sec(), what);
  } else {
    std::fprintf(file_, "F %.9f _%u_ FLT %s\n", now.sec(), node, what);
  }
  ++lines_;
}

}  // namespace manet
