#include "mobility/random_walk.hpp"

#include <cmath>
#include <numbers>

#include "core/assert.hpp"

namespace manet {

RandomWalk::RandomWalk(const RandomWalkConfig& cfg, RngStream rng) : cfg_(cfg), rng_(rng) {
  MANET_EXPECTS(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min);
  MANET_EXPECTS(cfg.step > SimTime::zero());
  from_ = {rng_.uniform(0.0, cfg_.area.width), rng_.uniform(0.0, cfg_.area.height)};
  depart_ = leg_end_ = SimTime::zero();
  next_leg();
}

void RandomWalk::next_leg() {
  from_ = from_ + velocity_ * (leg_end_ - depart_).sec();
  from_ = cfg_.area.clamp(from_);
  depart_ = leg_end_;
  leg_end_ = depart_ + cfg_.step;
  const double speed = rng_.uniform(cfg_.v_min, cfg_.v_max);
  const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  velocity_ = {speed * std::cos(angle), speed * std::sin(angle)};
}

Vec2 RandomWalk::position_at(SimTime t) {
  while (t >= leg_end_) next_leg();
  Vec2 p = from_ + velocity_ * (t - depart_).sec();
  // Reflect off the boundary; with legs of bounded length one reflection per
  // axis suffices (speed * step < area dimensions for sane configs), but we
  // loop to stay correct for extreme parameters.
  auto reflect = [](double v, double hi) {
    while (v < 0.0 || v > hi) {
      if (v < 0.0) v = -v;
      if (v > hi) v = 2.0 * hi - v;
    }
    return v;
  };
  p.x = reflect(p.x, cfg_.area.width);
  p.y = reflect(p.y, cfg_.area.height);
  return p;
}

}  // namespace manet
