#include "mobility/static_mobility.hpp"

// StaticMobility is header-only; this TU anchors the vtable.
