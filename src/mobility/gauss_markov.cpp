#include "mobility/gauss_markov.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/assert.hpp"

namespace manet {

GaussMarkov::GaussMarkov(const GaussMarkovConfig& cfg, RngStream rng)
    : cfg_(cfg), rng_(rng) {
  MANET_EXPECTS(cfg.alpha >= 0.0 && cfg.alpha <= 1.0);
  MANET_EXPECTS(cfg.mean_speed > 0.0 && cfg.max_speed >= cfg.mean_speed);
  MANET_EXPECTS(cfg.step > SimTime::zero());
  pos_ = {rng_.uniform(0.0, cfg_.area.width), rng_.uniform(0.0, cfg_.area.height)};
  speed_ = cfg_.mean_speed;
  direction_ = mean_direction_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  step_start_ = SimTime::zero();
  step_velocity_ = {speed_ * std::cos(direction_), speed_ * std::sin(direction_)};
}

void GaussMarkov::advance_step() {
  // Commit the last step's movement.
  pos_ = cfg_.area.clamp(pos_ + step_velocity_ * cfg_.step.sec());
  step_start_ += cfg_.step;

  // Steer the mean direction towards the interior when near an edge.
  if (pos_.x < cfg_.edge_margin || pos_.x > cfg_.area.width - cfg_.edge_margin ||
      pos_.y < cfg_.edge_margin || pos_.y > cfg_.area.height - cfg_.edge_margin) {
    const Vec2 center{cfg_.area.width / 2.0, cfg_.area.height / 2.0};
    mean_direction_ = std::atan2(center.y - pos_.y, center.x - pos_.x);
  }

  const double a = cfg_.alpha;
  const double noise_w = std::sqrt(std::max(0.0, 1.0 - a * a));
  speed_ = a * speed_ + (1.0 - a) * cfg_.mean_speed +
           noise_w * rng_.normal(0.0, cfg_.speed_stddev);
  speed_ = std::clamp(speed_, 0.0, cfg_.max_speed);
  direction_ = a * direction_ + (1.0 - a) * mean_direction_ +
               noise_w * rng_.normal(0.0, cfg_.direction_stddev);
  step_velocity_ = {speed_ * std::cos(direction_), speed_ * std::sin(direction_)};
}

Vec2 GaussMarkov::position_at(SimTime t) {
  while (t >= step_start_ + cfg_.step) advance_step();
  const Vec2 p = pos_ + step_velocity_ * (t - step_start_).sec();
  return cfg_.area.clamp(p);
}

}  // namespace manet
