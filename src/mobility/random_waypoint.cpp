#include "mobility/random_waypoint.hpp"

#include "core/assert.hpp"

namespace manet {

RandomWaypoint::RandomWaypoint(const RandomWaypointConfig& cfg, RngStream rng)
    : cfg_(cfg), rng_(rng) {
  MANET_EXPECTS(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min);
  from_ = {rng_.uniform(0.0, cfg_.area.width), rng_.uniform(0.0, cfg_.area.height)};
  to_ = from_;
  depart_ = arrive_ = leg_end_ = SimTime::zero();
  next_leg();
  // Warm-up: run the process forward so position/speed at t=0 approximate
  // the stationary distribution, then shift the clock back.
  if (cfg_.warmup > SimTime::zero()) {
    (void)position_at(cfg_.warmup);
    depart_ -= cfg_.warmup;
    arrive_ -= cfg_.warmup;
    leg_end_ -= cfg_.warmup;
  }
}

void RandomWaypoint::next_leg() {
  from_ = to_;
  depart_ = leg_end_;
  to_ = {rng_.uniform(0.0, cfg_.area.width), rng_.uniform(0.0, cfg_.area.height)};
  const double speed = rng_.uniform(cfg_.v_min, cfg_.v_max);
  const double dist = distance(from_, to_);
  arrive_ = depart_ + seconds_f(dist / speed);
  leg_end_ = arrive_ + cfg_.pause;
  MANET_ENSURES(leg_end_ >= depart_);
}

Vec2 RandomWaypoint::position_at(SimTime t) {
  while (t >= leg_end_) next_leg();
  if (t >= arrive_) return to_;  // pausing at the waypoint
  if (t <= depart_) return from_;
  const double frac = static_cast<double>((t - depart_).ns()) /
                      static_cast<double>((arrive_ - depart_).ns());
  return from_ + (to_ - from_) * frac;
}

}  // namespace manet
