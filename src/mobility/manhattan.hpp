// Manhattan-grid mobility.
//
// Nodes move along the streets of a regular grid (spacing `block` metres):
// straight along a street at a per-leg uniform speed, and at each
// intersection continue straight with probability 0.5 or turn left/right
// with probability 0.25 each (the standard Manhattan model of the mobility
// comparison literature — urban vehicle movement). Positions are always on
// a street line, which concentrates nodes and creates the characteristic
// long-thin contact patterns that stress routing protocols differently from
// random waypoint.
#pragma once

#include "core/rng.hpp"
#include "mobility/mobility_model.hpp"

namespace manet {

struct ManhattanConfig {
  Area area{1000.0, 1000.0};
  double block = 200.0;  ///< street spacing, metres
  double v_min = 1.0;    ///< m/s
  double v_max = 15.0;   ///< m/s
  double p_turn = 0.5;   ///< probability of turning at an intersection
};

class Manhattan final : public MobilityModel {
 public:
  Manhattan(const ManhattanConfig& cfg, RngStream rng);

  Vec2 position_at(SimTime t) override;
  [[nodiscard]] double max_speed() const override { return cfg_.v_max; }

 private:
  struct Leg {
    Vec2 from;
    Vec2 to;        // next intersection
    SimTime depart;
    SimTime arrive;
  };
  void next_leg();
  [[nodiscard]] int max_ix() const;
  [[nodiscard]] int max_iy() const;

  ManhattanConfig cfg_;
  RngStream rng_;
  int ix_ = 0, iy_ = 0;  // current intersection (grid coordinates)
  int dx_ = 1, dy_ = 0;  // travel direction (unit grid step)
  Leg leg_{};
};

}  // namespace manet
