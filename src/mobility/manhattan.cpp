#include "mobility/manhattan.hpp"

#include "core/assert.hpp"

namespace manet {

Manhattan::Manhattan(const ManhattanConfig& cfg, RngStream rng) : cfg_(cfg), rng_(rng) {
  MANET_EXPECTS(cfg.block > 0.0);
  MANET_EXPECTS(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min);
  MANET_EXPECTS(cfg.area.width >= cfg.block && cfg.area.height >= cfg.block);
  ix_ = static_cast<int>(rng_.uniform_int(0, max_ix()));
  iy_ = static_cast<int>(rng_.uniform_int(0, max_iy()));
  if (rng_.chance(0.5)) {
    dx_ = rng_.chance(0.5) ? 1 : -1;
    dy_ = 0;
  } else {
    dx_ = 0;
    dy_ = rng_.chance(0.5) ? 1 : -1;
  }
  leg_.to = {ix_ * cfg_.block, iy_ * cfg_.block};
  leg_.arrive = SimTime::zero();
  next_leg();
}

int Manhattan::max_ix() const { return static_cast<int>(cfg_.area.width / cfg_.block); }
int Manhattan::max_iy() const { return static_cast<int>(cfg_.area.height / cfg_.block); }

void Manhattan::next_leg() {
  // At the intersection (ix_, iy_): keep straight or turn, then reject
  // directions that leave the grid (turn back instead).
  if (rng_.chance(cfg_.p_turn)) {
    // Turn: swap the axis of travel; pick a side uniformly.
    const int side = rng_.chance(0.5) ? 1 : -1;
    if (dx_ != 0) {
      dx_ = 0;
      dy_ = side;
    } else {
      dy_ = 0;
      dx_ = side;
    }
  }
  // Clamp to the grid: reverse when the step would leave it.
  if (ix_ + dx_ < 0 || ix_ + dx_ > max_ix()) dx_ = -dx_;
  if (iy_ + dy_ < 0 || iy_ + dy_ > max_iy()) dy_ = -dy_;

  leg_.from = {ix_ * cfg_.block, iy_ * cfg_.block};
  ix_ += dx_;
  iy_ += dy_;
  leg_.to = {ix_ * cfg_.block, iy_ * cfg_.block};
  leg_.depart = leg_.arrive;
  const double speed = rng_.uniform(cfg_.v_min, cfg_.v_max);
  leg_.arrive = leg_.depart + seconds_f(cfg_.block / speed);
}

Vec2 Manhattan::position_at(SimTime t) {
  while (t >= leg_.arrive) next_leg();
  if (t <= leg_.depart) return leg_.from;
  const double frac = static_cast<double>((t - leg_.depart).ns()) /
                      static_cast<double>((leg_.arrive - leg_.depart).ns());
  return leg_.from + (leg_.to - leg_.from) * frac;
}

}  // namespace manet
