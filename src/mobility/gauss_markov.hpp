// Gauss-Markov mobility (Liang & Haas).
//
// Velocity is a first-order autoregressive process: at each step the new
// speed/direction is a blend of the previous value, a long-term mean, and
// Gaussian noise, weighted by the memory parameter alpha in [0,1]:
//
//   v_k = alpha * v_{k-1} + (1 - alpha) * v_mean + sqrt(1 - alpha^2) * noise
//
// alpha -> 1 gives smooth, temporally-correlated motion (vehicles);
// alpha -> 0 degenerates to a memoryless random walk. Included because the
// mobility-model comparison branch of this literature (Divecha et al. 2007)
// shows protocol rankings shift across mobility models, and Gauss-Markov is
// its standard "smooth" representative. Boundary handling follows the
// common recipe: near an edge, the mean direction is steered back towards
// the middle of the area.
#pragma once

#include "core/rng.hpp"
#include "mobility/mobility_model.hpp"

namespace manet {

struct GaussMarkovConfig {
  Area area{1000.0, 1000.0};
  double alpha = 0.85;          ///< memory (0 = random walk, 1 = straight line)
  double mean_speed = 10.0;     ///< long-term mean speed, m/s
  double speed_stddev = 3.0;    ///< speed noise
  double direction_stddev = 0.6;  ///< direction noise, radians
  double max_speed = 25.0;      ///< hard clamp (channel slack bound)
  SimTime step = seconds(1);    ///< update granularity
  /// Distance from an edge at which the mean direction turns inward.
  double edge_margin = 50.0;
};

class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(const GaussMarkovConfig& cfg, RngStream rng);

  Vec2 position_at(SimTime t) override;
  [[nodiscard]] double max_speed() const override { return cfg_.max_speed; }

 private:
  void advance_step();

  GaussMarkovConfig cfg_;
  RngStream rng_;
  Vec2 pos_{};
  double speed_ = 0.0;
  double direction_ = 0.0;       // radians
  double mean_direction_ = 0.0;  // steered near edges
  SimTime step_start_{};
  Vec2 step_velocity_{};
};

}  // namespace manet
