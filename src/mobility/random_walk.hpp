// Random walk (random direction with boundary reflection).
//
// Included as a secondary mobility model: unlike random waypoint it has no
// central-area density bias, which makes it a useful ablation for density-
// sensitive protocols (clustering, MPR selection).
#pragma once

#include "core/rng.hpp"
#include "mobility/mobility_model.hpp"

namespace manet {

struct RandomWalkConfig {
  Area area{1000.0, 1000.0};
  double v_min = 0.1;              // m/s
  double v_max = 20.0;             // m/s
  SimTime step = seconds(10);      // time between direction changes
};

class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(const RandomWalkConfig& cfg, RngStream rng);

  Vec2 position_at(SimTime t) override;
  [[nodiscard]] double max_speed() const override { return cfg_.v_max; }

 private:
  void next_leg();

  RandomWalkConfig cfg_;
  RngStream rng_;
  Vec2 from_{};
  Vec2 velocity_{};  // m/s
  SimTime depart_{}, leg_end_{};
};

}  // namespace manet
