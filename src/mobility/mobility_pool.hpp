// Arena-backed storage for per-node mobility state.
//
// A scenario owns one mobility model per node. Allocating each model with
// its own unique_ptr scatters them across the heap, and the channel's
// periodic position refresh — the one loop that is inherently O(N) — then
// takes a cache miss per node. At N = 10,000 that loop runs 4x a simulated
// second, so locality matters. The pool bump-allocates models from large
// contiguous blocks in construction order: all N models of a scenario (one
// concrete type in practice) end up adjacent in memory, and the refresh
// walks them sequentially.
//
// Ownership: the pool owns every object it makes and destroys them (in
// reverse construction order) when it is destroyed or clear()ed. Callers
// hold raw non-owning pointers; the pool must outlive them — Scenario
// declares its pool before the nodes/channel that point into it.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "mobility/mobility_model.hpp"

namespace manet {

class MobilityPool {
 public:
  MobilityPool() = default;
  MobilityPool(const MobilityPool&) = delete;
  MobilityPool& operator=(const MobilityPool&) = delete;
  ~MobilityPool() { clear(); }

  /// Construct a model of concrete type T inside the arena. The returned
  /// pointer stays valid for the pool's lifetime (blocks never move).
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_base_of_v<MobilityModel, T>);
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    objects_.push_back(obj);
    return obj;
  }

  /// Number of live models.
  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Destroy every model (reverse construction order) and release the arena.
  void clear() {
    for (std::size_t i = objects_.size(); i > 0; --i) objects_[i - 1]->~MobilityModel();
    objects_.clear();
    blocks_.clear();
    block_used_ = 0;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t cap = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align) {
    if (!blocks_.empty()) {
      const std::size_t aligned = (block_used_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= blocks_.back().cap) {
        block_used_ = aligned + bytes;
        return blocks_.back().mem.get() + aligned;
      }
    }
    // Geometric block growth, floor 64 KiB: a 10k-node scenario fits in a
    // handful of mmap'd slabs instead of 10k separate allocations.
    std::size_t cap = blocks_.empty() ? kMinBlock : blocks_.back().cap * 2;
    if (cap < bytes + align) cap = bytes + align;
    Block b;
    b.mem = std::make_unique<std::byte[]>(cap);
    b.cap = cap;
    blocks_.push_back(std::move(b));
    // operator new[] returns maximally aligned storage; realign the cursor.
    const std::size_t base = reinterpret_cast<std::size_t>(blocks_.back().mem.get());
    const std::size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
    block_used_ = aligned + bytes;
    return blocks_.back().mem.get() + aligned;
  }

  static constexpr std::size_t kMinBlock = 64 * 1024;

  std::vector<Block> blocks_;
  std::size_t block_used_ = 0;          ///< bytes used in blocks_.back()
  std::vector<MobilityModel*> objects_;  ///< construction order, for dtors
};

}  // namespace manet
