// A node that never moves. Used for the zero-mobility data points and for
// all deterministic topology tests (lines, grids, stars).
#pragma once

#include "mobility/mobility_model.hpp"

namespace manet {

class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_(pos) {}

  Vec2 position_at(SimTime) override { return pos_; }
  [[nodiscard]] double max_speed() const override { return 0.0; }

  /// Teleport the node (used by tests to force link breaks).
  void set_position(Vec2 p) { pos_ = p; }

 private:
  Vec2 pos_;
};

}  // namespace manet
