// Node mobility.
//
// A MobilityModel answers "where is this node at time t". Models are lazy and
// analytic: they keep the current movement leg and advance it when queried,
// so no per-node movement events clutter the event queue. The contract is
// that queries arrive with non-decreasing t (simulated time is monotone),
// which makes advancement O(1) amortized.
#pragma once

#include <memory>

#include "core/time.hpp"
#include "geom/vec2.hpp"

namespace manet {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at time `t`. Calls must use non-decreasing `t`.
  virtual Vec2 position_at(SimTime t) = 0;

  /// Upper bound on instantaneous speed (m/s); the channel uses this to size
  /// the slack on spatial-index queries between refreshes.
  [[nodiscard]] virtual double max_speed() const = 0;
};

using MobilityPtr = std::unique_ptr<MobilityModel>;

}  // namespace manet
