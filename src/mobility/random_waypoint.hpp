// Random waypoint — the mobility model of the entire 1998–2014 MANET
// comparison literature (Broch '98, Das '00, Boukerche '01, ...).
//
// A node picks a uniform destination in the area, travels to it in a straight
// line at a speed drawn uniformly from [v_min, v_max], pauses for `pause`,
// and repeats. The well-known caveats are handled:
//   * v_min > 0 by default (0.1 m/s) so average speed does not decay to zero
//     over time (Yoon et al.'s "harmful" pathology);
//   * an optional warm-up pre-advances the process so t = 0 samples from a
//     distribution close to the stationary one rather than the uniform
//     initial placement.
#pragma once

#include "core/rng.hpp"
#include "mobility/mobility_model.hpp"

namespace manet {

struct RandomWaypointConfig {
  Area area{1000.0, 1000.0};
  double v_min = 0.1;   // m/s; strictly positive unless the node is static
  double v_max = 20.0;  // m/s
  SimTime pause = SimTime::zero();
  SimTime warmup = seconds(1000);  // pre-advance towards stationarity
};

class RandomWaypoint final : public MobilityModel {
 public:
  /// `rng` seeds this node's private movement stream.
  RandomWaypoint(const RandomWaypointConfig& cfg, RngStream rng);

  Vec2 position_at(SimTime t) override;
  [[nodiscard]] double max_speed() const override { return cfg_.v_max; }

 private:
  void next_leg();

  RandomWaypointConfig cfg_;
  RngStream rng_;
  // Current leg: travel from `from_` (departing at depart_) to `to_`
  // (arriving at arrive_), then pause until `leg_end_`.
  Vec2 from_{}, to_{};
  SimTime depart_{}, arrive_{}, leg_end_{};
};

}  // namespace manet
