#include "app/onoff.hpp"

#include "core/assert.hpp"
#include "transport/transport.hpp"

namespace manet {

OnOffSource::OnOffSource(Node& node, const Config& cfg, RngStream rng)
    : node_(node), cfg_(cfg), rng_(rng) {
  MANET_EXPECTS(cfg.interval > SimTime::zero());
  MANET_EXPECTS(cfg.burst_mean > SimTime::zero() && cfg.idle_mean > SimTime::zero());
}

void OnOffSource::start() {
  node_.sim().schedule_at(cfg_.start, [this] { begin_burst(); });
}

void OnOffSource::begin_burst() {
  if (node_.sim().now() > cfg_.stop) return;
  on_ = true;
  const SimTime burst = seconds_f(rng_.exponential(cfg_.burst_mean.sec()));
  burst_end_ = node_.sim().now() + burst;
  send_one();
}

void OnOffSource::send_one() {
  if (node_.sim().now() > cfg_.stop) return;
  if (node_.sim().now() >= burst_end_) {
    on_ = false;
    const SimTime idle = seconds_f(rng_.exponential(cfg_.idle_mean.sec()));
    node_.sim().schedule(idle, [this] { begin_burst(); });
    return;
  }
  if (ReliableTransport* tp = node_.transport(); tp != nullptr) {
    // Closed loop: see CbrSource::send_one().
    if (tp->try_send(cfg_.flow, cfg_.dst, cfg_.payload_bytes, seq_)) ++seq_;
  } else {
    Packet pkt;
    pkt.ip.dst = cfg_.dst;
    pkt.payload_bytes = cfg_.payload_bytes;
    pkt.app = AppHeader{.flow = cfg_.flow, .seq = seq_++, .sent_at = node_.sim().now()};
    node_.originate(std::move(pkt));
  }
  node_.sim().schedule(cfg_.interval, [this] { send_one(); });
}

}  // namespace manet
