#include "app/cbr.hpp"

#include "core/assert.hpp"

namespace manet {

CbrSource::CbrSource(Node& node, const Config& cfg) : node_(node), cfg_(cfg) {
  MANET_EXPECTS(cfg.interval > SimTime::zero());
  MANET_EXPECTS(cfg.payload_bytes > 0);
}

void CbrSource::start() {
  node_.sim().schedule_at(cfg_.start, [this] { send_one(); });
}

void CbrSource::send_one() {
  if (node_.sim().now() > cfg_.stop) return;
  Packet pkt;
  pkt.ip.dst = cfg_.dst;
  pkt.payload_bytes = cfg_.payload_bytes;
  pkt.app = AppHeader{.flow = cfg_.flow, .seq = seq_++, .sent_at = node_.sim().now()};
  node_.originate(std::move(pkt));
  node_.sim().schedule(cfg_.interval, [this] { send_one(); });
}

}  // namespace manet
