#include "app/cbr.hpp"

#include "core/assert.hpp"
#include "transport/transport.hpp"

namespace manet {

CbrSource::CbrSource(Node& node, const Config& cfg) : node_(node), cfg_(cfg) {
  MANET_EXPECTS(cfg.interval > SimTime::zero());
  MANET_EXPECTS(cfg.payload_bytes > 0);
}

void CbrSource::start() {
  node_.sim().schedule_at(cfg_.start, [this] { send_one(); });
}

void CbrSource::send_one() {
  if (node_.sim().now() > cfg_.stop) return;
  if (ReliableTransport* tp = node_.transport(); tp != nullptr) {
    // Closed loop: a full transport send buffer refuses the offer, the app
    // keeps its sequence number and re-offers the same packet next tick.
    if (tp->try_send(cfg_.flow, cfg_.dst, cfg_.payload_bytes, seq_)) ++seq_;
  } else {
    Packet pkt;
    pkt.ip.dst = cfg_.dst;
    pkt.payload_bytes = cfg_.payload_bytes;
    pkt.app = AppHeader{.flow = cfg_.flow, .seq = seq_++, .sent_at = node_.sim().now()};
    node_.originate(std::move(pkt));
  }
  node_.sim().schedule(cfg_.interval, [this] { send_one(); });
}

}  // namespace manet
