// Constant-bit-rate traffic source over UDP — the workload of the whole
// paper family (512-byte packets at a fixed rate between randomly chosen
// source/destination pairs). The matching sink lives in the Node, which
// terminates data packets addressed to it and feeds the StatsCollector.
#pragma once

#include "core/time.hpp"
#include "net/node.hpp"

namespace manet {

class CbrSource {
 public:
  struct Config {
    std::uint32_t flow = 0;
    NodeId dst = 0;
    std::size_t payload_bytes = 512;
    SimTime interval = milliseconds(250);  // 4 packets/s
    SimTime start = seconds(10);
    SimTime stop = SimTime::max();
  };

  CbrSource(Node& node, const Config& cfg);

  /// Schedule the first packet; call once before the simulation runs.
  void start();

  [[nodiscard]] std::uint32_t packets_sent() const { return seq_; }

 private:
  void send_one();

  Node& node_;
  Config cfg_;
  std::uint32_t seq_ = 0;
};

}  // namespace manet
