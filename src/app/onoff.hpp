// Exponential ON/OFF (bursty VBR) traffic source.
//
// During an ON period (exponential mean `burst_mean`) the source sends at
// the CBR rate; then it idles for an exponential OFF period and repeats.
// Bursty traffic stresses reactive protocols differently from smooth CBR:
// routes go stale between bursts and each new burst pays a fresh discovery —
// the effect the offered-load figures only hint at. Used by the
// abl_traffic bench as an extension beyond the paper's CBR-only workload.
#pragma once

#include "core/rng.hpp"
#include "core/time.hpp"
#include "net/node.hpp"

namespace manet {

class OnOffSource {
 public:
  struct Config {
    std::uint32_t flow = 0;
    NodeId dst = 0;
    std::size_t payload_bytes = 512;
    SimTime interval = milliseconds(250);  ///< packet spacing while ON
    SimTime burst_mean = seconds(5);       ///< mean ON duration
    SimTime idle_mean = seconds(5);        ///< mean OFF duration
    SimTime start = seconds(10);
    SimTime stop = SimTime::max();
  };

  OnOffSource(Node& node, const Config& cfg, RngStream rng);

  /// Schedule the first burst; call once before the simulation runs.
  void start();

  [[nodiscard]] std::uint32_t packets_sent() const { return seq_; }
  [[nodiscard]] bool sending() const { return on_; }

 private:
  void begin_burst();
  void send_one();

  Node& node_;
  Config cfg_;
  RngStream rng_;
  std::uint32_t seq_ = 0;
  bool on_ = false;
  SimTime burst_end_{};
};

}  // namespace manet
