#include "core/rng.hpp"

#include <cmath>
#include <numbers>

#include "core/assert.hpp"

namespace manet {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void RngStream::seed_from(std::uint64_t seed) {
  // xoshiro's authors recommend seeding the state with splitmix64 output;
  // this also guarantees the state is never all-zero.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

RngStream::RngStream(std::uint64_t seed) { seed_from(seed); }

RngStream::RngStream(std::uint64_t root_seed, std::string_view name, std::uint64_t index) {
  std::uint64_t mix = root_seed ^ rotl(fnv1a(name), 17) ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  seed_from(splitmix64(mix));
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  MANET_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  MANET_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r > limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double RngStream::exponential(double mean) {
  MANET_EXPECTS(mean > 0.0);
  // -mean * ln(1-U); 1-U avoids log(0).
  return -mean * std::log1p(-uniform());
}

double RngStream::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform();  // (0,1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace manet
