#include "core/log.hpp"

namespace manet {

// manet-lint: allow-global-state - process-wide log gate, written once at startup before any event runs; handlers only read it
LogLevel Log::level_ = LogLevel::kNone;

void Log::write(LogLevel lvl, SimTime now, const char* tag, const std::string& msg) {
  const char* prefix = "?";
  switch (lvl) {
    case LogLevel::kError: prefix = "E"; break;
    case LogLevel::kWarn: prefix = "W"; break;
    case LogLevel::kInfo: prefix = "I"; break;
    case LogLevel::kDebug: prefix = "D"; break;
    case LogLevel::kNone: break;
  }
  std::fprintf(stderr, "%s [%12.6fs] %s: %s\n", prefix, now.sec(), tag, msg.c_str());
}

}  // namespace manet
