// Lightweight contract checks in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Enabled in all build types: simulation bugs must fail
// loudly, not corrupt statistics silently. The cost is negligible next to the
// event-queue work.
//
// Two tiers:
//   * MANET_EXPECTS / MANET_ENSURES / MANET_ASSERT — bare condition checks.
//   * MANET_EXPECTS_MSG / MANET_ENSURES_MSG / MANET_ASSERT_MSG — same, plus a
//     printf-style context line. Protocol invariants use these to report the
//     node id, sim-time, and the violated values, so a post-mortem does not
//     start from a bare expression string. Example:
//
//       MANET_ASSERT_MSG(seq_newer(new_seq, old_seq),
//                        "node %u t=%lldns dst=%u: dest_seq moved backwards "
//                        "%u -> %u", node, now_ns, dst, old_seq, new_seq);
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace manet::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr, const char* file,
                                          int line) {
  std::fprintf(stderr, "manetsim: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 5, 6)))
#endif
[[noreturn]] inline void
contract_failure_msg(const char* kind, const char* expr, const char* file, int line,
                     const char* fmt, ...) {
  std::fprintf(stderr, "manetsim: %s violated: (%s) at %s:%d\n  context: ", kind, expr, file,
               line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace manet::detail

#define MANET_EXPECTS(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define MANET_ENSURES(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure("postcondition", #cond, __FILE__, __LINE__))

#define MANET_ASSERT(cond)                                                         \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure("invariant", #cond, __FILE__, __LINE__))

#define MANET_EXPECTS_MSG(cond, ...)                                               \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure_msg("precondition", #cond, __FILE__, \
                                                  __LINE__, __VA_ARGS__))

#define MANET_ENSURES_MSG(cond, ...)                                                \
  ((cond) ? static_cast<void>(0)                                                    \
          : ::manet::detail::contract_failure_msg("postcondition", #cond, __FILE__, \
                                                  __LINE__, __VA_ARGS__))

#define MANET_ASSERT_MSG(cond, ...)                                             \
  ((cond) ? static_cast<void>(0)                                                \
          : ::manet::detail::contract_failure_msg("invariant", #cond, __FILE__, \
                                                  __LINE__, __VA_ARGS__))
