// Lightweight contract checks in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Enabled in all build types: simulation bugs must fail
// loudly, not corrupt statistics silently. The cost is negligible next to the
// event-queue work.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace manet::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr, const char* file,
                                          int line) {
  std::fprintf(stderr, "manetsim: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace manet::detail

#define MANET_EXPECTS(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define MANET_ENSURES(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure("postcondition", #cond, __FILE__, __LINE__))

#define MANET_ASSERT(cond)                                                         \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::manet::detail::contract_failure("invariant", #cond, __FILE__, __LINE__))
