// Simulation time.
//
// Time is kept as a 64-bit signed count of nanoseconds since the start of the
// simulation. Integer time keeps the event queue exactly ordered — there is
// no floating-point drift when summing many small MAC-layer intervals — and
// 2^63 ns is ~292 years of simulated time, far beyond any scenario here.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace manet {

/// A point in simulated time or a duration, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  /// Number of nanoseconds (may be negative for differences).
  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  /// Value converted to microseconds as a double.
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  /// Value converted to milliseconds as a double.
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  /// Value converted to seconds as a double.
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ns_ * k}; }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ns_ / b.ns_; }

  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }

 private:
  std::int64_t ns_ = 0;
};

/// Construct a SimTime from nanoseconds.
[[nodiscard]] constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
/// Construct a SimTime from microseconds.
[[nodiscard]] constexpr SimTime microseconds(std::int64_t v) { return SimTime{v * 1'000}; }
/// Construct a SimTime from milliseconds.
[[nodiscard]] constexpr SimTime milliseconds(std::int64_t v) { return SimTime{v * 1'000'000}; }
/// Construct a SimTime from whole seconds.
[[nodiscard]] constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000'000}; }
/// Construct a SimTime from fractional seconds (rounded to nearest ns).
[[nodiscard]] constexpr SimTime seconds_f(double v) {
  return SimTime{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
}

/// Human-readable rendering, e.g. "12.345678ms".
[[nodiscard]] inline std::string to_string(SimTime t) {
  const double s = t.sec();
  if (s >= 1.0 || s <= -1.0) return std::to_string(s) + "s";
  const double ms = t.ms();
  if (ms >= 1.0 || ms <= -1.0) return std::to_string(ms) + "ms";
  return std::to_string(t.us()) + "us";
}

}  // namespace manet
