#include "core/event_queue.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  MANET_EXPECTS(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  if (pending_.size() > peak_size_) peak_size_ = pending_.size();
  return id;
}

void EventQueue::cancel(EventId id) {
  pending_.erase(id);
  // The heap node is discarded lazily when it reaches the top.
}

void EventQueue::discard_cancelled_top() {
  while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  MANET_EXPECTS(!empty());
  discard_cancelled_top();
  MANET_ASSERT(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  MANET_EXPECTS(!empty());
  discard_cancelled_top();
  MANET_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return Popped{e.time, e.id, std::move(e.cb)};
}

void EventQueue::clear() {
  heap_.clear();
  pending_.clear();
}

}  // namespace manet
