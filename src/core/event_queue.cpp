#include "core/event_queue.hpp"

#include "core/assert.hpp"

namespace manet {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

EventId EventQueue::schedule(SimTime at, Callback cb) {
  return schedule_seq(at, next_seq_++, std::move(cb));
}

EventId EventQueue::schedule_seq(SimTime at, std::uint64_t seq, Callback cb) {
  MANET_EXPECTS(cb != nullptr);

  std::uint32_t slot = 0;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    if (slots_.size() == slots_.capacity()) {
      // Growing the slot array move-relocates every stored callback; double
      // aggressively so that cost stays rare even under 100k+ live events.
      slots_.reserve(slots_.empty() ? 64 : slots_.size() * 2);
      heap_.reserve(slots_.capacity());
    }
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // generations start at 1, so make_id(0, gen) != kInvalidEventId
  s.live = true;
  s.cb = std::move(cb);

  // Keep the internal counter ahead of any caller-supplied sequence so mixed
  // schedule()/schedule_seq() use can never issue a duplicate tie-break.
  if (seq >= next_seq_) next_seq_ = seq + 1;

  heap_.push_back(Entry{at, seq, slot, s.gen});
  sift_up(heap_.size() - 1);

  ++live_;
  if (live_ > peak_size_) peak_size_ = live_;
  return make_id(slot, s.gen);
}

void EventQueue::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.cb.reset();  // release captures now, not when the heap node surfaces
  free_.push_back(slot);
  --live_;
}

void EventQueue::cancel(EventId id) {
  if (!pending(id)) return;
  retire(slot_of(id));
  // The heap node is discarded lazily when it reaches the top.
}

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_heap_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::discard_cancelled_top() {
  while (!heap_.empty() && !entry_live(heap_.front())) pop_heap_top();
}

SimTime EventQueue::next_time() {
  MANET_EXPECTS(!empty());
  discard_cancelled_top();
  MANET_ASSERT(!heap_.empty());
  return heap_.front().time;
}

EventQueue::HeadKey EventQueue::next_key() {
  MANET_EXPECTS(!empty());
  discard_cancelled_top();
  MANET_ASSERT(!heap_.empty());
  return HeadKey{heap_.front().time, heap_.front().seq};
}

EventQueue::Popped EventQueue::pop() {
  MANET_EXPECTS(!empty());
  discard_cancelled_top();
  MANET_ASSERT(!heap_.empty());
  const Entry e = heap_.front();
  pop_heap_top();

  Slot& s = slots_[e.slot];
  Popped out{e.time, make_id(e.slot, e.gen), std::move(s.cb)};
  s.live = false;
  s.cb.reset();
  free_.push_back(e.slot);
  --live_;
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  free_.clear();
  // Keep the slots (and their generations) so ids issued before clear() can
  // never be confused with later tenants; every slot goes back on the free
  // list.
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    slots_[i].live = false;
    slots_[i].cb.reset();
    free_.push_back(i);
  }
  live_ = 0;
  // A cleared queue starts a fresh profiling epoch: without this, the second
  // replication in one process reports max(previous runs) instead of its own
  // high-water mark.
  peak_size_ = 0;
}

}  // namespace manet
