// The simulation executive: owns the clock and the event queue(s).
//
// One Simulator instance per simulation run. Components hold a reference and
// use schedule()/cancel()/now().
//
// Default mode (1 shard) is the classic single-threaded executive: one event
// queue, events popped in (time, insertion-seq) order.
//
// Sharded mode (configure_shards(K), K in [2, kMaxShards]) is the
// conservative-parallel prototype: every node belongs to a spatial shard,
// each shard has its own event queue, and events scheduled from one shard
// onto another travel through per-(src, dst) CrossShardQueue FIFOs carrying
// their (time, seq) keys. Sequence numbers come from ONE global counter, so
// the merged execution order — pop the shard whose head (time, seq) is
// globally smallest — is byte-identical to the single-queue order whatever
// the shard count. The executive advances in lookahead-bounded windows
// [W, W + lookahead): `lookahead` is the minimum latency for an event in one
// shard to cause a *new* event in another (PHY propagation floor + MAC SIFS
// turnaround, see PhyConfig::lookahead), which bounds inter-shard clock skew
// inside a window. In this prototype callbacks still execute on the
// coordinating thread in merged order (shared channel/stats state is not yet
// partitioned); shard-local phases — per-node mobility integration — run
// concurrently on the ShardExecutor. See DESIGN.md "Parallel kernel".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/event_queue.hpp"
#include "core/shard.hpp"
#include "core/time.hpp"

namespace manet {

class Simulator {
 public:
  Simulator() {
    queues_.resize(1);
    events_per_shard_.resize(1);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Switch to sharded mode with `shards` event queues and a worker pool.
  /// Must be called before anything is scheduled; shards is clamped to
  /// [1, kMaxShards] by the caller (see resolve_shard_count).
  void configure_shards(unsigned shards);

  /// Number of shards (1 unless configure_shards was called).
  [[nodiscard]] unsigned shards() const { return static_cast<unsigned>(queues_.size()); }

  /// Shard whose event is currently executing (or the build context shard).
  [[nodiscard]] std::uint32_t current_shard() const { return current_shard_; }

  /// Set the scheduling context outside of event execution (scenario build
  /// wires each node's initial timers under that node's shard).
  void set_context_shard(std::uint32_t shard);

  /// The conservative lookahead: minimum sim-time for an event in one shard
  /// to cause a new event in another. Bounds the execution window.
  void set_lookahead(SimTime lookahead);
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// The shard worker pool (nullptr in single-shard mode). Channel uses it
  /// for the per-node mobility refresh fan-out.
  [[nodiscard]] ShardExecutor* executor() { return exec_.get(); }

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` to run `delay` from now on the current context shard.
  /// Negative delays are a contract violation — the past is immutable.
  EventId schedule(SimTime delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(SimTime at, EventQueue::Callback cb);

  /// Schedule onto an explicit shard (cross-shard deliveries; the channel
  /// targets the receiving node's shard). Routes through the deterministic
  /// per-(src, dst) handoff FIFO when the target differs from the context.
  EventId schedule_on(std::uint32_t shard, SimTime delay, EventQueue::Callback cb);

  /// Cancel a scheduled event (no-op if already run/cancelled).
  void cancel(EventId id);

  /// True iff the event is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Run until the queues drain or simulated time would exceed `until`.
  /// Events exactly at `until` are executed. Returns the number of events run.
  std::uint64_t run_until(SimTime until);

  /// Run until the queues drain completely.
  std::uint64_t run();

  /// Request that the run loop stop after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// Events executed on one shard (load-balance accounting; merged into
  /// ScenarioResult::events_per_shard).
  [[nodiscard]] std::uint64_t events_executed_on(unsigned shard) const;

  /// Events that crossed a shard boundary through a handoff FIFO.
  [[nodiscard]] std::uint64_t cross_shard_events() const { return cross_shard_events_; }

  /// Number of pending events across all shards.
  [[nodiscard]] std::size_t queue_size() const { return live_; }

  /// High-water mark of pending events over the run (profiling).
  [[nodiscard]] std::size_t peak_queue_size() const { return peak_; }

 private:
  // EventIds reserve their top 3 bits for the owning shard so cancel() and
  // pending() can route to the right queue; with one shard the tag is zero
  // and ids are bit-identical to the untagged form.
  static constexpr unsigned kShardShift = 61;
  static constexpr EventId shard_of_id(EventId id) { return id >> kShardShift; }
  static constexpr EventId untag(EventId id) { return id & ((EventId{1} << kShardShift) - 1); }
  static constexpr EventId tag(std::uint32_t shard, EventId id) {
    return (static_cast<EventId>(shard) << kShardShift) | id;
  }

  EventId schedule_impl(std::uint32_t shard, SimTime at, EventQueue::Callback cb);
  std::uint64_t run_until_single(SimTime until);
  std::uint64_t run_until_sharded(SimTime until);
  /// Shard holding the globally smallest (time, seq) head, or -1 when all
  /// queues are empty.
  [[nodiscard]] int earliest_shard();

  std::vector<EventQueue> queues_;          // one per shard
  std::vector<CrossShardQueue> xq_;         // K*K handoff FIFOs, row-major (src, dst)
  std::unique_ptr<ShardExecutor> exec_;     // workers, sharded mode only
  std::vector<std::uint64_t> events_per_shard_;
  SimTime lookahead_ = microseconds(10);
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t cross_shard_events_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint32_t current_shard_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
};

/// RAII scheduling-context guard: events scheduled while the scope is alive
/// land on `shard`. Used by the scenario builder to wire each node's initial
/// timers into its own shard.
class ShardScope {
 public:
  ShardScope(Simulator& sim, std::uint32_t shard) : sim_(sim), prev_(sim.current_shard()) {
    sim_.set_context_shard(shard);
  }
  ~ShardScope() { sim_.set_context_shard(prev_); }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  Simulator& sim_;
  std::uint32_t prev_;
};

}  // namespace manet
