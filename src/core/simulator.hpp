// The simulation executive: owns the clock and the event queue.
//
// One Simulator instance per simulation run. Components hold a reference and
// use schedule()/cancel()/now(). The executive is strictly single-threaded;
// parallelism in manetsim lives at the replication level (ExperimentRunner
// runs independent Simulators on worker threads).
#pragma once

#include <cstdint>

#include "core/event_queue.hpp"
#include "core/time.hpp"

namespace manet {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` to run `delay` from now. Negative delays are a contract
  /// violation — the past is immutable.
  EventId schedule(SimTime delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId schedule_at(SimTime at, EventQueue::Callback cb);

  /// Cancel a scheduled event (no-op if already run/cancelled).
  void cancel(EventId id) { queue_.cancel(id); }

  /// True iff the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Run until the queue drains or simulated time would exceed `until`.
  /// Events exactly at `until` are executed. Returns the number of events run.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue drains completely.
  std::uint64_t run();

  /// Request that the run loop stop after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

  /// High-water mark of pending events over the run (profiling).
  [[nodiscard]] std::size_t peak_queue_size() const { return queue_.peak_size(); }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace manet
