#include "core/simulator.hpp"

#include "core/assert.hpp"

namespace manet {

EventId Simulator::schedule(SimTime delay, EventQueue::Callback cb) {
  MANET_EXPECTS(delay >= SimTime::zero());
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  MANET_EXPECTS(at >= now_);
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.next_time() > until) break;
    auto ev = queue_.pop();
    MANET_ASSERT(ev.time >= now_);
    now_ = ev.time;
    ev.cb();
    ++ran;
    ++events_executed_;
  }
  // Advance the clock to the horizon even if the queue drained early, so a
  // subsequent run_until() continues from a consistent point.
  if (!stopped_ && (queue_.empty() || queue_.next_time() > until)) {
    if (until > now_ && until != SimTime::max()) now_ = until;
  }
  return ran;
}

std::uint64_t Simulator::run() { return run_until(SimTime::max()); }

}  // namespace manet
