#include "core/simulator.hpp"

#include "core/assert.hpp"
#include "core/shard_sentinel.hpp"

namespace manet {

void Simulator::configure_shards(unsigned shards) {
  MANET_EXPECTS_MSG(shards >= 1 && shards <= kMaxShards, "configure_shards(%u): want 1..%u", shards,
                    kMaxShards);
  MANET_EXPECTS_MSG(live_ == 0 && events_executed_ == 0 && now_ == SimTime::zero(),
                    "configure_shards(%u) after the simulation started", shards);
  queues_.clear();
  queues_.resize(shards);
  xq_.clear();
  xq_.resize(static_cast<std::size_t>(shards) * shards);
  events_per_shard_.assign(shards, 0);
  exec_ = shards > 1 ? std::make_unique<ShardExecutor>(shards) : nullptr;
  current_shard_ = 0;
}

void Simulator::set_context_shard(std::uint32_t shard) {
  MANET_EXPECTS_MSG(shard < shards(), "context shard %u out of range (shards=%u)", shard, shards());
  current_shard_ = shard;
}

void Simulator::set_lookahead(SimTime lookahead) {
  MANET_EXPECTS_MSG(lookahead > SimTime::zero(), "lookahead must be positive, got %lldns",
                    static_cast<long long>(lookahead.ns()));
  lookahead_ = lookahead;
}

EventId Simulator::schedule_impl(std::uint32_t shard, SimTime at, EventQueue::Callback cb) {
  const EventId raw = queues_[shard].schedule_seq(at, next_seq_++, std::move(cb));
  // The shard tag lives in the top 3 bits; the queue's slot index (bits
  // 32..63 of the raw id) must stay below them. 2^29 slots is far above any
  // plausible live-event count, so this is a corruption tripwire.
  MANET_ASSERT_MSG(untag(raw) == raw, "event slot index overflows into the shard tag bits");
  ++live_;
  if (live_ > peak_) peak_ = live_;
  return tag(shard, raw);
}

EventId Simulator::schedule(SimTime delay, EventQueue::Callback cb) {
  MANET_EXPECTS_MSG(delay >= SimTime::zero(), "t=%lldns: negative delay %lldns — the past is immutable",
                    static_cast<long long>(now_.ns()), static_cast<long long>(delay.ns()));
  return schedule_impl(current_shard_, now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  MANET_EXPECTS_MSG(at >= now_, "schedule_at(%lldns) is in the past (now=%lldns)",
                    static_cast<long long>(at.ns()), static_cast<long long>(now_.ns()));
  return schedule_impl(current_shard_, at, std::move(cb));
}

EventId Simulator::schedule_on(std::uint32_t shard, SimTime delay, EventQueue::Callback cb) {
  MANET_EXPECTS_MSG(shard < shards(), "schedule_on(%u) out of range (shards=%u)", shard, shards());
  MANET_EXPECTS_MSG(delay >= SimTime::zero(), "t=%lldns: negative delay %lldns — the past is immutable",
                    static_cast<long long>(now_.ns()), static_cast<long long>(delay.ns()));
  const SimTime at = now_ + delay;
  if (shard == current_shard_) return schedule_impl(shard, at, std::move(cb));

  // Cross-shard handoff: the event carries its globally allocated (time, seq)
  // key through the per-(src, dst) FIFO, so the destination queue's head key
  // slots into the global merge exactly where a single queue would have put
  // it. The coordinator dispatches all callbacks serially in this prototype,
  // so the handoff drains immediately; a threaded dispatch would drain at the
  // next window barrier instead, and the FIFO (never reordering equal
  // timestamps) is what keeps that future drain deterministic.
  ++cross_shard_events_;
  CrossShardQueue& q = xq_[current_shard_ * shards() + shard];
  q.push(at, next_seq_++, std::move(cb));
  CrossShardQueue::Entry e = q.pop();
  const EventId raw = queues_[shard].schedule_seq(e.at, e.seq, std::move(e.cb));
  MANET_ASSERT_MSG(untag(raw) == raw, "event slot index overflows into the shard tag bits");
  ++live_;
  if (live_ > peak_) peak_ = live_;
  return tag(shard, raw);
}

void Simulator::cancel(EventId id) {
  const EventId s = shard_of_id(id);
  if (s >= shards()) return;  // stale/corrupt handle; harmless like EventQueue::cancel
  EventQueue& q = queues_[s];
  const EventId raw = untag(id);
  if (!q.pending(raw)) return;
  q.cancel(raw);
  --live_;
}

bool Simulator::pending(EventId id) const {
  const EventId s = shard_of_id(id);
  return s < shards() && queues_[s].pending(untag(id));
}

std::uint64_t Simulator::events_executed_on(unsigned shard) const {
  MANET_EXPECTS_MSG(shard < shards(), "shard %u out of range (shards=%u)", shard, shards());
  return events_per_shard_[shard];
}

std::uint64_t Simulator::run_until(SimTime until) {
  stopped_ = false;
  return shards() == 1 ? run_until_single(until) : run_until_sharded(until);
}

std::uint64_t Simulator::run() { return run_until(SimTime::max()); }

// The classic single-queue loop, kept branch-for-branch: this is the
// benchmark-gated hot path and the default mode.
std::uint64_t Simulator::run_until_single(SimTime until) {
  EventQueue& queue = queues_[0];
  std::uint64_t ran = 0;
  while (!queue.empty() && !stopped_) {
    if (queue.next_time() > until) break;
    auto ev = queue.pop();
    // Executive invariant: simulated time never moves backwards.
    MANET_ASSERT_MSG(ev.time >= now_, "event-queue time moved backwards: popped t=%lldns at now=%lldns",
                     static_cast<long long>(ev.time.ns()), static_cast<long long>(now_.ns()));
    now_ = ev.time;
    --live_;
    ev.cb();
    ++ran;
    ++events_executed_;
  }
  events_per_shard_[0] += ran;
  // Advance the clock to the horizon even if the queue drained early, so a
  // subsequent run_until() continues from a consistent point.
  if (!stopped_ && (queue.empty() || queue.next_time() > until)) {
    if (until > now_ && until != SimTime::max()) now_ = until;
  }
  return ran;
}

int Simulator::earliest_shard() {
  int best = -1;
  EventQueue::HeadKey best_key{};
  for (unsigned s = 0; s < queues_.size(); ++s) {
    if (queues_[s].empty()) continue;
    const EventQueue::HeadKey key = queues_[s].next_key();
    if (best < 0 || key < best_key) {
      best = static_cast<int>(s);
      best_key = key;
    }
  }
  return best;
}

// Conservative windowed merge. The outer loop opens a window at the globally
// earliest head and closes it `lookahead` later; the inner loop pops the
// globally smallest (time, seq) head until the window is exhausted. Because
// every event — local or handed off — carries a sequence number from the one
// global counter, the merged order is exactly the single-queue order, so any
// shard count reproduces byte-identical results. The window structure is
// what a threaded dispatch would synchronise on; with serialized dispatch it
// only sets the cadence of the head re-scan.
std::uint64_t Simulator::run_until_sharded(SimTime until) {
  std::uint64_t ran = 0;
  while (!stopped_) {
    const int first = earliest_shard();
    if (first < 0) break;  // every queue drained
    const SimTime wstart = queues_[first].next_time();
    if (wstart > until) break;
    // horizon = min(wstart + lookahead, until), written overflow-safe for
    // until == SimTime::max().
    SimTime horizon = until;
    if (until - wstart > lookahead_) horizon = wstart + lookahead_;

    while (!stopped_) {
      const int s = earliest_shard();
      if (s < 0) break;
      if (queues_[s].next_key().time > horizon) break;
      auto ev = queues_[s].pop();
      MANET_ASSERT_MSG(ev.time >= now_, "event-queue time moved backwards: popped t=%lldns at now=%lldns",
                       static_cast<long long>(ev.time.ns()), static_cast<long long>(now_.ns()));
      now_ = ev.time;
      current_shard_ = static_cast<std::uint32_t>(s);
      --live_;
      {
        // Debug builds: every state touch inside this callback must belong
        // to shard s (see core/shard_sentinel.hpp).
        MANET_SENTINEL_SCOPE(static_cast<std::uint32_t>(s), now_);
        ev.cb();
      }
      ++ran;
      ++events_executed_;
      ++events_per_shard_[static_cast<unsigned>(s)];
    }
    current_shard_ = 0;
  }
  current_shard_ = 0;
  if (!stopped_) {
    const int s = earliest_shard();
    if (s < 0 || queues_[s].next_time() > until) {
      if (until > now_ && until != SimTime::max()) now_ = until;
    }
  }
  return ran;
}

}  // namespace manet
