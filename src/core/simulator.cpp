#include "core/simulator.hpp"

#include "core/assert.hpp"

namespace manet {

EventId Simulator::schedule(SimTime delay, EventQueue::Callback cb) {
  MANET_EXPECTS_MSG(delay >= SimTime::zero(), "t=%lldns: negative delay %lldns — the past is immutable",
                    static_cast<long long>(now_.ns()), static_cast<long long>(delay.ns()));
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  MANET_EXPECTS_MSG(at >= now_, "schedule_at(%lldns) is in the past (now=%lldns)",
                    static_cast<long long>(at.ns()), static_cast<long long>(now_.ns()));
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.next_time() > until) break;
    auto ev = queue_.pop();
    // Executive invariant: simulated time never moves backwards.
    MANET_ASSERT_MSG(ev.time >= now_, "event-queue time moved backwards: popped t=%lldns at now=%lldns",
                     static_cast<long long>(ev.time.ns()), static_cast<long long>(now_.ns()));
    now_ = ev.time;
    ev.cb();
    ++ran;
    ++events_executed_;
  }
  // Advance the clock to the horizon even if the queue drained early, so a
  // subsequent run_until() continues from a consistent point.
  if (!stopped_ && (queue_.empty() || queue_.next_time() > until)) {
    if (until > now_ && until != SimTime::max()) now_ = until;
  }
  return ran;
}

std::uint64_t Simulator::run() { return run_until(SimTime::max()); }

}  // namespace manet
