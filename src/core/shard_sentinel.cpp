#include "core/shard_sentinel.hpp"

#if MANET_SHARD_SENTINEL

#include <cstdio>
#include <cstdlib>

#include "core/shard.hpp"

namespace manet::sentinel {

namespace {

struct TlState {
  const ShardMap* map = nullptr;  ///< owning-shard table; null = unbound
  bool armed = false;
  bool in_scope = false;          ///< inside a dispatched callback
  std::uint32_t accessing = 0;    ///< shard the current callback runs as
  SimTime now{};                  ///< sim-time of the current callback
  int exempt_depth = 0;
};

// manet-lint: allow-global-state - the sentinel's own per-thread bookkeeping; never read by simulation logic
thread_local TlState g_state;

}  // namespace

Binding::Binding(const ShardMap& map, bool armed)
    : prev_map_(g_state.map), prev_armed_(g_state.armed) {
  g_state.map = &map;
  g_state.armed = armed;
}

Binding::~Binding() {
  g_state.map = prev_map_;
  g_state.armed = prev_armed_;
}

AccessScope::AccessScope(std::uint32_t shard, SimTime now)
    : prev_shard_(g_state.accessing), prev_now_(g_state.now), prev_in_scope_(g_state.in_scope) {
  g_state.accessing = shard;
  g_state.now = now;
  g_state.in_scope = true;
}

AccessScope::~AccessScope() {
  g_state.accessing = prev_shard_;
  g_state.now = prev_now_;
  g_state.in_scope = prev_in_scope_;
}

ExemptScope::ExemptScope(const char* why) {
  static_cast<void>(why);
  ++g_state.exempt_depth;
}

ExemptScope::~ExemptScope() { --g_state.exempt_depth; }

void check_access(std::uint32_t node, const char* what) {
  const TlState& st = g_state;
  if (!st.armed || !st.in_scope || st.exempt_depth > 0 || st.map == nullptr) return;
  const std::uint32_t owner = st.map->shard_of(node);
  if (owner == st.accessing) return;
  // Deterministic by construction: the abort happens at the same (sim-time,
  // node) for a given (scenario, seed, shard-count) on every run — this
  // message IS the parallel-dispatch worklist entry.
  std::fprintf(stderr,
               "manetsim: shard sentinel: cross-shard access in %s: t=%lldns node=%u "
               "owner-shard=%u accessing-shard=%u\n",
               what, static_cast<long long>(st.now.ns()), node, owner, st.accessing);
  std::abort();
}

}  // namespace manet::sentinel

#endif  // MANET_SHARD_SENTINEL
