// The event queue at the heart of the discrete-event kernel.
//
// A binary min-heap ordered by (time, insertion sequence). Ties in time are
// broken by insertion order so simulations are deterministic regardless of
// heap internals. Cancellation is lazy: the queue tracks the set of pending
// ids; a cancelled entry simply leaves the set and its heap node is discarded
// when it surfaces. cancel() is O(1); pop() is O(log n) amortized. The MAC
// layer cancels timers constantly, so this path matters.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/time.hpp"

namespace manet {

/// Handle to a scheduled event; used to cancel it. Ids are never reused.
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Cancel a previously scheduled event. Cancelling an already-executed,
  /// already-cancelled, or invalid id is a harmless no-op.
  void cancel(EventId id);

  /// True iff `id` is scheduled and not yet executed or cancelled.
  [[nodiscard]] bool pending(EventId id) const { return pending_.contains(id); }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// High-water mark of live events over the queue's lifetime (survives
  /// clear()). Profiling hook: sweep artifacts report it per replication.
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Remove and return the earliest live event. Precondition: !empty().
  struct Popped {
    SimTime time;
    EventId id;
    Callback cb;
  };
  Popped pop();

  /// Drop everything (used when tearing down a simulation early).
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order; tie-break for determinism
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void discard_cancelled_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
  std::size_t peak_size_ = 0;
};

}  // namespace manet
