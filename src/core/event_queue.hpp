// The event queue at the heart of the discrete-event kernel.
//
// A 4-ary min-heap ordered by (time, insertion sequence). Ties in time are
// broken by insertion order so simulations are deterministic regardless of
// heap internals. Heap nodes are 24-byte PODs; callbacks live in a slot
// array addressed by EventId, so sifting never moves a closure. EventIds are
// generation-stamped slot handles: schedule/cancel/pending are pure array
// indexing — no hashing, no per-event allocation (the MAC layer cancels
// timers constantly, so this path is the kernel's inner loop). Cancellation
// is lazy in the heap: a cancelled event's callback is destroyed eagerly,
// its heap node discarded when it surfaces. cancel() is O(1); pop() is
// O(log4 n) amortized.
#pragma once

#include <cstdint>
#include <vector>

#include "core/callback.hpp"
#include "core/time.hpp"

namespace manet {

/// Handle to a scheduled event; used to cancel it. Encodes (slot,
/// generation): slots are recycled, but the generation advances on every
/// reuse, so an id value is never issued twice.
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = EventCallback;

  /// Schedule `cb` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(SimTime at, Callback cb);

  /// Schedule with a caller-supplied tie-break sequence number. The sharded
  /// executive allocates sequence numbers from ONE global counter across all
  /// shard queues, so the merged pop order (time, seq) is identical to what a
  /// single queue would produce. Sequence numbers must be strictly
  /// increasing across calls on the same queue.
  EventId schedule_seq(SimTime at, std::uint64_t seq, Callback cb);

  /// Cancel a previously scheduled event. Cancelling an already-executed,
  /// already-cancelled, or invalid id is a harmless no-op.
  void cancel(EventId id);

  /// True iff `id` is scheduled and not yet executed or cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].live && slots_[slot].gen == gen_of(id);
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// High-water mark of live events since construction or the last clear().
  /// Profiling hook: sweep artifacts report it per replication. clear()
  /// resets it — back-to-back replications reusing one queue must each
  /// report their own high-water mark, not the max over all prior runs.
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Ordering key of the earliest live event: (time, tie-break sequence).
  /// The sharded executive compares head keys across shard queues to pick
  /// the globally next event. Precondition: !empty().
  struct HeadKey {
    SimTime time;
    std::uint64_t seq;

    friend constexpr bool operator==(HeadKey, HeadKey) = default;
    friend constexpr auto operator<=>(HeadKey, HeadKey) = default;
  };
  [[nodiscard]] HeadKey next_key();

  /// Remove and return the earliest live event. Precondition: !empty().
  struct Popped {
    SimTime time;
    EventId id;
    Callback cb;
  };
  Popped pop();

  /// Drop everything (used when tearing down a simulation early).
  void clear();

 private:
  /// Heap node: POD ordering key + the slot/generation of its callback.
  /// Cheap to move, so sift operations stay in one or two cache lines.
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order; tie-break for determinism
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Callback storage, reused across events. `gen` advances each time the
  /// slot is allocated, so stale EventIds can never match a later tenant.
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
    Callback cb;
  };

  static constexpr std::uint32_t slot_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }
  static constexpr std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id); }
  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// True iff this heap node still refers to a live event.
  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].live && slots_[e.slot].gen == e.gen;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_heap_top();
  void discard_cancelled_top();
  void retire(std::uint32_t slot);

  std::vector<Entry> heap_;   // 4-ary min-heap by (time, seq)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // retired slot indices, LIFO
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace manet
