// ShardSentinel — the dynamic half of the shard-safety checker.
//
// The static half (tools/manet_lint, rules MLNT011-014) proves structural
// properties of the source; this sentinel proves the runtime property the
// lint cannot: that during sharded dispatch no handler running on shard A
// touches state owned by a node striped onto shard B. Every guarded entry
// point (Node, WifiMac, Arp, Transceiver) calls MANET_SENTINEL_CHECK with
// the owning node's id; the executive wraps each dispatched callback in a
// MANET_SENTINEL_SCOPE carrying the shard it is running as. A mismatch
// aborts deterministically with (sim-time, node, owning-shard,
// accessing-shard) context — the exact worklist item a parallel-dispatch
// refactor must fix.
//
// Cost model: the sentinel is compiled in for Debug builds (and any build
// defining MANET_FORCE_SHARD_SENTINEL); in NDEBUG builds every macro
// expands to `static_cast<void>(0)` — zero code, zero data, goldens
// byte-identical.
//
// Threading: state is thread_local. SweepRunner executes whole scenarios on
// concurrent worker threads, so a process-global sentinel would cross-talk
// between replications; per-thread state also means ShardExecutor's mobility
// workers (which never run event callbacks) stay unarmed automatically.
//
// Serialized cross-shard actions that are *by design* outside shard
// confinement (today: fault injection crashing/restarting a node from the
// coordinator) wrap themselves in MANET_SENTINEL_EXEMPT with a rationale
// string, mirroring the lint's suppression-with-rationale discipline.
#pragma once

#include <cstdint>

#include "core/time.hpp"

#if defined(MANET_FORCE_SHARD_SENTINEL) || !defined(NDEBUG)
#define MANET_SHARD_SENTINEL 1
#else
#define MANET_SHARD_SENTINEL 0
#endif

namespace manet {

class ShardMap;

#if MANET_SHARD_SENTINEL

namespace sentinel {

/// Arm (or explicitly disarm) the sentinel for the current thread for the
/// lifetime of the binding. `armed == false` still scopes correctly but
/// checks nothing — used by single-shard runs so the hooks stay free.
class Binding {
 public:
  Binding(const ShardMap& map, bool armed);
  ~Binding();
  Binding(const Binding&) = delete;
  Binding& operator=(const Binding&) = delete;

 private:
  const ShardMap* prev_map_;
  bool prev_armed_;
};

/// The executive pushes one of these around every dispatched callback: "the
/// code below runs as `shard` at sim-time `now`".
class AccessScope {
 public:
  AccessScope(std::uint32_t shard, SimTime now);
  ~AccessScope();
  AccessScope(const AccessScope&) = delete;
  AccessScope& operator=(const AccessScope&) = delete;

 private:
  std::uint32_t prev_shard_;
  SimTime prev_now_;
  bool prev_in_scope_;
};

/// Marks a serialized, audited cross-shard action (fault injection). The
/// rationale string is kept for symmetry with lint suppressions; it is not
/// printed unless someone instruments this further.
class ExemptScope {
 public:
  explicit ExemptScope(const char* why);
  ~ExemptScope();
  ExemptScope(const ExemptScope&) = delete;
  ExemptScope& operator=(const ExemptScope&) = delete;
};

/// The assertion: abort unless `node` is owned by the shard the current
/// AccessScope says we are running as. No-op when unarmed, out of scope, or
/// inside an ExemptScope.
void check_access(std::uint32_t node, const char* what);

}  // namespace sentinel

#define MANET_SENTINEL_BIND(map, armed) \
  const ::manet::sentinel::Binding manet_sentinel_binding_((map), (armed))
#define MANET_SENTINEL_SCOPE(shard, now) \
  const ::manet::sentinel::AccessScope manet_sentinel_scope_((shard), (now))
#define MANET_SENTINEL_EXEMPT(why) const ::manet::sentinel::ExemptScope manet_sentinel_exempt_(why)
#define MANET_SENTINEL_CHECK(node, what) ::manet::sentinel::check_access((node), (what))

#else  // release: every hook vanishes, arguments unevaluated

#define MANET_SENTINEL_BIND(map, armed) static_cast<void>(0)
#define MANET_SENTINEL_SCOPE(shard, now) static_cast<void>(0)
#define MANET_SENTINEL_EXEMPT(why) static_cast<void>(0)
#define MANET_SENTINEL_CHECK(node, what) static_cast<void>(0)

#endif  // MANET_SHARD_SENTINEL

}  // namespace manet
