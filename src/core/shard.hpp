// Spatial sharding primitives for the conservative parallel kernel.
//
// Three pieces, all deterministic:
//
//   ShardMap        node id -> shard. Nodes are striped into contiguous
//                   column bands of the channel's GridIndex by their initial
//                   position, so a shard owns a vertical slice of the area
//                   and most radio traffic stays shard-local.
//
//   CrossShardQueue per-(src-shard, dst-shard) FIFO handoff for events one
//                   shard schedules onto another (channel deliveries across
//                   the stripe boundary). Entries carry their (time, seq)
//                   ordering key, so however late a queue is drained the
//                   merged event order stays a pure function of (scenario,
//                   seed). Ties at equal timestamps resolve by seq, which is
//                   FIFO order — the queue never reorders.
//
//   ShardExecutor   a fork-join pool of one worker per shard for phases that
//                   only touch shard-local state (per-node mobility
//                   integration). run(fn) executes fn(shard) for every shard
//                   concurrently and returns when all are done.
//
// The executive itself (core/simulator.hpp) dispatches event callbacks on
// the coordinating thread in merged (time, seq) order — see DESIGN.md
// "Parallel kernel" for what is and is not concurrent in this prototype.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/callback.hpp"
#include "core/time.hpp"
#include "geom/vec2.hpp"

namespace manet {

/// Hard cap on shards: EventIds reserve 3 bits for the owning shard.
inline constexpr unsigned kMaxShards = 8;

/// Resolve a configured shard count: 0 means "from the MANET_SHARDS
/// environment variable, default 1". Malformed or out-of-range values warn
/// on stderr and fall back to 1; anything above kMaxShards is clamped.
[[nodiscard]] unsigned resolve_shard_count(std::uint32_t configured);

/// Static spatial node -> shard assignment.
class ShardMap {
 public:
  /// Everything in shard 0 (the single-shard identity map).
  ShardMap() = default;

  /// Stripe `positions` (indexed by node id) into `shards` contiguous
  /// column bands of a GridIndex over `area` with cell edge `cell_m` (the
  /// channel uses its carrier-sense range). Deterministic: a pure function
  /// of the initial positions.
  [[nodiscard]] static ShardMap striped(const std::vector<Vec2>& positions, Area area,
                                        double cell_m, unsigned shards);

  [[nodiscard]] unsigned shards() const { return shards_; }
  [[nodiscard]] std::size_t size() const { return shard_of_.size(); }

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t node) const;

  /// Node ids owned by `shard`, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& nodes_of(unsigned shard) const;

 private:
  unsigned shards_ = 1;
  std::vector<std::uint32_t> shard_of_;               // by node id
  std::vector<std::vector<std::uint32_t>> members_;   // by shard, ascending ids
};

/// Deterministic FIFO handoff of events from one shard to another.
class CrossShardQueue {
 public:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  ///< global tie-break; FIFO order == seq order
    EventCallback cb;
  };

  CrossShardQueue() = default;
  // Move-only (entries hold move-only callbacks); the defaults must be
  // spelled out or vector::resize tries the implicitly-declared copy.
  CrossShardQueue(CrossShardQueue&&) noexcept = default;
  CrossShardQueue& operator=(CrossShardQueue&&) noexcept = default;
  CrossShardQueue(const CrossShardQueue&) = delete;
  CrossShardQueue& operator=(const CrossShardQueue&) = delete;

  void push(SimTime at, std::uint64_t seq, EventCallback cb) {
    q_.push_back(Entry{at, seq, std::move(cb)});
    ++total_pushed_;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  /// Lifetime count of handoffs (cross-shard traffic accounting).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

  /// Remove and return the oldest entry. Precondition: !empty().
  Entry pop();

 private:
  std::deque<Entry> q_;
  std::uint64_t total_pushed_ = 0;
};

/// Fork-join pool: one worker per shard, persistent threads, condition-
/// variable epoch barrier. `run(fn)` is a synchronous parallel region; the
/// callable must only touch state owned by its shard (plus disjoint output
/// slots). With one shard no threads are spawned and run() degenerates to a
/// direct call.
class ShardExecutor {
 public:
  explicit ShardExecutor(unsigned shards);
  ~ShardExecutor();
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] unsigned shards() const { return shards_; }

  /// Execute fn(shard) for shard in [0, shards) concurrently; returns when
  /// every invocation has finished. The calling thread runs shard 0.
  void run(const std::function<void(unsigned)>& fn);

 private:
  void worker(unsigned shard);

  unsigned shards_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* fn_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned done_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace manet
