// Deterministic random-number generation.
//
// Every stochastic component (mobility of node i, traffic of flow j, MAC
// backoff of node k, ...) draws from its own named stream, derived from the
// run's root seed with splitmix64 hashing. This gives two properties the
// experiment methodology depends on:
//   * bit-for-bit reproducibility from a single (seed, scenario) pair, and
//   * variance reduction: two protocols compared under the same seed see the
//     exact same node movement and traffic schedule, because those streams do
//     not depend on how often the protocol itself draws random numbers.
//
// The generator is xoshiro256** (Blackman & Vigna) — fast, tiny state, and
// statistically strong far beyond what packet simulation needs.
#pragma once

#include <cstdint>
#include <string_view>

namespace manet {

/// splitmix64 step; used for seeding and for hashing stream names.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over a string, for deriving stream ids from names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// An independent random stream (xoshiro256**).
class RngStream {
 public:
  /// Seed directly (all-zero state is remapped internally).
  explicit RngStream(std::uint64_t seed);

  /// Derive a child stream from a root seed plus a name and index, e.g.
  /// RngStream(root, "mobility", node_id).
  RngStream(std::uint64_t root_seed, std::string_view name, std::uint64_t index = 0);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  void seed_from(std::uint64_t seed);
  std::uint64_t s_[4];
};

}  // namespace manet
