// Minimal leveled logging with per-component tags.
//
// Logging is off by default (simulations are silent); tests and debugging
// sessions turn it on with Log::set_level(). Messages are formatted only when
// the level is enabled, so disabled logging costs one branch.
#pragma once

#include <cstdio>
#include <string>

#include "core/time.hpp"

namespace manet {

enum class LogLevel : int { kNone = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

class Log {
 public:
  static void set_level(LogLevel lvl) { level_ = lvl; }
  [[nodiscard]] static LogLevel level() { return level_; }
  [[nodiscard]] static bool enabled(LogLevel lvl) {
    return static_cast<int>(lvl) <= static_cast<int>(level_);
  }

  /// Print one log line: "[  12.345678s] tag: message".
  static void write(LogLevel lvl, SimTime now, const char* tag, const std::string& msg);

 private:
  // manet-lint: allow-global-state - set once at startup before any event runs; dispatch only reads it
  static LogLevel level_;
};

}  // namespace manet

#define MANET_LOG(lvl, sim, tag, msg)                                        \
  do {                                                                       \
    if (::manet::Log::enabled(lvl)) {                                        \
      ::manet::Log::write(lvl, (sim).now(), tag, msg);                       \
    }                                                                        \
  } while (0)

#define MANET_DEBUG(sim, tag, msg) MANET_LOG(::manet::LogLevel::kDebug, sim, tag, msg)
#define MANET_INFO(sim, tag, msg) MANET_LOG(::manet::LogLevel::kInfo, sim, tag, msg)
#define MANET_WARN(sim, tag, msg) MANET_LOG(::manet::LogLevel::kWarn, sim, tag, msg)
