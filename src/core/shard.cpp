#include "core/shard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/assert.hpp"
#include "geom/grid_index.hpp"

namespace manet {

unsigned resolve_shard_count(std::uint32_t configured) {
  long value = configured;
  if (configured == 0) {
    value = 1;
    if (const char* env = std::getenv("MANET_SHARDS"); env != nullptr && *env != '\0') {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end == env || *end != '\0' || parsed < 1) {
        std::fprintf(stderr, "manetsim: ignoring MANET_SHARDS=%s (want an integer >= 1)\n", env);
      } else {
        value = parsed;
      }
    }
  }
  if (value > static_cast<long>(kMaxShards)) {
    std::fprintf(stderr, "manetsim: clamping %ld shards to the maximum of %u\n", value,
                 kMaxShards);
    value = kMaxShards;
  }
  return static_cast<unsigned>(value);
}

ShardMap ShardMap::striped(const std::vector<Vec2>& positions, Area area, double cell_m,
                           unsigned shards) {
  MANET_EXPECTS(shards >= 1 && shards <= kMaxShards);
  ShardMap map;
  map.shards_ = shards;
  map.members_.resize(shards);
  map.shard_of_.reserve(positions.size());
  // Reuse the channel's spatial lattice, refined so every shard owns at
  // least one column: shard s gets columns [s * ncols / shards,
  // (s+1) * ncols / shards) of the columns positions can actually occupy.
  // Contiguous column bands keep radio neighbourhoods mostly shard-local,
  // and the assignment is a pure function of the initial (seeded) placement.
  const double cell = std::min(cell_m, area.width / shards);
  const GridIndex grid(area, cell);
  // ceil(width / cell) columns cover [0, width); the grid allocates one more
  // so the clamped right edge (x == width exactly) has a home — fold that
  // measure-zero sliver into the last real band instead of its own.
  const auto ncols =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(area.width / cell)));
  for (std::uint32_t id = 0; id < positions.size(); ++id) {
    const std::size_t col = std::min(grid.column_of(positions[id]), ncols - 1);
    const auto shard = static_cast<std::uint32_t>(col * shards / ncols);
    MANET_ASSERT(shard < shards);
    map.shard_of_.push_back(shard);
    map.members_[shard].push_back(id);
  }
  return map;
}

std::uint32_t ShardMap::shard_of(std::uint32_t node) const {
  if (shard_of_.empty()) return 0;  // identity map
  MANET_EXPECTS(node < shard_of_.size());
  return shard_of_[node];
}

const std::vector<std::uint32_t>& ShardMap::nodes_of(unsigned shard) const {
  MANET_EXPECTS(shard < shards_);
  static const std::vector<std::uint32_t> kEmpty;
  if (members_.empty()) return kEmpty;
  return members_[shard];
}

CrossShardQueue::Entry CrossShardQueue::pop() {
  MANET_EXPECTS(!q_.empty());
  Entry e = std::move(q_.front());
  q_.pop_front();
  return e;
}

ShardExecutor::ShardExecutor(unsigned shards) : shards_(shards) {
  MANET_EXPECTS(shards >= 1 && shards <= kMaxShards);
  threads_.reserve(shards_ > 0 ? shards_ - 1 : 0);
  for (unsigned s = 1; s < shards_; ++s) {
    threads_.emplace_back([this, s] { worker(s); });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardExecutor::run(const std::function<void(unsigned)>& fn) {
  if (shards_ == 1) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(m_);
    fn_ = &fn;
    done_ = 0;
    ++epoch_;
  }
  cv_start_.notify_all();
  fn(0);  // the coordinator is shard 0's worker
  std::unique_lock<std::mutex> lock(m_);
  cv_done_.wait(lock, [this] { return done_ == shards_ - 1; });
  fn_ = nullptr;
}

void ShardExecutor::worker(unsigned shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      fn = fn_;
    }
    (*fn)(shard);
    {
      const std::lock_guard<std::mutex> lock(m_);
      ++done_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace manet
