// EventCallback: the kernel's callable type.
//
// std::function heap-allocates captures beyond its (implementation-defined,
// often 16-byte) small buffer and drags in copyability machinery the event
// queue never uses. Every event the simulator schedules is a move-only
// closure of a handful of words ([this], [this, key], [rx, copy, airtime]),
// so the inner loop was paying one malloc/free per event. EventCallback is a
// move-only, small-buffer-optimized replacement: closures up to kInlineBytes
// live inside the object next to a single ops-table pointer (40 bytes
// total); larger ones (rare: setup lambdas with fat captures) fall back to
// the heap.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace manet {

class EventCallback {
 public:
  /// Inline capture budget. 32 bytes covers every closure the stack
  /// schedules today (largest: the channel's [rx, copy, airtime] — a raw
  /// pointer + shared_ptr + SimTime = 32).
  static constexpr std::size_t kInlineBytes = 32;

  EventCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor) drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(static_cast<void*>(buf_), &heap, sizeof heap);
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventCallback(EventCallback&& o) noexcept { move_from(o); }
  EventCallback& operator=(EventCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  [[nodiscard]] bool operator==(std::nullptr_t) const { return ops_ == nullptr; }

  /// Drop the held callable (captures are destroyed immediately).
  void reset() {
    if (ops_ != nullptr) ops_->destroy(buf_);
    ops_ = nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void*, void*);  // move-construct into dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* from, void* to) {
        Fn* src = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) {
        Fn* f = nullptr;
        std::memcpy(&f, p, sizeof f);
        (*f)();
      },
      [](void* from, void* to) { std::memcpy(to, from, sizeof(Fn*)); },
      [](void* p) {
        Fn* f = nullptr;
        std::memcpy(&f, p, sizeof f);
        delete f;
      },
  };

  void move_from(EventCallback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) ops_->relocate(o.buf_, buf_);
    o.ops_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace manet
