// Destination-Sequenced Distance Vector (Perkins & Bhagwat '94).
//
// The classic proactive baseline of the comparison literature (Broch '98,
// Das '00 both include it). Every node maintains a route to every
// destination, tagged with a destination-generated even sequence number;
// routes advertising higher sequence numbers (or equal with fewer hops)
// win. Link breaks are advertised with an odd sequence number and infinite
// metric. Implemented:
//   * periodic full-table dumps (15 s, jittered);
//   * triggered incremental updates on route changes, rate-limited (1 s);
//   * link-layer failure detection feeding broken-route advertisements;
//   * immediate forwarding (no buffering): a packet with no current route
//     is dropped — the proactive trade-off the PDR-vs-mobility figures show.
// Omitted: weighted settling time (we rate-limit triggered updates instead).
#pragma once

#include <map>
#include <vector>

#include "net/node.hpp"
#include "routing/common.hpp"

namespace manet::dsdv {

inline constexpr std::uint8_t kInfinity = 0xFF;

struct UpdateEntry {
  NodeId dst = 0;
  std::uint32_t seq = 0;
  std::uint8_t hops = 0;
};

struct Update final : RoutingPayloadBase<Update> {
  std::vector<UpdateEntry> entries;

  [[nodiscard]] std::size_t size_bytes() const override { return 8 + 12 * entries.size(); }
};

struct Config {
  SimTime full_update_interval = seconds(15);
  SimTime triggered_min_interval = seconds(1);
};

class Dsdv final : public RoutingProtocol {
 public:
  Dsdv(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_link_failure(const Packet& pkt, NodeId next_hop) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "DSDV"; }

  // -- introspection (tests) -------------------------------------------------
  struct RouteInfo {
    NodeId next_hop;
    std::uint8_t hops;
  };
  [[nodiscard]] std::optional<RouteInfo> route_to(NodeId dst) const;

 private:
  struct Route {
    std::uint32_t seq = 0;
    std::uint8_t hops = kInfinity;
    NodeId next_hop = 0;
    bool changed = false;  // pending inclusion in a triggered update
  };

  void send_full_update();
  void schedule_triggered_update();
  void send_triggered_update();
  void broadcast_update(std::vector<UpdateEntry> entries);
  void handle_update(const Update& upd, NodeId from);
  void mark_broken_via(NodeId next_hop);

  Config cfg_;
  RngStream rng_;
  std::uint32_t own_seq_ = 0;  // even numbers: destination-generated
  /// Ordered map: full and triggered updates serialize the table in iteration
  /// order, keeping advertised entry order identical on every platform.
  std::map<NodeId, Route> routes_;
  bool trigger_pending_ = false;
  SimTime last_triggered_ = SimTime::zero();
};

}  // namespace manet::dsdv
