#include "routing/dsdv/dsdv.hpp"

#include <algorithm>

namespace manet::dsdv {

namespace {
[[nodiscard]] bool seq_newer(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
}  // namespace

Dsdv::Dsdv(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node), cfg_(cfg), rng_(rng) {}

void Dsdv::start() {
  // Stagger first dumps across nodes to avoid a synchronized startup storm.
  node_.sim().schedule(microseconds(rng_.uniform_int(0, 1'000'000)),
                       [this] { send_full_update(); });
}

// ---------------------------------------------------------------------------
// Advertising
// ---------------------------------------------------------------------------

void Dsdv::send_full_update() {
  own_seq_ += 2;
  std::vector<UpdateEntry> entries;
  entries.push_back(UpdateEntry{node_.id(), own_seq_, 0});
  for (auto& [dst, rt] : routes_) {
    entries.push_back(UpdateEntry{dst, rt.seq, rt.hops});
    rt.changed = false;
  }
  trigger_pending_ = false;
  broadcast_update(std::move(entries));
  // Jitter each period by up to ±1 s, as real implementations do.
  const SimTime jitter = microseconds(rng_.uniform_int(-1'000'000, 1'000'000));
  node_.sim().schedule(cfg_.full_update_interval + jitter, [this] { send_full_update(); });
}

void Dsdv::schedule_triggered_update() {
  if (trigger_pending_) return;
  trigger_pending_ = true;
  const SimTime earliest = last_triggered_ + cfg_.triggered_min_interval;
  const SimTime delay = std::max(SimTime::zero(), earliest - node_.sim().now()) +
                        broadcast_jitter(rng_);
  node_.sim().schedule(delay, [this] { send_triggered_update(); });
}

void Dsdv::send_triggered_update() {
  if (!trigger_pending_) return;
  trigger_pending_ = false;
  last_triggered_ = node_.sim().now();
  std::vector<UpdateEntry> entries;
  entries.push_back(UpdateEntry{node_.id(), own_seq_, 0});
  for (auto& [dst, rt] : routes_) {
    if (rt.changed) {
      entries.push_back(UpdateEntry{dst, rt.seq, rt.hops});
      rt.changed = false;
    }
  }
  if (entries.size() <= 1) return;
  broadcast_update(std::move(entries));
}

void Dsdv::broadcast_update(std::vector<UpdateEntry> entries) {
  auto upd = std::make_unique<Update>();
  upd->entries = std::move(entries);
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = 1;  // updates travel one hop; propagation is by re-advertising
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(upd);
  node_.send_broadcast(std::move(pkt));
}

// ---------------------------------------------------------------------------
// Receiving
// ---------------------------------------------------------------------------

void Dsdv::on_control(const Packet& pkt, NodeId from) {
  if (const auto* upd = dynamic_cast<const Update*>(pkt.routing.get())) {
    handle_update(*upd, from);
  }
}

void Dsdv::handle_update(const Update& upd, NodeId from) {
  bool changed_any = false;
  for (const UpdateEntry& e : upd.entries) {
    if (e.dst == node_.id()) {
      // Someone advertises a route to us. If it is "broken" (odd seq) or
      // carries a sequence number at least as new as ours, reclaim the
      // destination by jumping our own even number past it.
      if ((e.seq & 1u) != 0 || !seq_newer(own_seq_, e.seq)) {
        own_seq_ = (e.seq | 1u) + 1;  // next even number above e.seq
        changed_any = true;
      }
      continue;
    }
    const bool broken = (e.seq & 1u) != 0 || e.hops == kInfinity;
    const std::uint8_t new_hops =
        broken ? kInfinity : static_cast<std::uint8_t>(std::min<int>(e.hops + 1, kInfinity));
    Route& rt = routes_[e.dst];
    const bool adopt =
        seq_newer(e.seq, rt.seq) || (e.seq == rt.seq && new_hops < rt.hops);
    if (!adopt) continue;
    // A broken advertisement only matters if it comes from our next hop or
    // is genuinely newer than what we have.
    if (broken && rt.hops != kInfinity && rt.next_hop != from && !seq_newer(e.seq, rt.seq)) {
      continue;
    }
    if (rt.seq == e.seq && rt.hops == new_hops && rt.next_hop == from) continue;
    rt.seq = e.seq;
    rt.hops = new_hops;
    rt.next_hop = from;
    rt.changed = true;
    changed_any = true;
  }
  if (changed_any) schedule_triggered_update();
}

// ---------------------------------------------------------------------------
// Data & failures
// ---------------------------------------------------------------------------

void Dsdv::route_packet(Packet pkt) {
  const auto it = routes_.find(pkt.ip.dst);
  if (it == routes_.end() || it->second.hops == kInfinity) {
    node_.drop(pkt, DropReason::kNoRoute);
    return;
  }
  node_.send_with_next_hop(std::move(pkt), it->second.next_hop);
}

void Dsdv::mark_broken_via(NodeId next_hop) {
  bool changed_any = false;
  for (auto& [dst, rt] : routes_) {
    if (rt.hops == kInfinity || rt.next_hop != next_hop) continue;
    rt.hops = kInfinity;
    rt.seq += 1;  // odd: a route-breaker number
    rt.changed = true;
    changed_any = true;
  }
  if (changed_any) schedule_triggered_update();
}

void Dsdv::on_link_failure(const Packet& pkt, NodeId next_hop) {
  mark_broken_via(next_hop);
  node_.drop(pkt, DropReason::kMacRetryLimit);
}

void Dsdv::on_node_restart() {
  // Cold reboot: the table is rebuilt from scratch out of neighbours' next
  // periodic dumps. own_seq_ survives (destination-generated sequence
  // numbers must stay monotonic across reboots, or every pre-crash
  // advertisement of us would beat our fresh ones for 15 s). The periodic
  // full-update event kept firing while down — its broadcasts were gated by
  // the node — so advertising resumes by itself.
  routes_.clear();
  trigger_pending_ = false;
  last_triggered_ = SimTime::zero();
}

std::optional<Dsdv::RouteInfo> Dsdv::route_to(NodeId dst) const {
  const auto it = routes_.find(dst);
  if (it == routes_.end() || it->second.hops == kInfinity) return std::nullopt;
  return RouteInfo{it->second.next_hop, it->second.hops};
}

}  // namespace manet::dsdv
