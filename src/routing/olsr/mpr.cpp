#include "routing/olsr/mpr.hpp"

#include <algorithm>
#include <unordered_set>

namespace manet::olsr {

std::vector<NodeId> select_mprs(
    NodeId self, const std::vector<NodeId>& n1,
    const std::unordered_map<NodeId, std::vector<NodeId>>& n2_of) {
  const std::unordered_set<NodeId> one_hop(n1.begin(), n1.end());

  // Strict 2-hop set and its coverage map.
  std::unordered_map<NodeId, std::vector<NodeId>> covered_by;  // 2-hop node -> n1 covers
  for (const NodeId n : n1) {
    const auto it = n2_of.find(n);
    if (it == n2_of.end()) continue;
    for (const NodeId v : it->second) {
      if (v == self || one_hop.contains(v)) continue;
      covered_by[v].push_back(n);
    }
  }

  std::unordered_set<NodeId> mpr;
  std::unordered_set<NodeId> uncovered;
  // manet-lint: order-independent - set insertion is commutative; the resulting MPR/uncovered sets are identical for any visit order
  // and the greedy phase below iterates them via a sorted copy.
  for (const auto& [v, covers] : covered_by) {
    if (covers.size() == 1) {
      mpr.insert(covers.front());  // sole provider: mandatory
    } else {
      uncovered.insert(v);
    }
  }
  // Remove what the mandatory picks already cover.
  std::erase_if(uncovered, [&](NodeId v) {
    for (const NodeId c : covered_by.at(v)) {
      if (mpr.contains(c)) return true;
    }
    return false;
  });

  // Greedy: repeatedly take the neighbour covering the most uncovered 2-hop
  // nodes; break ties towards the smaller id for determinism.
  while (!uncovered.empty()) {
    NodeId best = kBroadcast;
    std::size_t best_cover = 0;
    std::vector<NodeId> candidates(n1.begin(), n1.end());
    std::sort(candidates.begin(), candidates.end());
    for (const NodeId n : candidates) {
      if (mpr.contains(n)) continue;
      const auto it = n2_of.find(n);
      if (it == n2_of.end()) continue;
      std::size_t cover = 0;
      for (const NodeId v : it->second) {
        if (uncovered.contains(v)) ++cover;
      }
      if (cover > best_cover) {
        best_cover = cover;
        best = n;
      }
    }
    if (best == kBroadcast) break;  // remaining 2-hop nodes are uncoverable
    mpr.insert(best);
    const auto it = n2_of.find(best);
    if (it != n2_of.end()) {
      for (const NodeId v : it->second) uncovered.erase(v);
    }
  }

  std::vector<NodeId> out(mpr.begin(), mpr.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace manet::olsr
