#include "routing/olsr/olsr.hpp"

#include <algorithm>
#include <unordered_set>

namespace manet::olsr {

namespace {
[[nodiscard]] std::uint64_t dup_key(NodeId origin, std::uint16_t seq) {
  return (static_cast<std::uint64_t>(origin) << 16) | seq;
}
}  // namespace

Olsr::Olsr(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node), cfg_(cfg), rng_(rng) {}

void Olsr::start() {
  // Desynchronize: first emissions are uniformly spread over one interval.
  node_.sim().schedule(microseconds(rng_.uniform_int(0, cfg_.hello_interval.ns() / 1000)),
                       [this] { send_hello(); });
  node_.sim().schedule(microseconds(rng_.uniform_int(0, cfg_.tc_interval.ns() / 1000)),
                       [this] { send_tc(); });
  node_.sim().schedule(seconds(1), [this] { purge_expired(); });
}

bool Olsr::link_sym(NodeId nbr) const {
  const auto it = links_.find(nbr);
  return it != links_.end() && it->second.sym_until > node_.sim().now();
}

std::vector<NodeId> Olsr::sym_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [nbr, lt] : links_) {
    if (lt.sym_until > node_.sim().now()) out.push_back(nbr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Olsr::mpr_selectors() const {
  std::vector<NodeId> out;
  for (const auto& [nbr, until] : selector_set_) {
    if (until > node_.sim().now()) out.push_back(nbr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

void Olsr::send_hello() {
  recompute_mprs();
  auto hello = std::make_unique<Hello>();
  const SimTime now = node_.sim().now();
  const std::unordered_set<NodeId> mprs(mpr_set_.begin(), mpr_set_.end());
  for (const auto& [nbr, lt] : links_) {
    LinkCode code;
    if (lt.sym_until > now) {
      code = mprs.contains(nbr) ? LinkCode::kMpr : LinkCode::kSym;
    } else if (lt.asym_until > now) {
      code = LinkCode::kAsym;
    } else {
      code = LinkCode::kLost;
    }
    hello->links.emplace_back(nbr, code);
  }
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = 1;  // HELLOs are never relayed
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(hello);
  node_.send_broadcast(std::move(pkt));

  // Next emission with +-25% jitter (RFC recommends up to interval/4).
  const std::int64_t q = cfg_.hello_interval.ns() / 4;
  node_.sim().schedule(cfg_.hello_interval + nanoseconds(rng_.uniform_int(-q, q)),
                       [this] { send_hello(); });
}

void Olsr::send_tc() {
  const auto selectors = mpr_selectors();
  if (!selectors.empty()) {
    auto tc = std::make_unique<Tc>();
    tc->origin = node_.id();
    tc->ansn = ansn_;
    tc->msg_seq = msg_seq_++;
    tc->selectors = selectors;
    dup_set_[dup_key(node_.id(), tc->msg_seq)] = node_.sim().now() + cfg_.dup_hold;
    Packet pkt;
    pkt.kind = PacketKind::kRoutingControl;
    pkt.ip.src = node_.id();
    pkt.ip.dst = kBroadcast;
    pkt.ip.ttl = 255;
    pkt.ip.proto = IpProto::kRouting;
    pkt.routing = std::move(tc);
    node_.send_broadcast(std::move(pkt));
  }
  const std::int64_t q = cfg_.tc_interval.ns() / 4;
  node_.sim().schedule(cfg_.tc_interval + nanoseconds(rng_.uniform_int(-q, q)),
                       [this] { send_tc(); });
}

// ---------------------------------------------------------------------------
// Reception
// ---------------------------------------------------------------------------

void Olsr::on_control(const Packet& pkt, NodeId from) {
  if (const auto* hello = dynamic_cast<const Hello*>(pkt.routing.get())) {
    handle_hello(*hello, from);
  } else if (const auto* tc = dynamic_cast<const Tc*>(pkt.routing.get())) {
    handle_tc(pkt, *tc, from);
  }
}

void Olsr::handle_hello(const Hello& hello, NodeId from) {
  const SimTime now = node_.sim().now();
  LinkTuple& lt = links_[from];
  lt.asym_until = now + cfg_.neighb_hold;
  bool lists_us = false;
  for (const auto& [nbr, code] : hello.links) {
    if (nbr != node_.id()) continue;
    lists_us = code != LinkCode::kLost;
    if (code == LinkCode::kMpr) selector_set_[from] = now + cfg_.neighb_hold;
    break;
  }
  if (lists_us) lt.sym_until = now + cfg_.neighb_hold;

  // 2-hop set: `from`'s symmetric neighbours.
  if (lt.sym_until > now) {
    auto& n2 = twohop_[from];
    for (const auto& [nbr, code] : hello.links) {
      if (nbr == node_.id()) continue;
      if (code == LinkCode::kSym || code == LinkCode::kMpr) {
        n2[nbr].expires = now + cfg_.neighb_hold;
      } else if (code == LinkCode::kLost) {
        n2.erase(nbr);
      }
    }
  }
  routes_dirty_ = true;
}

void Olsr::handle_tc(const Packet& pkt, const Tc& tc, NodeId from) {
  if (tc.origin == node_.id()) return;
  const SimTime now = node_.sim().now();
  const std::uint64_t key = dup_key(tc.origin, tc.msg_seq);
  const bool seen = [&] {
    const auto it = dup_set_.find(key);
    return it != dup_set_.end() && it->second > now;
  }();
  if (!seen) {
    dup_set_[key] = now + cfg_.dup_hold;
    // Process: accept only non-stale ANSNs (§9.5).
    auto& [tuple, selectors] = topology_[tc.origin];
    const bool stale =
        tuple.expires > now && static_cast<std::int16_t>(tc.ansn - tuple.ansn) < 0;
    if (!stale) {
      tuple.ansn = tc.ansn;
      tuple.expires = now + cfg_.topology_hold;
      selectors = tc.selectors;
      routes_dirty_ = true;
    }
    // Forwarding rule (§3.4): retransmit iff the previous hop selected us as
    // MPR (or classic flooding for the ablation), link to sender symmetric,
    // and TTL remains.
    const bool sender_selected_us = [&] {
      const auto it = selector_set_.find(from);
      return it != selector_set_.end() && it->second > now;
    }();
    const bool forward = (cfg_.mpr_flooding ? sender_selected_us : true) && link_sym(from) &&
                         pkt.ip.ttl > 1;
    if (forward) {
      Packet fwd = pkt;
      --fwd.ip.ttl;
      node_.sim().schedule(broadcast_jitter(rng_), [this, fwd = std::move(fwd)]() mutable {
        node_.send_broadcast(std::move(fwd));
      });
    }
  }
}

// ---------------------------------------------------------------------------
// State maintenance
// ---------------------------------------------------------------------------

void Olsr::purge_expired() {
  const SimTime now = node_.sim().now();
  const auto before_links = links_.size();
  std::erase_if(links_, [now](const auto& kv) {
    return kv.second.sym_until <= now && kv.second.asym_until <= now;
  });
  // manet-lint: order-independent - pure expiry sweep; erases per-key state
  // and schedules nothing, so visit order cannot reach the event queue.
  for (auto it = twohop_.begin(); it != twohop_.end();) {
    std::erase_if(it->second, [now](const auto& kv) { return kv.second.expires <= now; });
    if (it->second.empty() || !link_sym(it->first)) {
      it = twohop_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(selector_set_, [now](const auto& kv) { return kv.second <= now; });
  const auto before_topo = topology_.size();
  std::erase_if(topology_, [now](const auto& kv) { return kv.second.first.expires <= now; });
  std::erase_if(dup_set_, [now](const auto& kv) { return kv.second <= now; });
  if (before_links != links_.size() || before_topo != topology_.size()) routes_dirty_ = true;
  node_.sim().schedule(seconds(1), [this] { purge_expired(); });
}

void Olsr::recompute_mprs() {
  const SimTime now = node_.sim().now();
  const std::vector<NodeId> n1 = sym_neighbors();
  std::unordered_map<NodeId, std::vector<NodeId>> n2_of;
  for (const NodeId n : n1) {
    const auto it = twohop_.find(n);
    if (it == twohop_.end()) continue;
    auto& vec = n2_of[n];
    for (const auto& [nbr, tuple] : it->second) {
      if (tuple.expires > now) vec.push_back(nbr);
    }
  }
  auto fresh = select_mprs(node_.id(), n1, n2_of);
  if (fresh != mpr_set_) {
    mpr_set_ = std::move(fresh);
    ++ansn_;
  }
}

void Olsr::recompute_routes() {
  const SimTime now = node_.sim().now();
  AdjacencyMap adj;
  const auto n1 = sym_neighbors();
  adj[node_.id()] = n1;
  for (const NodeId n : n1) {
    const auto it = twohop_.find(n);
    if (it == twohop_.end()) continue;
    for (const auto& [nbr, tuple] : it->second) {
      if (tuple.expires > now && nbr != node_.id()) adj[n].push_back(nbr);
    }
  }
  // manet-lint: order-independent - fills the adjacency multimap only; shortest_paths() sorts each neighbour list before use
  // so topology visit order never reaches a packet or the event queue.
  for (const auto& [origin, entry] : topology_) {
    if (entry.first.expires <= now) continue;
    for (const NodeId sel : entry.second) {
      // TC advertises links origin <-> each selector.
      adj[origin].push_back(sel);
      adj[sel].push_back(origin);
    }
  }
  routes_ = shortest_paths(node_.id(), adj);
  routes_dirty_ = false;
}

std::optional<NodeId> Olsr::next_hop_to(NodeId dst) {
  if (routes_dirty_) recompute_routes();
  const auto it = routes_.next_hop.find(dst);
  if (it == routes_.next_hop.end()) return std::nullopt;
  return it->second;
}

void Olsr::route_packet(Packet pkt) {
  const auto next = next_hop_to(pkt.ip.dst);
  if (!next) {
    node_.drop(pkt, DropReason::kNoRoute);
    return;
  }
  node_.send_with_next_hop(std::move(pkt), *next);
}

void Olsr::on_node_restart() {
  // Cold reboot: link sensing, 2-hop sets, MPRs, selector sets, learned
  // topology and the duplicate filter all go; routing recomputes from an
  // empty link state. ansn_ and msg_seq_ survive (RFC 3626 freshness: a
  // restarted node's first TC must not lose to its own pre-crash ANSN held
  // in neighbours' topology sets). The periodic HELLO/TC events kept firing
  // while down — their broadcasts were gated by the node.
  links_.clear();
  twohop_.clear();
  mpr_set_.clear();
  selector_set_.clear();
  topology_.clear();
  dup_set_.clear();
  routes_ = SpfResult{};
  routes_dirty_ = true;
}

}  // namespace manet::olsr
