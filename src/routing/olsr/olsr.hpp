// Optimized Link State Routing (RFC 3626).
//
// The proactive protocol of the 2014 follow-up study and the standard
// proactive comparator in modern reruns of this paper family. Implemented:
//   * HELLO messages (2 s) with link sensing: a link is ASYM when we hear a
//     neighbour, SYM once the neighbour's HELLO lists us back; entries
//     expire after the validity time (6 s);
//   * 2-hop neighbourhood tracking from HELLO neighbour lists;
//   * MPR selection (greedy RFC heuristic, in mpr.cpp) re-run on every
//     neighbourhood change, advertised back via the MPR link code;
//   * TC messages (5 s) originated by nodes with a non-empty MPR-selector
//     set, carrying the selector set and an ANSN; flooded with the MPR
//     forwarding rule (retransmit only if the previous hop selected us as
//     MPR) — the optimization the protocol is named for (ablation
//     abl_olsr_mpr floods classically instead);
//   * topology set with per-origin ANSN freshness and expiry (15 s);
//   * routing-table computation as BFS over 1-hop links + 2-hop links +
//     advertised topology links, rerun lazily when inputs change.
// Omitted: link hysteresis, willingness, multiple interfaces, HNA/MID.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/node.hpp"
#include "routing/common.hpp"
#include "routing/olsr/mpr.hpp"
#include "routing/shortest_path.hpp"

namespace manet::olsr {

enum class LinkCode : std::uint8_t { kAsym, kSym, kMpr, kLost };

struct Hello final : RoutingPayloadBase<Hello> {
  std::vector<std::pair<NodeId, LinkCode>> links;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 16 + 4 + 6 * links.size();
  }
};

struct Tc final : RoutingPayloadBase<Tc> {
  NodeId origin = 0;
  std::uint16_t ansn = 0;
  std::uint16_t msg_seq = 0;
  std::vector<NodeId> selectors;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 16 + 4 + 4 * selectors.size();
  }
};

struct Config {
  SimTime hello_interval = seconds(2);
  SimTime tc_interval = seconds(5);
  SimTime neighb_hold = seconds(6);    // 3 * hello_interval
  SimTime topology_hold = seconds(15);  // 3 * tc_interval
  SimTime dup_hold = seconds(30);
  /// When false, TCs are flooded classically (every node retransmits) —
  /// the abl_olsr_mpr ablation quantifying the MPR optimization.
  bool mpr_flooding = true;
};

class Olsr final : public RoutingProtocol {
 public:
  Olsr(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "OLSR"; }

  // -- introspection (tests) -------------------------------------------------
  [[nodiscard]] std::vector<NodeId> sym_neighbors() const;
  [[nodiscard]] const std::vector<NodeId>& mprs() const { return mpr_set_; }
  [[nodiscard]] std::vector<NodeId> mpr_selectors() const;
  [[nodiscard]] std::optional<NodeId> next_hop_to(NodeId dst);

 private:
  struct LinkTuple {
    SimTime sym_until = SimTime::zero();
    SimTime asym_until = SimTime::zero();
  };
  struct TwoHopTuple {
    SimTime expires = SimTime::zero();
  };
  struct TopologyTuple {
    std::uint16_t ansn = 0;
    SimTime expires = SimTime::zero();
  };

  void send_hello();
  void send_tc();
  void handle_hello(const Hello& hello, NodeId from);
  void handle_tc(const Packet& pkt, const Tc& tc, NodeId from);
  void purge_expired();
  void recompute_mprs();
  void recompute_routes();
  [[nodiscard]] bool link_sym(NodeId nbr) const;

  Config cfg_;
  RngStream rng_;

  /// Ordered map: send_hello() serializes the link set in table order, so the
  /// advertised link list is identical on every platform.
  std::map<NodeId, LinkTuple> links_;
  /// (1-hop sym neighbour -> its sym neighbours with expiry).
  std::unordered_map<NodeId, std::unordered_map<NodeId, TwoHopTuple>> twohop_;
  std::vector<NodeId> mpr_set_;
  /// Ordered map: mpr_selectors() walks it to build TC selector lists.
  std::map<NodeId, SimTime> selector_set_;  // who picked us, expiry
  /// (origin -> advertised selector set) from TCs.
  std::unordered_map<NodeId, std::pair<TopologyTuple, std::vector<NodeId>>> topology_;
  std::unordered_map<std::uint64_t, SimTime> dup_set_;

  std::uint16_t ansn_ = 0;
  std::uint16_t msg_seq_ = 0;
  bool routes_dirty_ = true;
  SpfResult routes_;
};

}  // namespace manet::olsr
