// Multi-Point Relay selection (RFC 3626 §8.3.1).
//
// Pure function, separated from the protocol so its covering property can be
// property-tested over random graphs: the returned MPR set must cover every
// strict 2-hop neighbour.
#pragma once

#include <unordered_map>
#include <vector>

#include "packet/packet.hpp"

namespace manet::olsr {

/// `n1`: symmetric 1-hop neighbours of `self`.
/// `n2_of`: for each 1-hop neighbour, its own symmetric neighbours.
/// Returns the MPR set (sorted): a subset of n1 covering every node that is
/// a symmetric neighbour of some n1 member but is neither `self` nor in n1.
/// Greedy per the RFC: mandatory sole-covers first, then max-coverage with
/// smallest-id tie-breaking (willingness is not modelled).
[[nodiscard]] std::vector<NodeId> select_mprs(
    NodeId self, const std::vector<NodeId>& n1,
    const std::unordered_map<NodeId, std::vector<NodeId>>& n2_of);

}  // namespace manet::olsr
