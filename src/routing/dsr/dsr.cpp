#include "routing/dsr/dsr.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet::dsr {

namespace {
[[nodiscard]] std::uint64_t rreq_key(NodeId origin, std::uint16_t id) {
  return (static_cast<std::uint64_t>(origin) << 16) | id;
}
constexpr SimTime kRreqSeenLifetime = seconds(30);
}  // namespace

Dsr::Dsr(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node),
      cfg_(cfg),
      rng_(rng),
      cache_(node.id(), cfg.cache_capacity, cfg.cache_lifetime),
      buffer_(node.sim(), [&node](const Packet& p, DropReason r) { node.drop(p, r); }) {}

void Dsr::start() {
  // DSR is fully reactive: nothing to schedule up front.
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

void Dsr::route_packet(Packet pkt) {
  if (pkt.routing != nullptr) {
    forward_with_route(std::move(pkt));
    return;
  }
  originate(std::move(pkt));
}

void Dsr::originate(Packet pkt) {
  const NodeId dst = pkt.ip.dst;
  if (auto path = cache_.find(dst, node_.sim().now())) {
    auto sr = std::make_unique<SourceRoute>();
    sr->path = std::move(*path);
    sr->next_index = 1;
    const NodeId next = sr->path[1];
    pkt.routing = std::move(sr);
    node_.send_with_next_hop(std::move(pkt), next);
    return;
  }
  buffer_.push(std::move(pkt), dst);
  if (!discovering_.contains(dst)) {
    Discovery d;
    d.req_id = next_req_id_++;
    discovering_.emplace(dst, d);
    send_rreq(dst, cfg_.nonprop_first_query);
  }
}

void Dsr::forward_with_route(Packet pkt) {
  auto* sr = dynamic_cast<SourceRoute*>(pkt.routing.mutate());
  if (sr == nullptr) {
    node_.drop(pkt, DropReason::kProtocol);
    return;
  }
  // We are path[next_index]; advance and relay. A stale/corrupt route that
  // does not list us next is discarded.
  if (sr->next_index >= sr->path.size() || sr->path[sr->next_index] != node_.id() ||
      sr->next_index + 1 >= sr->path.size()) {
    node_.drop(pkt, DropReason::kProtocol);
    return;
  }
  // Snoop: the remainder of the source route is a usable path for us too.
  cache_suffix_from_self(sr->path, node_.sim().now());
  ++sr->next_index;
  const NodeId next = sr->path[sr->next_index];
  node_.send_with_next_hop(std::move(pkt), next);
}

void Dsr::cache_suffix_from_self(const Path& path, SimTime now) {
  const auto it = std::find(path.begin(), path.end(), node_.id());
  if (it == path.end()) return;
  Path suffix(it, path.end());
  if (suffix.size() >= 2) cache_.add(suffix, now);
}

// ---------------------------------------------------------------------------
// Route discovery
// ---------------------------------------------------------------------------

void Dsr::send_rreq(NodeId target, bool nonprop) {
  auto& d = discovering_.at(target);
  auto rreq = std::make_unique<Rreq>();
  rreq->origin = node_.id();
  rreq->target = target;
  rreq->req_id = d.req_id;
  rreq->record = {node_.id()};

  rreq_seen_[rreq_key(node_.id(), d.req_id)] = node_.sim().now() + kRreqSeenLifetime;

  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = nonprop ? 1 : kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(rreq);
  node_.send_broadcast(std::move(pkt));

  SimTime timeout;
  if (nonprop) {
    timeout = cfg_.nonprop_timeout;
  } else {
    timeout = cfg_.first_timeout;
    for (int i = 1; i < d.retries && timeout < cfg_.max_timeout; ++i) timeout = 2 * timeout;
    timeout = std::min(timeout, cfg_.max_timeout);
  }
  d.timer = node_.sim().schedule(timeout, [this, target] { rreq_timeout(target); });
}

void Dsr::rreq_timeout(NodeId target) {
  auto it = discovering_.find(target);
  if (it == discovering_.end()) return;
  Discovery& d = it->second;
  ++d.retries;
  if (d.retries > cfg_.max_retries) {
    discovering_.erase(it);
    buffer_.drop_all(target, DropReason::kNoRoute);
    return;
  }
  d.req_id = next_req_id_++;  // a fresh id per (re)flood
  send_rreq(target, /*nonprop=*/false);
}

void Dsr::handle_rreq(const Packet& pkt, const Rreq& rreq, NodeId /*from*/) {
  if (rreq.origin == node_.id()) return;
  const std::uint64_t key = rreq_key(rreq.origin, rreq.req_id);
  if (auto it = rreq_seen_.find(key); it != rreq_seen_.end() && it->second > node_.sim().now()) {
    return;
  }
  rreq_seen_[key] = node_.sim().now() + kRreqSeenLifetime;
  if (std::find(rreq.record.begin(), rreq.record.end(), node_.id()) != rreq.record.end()) {
    return;  // we already forwarded this flood (route record loop)
  }

  // The accumulated record, reversed, is a route from us back to the origin
  // (links assumed bidirectional — true for our radio model).
  {
    Path back(rreq.record.rbegin(), rreq.record.rend());
    back.insert(back.begin(), node_.id());
    cache_.add(back, node_.sim().now());
  }

  if (rreq.target == node_.id()) {
    Path full = rreq.record;
    full.push_back(node_.id());
    send_rrep(std::move(full));
    return;
  }

  if (cfg_.intermediate_reply) {
    if (auto cached = cache_.find(rreq.target, node_.sim().now())) {
      // Splice record + cached path; reply only if the result is loop-free
      // (the draft's requirement to avoid advertising looping routes).
      Path full = rreq.record;
      full.insert(full.end(), cached->begin(), cached->end());
      if (loop_free(full)) {
        send_rrep(std::move(full));
        return;
      }
    }
  }

  if (pkt.ip.ttl <= 1) return;
  Packet fwd = pkt;
  --fwd.ip.ttl;
  auto body = std::make_unique<Rreq>(rreq);
  body->record.push_back(node_.id());
  fwd.routing = std::move(body);
  node_.sim().schedule(broadcast_jitter(rng_), [this, fwd = std::move(fwd)]() mutable {
    node_.send_broadcast(std::move(fwd));
  });
}

void Dsr::send_rrep(Path path) {
  MANET_EXPECTS(path.size() >= 2);
  // We sit somewhere on `path`; the reply travels back towards path.front().
  const auto self_it = std::find(path.begin(), path.end(), node_.id());
  MANET_ASSERT(self_it != path.end());
  const auto my_index = static_cast<std::size_t>(self_it - path.begin());
  MANET_ASSERT(my_index >= 1);

  auto rrep = std::make_unique<Rrep>();
  rrep->path = std::move(path);
  rrep->back_index = my_index - 1;
  const NodeId next = rrep->path[my_index - 1];

  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rrep->path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(rrep);
  node_.send_with_next_hop(std::move(pkt), next);
}

void Dsr::handle_rrep(const Rrep& rrep) {
  // Everyone on the reply path may cache their suffix towards the target.
  cache_suffix_from_self(rrep.path, node_.sim().now());

  if (rrep.back_index == 0 || rrep.path[rrep.back_index] != node_.id()) {
    if (rrep.path.front() == node_.id()) {
      // Discovery complete.
      const NodeId target = rrep.path.back();
      if (auto it = discovering_.find(target); it != discovering_.end()) {
        node_.sim().cancel(it->second.timer);
        discovering_.erase(it);
      }
      flush_buffer(target);
    }
    return;
  }

  // Relay towards the origin.
  auto body = std::make_unique<Rrep>(rrep);
  --body->back_index;
  const NodeId next = body->path[body->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = body->path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(body);
  node_.send_with_next_hop(std::move(pkt), next);
}

// ---------------------------------------------------------------------------
// Route maintenance
// ---------------------------------------------------------------------------

void Dsr::on_link_failure(const Packet& pkt, NodeId next_hop) {
  cache_.remove_link(node_.id(), next_hop);

  if (pkt.kind == PacketKind::kRoutingControl) return;  // lost control: give up

  const auto* sr = dynamic_cast<const SourceRoute*>(pkt.routing.get());
  if (sr == nullptr) {
    node_.drop(pkt, DropReason::kMacRetryLimit);
    return;
  }

  // Tell the source about the broken link (unless we are the source).
  if (pkt.ip.src != node_.id() && sr->next_index >= 1) {
    const std::size_t my_index = sr->next_index - 1;
    if (my_index < sr->path.size() && sr->path[my_index] == node_.id()) {
      send_rerr(sr->path, my_index, next_hop);
    }
  }

  if (pkt.ip.src == node_.id()) {
    // Strip the stale route and re-originate (cache lookup or rediscovery).
    Packet retry = pkt;
    retry.routing = nullptr;
    originate(std::move(retry));
    return;
  }

  if (cfg_.salvage && sr->salvage_count < cfg_.max_salvage) {
    try_salvage(pkt, next_hop);
    return;
  }
  node_.drop(pkt, DropReason::kMacRetryLimit);
}

void Dsr::try_salvage(Packet pkt, NodeId /*broken_to*/) {
  const auto* sr = dynamic_cast<const SourceRoute*>(pkt.routing.get());
  MANET_ASSERT(sr != nullptr);
  auto alt = cache_.find(pkt.ip.dst, node_.sim().now());
  if (!alt) {
    node_.drop(pkt, DropReason::kMacRetryLimit);
    return;
  }
  auto fresh = std::make_unique<SourceRoute>();
  fresh->path = std::move(*alt);
  fresh->next_index = 1;
  fresh->salvage_count = sr->salvage_count + 1;
  const NodeId next = fresh->path[1];
  pkt.routing = std::move(fresh);
  node_.send_with_next_hop(std::move(pkt), next);
}

void Dsr::send_rerr(const Path& data_path, std::size_t my_index, NodeId broken_to) {
  auto rerr = std::make_unique<Rerr>();
  rerr->broken_from = node_.id();
  rerr->broken_to = broken_to;
  rerr->back_path = Path(data_path.begin(), data_path.begin() + static_cast<std::ptrdiff_t>(my_index) + 1);
  rerr->back_index = my_index;
  if (rerr->back_path.size() < 2) return;
  --rerr->back_index;
  const NodeId next = rerr->back_path[rerr->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rerr->back_path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(rerr);
  node_.send_with_next_hop(std::move(pkt), next);
}

void Dsr::handle_rerr(const Rerr& rerr) {
  cache_.remove_link(rerr.broken_from, rerr.broken_to);
  if (rerr.back_index == 0 || rerr.back_path[rerr.back_index] != node_.id()) {
    return;  // reached the source (or a stale copy)
  }
  auto body = std::make_unique<Rerr>(rerr);
  --body->back_index;
  const NodeId next = body->back_path[body->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = body->back_path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(body);
  node_.send_with_next_hop(std::move(pkt), next);
}

// ---------------------------------------------------------------------------

void Dsr::on_control(const Packet& pkt, NodeId from) {
  MANET_ASSERT(pkt.routing != nullptr);
  if (const auto* rreq = dynamic_cast<const Rreq*>(pkt.routing.get())) {
    handle_rreq(pkt, *rreq, from);
  } else if (const auto* rrep = dynamic_cast<const Rrep*>(pkt.routing.get())) {
    handle_rrep(*rrep);
  } else if (const auto* rerr = dynamic_cast<const Rerr*>(pkt.routing.get())) {
    handle_rerr(*rerr);
  }
}

void Dsr::flush_buffer(NodeId dst) {
  for (Packet& pkt : buffer_.take(dst)) route_packet(std::move(pkt));
}

void Dsr::on_node_restart() {
  // Cold reboot: route cache, pending discoveries, duplicate filter and the
  // send buffer all go. next_req_id_ survives so a post-restart RREQ is not
  // suppressed by a neighbour's stale (origin, req_id) memory of the old one.
  // manet-lint: order-independent - only cancels timers; no packet is emitted
  for (auto& [target, d] : discovering_) node_.sim().cancel(d.timer);
  discovering_.clear();
  rreq_seen_.clear();
  cache_.clear();
  buffer_.clear(DropReason::kNodeDown);
}

}  // namespace manet::dsr
