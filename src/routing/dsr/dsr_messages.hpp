// DSR header options (draft-ietf-manet-dsr): source route on data packets,
// route request / reply / error control messages. Sizes follow the draft's
// option formats (4 bytes per listed address).
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"
#include "routing/dsr/route_cache.hpp"

namespace manet::dsr {

/// Source-route option attached to every DSR data packet.
struct SourceRoute final : RoutingPayloadBase<SourceRoute> {
  Path path;                    ///< [origin, ..., dst]
  std::size_t next_index = 1;   ///< index in `path` of the next hop
  int salvage_count = 0;

  [[nodiscard]] std::size_t size_bytes() const override {
    // Fixed DSR header (4) + option with the intermediate hops listed.
    return 4 + 4 + 4 * (path.size() >= 2 ? path.size() - 2 : 0);
  }
};

struct Rreq final : RoutingPayloadBase<Rreq> {
  NodeId origin = 0;
  NodeId target = 0;
  std::uint16_t req_id = 0;
  Path record;  ///< traversed nodes, origin first

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 8 + 4 * record.size();
  }
};

struct Rrep final : RoutingPayloadBase<Rrep> {
  Path path;                 ///< discovered route [origin, ..., target]
  std::size_t back_index = 0;  ///< index of the node currently holding it

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 6 + 4 * path.size();
  }
};

struct Rerr final : RoutingPayloadBase<Rerr> {
  NodeId broken_from = 0;
  NodeId broken_to = 0;
  Path back_path;              ///< route to the data source [origin, ..., reporter]
  std::size_t back_index = 0;  ///< index of the node currently holding it

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 12 + 4 * back_path.size();
  }
};

}  // namespace manet::dsr
