// DSR path route cache.
//
// The CMU ns-2 DSR model's "path cache": complete source routes (each
// beginning at the owning node), bounded in count, individually expiring.
// Lookups return the shortest live path containing the destination —
// possibly a prefix of a longer cached path. Link removal (from route
// errors or link-layer feedback) truncates every path at the first use of
// the broken link. Pure data structure, unit-testable without a simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/time.hpp"
#include "packet/packet.hpp"

namespace manet::dsr {

using Path = std::vector<NodeId>;  ///< [self, ..., dst], self first

class RouteCache {
 public:
  explicit RouteCache(NodeId self, std::size_t capacity = 64,
                      SimTime lifetime = seconds(300))
      : self_(self), capacity_(capacity), lifetime_(lifetime) {}

  /// Insert a path that must start at the owning node. Duplicate paths
  /// refresh their expiry. Paths with repeated nodes are rejected.
  void add(const Path& path, SimTime now);

  /// Shortest live path from self to `dst` (inclusive), if any.
  [[nodiscard]] std::optional<Path> find(NodeId dst, SimTime now) const;

  /// Remove the directed link a->b: every cached path is truncated just
  /// before its first traversal of that link (paths shrinking below two
  /// nodes are dropped).
  void remove_link(NodeId a, NodeId b);

  /// Number of live cached paths.
  [[nodiscard]] std::size_t size(SimTime now) const;

  /// Forget every cached path (node restart).
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    Path path;
    SimTime expires;
  };

  NodeId self_;
  std::size_t capacity_;
  SimTime lifetime_;
  std::vector<Entry> entries_;
};

/// True iff the path has no repeated nodes (loop-free).
[[nodiscard]] bool loop_free(const Path& path);

}  // namespace manet::dsr
