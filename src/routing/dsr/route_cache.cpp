#include "routing/dsr/route_cache.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/assert.hpp"

namespace manet::dsr {

bool loop_free(const Path& path) {
  std::unordered_set<NodeId> seen;
  for (const NodeId n : path) {
    if (!seen.insert(n).second) return false;
  }
  return true;
}

void RouteCache::add(const Path& path, SimTime now) {
  if (path.size() < 2) return;
  MANET_EXPECTS_MSG(path.front() == self_,
                    "node %u t=%lldns: cached path must start at self, starts at %u (%zu hops)",
                    self_, static_cast<long long>(now.ns()), path.front(), path.size());
  if (!loop_free(path)) return;
  for (auto& e : entries_) {
    if (e.path == path) {
      e.expires = now + lifetime_;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    // Evict the entry closest to expiry.
    auto victim = std::min_element(entries_.begin(), entries_.end(),
                                   [](const Entry& a, const Entry& b) {
                                     return a.expires < b.expires;
                                   });
    entries_.erase(victim);
  }
  entries_.push_back(Entry{path, now + lifetime_});
  MANET_ENSURES_MSG(entries_.size() <= capacity_, "node %u: cache grew past capacity %zu",
                    self_, capacity_);
}

std::optional<Path> RouteCache::find(NodeId dst, SimTime now) const {
  std::optional<Path> best;
  for (const auto& e : entries_) {
    if (e.expires <= now) continue;
    const auto it = std::find(e.path.begin(), e.path.end(), dst);
    if (it == e.path.end()) continue;
    const auto len = static_cast<std::size_t>(it - e.path.begin()) + 1;
    if (!best || len < best->size()) {
      best = Path(e.path.begin(), it + 1);
    }
  }
  // Cache invariant: every stored path is loop-free (enforced in add(), and
  // truncation in remove_link() preserves it), so any returned prefix is an
  // acyclic source route. A looping source route would bounce data packets
  // between nodes until the TTL burns out.
  if (best) {
    MANET_ENSURES_MSG(loop_free(*best) && best->front() == self_ && best->back() == dst,
                      "node %u t=%lldns dst=%u: cache produced an invalid route (%zu hops)",
                      self_, static_cast<long long>(now.ns()), dst, best->size());
  }
  return best;
}

void RouteCache::remove_link(NodeId a, NodeId b) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    Path& p = it->path;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == a && p[i + 1] == b) {
        p.resize(i + 1);
        break;
      }
    }
    if (p.size() < 2) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t RouteCache::size(SimTime now) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [now](const Entry& e) { return e.expires > now; }));
}

}  // namespace manet::dsr
