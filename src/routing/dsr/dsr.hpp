// Dynamic Source Routing (Johnson & Maltz; draft-ietf-manet-dsr).
//
// The source-routed reactive protocol of the comparison — Boukerche's
// headline finding is precisely that DSR-style source routing beats the
// distance-vector on-demand approach (AODV) on routing overhead. Implemented:
//   * route discovery with accumulating route records, duplicate
//     suppression, and a non-propagating (TTL = 1) first query followed by
//     network-wide retries under exponential backoff;
//   * replies from the target and — optionally (ablation abl_dsr_cache) —
//     from intermediate nodes out of their route caches, with loop splicing
//     checks;
//   * a path route cache fed by discovery, forwarding, and overheard route
//     records;
//   * source-routed forwarding via a header option on every data packet;
//   * route maintenance on 802.11 link-layer feedback: route error sent to
//     the packet source, broken link excised from caches, and packet
//     salvaging from the local cache (bounded per packet);
//   * a 64-packet / 30 s send buffer.
// Omitted: promiscuous (tap-mode) listening, gratuitous replies for route
// shortening, flow state.
#pragma once

#include <unordered_map>

#include "net/node.hpp"
#include "routing/common.hpp"
#include "routing/dsr/dsr_messages.hpp"
#include "routing/dsr/route_cache.hpp"

namespace manet::dsr {

struct Config {
  /// Non-propagating (TTL=1) ring-0 query before network-wide flooding.
  bool nonprop_first_query = true;
  SimTime nonprop_timeout = milliseconds(30);
  SimTime first_timeout = milliseconds(500);  // then doubles per retry
  SimTime max_timeout = seconds(10);
  int max_retries = 8;
  bool intermediate_reply = true;  ///< replies from caches (ablation knob)
  bool salvage = true;
  int max_salvage = 2;
  std::size_t cache_capacity = 64;
  SimTime cache_lifetime = seconds(300);
};

class Dsr final : public RoutingProtocol {
 public:
  Dsr(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_link_failure(const Packet& pkt, NodeId next_hop) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "DSR"; }

  // -- introspection (tests) -------------------------------------------------
  [[nodiscard]] RouteCache& cache() { return cache_; }
  [[nodiscard]] std::size_t buffered_packets() { return buffer_.size(); }

 private:
  struct Discovery {
    std::uint16_t req_id = 0;
    int retries = 0;
    EventId timer = kInvalidEventId;
  };

  void originate(Packet pkt);
  void forward_with_route(Packet pkt);
  void send_rreq(NodeId target, bool nonprop);
  void rreq_timeout(NodeId target);
  void handle_rreq(const Packet& pkt, const Rreq& rreq, NodeId from);
  void handle_rrep(const Rrep& rrep);
  void handle_rerr(const Rerr& rerr);
  void send_rrep(Path path);
  void send_rerr(const Path& data_path, std::size_t my_index, NodeId broken_to);
  void flush_buffer(NodeId dst);
  void try_salvage(Packet pkt, NodeId broken_to);
  /// Cache the sub-path of `path` starting at self, if self appears.
  void cache_suffix_from_self(const Path& path, SimTime now);

  Config cfg_;
  RngStream rng_;
  RouteCache cache_;
  PacketBuffer buffer_;

  std::uint16_t next_req_id_ = 1;
  std::unordered_map<NodeId, Discovery> discovering_;
  /// Duplicate-RREQ suppression: (origin, req_id) -> expiry.
  std::unordered_map<std::uint64_t, SimTime> rreq_seen_;
};

}  // namespace manet::dsr
