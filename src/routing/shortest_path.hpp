// Unit-weight shortest paths (BFS) over a node-id adjacency map.
//
// Used by OLSR's routing-table calculation and, independently, by tests as a
// reference oracle for every protocol's hop counts. Deterministic: ties are
// broken towards the smallest predecessor id.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "packet/packet.hpp"

namespace manet {

using AdjacencyMap = std::unordered_map<NodeId, std::vector<NodeId>>;

struct SpfResult {
  /// First hop on a shortest path from the source to each reachable node
  /// (source itself excluded).
  std::unordered_map<NodeId, NodeId> next_hop;
  /// Hop distance from the source to each reachable node.
  std::unordered_map<NodeId, std::uint32_t> dist;
};

/// BFS from `self` over `adj`. Edges are taken as given (directed); callers
/// wanting symmetric-only routing must pre-filter.
[[nodiscard]] SpfResult shortest_paths(NodeId self, const AdjacencyMap& adj);

}  // namespace manet
