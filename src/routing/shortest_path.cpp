#include "routing/shortest_path.hpp"

#include <algorithm>
#include <deque>

namespace manet {

SpfResult shortest_paths(NodeId self, const AdjacencyMap& adj) {
  SpfResult res;
  res.dist[self] = 0;
  std::deque<NodeId> frontier{self};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto it = adj.find(u);
    if (it == adj.end()) continue;
    std::vector<NodeId> nbrs = it->second;
    std::sort(nbrs.begin(), nbrs.end());  // deterministic tie-breaking
    for (const NodeId v : nbrs) {
      if (res.dist.contains(v)) continue;
      res.dist[v] = res.dist[u] + 1;
      res.next_hop[v] = (u == self) ? v : res.next_hop[u];
      frontier.push_back(v);
    }
  }
  res.dist.erase(self);
  return res;
}

}  // namespace manet
