// TORA — Temporally-Ordered Routing Algorithm (Park & Corson '97),
// simplified ("TORA-lite").
//
// The link-reversal protocol of the original comparison papers (Broch '98
// evaluated DSDV/TORA/DSR/AODV; Ahmed & Alam '06 found TORA competitive
// under specific parameters). TORA builds, per destination, a destination-
// oriented DAG of node "heights": packets always flow from higher to lower
// height, which is loop-free by construction. Implemented here:
//   * heights as the quintuple (tau, oid, r, delta, id) with lexicographic
//     order, kept per destination;
//   * route creation with QRY (flooded towards anyone with a height) and
//     UPD (propagates heights back, delta increasing away from the
//     destination);
//   * route maintenance by partial link reversal: a node that loses its
//     last downstream link defines a new reference level (tau = now,
//     oid = self) and broadcasts it, reversing the adjacent links;
//   * neighbour tracking via a lightweight periodic beacon — the stand-in
//     for the IMEP layer real TORA rides on — plus 802.11 link-layer
//     failure feedback for fast loss detection.
// Omitted (documented): full partition detection with the reflection bit
// echo and CLR flooding (undeliverable packets age out of the send buffer
// instead), and IMEP's reliable/in-order control delivery.
#pragma once

#include <map>
#include <optional>

#include "net/node.hpp"
#include "routing/common.hpp"

namespace manet::tora {

/// A TORA height. Null height (unknown) is represented by std::nullopt at
/// the call sites; the destination itself sits at the global minimum.
struct Height {
  std::int64_t tau = 0;   ///< reference-level timestamp (ns)
  NodeId oid = 0;         ///< originator of the reference level
  bool r = false;         ///< reflection bit
  std::int32_t delta = 0; ///< propagation ordering within the level
  NodeId id = 0;          ///< tie-breaker

  friend bool operator==(const Height&, const Height&) = default;
  friend auto operator<=>(const Height& a, const Height& b) = default;
};

struct Qry final : RoutingPayloadBase<Qry> {
  NodeId dst = 0;
  [[nodiscard]] std::size_t size_bytes() const override { return 12; }
};

struct Upd final : RoutingPayloadBase<Upd> {
  NodeId dst = 0;
  Height height;
  [[nodiscard]] std::size_t size_bytes() const override { return 12 + 20; }
};

struct Beacon final : RoutingPayloadBase<Beacon> {
  [[nodiscard]] std::size_t size_bytes() const override { return 8; }
};

struct Config {
  SimTime beacon_interval = seconds(1);
  SimTime neighbor_hold = seconds(3);
  /// Re-broadcast QRY at most this often per destination while routes are
  /// still required (rate limit against QRY storms).
  SimTime qry_min_interval = milliseconds(500);
};

class Tora final : public RoutingProtocol {
 public:
  Tora(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_link_failure(const Packet& pkt, NodeId next_hop) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "TORA"; }

  // -- introspection (tests) -------------------------------------------------
  [[nodiscard]] std::optional<Height> height_for(NodeId dst) const;
  [[nodiscard]] std::optional<NodeId> downstream_for(NodeId dst);
  [[nodiscard]] std::vector<NodeId> live_neighbors() const;

 private:
  struct DestState {
    std::optional<Height> height;
    bool route_required = false;
    SimTime last_qry = SimTime{-1'000'000'000};
    /// Last advertised height per neighbour (nullopt = advertised null).
    /// Ordered map: best_downstream() breaks height ties towards the lowest
    /// neighbour id instead of hash order.
    std::map<NodeId, std::optional<Height>> nbr_heights;
  };

  void send_beacon();
  void purge_neighbors();
  void broadcast_control(std::unique_ptr<RoutingPayload> body);
  void send_qry(NodeId dst);
  void send_upd(NodeId dst);
  void handle_qry(const Qry& qry, NodeId from);
  void handle_upd(const Upd& upd, NodeId from);
  void on_neighbor_lost(NodeId nbr);
  /// Lowest-height live downstream neighbour, if any.
  [[nodiscard]] std::optional<NodeId> best_downstream(DestState& st) const;
  /// React to possibly having lost the last downstream link (reversal).
  void maybe_reverse(NodeId dst, DestState& st);
  [[nodiscard]] bool neighbor_alive(NodeId nbr) const;

  Config cfg_;
  RngStream rng_;
  PacketBuffer buffer_;
  // Ordered maps: purge_neighbors() and on_neighbor_lost() emit control
  // packets while walking these tables, so iteration order reaches the event
  // queue and must not depend on hash layout.
  std::map<NodeId, SimTime> neighbors_;  // id -> expiry
  std::map<NodeId, DestState> dests_;
};

}  // namespace manet::tora
