#include "routing/tora/tora.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet::tora {

Tora::Tora(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node),
      cfg_(cfg),
      rng_(rng),
      buffer_(node.sim(), [&node](const Packet& p, DropReason r) { node.drop(p, r); }) {}

void Tora::start() {
  node_.sim().schedule(microseconds(rng_.uniform_int(0, cfg_.beacon_interval.ns() / 1000)),
                       [this] { send_beacon(); });
  node_.sim().schedule(seconds(1), [this] { purge_neighbors(); });
}

// ---------------------------------------------------------------------------
// Neighbour tracking (IMEP stand-in)
// ---------------------------------------------------------------------------

void Tora::send_beacon() {
  broadcast_control(std::make_unique<Beacon>());
  const std::int64_t q = cfg_.beacon_interval.ns() / 4;
  node_.sim().schedule(cfg_.beacon_interval + nanoseconds(rng_.uniform_int(-q, q)),
                       [this] { send_beacon(); });
}

bool Tora::neighbor_alive(NodeId nbr) const {
  const auto it = neighbors_.find(nbr);
  return it != neighbors_.end() && it->second > node_.sim().now();
}

std::vector<NodeId> Tora::live_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [id, until] : neighbors_) {
    if (until > node_.sim().now()) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Tora::purge_neighbors() {
  const SimTime now = node_.sim().now();
  std::vector<NodeId> lost;
  for (const auto& [id, until] : neighbors_) {
    if (until <= now) lost.push_back(id);
  }
  for (const NodeId nbr : lost) {
    neighbors_.erase(nbr);
    on_neighbor_lost(nbr);
  }
  node_.sim().schedule(seconds(1), [this] { purge_neighbors(); });
}

void Tora::on_neighbor_lost(NodeId nbr) {
  for (auto& [dst, st] : dests_) {
    st.nbr_heights.erase(nbr);
    if (st.height.has_value() && dst != node_.id()) maybe_reverse(dst, st);
  }
}

// ---------------------------------------------------------------------------
// Heights & forwarding
// ---------------------------------------------------------------------------

std::optional<NodeId> Tora::best_downstream(DestState& st) const {
  if (!st.height.has_value()) return std::nullopt;
  std::optional<NodeId> best;
  std::optional<Height> best_h;
  for (const auto& [nbr, h] : st.nbr_heights) {
    if (!h.has_value() || !neighbor_alive(nbr)) continue;
    if (*h < *st.height && (!best_h || *h < *best_h)) {
      best = nbr;
      best_h = h;
    }
  }
  return best;
}

std::optional<Height> Tora::height_for(NodeId dst) const {
  const auto it = dests_.find(dst);
  if (it == dests_.end()) return std::nullopt;
  return it->second.height;
}

std::optional<NodeId> Tora::downstream_for(NodeId dst) {
  auto it = dests_.find(dst);
  if (it == dests_.end()) return std::nullopt;
  // A direct neighbour is always "downstream" in spirit: the destination
  // sits at the global minimum height.
  if (neighbor_alive(dst)) return dst;
  return best_downstream(it->second);
}

void Tora::route_packet(Packet pkt) {
  const NodeId dst = pkt.ip.dst;
  if (neighbor_alive(dst)) {
    node_.send_with_next_hop(std::move(pkt), dst);
    return;
  }
  DestState& st = dests_[dst];
  if (const auto next = best_downstream(st)) {
    node_.send_with_next_hop(std::move(pkt), *next);
    return;
  }
  // No downstream link: buffer and (re-)issue a route query.
  buffer_.push(std::move(pkt), dst);
  st.route_required = true;
  send_qry(dst);
}

// ---------------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------------

void Tora::broadcast_control(std::unique_ptr<RoutingPayload> body) {
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = 1;  // all TORA control is single-hop; propagation is by relay
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(body);
  node_.send_broadcast(std::move(pkt));
}

void Tora::send_qry(NodeId dst) {
  DestState& st = dests_[dst];
  const SimTime now = node_.sim().now();
  if (now - st.last_qry < cfg_.qry_min_interval) return;  // rate limit
  st.last_qry = now;
  auto qry = std::make_unique<Qry>();
  qry->dst = dst;
  node_.sim().schedule(broadcast_jitter(rng_), [this, q = std::move(*qry)]() mutable {
    broadcast_control(std::make_unique<Qry>(q));
  });
}

void Tora::send_upd(NodeId dst) {
  const DestState& st = dests_.at(dst);
  MANET_ASSERT(st.height.has_value());
  auto upd = std::make_unique<Upd>();
  upd->dst = dst;
  upd->height = *st.height;
  node_.sim().schedule(broadcast_jitter(rng_), [this, u = std::move(*upd)]() mutable {
    broadcast_control(std::make_unique<Upd>(u));
  });
}

void Tora::handle_qry(const Qry& qry, NodeId from) {
  if (qry.dst == node_.id()) {
    // The destination answers with its zero height.
    DestState& st = dests_[qry.dst];
    st.height = Height{0, 0, false, 0, node_.id()};
    send_upd(qry.dst);
    return;
  }
  DestState& st = dests_[qry.dst];
  st.nbr_heights.try_emplace(from, std::nullopt);
  if (st.height.has_value()) {
    // We can serve the query immediately.
    send_upd(qry.dst);
    return;
  }
  if (!st.route_required) {
    st.route_required = true;
    send_qry(qry.dst);
  }
}

void Tora::handle_upd(const Upd& upd, NodeId from) {
  if (upd.dst == node_.id()) return;  // our own height is definitionally 0
  DestState& st = dests_[upd.dst];
  st.nbr_heights[from] = upd.height;

  if (st.route_required) {
    // Route creation (§ the QRY/UPD wave): adopt the level, delta one above
    // the advertising neighbour.
    Height h = upd.height;
    h.r = false;
    h.delta = upd.height.delta + 1;
    h.id = node_.id();
    st.height = h;
    st.route_required = false;
    send_upd(upd.dst);
    for (Packet& pkt : buffer_.take(upd.dst)) route_packet(std::move(pkt));
    return;
  }

  if (st.height.has_value()) {
    // Existing route: flush anything still waiting if this created a
    // downstream link.
    if (upd.height < *st.height && buffer_.has(upd.dst)) {
      for (Packet& pkt : buffer_.take(upd.dst)) route_packet(std::move(pkt));
    }
    // A reversal upstream may have removed our last downstream link.
    maybe_reverse(upd.dst, st);
  }
}

void Tora::maybe_reverse(NodeId dst, DestState& st) {
  if (!st.height.has_value()) return;
  if (neighbor_alive(dst)) return;  // direct link: nothing to fix
  if (best_downstream(st).has_value()) return;
  const bool has_upstream = std::any_of(
      st.nbr_heights.begin(), st.nbr_heights.end(),
      [this](const auto& kv) { return neighbor_alive(kv.first); });
  if (!has_upstream) {
    // Isolated for this destination: forget the height; the next data packet
    // triggers a fresh QRY.
    st.height.reset();
    return;
  }
  // Partial reversal: define a new reference level above everyone else's.
  Height h;
  h.tau = node_.sim().now().ns();
  h.oid = node_.id();
  h.r = false;
  h.delta = 0;
  h.id = node_.id();
  st.height = h;
  send_upd(dst);
}

void Tora::on_control(const Packet& pkt, NodeId from) {
  neighbors_[from] = node_.sim().now() + cfg_.neighbor_hold;
  if (const auto* qry = dynamic_cast<const Qry*>(pkt.routing.get())) {
    handle_qry(*qry, from);
  } else if (const auto* upd = dynamic_cast<const Upd*>(pkt.routing.get())) {
    handle_upd(*upd, from);
  }
  // Beacons carry no body to process: hearing them refreshed the neighbour.
}

void Tora::on_link_failure(const Packet& pkt, NodeId next_hop) {
  neighbors_.erase(next_hop);
  on_neighbor_lost(next_hop);
  if (pkt.kind != PacketKind::kData) return;
  // Retry through the (possibly reversed) DAG; route_packet buffers and
  // queries if nothing is downstream anymore.
  Packet retry = pkt;
  route_packet(std::move(retry));
}

void Tora::on_node_restart() {
  // Cold reboot: all heights, neighbour heights and liveness go — the node
  // rejoins the DAGs with null height and re-queries on demand. The beacon
  // event kept firing while down (gated by the node), so neighbours relearn
  // us from the first post-restart beacon.
  neighbors_.clear();
  dests_.clear();
  buffer_.clear(DropReason::kNodeDown);
}

}  // namespace manet::tora
