// Utilities shared by the routing protocols.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "packet/packet.hpp"
#include "stats/stats.hpp"

namespace manet {

/// Random delay applied before (re)broadcasting control packets, so that
/// neighbours receiving the same flood do not all transmit simultaneously —
/// the standard anti-synchronization measure of every MANET implementation.
[[nodiscard]] inline SimTime broadcast_jitter(RngStream& rng) {
  return microseconds(rng.uniform_int(0, 10'000));
}

/// Buffer for data packets awaiting route discovery, as kept by every
/// on-demand protocol (ns-2 defaults: 64 packets, 30 s lifetime). One global
/// FIFO with per-destination retrieval; overflow evicts the oldest packet.
/// Dropped packets are reported through `on_drop` (normally Node::drop, so
/// they reach both the statistics and the event trace).
class PacketBuffer {
 public:
  using DropFn = std::function<void(const Packet&, DropReason)>;

  PacketBuffer(Simulator& sim, DropFn on_drop, std::size_t capacity = 64,
               SimTime lifetime = seconds(30))
      : sim_(sim), on_drop_(std::move(on_drop)), capacity_(capacity), lifetime_(lifetime) {}

  void push(Packet pkt, NodeId dst) {
    purge_expired();
    if (entries_.size() >= capacity_) {
      count_drop(entries_.front().pkt, DropReason::kBufferOverflow);
      entries_.pop_front();
    }
    entries_.push_back(Entry{std::move(pkt), dst, sim_.now() + lifetime_});
    maybe_schedule_purge();
  }

  /// Remove and return all live packets buffered for `dst`.
  [[nodiscard]] std::vector<Packet> take(NodeId dst) {
    purge_expired();
    std::vector<Packet> out;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->dst == dst) {
        out.push_back(std::move(it->pkt));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  [[nodiscard]] bool has(NodeId dst) {
    purge_expired();
    for (const auto& e : entries_) {
      if (e.dst == dst) return true;
    }
    return false;
  }

  /// Drop every packet buffered for `dst`, counting `reason`.
  void drop_all(NodeId dst, DropReason reason) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->dst == dst) {
        count_drop(it->pkt, reason);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Drop everything, counting `reason` per data packet (node restart).
  void clear(DropReason reason) {
    for (const Entry& e : entries_) count_drop(e.pkt, reason);
    entries_.clear();
  }

  [[nodiscard]] std::size_t size() {
    purge_expired();
    return entries_.size();
  }

 private:
  struct Entry {
    Packet pkt;
    NodeId dst;
    SimTime expires;
  };

  void count_drop(const Packet& pkt, DropReason r) {
    if (on_drop_) on_drop_(pkt, r);
  }

  void purge_expired() {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->expires <= sim_.now()) {
        count_drop(it->pkt, DropReason::kBufferTimeout);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Expiry is checked on every access, but an idle buffer must still age
  // its contents out (the timeout is an observable metric), so a purge event
  // rides along whenever the buffer is non-empty. An entry is counted at
  // worst ~2 lifetimes after insertion; the metric only needs "eventually".
  void maybe_schedule_purge() {
    if (purge_pending_ || entries_.empty()) return;
    purge_pending_ = true;
    sim_.schedule(lifetime_ + milliseconds(1), [this] {
      purge_pending_ = false;
      purge_expired();
      maybe_schedule_purge();
    });
  }

  Simulator& sim_;
  DropFn on_drop_;
  std::size_t capacity_;
  SimTime lifetime_;
  std::deque<Entry> entries_;
  bool purge_pending_ = false;
};

}  // namespace manet
