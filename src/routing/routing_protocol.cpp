#include "net/routing_api.hpp"

#include <cctype>

#include "core/assert.hpp"
#include "net/node.hpp"

namespace manet {

void RoutingProtocol::on_link_failure(const Packet& pkt, NodeId /*next_hop*/) {
  // Default: protocols that don't react to link-layer feedback (pure
  // proactive designs) simply lose the packet.
  node_.drop(pkt, DropReason::kMacRetryLimit);
}

namespace routing {

namespace {
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

void Registry::add(const ProtocolEntry& entry) {
  MANET_EXPECTS(entry.name != nullptr && entry.make != nullptr);
  MANET_EXPECTS_MSG(by_name(entry.name) == nullptr, "duplicate protocol name %s", entry.name);
  MANET_EXPECTS_MSG(by_id(entry.id) == nullptr, "duplicate protocol id %u for %s",
                    static_cast<unsigned>(entry.id), entry.name);
  entries_.push_back(entry);
}

const ProtocolEntry* Registry::by_name(std::string_view name) const {
  for (const ProtocolEntry& e : entries_) {
    if (iequals(e.name, name)) return &e;
  }
  return nullptr;
}

const ProtocolEntry* Registry::by_id(std::uint8_t id) const {
  for (const ProtocolEntry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

}  // namespace routing

}  // namespace manet
