#include "net/routing_api.hpp"

#include "net/node.hpp"

namespace manet {

void RoutingProtocol::on_link_failure(const Packet& pkt, NodeId /*next_hop*/) {
  // Default: protocols that don't react to link-layer feedback (pure
  // proactive designs) simply lose the packet.
  node_.drop(pkt, DropReason::kMacRetryLimit);
}

}  // namespace manet
