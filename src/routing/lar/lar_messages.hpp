// LAR control messages: DSR-style options extended with location fields
// (8 bytes per coordinate pair, per the LAR paper's format estimates).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "packet/packet.hpp"

namespace manet::lar {

using Path = std::vector<NodeId>;

/// The request zone carried by zone-limited RREQs.
struct RequestZone {
  Vec2 lo;       ///< bottom-left corner
  Vec2 hi;       ///< top-right corner
  bool unrestricted = true;  ///< flood fallback: no zone check

  [[nodiscard]] bool contains(Vec2 p) const {
    return unrestricted || (p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y);
  }
};

struct Rreq final : RoutingPayloadBase<Rreq> {
  NodeId origin = 0;
  NodeId target = 0;
  std::uint16_t req_id = 0;
  Path record;        ///< traversed nodes, origin first
  RequestZone zone;   ///< forwarding restriction
  Vec2 origin_pos;    ///< the requester's position (location dissemination)

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 8 + 4 * record.size() + 8 /*origin pos*/ + (zone.unrestricted ? 0 : 16);
  }
};

struct Rrep final : RoutingPayloadBase<Rrep> {
  Path path;                   ///< [origin, ..., target]
  std::size_t back_index = 0;  ///< index of the node currently holding it
  Vec2 target_pos;             ///< the target's position at reply time

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 6 + 4 * path.size() + 8;
  }
};

struct Rerr final : RoutingPayloadBase<Rerr> {
  NodeId broken_from = 0;
  NodeId broken_to = 0;
  Path back_path;
  std::size_t back_index = 0;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 12 + 4 * back_path.size();
  }
};

struct SourceRoute final : RoutingPayloadBase<SourceRoute> {
  Path path;
  std::size_t next_index = 1;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 4 + 4 * (path.size() >= 2 ? path.size() - 2 : 0);
  }
};

}  // namespace manet::lar
