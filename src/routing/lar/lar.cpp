#include "routing/lar/lar.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet::lar {

namespace {
[[nodiscard]] std::uint64_t rreq_key(NodeId origin, std::uint16_t id) {
  return (static_cast<std::uint64_t>(origin) << 16) | id;
}
constexpr SimTime kRreqSeenLifetime = seconds(30);
}  // namespace

RequestZone request_zone(Vec2 src, Vec2 dst_last, double radius) {
  RequestZone z;
  z.unrestricted = false;
  z.lo = {std::min(src.x, dst_last.x - radius), std::min(src.y, dst_last.y - radius)};
  z.hi = {std::max(src.x, dst_last.x + radius), std::max(src.y, dst_last.y + radius)};
  return z;
}

Lar::Lar(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node), cfg_(cfg), rng_(rng), buffer_(node.sim(), [&node](const Packet& p, DropReason r) { node.drop(p, r); }) {}

void Lar::start() {}

Vec2 Lar::own_position() { return node_.mobility().position_at(node_.sim().now()); }

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

void Lar::route_packet(Packet pkt) {
  if (pkt.routing != nullptr) {
    forward_with_route(std::move(pkt));
    return;
  }
  originate(std::move(pkt));
}

void Lar::originate(Packet pkt) {
  const NodeId dst = pkt.ip.dst;
  const auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.expires > node_.sim().now()) {
    auto sr = std::make_unique<SourceRoute>();
    sr->path = it->second.path;
    sr->next_index = 1;
    const NodeId next = sr->path[1];
    pkt.routing = std::move(sr);
    node_.send_with_next_hop(std::move(pkt), next);
    return;
  }
  buffer_.push(std::move(pkt), dst);
  if (!discovering_.contains(dst)) {
    Discovery d;
    d.req_id = next_req_id_++;
    discovering_.emplace(dst, d);
    send_rreq(dst, /*zone_limited=*/true);
  }
}

void Lar::forward_with_route(Packet pkt) {
  auto* sr = dynamic_cast<SourceRoute*>(pkt.routing.mutate());
  if (sr == nullptr || sr->next_index >= sr->path.size() ||
      sr->path[sr->next_index] != node_.id() || sr->next_index + 1 >= sr->path.size()) {
    node_.drop(pkt, DropReason::kProtocol);
    return;
  }
  ++sr->next_index;
  const NodeId next = sr->path[sr->next_index];
  node_.send_with_next_hop(std::move(pkt), next);
}

// ---------------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------------

void Lar::send_rreq(NodeId target, bool zone_limited) {
  auto& d = discovering_.at(target);
  auto rreq = std::make_unique<Rreq>();
  rreq->origin = node_.id();
  rreq->target = target;
  rreq->req_id = d.req_id;
  rreq->record = {node_.id()};
  rreq->origin_pos = own_position();

  const auto loc = locations_.find(target);
  if (zone_limited && loc != locations_.end() &&
      loc->second.stamp + cfg_.location_lifetime > node_.sim().now()) {
    const double age_s = (node_.sim().now() - loc->second.stamp).sec();
    const double radius =
        std::max(cfg_.min_expected_radius, cfg_.assumed_v_max * age_s + cfg_.min_expected_radius);
    rreq->zone = request_zone(rreq->origin_pos, loc->second.pos, radius);
  }  // else: zone stays unrestricted (no location known -> plain flood)

  rreq_seen_[rreq_key(node_.id(), d.req_id)] = node_.sim().now() + kRreqSeenLifetime;

  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(rreq);
  node_.send_broadcast(std::move(pkt));

  SimTime timeout = cfg_.first_timeout;
  for (int i = 0; i < d.retries && timeout < cfg_.max_timeout; ++i) timeout = 2 * timeout;
  d.timer = node_.sim().schedule(std::min(timeout, cfg_.max_timeout),
                                 [this, target] { rreq_timeout(target); });
}

void Lar::rreq_timeout(NodeId target) {
  auto it = discovering_.find(target);
  if (it == discovering_.end()) return;
  Discovery& d = it->second;
  ++d.retries;
  if (d.retries > cfg_.max_retries) {
    discovering_.erase(it);
    buffer_.drop_all(target, DropReason::kNoRoute);
    return;
  }
  d.req_id = next_req_id_++;
  // LAR fallback: after a failed zone-limited attempt, flood unrestricted.
  send_rreq(target, /*zone_limited=*/false);
}

void Lar::handle_rreq(const Packet& pkt, const Rreq& rreq) {
  if (rreq.origin == node_.id()) return;
  const std::uint64_t key = rreq_key(rreq.origin, rreq.req_id);
  if (auto it = rreq_seen_.find(key); it != rreq_seen_.end() && it->second > node_.sim().now()) {
    return;
  }
  rreq_seen_[key] = node_.sim().now() + kRreqSeenLifetime;
  if (std::find(rreq.record.begin(), rreq.record.end(), node_.id()) != rreq.record.end()) {
    return;
  }

  // Location dissemination: every RREQ carries the requester's position.
  locations_[rreq.origin] = KnownLocation{rreq.origin_pos, node_.sim().now()};

  if (rreq.target == node_.id()) {
    Path full = rreq.record;
    full.push_back(node_.id());
    send_rrep(std::move(full));
    return;
  }

  // The LAR rule: only nodes inside the request zone relay.
  if (!rreq.zone.contains(own_position())) return;
  if (pkt.ip.ttl <= 1) return;

  Packet fwd = pkt;
  --fwd.ip.ttl;
  auto body = std::make_unique<Rreq>(rreq);
  body->record.push_back(node_.id());
  fwd.routing = std::move(body);
  node_.sim().schedule(broadcast_jitter(rng_), [this, fwd = std::move(fwd)]() mutable {
    node_.send_broadcast(std::move(fwd));
  });
}

void Lar::send_rrep(Path path) {
  MANET_EXPECTS(path.size() >= 2);
  const auto self_it = std::find(path.begin(), path.end(), node_.id());
  MANET_ASSERT(self_it != path.end());
  const auto my_index = static_cast<std::size_t>(self_it - path.begin());
  MANET_ASSERT(my_index >= 1);

  auto rrep = std::make_unique<Rrep>();
  rrep->path = std::move(path);
  rrep->back_index = my_index - 1;
  rrep->target_pos = own_position();
  const NodeId next = rrep->path[my_index - 1];

  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rrep->path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(rrep);
  node_.send_with_next_hop(std::move(pkt), next);
}

void Lar::handle_rrep(const Rrep& rrep) {
  locations_[rrep.path.back()] = KnownLocation{rrep.target_pos, node_.sim().now()};

  if (rrep.back_index == 0 || rrep.path[rrep.back_index] != node_.id()) {
    if (rrep.path.front() == node_.id()) {
      const NodeId target = rrep.path.back();
      routes_[target] = CachedRoute{rrep.path, node_.sim().now() + cfg_.route_lifetime};
      if (auto it = discovering_.find(target); it != discovering_.end()) {
        node_.sim().cancel(it->second.timer);
        discovering_.erase(it);
      }
      flush_buffer(target);
    }
    return;
  }
  auto body = std::make_unique<Rrep>(rrep);
  --body->back_index;
  const NodeId next = body->path[body->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = body->path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(body);
  node_.send_with_next_hop(std::move(pkt), next);
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void Lar::on_link_failure(const Packet& pkt, NodeId next_hop) {
  if (pkt.kind == PacketKind::kRoutingControl) return;
  const auto* sr = dynamic_cast<const SourceRoute*>(pkt.routing.get());
  if (sr == nullptr) {
    node_.drop(pkt, DropReason::kMacRetryLimit);
    return;
  }
  if (pkt.ip.src == node_.id()) {
    routes_.erase(pkt.ip.dst);
    Packet retry = pkt;
    retry.routing = nullptr;
    originate(std::move(retry));
    return;
  }
  // Intermediate node: report to the source; the packet itself is lost.
  if (sr->next_index >= 1) {
    const std::size_t my_index = sr->next_index - 1;
    if (my_index >= 1 && my_index < sr->path.size() && sr->path[my_index] == node_.id()) {
      auto rerr = std::make_unique<Rerr>();
      rerr->broken_from = node_.id();
      rerr->broken_to = next_hop;
      rerr->back_path = Path(sr->path.begin(),
                             sr->path.begin() + static_cast<std::ptrdiff_t>(my_index) + 1);
      rerr->back_index = my_index - 1;
      const NodeId next = rerr->back_path[rerr->back_index];
      Packet out;
      out.kind = PacketKind::kRoutingControl;
      out.ip.src = node_.id();
      out.ip.dst = rerr->back_path.front();
      out.ip.ttl = kInitialTtl;
      out.ip.proto = IpProto::kRouting;
      out.routing = std::move(rerr);
      node_.send_with_next_hop(std::move(out), next);
    }
  }
  node_.drop(pkt, DropReason::kMacRetryLimit);
}

void Lar::handle_rerr(const Rerr& rerr) {
  if (rerr.back_index == 0 || rerr.back_path[rerr.back_index] != node_.id()) {
    if (rerr.back_path.front() == node_.id()) {
      // Any route through the broken link is suspect; drop routes using it.
      std::erase_if(routes_, [&](const auto& kv) {
        const Path& p = kv.second.path;
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          if (p[i] == rerr.broken_from && p[i + 1] == rerr.broken_to) return true;
        }
        return false;
      });
    }
    return;
  }
  auto body = std::make_unique<Rerr>(rerr);
  --body->back_index;
  const NodeId next = body->back_path[body->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = body->back_path.front();
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(body);
  node_.send_with_next_hop(std::move(pkt), next);
}

void Lar::on_control(const Packet& pkt, NodeId /*from*/) {
  MANET_ASSERT(pkt.routing != nullptr);
  if (const auto* rreq = dynamic_cast<const Rreq*>(pkt.routing.get())) {
    handle_rreq(pkt, *rreq);
  } else if (const auto* rrep = dynamic_cast<const Rrep*>(pkt.routing.get())) {
    handle_rrep(*rrep);
  } else if (const auto* rerr = dynamic_cast<const Rerr*>(pkt.routing.get())) {
    handle_rerr(*rerr);
  }
}

void Lar::flush_buffer(NodeId dst) {
  for (Packet& pkt : buffer_.take(dst)) route_packet(std::move(pkt));
}

void Lar::on_node_restart() {
  // Cold reboot: cached routes, learned destination locations (the "GPS
  // last-seen" table), pending discoveries and buffered data all go.
  // next_req_id_ survives (see DSR).
  // manet-lint: order-independent - only cancels timers; no packet is emitted
  for (auto& [target, d] : discovering_) node_.sim().cancel(d.timer);
  discovering_.clear();
  locations_.clear();
  routes_.clear();
  rreq_seen_.clear();
  buffer_.clear(DropReason::kNodeDown);
}

}  // namespace manet::lar
