// Location-Aided Routing (Ko & Vaidya, MobiCom '98), scheme 1.
//
// The position-aided protocol of the comparison family: Boukerche's 2004
// journal follow-up concludes that "position aware routing protocols, in
// which nodes are equipped with a GPS device, present better performance and
// minimize routing overhead". LAR keeps DSR-style on-demand source routing
// but restricts route-request flooding to a *request zone*: the smallest
// axis-aligned rectangle containing the source and the destination's
// *expected zone* (a disc around its last known position with radius
// v_max x elapsed time). Nodes outside the request zone drop the RREQ instead
// of rebroadcasting. If a zone-limited discovery times out, the retry floods
// unrestricted (the standard fallback), so reachability matches DSR.
//
// Positions come from each node's own mobility model — the "GPS receiver".
// Destination location/timestamps are learned from RREPs (which carry the
// target's position) and refreshed by data delivery.
#pragma once

#include <unordered_map>

#include "net/node.hpp"
#include "routing/common.hpp"
#include "routing/lar/lar_messages.hpp"

namespace manet::lar {

/// Smallest axis-aligned rectangle containing `src` and the expected-zone
/// disc of radius `radius` around `dst_last`. Pure, unit-tested.
[[nodiscard]] RequestZone request_zone(Vec2 src, Vec2 dst_last, double radius);

struct Config {
  SimTime first_timeout = milliseconds(500);  // doubles per retry
  SimTime max_timeout = seconds(10);
  int max_retries = 6;
  /// Expected-zone radius floor, so a fresh location still allows movement.
  double min_expected_radius = 250.0;
  /// Speed bound used to grow the expected zone with location age.
  double assumed_v_max = 20.0;
  SimTime route_lifetime = seconds(60);
  SimTime location_lifetime = seconds(120);
};

class Lar final : public RoutingProtocol {
 public:
  Lar(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_link_failure(const Packet& pkt, NodeId next_hop) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "LAR"; }

  // -- introspection (tests) -------------------------------------------------
  [[nodiscard]] bool has_location_for(NodeId dst) const { return locations_.contains(dst); }
  [[nodiscard]] Vec2 own_position();

 private:
  struct Discovery {
    std::uint16_t req_id = 0;
    int retries = 0;
    EventId timer = kInvalidEventId;
  };
  struct KnownLocation {
    Vec2 pos;
    SimTime stamp;
  };
  struct CachedRoute {
    Path path;
    SimTime expires;
  };

  void originate(Packet pkt);
  void forward_with_route(Packet pkt);
  void send_rreq(NodeId target, bool zone_limited);
  void rreq_timeout(NodeId target);
  void handle_rreq(const Packet& pkt, const Rreq& rreq);
  void handle_rrep(const Rrep& rrep);
  void handle_rerr(const Rerr& rerr);
  void send_rrep(Path path);
  void flush_buffer(NodeId dst);

  Config cfg_;
  RngStream rng_;
  PacketBuffer buffer_;

  std::uint16_t next_req_id_ = 1;
  std::unordered_map<NodeId, Discovery> discovering_;
  std::unordered_map<NodeId, KnownLocation> locations_;
  std::unordered_map<NodeId, CachedRoute> routes_;
  std::unordered_map<std::uint64_t, SimTime> rreq_seen_;
};

}  // namespace manet::lar
