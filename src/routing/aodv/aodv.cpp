#include "routing/aodv/aodv.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet::aodv {

namespace {
/// Sequence-number comparison with wraparound (RFC 3561 §6.1: signed
/// 32-bit subtraction).
[[nodiscard]] bool seq_newer(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}

[[nodiscard]] std::uint64_t rreq_key(NodeId origin, std::uint32_t id) {
  return (static_cast<std::uint64_t>(origin) << 32) | id;
}
}  // namespace

Aodv::Aodv(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node), cfg_(cfg), rng_(rng), buffer_(node.sim(), [&node](const Packet& p, DropReason r) { node.drop(p, r); }) {}

void Aodv::start() {
  node_.sim().schedule(seconds(1), [this] { periodic_purge(); });
  if (cfg_.use_hello) {
    node_.sim().schedule(broadcast_jitter(rng_) + cfg_.hello_interval, [this] { send_hello(); });
  }
}

SimTime Aodv::ring_traversal_time(std::uint8_t ttl) const {
  // RING_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * (TTL + TIMEOUT_BUFFER),
  // TIMEOUT_BUFFER = 2.
  return 2 * static_cast<std::int64_t>(ttl + 2) * cfg_.node_traversal_time;
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

void Aodv::route_packet(Packet pkt) {
  const NodeId dst = pkt.ip.dst;
  auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.valid && it->second.expires > node_.sim().now()) {
    Route& rt = it->second;
    rt.expires = std::max(rt.expires, node_.sim().now() + cfg_.active_route_timeout);
    // Keep the route towards the packet's source alive too (§6.2).
    if (auto sit = routes_.find(pkt.ip.src); sit != routes_.end() && sit->second.valid) {
      sit->second.expires =
          std::max(sit->second.expires, node_.sim().now() + cfg_.active_route_timeout);
    }
    node_.send_with_next_hop(std::move(pkt), rt.next_hop);
    return;
  }
  if (pkt.ip.src != node_.id()) {
    // Forwarding node without a route: drop and report the broken route
    // upstream via an RERR (§6.11 case ii).
    node_.drop(pkt, DropReason::kNoRoute);
    Rerr rerr;
    const std::uint32_t seq = (it != routes_.end()) ? it->second.dest_seq + 1 : 1;
    rerr.unreachable.emplace_back(dst, seq);
    Packet out;
    out.kind = PacketKind::kRoutingControl;
    out.ip.src = node_.id();
    out.routing = std::make_unique<Rerr>(rerr);
    broadcast_control(std::move(out), 1);
    return;
  }
  buffer_.push(std::move(pkt), dst);
  if (!discovering_.contains(dst)) {
    Discovery d;
    d.ttl = cfg_.expanding_ring ? cfg_.ttl_start : cfg_.net_diameter;
    discovering_.emplace(dst, d);
    send_rreq(dst);
  }
}

// ---------------------------------------------------------------------------
// Route discovery
// ---------------------------------------------------------------------------

void Aodv::send_rreq(NodeId dst) {
  auto& d = discovering_.at(dst);
  ++seq_;  // §6.1: increment own seq before originating an RREQ
  ++rreq_id_;

  Rreq rreq;
  rreq.rreq_id = rreq_id_;
  rreq.origin = node_.id();
  rreq.dest = dst;
  rreq.origin_seq = seq_;
  if (const auto it = routes_.find(dst); it != routes_.end() && it->second.valid_seq) {
    rreq.dest_seq = it->second.dest_seq;
    rreq.unknown_dest_seq = false;
  }
  rreq.hop_count = 0;

  rreq_seen_[rreq_key(node_.id(), rreq_id_)] = node_.sim().now() + cfg_.rreq_id_lifetime;

  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.routing = std::make_unique<Rreq>(rreq);
  broadcast_control(std::move(pkt), d.ttl);

  d.timer = node_.sim().schedule(ring_traversal_time(d.ttl), [this, dst] { rreq_timeout(dst); });
}

void Aodv::rreq_timeout(NodeId dst) {
  auto it = discovering_.find(dst);
  if (it == discovering_.end()) return;
  Discovery& d = it->second;
  if (d.ttl < cfg_.ttl_threshold) {
    // Still in the expanding ring: widen and repeat (does not count as a retry).
    d.ttl = std::min<std::uint8_t>(d.ttl + cfg_.ttl_increment, cfg_.ttl_threshold);
    send_rreq(dst);
    return;
  }
  if (d.ttl < cfg_.net_diameter) {
    d.ttl = cfg_.net_diameter;
    send_rreq(dst);
    return;
  }
  if (d.retries < cfg_.rreq_retries) {
    ++d.retries;
    send_rreq(dst);
    return;
  }
  // Destination unreachable.
  discovering_.erase(it);
  buffer_.drop_all(dst, DropReason::kNoRoute);
}

// ---------------------------------------------------------------------------
// Control handling
// ---------------------------------------------------------------------------

void Aodv::on_control(const Packet& pkt, NodeId from) {
  MANET_ASSERT(pkt.routing != nullptr);
  if (const auto* rreq = dynamic_cast<const Rreq*>(pkt.routing.get())) {
    handle_rreq(pkt, *rreq, from);
  } else if (const auto* rrep = dynamic_cast<const Rrep*>(pkt.routing.get())) {
    handle_rrep(pkt, *rrep, from);
  } else if (const auto* rerr = dynamic_cast<const Rerr*>(pkt.routing.get())) {
    handle_rerr(*rerr, from);
  } else if (const auto* hello = dynamic_cast<const Hello*>(pkt.routing.get())) {
    handle_hello(*hello, from);
  }
}

void Aodv::touch_neighbor(NodeId nbr) {
  Route& rt = routes_[nbr];
  if (!rt.valid || rt.hops > 1) {
    rt.next_hop = nbr;
    rt.hops = 1;
    rt.valid = true;
    // Sequence number unknown for a route learned implicitly (§6.2).
    if (rt.hops > 1) rt.valid_seq = false;
  }
  rt.expires = std::max(rt.expires, node_.sim().now() + cfg_.active_route_timeout);
}

bool Aodv::update_route(NodeId dst, std::uint32_t seq, bool valid_seq, std::uint8_t hops,
                        NodeId next_hop, SimTime lifetime) {
  Route& rt = routes_[dst];
  const bool had_valid_seq = rt.valid_seq;
  const std::uint32_t prev_seq = rt.dest_seq;
  const bool fresher = !rt.valid_seq || seq_newer(seq, rt.dest_seq) ||
                       (seq == rt.dest_seq && (!rt.valid || hops < rt.hops));
  if (!fresher && valid_seq) return false;
  if (!valid_seq && rt.valid) return false;  // never degrade a valid route with an unknown seq
  rt.dest_seq = valid_seq ? seq : rt.dest_seq;
  rt.valid_seq = rt.valid_seq || valid_seq;
  rt.hops = hops;
  rt.next_hop = next_hop;
  rt.valid = true;
  rt.expires = std::max(rt.expires, node_.sim().now() + lifetime);
  // §6.1: a known destination sequence number only ever moves forward —
  // accepting an older one would re-animate stale routes and loop packets.
  MANET_ENSURES_MSG(!had_valid_seq || !seq_newer(prev_seq, rt.dest_seq),
                    "node %u t=%lldns dst=%u: dest_seq moved backwards %u -> %u", node_.id(),
                    static_cast<long long>(node_.sim().now().ns()), dst, prev_seq, rt.dest_seq);
  return true;
}

void Aodv::handle_rreq(const Packet& pkt, const Rreq& rreq, NodeId from) {
  if (rreq.origin == node_.id()) return;  // our own flood echoed back
  const std::uint64_t key = rreq_key(rreq.origin, rreq.rreq_id);
  if (auto it = rreq_seen_.find(key); it != rreq_seen_.end() && it->second > node_.sim().now()) {
    return;  // duplicate
  }
  rreq_seen_[key] = node_.sim().now() + cfg_.rreq_id_lifetime;

  touch_neighbor(from);
  // Reverse route to the originator (§6.5).
  update_route(rreq.origin, rreq.origin_seq, true,
               static_cast<std::uint8_t>(rreq.hop_count + 1), from,
               ring_traversal_time(cfg_.net_diameter));

  if (rreq.dest == node_.id()) {
    // §6.6.1: our seq must be at least the one in the RREQ.
    if (!rreq.unknown_dest_seq && seq_newer(rreq.dest_seq, seq_)) seq_ = rreq.dest_seq;
    ++seq_;
    send_rrep_as_dest(rreq, from);
    return;
  }

  if (cfg_.intermediate_reply && !rreq.dest_only) {
    const auto it = routes_.find(rreq.dest);
    if (it != routes_.end() && it->second.valid && it->second.valid_seq &&
        it->second.expires > node_.sim().now() &&
        (rreq.unknown_dest_seq || !seq_newer(rreq.dest_seq, it->second.dest_seq))) {
      send_rrep_as_intermediate(rreq, it->second, from);
      return;
    }
  }

  // Rebroadcast with decremented TTL.
  if (pkt.ip.ttl <= 1) return;
  Packet fwd = pkt;
  --fwd.ip.ttl;
  auto body = std::make_unique<Rreq>(rreq);
  ++body->hop_count;
  fwd.routing = std::move(body);
  node_.sim().schedule(broadcast_jitter(rng_),
                       [this, fwd = std::move(fwd)]() mutable { node_.send_broadcast(std::move(fwd)); });
}

void Aodv::send_rrep_as_dest(const Rreq& rreq, NodeId back) {
  Rrep rrep;
  rrep.origin = rreq.origin;
  rrep.dest = node_.id();
  rrep.dest_seq = seq_;
  rrep.hop_count = 0;
  rrep.lifetime = cfg_.my_route_timeout;
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rreq.origin;
  pkt.routing = std::make_unique<Rrep>(rrep);
  unicast_control(std::move(pkt), back);
}

void Aodv::send_rrep_as_intermediate(const Rreq& rreq, const Route& rt, NodeId back) {
  Rrep rrep;
  rrep.origin = rreq.origin;
  rrep.dest = rreq.dest;
  rrep.dest_seq = rt.dest_seq;
  rrep.hop_count = rt.hops;
  rrep.lifetime = rt.expires - node_.sim().now();
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rreq.origin;
  pkt.routing = std::make_unique<Rrep>(rrep);
  // §6.6.2: the next hop towards the destination gains the replier's
  // upstream as precursor, and vice versa.
  routes_[rreq.dest].precursors.insert(back);
  if (auto it = routes_.find(rreq.origin); it != routes_.end()) {
    it->second.precursors.insert(rt.next_hop);
  }
  unicast_control(std::move(pkt), back);
}

void Aodv::handle_rrep(const Packet& pkt, const Rrep& rrep, NodeId from) {
  touch_neighbor(from);
  const auto hops = static_cast<std::uint8_t>(rrep.hop_count + 1);
  update_route(rrep.dest, rrep.dest_seq, true, hops, from, rrep.lifetime);

  if (rrep.origin == node_.id()) {
    // Discovery complete.
    if (auto it = discovering_.find(rrep.dest); it != discovering_.end()) {
      node_.sim().cancel(it->second.timer);
      discovering_.erase(it);
    }
    flush_buffer(rrep.dest);
    return;
  }

  // Forward the RREP along the reverse route (§6.7).
  const auto rit = routes_.find(rrep.origin);
  if (rit == routes_.end() || !rit->second.valid) return;  // reverse route gone
  Packet fwd = pkt;
  auto body = std::make_unique<Rrep>(rrep);
  ++body->hop_count;
  fwd.routing = std::move(body);
  // Precursor bookkeeping: the node we forward to will use us towards dest.
  routes_[rrep.dest].precursors.insert(rit->second.next_hop);
  rit->second.expires =
      std::max(rit->second.expires, node_.sim().now() + cfg_.active_route_timeout);
  unicast_control(std::move(fwd), rit->second.next_hop);
}

void Aodv::handle_rerr(const Rerr& rerr, NodeId from) {
  Rerr propagate;
  for (const auto& [dst, seq] : rerr.unreachable) {
    auto it = routes_.find(dst);
    if (it == routes_.end() || !it->second.valid || it->second.next_hop != from) continue;
    Route& rt = it->second;
    rt.valid = false;
    rt.dest_seq = std::max(rt.dest_seq, seq);
    rt.expires = node_.sim().now() + cfg_.delete_period;
    if (!rt.precursors.empty()) propagate.unreachable.emplace_back(dst, rt.dest_seq);
    rt.precursors.clear();
  }
  if (propagate.unreachable.empty()) return;
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.routing = std::make_unique<Rerr>(propagate);
  broadcast_control(std::move(pkt), 1);
}

void Aodv::handle_hello(const Hello& hello, NodeId from) {
  hello_heard_[from] = node_.sim().now();
  touch_neighbor(from);
  update_route(hello.origin, hello.seq, true, 1, from,
               static_cast<std::int64_t>(cfg_.allowed_hello_loss) * cfg_.hello_interval);
}

// ---------------------------------------------------------------------------
// Link failure -> RERR (§6.11 case i)
// ---------------------------------------------------------------------------

void Aodv::invalidate_routes_via(NodeId next_hop, Rerr& out) {
  for (auto& [dst, rt] : routes_) {
    if (!rt.valid || rt.next_hop != next_hop) continue;
    rt.valid = false;
    ++rt.dest_seq;  // §6.11: increment so stale routes lose freshness contests
    rt.expires = node_.sim().now() + cfg_.delete_period;
    if (!rt.precursors.empty() || dst == next_hop) out.unreachable.emplace_back(dst, rt.dest_seq);
    rt.precursors.clear();
  }
}

void Aodv::on_link_failure(const Packet& pkt, NodeId next_hop) {
  Rerr rerr;
  invalidate_routes_via(next_hop, rerr);
  if (!rerr.unreachable.empty()) {
    Packet out;
    out.kind = PacketKind::kRoutingControl;
    out.ip.src = node_.id();
    out.routing = std::make_unique<Rerr>(rerr);
    broadcast_control(std::move(out), 1);
  }
  if (pkt.kind != PacketKind::kData) return;  // a lost control packet is just lost
  if (pkt.ip.src == node_.id()) {
    // We originated it: buffer and rediscover.
    Packet retry = pkt;
    route_packet(std::move(retry));
  } else if (cfg_.local_repair) {
    // §6.12: buffer the packet here and search for the destination
    // ourselves; flush_buffer forwards it if the repair succeeds, and the
    // discovery-failure path drops it with kNoRoute otherwise.
    const NodeId dst = pkt.ip.dst;
    buffer_.push(pkt, dst);
    if (!discovering_.contains(dst)) {
      Discovery d;
      d.ttl = cfg_.expanding_ring ? cfg_.ttl_start : cfg_.net_diameter;
      discovering_.emplace(dst, d);
      send_rreq(dst);
    }
  } else {
    node_.drop(pkt, DropReason::kMacRetryLimit);
  }
}

void Aodv::on_node_restart() {
  // Cold reboot: every table, pending discovery and buffered packet goes.
  // Own seq_ and rreq_id_ survive (monotonic identity — RFC 3561 §6.1 keeps
  // the sequence number across reboots precisely so stale pre-crash
  // advertisements cannot beat post-restart ones).
  // manet-lint: order-independent - only cancels timers; no packet is emitted
  for (auto& [dst, d] : discovering_) node_.sim().cancel(d.timer);
  discovering_.clear();
  routes_.clear();
  rreq_seen_.clear();
  hello_heard_.clear();
  buffer_.clear(DropReason::kNodeDown);
}

// ---------------------------------------------------------------------------
// Housekeeping
// ---------------------------------------------------------------------------

void Aodv::flush_buffer(NodeId dst) {
  for (Packet& pkt : buffer_.take(dst)) route_packet(std::move(pkt));
}

void Aodv::periodic_purge() {
  const SimTime now = node_.sim().now();
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.expires <= now) {
      if (it->second.valid) {
        // Expired active route: invalidate first, delete after DELETE_PERIOD.
        it->second.valid = false;
        it->second.expires = now + cfg_.delete_period;
        ++it;
      } else {
        it = routes_.erase(it);
      }
    } else {
      ++it;
    }
  }
  std::erase_if(rreq_seen_, [now](const auto& kv) { return kv.second <= now; });
  if (cfg_.use_hello) {
    const SimTime horizon =
        now - static_cast<std::int64_t>(cfg_.allowed_hello_loss) * cfg_.hello_interval;
    for (auto& [nbr, last] : hello_heard_) {
      if (last < horizon) {
        Rerr rerr;
        invalidate_routes_via(nbr, rerr);
        if (!rerr.unreachable.empty()) {
          Packet out;
          out.kind = PacketKind::kRoutingControl;
          out.ip.src = node_.id();
          out.routing = std::make_unique<Rerr>(rerr);
          broadcast_control(std::move(out), 1);
        }
      }
    }
    std::erase_if(hello_heard_, [horizon](const auto& kv) { return kv.second < horizon; });
  }
  node_.sim().schedule(seconds(1), [this] { periodic_purge(); });
}

void Aodv::send_hello() {
  Hello hello;
  hello.origin = node_.id();
  hello.seq = seq_;
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.routing = std::make_unique<Hello>(hello);
  broadcast_control(std::move(pkt), 1);
  node_.sim().schedule(cfg_.hello_interval + microseconds(rng_.uniform_int(-50'000, 50'000)),
                       [this] { send_hello(); });
}

void Aodv::broadcast_control(Packet pkt, std::uint8_t ttl) {
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = ttl;
  pkt.ip.proto = IpProto::kRouting;
  node_.send_broadcast(std::move(pkt));
}

void Aodv::unicast_control(Packet pkt, NodeId next_hop) {
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  node_.send_with_next_hop(std::move(pkt), next_hop);
}

std::optional<Aodv::RouteInfo> Aodv::route_to(NodeId dst) const {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return std::nullopt;
  return RouteInfo{it->second.next_hop, it->second.hops, it->second.valid};
}

}  // namespace manet::aodv
