// AODV control-message bodies (RFC 3561 §5), carried as routing payloads.
// Byte sizes match the RFC's fixed formats so NRL-in-bytes is faithful.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "packet/packet.hpp"

namespace manet::aodv {

struct Rreq final : RoutingPayloadBase<Rreq> {
  std::uint32_t rreq_id = 0;
  NodeId origin = 0;
  NodeId dest = 0;
  std::uint32_t origin_seq = 0;
  std::uint32_t dest_seq = 0;
  bool unknown_dest_seq = true;  ///< the RFC's U flag
  bool dest_only = false;        ///< the RFC's D flag
  std::uint8_t hop_count = 0;

  [[nodiscard]] std::size_t size_bytes() const override { return 24; }
};

struct Rrep final : RoutingPayloadBase<Rrep> {
  NodeId origin = 0;  ///< the node the reply travels back to
  NodeId dest = 0;    ///< the node the route leads to
  std::uint32_t dest_seq = 0;
  std::uint8_t hop_count = 0;  ///< hops from the replier to dest
  SimTime lifetime = SimTime::zero();

  [[nodiscard]] std::size_t size_bytes() const override { return 20; }
};

struct Rerr final : RoutingPayloadBase<Rerr> {
  /// (destination, incremented destination sequence number) pairs.
  std::vector<std::pair<NodeId, std::uint32_t>> unreachable;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 8 * unreachable.size();
  }
};

/// Hello messages are RREPs with hop_count 0 addressed to TTL-1 broadcast;
/// we keep a distinct type for clarity (same 20-byte size).
struct Hello final : RoutingPayloadBase<Hello> {
  NodeId origin = 0;
  std::uint32_t seq = 0;

  [[nodiscard]] std::size_t size_bytes() const override { return 20; }
};

}  // namespace manet::aodv
