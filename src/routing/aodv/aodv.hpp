// Ad hoc On-demand Distance Vector routing (RFC 3561).
//
// The reactive distance-vector protocol of the comparison. Routes are built
// on demand by flooding a Route Request (RREQ) and unicasting a Route Reply
// (RREP) back along the reverse path; loop freedom comes from per-destination
// sequence numbers. Implemented here:
//   * expanding-ring search (TTL_START/INCREMENT/THRESHOLD) with binary
//     exponential RREQ retry backoff — togglable for the ablation bench;
//   * intermediate-node RREPs when a fresh-enough route is cached
//     (suppressed by the destination-only flag);
//   * precursor lists and Route Error (RERR) propagation on link failure,
//     with link breaks detected via 802.11 link-layer feedback (the CMU
//     ns-2 configuration this paper family used) — periodic HELLOs are
//     available behind a config flag but default off;
//   * a 64-packet / 30 s send buffer during discovery.
// Omitted (noted in DESIGN.md): gratuitous RREPs, local repair, multicast.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/node.hpp"
#include "routing/aodv/aodv_messages.hpp"
#include "routing/common.hpp"

namespace manet::aodv {

struct Config {
  SimTime active_route_timeout = seconds(10);  // with LL feedback (ns-2 value)
  SimTime my_route_timeout = seconds(20);      // 2 * active_route_timeout
  SimTime node_traversal_time = milliseconds(40);
  std::uint8_t net_diameter = 35;
  int rreq_retries = 2;
  SimTime rreq_id_lifetime = seconds(6);  // PATH_DISCOVERY_TIME
  SimTime delete_period = seconds(15);
  // Expanding-ring search (RFC defaults); disabled -> every RREQ is
  // network-wide (ablation bench abl_aodv_ers).
  bool expanding_ring = true;
  std::uint8_t ttl_start = 1;
  std::uint8_t ttl_increment = 2;
  std::uint8_t ttl_threshold = 7;
  /// Allow intermediate nodes with fresh routes to answer RREQs.
  bool intermediate_reply = true;
  /// RFC 3561 §6.12 local repair: an intermediate node that loses the link
  /// for a data packet buffers it and runs its own scoped discovery for the
  /// destination instead of discarding. The RERR is still sent immediately
  /// (without the 'N' flag subtlety), so upstream reacts either way.
  bool local_repair = false;
  /// Periodic HELLO beacons (off: rely on link-layer feedback only).
  bool use_hello = false;
  SimTime hello_interval = seconds(1);
  int allowed_hello_loss = 2;
};

class Aodv final : public RoutingProtocol {
 public:
  Aodv(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_link_failure(const Packet& pkt, NodeId next_hop) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "AODV"; }

  // -- introspection (tests) ---------------------------------------------------
  struct RouteInfo {
    NodeId next_hop;
    std::uint8_t hops;
    bool valid;
  };
  [[nodiscard]] std::optional<RouteInfo> route_to(NodeId dst) const;
  [[nodiscard]] std::size_t buffered_packets() { return buffer_.size(); }

 private:
  struct Route {
    std::uint32_t dest_seq = 0;
    bool valid_seq = false;
    std::uint8_t hops = 0;
    NodeId next_hop = 0;
    SimTime expires = SimTime::zero();
    bool valid = false;
    std::unordered_set<NodeId> precursors;
  };

  struct Discovery {
    int retries = 0;
    std::uint8_t ttl = 0;
    EventId timer = kInvalidEventId;
  };

  // -- control handling ---------------------------------------------------------
  void handle_rreq(const Packet& pkt, const Rreq& rreq, NodeId from);
  void handle_rrep(const Packet& pkt, const Rrep& rrep, NodeId from);
  void handle_rerr(const Rerr& rerr, NodeId from);
  void handle_hello(const Hello& hello, NodeId from);

  // -- machinery ------------------------------------------------------------
  void send_rreq(NodeId dst);
  void rreq_timeout(NodeId dst);
  void send_rrep_as_dest(const Rreq& rreq, NodeId back);
  void send_rrep_as_intermediate(const Rreq& rreq, const Route& rt, NodeId back);
  void broadcast_control(Packet pkt, std::uint8_t ttl);
  void unicast_control(Packet pkt, NodeId next_hop);
  /// Create or refresh the 1-hop route to a neighbour we heard from.
  void touch_neighbor(NodeId nbr);
  /// Update the route to `dst` if the offered one is fresher/shorter.
  bool update_route(NodeId dst, std::uint32_t seq, bool valid_seq, std::uint8_t hops,
                    NodeId next_hop, SimTime lifetime);
  void invalidate_routes_via(NodeId next_hop, Rerr& out);
  void flush_buffer(NodeId dst);
  void periodic_purge();
  void send_hello();
  [[nodiscard]] SimTime ring_traversal_time(std::uint8_t ttl) const;

  Config cfg_;
  RngStream rng_;
  PacketBuffer buffer_;

  std::uint32_t seq_ = 0;       // own sequence number
  std::uint32_t rreq_id_ = 0;   // own RREQ id counter
  /// Ordered map: invalidate_routes_via() and periodic_purge() walk the table
  /// while emitting RERRs, so iteration order reaches the event queue.
  std::map<NodeId, Route> routes_;
  std::unordered_map<NodeId, Discovery> discovering_;
  /// Seen RREQ (origin, id) pairs with expiry, for duplicate suppression.
  std::unordered_map<std::uint64_t, SimTime> rreq_seen_;
  /// Last HELLO heard per neighbour (only when use_hello). Ordered map:
  /// periodic_purge() broadcasts one RERR per silent neighbour in table order.
  std::map<NodeId, SimTime> hello_heard_;
};

}  // namespace manet::aodv
