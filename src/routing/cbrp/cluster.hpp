// CBRP cluster formation logic (draft-ietf-manet-cbrp-spec).
//
// Pure decision functions, separated from the protocol so clustering
// invariants can be property-tested over random neighbourhoods:
//   * lowest-id election: an undecided node whose id is the smallest among
//     its undecided neighbours becomes a clusterhead; a node hearing a
//     clusterhead joins it as a member;
//   * head contention: when two heads come into range, the higher-id one
//     eventually steps down (the protocol counts consecutive contested
//     observations before acting, giving transient contacts a grace period);
//   * gateway determination: a member that can reach more than one cluster
//     (it hears two heads, or hears a member affiliated to a foreign head).
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace manet::cbrp {

enum class Role : std::uint8_t { kUndecided, kMember, kHead };

struct NeighborSummary {
  NodeId id = 0;
  Role role = Role::kUndecided;
  NodeId head = kBroadcast;  ///< affiliation (kBroadcast = none)
};

/// Role a (non-head) node should take given its neighbourhood.
/// Returns kMember if any neighbour is a head, kHead if the node's id is the
/// smallest among itself and its undecided neighbours, else kUndecided.
[[nodiscard]] Role decide_role(NodeId self, const std::vector<NeighborSummary>& nbrs);

/// True when a head should consider stepping down: a neighbouring head with
/// a smaller id exists.
[[nodiscard]] bool head_contested(NodeId self, const std::vector<NeighborSummary>& nbrs);

/// Lowest-id head among the neighbours (or self_head if still present);
/// kBroadcast when none.
[[nodiscard]] NodeId pick_head(const std::vector<NeighborSummary>& nbrs);

/// Gateway test for a member affiliated to `my_head`.
[[nodiscard]] bool is_gateway(NodeId my_head, const std::vector<NeighborSummary>& nbrs);

}  // namespace manet::cbrp
