#include "routing/cbrp/cbrp.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace manet::cbrp {

namespace {
[[nodiscard]] std::uint64_t rreq_key(NodeId origin, std::uint16_t id) {
  return (static_cast<std::uint64_t>(origin) << 16) | id;
}
constexpr SimTime kRreqSeenLifetime = seconds(30);
}  // namespace

Cbrp::Cbrp(Node& node, const Config& cfg, RngStream rng)
    : RoutingProtocol(node), cfg_(cfg), rng_(rng), buffer_(node.sim(), [&node](const Packet& p, DropReason r) { node.drop(p, r); }) {}

void Cbrp::start() {
  node_.sim().schedule(microseconds(rng_.uniform_int(0, cfg_.hello_interval.ns() / 1000)),
                       [this] { send_hello(); });
}

// ---------------------------------------------------------------------------
// Neighbourhood & clustering
// ---------------------------------------------------------------------------

std::vector<NeighborSummary> Cbrp::neighbor_summaries() const {
  const SimTime now = node_.sim().now();
  std::vector<NeighborSummary> out;
  for (const auto& [id, nb] : neighbors_) {
    if (nb.expires > now) out.push_back(NeighborSummary{id, nb.role, nb.head});
  }
  std::sort(out.begin(), out.end(),
            [](const NeighborSummary& a, const NeighborSummary& b) { return a.id < b.id; });
  return out;
}

bool Cbrp::is_bidirectional_neighbor(NodeId id) const {
  const auto it = neighbors_.find(id);
  return it != neighbors_.end() && it->second.expires > node_.sim().now() &&
         it->second.lists_us;
}

std::vector<NodeId> Cbrp::neighbor_ids() const {
  std::vector<NodeId> out;
  for (const auto& n : neighbor_summaries()) out.push_back(n.id);
  return out;
}

void Cbrp::update_role() {
  const auto nbrs = neighbor_summaries();
  if (role_ == Role::kHead) {
    if (head_contested(node_.id(), nbrs)) {
      if (++contested_rounds_ >= cfg_.contention_rounds) {
        role_ = Role::kMember;
        head_ = pick_head(nbrs);
        contested_rounds_ = 0;
      }
    } else {
      contested_rounds_ = 0;
    }
  } else {
    Role decided = decide_role(node_.id(), nbrs);
    // Listen before electing: self-election is only allowed once we have
    // had a chance to hear our neighbourhood. Joining an existing head is
    // always allowed.
    if (decided == Role::kHead && hello_rounds_ < cfg_.listen_rounds) {
      decided = Role::kUndecided;
    }
    role_ = decided;
    head_ = (role_ == Role::kHead) ? node_.id()
            : (role_ == Role::kMember) ? pick_head(nbrs)
                                       : kBroadcast;
  }
  gateway_ = role_ == Role::kMember && is_gateway(head_, nbrs);

  // Cluster-role consistency after every transition: a head heads itself, a
  // member joined some *other* existing head, an undecided node has none, and
  // only members can bridge clusters as gateways.
  const long long now_ns = node_.sim().now().ns();
  MANET_ASSERT_MSG(role_ != Role::kHead || head_ == node_.id(),
                   "node %u t=%lldns: HEAD role but head_=%u", node_.id(), now_ns, head_);
  MANET_ASSERT_MSG(role_ != Role::kMember || (head_ != node_.id() && head_ != kBroadcast),
                   "node %u t=%lldns: MEMBER role with invalid head_=%u", node_.id(), now_ns,
                   head_);
  MANET_ASSERT_MSG(role_ != Role::kUndecided || head_ == kBroadcast,
                   "node %u t=%lldns: UNDECIDED role but head_=%u", node_.id(), now_ns, head_);
  MANET_ASSERT_MSG(!gateway_ || role_ == Role::kMember,
                   "node %u t=%lldns: gateway flag outside MEMBER role (role=%d)", node_.id(),
                   now_ns, static_cast<int>(role_));
}

void Cbrp::send_hello() {
  // Expire stale neighbours first, then re-evaluate the cluster structure.
  const SimTime now = node_.sim().now();
  std::erase_if(neighbors_, [now](const auto& kv) { return kv.second.expires <= now; });
  update_role();
  ++hello_rounds_;

  auto hello = std::make_unique<Hello>();
  hello->role = role_;
  hello->head = head_;
  hello->neighbors = neighbor_summaries();
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = 1;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(hello);
  node_.send_broadcast(std::move(pkt));

  const std::int64_t q = cfg_.hello_interval.ns() / 4;
  node_.sim().schedule(cfg_.hello_interval + nanoseconds(rng_.uniform_int(-q, q)),
                       [this] { send_hello(); });
}

void Cbrp::handle_hello(const Hello& hello, NodeId from) {
  Neighbor& nb = neighbors_[from];
  nb.role = hello.role;
  nb.head = hello.head;
  nb.expires = node_.sim().now() + cfg_.neighb_hold;
  nb.their_neighbors = hello.neighbors;
  nb.lists_us = std::any_of(
      hello.neighbors.begin(), hello.neighbors.end(),
      [me = node_.id()](const NeighborSummary& s) { return s.id == me; });
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

void Cbrp::route_packet(Packet pkt) {
  if (pkt.routing != nullptr) {
    forward_with_route(std::move(pkt));
    return;
  }
  originate(std::move(pkt));
}

void Cbrp::originate(Packet pkt) {
  const NodeId dst = pkt.ip.dst;
  // Direct neighbour: no discovery needed (two-hop clusters make this common).
  if (is_bidirectional_neighbor(dst)) {
    auto sr = std::make_unique<SourceRoute>();
    sr->path = {node_.id(), dst};
    sr->next_index = 1;
    pkt.routing = std::move(sr);
    node_.send_with_next_hop(std::move(pkt), dst);
    return;
  }
  const auto it = route_table_.find(dst);
  if (it != route_table_.end() && it->second.expires > node_.sim().now()) {
    auto sr = std::make_unique<SourceRoute>();
    sr->path = it->second.path;
    sr->next_index = 1;
    const NodeId next = sr->path[1];
    pkt.routing = std::move(sr);
    node_.send_with_next_hop(std::move(pkt), next);
    return;
  }
  buffer_.push(std::move(pkt), dst);
  if (!discovering_.contains(dst)) {
    Discovery d;
    d.req_id = next_req_id_++;
    discovering_.emplace(dst, d);
    send_rreq(dst);
  }
}

void Cbrp::forward_with_route(Packet pkt) {
  auto* sr = dynamic_cast<SourceRoute*>(pkt.routing.mutate());
  if (sr == nullptr || sr->next_index >= sr->path.size() ||
      sr->path[sr->next_index] != node_.id() || sr->next_index + 1 >= sr->path.size()) {
    node_.drop(pkt, DropReason::kProtocol);
    return;
  }
  std::size_t next = sr->next_index + 1;
  if (cfg_.route_shortening) {
    // Skip ahead to the furthest listed node we can reach directly.
    for (std::size_t j = sr->path.size() - 1; j > next; --j) {
      if (is_bidirectional_neighbor(sr->path[j])) {
        next = j;
        break;
      }
    }
  }
  sr->next_index = next;
  const NodeId hop = sr->path[next];
  node_.send_with_next_hop(std::move(pkt), hop);
}

// ---------------------------------------------------------------------------
// Route discovery
// ---------------------------------------------------------------------------

void Cbrp::send_rreq(NodeId target) {
  auto& d = discovering_.at(target);
  auto rreq = std::make_unique<Rreq>();
  rreq->origin = node_.id();
  rreq->target = target;
  rreq->req_id = d.req_id;
  rreq->record = {node_.id()};
  rreq_seen_[rreq_key(node_.id(), d.req_id)] = node_.sim().now() + kRreqSeenLifetime;

  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = kBroadcast;
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  pkt.routing = std::move(rreq);
  node_.send_broadcast(std::move(pkt));

  SimTime timeout = cfg_.first_timeout;
  for (int i = 0; i < d.retries && timeout < cfg_.max_timeout; ++i) timeout = 2 * timeout;
  timeout = std::min(timeout, cfg_.max_timeout);
  d.timer = node_.sim().schedule(timeout, [this, target] { rreq_timeout(target); });
}

void Cbrp::rreq_timeout(NodeId target) {
  auto it = discovering_.find(target);
  if (it == discovering_.end()) return;
  Discovery& d = it->second;
  ++d.retries;
  if (d.retries > cfg_.max_retries) {
    discovering_.erase(it);
    buffer_.drop_all(target, DropReason::kNoRoute);
    return;
  }
  d.req_id = next_req_id_++;
  send_rreq(target);
}

void Cbrp::handle_rreq(const Packet& pkt, const Rreq& rreq, NodeId /*from*/) {
  if (rreq.origin == node_.id()) return;
  const std::uint64_t key = rreq_key(rreq.origin, rreq.req_id);
  if (auto it = rreq_seen_.find(key); it != rreq_seen_.end() && it->second > node_.sim().now()) {
    return;
  }
  rreq_seen_[key] = node_.sim().now() + kRreqSeenLifetime;
  if (std::find(rreq.record.begin(), rreq.record.end(), node_.id()) != rreq.record.end()) {
    return;
  }

  if (rreq.target == node_.id()) {
    Path full = rreq.record;
    full.push_back(node_.id());
    send_rrep(std::move(full));
    return;
  }

  // CBRP's flooding optimization: only clusterheads and gateways relay.
  if (role_ != Role::kHead && !gateway_) return;
  if (pkt.ip.ttl <= 1) return;
  Packet fwd = pkt;
  --fwd.ip.ttl;
  auto body = std::make_unique<Rreq>(rreq);
  body->record.push_back(node_.id());
  fwd.routing = std::move(body);
  node_.sim().schedule(broadcast_jitter(rng_), [this, fwd = std::move(fwd)]() mutable {
    node_.send_broadcast(std::move(fwd));
  });
}

void Cbrp::send_rrep(Path path) {
  MANET_EXPECTS(path.size() >= 2);
  const auto self_it = std::find(path.begin(), path.end(), node_.id());
  MANET_ASSERT(self_it != path.end());
  const auto my_index = static_cast<std::size_t>(self_it - path.begin());
  MANET_ASSERT(my_index >= 1);

  auto rrep = std::make_unique<Rrep>();
  rrep->path = std::move(path);
  rrep->back_index = my_index - 1;
  const NodeId next = rrep->path[my_index - 1];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rrep->path.front();
  pkt.routing = std::move(rrep);
  unicast_control(std::move(pkt), next, kBroadcast);
}

void Cbrp::handle_rrep(const Rrep& rrep) {
  if (rrep.back_index == 0 || rrep.path[rrep.back_index] != node_.id()) {
    if (rrep.path.front() == node_.id()) {
      const NodeId target = rrep.path.back();
      route_table_[target] =
          CachedRoute{rrep.path, node_.sim().now() + cfg_.route_lifetime};
      if (auto it = discovering_.find(target); it != discovering_.end()) {
        node_.sim().cancel(it->second.timer);
        discovering_.erase(it);
      }
      flush_buffer(target);
    }
    return;
  }
  auto body = std::make_unique<Rrep>(rrep);
  --body->back_index;
  const NodeId next = body->path[body->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = body->path.front();
  pkt.routing = std::move(body);
  unicast_control(std::move(pkt), next, kBroadcast);
}

// ---------------------------------------------------------------------------
// Maintenance: local repair, route errors
// ---------------------------------------------------------------------------

std::optional<NodeId> Cbrp::neighbor_reaching(NodeId target, NodeId exclude) const {
  const SimTime now = node_.sim().now();
  std::optional<NodeId> best;
  for (const auto& [id, nb] : neighbors_) {
    if (id == exclude || nb.expires <= now || !nb.lists_us) continue;
    const bool reaches = std::any_of(
        nb.their_neighbors.begin(), nb.their_neighbors.end(),
        [target](const NeighborSummary& s) { return s.id == target; });
    if (reaches && (!best || id < *best)) best = id;
  }
  return best;
}

bool Cbrp::try_local_repair(Packet& pkt, NodeId broken_to) {
  auto* sr = dynamic_cast<SourceRoute*>(pkt.routing.mutate());
  if (sr == nullptr || sr->repair_count >= cfg_.max_repairs) return false;
  // We are path[i]; the link to path[i+1] == broken_to broke. Patch through a
  // neighbour that reaches the broken node (or the node after it, skipping
  // the unreachable hop entirely when possible).
  const std::size_t i = sr->next_index - 1;
  if (sr->next_index >= sr->path.size() || sr->path[sr->next_index] != broken_to ||
      i >= sr->path.size() || sr->path[i] != node_.id()) {
    return false;
  }
  NodeId rejoin = broken_to;
  std::optional<NodeId> helper;
  if (sr->next_index + 1 < sr->path.size()) {
    rejoin = sr->path[sr->next_index + 1];
    helper = neighbor_reaching(rejoin, broken_to);
    if (helper) {
      // Splice: ... me, helper, rejoin, ... (drop broken_to).
      Path patched(sr->path.begin(), sr->path.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      patched.push_back(*helper);
      patched.insert(patched.end(),
                     sr->path.begin() + static_cast<std::ptrdiff_t>(sr->next_index) + 1,
                     sr->path.end());
      sr->path = std::move(patched);
      sr->next_index = i + 1;
      ++sr->repair_count;
      return true;
    }
  }
  helper = neighbor_reaching(broken_to, broken_to);
  if (!helper) return false;
  Path patched(sr->path.begin(), sr->path.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  patched.push_back(*helper);
  patched.insert(patched.end(), sr->path.begin() + static_cast<std::ptrdiff_t>(sr->next_index),
                 sr->path.end());
  sr->path = std::move(patched);
  sr->next_index = i + 1;
  ++sr->repair_count;
  return true;
}

void Cbrp::on_link_failure(const Packet& pkt, NodeId next_hop) {
  // Fast neighbour-loss detection: stop believing in the link immediately.
  neighbors_.erase(next_hop);

  if (pkt.kind == PacketKind::kRoutingControl) return;
  const auto* sr = dynamic_cast<const SourceRoute*>(pkt.routing.get());
  if (sr == nullptr) {
    node_.drop(pkt, DropReason::kMacRetryLimit);
    return;
  }

  if (pkt.ip.src == node_.id()) {
    route_table_.erase(pkt.ip.dst);
    Packet retry = pkt;
    retry.routing = nullptr;
    originate(std::move(retry));
    return;
  }

  if (cfg_.local_repair) {
    Packet patched = pkt;
    if (try_local_repair(patched, next_hop)) {
      const auto* psr = dynamic_cast<const SourceRoute*>(patched.routing.get());
      const NodeId hop = psr->path[psr->next_index];
      node_.send_with_next_hop(std::move(patched), hop);
      return;
    }
  }

  if (sr->next_index >= 1) {
    const std::size_t my_index = sr->next_index - 1;
    if (my_index < sr->path.size() && sr->path[my_index] == node_.id() && my_index >= 1) {
      send_rerr(sr->path, my_index, next_hop);
    }
  }
  node_.drop(pkt, DropReason::kMacRetryLimit);
}

void Cbrp::send_rerr(const Path& data_path, std::size_t my_index, NodeId broken_to) {
  auto rerr = std::make_unique<Rerr>();
  rerr->broken_from = node_.id();
  rerr->broken_to = broken_to;
  rerr->back_path =
      Path(data_path.begin(), data_path.begin() + static_cast<std::ptrdiff_t>(my_index) + 1);
  rerr->back_index = my_index;
  if (rerr->back_path.size() < 2) return;
  --rerr->back_index;
  const NodeId next = rerr->back_path[rerr->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = rerr->back_path.front();
  pkt.routing = std::move(rerr);
  unicast_control(std::move(pkt), next, kBroadcast);
}

void Cbrp::handle_rerr(const Rerr& rerr) {
  if (rerr.back_index == 0 || rerr.back_path[rerr.back_index] != node_.id()) {
    if (rerr.back_path.front() == node_.id()) {
      // Invalidate every cached route using the broken link.
      std::erase_if(route_table_, [&](const auto& kv) {
        const Path& p = kv.second.path;
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          if (p[i] == rerr.broken_from && p[i + 1] == rerr.broken_to) return true;
        }
        return false;
      });
    }
    return;
  }
  auto body = std::make_unique<Rerr>(rerr);
  --body->back_index;
  const NodeId next = body->back_path[body->back_index];
  Packet pkt;
  pkt.kind = PacketKind::kRoutingControl;
  pkt.ip.src = node_.id();
  pkt.ip.dst = body->back_path.front();
  pkt.routing = std::move(body);
  unicast_control(std::move(pkt), next, kBroadcast);
}

// ---------------------------------------------------------------------------

void Cbrp::on_control(const Packet& pkt, NodeId from) {
  MANET_ASSERT(pkt.routing != nullptr);
  if (const auto* hello = dynamic_cast<const Hello*>(pkt.routing.get())) {
    handle_hello(*hello, from);
  } else if (const auto* rreq = dynamic_cast<const Rreq*>(pkt.routing.get())) {
    handle_rreq(pkt, *rreq, from);
  } else if (const auto* rrep = dynamic_cast<const Rrep*>(pkt.routing.get())) {
    handle_rrep(*rrep);
  } else if (const auto* rerr = dynamic_cast<const Rerr*>(pkt.routing.get())) {
    handle_rerr(*rerr);
  }
}

void Cbrp::unicast_control(Packet pkt, NodeId next_hop, NodeId /*final_dst*/) {
  pkt.ip.ttl = kInitialTtl;
  pkt.ip.proto = IpProto::kRouting;
  node_.send_with_next_hop(std::move(pkt), next_hop);
}

void Cbrp::flush_buffer(NodeId dst) {
  for (Packet& pkt : buffer_.take(dst)) route_packet(std::move(pkt));
}

void Cbrp::on_node_restart() {
  // Cold reboot: back to an UNDECIDED node with an empty neighbour table —
  // cluster formation restarts from the listening phase, exactly like a
  // node freshly joining the network. next_req_id_ survives (see DSR).
  // manet-lint: order-independent - only cancels timers; no packet is emitted
  for (auto& [target, d] : discovering_) node_.sim().cancel(d.timer);
  discovering_.clear();
  neighbors_.clear();
  route_table_.clear();
  rreq_seen_.clear();
  buffer_.clear(DropReason::kNodeDown);
  role_ = Role::kUndecided;
  head_ = kBroadcast;
  gateway_ = false;
  contested_rounds_ = 0;
  hello_rounds_ = 0;
}

}  // namespace manet::cbrp
