// Cluster Based Routing Protocol (Jiang, Li & Tay,
// draft-ietf-manet-cbrp-spec) — the third protocol of Boukerche's IPPS 2001
// comparison.
//
// CBRP organizes the network into lowest-id clusters and restricts route-
// discovery flooding to clusterheads and gateways (the nodes bridging
// adjacent clusters), trading periodic HELLO overhead for far cheaper
// discovery than a blind flood. Implemented:
//   * periodic HELLOs carrying the full neighbour table (giving every node
//     2-hop knowledge) and cluster affiliation;
//   * lowest-id cluster formation with contention grace (a higher-id head
//     steps down after persistently hearing a lower-id head);
//   * gateway detection from neighbour affiliations;
//   * route discovery in which only heads and gateways rebroadcast RREQs,
//     accumulating the actual forwarder path; replies unicast back along it;
//   * source-routed data forwarding with route shortening (skip ahead to
//     the furthest listed node that is a direct neighbour);
//   * local repair on link failure using 2-hop neighbour knowledge, falling
//     back to a route error to the source;
//   * a per-source route table built from replies, plus a send buffer.
#pragma once

#include <map>
#include <unordered_map>

#include "net/node.hpp"
#include "routing/cbrp/cbrp_messages.hpp"
#include "routing/common.hpp"

namespace manet::cbrp {

struct Config {
  SimTime hello_interval = seconds(2);
  SimTime neighb_hold = seconds(6);
  /// Consecutive contested HELLO rounds before a head steps down.
  int contention_rounds = 3;
  /// HELLO rounds spent listening (remaining UNDECIDED) before a node may
  /// elect itself head — without this, every node's first hello fires with
  /// an empty neighbour table and the whole network self-elects at once.
  int listen_rounds = 2;
  SimTime first_timeout = milliseconds(500);  // doubles per retry
  SimTime max_timeout = seconds(10);
  int max_retries = 6;
  SimTime route_lifetime = seconds(60);
  bool route_shortening = true;
  bool local_repair = true;
  int max_repairs = 2;
};

class Cbrp final : public RoutingProtocol {
 public:
  Cbrp(Node& node, const Config& cfg, RngStream rng);

  void start() override;
  void route_packet(Packet pkt) override;
  void on_control(const Packet& pkt, NodeId from) override;
  void on_link_failure(const Packet& pkt, NodeId next_hop) override;
  void on_node_restart() override;
  [[nodiscard]] const char* name() const override { return "CBRP"; }

  // -- introspection (tests) -------------------------------------------------
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] NodeId head() const { return head_; }
  [[nodiscard]] bool gateway() const { return gateway_; }
  [[nodiscard]] std::vector<NodeId> neighbor_ids() const;

 private:
  struct Neighbor {
    Role role = Role::kUndecided;
    NodeId head = kBroadcast;
    bool lists_us = false;  ///< bidirectional confirmation
    SimTime expires = SimTime::zero();
    std::vector<NeighborSummary> their_neighbors;
  };
  struct Discovery {
    std::uint16_t req_id = 0;
    int retries = 0;
    EventId timer = kInvalidEventId;
  };
  struct CachedRoute {
    Path path;
    SimTime expires = SimTime::zero();
  };

  void send_hello();
  void update_role();
  void handle_hello(const Hello& hello, NodeId from);
  void handle_rreq(const Packet& pkt, const Rreq& rreq, NodeId from);
  void handle_rrep(const Rrep& rrep);
  void handle_rerr(const Rerr& rerr);
  void originate(Packet pkt);
  void forward_with_route(Packet pkt);
  void send_rreq(NodeId target);
  void rreq_timeout(NodeId target);
  void send_rrep(Path path);
  void send_rerr(const Path& data_path, std::size_t my_index, NodeId broken_to);
  bool try_local_repair(Packet& pkt, NodeId broken_to);
  void flush_buffer(NodeId dst);
  [[nodiscard]] std::vector<NeighborSummary> neighbor_summaries() const;
  [[nodiscard]] bool is_bidirectional_neighbor(NodeId id) const;
  /// A live neighbour whose own neighbour table contains `target`.
  [[nodiscard]] std::optional<NodeId> neighbor_reaching(NodeId target, NodeId exclude) const;
  void unicast_control(Packet pkt, NodeId next_hop, NodeId final_dst);

  Config cfg_;
  RngStream rng_;
  PacketBuffer buffer_;

  Role role_ = Role::kUndecided;
  NodeId head_ = kBroadcast;
  bool gateway_ = false;
  int contested_rounds_ = 0;
  int hello_rounds_ = 0;

  // Ordered: the neighbour table is iterated when building HELLOs and when
  // picking repair relays, so traversal order must be the id order, not the
  // hash order of whatever libstdc++ this host has.
  std::map<NodeId, Neighbor> neighbors_;
  std::map<NodeId, CachedRoute> route_table_;
  std::unordered_map<NodeId, Discovery> discovering_;
  std::uint16_t next_req_id_ = 1;
  std::unordered_map<std::uint64_t, SimTime> rreq_seen_;
};

}  // namespace manet::cbrp
