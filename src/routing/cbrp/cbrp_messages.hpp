// CBRP control messages and the source-route option its data packets carry.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"
#include "routing/cbrp/cluster.hpp"

namespace manet::cbrp {

using Path = std::vector<NodeId>;

/// Periodic HELLO: the sender's own status plus its full neighbour table —
/// the message that builds 1- and 2-hop knowledge and the cluster structure.
struct Hello final : RoutingPayloadBase<Hello> {
  Role role = Role::kUndecided;
  NodeId head = kBroadcast;  ///< affiliation
  std::vector<NeighborSummary> neighbors;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 8 + 4 + 7 * neighbors.size();
  }
};

struct Rreq final : RoutingPayloadBase<Rreq> {
  NodeId origin = 0;
  NodeId target = 0;
  std::uint16_t req_id = 0;
  Path record;  ///< traversed nodes (origin first, then heads/gateways)

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 8 + 4 * record.size();
  }
};

struct Rrep final : RoutingPayloadBase<Rrep> {
  Path path;                   ///< [origin, ..., target]
  std::size_t back_index = 0;  ///< index of the node currently holding it

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 6 + 4 * path.size();
  }
};

struct Rerr final : RoutingPayloadBase<Rerr> {
  NodeId broken_from = 0;
  NodeId broken_to = 0;
  Path back_path;
  std::size_t back_index = 0;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 12 + 4 * back_path.size();
  }
};

struct SourceRoute final : RoutingPayloadBase<SourceRoute> {
  Path path;
  std::size_t next_index = 1;
  int repair_count = 0;

  [[nodiscard]] std::size_t size_bytes() const override {
    return 4 + 4 + 4 * (path.size() >= 2 ? path.size() - 2 : 0);
  }
};

}  // namespace manet::cbrp
