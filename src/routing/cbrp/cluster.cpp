#include "routing/cbrp/cluster.hpp"

#include <algorithm>

namespace manet::cbrp {

Role decide_role(NodeId self, const std::vector<NeighborSummary>& nbrs) {
  bool head_nearby = false;
  bool lowest_undecided = true;
  for (const NeighborSummary& n : nbrs) {
    if (n.role == Role::kHead) head_nearby = true;
    if (n.role == Role::kUndecided && n.id < self) lowest_undecided = false;
  }
  if (head_nearby) return Role::kMember;
  if (lowest_undecided) return Role::kHead;
  return Role::kUndecided;
}

bool head_contested(NodeId self, const std::vector<NeighborSummary>& nbrs) {
  return std::any_of(nbrs.begin(), nbrs.end(), [self](const NeighborSummary& n) {
    return n.role == Role::kHead && n.id < self;
  });
}

NodeId pick_head(const std::vector<NeighborSummary>& nbrs) {
  NodeId best = kBroadcast;
  for (const NeighborSummary& n : nbrs) {
    if (n.role == Role::kHead && n.id < best) best = n.id;
  }
  return best;
}

bool is_gateway(NodeId my_head, const std::vector<NeighborSummary>& nbrs) {
  for (const NeighborSummary& n : nbrs) {
    if (n.role == Role::kHead && n.id != my_head) return true;
    if (n.role == Role::kMember && n.head != my_head && n.head != kBroadcast) return true;
  }
  return false;
}

}  // namespace manet::cbrp
