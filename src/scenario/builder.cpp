#include "scenario/builder.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/assert.hpp"
#include "core/shard.hpp"

namespace manet {

ScenarioBuilder ScenarioBuilder::from(const ScenarioConfig& cfg) {
  ScenarioBuilder b;
  b.cfg_ = cfg;
  return b;
}

ScenarioBuilder& ScenarioBuilder::protocol(Protocol p) {
  cfg_.protocol = p;
  protocol_name_.clear();
  return *this;
}

ScenarioBuilder& ScenarioBuilder::protocol(std::string_view name) {
  protocol_name_ = name;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  cfg_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::nodes(std::uint32_t count) {
  cfg_.num_nodes = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::area(double width_m, double height_m) {
  cfg_.area = Area{width_m, height_m};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::static_nodes(bool on) {
  cfg_.static_nodes = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mobility(MobilityKind kind) {
  cfg_.mobility = kind;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::speed(double v_min_mps, double v_max_mps) {
  cfg_.v_min = v_min_mps;
  cfg_.v_max = v_max_mps;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pause(SimTime pause) {
  cfg_.pause = pause;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::connections(std::uint32_t count) {
  cfg_.num_connections = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::payload(std::size_t bytes) {
  cfg_.payload_bytes = bytes;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::traffic(TrafficKind kind) {
  cfg_.traffic = kind;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cbr_interval(SimTime interval) {
  cfg_.cbr_interval = interval;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::transport(const TransportConfig& transport) {
  cfg_.transport = transport;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duration(SimTime duration) {
  cfg_.duration = duration;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shards(std::uint32_t count) {
  cfg_.shards = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault(const FaultConfig& fault) {
  cfg_.fault = fault;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trace(std::string path) {
  cfg_.trace_path = std::move(path);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::measure_connectivity(bool on) {
  cfg_.measure_connectivity = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::phy(const PhyConfig& phy) {
  cfg_.phy = phy;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mac(const MacConfig& mac) {
  cfg_.mac = mac;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::frame_loss(double rate) {
  cfg_.phy.frame_loss_rate = rate;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::urban(double street_width_m, double nlos_range_m,
                                        double nlos_loss) {
  cfg_.phy.street_width_m = street_width_m;
  cfg_.phy.nlos_rx_range_m = nlos_range_m;
  cfg_.phy.nlos_loss_rate = nlos_loss;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::with(const std::function<void(ScenarioConfig&)>& fn) {
  MANET_EXPECTS(fn != nullptr);
  fn(cfg_);
  return *this;
}

namespace {

/// "AODV, DSR, ..." — the registry's names, for the unknown-name message.
std::string registered_names() {
  std::ostringstream os;
  bool first = true;
  for (const routing::ProtocolEntry& e : protocol_registry()) {
    os << (first ? "" : ", ") << e.name;
    first = false;
  }
  return os.str();
}

}  // namespace

ScenarioConfig ScenarioBuilder::build() const {
  ScenarioConfig cfg = cfg_;

  if (!protocol_name_.empty()) {
    const routing::ProtocolEntry* e = protocol_registry().by_name(protocol_name_);
    MANET_EXPECTS_MSG(e != nullptr, "unknown protocol \"%s\" (registered: %s)",
                      protocol_name_.c_str(), registered_names().c_str());
    cfg.protocol = static_cast<Protocol>(e->id);
  }

  MANET_EXPECTS_MSG(cfg.num_nodes >= 2, "a network needs at least 2 nodes, got %u",
                    cfg.num_nodes);
  MANET_EXPECTS_MSG(cfg.area.width > 0.0 && cfg.area.height > 0.0,
                    "area must be positive, got %g x %g m", cfg.area.width, cfg.area.height);
  MANET_EXPECTS_MSG(cfg.duration > SimTime::zero(), "duration must be positive, got %lldns",
                    static_cast<long long>(cfg.duration.ns()));

  if (!cfg.static_nodes) {
    MANET_EXPECTS_MSG(cfg.v_min >= 0.0 && cfg.v_max >= cfg.v_min,
                      "need 0 <= v_min <= v_max, got v_min=%g v_max=%g m/s", cfg.v_min,
                      cfg.v_max);
    MANET_EXPECTS_MSG(cfg.pause >= SimTime::zero(), "pause must be >= 0, got %lldns",
                      static_cast<long long>(cfg.pause.ns()));
  }

  MANET_EXPECTS_MSG(cfg.payload_bytes > 0, "payload must be positive");
  if (cfg.num_connections > 0) {
    MANET_EXPECTS_MSG(cfg.cbr_interval > SimTime::zero(),
                      "traffic interval must be positive, got %lldns",
                      static_cast<long long>(cfg.cbr_interval.ns()));
    MANET_EXPECTS_MSG(cfg.cbr_start <= cfg.duration,
                      "traffic starts at %.3fs, after the run ends at %.3fs",
                      cfg.cbr_start.sec(), cfg.duration.sec());
  }

  MANET_EXPECTS_MSG(cfg.shards <= kMaxShards, "shards=%u exceeds the kernel cap of %u",
                    cfg.shards, kMaxShards);

  if (cfg.transport.enabled) {
    const TransportConfig& t = cfg.transport;
    MANET_EXPECTS_MSG(
        t.rto_min > SimTime::zero() && t.rto_min <= t.rto_initial && t.rto_initial <= t.rto_max,
        "transport rto bounds need 0 < rto_min <= rto_initial <= rto_max, got min=%.3fs "
        "initial=%.3fs max=%.3fs",
        t.rto_min.sec(), t.rto_initial.sec(), t.rto_max.sec());
    MANET_EXPECTS_MSG(t.cwnd_init >= 1 && t.cwnd_init <= t.cwnd_max,
                      "transport cwnd needs 1 <= cwnd_init <= cwnd_max, got init=%u max=%u",
                      t.cwnd_init, t.cwnd_max);
    MANET_EXPECTS_MSG(t.max_retx >= 1, "transport.max_retx must be >= 1, got %u", t.max_retx);
    MANET_EXPECTS_MSG(t.buffer_packets >= t.cwnd_max,
                      "transport.buffer_packets must be >= cwnd_max, got buffer=%u cwnd_max=%u",
                      t.buffer_packets, t.cwnd_max);
  }

  MANET_EXPECTS_MSG(cfg.phy.frame_loss_rate >= 0.0 && cfg.phy.frame_loss_rate < 1.0,
                    "frame_loss_rate must be in [0, 1), got %g", cfg.phy.frame_loss_rate);

  MANET_EXPECTS_MSG(cfg.phy.street_width_m >= 0.0, "street_width_m must be >= 0, got %g",
                    cfg.phy.street_width_m);
  if (cfg.phy.urban()) {
    MANET_EXPECTS_MSG(
        cfg.phy.nlos_rx_range_m > 0.0 && cfg.phy.nlos_rx_range_m <= cfg.phy.rx_range_m,
        "nlos_rx_range_m must be in (0, rx_range], got %g (rx_range %g)",
        cfg.phy.nlos_rx_range_m, cfg.phy.rx_range_m);
    MANET_EXPECTS_MSG(cfg.phy.nlos_loss_rate >= 0.0 && cfg.phy.nlos_loss_rate < 1.0,
                      "nlos_loss_rate must be in [0, 1), got %g", cfg.phy.nlos_loss_rate);
  }

  if (cfg.fault.enabled()) {
    const FaultConfig& f = cfg.fault;
    MANET_EXPECTS_MSG(f.crash_rate >= 0.0, "crash_rate must be >= 0, got %g", f.crash_rate);
    MANET_EXPECTS_MSG(f.link_blackouts >= 0, "link_blackouts must be >= 0, got %d",
                      f.link_blackouts);
    MANET_EXPECTS_MSG(f.corrupt_rate >= 0.0 && f.corrupt_rate <= 1.0,
                      "corrupt_rate must be in [0, 1], got %g", f.corrupt_rate);
    MANET_EXPECTS_MSG(f.partition_frac >= 0.0 && f.partition_frac <= 1.0,
                      "partition_frac must be in [0, 1], got %g", f.partition_frac);
    MANET_EXPECTS_MSG(f.window_from < cfg.duration,
                      "fault window opens at %.3fs, after the run ends at %.3fs",
                      f.window_from.sec(), cfg.duration.sec());
    // Explicit fault windows must open inside the run and close after they
    // open (a zero `until` means "until end of run").
    if (f.corrupt_rate > 0.0) {
      MANET_EXPECTS_MSG(f.corrupt_from < cfg.duration,
                        "corruption window opens at %.3fs, after the run ends at %.3fs",
                        f.corrupt_from.sec(), cfg.duration.sec());
      MANET_EXPECTS_MSG(f.corrupt_until == SimTime::zero() || f.corrupt_until > f.corrupt_from,
                        "corruption window [%.3fs, %.3fs) is empty", f.corrupt_from.sec(),
                        f.corrupt_until.sec());
    }
    if (f.partition) {
      MANET_EXPECTS_MSG(f.partition_from < cfg.duration,
                        "partition opens at %.3fs, after the run ends at %.3fs",
                        f.partition_from.sec(), cfg.duration.sec());
      MANET_EXPECTS_MSG(
          f.partition_until == SimTime::zero() || f.partition_until > f.partition_from,
          "partition window [%.3fs, %.3fs) is empty", f.partition_from.sec(),
          f.partition_until.sec());
    }
  }

  return cfg;
}

ScenarioResult ScenarioBuilder::run() const { return Scenario::run_once(build()); }

ScenarioBuilder urban_scenario(std::uint32_t nodes) {
  // Constant density: the paper's 50 nodes over ~1 km², with the city side
  // quantized to whole 200 m blocks so streets terminate at intersections.
  const double block = 200.0;
  double side = std::sqrt(static_cast<double>(nodes) / 50.0) * 1000.0;
  side = std::max(block, std::round(side / block) * block);
  // Flow count grows sub-linearly so per-node offered load shrinks with city
  // size, as in real urban traces (most nodes are relays, not endpoints).
  const std::uint32_t flows = std::max<std::uint32_t>(10, nodes / 100);
  return ScenarioBuilder()
      .nodes(nodes)
      .area(side, side)
      .mobility(MobilityKind::kManhattan)
      .speed(1.0, 15.0)  // vehicular street speeds
      .connections(flows)
      .urban(/*street_width_m=*/20.0, /*nlos_range_m=*/75.0, /*nlos_loss=*/0.1);
}

}  // namespace manet
