#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/assert.hpp"
#include "core/shard_sentinel.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_mobility.hpp"

namespace manet {

const char* to_string(TrafficKind k) {
  switch (k) {
    case TrafficKind::kCbr: return "CBR/UDP";
    case TrafficKind::kOnOff: return "exponential on/off UDP";
  }
  return "?";
}

const char* to_string(MobilityKind k) {
  switch (k) {
    case MobilityKind::kRandomWaypoint: return "random waypoint";
    case MobilityKind::kRandomWalk: return "random walk";
    case MobilityKind::kGaussMarkov: return "gauss-markov";
    case MobilityKind::kManhattan: return "manhattan";
  }
  return "?";
}

const routing::Registry& protocol_registry() {
  // Function-local static: the registrations run on first use, which
  // sidesteps the static-initialization-order and dropped-initializer
  // hazards of self-registering globals inside static libraries.
  static const routing::Registry kRegistry = [] {
    routing::Registry r;
    using routing::ProtocolEntry;
    using Ptr = std::unique_ptr<RoutingProtocol>;
    // One add() per implementation, in the canonical table order.
    r.add(ProtocolEntry{"AODV", static_cast<std::uint8_t>(Protocol::kAodv),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<aodv::Aodv>(n, c.aodv, rng);
                        }});
    r.add(ProtocolEntry{"DSR", static_cast<std::uint8_t>(Protocol::kDsr),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<dsr::Dsr>(n, c.dsr, rng);
                        }});
    r.add(ProtocolEntry{"CBRP", static_cast<std::uint8_t>(Protocol::kCbrp),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<cbrp::Cbrp>(n, c.cbrp, rng);
                        }});
    r.add(ProtocolEntry{"DSDV", static_cast<std::uint8_t>(Protocol::kDsdv),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<dsdv::Dsdv>(n, c.dsdv, rng);
                        }});
    r.add(ProtocolEntry{"OLSR", static_cast<std::uint8_t>(Protocol::kOlsr),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<olsr::Olsr>(n, c.olsr, rng);
                        }});
    r.add(ProtocolEntry{"LAR", static_cast<std::uint8_t>(Protocol::kLar),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<lar::Lar>(n, c.lar, rng);
                        }});
    r.add(ProtocolEntry{"TORA", static_cast<std::uint8_t>(Protocol::kTora),
                        [](Node& n, const ScenarioConfig& c, RngStream rng) -> Ptr {
                          return std::make_unique<tora::Tora>(n, c.tora, rng);
                        }});
    return r;
  }();
  return kRegistry;
}

const char* to_string(Protocol p) {
  const routing::ProtocolEntry* e = protocol_registry().by_id(static_cast<std::uint8_t>(p));
  return e != nullptr ? e->name : "?";
}

std::string ScenarioConfig::parameter_table() const {
  std::ostringstream os;
  os << "Parameter            | Value\n";
  os << "---------------------+---------------------------\n";
  os << "Connection type      | " << to_string(traffic) << "\n";
  os << "Simulation area      | " << area.width << " x " << area.height << " m\n";
  os << "Transmission range   | " << phy.rx_range_m << " m\n";
  os << "Carrier-sense range  | " << phy.cs_range_m << " m\n";
  os << "Link bandwidth       | " << phy.data_rate_bps / 1e6 << " Mbit/s\n";
  os << "Packet size          | " << payload_bytes << " bytes\n";
  os << "Number of nodes      | " << num_nodes << "\n";
  os << "Duration             | " << duration.sec() << " s\n";
  os << "Pause time           | " << pause.sec() << " s\n";
  os << "Node speed           | " << v_min << " - " << v_max << " m/s\n";
  os << "CBR start            | " << cbr_start.sec() << " s (staggered +"
     << cbr_start_window.sec() << " s)\n";
  os << "CBR rate             | " << 1.0 / cbr_interval.sec() << " packets/s\n";
  os << "Number of connections| " << num_connections << "\n";
  os << "Mobility model       | " << (static_nodes ? "static" : to_string(mobility)) << "\n";
  os << "Interface queue      | " << mac.ifq_capacity << " packets, drop-tail\n";
  return os.str();
}

std::unique_ptr<RoutingProtocol> make_protocol(const ScenarioConfig& cfg, Node& node) {
  const routing::ProtocolEntry* e =
      protocol_registry().by_id(static_cast<std::uint8_t>(cfg.protocol));
  MANET_EXPECTS_MSG(e != nullptr, "no protocol registered for enum value %u",
                    static_cast<unsigned>(cfg.protocol));
  return e->make(node, cfg, RngStream(cfg.seed, "routing", node.id()));
}

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_(cfg) {
  MANET_EXPECTS(cfg.num_nodes >= 2);
  MANET_EXPECTS(cfg.area.width > 0 && cfg.area.height > 0);
}

void Scenario::build() {
  if (built_) return;
  built_ = true;

  channel_ = std::make_unique<Channel>(sim_, cfg_.phy, cfg_.area, milliseconds(250), cfg_.seed);

  // Mobility models come first: the shard assignment is a pure function of
  // the seeded initial placement, so every model must exist before the first
  // node is wired up. All models live in the arena pool, id-ordered and
  // contiguous, so the channel's periodic position refresh — the one loop
  // that must visit every node — walks them sequentially in memory.
  std::vector<MobilityModel*> mobility;
  std::vector<Vec2> positions;
  mobility.reserve(cfg_.num_nodes);
  positions.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    MobilityModel* mob = nullptr;
    RngStream mrng(cfg_.seed, "mobility", i);
    if (cfg_.static_nodes) {
      mob = mobility_pool_.make<StaticMobility>(
          Vec2{mrng.uniform(0.0, cfg_.area.width), mrng.uniform(0.0, cfg_.area.height)});
    } else {
      switch (cfg_.mobility) {
        case MobilityKind::kRandomWaypoint: {
          RandomWaypointConfig wp;
          wp.area = cfg_.area;
          wp.v_min = cfg_.v_min;
          wp.v_max = cfg_.v_max;
          wp.pause = cfg_.pause;
          wp.warmup = cfg_.mobility_warmup;
          mob = mobility_pool_.make<RandomWaypoint>(wp, mrng);
          break;
        }
        case MobilityKind::kRandomWalk: {
          RandomWalkConfig rw;
          rw.area = cfg_.area;
          rw.v_min = cfg_.v_min;
          rw.v_max = cfg_.v_max;
          mob = mobility_pool_.make<RandomWalk>(rw, mrng);
          break;
        }
        case MobilityKind::kGaussMarkov: {
          GaussMarkovConfig gm = cfg_.gauss_markov;
          gm.area = cfg_.area;
          gm.mean_speed = 0.5 * (cfg_.v_min + cfg_.v_max);
          gm.max_speed = cfg_.v_max * 1.25;
          mob = mobility_pool_.make<GaussMarkov>(gm, mrng);
          break;
        }
        case MobilityKind::kManhattan: {
          ManhattanConfig mh = cfg_.manhattan;
          mh.area = cfg_.area;
          mh.v_min = std::max(cfg_.v_min, 0.5);
          mh.v_max = cfg_.v_max;
          mob = mobility_pool_.make<Manhattan>(mh, mrng);
          break;
        }
      }
    }
    positions.push_back(mob->position_at(SimTime::zero()));
    mobility.push_back(mob);
  }

  // Shard the kernel before anything is scheduled. With one shard (the
  // default) the map is the identity and the executive keeps its classic
  // single-queue fast path.
  shards_ = resolve_shard_count(cfg_.shards);
  if (shards_ > 1) {
    shard_map_ = ShardMap::striped(positions, cfg_.area, cfg_.phy.cs_range_m, shards_);
  }
  sim_.configure_shards(shards_);
  // Lookahead: a frame radiated in one shard takes >= min propagation to
  // reach another, and the earliest radiated consequence lags one SIFS
  // turnaround behind that (see DESIGN.md "Parallel kernel").
  const SimTime lookahead = cfg_.phy.min_propagation() + cfg_.mac.sifs;
  if (lookahead > SimTime::zero()) sim_.set_lookahead(lookahead);
  if (shards_ > 1) channel_->set_shards(&shard_map_);

  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    const ShardScope scope(sim_, shard_map_.shard_of(i));
    nodes_.push_back(
        std::make_unique<Node>(sim_, stats_, *channel_, i, mobility[i], cfg_.mac, cfg_.seed));
  }

  if (!cfg_.trace_path.empty()) {
    trace_ = std::make_unique<TraceWriter>(cfg_.trace_path);
    if (trace_->ok()) {
      for (auto& node : nodes_) node->set_trace(trace_.get());
    }
  }

  for (auto& node : nodes_) {
    protocols_.push_back(make_protocol(cfg_, *node));
    node->set_routing(protocols_.back().get());
  }

  // Reliable transport (optional): one endpoint per node, all feeding the
  // shared FlowMonitor. Attached before the traffic sources start so the
  // apps see it and switch to closed-loop mode.
  if (cfg_.transport.enabled) {
    for (auto& node : nodes_) {
      transports_.push_back(
          std::make_unique<ReliableTransport>(*node, cfg_.transport, &flow_monitor_));
      node->set_transport(transports_.back().get());
    }
  }

  // Traffic: `num_connections` distinct (src, dst) pairs, start times
  // staggered uniformly across the start window — the standard cbrgen.tcl
  // recipe.
  RngStream trng(cfg_.seed, "traffic");
  for (std::uint32_t c = 0; c < cfg_.num_connections; ++c) {
    const auto src = static_cast<NodeId>(trng.uniform_int(0, cfg_.num_nodes - 1));
    NodeId dst;
    do {
      dst = static_cast<NodeId>(trng.uniform_int(0, cfg_.num_nodes - 1));
    } while (dst == src);
    flows_.emplace_back(src, dst);
    const SimTime start =
        cfg_.cbr_start + nanoseconds(trng.uniform_int(0, cfg_.cbr_start_window.ns()));
    if (cfg_.traffic == TrafficKind::kCbr) {
      CbrSource::Config cc;
      cc.flow = c;
      cc.dst = dst;
      cc.payload_bytes = cfg_.payload_bytes;
      cc.interval = cfg_.cbr_interval;
      cc.start = start;
      cc.stop = cfg_.duration;
      // manet-lint: cross-shard-audited - build(): single-threaded wiring before the clock starts
      sources_.push_back(std::make_unique<CbrSource>(*nodes_[src], cc));
    } else {
      OnOffSource::Config oc;
      oc.flow = c;
      oc.dst = dst;
      oc.payload_bytes = cfg_.payload_bytes;
      oc.interval = cfg_.cbr_interval;
      oc.burst_mean = cfg_.onoff_burst_mean;
      oc.idle_mean = cfg_.onoff_idle_mean;
      oc.start = start;
      oc.stop = cfg_.duration;
      onoff_sources_.push_back(std::make_unique<OnOffSource>(
          // manet-lint: cross-shard-audited - build(): single-threaded wiring before the clock starts
          *nodes_[src], oc, RngStream(cfg_.seed, "onoff", c)));
    }
  }

  // Fault injection: compile the deterministic schedule and arm each event
  // as an ordinary simulator event. The plan outlives the scheduling lambdas
  // (member storage), so they capture plain references into it.
  if (cfg_.fault.enabled()) {
    fault_plan_ =
        FaultPlan::compile(cfg_.fault, cfg_.num_nodes, cfg_.area, cfg_.duration, cfg_.seed);
    channel_->set_fault(&fault_runtime_);
    channel_->set_stats(&stats_);
    for (const FaultEvent& ev : fault_plan_.events()) {
      sim_.schedule_at(ev.at, [this, &ev] { apply_fault(ev); });
    }
  }

  // Initial timers land on their owner's shard: protocols under their node,
  // traffic sources under the flow's source node, the channel refresh and
  // the samplers below under shard 0 (the coordinator).
  channel_->start();
  for (std::uint32_t i = 0; i < protocols_.size(); ++i) {
    const ShardScope scope(sim_, shard_map_.shard_of(i));
    protocols_[i]->start();
  }
  for (std::size_t c = 0; c < sources_.size(); ++c) {
    const ShardScope scope(sim_, shard_map_.shard_of(flows_[c].first));
    sources_[c]->start();
  }
  for (std::size_t c = 0; c < onoff_sources_.size(); ++c) {
    const ShardScope scope(sim_, shard_map_.shard_of(flows_[c].first));
    onoff_sources_[c]->start();
  }

  if (cfg_.measure_connectivity && !flows_.empty()) {
    sim_.schedule_at(cfg_.cbr_start, [this] { sample_connectivity(); });
  }
}

void Scenario::sample_connectivity() {
  // Reachability in the instantaneous unit-disk graph over exact positions.
  // The adjacency is never materialized: one lazy BFS per distinct flow
  // source expands grid-locally through Channel::neighbors_of and stops as
  // soon as every destination of that source has been reached. This replaced
  // an O(N) sweep that built the full N-node adjacency map each second —
  // intractable bookkeeping at N = 10,000 when only a handful of flow
  // endpoints matter. Reachability over the same graph is unchanged, so the
  // connectivity metric (and the pinned goldens) stay byte-identical.
  const PhyConfig& phy = cfg_.phy;
  const double radius = phy.rx_range_m;
  const double nlos_r2 = phy.nlos_rx_range_m * phy.nlos_rx_range_m;
  conn_mark_.resize(cfg_.num_nodes, 0);

  // Group destinations by source in first-appearance order (deterministic;
  // duplicates kept — each flow is one sample).
  std::vector<std::pair<NodeId, std::vector<NodeId>>> by_src;
  for (const auto& [src, dst] : flows_) {
    auto it = std::find_if(by_src.begin(), by_src.end(),
                           [s = src](const auto& e) { return e.first == s; });
    if (it == by_src.end()) it = by_src.insert(by_src.end(), {src, {}});
    it->second.push_back(dst);
  }

  for (const auto& [src, dsts] : by_src) {
    const std::uint32_t epoch = ++conn_epoch_;
    conn_mark_[src] = epoch;
    conn_frontier_.assign(1, src);
    auto reached_all = [&] {
      return std::all_of(dsts.begin(), dsts.end(),
                         [&](NodeId d) { return conn_mark_[d] == epoch; });
    };
    while (!conn_frontier_.empty() && !reached_all()) {
      conn_next_.clear();
      for (const NodeId u : conn_frontier_) {
        for (const NodeId v : channel_->neighbors_of(u, radius)) {
          if (conn_mark_[v] == epoch) continue;
          // Urban family: the oracle honours the street-canyon model — an
          // NLOS pair is an edge only within the diffraction range. Open
          // field (urban() == false) takes the plain unit-disk edge.
          if (phy.urban()) {
            const Vec2 pu = channel_->position_of(u);
            const Vec2 pv = channel_->position_of(v);
            if (!phy.line_of_sight(pu, pv) && distance2(pu, pv) > nlos_r2) continue;
          }
          conn_mark_[v] = epoch;
          conn_next_.push_back(v);
        }
      }
      conn_frontier_.swap(conn_next_);
    }
    for (const NodeId dst : dsts) {
      ++conn_samples_;
      if (conn_mark_[dst] == epoch) ++conn_connected_;
    }
  }

  if (sim_.now() + seconds(1) <= cfg_.duration) {
    sim_.schedule(seconds(1), [this] { sample_connectivity(); });
  }
}

void Scenario::apply_fault(const FaultEvent& ev) {
  fault_runtime_.apply(ev);
  char note[64];
  switch (ev.kind) {
    case FaultEventKind::kCrash: {
      MANET_SENTINEL_EXEMPT("fault injection is coordinator-serialized; crash may target any shard");
      // manet-lint: cross-shard-audited - fault events run serialized on the coordinator; the sentinel exempts this scope
      nodes_[ev.a]->crash();  // records its own trace line
      stats_.on_fault_begin(ev.at);
      return;
    }
    case FaultEventKind::kRestart: {
      MANET_SENTINEL_EXEMPT("fault injection is coordinator-serialized; restart may target any shard");
      // manet-lint: cross-shard-audited - fault events run serialized on the coordinator; the sentinel exempts this scope
      nodes_[ev.a]->restart();
      stats_.on_fault_end(ev.at);
      return;
    }
    case FaultEventKind::kLinkDown:
    case FaultEventKind::kLinkUp:
      std::snprintf(note, sizeof(note), "%s %u-%u", to_string(ev.kind), ev.a, ev.b);
      if (trace_) trace_->record_fault(ev.at, kBroadcast, note);
      if (ev.kind == FaultEventKind::kLinkDown) {
        stats_.on_fault_begin(ev.at);
      } else {
        stats_.on_fault_end(ev.at);
      }
      return;
    case FaultEventKind::kPartitionStart:
    case FaultEventKind::kPartitionEnd:
      std::snprintf(note, sizeof(note), "%s x=%g", to_string(ev.kind), ev.value);
      if (trace_) trace_->record_fault(ev.at, kBroadcast, note);
      if (ev.kind == FaultEventKind::kPartitionStart) {
        stats_.on_fault_begin(ev.at);
      } else {
        stats_.on_fault_end(ev.at);
      }
      return;
    case FaultEventKind::kCorruptStart:
    case FaultEventKind::kCorruptEnd:
      // Degrades links without severing them: traced, but not an outage for
      // the recovery metrics.
      std::snprintf(note, sizeof(note), "%s p=%g", to_string(ev.kind), ev.value);
      if (trace_) trace_->record_fault(ev.at, kBroadcast, note);
      return;
  }
}

ScenarioResult Scenario::run() {
  build();
  // Debug builds: arm the shard sentinel for sharded runs so any handler
  // touching a foreign shard's node aborts with full context. Unarmed for
  // shards_ == 1 (everything is shard 0 by definition).
  MANET_SENTINEL_BIND(shard_map_, shards_ > 1);
  sim_.run_until(cfg_.duration);
  if (trace_) trace_->flush();

  ScenarioResult r;
  r.pdr = stats_.pdr();
  r.delay_ms = stats_.avg_delay_s() * 1e3;
  r.nrl = stats_.nrl();
  r.nml = stats_.nml();
  r.throughput_kbps = stats_.throughput_bps(cfg_.duration) / 1e3;
  r.avg_hops = stats_.avg_hops();
  if (conn_samples_ > 0) {
    r.connectivity = static_cast<double>(conn_connected_) / static_cast<double>(conn_samples_);
  }
  r.data_originated = stats_.data_originated();
  r.data_delivered = stats_.data_delivered();
  r.retransmissions = flow_monitor_.total_retransmissions();
  r.routing_tx = stats_.routing_tx();
  r.mac_ctrl_tx = stats_.mac_ctrl_tx();
  r.events = sim_.events_executed();
  r.peak_queue_depth = sim_.peak_queue_size();
  r.shards = sim_.shards();
  r.cross_shard_events = sim_.cross_shard_events();
  r.events_per_shard.reserve(sim_.shards());
  for (unsigned s = 0; s < sim_.shards(); ++s) {
    r.events_per_shard.push_back(sim_.events_executed_on(s));
  }
  r.repair_latency_ms = stats_.mean_repair_latency_s() * 1e3;
  r.crashes = stats_.crashes();
  r.fault_corrupted = stats_.fault_corrupted();
  r.delivered_during_fault = stats_.delivered_during_fault();
  r.delivered_after_fault = stats_.delivered_after_fault();
  r.flows = flow_monitor_.all();
  return r;
}

ScenarioResult Scenario::run_once(const ScenarioConfig& cfg) {
  Scenario s(cfg);
  return s.run();
}

}  // namespace manet
