#pragma once

// Declarative scenario specs: the JSON front end of the experiment layer.
//
// A scenario file describes one experiment — a base configuration plus an
// optional (protocol × axis) sweep — in data instead of C++. The loader
// expands it into the same labeled SweepCell grid the benches build through
// ScenarioBuilder, so a spec run and its C++ twin produce byte-identical
// per-seed results (same labels, same configs, same seeds).
//
// Schema (all keys optional unless noted; unknown keys are errors):
//
//   {
//     "name": "fig_pause_throughput",        // required; keys results/<name>.*
//     "description": "free text",
//     "seeds": 10,                            // replications per cell
//     "output": {"dir": "results"},
//     "base": {                               // defaults = Table I
//       "protocol": "AODV", "seed": 1, "nodes": 40, "area_m": [1500, 300],
//       "static": false, "duration_s": 150, "shards": 0,
//       "measure_connectivity": true, "trace": "path.tr",
//       "mobility": {"model": "waypoint|walk|gauss-markov|manhattan",
//                    "v_min_mps": 0.1, "v_max_mps": 20, "pause_s": 0,
//                    "warmup_s": 1000, "block_m": 200, "p_turn": 0.5},
//       "traffic": {"kind": "cbr|onoff", "connections": 10,
//                   "payload_bytes": 512, "rate_pps": 4, "interval_ms": 250,
//                   "start_s": 10, "start_window_s": 10,
//                   "burst_mean_s": 5, "idle_mean_s": 5},
//       "radio": {"data_rate_bps": 2e6, "rx_range_m": 250, "cs_range_m": 550,
//                 "frame_loss_rate": 0},
//       "mac": {"use_rts": true, "rts_threshold_bytes": 0, "ifq_capacity": 50},
//       "urban": {"street_width_m": 20, "nlos_range_m": 75, "nlos_loss": 0.1},
//       "fault": {"crash_rate": 1, "downtime_mean_s": 20, "link_blackouts": 0,
//                 "blackout_mean_s": 5, "corrupt_rate": 0, "corrupt_from_s": 0,
//                 "corrupt_until_s": 0, "partition": false,
//                 "partition_frac": 0.5, "partition_from_s": 0,
//                 "partition_until_s": 0, "window_from_s": 10},
//       "transport": {"enabled": true, "rto_initial_ms": 1000, "rto_min_ms": 200,
//                     "rto_max_ms": 60000, "cwnd_init": 2, "cwnd_max": 32,
//                     "max_retx": 7, "buffer_packets": 64}
//     },
//     "sweep": {
//       "protocols": ["AODV", "DSR", "CBRP"],  // default: base protocol only
//       "axes": [{"param": "pause", "values": [0, 30, 60, 120]}],
//       "cells": [{"label": "extra", "set": { ...base keys... }}]
//     }
//   }
//
// Axis params (labels follow the bench convention "PROTO/param:value"):
//   pause    pause time, seconds                     (>= 0)
//   vmax     node max speed, m/s; <= 0 means static  (mobility suite)
//   nodes    node count                              (integer >= 2)
//   sources  CBR connection count                    (integer >= 0)
//   crash    expected crash/restart cycles per node  (>= 0)
//   loss     per-frame loss probability              ([0, 1))
//   rate     per-flow offered load, packets/s        (> 0)
// An axis may instead set "family": "urban" — each value is then a node
// count fed through the urban Manhattan family (urban_scenario():
// constant-density city, street-canyon shadowing), and "param" only names
// the label segment (fig_scale uses "n").
//
// Validation never aborts: the loader mirrors every ScenarioBuilder::build()
// contract itself and reports violations as Errors carrying the 1-based
// source line of the offending value, so `manetsim validate` can render
// compiler-style "file:line: key: message" diagnostics. Only after a spec is
// clean does the loader run each cell through ScenarioBuilder::from(...)
// .build() as a belt-and-braces check that the mirror and the builder agree.

#include <string>
#include <vector>

#include "scenario/sweep.hpp"

namespace manet::spec {

/// One validation (or parse/IO) diagnostic.
struct Error {
  int line = 0;         ///< 1-based source line; 0 = file-level
  std::string key;      ///< dotted path of the offending key ("base.nodes")
  std::string message;  ///< what is wrong, naming the offending value
};

/// Render as "file:line: key: message" (compiler-style, greppable in CI).
[[nodiscard]] std::string to_string(const Error& e, const std::string& filename);

/// A loaded scenario file: header + the expanded, validated cell grid.
struct ScenarioSpec {
  std::string name;         ///< artifact key: <out_dir>/<name>.{json,csv}
  std::string description;
  int seeds = 1;            ///< replications per cell
  std::string out_dir = "results";
  std::string filename;     ///< as passed to load_file / load_string
  std::vector<SweepCell> cells;  ///< valid only when ok()
  std::vector<Error> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// Every error rendered via to_string(), one per line.
  [[nodiscard]] std::string error_report() const;
};

/// Parse + validate `text`. Collects every diagnostic it can rather than
/// stopping at the first (a parse failure is necessarily terminal).
[[nodiscard]] ScenarioSpec load_string(const std::string& text,
                                       const std::string& filename = "<inline>");

/// Slurp `path` and load_string() it; unreadable files come back as a
/// file-level Error.
[[nodiscard]] ScenarioSpec load_file(const std::string& path);

}  // namespace manet::spec
