// Fluent scenario construction with build-time validation.
//
// ScenarioConfig is a plain struct, and poking its fields directly defers
// every mistake (negative speed, a fault window past the end of the run, a
// shard count above the kernel's cap) to whatever assertion happens to trip
// first mid-build — or to silently nonsensical results. ScenarioBuilder is
// the supported construction path: chain setters, then build() validates the
// whole config at once and reports the offending values in the contract
// message, or run() to validate and execute in one step.
//
//   const ScenarioResult r = ScenarioBuilder()
//                                .protocol("DSR")
//                                .nodes(50)
//                                .area(1500, 300)
//                                .pause(seconds(30))
//                                .run();
//
// Every setter has a with() escape hatch for knobs too niche to earn one.
// Direct aggregate construction of ScenarioConfig outside src/scenario/ is
// flagged by manet_lint (scenario-config-aggregate).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "scenario/scenario.hpp"

namespace manet {

class ScenarioBuilder {
 public:
  /// Starts from the Table-I defaults of ScenarioConfig.
  ScenarioBuilder() = default;

  /// Start from an existing config (migration path for code that still
  /// assembles ScenarioConfig by hand, and for sweeping variations of a
  /// validated base).
  [[nodiscard]] static ScenarioBuilder from(const ScenarioConfig& cfg);

  // -- protocol ---------------------------------------------------------------
  ScenarioBuilder& protocol(Protocol p);
  /// By registry name, case-insensitive ("dsr" matches "DSR"). Unknown names
  /// are reported at build() with the full list of registered protocols.
  ScenarioBuilder& protocol(std::string_view name);

  // -- topology & mobility ----------------------------------------------------
  ScenarioBuilder& seed(std::uint64_t seed);
  ScenarioBuilder& nodes(std::uint32_t count);
  ScenarioBuilder& area(double width_m, double height_m);
  ScenarioBuilder& static_nodes(bool on = true);
  ScenarioBuilder& mobility(MobilityKind kind);
  ScenarioBuilder& speed(double v_min_mps, double v_max_mps);
  ScenarioBuilder& pause(SimTime pause);

  // -- traffic ----------------------------------------------------------------
  ScenarioBuilder& connections(std::uint32_t count);
  ScenarioBuilder& payload(std::size_t bytes);
  ScenarioBuilder& traffic(TrafficKind kind);
  ScenarioBuilder& cbr_interval(SimTime interval);

  // -- run shape --------------------------------------------------------------
  ScenarioBuilder& duration(SimTime duration);
  /// Spatial shards for the conservative-parallel kernel; 0 defers to the
  /// MANET_SHARDS environment variable (see core/shard.hpp).
  ScenarioBuilder& shards(std::uint32_t count);
  ScenarioBuilder& fault(const FaultConfig& fault);
  ScenarioBuilder& trace(std::string path);
  ScenarioBuilder& measure_connectivity(bool on);

  // -- stack ------------------------------------------------------------------
  ScenarioBuilder& phy(const PhyConfig& phy);
  ScenarioBuilder& mac(const MacConfig& mac);
  ScenarioBuilder& frame_loss(double rate);

  /// Escape hatch for knobs without a dedicated setter (per-protocol config
  /// blocks, mobility-model extras). Runs immediately on the staged config.
  ScenarioBuilder& with(const std::function<void(ScenarioConfig&)>& fn);

  /// Validate the staged config as a whole and return it. Violations fail
  /// the MANET_CONTRACT with the offending values in the message.
  [[nodiscard]] ScenarioConfig build() const;

  /// build() and run the scenario once.
  [[nodiscard]] ScenarioResult run() const;

 private:
  ScenarioConfig cfg_;
  std::string protocol_name_;  ///< deferred by-name lookup; resolved in build()
};

}  // namespace manet
