// Fluent scenario construction with build-time validation.
//
// ScenarioConfig is a plain struct, and poking its fields directly defers
// every mistake (negative speed, a fault window past the end of the run, a
// shard count above the kernel's cap) to whatever assertion happens to trip
// first mid-build — or to silently nonsensical results. ScenarioBuilder is
// the supported construction path: chain setters, then build() validates the
// whole config at once and reports the offending values in the contract
// message, or run() to validate and execute in one step.
//
//   const ScenarioResult r = ScenarioBuilder()
//                                .protocol("DSR")
//                                .nodes(50)
//                                .area(1500, 300)
//                                .pause(seconds(30))
//                                .run();
//
// Every setter has a with() escape hatch for knobs too niche to earn one.
// Direct aggregate construction of ScenarioConfig outside src/scenario/ is
// flagged by manet_lint (scenario-config-aggregate).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "scenario/scenario.hpp"

namespace manet {

class ScenarioBuilder {
 public:
  /// Starts from the Table-I defaults of ScenarioConfig.
  ScenarioBuilder() = default;

  /// Start from an existing config (migration path for code that still
  /// assembles ScenarioConfig by hand, and for sweeping variations of a
  /// validated base).
  [[nodiscard]] static ScenarioBuilder from(const ScenarioConfig& cfg);

  // -- protocol ---------------------------------------------------------------
  ScenarioBuilder& protocol(Protocol p);
  /// By registry name, case-insensitive ("dsr" matches "DSR"). Unknown names
  /// are reported at build() with the full list of registered protocols.
  ScenarioBuilder& protocol(std::string_view name);

  // -- topology & mobility ----------------------------------------------------
  ScenarioBuilder& seed(std::uint64_t seed);
  ScenarioBuilder& nodes(std::uint32_t count);
  ScenarioBuilder& area(double width_m, double height_m);
  ScenarioBuilder& static_nodes(bool on = true);
  ScenarioBuilder& mobility(MobilityKind kind);
  ScenarioBuilder& speed(double v_min_mps, double v_max_mps);
  ScenarioBuilder& pause(SimTime pause);

  // -- traffic ----------------------------------------------------------------
  ScenarioBuilder& connections(std::uint32_t count);
  ScenarioBuilder& payload(std::size_t bytes);
  ScenarioBuilder& traffic(TrafficKind kind);
  ScenarioBuilder& cbr_interval(SimTime interval);
  /// Reliable transport between app and net (closed-loop traffic); the
  /// config's RTO/cwnd/buffer bounds are validated at build().
  ScenarioBuilder& transport(const TransportConfig& transport);

  // -- run shape --------------------------------------------------------------
  ScenarioBuilder& duration(SimTime duration);
  /// Spatial shards for the conservative-parallel kernel; 0 defers to the
  /// MANET_SHARDS environment variable (see core/shard.hpp).
  ScenarioBuilder& shards(std::uint32_t count);
  ScenarioBuilder& fault(const FaultConfig& fault);
  ScenarioBuilder& trace(std::string path);
  ScenarioBuilder& measure_connectivity(bool on);

  // -- stack ------------------------------------------------------------------
  ScenarioBuilder& phy(const PhyConfig& phy);
  ScenarioBuilder& mac(const MacConfig& mac);
  ScenarioBuilder& frame_loss(double rate);
  /// Urban street-canyon shadowing (see PhyConfig): NLOS pairs decode only
  /// within `nlos_range_m` and suffer an extra `nlos_loss` probability of
  /// loss. `street_width_m` = 0 turns the model off. Usually combined with
  /// mobility(MobilityKind::kManhattan) — see urban_scenario().
  ScenarioBuilder& urban(double street_width_m, double nlos_range_m = 75.0,
                         double nlos_loss = 0.0);

  /// Escape hatch for knobs without a dedicated setter (per-protocol config
  /// blocks, mobility-model extras). Runs immediately on the staged config.
  ScenarioBuilder& with(const std::function<void(ScenarioConfig&)>& fn);

  /// Validate the staged config as a whole and return it. Violations fail
  /// the MANET_CONTRACT with the offending values in the message.
  [[nodiscard]] ScenarioConfig build() const;

  /// build() and run the scenario once.
  [[nodiscard]] ScenarioResult run() const;

 private:
  ScenarioConfig cfg_;
  std::string protocol_name_;  ///< deferred by-name lookup; resolved in build()
};

/// The urban (Manhattan-grid) scenario family: street-constrained mobility
/// over square city blocks with street-canyon shadowing, at constant density
/// (~50 nodes/km², the paper's 50 nodes over 1 km²) so the area grows with
/// the node count and N is the only free variable when sweeping city size.
/// Flow count scales gently (10 flows up to 1k nodes, then +1 per 100).
/// Chain protocol()/seed()/duration()/shards() onto the returned builder;
/// every registered protocol runs the family unchanged.
[[nodiscard]] ScenarioBuilder urban_scenario(std::uint32_t nodes);

}  // namespace manet
