// Scenario assembly: Table I of the paper family in code.
//
// A Scenario owns one complete simulation run: the simulator, channel, N
// nodes (each with mobility + PHY + MAC + ARP + a routing protocol), the CBR
// connections, and the statistics. Configuration defaults reproduce the
// canonical setup: 1000 m × 1000 m area, 250 m range, 2 Mbit/s radios,
// random waypoint, 10 CBR/UDP connections of 512-byte packets at 4 pkt/s,
// 150 simulated seconds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/cbr.hpp"
#include "app/onoff.hpp"
#include "core/simulator.hpp"
#include "fault/fault.hpp"
#include "mac/mac_config.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/manhattan.hpp"
#include "mobility/mobility_pool.hpp"
#include "net/node.hpp"
#include "phy/channel.hpp"
#include "routing/aodv/aodv.hpp"
#include "routing/cbrp/cbrp.hpp"
#include "routing/dsdv/dsdv.hpp"
#include "routing/dsr/dsr.hpp"
#include "routing/lar/lar.hpp"
#include "routing/olsr/olsr.hpp"
#include "routing/tora/tora.hpp"
#include "stats/flow_monitor.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"
#include "transport/transport.hpp"

namespace manet {

enum class Protocol : std::uint8_t { kAodv, kDsr, kCbrp, kDsdv, kOlsr, kLar, kTora };

[[nodiscard]] const char* to_string(Protocol p);

/// Every implemented protocol: the paper's five plus the position-aided
/// extension (LAR), in the order used by benches and tables.
inline constexpr Protocol kAllProtocols[] = {Protocol::kAodv, Protocol::kDsr,  Protocol::kCbrp,
                                             Protocol::kDsdv, Protocol::kOlsr, Protocol::kLar,
                                             Protocol::kTora};

/// Which mobility model drives the nodes (the Divecha-et-al. comparison
/// axis); `static_nodes` overrides all of them.
enum class MobilityKind : std::uint8_t {
  kRandomWaypoint,
  kRandomWalk,
  kGaussMarkov,
  kManhattan,
};

[[nodiscard]] const char* to_string(MobilityKind k);

/// Workload shape: the paper's constant-bit-rate flows, or bursty
/// exponential ON/OFF flows (extension; see abl_traffic).
enum class TrafficKind : std::uint8_t { kCbr, kOnOff };

[[nodiscard]] const char* to_string(TrafficKind k);

struct ScenarioConfig {
  Protocol protocol = Protocol::kAodv;
  std::uint64_t seed = 1;

  // Topology & mobility (Table I).
  std::uint32_t num_nodes = 50;
  Area area{1000.0, 1000.0};
  bool static_nodes = false;  ///< overrides mobility with random fixed placement
  MobilityKind mobility = MobilityKind::kRandomWaypoint;
  double v_min = 0.1;         ///< m/s
  double v_max = 20.0;        ///< m/s
  SimTime pause = SimTime::zero();
  SimTime mobility_warmup = seconds(1000);
  /// Extra knobs for the non-waypoint models (area/speed fields above are
  /// copied over these at build time).
  GaussMarkovConfig gauss_markov;
  ManhattanConfig manhattan;

  // Traffic (Table I).
  std::uint32_t num_connections = 10;
  std::size_t payload_bytes = 512;
  TrafficKind traffic = TrafficKind::kCbr;
  SimTime cbr_interval = milliseconds(250);  // 4 packets/s
  SimTime cbr_start = seconds(10);           // staggered over +10 s
  SimTime cbr_start_window = seconds(10);
  SimTime onoff_burst_mean = seconds(5);     // ON/OFF workload only
  SimTime onoff_idle_mean = seconds(5);

  /// Reliable transport between app and net (closed-loop traffic). Off by
  /// default: the paper's open-loop CBR/UDP workload, byte-identical to the
  /// pre-transport simulator.
  TransportConfig transport;

  // Duration.
  SimTime duration = seconds(150);

  /// Spatial shards for the conservative-parallel kernel (see core/shard.hpp
  /// and DESIGN.md "Parallel kernel"). 0 means "from the MANET_SHARDS
  /// environment variable, default 1". Any value reproduces byte-identical
  /// results; > 1 exercises the sharded executive.
  std::uint32_t shards = 0;

  /// Fault injection (disabled by default). When enabled, the schedule is
  /// compiled from (fault, seed) before the run starts; see src/fault/.
  FaultConfig fault;

  /// When non-empty, write an ns-2-style event trace to this path.
  std::string trace_path;

  /// Sample ground-truth connectivity (is each flow's (src,dst) pair
  /// connected in the instantaneous unit-disk graph?) once per second. The
  /// resulting fraction is the oracle upper bound on PDR — a partitioned
  /// network caps every protocol — reported as ScenarioResult::connectivity.
  bool measure_connectivity = true;

  // Stack.
  PhyConfig phy;
  MacConfig mac;
  aodv::Config aodv;
  dsr::Config dsr;
  cbrp::Config cbrp;
  dsdv::Config dsdv;
  olsr::Config olsr;
  lar::Config lar;
  tora::Config tora;

  /// Render the Table-I parameter block (bench/tab_parameters).
  [[nodiscard]] std::string parameter_table() const;
};

/// Summary of one finished run.
struct ScenarioResult {
  double pdr = 0.0;
  double delay_ms = 0.0;
  double nrl = 0.0;
  double nml = 0.0;
  double throughput_kbps = 0.0;
  double avg_hops = 0.0;
  /// Fraction of (flow, sample) pairs whose endpoints were connected in the
  /// instantaneous radio graph — the oracle PDR upper bound (1.0 when
  /// connectivity measurement is disabled).
  double connectivity = 1.0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  /// Transport-layer retransmissions over all flows (0 when transport off).
  std::uint64_t retransmissions = 0;
  std::uint64_t routing_tx = 0;
  std::uint64_t mac_ctrl_tx = 0;
  std::uint64_t events = 0;
  /// High-water mark of the event queue during the run (profiling).
  std::size_t peak_queue_depth = 0;

  // Sharded-kernel accounting (shards == 1, zeros elsewhere, when unsharded).
  std::uint32_t shards = 1;
  /// Events that crossed a shard boundary through a handoff FIFO.
  std::uint64_t cross_shard_events = 0;
  /// Events executed per shard (load-balance accounting; sums to `events`).
  std::vector<std::uint64_t> events_per_shard;

  // Fault-injection outcomes (all zero for fault-free runs).
  /// Mean time from an outage healing to the next delivered data packet, ms.
  double repair_latency_ms = 0.0;
  std::uint64_t crashes = 0;
  std::uint64_t fault_corrupted = 0;
  std::uint64_t delivered_during_fault = 0;
  std::uint64_t delivered_after_fault = 0;

  /// Per-flow accounting records, sorted by flow id (empty when the
  /// transport is off — keeps transport-free artifacts byte-identical).
  std::vector<std::pair<std::uint32_t, FlowRecord>> flows;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);

  /// Build the network (idempotent; run() calls it if needed).
  void build();

  /// Run to the configured duration and return the summary.
  ScenarioResult run();

  /// Convenience: construct, run, summarize.
  [[nodiscard]] static ScenarioResult run_once(const ScenarioConfig& cfg);

  // -- access for examples/tests (valid after build()) -----------------------
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] StatsCollector& stats() { return stats_; }
  [[nodiscard]] Channel& channel() { return *channel_; }
  // manet-lint: cross-shard-audited - test/driver accessor; any in-run cross-shard use trips the ShardSentinel
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] RoutingProtocol& routing(std::size_t i) { return *protocols_[i]; }
  /// Node i's transport endpoint (nullptr when the transport is disabled).
  [[nodiscard]] ReliableTransport* transport_of(std::size_t i) {
    return i < transports_.size() ? transports_[i].get() : nullptr;
  }
  /// Per-flow accounting (idle/empty when the transport is disabled).
  [[nodiscard]] const FlowMonitor& flow_monitor() const { return flow_monitor_; }
  /// The compiled fault schedule (empty when fault injection is disabled).
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_plan_; }
  /// Node -> shard assignment (identity map when unsharded).
  [[nodiscard]] const ShardMap& shard_map() const { return shard_map_; }

 private:
  void sample_connectivity();
  void apply_fault(const FaultEvent& ev);

  ScenarioConfig cfg_;
  Simulator sim_;
  ShardMap shard_map_;
  unsigned shards_ = 1;
  StatsCollector stats_;
  // Declared before channel_/nodes_: those hold raw pointers into the pool
  // and must be destroyed first (reverse declaration order).
  MobilityPool mobility_pool_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<RoutingProtocol>> protocols_;
  // Declared after nodes_ (they hold Node&): destroyed first.
  std::vector<std::unique_ptr<ReliableTransport>> transports_;
  FlowMonitor flow_monitor_;
  std::vector<std::unique_ptr<CbrSource>> sources_;
  std::vector<std::unique_ptr<OnOffSource>> onoff_sources_;
  std::unique_ptr<TraceWriter> trace_;
  FaultPlan fault_plan_;
  FaultRuntime fault_runtime_;
  std::vector<std::pair<NodeId, NodeId>> flows_;
  std::uint64_t conn_samples_ = 0;
  std::uint64_t conn_connected_ = 0;
  // Lazy-BFS scratch for sample_connectivity(): epoch-marked visit flags
  // (no O(N) clear per source) plus reusable frontier buffers.
  std::vector<std::uint32_t> conn_mark_;
  std::uint32_t conn_epoch_ = 0;
  std::vector<NodeId> conn_frontier_;
  std::vector<NodeId> conn_next_;
  bool built_ = false;
};

/// Instantiate a routing protocol of the configured kind for `node`.
[[nodiscard]] std::unique_ptr<RoutingProtocol> make_protocol(const ScenarioConfig& cfg,
                                                             Node& node);

/// The populated protocol registry: one entry per implemented protocol, in
/// the canonical table order (== kAllProtocols). to_string(Protocol),
/// make_protocol() and the ScenarioBuilder's by-name lookup all read this
/// table; benches iterate it for "every protocol" loops. Adding protocol #8
/// is one enum value above plus one add() line in the definition.
[[nodiscard]] const routing::Registry& protocol_registry();

}  // namespace manet
