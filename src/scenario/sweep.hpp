// Sweep-level parallel experiment execution.
//
// A figure is a grid of (cell × seed) replications. The old model
// parallelized only the seeds inside one cell — a 16-core machine idled
// while a bench walked its cells sequentially, re-spawning a pool per cell.
// SweepRunner makes the *sweep* the unit of execution: it expands the whole
// grid into independent work items up front and drains them on one shared
// pool of workers pulling from a single atomic cursor, so wall-clock is
// ~ total_replications / cores instead of num_cells × slowest_seed.
//
// Results are structured, not just printed: SweepResult carries each cell's
// Aggregate plus per-replication profiling (wall-clock, simulated-seconds
// per wall-second, events/sec, peak event-queue depth), with JSON and CSV
// emitters so every bench run leaves a machine-diffable artifact.
//
// Determinism: replication (cell c, rep k) always runs config
// cells[c].config with seed base+k, whatever the thread count — results are
// stored by work-item index, so the SweepResult is bit-identical under 1 or
// N workers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace manet {

/// One labeled point of the experiment grid.
struct SweepCell {
  std::string label;
  ScenarioConfig config;
};

/// Wall-clock profile of a single replication.
struct RunProfile {
  std::uint64_t seed = 0;
  double wall_s = 0.0;
  double sim_rate = 0.0;        ///< simulated seconds per wall-clock second
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::size_t peak_queue_depth = 0;
  /// Process peak RSS sampled right after this replication finished. A
  /// process-wide high-water mark: meaningful for memory gating when the
  /// sweep runs single-threaded, seed-by-seed (the bench_gate recipe); an
  /// upper bound otherwise.
  std::uint64_t peak_rss_bytes = 0;
  /// Sharded-kernel accounting (1 / 0 for unsharded runs).
  std::uint32_t shards = 1;
  std::uint64_t cross_shard_events = 0;
  /// Reliable-transport accounting, empty/0 when transport is disabled so
  /// transport-free artifacts stay byte-identical to pre-transport ones.
  std::uint64_t retransmissions = 0;
  std::vector<std::pair<std::uint32_t, FlowRecord>> flows;
};

/// One cell of the finished sweep: aggregate metrics + profiling.
struct SweepCellResult {
  std::string label;
  Aggregate aggregate;
  std::vector<RunProfile> runs;    ///< per replication, seed order
  double wall_s = 0.0;             ///< summed replication wall-clock (CPU cost)
  double events_per_sec = 0.0;     ///< cell events / cell wall_s
  std::size_t peak_queue_depth = 0;  ///< max over replications
  std::uint64_t peak_rss_bytes = 0;  ///< max over replications
  /// peak_rss_bytes / num_nodes — the scale sweep's memory-per-node metric,
  /// gated by tools/bench_gate alongside events_per_sec.
  double bytes_per_node = 0.0;
};

struct SweepResult {
  std::string name;  ///< artifact name (bench binary), set by the caller
  std::vector<SweepCellResult> cells;
  int seeds_per_cell = 0;
  unsigned threads = 0;
  double wall_s = 0.0;             ///< whole-sweep wall-clock
  std::uint64_t total_events = 0;
  double events_per_sec = 0.0;     ///< pool throughput: total_events / wall_s
  std::size_t peak_queue_depth = 0;
  std::uint64_t peak_rss_bytes = 0;  ///< max over all replications

  /// Cell lookup by label; nullptr when absent.
  [[nodiscard]] const SweepCellResult* find(std::string_view label) const;

  /// Machine-readable emitters. Metric columns come from kMetricDefs, so
  /// new metrics appear automatically.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  /// Performance-baseline emitter: the flat {name, events_per_sec, wall_s}
  /// entry list tools/bench_gate records and checks — one entry for the
  /// whole sweep plus one per cell. This is the sweep side of the
  /// continuous-benchmark gate (see DESIGN.md "Kernel performance &
  /// benchmark gate").
  [[nodiscard]] std::string to_baseline_json() const;

  /// Write an emitter's output to `path`, creating parent directories.
  /// Returns false (with a stderr warning) on I/O failure.
  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;
};

/// Process-wide peak resident set size in bytes (0 where unsupported).
[[nodiscard]] std::uint64_t process_peak_rss_bytes();

/// Executes a whole experiment grid on one shared worker pool.
class SweepRunner {
 public:
  /// `seeds`: replications per cell; `threads`: 0 = hardware concurrency.
  explicit SweepRunner(int seeds = 3, unsigned threads = 0);

  /// Construct from the MANET_BENCH_* environment knobs.
  [[nodiscard]] static SweepRunner from_env(int default_seeds = 3);

  /// Run every (cell × seed) replication and aggregate per cell.
  [[nodiscard]] SweepResult run(const std::vector<SweepCell>& cells) const;

  [[nodiscard]] int seeds() const { return seeds_; }
  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  int seeds_;
  unsigned threads_;
};

}  // namespace manet
