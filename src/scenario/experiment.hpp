// Multi-seed experiment execution: metrics, aggregation, environment knobs.
//
// Every figure in the paper family is a sweep: (protocol × parameter value),
// each cell averaged over several random scenarios. The SweepRunner
// (scenario/sweep.hpp) executes a whole grid of cells on one work pool;
// ExperimentRunner is the single-cell convenience wrapper over it.
//
// Metrics are registered once, in kMetricDefs: each entry names a metric and
// binds the per-run sample (ScenarioResult field) to its aggregate slot
// (Aggregate field). The aggregator and the JSON/CSV emitters all iterate the
// table, so adding a metric is one table line plus the two struct fields.
//
// Environment knobs (parsed and validated in one place, BenchEnv) let benches
// trade fidelity for wall-clock time without code changes:
//   MANET_BENCH_SEEDS        replications per cell    (default per bench)
//   MANET_BENCH_DURATION     simulated seconds        (default from config)
//   MANET_BENCH_THREADS      worker threads           (default hw concurrency)
//   MANET_BENCH_RESULTS_DIR  artifact directory       (default "results")
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace manet {

/// Mean and standard error of one metric over the replications.
struct Metric {
  double mean = 0.0;
  double se = 0.0;
};

/// Sample mean and standard error of the mean. Empty input yields {0, 0};
/// a single sample has se 0.
[[nodiscard]] Metric aggregate_metric(const std::vector<double>& xs);

struct Aggregate {
  Metric pdr;
  Metric delay_ms;
  Metric nrl;
  Metric nml;
  Metric throughput_kbps;
  Metric avg_hops;
  Metric connectivity;  ///< oracle PDR upper bound
  Metric repair_latency_ms;  ///< fault-heal -> next-delivery latency
  std::uint64_t total_events = 0;
  int replications = 0;

  /// Visit every metric as f(name, Metric&) in kMetricDefs order.
  template <typename F>
  void for_each(F&& f);
  template <typename F>
  void for_each(F&& f) const;
};

/// One row of the metric table: the artifact/emitter name, the per-run sample
/// it is computed from, and the aggregate slot it lands in.
struct MetricDef {
  const char* name;
  double ScenarioResult::* sample;
  Metric Aggregate::* agg;
};

/// The metric registry. To add a metric: add a field to ScenarioResult and
/// Aggregate, then one line here — aggregation and all emitters follow.
inline constexpr MetricDef kMetricDefs[] = {
    {"pdr", &ScenarioResult::pdr, &Aggregate::pdr},
    {"delay_ms", &ScenarioResult::delay_ms, &Aggregate::delay_ms},
    {"nrl", &ScenarioResult::nrl, &Aggregate::nrl},
    {"nml", &ScenarioResult::nml, &Aggregate::nml},
    {"throughput_kbps", &ScenarioResult::throughput_kbps, &Aggregate::throughput_kbps},
    {"avg_hops", &ScenarioResult::avg_hops, &Aggregate::avg_hops},
    {"connectivity", &ScenarioResult::connectivity, &Aggregate::connectivity},
    {"repair_latency_ms", &ScenarioResult::repair_latency_ms, &Aggregate::repair_latency_ms},
};

template <typename F>
void Aggregate::for_each(F&& f) {
  for (const MetricDef& d : kMetricDefs) f(d.name, this->*(d.agg));
}

template <typename F>
void Aggregate::for_each(F&& f) const {
  for (const MetricDef& d : kMetricDefs) f(d.name, this->*(d.agg));
}

/// Aggregate the replications of one cell via the metric table.
[[nodiscard]] Aggregate aggregate_results(const std::vector<ScenarioResult>& results);

/// The MANET_BENCH_* environment, parsed and validated in one place.
/// Malformed or out-of-range values (garbage text, negatives, absurd sizes)
/// are rejected with a warning on stderr and the default is kept — so
/// MANET_BENCH_THREADS=-1 can no longer wrap to a huge unsigned.
struct BenchEnv {
  int seeds = 3;                      ///< replications per cell, >= 1
  unsigned threads = 0;               ///< worker threads, 0 = hw concurrency
  long duration_s = 0;                ///< simulated seconds, 0 = per-config
  std::string results_dir = "results";  ///< where JSON/CSV artifacts land

  /// Parse the environment; `default_seeds` seeds when MANET_BENCH_SEEDS is
  /// unset (benches default lower than interactive tools).
  [[nodiscard]] static BenchEnv parse(int default_seeds = 3);

  /// Apply MANET_BENCH_DURATION to a config (no-op when unset).
  void apply_duration(ScenarioConfig& cfg) const;
};

class ExperimentRunner {
 public:
  /// `seeds`: replications per cell; `threads`: 0 = hardware concurrency.
  explicit ExperimentRunner(int seeds = 5, unsigned threads = 0);

  /// Run `base` under seeds base.seed, base.seed+1, ... and aggregate.
  /// Thin single-cell wrapper over SweepRunner.
  [[nodiscard]] Aggregate run(const ScenarioConfig& base) const;

  [[nodiscard]] int seeds() const { return seeds_; }

  /// Construct from the MANET_BENCH_* environment knobs (via BenchEnv).
  [[nodiscard]] static ExperimentRunner from_env(int default_seeds = 3);

  /// Apply MANET_BENCH_DURATION to a config (no-op when unset).
  static void apply_env_duration(ScenarioConfig& cfg);

 private:
  int seeds_;
  unsigned threads_;
};

/// Render one metric as "mean ± se" with the given precision.
[[nodiscard]] std::string format_metric(const Metric& m, int precision = 3);

}  // namespace manet
