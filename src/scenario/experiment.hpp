// Multi-seed experiment execution.
//
// Every figure in the paper family is a sweep: (protocol × parameter value),
// each cell averaged over several random scenarios. The ExperimentRunner
// executes the replications of a cell on a small thread pool (independent
// Simulator instances — the embarrassingly-parallel axis) and aggregates
// mean and standard error for each metric.
//
// Environment knobs let benches trade fidelity for wall-clock time without
// code changes:
//   MANET_BENCH_SEEDS     replications per cell   (default 3)
//   MANET_BENCH_DURATION  simulated seconds       (default from config)
//   MANET_BENCH_THREADS   worker threads          (default hw concurrency)
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace manet {

/// Mean and standard error of one metric over the replications.
struct Metric {
  double mean = 0.0;
  double se = 0.0;
};

struct Aggregate {
  Metric pdr;
  Metric delay_ms;
  Metric nrl;
  Metric nml;
  Metric throughput_kbps;
  Metric avg_hops;
  Metric connectivity;  ///< oracle PDR upper bound
  std::uint64_t total_events = 0;
  int replications = 0;
};

class ExperimentRunner {
 public:
  /// `seeds`: replications per cell; `threads`: 0 = hardware concurrency.
  explicit ExperimentRunner(int seeds = 5, unsigned threads = 0);

  /// Run `base` under seeds base.seed, base.seed+1, ... and aggregate.
  [[nodiscard]] Aggregate run(const ScenarioConfig& base) const;

  [[nodiscard]] int seeds() const { return seeds_; }

  /// Construct from the MANET_BENCH_* environment knobs.
  [[nodiscard]] static ExperimentRunner from_env(int default_seeds = 3);

  /// Apply MANET_BENCH_DURATION to a config (no-op when unset).
  static void apply_env_duration(ScenarioConfig& cfg);

 private:
  int seeds_;
  unsigned threads_;
};

/// Render one metric as "mean ± se" with the given precision.
[[nodiscard]] std::string format_metric(const Metric& m, int precision = 3);

}  // namespace manet
