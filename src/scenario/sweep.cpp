#include "scenario/sweep.hpp"

#include <atomic>
#include <chrono>  // manet-lint: allow-wall-clock - replication profiling only
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/json.hpp"
#include "core/assert.hpp"

namespace manet {

namespace {

// Wall-clock readings feed only the RunProfile/SweepResult performance
// artifacts (wall_s, events_per_sec); no simulated behaviour depends on them.
// manet-lint: allow-wall-clock - profiling artifact data, never sim input
using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsed_s(Clock::time_point t0) {
  // manet-lint: allow-wall-clock - profiling artifact data, never sim input
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// CSV fields are labels like "AODV/pause:30" — quote only when needed.
void csv_field(std::ostream& os, std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    os << s;
    return;
  }
  os << '"';
  for (const char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

bool write_text_file(const std::string& path, const std::string& text) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream out(p, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "manetsim: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

std::uint64_t process_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

const SweepCellResult* SweepResult::find(std::string_view label) const {
  for (const SweepCellResult& c : cells) {
    if (c.label == label) return &c;
  }
  return nullptr;
}

std::string SweepResult::to_json() const {
  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"name\": \"";
  json::escape(os, name);
  os << "\",\n  \"schema\": 1,\n"
     << "  \"seeds_per_cell\": " << seeds_per_cell << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"wall_s\": " << wall_s << ",\n"
     << "  \"total_events\": " << total_events << ",\n"
     << "  \"events_per_sec\": " << events_per_sec << ",\n"
     << "  \"peak_queue_depth\": " << peak_queue_depth << ",\n"
     << "  \"peak_rss_bytes\": " << peak_rss_bytes << ",\n"
     << "  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCellResult& c = cells[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"label\": \"";
    json::escape(os, c.label);
    os << "\", \"replications\": " << c.aggregate.replications
       << ", \"total_events\": " << c.aggregate.total_events << ",\n     \"metrics\": {";
    bool first = true;
    c.aggregate.for_each([&](const char* mname, const Metric& m) {
      os << (first ? "" : ", ") << '"' << mname << "\": {\"mean\": " << m.mean
         << ", \"se\": " << m.se << '}';
      first = false;
    });
    os << "},\n     \"profile\": {\"wall_s\": " << c.wall_s
       << ", \"events_per_sec\": " << c.events_per_sec
       << ", \"peak_queue_depth\": " << c.peak_queue_depth
       << ", \"peak_rss_bytes\": " << c.peak_rss_bytes
       << ", \"bytes_per_node\": " << c.bytes_per_node << ", \"runs\": [";
    for (std::size_t k = 0; k < c.runs.size(); ++k) {
      const RunProfile& r = c.runs[k];
      os << (k == 0 ? "" : ", ") << "{\"seed\": " << r.seed << ", \"wall_s\": " << r.wall_s
         << ", \"sim_rate\": " << r.sim_rate << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"events\": " << r.events << ", \"peak_queue_depth\": " << r.peak_queue_depth
         << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
         << ", \"shards\": " << r.shards << ", \"cross_shard_events\": " << r.cross_shard_events;
      // FlowMonitor table, present only for transport-enabled runs so
      // transport-free artifacts stay byte-identical to pre-transport ones.
      if (!r.flows.empty()) {
        os << ", \"retransmissions\": " << r.retransmissions << ", \"flows\": [";
        for (std::size_t f = 0; f < r.flows.size(); ++f) {
          const FlowRecord& fr = r.flows[f].second;
          os << (f == 0 ? "" : ", ") << "{\"flow\": " << r.flows[f].first
             << ", \"src\": " << fr.src << ", \"dst\": " << fr.dst
             << ", \"tx_packets\": " << fr.tx_packets << ", \"tx_bytes\": " << fr.tx_bytes
             << ", \"rx_packets\": " << fr.rx_packets << ", \"rx_bytes\": " << fr.rx_bytes
             << ", \"retransmissions\": " << fr.retransmissions
             << ", \"avg_delay_ms\": " << fr.avg_delay_ms()
             << ", \"mean_jitter_ms\": " << fr.mean_jitter_ms() << '}';
        }
        os << ']';
      }
      os << '}';
    }
    os << "]}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string SweepResult::to_csv() const {
  std::ostringstream os;
  os.precision(10);
  os << "label";
  for (const MetricDef& d : kMetricDefs) os << ',' << d.name << "_mean," << d.name << "_se";
  os << ",replications,total_events,wall_s,events_per_sec,peak_queue_depth"
     << ",peak_rss_bytes,bytes_per_node\n";
  for (const SweepCellResult& c : cells) {
    csv_field(os, c.label);
    c.aggregate.for_each(
        [&](const char*, const Metric& m) { os << ',' << m.mean << ',' << m.se; });
    os << ',' << c.aggregate.replications << ',' << c.aggregate.total_events << ',' << c.wall_s
       << ',' << c.events_per_sec << ',' << c.peak_queue_depth << ',' << c.peak_rss_bytes << ','
       << c.bytes_per_node << '\n';
  }
  return os.str();
}

std::string SweepResult::to_baseline_json() const {
  std::ostringstream os;
  os.precision(10);
  os << "{\n  \"schema\": 1,\n  \"entries\": [\n";
  os << "    {\"name\": \"";
  json::escape(os, name);
  os << "\", \"events_per_sec\": " << events_per_sec << ", \"wall_s\": " << wall_s << '}';
  for (const SweepCellResult& c : cells) {
    os << ",\n    {\"name\": \"";
    json::escape(os, name);
    os << '/';
    json::escape(os, c.label);
    os << "\", \"events_per_sec\": " << c.events_per_sec << ", \"wall_s\": " << c.wall_s;
    // bench_gate gates memory only when baseline AND fresh both carry the
    // field, so pre-existing baselines without it keep passing unchanged.
    if (c.bytes_per_node > 0.0) os << ", \"bytes_per_node\": " << c.bytes_per_node;
    os << '}';
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool SweepResult::write_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

bool SweepResult::write_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

SweepRunner::SweepRunner(int seeds, unsigned threads) : seeds_(seeds), threads_(threads) {
  MANET_EXPECTS(seeds >= 1);
  if (threads_ == 0) threads_ = std::max(1u, std::thread::hardware_concurrency());
}

SweepRunner SweepRunner::from_env(int default_seeds) {
  const BenchEnv env = BenchEnv::parse(default_seeds);
  return SweepRunner(env.seeds, env.threads);
}

SweepResult SweepRunner::run(const std::vector<SweepCell>& cells) const {
  const std::size_t seeds = static_cast<std::size_t>(seeds_);
  const std::size_t total = cells.size() * seeds;

  // The whole grid is one flat work list (cell-major); workers pull items
  // from a shared cursor, so a slow cell's remaining seeds and the next
  // cells' replications run concurrently — no per-cell barrier.
  std::vector<ScenarioResult> results(total);
  std::vector<RunProfile> profiles(total);
  std::atomic<std::size_t> cursor{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t k = cursor.fetch_add(1);
      if (k >= total) return;
      const std::size_t cell = k / seeds;
      const std::size_t rep = k % seeds;
      ScenarioConfig cfg = cells[cell].config;
      cfg.seed += static_cast<std::uint64_t>(rep);

      const auto t0 = Clock::now();
      const ScenarioResult r = Scenario::run_once(cfg);
      const double wall = elapsed_s(t0);

      RunProfile p;
      p.seed = cfg.seed;
      p.wall_s = wall;
      p.events = r.events;
      p.peak_queue_depth = r.peak_queue_depth;
      p.peak_rss_bytes = process_peak_rss_bytes();
      p.shards = r.shards;
      p.cross_shard_events = r.cross_shard_events;
      p.retransmissions = r.retransmissions;
      p.flows = r.flows;
      if (wall > 0.0) {
        p.sim_rate = cfg.duration.sec() / wall;
        p.events_per_sec = static_cast<double>(r.events) / wall;
      }
      results[k] = r;
      profiles[k] = p;
    }
  };

  const auto t0 = Clock::now();
  const unsigned nthreads =
      std::min<unsigned>(threads_, static_cast<unsigned>(std::max<std::size_t>(total, 1)));
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  SweepResult sweep;
  sweep.seeds_per_cell = seeds_;
  sweep.threads = nthreads;
  sweep.wall_s = elapsed_s(t0);
  sweep.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    SweepCellResult cell;
    cell.label = cells[c].label;
    const auto begin = results.begin() + static_cast<std::ptrdiff_t>(c * seeds);
    cell.aggregate = aggregate_results({begin, begin + static_cast<std::ptrdiff_t>(seeds)});
    cell.runs.assign(profiles.begin() + static_cast<std::ptrdiff_t>(c * seeds),
                     profiles.begin() + static_cast<std::ptrdiff_t>((c + 1) * seeds));
    for (const RunProfile& p : cell.runs) {
      cell.wall_s += p.wall_s;
      cell.peak_queue_depth = std::max(cell.peak_queue_depth, p.peak_queue_depth);
      cell.peak_rss_bytes = std::max(cell.peak_rss_bytes, p.peak_rss_bytes);
    }
    if (cell.wall_s > 0.0) {
      cell.events_per_sec =
          static_cast<double>(cell.aggregate.total_events) / cell.wall_s;
    }
    if (cells[c].config.num_nodes > 0) {
      cell.bytes_per_node = static_cast<double>(cell.peak_rss_bytes) /
                            static_cast<double>(cells[c].config.num_nodes);
    }
    sweep.total_events += cell.aggregate.total_events;
    sweep.peak_queue_depth = std::max(sweep.peak_queue_depth, cell.peak_queue_depth);
    sweep.peak_rss_bytes = std::max(sweep.peak_rss_bytes, cell.peak_rss_bytes);
    sweep.cells.push_back(std::move(cell));
  }
  if (sweep.wall_s > 0.0) {
    sweep.events_per_sec = static_cast<double>(sweep.total_events) / sweep.wall_s;
  }
  return sweep;
}

}  // namespace manet
