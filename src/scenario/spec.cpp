#include "scenario/spec.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "core/shard.hpp"
#include "scenario/builder.hpp"

namespace manet::spec {

namespace {

using json::Value;

/// %g rendering, matching the bench label convention and the builder's
/// contract messages.
std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string fmt_s(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds);
  return buf;
}

/// "AODV, DSR, ..." for the unknown-protocol message (same wording as
/// ScenarioBuilder::build()).
std::string registered_names() {
  std::ostringstream os;
  bool first = true;
  for (const routing::ProtocolEntry& e : protocol_registry()) {
    os << (first ? "" : ", ") << e.name;
    first = false;
  }
  return os.str();
}

/// Error sink + the typed-accessor helpers every section walker shares.
/// Every accessor that fails records a diagnostic naming the key, the
/// expectation, and the offending value, anchored at the value's source line.
class Checker {
 public:
  explicit Checker(std::vector<Error>& errs) : errs_(errs) {}

  void fail(const Value& at, const std::string& key, std::string msg) {
    errs_.push_back(Error{at.line, key, std::move(msg)});
  }
  void fail_at(int line, const std::string& key, std::string msg) {
    errs_.push_back(Error{line, key, std::move(msg)});
  }

  bool expect_kind(const Value& v, Value::Kind k, const std::string& key) {
    if (v.kind == k) return true;
    fail(v, key,
         std::string("expected ") + Value::kind_name(k) + ", got " + Value::kind_name(v.kind));
    return false;
  }

  bool num(const Value& v, const std::string& key, double& out) {
    if (!expect_kind(v, Value::Kind::kNumber, key)) return false;
    out = v.number;
    return true;
  }

  bool str(const Value& v, const std::string& key, std::string& out) {
    if (!expect_kind(v, Value::Kind::kString, key)) return false;
    out = v.str;
    return true;
  }

  bool boolean(const Value& v, const std::string& key, bool& out) {
    if (!expect_kind(v, Value::Kind::kBool, key)) return false;
    out = v.boolean;
    return true;
  }

  bool integer(const Value& v, const std::string& key, long long& out) {
    double x = 0.0;
    if (!num(v, key, x)) return false;
    if (std::floor(x) != x || std::abs(x) > 1e15) {
      fail(v, key, "must be an integer, got " + fmt_g(x));
      return false;
    }
    out = static_cast<long long>(x);
    return true;
  }

  /// Range gate: on failure emits "must be <constraint>, got <value>".
  bool require(bool cond, const Value& v, const std::string& key, const std::string& constraint,
               double got) {
    if (cond) return true;
    fail(v, key, "must be " + constraint + ", got " + fmt_g(got));
    return false;
  }

 private:
  std::vector<Error>& errs_;
};

// -- section walkers ---------------------------------------------------------
// One function per schema object; each dispatches over its known keys and
// reports anything else as an unknown key naming the accepted set, so typos
// fail loudly instead of silently running the default.

void apply_mobility(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    if (k == "model") {
      std::string s;
      if (!c.str(v, p, s)) continue;
      if (s == "waypoint") {
        cfg.mobility = MobilityKind::kRandomWaypoint;
      } else if (s == "walk") {
        cfg.mobility = MobilityKind::kRandomWalk;
      } else if (s == "gauss-markov") {
        cfg.mobility = MobilityKind::kGaussMarkov;
      } else if (s == "manhattan") {
        cfg.mobility = MobilityKind::kManhattan;
      } else {
        c.fail(v, p,
               "unknown mobility model \"" + s +
                   "\" (expected: waypoint, walk, gauss-markov, manhattan)");
      }
    } else if (k == "v_min_mps") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) cfg.v_min = x;
    } else if (k == "v_max_mps") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) cfg.v_max = x;
    } else if (k == "pause_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) cfg.pause = seconds_f(x);
    } else if (k == "warmup_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) {
        cfg.mobility_warmup = seconds_f(x);
      }
    } else if (k == "block_m") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) cfg.manhattan.block = x;
    } else if (k == "p_turn") {
      if (c.num(v, p, x) && c.require(x >= 0.0 && x <= 1.0, v, p, "in [0, 1]", x)) {
        cfg.manhattan.p_turn = x;
      }
    } else {
      c.fail(v, p,
             "unknown key (expected: model, v_min_mps, v_max_mps, pause_s, warmup_s, "
             "block_m, p_turn)");
    }
  }
}

void apply_traffic(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  const Value* rate = o.find("rate_pps");
  const Value* interval = o.find("interval_ms");
  if (rate != nullptr && interval != nullptr) {
    c.fail(*interval, path + ".interval_ms", "mutually exclusive with rate_pps");
  }
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    long long n = 0;
    if (k == "kind") {
      std::string s;
      if (!c.str(v, p, s)) continue;
      if (s == "cbr") {
        cfg.traffic = TrafficKind::kCbr;
      } else if (s == "onoff") {
        cfg.traffic = TrafficKind::kOnOff;
      } else {
        c.fail(v, p, "unknown traffic kind \"" + s + "\" (expected: cbr, onoff)");
      }
    } else if (k == "connections") {
      if (c.integer(v, p, n) && c.require(n >= 0, v, p, ">= 0", static_cast<double>(n))) {
        cfg.num_connections = static_cast<std::uint32_t>(n);
      }
    } else if (k == "payload_bytes") {
      if (c.integer(v, p, n) && c.require(n >= 1, v, p, ">= 1", static_cast<double>(n))) {
        cfg.payload_bytes = static_cast<std::size_t>(n);
      }
    } else if (k == "rate_pps") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) {
        cfg.cbr_interval = seconds_f(1.0 / x);
      }
    } else if (k == "interval_ms") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) {
        cfg.cbr_interval = seconds_f(x / 1000.0);
      }
    } else if (k == "start_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) cfg.cbr_start = seconds_f(x);
    } else if (k == "start_window_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) {
        cfg.cbr_start_window = seconds_f(x);
      }
    } else if (k == "burst_mean_s") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) {
        cfg.onoff_burst_mean = seconds_f(x);
      }
    } else if (k == "idle_mean_s") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) {
        cfg.onoff_idle_mean = seconds_f(x);
      }
    } else {
      c.fail(v, p,
             "unknown key (expected: kind, connections, payload_bytes, rate_pps, "
             "interval_ms, start_s, start_window_s, burst_mean_s, idle_mean_s)");
    }
  }
}

void apply_radio(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    if (k == "data_rate_bps") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) cfg.phy.data_rate_bps = x;
    } else if (k == "rx_range_m") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) cfg.phy.rx_range_m = x;
    } else if (k == "cs_range_m") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) cfg.phy.cs_range_m = x;
    } else if (k == "frame_loss_rate") {
      if (c.num(v, p, x) && c.require(x >= 0.0 && x < 1.0, v, p, "in [0, 1)", x)) {
        cfg.phy.frame_loss_rate = x;
      }
    } else {
      c.fail(v, p,
             "unknown key (expected: data_rate_bps, rx_range_m, cs_range_m, frame_loss_rate)");
    }
  }
}

void apply_mac(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    long long n = 0;
    bool b = false;
    if (k == "use_rts") {
      if (c.boolean(v, p, b)) cfg.mac.use_rts = b;
    } else if (k == "rts_threshold_bytes") {
      if (c.integer(v, p, n) && c.require(n >= 0, v, p, ">= 0", static_cast<double>(n))) {
        cfg.mac.rts_threshold = static_cast<std::size_t>(n);
      }
    } else if (k == "ifq_capacity") {
      if (c.integer(v, p, n) && c.require(n >= 1, v, p, ">= 1", static_cast<double>(n))) {
        cfg.mac.ifq_capacity = static_cast<std::size_t>(n);
      }
    } else {
      c.fail(v, p, "unknown key (expected: use_rts, rts_threshold_bytes, ifq_capacity)");
    }
  }
}

void apply_urban(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    if (k == "street_width_m") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) cfg.phy.street_width_m = x;
    } else if (k == "nlos_range_m") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) cfg.phy.nlos_rx_range_m = x;
    } else if (k == "nlos_loss") {
      if (c.num(v, p, x) && c.require(x >= 0.0 && x < 1.0, v, p, "in [0, 1)", x)) {
        cfg.phy.nlos_loss_rate = x;
      }
    } else {
      c.fail(v, p, "unknown key (expected: street_width_m, nlos_range_m, nlos_loss)");
    }
  }
}

void apply_fault(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  FaultConfig& f = cfg.fault;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    long long n = 0;
    bool b = false;
    if (k == "crash_rate") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) f.crash_rate = x;
    } else if (k == "downtime_mean_s") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) f.downtime_mean = seconds_f(x);
    } else if (k == "link_blackouts") {
      if (c.integer(v, p, n) && c.require(n >= 0, v, p, ">= 0", static_cast<double>(n))) {
        f.link_blackouts = static_cast<int>(n);
      }
    } else if (k == "blackout_mean_s") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) f.blackout_mean = seconds_f(x);
    } else if (k == "corrupt_rate") {
      if (c.num(v, p, x) && c.require(x >= 0.0 && x <= 1.0, v, p, "in [0, 1]", x)) {
        f.corrupt_rate = x;
      }
    } else if (k == "corrupt_from_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) f.corrupt_from = seconds_f(x);
    } else if (k == "corrupt_until_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) f.corrupt_until = seconds_f(x);
    } else if (k == "partition") {
      if (c.boolean(v, p, b)) f.partition = b;
    } else if (k == "partition_frac") {
      if (c.num(v, p, x) && c.require(x >= 0.0 && x <= 1.0, v, p, "in [0, 1]", x)) {
        f.partition_frac = x;
      }
    } else if (k == "partition_from_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) {
        f.partition_from = seconds_f(x);
      }
    } else if (k == "partition_until_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) {
        f.partition_until = seconds_f(x);
      }
    } else if (k == "window_from_s") {
      if (c.num(v, p, x) && c.require(x >= 0.0, v, p, ">= 0", x)) f.window_from = seconds_f(x);
    } else {
      c.fail(v, p,
             "unknown key (expected: crash_rate, downtime_mean_s, link_blackouts, "
             "blackout_mean_s, corrupt_rate, corrupt_from_s, corrupt_until_s, partition, "
             "partition_frac, partition_from_s, partition_until_s, window_from_s)");
    }
  }
}

void apply_transport(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  TransportConfig& t = cfg.transport;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    long long n = 0;
    bool b = false;
    if (k == "enabled") {
      if (c.boolean(v, p, b)) t.enabled = b;
    } else if (k == "rto_initial_ms") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) {
        t.rto_initial = seconds_f(x / 1000.0);
      }
    } else if (k == "rto_min_ms") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) t.rto_min = seconds_f(x / 1000.0);
    } else if (k == "rto_max_ms") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) t.rto_max = seconds_f(x / 1000.0);
    } else if (k == "cwnd_init") {
      if (c.integer(v, p, n) && c.require(n >= 1, v, p, ">= 1", static_cast<double>(n))) {
        t.cwnd_init = static_cast<std::uint32_t>(n);
      }
    } else if (k == "cwnd_max") {
      if (c.integer(v, p, n) && c.require(n >= 1, v, p, ">= 1", static_cast<double>(n))) {
        t.cwnd_max = static_cast<std::uint32_t>(n);
      }
    } else if (k == "max_retx") {
      if (c.integer(v, p, n) && c.require(n >= 1, v, p, ">= 1", static_cast<double>(n))) {
        t.max_retx = static_cast<std::uint32_t>(n);
      }
    } else if (k == "buffer_packets") {
      if (c.integer(v, p, n) && c.require(n >= 1, v, p, ">= 1", static_cast<double>(n))) {
        t.buffer_packets = static_cast<std::uint32_t>(n);
      }
    } else {
      c.fail(v, p,
             "unknown key (expected: enabled, rto_initial_ms, rto_min_ms, rto_max_ms, "
             "cwnd_init, cwnd_max, max_retx, buffer_packets)");
    }
  }
}

/// The shared settings object: `base` and each explicit cell's `set`.
void apply_settings(Checker& c, const Value& o, const std::string& path, ScenarioConfig& cfg) {
  if (!c.expect_kind(o, Value::Kind::kObject, path)) return;
  for (const auto& [k, v] : o.object) {
    const std::string p = path + "." + k;
    double x = 0.0;
    long long n = 0;
    bool b = false;
    if (k == "protocol") {
      std::string s;
      if (!c.str(v, p, s)) continue;
      const routing::ProtocolEntry* e = protocol_registry().by_name(s);
      if (e == nullptr) {
        c.fail(v, p, "unknown protocol \"" + s + "\" (registered: " + registered_names() + ")");
      } else {
        cfg.protocol = static_cast<Protocol>(e->id);
      }
    } else if (k == "seed") {
      if (c.integer(v, p, n) && c.require(n >= 0, v, p, ">= 0", static_cast<double>(n))) {
        cfg.seed = static_cast<std::uint64_t>(n);
      }
    } else if (k == "nodes") {
      if (c.integer(v, p, n) && c.require(n >= 2, v, p, ">= 2", static_cast<double>(n))) {
        cfg.num_nodes = static_cast<std::uint32_t>(n);
      }
    } else if (k == "area_m") {
      if (!c.expect_kind(v, Value::Kind::kArray, p)) continue;
      if (v.array.size() != 2) {
        c.fail(v, p, "expected [width_m, height_m], got " + std::to_string(v.array.size()) +
                         " element(s)");
        continue;
      }
      double w = 0.0;
      double h = 0.0;
      if (c.num(v.array[0], p + "[0]", w) && c.num(v.array[1], p + "[1]", h) &&
          c.require(w > 0.0, v.array[0], p + "[0]", "> 0", w) &&
          c.require(h > 0.0, v.array[1], p + "[1]", "> 0", h)) {
        cfg.area = Area{w, h};
      }
    } else if (k == "static") {
      if (c.boolean(v, p, b)) cfg.static_nodes = b;
    } else if (k == "duration_s") {
      if (c.num(v, p, x) && c.require(x > 0.0, v, p, "> 0", x)) cfg.duration = seconds_f(x);
    } else if (k == "shards") {
      if (c.integer(v, p, n) &&
          c.require(n >= 0 && n <= static_cast<long long>(kMaxShards), v, p,
                    "in [0, " + std::to_string(kMaxShards) + "] (the kernel cap)",
                    static_cast<double>(n))) {
        cfg.shards = static_cast<std::uint32_t>(n);
      }
    } else if (k == "measure_connectivity") {
      if (c.boolean(v, p, b)) cfg.measure_connectivity = b;
    } else if (k == "trace") {
      std::string s;
      if (c.str(v, p, s)) cfg.trace_path = std::move(s);
    } else if (k == "mobility") {
      apply_mobility(c, v, p, cfg);
    } else if (k == "traffic") {
      apply_traffic(c, v, p, cfg);
    } else if (k == "radio") {
      apply_radio(c, v, p, cfg);
    } else if (k == "mac") {
      apply_mac(c, v, p, cfg);
    } else if (k == "urban") {
      apply_urban(c, v, p, cfg);
    } else if (k == "fault") {
      apply_fault(c, v, p, cfg);
    } else if (k == "transport") {
      apply_transport(c, v, p, cfg);
    } else {
      c.fail(v, p,
             "unknown key (expected: protocol, seed, nodes, area_m, static, duration_s, "
             "shards, measure_connectivity, trace, mobility, traffic, radio, mac, urban, "
             "fault, transport)");
    }
  }
}

// -- sweep axes --------------------------------------------------------------

struct Axis {
  std::string param;           ///< label segment ("pause" -> "AODV/pause:0")
  bool urban_family = false;   ///< values are urban_scenario() node counts
  std::vector<double> values;  ///< validated at parse time; apply is unchecked
};

constexpr const char* kAxisParams = "pause, vmax, nodes, sources, crash, loss, rate";

/// Range-check one axis value at parse time (so a bad value is reported once,
/// not once per protocol).
void check_axis_value(Checker& c, const Axis& a, const Value& v, const std::string& key) {
  const double x = v.number;
  if (a.urban_family) {
    if (std::floor(x) != x || x < 2.0) c.fail(v, key, "must be an integer >= 2, got " + fmt_g(x));
  } else if (a.param == "pause" || a.param == "crash") {
    c.require(x >= 0.0, v, key, ">= 0", x);
  } else if (a.param == "vmax") {
    // <= 0 means "static" (the mobility suite's x = 0 column); any value ok.
  } else if (a.param == "nodes") {
    if (std::floor(x) != x || x < 2.0) c.fail(v, key, "must be an integer >= 2, got " + fmt_g(x));
  } else if (a.param == "sources") {
    if (std::floor(x) != x || x < 0.0) c.fail(v, key, "must be an integer >= 0, got " + fmt_g(x));
  } else if (a.param == "loss") {
    c.require(x >= 0.0 && x < 1.0, v, key, "in [0, 1)", x);
  } else if (a.param == "rate") {
    c.require(x > 0.0, v, key, "> 0", x);
  }
}

/// Copy the urban Manhattan family's derived fields onto `cfg`, reusing
/// urban_scenario() so the city-size math has exactly one home.
void apply_urban_family(ScenarioConfig& cfg, std::uint32_t n) {
  const ScenarioConfig u = urban_scenario(n).build();
  cfg.num_nodes = u.num_nodes;
  cfg.area = u.area;
  cfg.mobility = u.mobility;
  cfg.v_min = u.v_min;
  cfg.v_max = u.v_max;
  cfg.num_connections = u.num_connections;
  cfg.phy.street_width_m = u.phy.street_width_m;
  cfg.phy.nlos_rx_range_m = u.phy.nlos_rx_range_m;
  cfg.phy.nlos_loss_rate = u.phy.nlos_loss_rate;
}

void apply_axis(const Axis& a, double v, ScenarioConfig& cfg) {
  if (a.urban_family) {
    apply_urban_family(cfg, static_cast<std::uint32_t>(v));
  } else if (a.param == "pause") {
    cfg.pause = seconds_f(v);
  } else if (a.param == "vmax") {
    // Mirrors bench::mobility_cell: the 0 column is the static network.
    if (v <= 0.0) {
      cfg.static_nodes = true;
    } else {
      cfg.static_nodes = false;
      cfg.v_max = v;
    }
  } else if (a.param == "nodes") {
    cfg.num_nodes = static_cast<std::uint32_t>(v);
  } else if (a.param == "sources") {
    cfg.num_connections = static_cast<std::uint32_t>(v);
  } else if (a.param == "crash") {
    cfg.fault.crash_rate = v;
  } else if (a.param == "loss") {
    cfg.phy.frame_loss_rate = v;
  } else if (a.param == "rate") {
    // Offered load in packets/s per flow, the paper family's x-axis for the
    // load-collapse figures (same conversion as traffic.rate_pps).
    cfg.cbr_interval = seconds_f(1.0 / v);
  }
}

// -- cross-field contracts ---------------------------------------------------
// The mirror of ScenarioBuilder::build()'s multi-field checks (single-field
// ranges are already enforced at the key sites above), with the builder's
// wording so the two paths diagnose identically. Keeping the mirror complete
// is what lets `manetsim validate` promise a clean exit-2 diagnosis instead
// of the builder's contract abort.
void check_contracts(Checker& c, const ScenarioConfig& cfg, int line, const std::string& where) {
  if (!cfg.static_nodes && cfg.v_max < cfg.v_min) {
    c.fail_at(line, where,
              "need 0 <= v_min <= v_max, got v_min=" + fmt_g(cfg.v_min) +
                  " v_max=" + fmt_g(cfg.v_max) + " m/s");
  }
  if (cfg.num_connections > 0 && cfg.cbr_start > cfg.duration) {
    c.fail_at(line, where,
              "traffic starts at " + fmt_s(cfg.cbr_start.sec()) + "s, after the run ends at " +
                  fmt_s(cfg.duration.sec()) + "s");
  }
  if (cfg.phy.urban() &&
      !(cfg.phy.nlos_rx_range_m > 0.0 && cfg.phy.nlos_rx_range_m <= cfg.phy.rx_range_m)) {
    c.fail_at(line, where,
              "nlos_rx_range_m must be in (0, rx_range], got " + fmt_g(cfg.phy.nlos_rx_range_m) +
                  " (rx_range " + fmt_g(cfg.phy.rx_range_m) + ")");
  }
  if (cfg.transport.enabled) {
    const TransportConfig& t = cfg.transport;
    if (!(t.rto_min > SimTime::zero() && t.rto_min <= t.rto_initial &&
          t.rto_initial <= t.rto_max)) {
      c.fail_at(line, where,
                "transport rto bounds need 0 < rto_min <= rto_initial <= rto_max, got min=" +
                    fmt_s(t.rto_min.sec()) + "s initial=" + fmt_s(t.rto_initial.sec()) +
                    "s max=" + fmt_s(t.rto_max.sec()) + "s");
    }
    if (!(t.cwnd_init >= 1 && t.cwnd_init <= t.cwnd_max)) {
      c.fail_at(line, where,
                "transport cwnd needs 1 <= cwnd_init <= cwnd_max, got init=" +
                    std::to_string(t.cwnd_init) + " max=" + std::to_string(t.cwnd_max));
    }
    if (t.buffer_packets < t.cwnd_max) {
      c.fail_at(line, where,
                "transport.buffer_packets must be >= cwnd_max, got buffer=" +
                    std::to_string(t.buffer_packets) +
                    " cwnd_max=" + std::to_string(t.cwnd_max));
    }
  }
  if (cfg.fault.enabled()) {
    const FaultConfig& f = cfg.fault;
    if (f.window_from >= cfg.duration) {
      c.fail_at(line, where,
                "fault window opens at " + fmt_s(f.window_from.sec()) +
                    "s, after the run ends at " + fmt_s(cfg.duration.sec()) + "s");
    }
    if (f.corrupt_rate > 0.0) {
      if (f.corrupt_from >= cfg.duration) {
        c.fail_at(line, where,
                  "corruption window opens at " + fmt_s(f.corrupt_from.sec()) +
                      "s, after the run ends at " + fmt_s(cfg.duration.sec()) + "s");
      }
      if (f.corrupt_until != SimTime::zero() && f.corrupt_until <= f.corrupt_from) {
        c.fail_at(line, where,
                  "corruption window [" + fmt_s(f.corrupt_from.sec()) + "s, " +
                      fmt_s(f.corrupt_until.sec()) + "s) is empty");
      }
    }
    if (f.partition) {
      if (f.partition_from >= cfg.duration) {
        c.fail_at(line, where,
                  "partition opens at " + fmt_s(f.partition_from.sec()) +
                      "s, after the run ends at " + fmt_s(cfg.duration.sec()) + "s");
      }
      if (f.partition_until != SimTime::zero() && f.partition_until <= f.partition_from) {
        c.fail_at(line, where,
                  "partition window [" + fmt_s(f.partition_from.sec()) + "s, " +
                      fmt_s(f.partition_until.sec()) + "s) is empty");
      }
    }
  }
}

[[nodiscard]] bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char ch : s) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '-' || ch == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string to_string(const Error& e, const std::string& filename) {
  std::ostringstream os;
  os << filename;
  if (e.line > 0) os << ':' << e.line;
  os << ": ";
  if (!e.key.empty()) os << e.key << ": ";
  os << e.message;
  return os.str();
}

std::string ScenarioSpec::error_report() const {
  std::ostringstream os;
  for (const Error& e : errors) os << to_string(e, filename) << '\n';
  return os.str();
}

ScenarioSpec load_string(const std::string& text, const std::string& filename) {
  ScenarioSpec spec;
  spec.filename = filename;
  Checker c(spec.errors);

  Value root;
  std::string perr;
  if (!json::parse(text, root, perr)) {
    c.fail_at(0, "", perr);
    return spec;
  }
  if (!root.is_object()) {
    c.fail(root, "", std::string("top level must be an object, got ") +
                         Value::kind_name(root.kind));
    return spec;
  }

  ScenarioConfig base;
  const Value* sweep = nullptr;

  for (const auto& [k, v] : root.object) {
    if (k == "name") {
      std::string s;
      if (c.str(v, "name", s)) {
        if (!valid_name(s)) {
          c.fail(v, "name",
                 "must be non-empty [A-Za-z0-9._-] (it keys the results/<name>.* artifacts), "
                 "got \"" +
                     s + "\"");
        } else {
          spec.name = std::move(s);
        }
      }
    } else if (k == "description") {
      std::string s;
      if (c.str(v, "description", s)) spec.description = std::move(s);
    } else if (k == "seeds") {
      long long n = 0;
      if (c.integer(v, "seeds", n) &&
          c.require(n >= 1 && n <= 100000, v, "seeds", "in [1, 100000]",
                    static_cast<double>(n))) {
        spec.seeds = static_cast<int>(n);
      }
    } else if (k == "output") {
      if (!c.expect_kind(v, Value::Kind::kObject, "output")) continue;
      for (const auto& [ok, ov] : v.object) {
        if (ok == "dir") {
          std::string s;
          if (c.str(ov, "output.dir", s)) {
            if (s.empty()) {
              c.fail(ov, "output.dir", "must be a non-empty path");
            } else {
              spec.out_dir = std::move(s);
            }
          }
        } else {
          c.fail(ov, "output." + ok, "unknown key (expected: dir)");
        }
      }
    } else if (k == "base") {
      apply_settings(c, v, "base", base);
    } else if (k == "sweep") {
      sweep = &v;
    } else {
      c.fail(v, k,
             "unknown key (expected: name, description, seeds, output, base, sweep)");
    }
  }

  if (root.find("name") == nullptr) {
    c.fail_at(root.line, "name", "required key is missing");
  }

  // -- sweep expansion -------------------------------------------------------
  // Grid cells: (protocol × axis values) in nested-loop order, protocol
  // outermost — the same order Suite::add_sweep registers them, so a spec's
  // artifact lists its cells exactly like its C++ twin's.
  std::vector<std::pair<std::string, Protocol>> protocols;
  std::vector<Axis> axes;
  struct ExplicitCell {
    std::string label;
    const Value* set = nullptr;
    int line = 0;
  };
  std::vector<ExplicitCell> explicit_cells;
  int sweep_line = root.line;

  if (sweep != nullptr && c.expect_kind(*sweep, Value::Kind::kObject, "sweep")) {
    sweep_line = sweep->line;
    for (const auto& [k, v] : sweep->object) {
      const std::string p = "sweep." + k;
      if (k == "protocols") {
        if (!c.expect_kind(v, Value::Kind::kArray, p)) continue;
        if (v.array.empty()) c.fail(v, p, "must list at least one protocol");
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          const std::string pi = p + "[" + std::to_string(i) + "]";
          std::string s;
          if (!c.str(v.array[i], pi, s)) continue;
          const routing::ProtocolEntry* e = protocol_registry().by_name(s);
          if (e == nullptr) {
            c.fail(v.array[i], pi,
                   "unknown protocol \"" + s + "\" (registered: " + registered_names() + ")");
          } else {
            protocols.emplace_back(e->name, static_cast<Protocol>(e->id));
          }
        }
      } else if (k == "axes") {
        if (!c.expect_kind(v, Value::Kind::kArray, p)) continue;
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          const Value& av = v.array[i];
          const std::string pi = p + "[" + std::to_string(i) + "]";
          if (!c.expect_kind(av, Value::Kind::kObject, pi)) continue;
          Axis axis;
          const Value* values = nullptr;
          for (const auto& [ak, avv] : av.object) {
            const std::string pa = pi + "." + ak;
            if (ak == "param") {
              (void)c.str(avv, pa, axis.param);
            } else if (ak == "values") {
              if (c.expect_kind(avv, Value::Kind::kArray, pa)) values = &avv;
            } else if (ak == "family") {
              std::string s;
              if (c.str(avv, pa, s)) {
                if (s == "urban") {
                  axis.urban_family = true;
                } else {
                  c.fail(avv, pa, "unknown scenario family \"" + s + "\" (expected: urban)");
                }
              }
            } else {
              c.fail(avv, pa, "unknown key (expected: param, values, family)");
            }
          }
          if (axis.param.empty()) {
            c.fail(av, pi, "required key \"param\" is missing");
            continue;
          }
          if (!axis.urban_family && axis.param != "pause" && axis.param != "vmax" &&
              axis.param != "nodes" && axis.param != "sources" && axis.param != "crash" &&
              axis.param != "loss" && axis.param != "rate") {
            c.fail(av, pi + ".param",
                   "unknown sweep param \"" + axis.param + "\" (expected: " + kAxisParams +
                       "; or set \"family\": \"urban\")");
            continue;
          }
          if (values == nullptr || values->array.empty()) {
            c.fail(av, pi, "required key \"values\" must be a non-empty array of numbers");
            continue;
          }
          for (std::size_t j = 0; j < values->array.size(); ++j) {
            const Value& vv = values->array[j];
            const std::string pv = pi + ".values[" + std::to_string(j) + "]";
            if (!c.expect_kind(vv, Value::Kind::kNumber, pv)) continue;
            check_axis_value(c, axis, vv, pv);
            axis.values.push_back(vv.number);
          }
          axes.push_back(std::move(axis));
        }
      } else if (k == "cells") {
        if (!c.expect_kind(v, Value::Kind::kArray, p)) continue;
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          const Value& cv = v.array[i];
          const std::string pi = p + "[" + std::to_string(i) + "]";
          if (!c.expect_kind(cv, Value::Kind::kObject, pi)) continue;
          ExplicitCell cell;
          cell.line = cv.line;
          for (const auto& [ck, cvv] : cv.object) {
            if (ck == "label") {
              std::string s;
              if (c.str(cvv, pi + ".label", s)) {
                if (s.empty()) {
                  c.fail(cvv, pi + ".label", "must be non-empty");
                } else {
                  cell.label = std::move(s);
                }
              }
            } else if (ck == "set") {
              cell.set = &cvv;
            } else {
              c.fail(cvv, pi + "." + ck, "unknown key (expected: label, set)");
            }
          }
          if (cell.label.empty()) {
            c.fail(cv, pi, "required key \"label\" is missing");
            continue;
          }
          explicit_cells.push_back(cell);
        }
      } else {
        c.fail(v, p, "unknown key (expected: protocols, axes, cells)");
      }
    }
  }

  // Default protocol list: the base config's protocol, under its canonical
  // registry name.
  if (protocols.empty() && (sweep == nullptr || sweep->find("protocols") == nullptr)) {
    const routing::ProtocolEntry* e =
        protocol_registry().by_id(static_cast<std::uint8_t>(base.protocol));
    if (e != nullptr) protocols.emplace_back(e->name, base.protocol);
  }

  // Grid: protocol-major, then each axis left to right.
  const bool grid_wanted =
      sweep == nullptr || !axes.empty() || sweep->find("protocols") != nullptr ||
      explicit_cells.empty();
  if (grid_wanted) {
    for (const auto& [pname, penum] : protocols) {
      std::vector<std::pair<std::string, ScenarioConfig>> partial;
      ScenarioConfig cfg = base;
      cfg.protocol = penum;
      partial.emplace_back(pname, cfg);
      for (const Axis& axis : axes) {
        std::vector<std::pair<std::string, ScenarioConfig>> next;
        next.reserve(partial.size() * axis.values.size());
        for (const auto& [label, pcfg] : partial) {
          for (const double v : axis.values) {
            ScenarioConfig ncfg = pcfg;
            apply_axis(axis, v, ncfg);
            next.emplace_back(label + "/" + axis.param + ":" + fmt_g(v), ncfg);
          }
        }
        partial = std::move(next);
      }
      for (auto& [label, pcfg] : partial) {
        spec.cells.push_back(SweepCell{std::move(label), std::move(pcfg)});
      }
    }
  }

  for (const ExplicitCell& cell : explicit_cells) {
    ScenarioConfig cfg = base;
    if (cell.set != nullptr) {
      apply_settings(c, *cell.set, "sweep.cells \"" + cell.label + "\".set", cfg);
    }
    spec.cells.push_back(SweepCell{cell.label, std::move(cfg)});
  }

  if (spec.cells.empty() && spec.errors.empty()) {
    c.fail_at(sweep_line, "sweep", "the spec expands to zero cells");
  }

  // Label uniqueness (SweepResult::find and manet_report key on labels).
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.cells.size(); ++j) {
      if (spec.cells[i].label == spec.cells[j].label) {
        c.fail_at(sweep_line, "sweep",
                  "duplicate cell label \"" + spec.cells[i].label + "\"");
        j = spec.cells.size();  // report each duplicate label once
      }
    }
  }

  // Cross-field contracts per expanded cell.
  for (const SweepCell& cell : spec.cells) {
    check_contracts(c, cell.config, sweep != nullptr ? sweep->line : root.line,
                    "cell \"" + cell.label + "\"");
  }

  // Belt and braces: a clean spec must also satisfy the builder itself. Any
  // divergence here is a loader bug (a contract the mirror above missed) and
  // trips the builder's own MANET_CONTRACT abort with a message naming it.
  if (spec.errors.empty()) {
    for (const SweepCell& cell : spec.cells) {
      (void)ScenarioBuilder::from(cell.config).build();
    }
  }

  return spec;
}

ScenarioSpec load_file(const std::string& path) {
  std::string text;
  std::string err;
  if (!json::read_file(path, text, err)) {
    ScenarioSpec spec;
    spec.filename = path;
    spec.errors.push_back(Error{0, "", err});
    return spec;
  }
  return load_string(text, path);
}

}  // namespace manet::spec
