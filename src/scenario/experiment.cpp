#include "scenario/experiment.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/assert.hpp"
#include "scenario/sweep.hpp"

namespace manet {

namespace {

/// Strictly parse env var `name` as a long in [min, max]. Unset/empty keeps
/// the fallback silently; garbage or out-of-range keeps it with a warning.
[[nodiscard]] long env_long_checked(const char* name, long fallback, long min, long max) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < min || parsed > max) {
    std::fprintf(stderr, "manetsim: ignoring %s=\"%s\" (want integer in [%ld, %ld])\n", name, v,
                 min, max);
    return fallback;
  }
  return parsed;
}

}  // namespace

Metric aggregate_metric(const std::vector<double>& xs) {
  Metric m;
  if (xs.empty()) return m;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  m.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (const double x : xs) ss += (x - m.mean) * (x - m.mean);
    const double var = ss / static_cast<double>(xs.size() - 1);
    m.se = std::sqrt(var / static_cast<double>(xs.size()));
  }
  return m;
}

Aggregate aggregate_results(const std::vector<ScenarioResult>& results) {
  Aggregate agg;
  std::vector<double> xs(results.size());
  for (const MetricDef& d : kMetricDefs) {
    for (std::size_t i = 0; i < results.size(); ++i) xs[i] = results[i].*(d.sample);
    agg.*(d.agg) = aggregate_metric(xs);
  }
  for (const ScenarioResult& r : results) agg.total_events += r.events;
  agg.replications = static_cast<int>(results.size());
  return agg;
}

BenchEnv BenchEnv::parse(int default_seeds) {
  BenchEnv env;
  env.seeds =
      static_cast<int>(env_long_checked("MANET_BENCH_SEEDS", default_seeds, 1, 100000));
  env.threads = static_cast<unsigned>(env_long_checked("MANET_BENCH_THREADS", 0, 0, 4096));
  env.duration_s = env_long_checked("MANET_BENCH_DURATION", 0, 0, 1000000);
  if (const char* dir = std::getenv("MANET_BENCH_RESULTS_DIR"); dir != nullptr && *dir != '\0') {
    env.results_dir = dir;
  }
  return env;
}

void BenchEnv::apply_duration(ScenarioConfig& cfg) const {
  if (duration_s > 0) cfg.duration = seconds(duration_s);
}

ExperimentRunner::ExperimentRunner(int seeds, unsigned threads)
    : seeds_(seeds), threads_(threads) {
  MANET_EXPECTS(seeds >= 1);
}

ExperimentRunner ExperimentRunner::from_env(int default_seeds) {
  const BenchEnv env = BenchEnv::parse(default_seeds);
  return ExperimentRunner(env.seeds, env.threads);
}

void ExperimentRunner::apply_env_duration(ScenarioConfig& cfg) {
  BenchEnv::parse().apply_duration(cfg);
}

Aggregate ExperimentRunner::run(const ScenarioConfig& base) const {
  const SweepRunner sweep(seeds_, threads_);
  return sweep.run({SweepCell{"cell", base}}).cells.front().aggregate;
}

std::string format_metric(const Metric& m, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << m.mean << " ± " << m.se;
  return os.str();
}

}  // namespace manet
