#include "scenario/experiment.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "core/assert.hpp"

namespace manet {

namespace {

Metric aggregate_metric(const std::vector<double>& xs) {
  Metric m;
  if (xs.empty()) return m;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  m.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (const double x : xs) ss += (x - m.mean) * (x - m.mean);
    const double var = ss / static_cast<double>(xs.size() - 1);
    m.se = std::sqrt(var / static_cast<double>(xs.size()));
  }
  return m;
}

[[nodiscard]] long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtol(v, nullptr, 10);
}

}  // namespace

ExperimentRunner::ExperimentRunner(int seeds, unsigned threads)
    : seeds_(seeds), threads_(threads) {
  MANET_EXPECTS(seeds >= 1);
  if (threads_ == 0) threads_ = std::max(1u, std::thread::hardware_concurrency());
}

ExperimentRunner ExperimentRunner::from_env(int default_seeds) {
  const int seeds = static_cast<int>(env_long("MANET_BENCH_SEEDS", default_seeds));
  const auto threads = static_cast<unsigned>(env_long("MANET_BENCH_THREADS", 0));
  return ExperimentRunner(std::max(1, seeds), threads);
}

void ExperimentRunner::apply_env_duration(ScenarioConfig& cfg) {
  const long secs = env_long("MANET_BENCH_DURATION", 0);
  if (secs > 0) cfg.duration = seconds(secs);
}

Aggregate ExperimentRunner::run(const ScenarioConfig& base) const {
  std::vector<ScenarioResult> results(static_cast<std::size_t>(seeds_));
  std::atomic<int> next{0};

  auto worker = [&] {
    for (;;) {
      const int k = next.fetch_add(1);
      if (k >= seeds_) return;
      ScenarioConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(k);
      results[static_cast<std::size_t>(k)] = Scenario::run_once(cfg);
    }
  };

  const unsigned nthreads = std::min<unsigned>(threads_, static_cast<unsigned>(seeds_));
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  auto collect = [&](auto proj) {
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto& r : results) xs.push_back(proj(r));
    return aggregate_metric(xs);
  };

  Aggregate agg;
  agg.pdr = collect([](const ScenarioResult& r) { return r.pdr; });
  agg.delay_ms = collect([](const ScenarioResult& r) { return r.delay_ms; });
  agg.nrl = collect([](const ScenarioResult& r) { return r.nrl; });
  agg.nml = collect([](const ScenarioResult& r) { return r.nml; });
  agg.throughput_kbps = collect([](const ScenarioResult& r) { return r.throughput_kbps; });
  agg.avg_hops = collect([](const ScenarioResult& r) { return r.avg_hops; });
  agg.connectivity = collect([](const ScenarioResult& r) { return r.connectivity; });
  for (const auto& r : results) agg.total_events += r.events;
  agg.replications = seeds_;
  return agg;
}

std::string format_metric(const Metric& m, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << m.mean << " ± " << m.se;
  return os.str();
}

}  // namespace manet
