#include "mac/wifi_mac.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "core/shard_sentinel.hpp"

namespace manet {

namespace {
// Safety margin added to CTS/ACK timeouts, covering turnaround slop.
constexpr SimTime kTimeoutMargin = microseconds(5);
}  // namespace

WifiMac::WifiMac(Simulator& sim, const MacConfig& cfg, Transceiver& trx, StatsCollector& stats,
                 RngStream rng)
    : sim_(sim), cfg_(cfg), trx_(trx), stats_(stats), rng_(rng), cw_(cfg.cw_min) {
  trx_.set_listener(this);
}

// ---------------------------------------------------------------------------
// Queueing
// ---------------------------------------------------------------------------

void WifiMac::enqueue(Packet pkt) {
  MANET_SENTINEL_CHECK(trx_.id(), "WifiMac::enqueue");
  pkt.mac.type = MacFrameType::kData;
  pkt.mac.src = trx_.id();
  pkt.mac.seq = tx_seq_++;
  pkt.mac.retry = false;
  if (!current_.has_value()) {
    current_ = std::move(pkt);
    state_ = State::kContend;
    begin_contention();
    return;
  }
  if (ifq_.size() >= cfg_.ifq_capacity) {
    if (pkt.kind == PacketKind::kData) stats_.on_data_dropped(DropReason::kIfqFull);
    return;
  }
  ifq_.push_back(std::move(pkt));
}

void WifiMac::reset() {
  sim_.cancel(difs_ev_);
  sim_.cancel(nav_ev_);
  sim_.cancel(backoff_ev_);
  sim_.cancel(timeout_ev_);
  if (current_.has_value()) {
    if (current_->kind == PacketKind::kData) stats_.on_data_dropped(DropReason::kNodeDown);
    current_.reset();
  }
  for (const Packet& p : ifq_) {
    if (p.kind == PacketKind::kData) stats_.on_data_dropped(DropReason::kNodeDown);
  }
  ifq_.clear();
  state_ = State::kIdle;
  short_retries_ = long_retries_ = 0;
  cw_ = cfg_.cw_min;
  backoff_slots_ = 0;
  nav_until_ = SimTime::zero();
  rx_last_seq_.clear();
}

void WifiMac::start_service() {
  // The link-failure callback in finish_current() may re-enter enqueue() and
  // begin serving a new frame before we get here.
  if (current_.has_value()) return;
  if (ifq_.empty()) {
    state_ = State::kIdle;
    return;
  }
  current_ = std::move(ifq_.front());
  ifq_.pop_front();
  state_ = State::kContend;
  begin_contention();
}

// ---------------------------------------------------------------------------
// Contention engine: DIFS deferral + frozen-while-busy backoff
// ---------------------------------------------------------------------------

bool WifiMac::medium_free() const {
  return !trx_.medium_busy() && sim_.now() >= nav_until_;
}

SimTime WifiMac::idle_since() const {
  // The medium counts as busy through the end of the NAV even if physically
  // quiet, so the DIFS clock starts at whichever is later.
  return std::max(last_idle_start_, nav_until_);
}

void WifiMac::begin_contention() { medium_check(); }

void WifiMac::medium_check() {
  if (state_ != State::kContend) return;
  sim_.cancel(difs_ev_);
  sim_.cancel(nav_ev_);
  if (trx_.medium_busy()) {
    return;  // phy_busy_end will re-invoke us
  }
  if (sim_.now() < nav_until_) {
    nav_ev_ = sim_.schedule(nav_until_ - sim_.now(), [this] { medium_check(); });
    return;
  }
  const SimTime idle_for = sim_.now() - idle_since();
  if (idle_for >= cfg_.difs) {
    difs_elapsed();
  } else {
    difs_ev_ = sim_.schedule(cfg_.difs - idle_for, [this] { difs_elapsed(); });
  }
}

void WifiMac::difs_elapsed() {
  if (state_ != State::kContend) return;
  if (backoff_slots_ == 0) {
    transmit_current();
    return;
  }
  backoff_started_ = sim_.now();
  backoff_ev_ =
      sim_.schedule(cfg_.slot * static_cast<std::int64_t>(backoff_slots_), [this] { backoff_done(); });
}

void WifiMac::backoff_done() {
  if (state_ != State::kContend) return;
  backoff_slots_ = 0;
  transmit_current();
}

void WifiMac::freeze_backoff() {
  if (!sim_.pending(backoff_ev_)) return;
  sim_.cancel(backoff_ev_);
  const auto elapsed =
      static_cast<std::uint32_t>((sim_.now() - backoff_started_) / cfg_.slot);
  backoff_slots_ -= std::min(elapsed, backoff_slots_);
}

void WifiMac::phy_busy_start() {
  sim_.cancel(difs_ev_);
  sim_.cancel(nav_ev_);
  freeze_backoff();
}

void WifiMac::phy_busy_end() {
  last_idle_start_ = sim_.now();
  medium_check();
}

void WifiMac::update_nav(SimTime duration) {
  const SimTime until = sim_.now() + duration;
  if (until <= nav_until_) return;
  nav_until_ = until;
  if (state_ == State::kContend) {
    sim_.cancel(difs_ev_);
    freeze_backoff();
    medium_check();
  }
}

// ---------------------------------------------------------------------------
// Transmit paths
// ---------------------------------------------------------------------------

void WifiMac::count_tx(const Packet& frame) {
  switch (frame.mac.type) {
    case MacFrameType::kRts:
    case MacFrameType::kCts:
    case MacFrameType::kAck:
      stats_.on_mac_ctrl_tx();
      return;
    case MacFrameType::kData: break;
  }
  switch (frame.kind) {
    case PacketKind::kData: stats_.on_data_tx(); break;
    case PacketKind::kRoutingControl: stats_.on_routing_tx(frame.size_bytes()); break;
    case PacketKind::kArp: stats_.on_arp_tx(); break;
  }
}

void WifiMac::transmit_current() {
  MANET_ASSERT(current_.has_value());
  if (trx_.transmitting()) {
    // We are mid-way through sending a CTS/ACK response; try again shortly.
    difs_ev_ = sim_.schedule(cfg_.slot, [this] { medium_check(); });
    return;
  }
  const PhyConfig& phy = trx_.config();
  Packet& p = *current_;

  if (p.mac.dst == kBroadcast) {
    p.mac.duration = SimTime::zero();
    count_tx(p);
    const SimTime air = trx_.transmit(p);
    // No ACK for broadcast: the exchange completes when the air clears.
    // Tracked in timeout_ev_ (free on this path) so reset() can cancel it
    // if the node crashes mid-broadcast.
    timeout_ev_ = sim_.schedule(air, [this] { finish_current(true); });
    return;
  }

  const bool rts = cfg_.use_rts && p.size_bytes() >= cfg_.rts_threshold;
  if (rts) {
    const SimTime cts_air = phy.airtime(kMacCtsBytes);
    const SimTime data_air = phy.airtime(p.size_bytes());
    const SimTime ack_air = phy.airtime(kMacAckBytes);
    Packet rts_frame;
    rts_frame.mac.type = MacFrameType::kRts;
    rts_frame.mac.src = trx_.id();
    rts_frame.mac.dst = p.mac.dst;
    rts_frame.mac.duration = 3 * cfg_.sifs + cts_air + data_air + ack_air;
    count_tx(rts_frame);
    const SimTime rts_air = trx_.transmit(rts_frame);
    state_ = State::kWaitCts;
    timeout_ev_ = sim_.schedule(
        rts_air + cfg_.sifs + cts_air + 2 * phy.max_propagation() + kTimeoutMargin,
        [this] { cts_timeout(); });
  } else {
    transmit_data_frame();
  }
}

void WifiMac::transmit_data_frame() {
  MANET_ASSERT(current_.has_value());
  if (trx_.transmitting()) {
    // Extremely rare: a response transmission landed on the same instant.
    handle_retry(!cfg_.use_rts);
    return;
  }
  const PhyConfig& phy = trx_.config();
  Packet p = *current_;
  p.mac.retry = (short_retries_ + long_retries_) > 0;
  const SimTime ack_air = phy.airtime(kMacAckBytes);
  p.mac.duration = cfg_.sifs + ack_air;
  count_tx(p);
  const SimTime air = trx_.transmit(p);
  state_ = State::kWaitAck;
  timeout_ev_ = sim_.schedule(
      air + cfg_.sifs + ack_air + 2 * phy.max_propagation() + kTimeoutMargin,
      [this] { ack_timeout(); });
}

void WifiMac::schedule_response(Packet frame) {
  sim_.schedule(cfg_.sifs, [this, frame] {
    if (trx_.transmitting()) return;  // lost the race to our own transmission
    if (trx_.down()) return;          // crashed during the SIFS gap
    count_tx(frame);
    trx_.transmit(frame);
  });
}

// ---------------------------------------------------------------------------
// Exchange outcomes
// ---------------------------------------------------------------------------

void WifiMac::cts_timeout() {
  if (state_ != State::kWaitCts) return;
  handle_retry(/*short_stage=*/true);
}

void WifiMac::ack_timeout() {
  if (state_ != State::kWaitAck) return;
  // Data sent under RTS protection counts against the long retry limit; data
  // sent bare counts against the short one.
  const bool protected_by_rts =
      cfg_.use_rts && current_->size_bytes() >= cfg_.rts_threshold;
  handle_retry(/*short_stage=*/!protected_by_rts);
}

void WifiMac::handle_retry(bool short_stage) {
  MANET_ASSERT(current_.has_value());
  int& counter = short_stage ? short_retries_ : long_retries_;
  const int limit = short_stage ? cfg_.short_retry_limit : cfg_.long_retry_limit;
  ++counter;
  if (counter >= limit) {
    finish_current(false);
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, cfg_.cw_max);
  backoff_slots_ = static_cast<std::uint32_t>(rng_.uniform_int(0, cw_));
  state_ = State::kContend;
  medium_check();
}

void WifiMac::finish_current(bool success) {
  MANET_ASSERT(current_.has_value());
  sim_.cancel(difs_ev_);
  sim_.cancel(nav_ev_);
  sim_.cancel(backoff_ev_);
  sim_.cancel(timeout_ev_);
  Packet done = std::move(*current_);
  current_.reset();
  short_retries_ = long_retries_ = 0;
  cw_ = cfg_.cw_min;
  // Post-transmission backoff, for fairness between consecutive frames.
  backoff_slots_ = static_cast<std::uint32_t>(rng_.uniform_int(0, cfg_.cw_min));
  state_ = State::kIdle;
  if (!success && listener_ != nullptr) {
    // 802.11 link-layer feedback: the routing protocol decides whether to
    // salvage, re-route, or drop (and does the drop accounting).
    listener_->mac_link_failure(done, done.mac.dst);
  }
  start_service();
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

void WifiMac::phy_rx(const Packet& f) {
  const NodeId me = trx_.id();
  switch (f.mac.type) {
    case MacFrameType::kRts: {
      if (f.mac.dst != me) {
        update_nav(f.mac.duration);
        return;
      }
      // Respond only when not engaged in our own exchange and the NAV allows.
      if ((state_ == State::kIdle || state_ == State::kContend) && sim_.now() >= nav_until_) {
        const SimTime cts_air = trx_.config().airtime(kMacCtsBytes);
        Packet cts;
        cts.mac.type = MacFrameType::kCts;
        cts.mac.src = me;
        cts.mac.dst = f.mac.src;
        const SimTime remaining = f.mac.duration - cfg_.sifs - cts_air;
        cts.mac.duration = std::max(remaining, SimTime::zero());
        schedule_response(cts);
      }
      return;
    }
    case MacFrameType::kCts: {
      if (f.mac.dst == me) {
        if (state_ == State::kWaitCts) {
          sim_.cancel(timeout_ev_);
          state_ = State::kSendData;
          sim_.schedule(cfg_.sifs, [this] {
            if (state_ == State::kSendData) transmit_data_frame();
          });
        }
      } else {
        update_nav(f.mac.duration);
      }
      return;
    }
    case MacFrameType::kData: {
      if (f.mac.dst == me) {
        Packet ack;
        ack.mac.type = MacFrameType::kAck;
        ack.mac.src = me;
        ack.mac.dst = f.mac.src;
        ack.mac.duration = SimTime::zero();
        schedule_response(ack);  // ACK even duplicates, else the sender loops
        auto [it, inserted] = rx_last_seq_.try_emplace(f.mac.src, f.mac.seq);
        const bool dup = !inserted && f.mac.retry && it->second == f.mac.seq;
        it->second = f.mac.seq;
        if (!dup && listener_ != nullptr) listener_->mac_deliver(f);
      } else if (f.mac.dst == kBroadcast) {
        if (listener_ != nullptr) listener_->mac_deliver(f);
      } else {
        update_nav(f.mac.duration);
      }
      return;
    }
    case MacFrameType::kAck: {
      if (f.mac.dst == me) {
        if (state_ == State::kWaitAck) {
          sim_.cancel(timeout_ev_);
          finish_current(true);
        }
      } else {
        update_nav(f.mac.duration);
      }
      return;
    }
  }
}

}  // namespace manet
