// IEEE 802.11-DCF-style MAC.
//
// Implements the protocol-visible behaviours the routing comparison depends
// on, with the standard's timing constants:
//   * CSMA/CA: physical carrier sense (from the transceiver) plus virtual
//     carrier sense (NAV from overheard RTS/CTS/DATA duration fields);
//   * DIFS deferral and binary-exponential backoff (CW 31 -> 1023), with the
//     backoff counter frozen while the medium is busy;
//   * RTS/CTS/DATA/ACK exchange for unicast, with separate short (7) and
//     long (4) retry limits; retry exhaustion is reported upward as a link
//     failure — this is the 802.11 link-layer feedback AODV/DSR/CBRP use for
//     route-error generation;
//   * broadcast data sent after DIFS+backoff with no RTS/CTS/ACK (and hence
//     unreliable under contention — the root cause of several effects in the
//     paper family's plots);
//   * a 50-packet drop-tail interface queue;
//   * receive-side duplicate filtering via per-sender sequence numbers.
//
// Simplifications (documented in DESIGN.md): no EIFS, no capture effect, a
// single rate for all frames plus a fixed PLCP preamble.
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "mac/mac_config.hpp"
#include "packet/packet.hpp"
#include "phy/transceiver.hpp"
#include "stats/stats.hpp"

namespace manet {

/// Upward interface implemented by the Node.
class MacListener {
 public:
  virtual ~MacListener() = default;
  /// An intact, non-duplicate frame addressed to this node (or broadcast).
  virtual void mac_deliver(const Packet& frame) = 0;
  /// Unicast delivery to `next_hop` failed after all retries.
  virtual void mac_link_failure(const Packet& frame, NodeId next_hop) = 0;
};

class WifiMac final : public PhyListener {
 public:
  WifiMac(Simulator& sim, const MacConfig& cfg, Transceiver& trx, StatsCollector& stats,
          RngStream rng);

  void set_listener(MacListener* l) { listener_ = l; }

  /// Queue a frame for transmission. `pkt.mac.dst` must already hold the
  /// next-hop (or broadcast) address; everything else MAC-related is filled
  /// in here.
  void enqueue(Packet pkt);

  /// Number of frames waiting (including the one in service).
  [[nodiscard]] std::size_t queue_length() const {
    return ifq_.size() + (current_.has_value() ? 1 : 0);
  }

  /// Fault injection: the node crashed. Cancels every pending MAC event,
  /// drops the frame in service and the whole interface queue (data packets
  /// are charged to DropReason::kNodeDown), and returns to a cold idle state
  /// (fresh contention window, cleared NAV and duplicate-filter memory).
  /// The transmit sequence counter survives so post-restart frames are never
  /// mistaken for retries of pre-crash ones.
  void reset();

  // PhyListener:
  void phy_busy_start() override;
  void phy_busy_end() override;
  void phy_rx(const Packet& frame) override;

 private:
  enum class State : std::uint8_t {
    kIdle,      // nothing in service
    kContend,   // waiting for DIFS/backoff to transmit `current_`
    kWaitCts,   // RTS sent, awaiting CTS
    kSendData,  // CTS received, DATA scheduled after SIFS
    kWaitAck,   // DATA sent, awaiting ACK
  };

  // -- contention engine ------------------------------------------------------
  void start_service();          // begin serving the next queued frame
  void begin_contention();
  void medium_check();
  void difs_elapsed();
  void backoff_done();
  void freeze_backoff();
  [[nodiscard]] bool medium_free() const;
  [[nodiscard]] SimTime idle_since() const;

  // -- transmit paths -----------------------------------------------------------
  void transmit_current();
  void transmit_data_frame();    // the DATA frame of the current exchange
  void schedule_response(Packet frame);  // CTS/ACK after SIFS
  void count_tx(const Packet& frame);

  // -- outcome handling -----------------------------------------------------
  void cts_timeout();
  void ack_timeout();
  void handle_retry(bool short_stage);
  void finish_current(bool success);

  // -- receive side ----------------------------------------------------------
  void update_nav(SimTime duration);

  Simulator& sim_;
  MacConfig cfg_;
  Transceiver& trx_;
  StatsCollector& stats_;
  RngStream rng_;
  MacListener* listener_ = nullptr;

  std::deque<Packet> ifq_;
  std::optional<Packet> current_;
  State state_ = State::kIdle;

  int short_retries_ = 0;
  int long_retries_ = 0;
  std::uint32_t cw_;
  std::uint32_t backoff_slots_ = 0;
  SimTime backoff_started_ = SimTime::zero();

  SimTime nav_until_ = SimTime::zero();
  SimTime last_idle_start_ = SimTime::zero();

  EventId difs_ev_ = kInvalidEventId;
  EventId nav_ev_ = kInvalidEventId;
  EventId backoff_ev_ = kInvalidEventId;
  EventId timeout_ev_ = kInvalidEventId;

  std::uint16_t tx_seq_ = 0;
  // Ordered (keyed-only today): duplicate-filter state must never expose
  // hash order if someone later iterates it for stats or expiry.
  std::map<NodeId, std::uint16_t> rx_last_seq_;
};

}  // namespace manet
