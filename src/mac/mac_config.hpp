// MAC parameters: IEEE 802.11 DSSS DCF timing, as configured in the ns-2 CMU
// wireless stack (2 Mbit/s WaveLAN).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/time.hpp"

namespace manet {

struct MacConfig {
  SimTime slot = microseconds(20);
  SimTime sifs = microseconds(10);
  SimTime difs = microseconds(50);  // sifs + 2 * slot
  std::uint32_t cw_min = 31;
  std::uint32_t cw_max = 1023;
  /// Attempts for the RTS stage, or for data sent without RTS.
  int short_retry_limit = 7;
  /// Attempts for the data stage after a successful RTS/CTS handshake.
  int long_retry_limit = 4;
  /// Drop-tail interface queue depth (the classic ns-2 IFQ of 50).
  std::size_t ifq_capacity = 50;
  /// Unicast data frames of at least this many bytes use RTS/CTS. The ns-2
  /// default of 0 means "all unicast data"; set use_rts=false to disable
  /// entirely (ablation bench).
  std::size_t rts_threshold = 0;
  bool use_rts = true;
};

}  // namespace manet
