// Extension bench: position-aided routing (LAR) vs its non-positional
// ancestors (DSR, AODV).
// Claim under test (Boukerche '04): GPS-equipped, position-aware routing
// minimizes routing overhead — LAR's request zones should undercut both on
// NRL once locations are warm, at comparable delivery.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("abl_lar");
  suite.add_sweep({manet::Protocol::kLar, manet::Protocol::kDsr,
                  manet::Protocol::kAodv}, "vmax", {1, 10, 20},
                  manet::bench::Metric::kAll, manet::bench::mobility_cell);
  return suite.run(argc, argv, "Extension — LAR vs DSR vs AODV (all metrics, 50 nodes)");
}
