// Fig 9 (Boukerche suite): delivered throughput vs pause time, AODV/DSR/CBRP,
// 40 nodes in 1500 x 300 m at v_max 20 m/s.
// Expected shape: throughput rises with pause time (less churn); the three
// protocols converge as the network approaches static.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_pause_throughput");
  suite.add_sweep(manet::bench::kReactiveTrio, "pause", {0, 30, 60, 120},
                  manet::bench::Metric::kThroughput, manet::bench::pause_cell);
  return suite.run(argc, argv, "Fig 9 — Throughput vs pause time (kbps, AODV/DSR/CBRP, 40 nodes, 1500x300 m)");
}
