// Fig 11 (Boukerche suite): normalized routing overhead vs pause time.
// Expected shape: overhead falls as mobility pauses lengthen; AODV highest
// (flooded RREQs per break), DSR/CBRP lower — the paper's headline ranking.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_pause_overhead");
  suite.add_sweep(manet::bench::kReactiveTrio, "pause", {0, 30, 60, 120},
                  manet::bench::Metric::kNrl, manet::bench::pause_cell);
  return suite.run(argc, argv, "Fig 11 — Routing overhead vs pause time (nrl, AODV/DSR/CBRP, 40 nodes)");
}
