// Fig 5: packet delivery ratio vs network density (node count).
// Expected shape: sparse networks partition (everyone suffers); delivery
// recovers with density until control congestion bites the proactive side.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_density_pdr");
  suite.add_sweep(manet::bench::kAll, "nodes", {30, 50, 70, 90},
                  manet::bench::Metric::kPdr, manet::bench::density_cell);
  return suite.run(argc, argv, "Fig 5 — Packet delivery ratio vs density (pdr_pct, v_max 10 m/s)");
}
