// Ablation: AODV expanding-ring search on vs off.
// Question: how much routing load does the TTL escalation save relative to
// always flooding network-wide, and does it cost delivery or delay?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_aodv_ers");
  for (const bool ers : {true, false}) {
    for (const double vmax : {5.0, 20.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "AODV/ers:%s/vmax:%g", ers ? "on" : "off", vmax);
      ScenarioConfig cfg;
      cfg.protocol = Protocol::kAodv;
      cfg.seed = 1;
      cfg.v_max = vmax;
      cfg.aodv.expanding_ring = ers;
      suite.add(name, cfg);
    }
  }
  return suite.run(argc, argv, "Ablation — AODV expanding-ring search on vs off (50 nodes)");
}
