// Ablation: AODV expanding-ring search on vs off.
// Question: how much routing load does the TTL escalation save relative to
// always flooding network-wide, and does it cost delivery or delay?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_aodv_ers");
  for (const bool ers : {true, false}) {
    for (const double vmax : {5.0, 20.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "AODV/ers:%s/vmax:%g", ers ? "on" : "off", vmax);
      suite.add(name, ScenarioBuilder()
                          .protocol(Protocol::kAodv)
                          .seed(1)
                          .speed(0.1, vmax)
                          .with([ers](ScenarioConfig& c) { c.aodv.expanding_ring = ers; })
                          .build());
    }
  }
  return suite.run(argc, argv, "Ablation — AODV expanding-ring search on vs off (50 nodes)");
}
