// Fig 3: normalized routing load vs node mobility.
// Expected shape: proactive >> reactive; among reactive protocols AODV
// exceeds DSR/CBRP (source routing and clustering amortize discovery) —
// Boukerche's headline result.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_mobility_nrl");
  suite.add_sweep(manet::bench::kAll, "vmax", {0, 1, 5, 10, 20},
                  manet::bench::Metric::kNrl, manet::bench::mobility_cell);
  return suite.run(argc, argv, "Fig 3 — Normalized routing load vs mobility (nrl, 50 nodes)");
}
