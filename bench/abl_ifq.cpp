// Ablation: interface-queue depth sweep.
// Question: sensitivity of PDR/delay to the drop-tail IFQ depth (the classic
// ns-2 default is 50) — deeper queues trade loss for latency.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_ifq");
  for (const Protocol p : {Protocol::kAodv, Protocol::kOlsr}) {
    for (const double depth : {5.0, 20.0, 50.0, 200.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "%s/ifq:%g", to_string(p), depth);
      suite.add(name, ScenarioBuilder()
                          .protocol(p)
                          .seed(1)
                          .speed(0.1, 10.0)
                          .with([depth](ScenarioConfig& c) {
                            c.mac.ifq_capacity = static_cast<std::size_t>(depth);
                          })
                          .build());
    }
  }
  return suite.run(argc, argv, "Ablation — interface queue depth (50 nodes, v_max 10)");
}
