// Ablation: interface-queue depth sweep.
// Question: sensitivity of PDR/delay to the drop-tail IFQ depth (the classic
// ns-2 default is 50) — deeper queues trade loss for latency.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_ifq");
  for (const Protocol p : {Protocol::kAodv, Protocol::kOlsr}) {
    for (const double depth : {5.0, 20.0, 50.0, 200.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "%s/ifq:%g", to_string(p), depth);
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.seed = 1;
      cfg.v_max = 10.0;
      cfg.mac.ifq_capacity = static_cast<std::size_t>(depth);
      suite.add(name, cfg);
    }
  }
  return suite.run(argc, argv, "Ablation — interface queue depth (50 nodes, v_max 10)");
}
