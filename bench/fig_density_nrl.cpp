// Fig 7: normalized routing load vs network density.
// Expected shape: AODV nearly flat (scales well); OLSR/DSDV grow steeply —
// periodic control volume is quadratic-ish in node count.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_density_nrl");
  suite.add_sweep(manet::bench::kAll, "nodes", {30, 50, 70, 90},
                  manet::bench::Metric::kNrl, manet::bench::density_cell);
  return suite.run(argc, argv, "Fig 7 — Normalized routing load vs density (nrl, v_max 10 m/s)");
}
