// Micro-benchmarks of the simulation kernel itself: event queue throughput,
// cancellation, RNG draw rate, grid queries, and whole-scenario event rate —
// the numbers that determine how many replications a figure costs.
#include <benchmark/benchmark.h>

#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "geom/grid_index.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace manet;

void EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  RngStream rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule(nanoseconds(rng.uniform_int(0, 1'000'000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(EventQueueScheduleRun)->Arg(1'000)->Arg(100'000);

void EventQueueCancelHeavy(benchmark::State& state) {
  RngStream rng(2);
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 10'000; ++i) {
      ids.push_back(q.schedule(nanoseconds(rng.uniform_int(0, 1'000'000)), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(EventQueueCancelHeavy);

void RngDraws(benchmark::State& state) {
  RngStream rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(RngDraws);

void GridQuery(benchmark::State& state) {
  RngStream rng(4);
  GridIndex g({1000.0, 1000.0}, 550.0);
  for (int i = 0; i < 90; ++i) {
    g.insert({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    out.clear();
    g.query({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)}, 550.0, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(GridQuery);

void ScenarioEventRate(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto r = Scenario::run_once(ScenarioBuilder()
                                          .protocol(Protocol::kAodv)
                                          .nodes(30)
                                          .duration(seconds(20))
                                          .seed(static_cast<std::uint64_t>(state.iterations()))
                                          .build());
    events += r.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_run"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(ScenarioEventRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
