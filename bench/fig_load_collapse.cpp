// fig_load_collapse — goodput vs offered load with the reliable transport on.
//
// Sweeps the CBR source count in {4, 8, 16, 24, 32, 48} on the Boukerche
// 40-node / 1500 x 300 m field for all seven protocols. Each source runs
// closed-loop over ReliableTransport (cumulative ACKs, RTO backoff, AIMD
// window), so the figure shows the classic load-collapse curve: goodput
// (kbps of in-order delivered application bytes) rises with offered load
// until the MAC saturates, then declines as RTO storms spend airtime on
// retransmissions instead of fresh data.
//
// The AODV/sources:4 cell is the CI load-smoke canary (--cell=sources:4
// under pinned MANET_BENCH_SEEDS/MANET_BENCH_DURATION, gated against
// BENCH_load.json); the full sweep runs in the nightly job.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("fig_load_collapse", /*default_seeds=*/1);
  const std::vector<Protocol> protos(std::begin(kAllProtocols), std::end(kAllProtocols));
  suite.add_sweep(protos, "sources", {4, 8, 16, 24, 32, 48}, bench::Metric::kAll,
                  bench::load_cell);
  return suite.run(argc, argv,
                   "fig_load_collapse: closed-loop offered-load sweep over the reliable "
                   "transport, 40 nodes / 1500 x 300 m");
}
