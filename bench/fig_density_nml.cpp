// Fig 8: normalized MAC load vs network density.
// Expected shape: grows for everyone (more contention per delivered packet);
// highest for the proactive side whose control packets congest the medium.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_density_nml");
  suite.add_sweep(manet::bench::kAll, "nodes", {30, 50, 70, 90},
                  manet::bench::Metric::kNml, manet::bench::density_cell);
  return suite.run(argc, argv, "Fig 8 — Normalized MAC load vs density (nml, v_max 10 m/s)");
}
