// Ablation: DSR intermediate replies from route caches on vs off.
// Question: cache replies cut discovery cost but serve stale routes under
// mobility — where does the trade-off flip?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_dsr_cache");
  for (const bool cache : {true, false}) {
    for (const double vmax : {1.0, 10.0, 20.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "DSR/cache_reply:%s/vmax:%g", cache ? "on" : "off",
                    vmax);
      suite.add(name, ScenarioBuilder()
                          .protocol(Protocol::kDsr)
                          .seed(1)
                          .speed(0.1, vmax)
                          .with([cache](ScenarioConfig& c) { c.dsr.intermediate_reply = cache; })
                          .build());
    }
  }
  return suite.run(argc, argv, "Ablation — DSR cache replies on vs off (50 nodes)");
}
