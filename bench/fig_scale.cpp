// fig_scale — metropolitan-scale sweep over the urban Manhattan family.
//
// Sweeps city size N in {40, 200, 1000, 2000, 5000, 10000} at constant
// density (~50 nodes/km²; the area grows with N), reporting the two scale
// metrics the bench gate guards: events/sec (throughput of fixed,
// deterministic work) and bytes-per-node (process peak RSS / N). Sub-
// quadratic growth of total events × time in N is the figure's claim — the
// hot paths are grid-local, so doubling the city should roughly double the
// work, not quadruple it.
//
// The n:2000 cell is the CI scale-smoke canary (--cell=n:2000 under pinned
// MANET_BENCH_SEEDS/MANET_BENCH_DURATION, gated against BENCH_scale.json);
// the full sweep including the 10k-node city runs in the nightly scale job.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("fig_scale", /*default_seeds=*/1);
  for (const std::uint32_t n : {40u, 200u, 1000u, 2000u, 5000u, 10000u}) {
    char label[32];
    std::snprintf(label, sizeof label, "AODV/n:%u", n);
    suite.add(label, bench::urban_cell(Protocol::kAodv, n), bench::Metric::kAll);
  }
  return suite.run(argc, argv,
                   "fig_scale: urban Manhattan family at constant density, city-size sweep");
}
