// Fig 2: average end-to-end delay vs node mobility.
// Expected shape: proactive protocols (OLSR/DSDV) lowest and flat — routes
// are pre-computed; on-demand protocols pay discovery latency that grows
// with route churn.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_mobility_delay");
  suite.add_sweep(manet::bench::kAll, "vmax", {0, 1, 5, 10, 20},
                  manet::bench::Metric::kDelay, manet::bench::mobility_cell);
  return suite.run(argc, argv, "Fig 2 — Average end-to-end delay vs mobility (delay_ms, 50 nodes)");
}
