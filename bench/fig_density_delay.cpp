// Fig 6: average end-to-end delay vs network density.
// Expected shape: OLSR/DSDV lowest throughout; on-demand delay grows with
// density as discovery floods contend for the medium.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_density_delay");
  suite.add_sweep(manet::bench::kAll, "nodes", {30, 50, 70, 90},
                  manet::bench::Metric::kDelay, manet::bench::density_cell);
  return suite.run(argc, argv, "Fig 6 — Average end-to-end delay vs density (delay_ms, v_max 10 m/s)");
}
