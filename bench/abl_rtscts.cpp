// Ablation: RTS/CTS virtual carrier sensing on vs off.
// Question: does disabling the RTS/CTS exchange (leaving plain CSMA/CA +
// ACK) change the protocol ranking or just shift absolute numbers? Hidden-
// terminal collisions hit multi-hop forwarding hardest.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const bool rts : {true, false}) {
      std::string name = std::string(to_string(p)) + (rts ? "/rtscts:on" : "/rtscts:off");
      benchmark::RegisterBenchmark(name.c_str(), [p, rts](benchmark::State& state) {
        ScenarioConfig cfg;
        cfg.protocol = p;
        cfg.seed = 1;
        cfg.v_max = 10.0;
        cfg.mac.use_rts = rts;
        bench::run_cell(state, cfg, bench::Metric::kAll);
      })->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  return bench::run_main(argc, argv,
                         "Ablation — RTS/CTS on vs off (50 nodes, v_max 10 m/s)");
}
