// Ablation: RTS/CTS virtual carrier sensing on vs off.
// Question: does disabling the RTS/CTS exchange (leaving plain CSMA/CA +
// ACK) change the protocol ranking or just shift absolute numbers? Hidden-
// terminal collisions hit multi-hop forwarding hardest.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_rtscts");
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const bool rts : {true, false}) {
      suite.add(std::string(to_string(p)) + (rts ? "/rtscts:on" : "/rtscts:off"),
                ScenarioBuilder()
                    .protocol(p)
                    .seed(1)
                    .speed(0.1, 10.0)
                    .with([rts](ScenarioConfig& c) { c.mac.use_rts = rts; })
                    .build());
    }
  }
  return suite.run(argc, argv, "Ablation — RTS/CTS on vs off (50 nodes, v_max 10 m/s)");
}
