// Fig 10 (Boukerche suite): average end-to-end delay vs pause time.
// Expected shape: delay falls with pause time as fewer packets wait on
// route discovery; DSR/CBRP (cached source routes) below AODV at high churn.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_pause_delay");
  suite.add_sweep(manet::bench::kReactiveTrio, "pause", {0, 30, 60, 120},
                  manet::bench::Metric::kDelay, manet::bench::pause_cell);
  return suite.run(argc, argv, "Fig 10 — Delay vs pause time (delay_ms, AODV/DSR/CBRP, 40 nodes)");
}
