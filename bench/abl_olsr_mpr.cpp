// Ablation: OLSR MPR-restricted TC flooding vs classic full flooding.
// Question: quantify the optimization OLSR is named for — the reduction in
// duplicate TC retransmissions — across network density.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_olsr_mpr");
  for (const bool mpr : {true, false}) {
    for (const double nodes : {30.0, 50.0, 70.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "OLSR/mpr:%s/nodes:%g", mpr ? "on" : "off", nodes);
      ScenarioConfig cfg;
      cfg.protocol = Protocol::kOlsr;
      cfg.seed = 1;
      cfg.num_nodes = static_cast<std::uint32_t>(nodes);
      cfg.v_max = 10.0;
      cfg.olsr.mpr_flooding = mpr;
      suite.add(name, cfg);
    }
  }
  return suite.run(argc, argv,
                   "Ablation — OLSR MPR flooding vs classic flooding (v_max 10 m/s)");
}
