// Ablation: OLSR MPR-restricted TC flooding vs classic full flooding.
// Question: quantify the optimization OLSR is named for — the reduction in
// duplicate TC retransmissions — across network density.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_olsr_mpr");
  for (const bool mpr : {true, false}) {
    for (const double nodes : {30.0, 50.0, 70.0}) {
      char name[64];
      std::snprintf(name, sizeof name, "OLSR/mpr:%s/nodes:%g", mpr ? "on" : "off", nodes);
      suite.add(name, ScenarioBuilder()
                          .protocol(Protocol::kOlsr)
                          .seed(1)
                          .nodes(static_cast<std::uint32_t>(nodes))
                          .speed(0.1, 10.0)
                          .with([mpr](ScenarioConfig& c) { c.olsr.mpr_flooding = mpr; })
                          .build());
    }
  }
  return suite.run(argc, argv,
                   "Ablation — OLSR MPR flooding vs classic flooding (v_max 10 m/s)");
}
