// Extension bench: protocol performance across mobility models
// (Divecha et al. 2007's axis: rankings shift between random waypoint,
// random walk, smooth Gauss-Markov, and the Manhattan street grid).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_mobility");
  const std::pair<MobilityKind, const char*> kinds[] = {
      {MobilityKind::kRandomWaypoint, "waypoint"},
      {MobilityKind::kRandomWalk, "walk"},
      {MobilityKind::kGaussMarkov, "gauss-markov"},
      {MobilityKind::kManhattan, "manhattan"},
  };
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const auto& [kind, label] : kinds) {
      suite.add(std::string(to_string(p)) + "/" + label,
                ScenarioBuilder().protocol(p).seed(1).mobility(kind).speed(0.1, 10.0).build());
    }
  }
  return suite.run(argc, argv, "Extension — mobility models x protocols (50 nodes, v_max 10)");
}
