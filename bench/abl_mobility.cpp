// Extension bench: protocol performance across mobility models
// (Divecha et al. 2007's axis: rankings shift between random waypoint,
// random walk, smooth Gauss-Markov, and the Manhattan street grid).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  const std::pair<MobilityKind, const char*> kinds[] = {
      {MobilityKind::kRandomWaypoint, "waypoint"},
      {MobilityKind::kRandomWalk, "walk"},
      {MobilityKind::kGaussMarkov, "gauss-markov"},
      {MobilityKind::kManhattan, "manhattan"},
  };
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const auto& [kind, label] : kinds) {
      std::string name = std::string(to_string(p)) + "/" + label;
      benchmark::RegisterBenchmark(name.c_str(), [p, kind = kind](benchmark::State& state) {
        ScenarioConfig cfg;
        cfg.protocol = p;
        cfg.seed = 1;
        cfg.mobility = kind;
        cfg.v_max = 10.0;
        bench::run_cell(state, cfg, bench::Metric::kAll);
      })->Unit(benchmark::kMillisecond)->Iterations(1);
    }
  }
  return bench::run_main(argc, argv,
                         "Extension — mobility models x protocols (50 nodes, v_max 10)");
}
