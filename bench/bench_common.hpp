// Shared machinery for the figure/table benches.
//
// Each bench binary regenerates one table or figure of the evaluation: it
// registers one google-benchmark per (protocol, x-value) cell, runs the cell
// as a multi-seed experiment, and reports the figure's metric (mean and
// standard error) as benchmark counters — the printed rows are the figure's
// series. Fidelity/wall-clock knobs come from the environment:
//
//   MANET_BENCH_SEEDS     replications per cell (default 2)
//   MANET_BENCH_DURATION  simulated seconds     (default: per-figure config)
//   MANET_BENCH_THREADS   worker threads        (default: hw concurrency)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace manet::bench {

enum class Metric { kPdr, kDelay, kNrl, kNml, kThroughput, kAll };

inline void report(benchmark::State& state, const Aggregate& a, Metric m) {
  auto set = [&](const char* name, const manet::Metric& v) {
    state.counters[name] = v.mean;
    state.counters[std::string(name) + "_se"] = v.se;
  };
  switch (m) {
    case Metric::kPdr: set("pdr_pct", {a.pdr.mean * 100.0, a.pdr.se * 100.0}); break;
    case Metric::kDelay: set("delay_ms", a.delay_ms); break;
    case Metric::kNrl: set("nrl", a.nrl); break;
    case Metric::kNml: set("nml", a.nml); break;
    case Metric::kThroughput: set("kbps", a.throughput_kbps); break;
    case Metric::kAll:
      set("pdr_pct", {a.pdr.mean * 100.0, a.pdr.se * 100.0});
      set("delay_ms", a.delay_ms);
      set("nrl", a.nrl);
      set("nml", a.nml);
      set("kbps", a.throughput_kbps);
      state.counters["conn_pct"] = a.connectivity.mean * 100.0;
      break;
  }
  state.counters["seeds"] = a.replications;
}

/// Run one figure cell: a multi-seed experiment under the env knobs.
inline void run_cell(benchmark::State& state, ScenarioConfig cfg, Metric m,
                     int default_seeds = 2) {
  const ExperimentRunner runner = ExperimentRunner::from_env(default_seeds);
  ExperimentRunner::apply_env_duration(cfg);
  Aggregate agg;
  for (auto _ : state) {
    agg = runner.run(cfg);
  }
  report(state, agg, m);
}

/// Register a (protocol x value) sweep. `make_cfg` builds the cell config.
inline void register_sweep(
    const std::vector<Protocol>& protocols, const char* param, const std::vector<double>& values,
    Metric metric, const std::function<ScenarioConfig(Protocol, double)>& make_cfg) {
  for (const Protocol p : protocols) {
    for (const double v : values) {
      std::string name = std::string(to_string(p)) + "/" + param + ":";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", v);
      name += buf;
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
                    run_cell(state, make_cfg(p, v), metric);
                  })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

inline const std::vector<Protocol> kAll = {Protocol::kAodv, Protocol::kDsr, Protocol::kCbrp,
                                           Protocol::kDsdv, Protocol::kOlsr};
/// Boukerche's three (the pause-time / offered-load suites).
inline const std::vector<Protocol> kReactiveTrio = {Protocol::kAodv, Protocol::kDsr,
                                                    Protocol::kCbrp};

// -- canonical cell configs --------------------------------------------------

/// Mobility suite: Table-I defaults, sweep node max speed (0 = static).
inline ScenarioConfig mobility_cell(Protocol p, double v_max) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = 1;
  if (v_max <= 0.0) {
    cfg.static_nodes = true;
  } else {
    cfg.v_max = v_max;
  }
  return cfg;
}

/// Density suite: sweep node count at moderate mobility.
inline ScenarioConfig density_cell(Protocol p, double nodes) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = 1;
  cfg.num_nodes = static_cast<std::uint32_t>(nodes);
  cfg.v_max = 10.0;
  return cfg;
}

/// Pause-time suite (Boukerche-style): 40 nodes in 1500 x 300 m, v_max 20,
/// sweep pause time.
inline ScenarioConfig pause_cell(Protocol p, double pause_s) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = 1;
  cfg.num_nodes = 40;
  cfg.area = {1500.0, 300.0};
  cfg.v_max = 20.0;
  cfg.pause = seconds_f(pause_s);
  return cfg;
}

/// Offered-load suite: 40 nodes, sweep the number of CBR sources.
inline ScenarioConfig sources_cell(Protocol p, double sources) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = 1;
  cfg.num_nodes = 40;
  cfg.area = {1500.0, 300.0};
  cfg.v_max = 10.0;
  cfg.num_connections = static_cast<std::uint32_t>(sources);
  return cfg;
}

inline int run_main(int argc, char** argv, const char* banner) {
  std::printf("%s\n", banner);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace manet::bench
