// Shared machinery for the figure/table benches.
//
// Each bench binary regenerates one table or figure of the evaluation. A
// Suite collects every (protocol, x-value) cell of the figure up front, runs
// the whole grid through SweepRunner on one shared worker pool (sweep-level
// parallelism: wall-clock ~ total_replications / cores), then reports each
// cell as a google-benchmark row — the printed rows are the figure's series,
// with the cell's measured wall-clock as the (manual) time. After the table,
// the suite writes machine-readable artifacts:
//
//   results/<bench>.json   per-cell metrics + per-replication profiling
//   results/<bench>.csv    one row per cell, columns from the metric table
//
// Fidelity/wall-clock knobs come from the environment (parsed by BenchEnv):
//
//   MANET_BENCH_SEEDS        replications per cell (default 2)
//   MANET_BENCH_DURATION     simulated seconds     (default: per-figure config)
//   MANET_BENCH_THREADS      worker threads        (default: hw concurrency)
//   MANET_BENCH_RESULTS_DIR  artifact directory    (default: results)
//
// Two extra command-line flags (consumed before google-benchmark sees the
// argument list — gbench aborts on flags it does not know):
//
//   --cell=<substr>          run only cells whose label contains <substr>;
//                            lets CI pin one cheap cell as its bench canary
//   --baseline_out=<path>    also write the sweep in tools/bench_gate
//                            baseline shape ({"schema":1,"entries":[...]})
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "scenario/builder.hpp"
#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"

namespace manet::bench {

enum class Metric { kPdr, kDelay, kNrl, kNml, kThroughput, kAll };

/// Report one finished cell as benchmark counters.
inline void report(benchmark::State& state, const SweepCellResult& cell, Metric m) {
  const Aggregate& a = cell.aggregate;
  auto set = [&](const char* name, const manet::Metric& v) {
    state.counters[name] = v.mean;
    state.counters[std::string(name) + "_se"] = v.se;
  };
  switch (m) {
    case Metric::kPdr: set("pdr_pct", {a.pdr.mean * 100.0, a.pdr.se * 100.0}); break;
    case Metric::kDelay: set("delay_ms", a.delay_ms); break;
    case Metric::kNrl: set("nrl", a.nrl); break;
    case Metric::kNml: set("nml", a.nml); break;
    case Metric::kThroughput: set("kbps", a.throughput_kbps); break;
    case Metric::kAll:
      set("pdr_pct", {a.pdr.mean * 100.0, a.pdr.se * 100.0});
      set("delay_ms", a.delay_ms);
      set("nrl", a.nrl);
      set("nml", a.nml);
      set("kbps", a.throughput_kbps);
      state.counters["conn_pct"] = a.connectivity.mean * 100.0;
      break;
  }
  state.counters["seeds"] = a.replications;
  state.counters["ev_per_s"] = cell.events_per_sec;
  if (cell.bytes_per_node > 0.0) state.counters["b_per_node"] = cell.bytes_per_node;
}

/// One bench binary = one Suite: labeled cells accumulated by main(), then
/// executed as a single sweep and rendered as benchmark rows + artifacts.
class Suite {
 public:
  /// `name` keys the artifact files (results/<name>.json / .csv).
  explicit Suite(std::string name, int default_seeds = 2)
      : name_(std::move(name)), default_seeds_(default_seeds) {}

  void add(std::string label, ScenarioConfig cfg, Metric metric = Metric::kAll) {
    cells_.push_back(SweepCell{std::move(label), std::move(cfg)});
    metrics_.push_back(metric);
  }

  /// Register a (protocol × value) sweep. `make_cfg` builds the cell config.
  void add_sweep(const std::vector<Protocol>& protocols, const char* param,
                 const std::vector<double>& values, Metric metric,
                 const std::function<ScenarioConfig(Protocol, double)>& make_cfg) {
    for (const Protocol p : protocols) {
      for (const double v : values) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", v);
        add(std::string(to_string(p)) + "/" + param + ":" + buf, make_cfg(p, v), metric);
      }
    }
  }

  /// Run the whole grid on one pool, print the rows, write the artifacts.
  int run(int argc, char** argv, const char* banner) {
    std::printf("%s\n", banner);
    const BenchEnv env = BenchEnv::parse(default_seeds_);
    std::string baseline_out;
    consume_own_flags(argc, argv, baseline_out);
    for (SweepCell& c : cells_) env.apply_duration(c.config);

    const SweepRunner runner(env.seeds, env.threads);
    SweepResult sweep = runner.run(cells_);
    sweep.name = name_;

    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
      const SweepCellResult& cell = sweep.cells[i];
      const Metric metric = metrics_[i];
      benchmark::RegisterBenchmark(cell.label.c_str(),
                                   [&cell, metric](benchmark::State& state) {
                                     for (auto _ : state) state.SetIterationTime(cell.wall_s);
                                     report(state, cell, metric);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseManualTime();
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const std::string json_path = env.results_dir + "/" + name_ + ".json";
    const std::string csv_path = env.results_dir + "/" + name_ + ".csv";
    const bool json_ok = sweep.write_json(json_path);
    bool ok = sweep.write_csv(csv_path) && json_ok;
    if (!baseline_out.empty()) {
      std::ofstream out(baseline_out, std::ios::trunc);
      out << sweep.to_baseline_json();
      ok = ok && static_cast<bool>(out);
      if (out) std::printf("baseline: %s\n", baseline_out.c_str());
    }
    std::printf("\nsweep: %zu cells x %d seeds on %u threads in %.2f s (%.0f events/s)\n",
                sweep.cells.size(), sweep.seeds_per_cell, sweep.threads, sweep.wall_s,
                sweep.events_per_sec);
    if (ok) std::printf("artifacts: %s %s\n", json_path.c_str(), csv_path.c_str());
    return ok ? 0 : 1;
  }

 private:
  /// Parse and strip --cell= / --baseline_out= so benchmark::Initialize
  /// (which rejects unknown flags) only sees its own arguments.
  void consume_own_flags(int& argc, char** argv, std::string& baseline_out) {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--cell=", 0) == 0) {
        filter_cells(arg.substr(7));
      } else if (arg.rfind("--baseline_out=", 0) == 0) {
        baseline_out = arg.substr(15);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    argv[argc] = nullptr;
  }

  void filter_cells(std::string_view substr) {
    std::vector<SweepCell> cells;
    std::vector<Metric> metrics;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (cells_[i].label.find(substr) != std::string::npos) {
        cells.push_back(std::move(cells_[i]));
        metrics.push_back(metrics_[i]);
      }
    }
    if (cells.empty()) {
      std::fprintf(stderr, "warning: --cell=%.*s matches no cell label; running all\n",
                   static_cast<int>(substr.size()), substr.data());
      return;
    }
    cells_ = std::move(cells);
    metrics_ = std::move(metrics);
  }

  std::string name_;
  int default_seeds_;
  std::vector<SweepCell> cells_;
  std::vector<Metric> metrics_;
};

inline const std::vector<Protocol> kAll = {Protocol::kAodv, Protocol::kDsr, Protocol::kCbrp,
                                           Protocol::kDsdv, Protocol::kOlsr};
/// Boukerche's three (the pause-time / offered-load suites).
inline const std::vector<Protocol> kReactiveTrio = {Protocol::kAodv, Protocol::kDsr,
                                                    Protocol::kCbrp};

// -- canonical cell configs --------------------------------------------------
// All built through ScenarioBuilder so every bench cell is validated before
// the sweep starts (a bad sweep axis fails fast, not three cells in).

/// Mobility suite: Table-I defaults, sweep node max speed (0 = static).
inline ScenarioConfig mobility_cell(Protocol p, double v_max) {
  ScenarioBuilder b;
  b.protocol(p).seed(1);
  if (v_max <= 0.0) {
    b.static_nodes();
  } else {
    b.speed(0.1, v_max);
  }
  return b.build();
}

/// Density suite: sweep node count at moderate mobility.
inline ScenarioConfig density_cell(Protocol p, double nodes) {
  return ScenarioBuilder()
      .protocol(p)
      .seed(1)
      .nodes(static_cast<std::uint32_t>(nodes))
      .speed(0.1, 10.0)
      .build();
}

/// Pause-time suite (Boukerche-style): 40 nodes in 1500 x 300 m, v_max 20,
/// sweep pause time.
inline ScenarioConfig pause_cell(Protocol p, double pause_s) {
  return ScenarioBuilder()
      .protocol(p)
      .seed(1)
      .nodes(40)
      .area(1500.0, 300.0)
      .speed(0.1, 20.0)
      .pause(seconds_f(pause_s))
      .build();
}

/// Offered-load suite: 40 nodes, sweep the number of CBR sources.
inline ScenarioConfig sources_cell(Protocol p, double sources) {
  return ScenarioBuilder()
      .protocol(p)
      .seed(1)
      .nodes(40)
      .area(1500.0, 300.0)
      .speed(0.1, 10.0)
      .connections(static_cast<std::uint32_t>(sources))
      .build();
}

/// Load-collapse suite: offered-load sweep with the reliable transport on.
/// Every CBR source runs closed-loop through ReliableTransport, so raising
/// per-flow rate alone just fills send windows; sweeping the *source count*
/// instead raises aggregate offered load past the MAC's capacity, and
/// goodput collapses under RTO/retransmission pressure (the figure's claim).
inline ScenarioConfig load_cell(Protocol p, double sources) {
  TransportConfig transport;
  transport.enabled = true;
  return ScenarioBuilder()
      .protocol(p)
      .seed(1)
      .nodes(40)
      .area(1500.0, 300.0)
      .speed(0.1, 10.0)
      .connections(static_cast<std::uint32_t>(sources))
      .transport(transport)
      .build();
}

/// Scale suite: the urban Manhattan family at constant density — the city
/// grows with N, so this sweeps metropolitan size, not node density (see
/// urban_scenario() in scenario/builder.hpp).
inline ScenarioConfig urban_cell(Protocol p, double nodes) {
  return urban_scenario(static_cast<std::uint32_t>(nodes)).protocol(p).seed(1).build();
}

/// Fault suite: moderate Table-I-style network, sweep the expected number of
/// crash/restart cycles per node. Slow mobility and a small area keep the
/// fault-free baseline near-perfect, so the PDR delta is attributable to the
/// injected crashes rather than to mobility churn.
inline ScenarioConfig fault_cell(Protocol p, double crash_rate) {
  FaultConfig fault;
  fault.crash_rate = crash_rate;
  fault.downtime_mean = seconds(20);
  fault.window_from = seconds(20);
  return ScenarioBuilder().protocol(p).seed(1).nodes(30).speed(0.1, 5.0).fault(fault).build();
}

}  // namespace manet::bench
