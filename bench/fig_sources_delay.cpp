// Fig 13 (Boukerche suite): average end-to-end delay vs offered load.
// Expected shape: delay explodes past the saturation knee (queueing); source-
// routed protocols hold out slightly longer than AODV.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_sources_delay");
  suite.add_sweep(manet::bench::kReactiveTrio, "sources", {5, 10, 20, 30},
                  manet::bench::Metric::kDelay, manet::bench::sources_cell);
  return suite.run(argc, argv, "Fig 13 — Delay vs offered load (delay_ms, AODV/DSR/CBRP, 40 nodes)");
}
