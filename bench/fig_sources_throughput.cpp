// Fig 12 (Boukerche suite): delivered throughput vs offered load (number of
// CBR sources).
// Expected shape: linear rise, then saturation as the 2 Mbit/s medium fills;
// AODV saturates earliest (discovery floods compete with data).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_sources_throughput");
  suite.add_sweep(manet::bench::kReactiveTrio, "sources", {5, 10, 20, 30},
                  manet::bench::Metric::kThroughput, manet::bench::sources_cell);
  return suite.run(argc, argv, "Fig 12 — Throughput vs offered load (kbps, AODV/DSR/CBRP, 40 nodes)");
}
