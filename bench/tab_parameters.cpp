// Table I: the simulation parameters, printed exactly as configured, plus a
// tiny one-cell sweep confirming a default scenario runs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const manet::ScenarioConfig defaults;
  std::printf("Table I — Simulation parameters\n\n%s\n", defaults.parameter_table().c_str());

  manet::bench::Suite suite("tab_parameters", /*default_seeds=*/1);
  suite.add("TableOne", manet::ScenarioBuilder()
                            .nodes(20)  // smoke-sized sanity cell
                            .duration(manet::seconds(20))
                            .build());
  return suite.run(argc, argv, "");
}
