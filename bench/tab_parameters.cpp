// Table I: the simulation parameters, printed exactly as configured, plus a
// tiny one-cell sweep confirming a default scenario runs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const manet::ScenarioConfig defaults;
  std::printf("Table I — Simulation parameters\n\n%s\n", defaults.parameter_table().c_str());

  manet::bench::Suite suite("tab_parameters", /*default_seeds=*/1);
  manet::ScenarioConfig cfg;
  cfg.num_nodes = 20;  // smoke-sized sanity cell
  cfg.duration = manet::seconds(20);
  suite.add("TableOne", cfg);
  return suite.run(argc, argv, "");
}
