// Table I: the simulation parameters, printed exactly as configured, plus a
// tiny one-cell benchmark confirming a default scenario runs.
#include "bench_common.hpp"

namespace {

void TableOne(benchmark::State& state) {
  manet::ScenarioConfig cfg;
  cfg.num_nodes = 20;  // smoke-sized sanity cell
  cfg.duration = manet::seconds(20);
  manet::bench::run_cell(state, cfg, manet::bench::Metric::kAll, /*default_seeds=*/1);
}
BENCHMARK(TableOne)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const manet::ScenarioConfig cfg;
  std::printf("Table I — Simulation parameters\n\n%s\n", cfg.parameter_table().c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
