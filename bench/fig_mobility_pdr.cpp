// Fig 1: packet delivery ratio vs node mobility (max speed, m/s).
// Expected shape: all protocols > 90 % when static; reactive protocols
// degrade gracefully with speed, DSDV degrades sharply, OLSR sits lowest.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_mobility_pdr");
  suite.add_sweep(manet::bench::kAll, "vmax", {0, 1, 5, 10, 20},
                  manet::bench::Metric::kPdr, manet::bench::mobility_cell);
  return suite.run(argc, argv, "Fig 1 — Packet delivery ratio vs mobility (pdr_pct, 50 nodes, 1000x1000 m)");
}
