// Ablation: channel frame-loss rate sweep (fading stand-in).
// Question: how fast does each protocol class degrade when the radio is no
// longer an ideal unit disk? Broadcast-dependent machinery (route discovery
// floods, HELLO/TC beacons) has no MAC retransmission shield.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_loss");
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const double loss : {0.0, 0.05, 0.15, 0.3}) {
      char name[64];
      std::snprintf(name, sizeof name, "%s/loss:%g", to_string(p), loss);
      suite.add(name,
                ScenarioBuilder().protocol(p).seed(1).speed(0.1, 10.0).frame_loss(loss).build());
    }
  }
  return suite.run(argc, argv, "Ablation — per-frame loss rate (50 nodes, v_max 10 m/s)");
}
