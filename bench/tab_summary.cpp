// Table II: cross-suite summary — every protocol under the Table-I default
// scenario (50 nodes, v_max 20, pause 0), all four canonical metrics per row.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("tab_summary");
  for (const manet::Protocol p : manet::bench::kAll) {
    suite.add(manet::to_string(p), manet::ScenarioBuilder().protocol(p).seed(1).build());
  }
  return suite.run(
      argc, argv,
      "Table II — Summary: all metrics per protocol (Table-I defaults: 50 nodes, v_max 20)");
}
