// Table II: cross-suite summary — every protocol under the Table-I default
// scenario (50 nodes, v_max 20, pause 0), all four canonical metrics per row.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  for (const manet::Protocol p : manet::bench::kAll) {
    benchmark::RegisterBenchmark(manet::to_string(p), [p](benchmark::State& state) {
      manet::ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.seed = 1;
      manet::bench::run_cell(state, cfg, manet::bench::Metric::kAll);
    })->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  return manet::bench::run_main(
      argc, argv,
      "Table II — Summary: all metrics per protocol (Table-I defaults: 50 nodes, v_max 20)");
}
