// Fault suite (extension): delivery ratio vs injected node-crash rate, all
// seven protocols, 30 nodes at slow mobility so the fault-free column is the
// near-perfect control. Expected shape: PDR falls monotonically with crash
// rate for every protocol; the reactive protocols (AODV/DSR/CBRP/LAR)
// degrade more gracefully than DSDV/OLSR because they re-discover routes on
// demand after a restart instead of waiting out periodic update intervals.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_fault_pdr");
  const std::vector<manet::Protocol> all(std::begin(manet::kAllProtocols),
                                         std::end(manet::kAllProtocols));
  suite.add_sweep(all, "crash", {0, 1, 2}, manet::bench::Metric::kPdr,
                  manet::bench::fault_cell);
  return suite.run(argc, argv,
                   "Fault suite — PDR vs node crash rate (all protocols, 30 nodes, 1000x1000 m)");
}
