// Extension bench: CBR vs bursty exponential ON/OFF traffic.
// Question: reactive routes go stale between bursts, so each new burst pays
// a fresh discovery — does burstiness punish on-demand protocols more than
// proactive ones at equal average offered load?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_traffic");
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const TrafficKind t : {TrafficKind::kCbr, TrafficKind::kOnOff}) {
      ScenarioBuilder b;
      b.protocol(p).seed(1).speed(0.1, 10.0).traffic(t);
      // ON/OFF sends ~half the time; double the connections to keep the
      // average offered load comparable with the CBR column.
      if (t == TrafficKind::kOnOff) b.connections(20);
      suite.add(std::string(to_string(p)) + (t == TrafficKind::kCbr ? "/cbr" : "/onoff"),
                b.build());
    }
  }
  return suite.run(argc, argv, "Extension — CBR vs exponential ON/OFF traffic (50 nodes)");
}
