// Extension bench: CBR vs bursty exponential ON/OFF traffic.
// Question: reactive routes go stale between bursts, so each new burst pays
// a fresh discovery — does burstiness punish on-demand protocols more than
// proactive ones at equal average offered load?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("abl_traffic");
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr, Protocol::kOlsr}) {
    for (const TrafficKind t : {TrafficKind::kCbr, TrafficKind::kOnOff}) {
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.seed = 1;
      cfg.v_max = 10.0;
      cfg.traffic = t;
      // ON/OFF sends ~half the time; double the connections to keep the
      // average offered load comparable with the CBR column.
      if (t == TrafficKind::kOnOff) cfg.num_connections = 20;
      suite.add(std::string(to_string(p)) + (t == TrafficKind::kCbr ? "/cbr" : "/onoff"), cfg);
    }
  }
  return suite.run(argc, argv, "Extension — CBR vs exponential ON/OFF traffic (50 nodes)");
}
