// Fig 4: normalized MAC load vs node mobility.
// Expected shape: follows NRL but compressed — RTS/CTS/ACK volume scales
// with delivered data for every protocol.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("fig_mobility_nml");
  suite.add_sweep(manet::bench::kAll, "vmax", {0, 1, 5, 10, 20},
                  manet::bench::Metric::kNml, manet::bench::mobility_cell);
  return suite.run(argc, argv, "Fig 4 — Normalized MAC load vs mobility (nml, 50 nodes)");
}
