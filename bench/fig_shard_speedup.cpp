// Kernel bench: event rate vs shard count for the conservative-parallel
// prototype. Same scenario, same seed, MANET_SHARDS ∈ {1, 2, 4} — the
// metrics must be identical by construction (test_shards proves it); the
// interesting column is ev_per_s. In this prototype callbacks still execute
// serially on the coordinator, so the expected speedup is modest (the
// parallel phase is the per-node mobility integration) and the 1-shard rows
// double as a regression watch on the sharded bookkeeping overhead.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  bench::Suite suite("fig_shard_speedup");
  for (const Protocol p : {Protocol::kAodv, Protocol::kOlsr}) {
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      char name[64];
      std::snprintf(name, sizeof name, "%s/shards:%u", to_string(p), shards);
      suite.add(name, ScenarioBuilder()
                          .protocol(p)
                          .seed(1)
                          .nodes(70)
                          .speed(0.1, 10.0)
                          .shards(shards)
                          .build());
    }
  }
  return suite.run(argc, argv,
                   "Kernel — events/s vs shard count (identical metrics by construction)");
}
