// Extension bench: TORA-lite vs AODV vs DSR (the Broch '98 / Ahmed '06
// protocol set). Link reversal repairs routes without flooding, but the
// beacon substrate (our IMEP stand-in) is a fixed cost and heights go stale
// under churn — where does each effect dominate?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  manet::bench::Suite suite("abl_tora");
  suite.add_sweep({manet::Protocol::kTora, manet::Protocol::kAodv,
                  manet::Protocol::kDsr}, "vmax", {1, 10, 20},
                  manet::bench::Metric::kAll, manet::bench::mobility_cell);
  return suite.run(argc, argv, "Extension — TORA vs AODV vs DSR (all metrics, 50 nodes)");
}
