#include "routing/lar/lar.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory lar_factory(lar::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<lar::Lar>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

lar::Lar& as_lar(RoutingProtocol& rp) { return dynamic_cast<lar::Lar&>(rp); }

TEST(LarZone, ContainsSourceAndExpectedDisc) {
  const auto z = lar::request_zone({0.0, 0.0}, {500.0, 300.0}, 100.0);
  EXPECT_FALSE(z.unrestricted);
  EXPECT_TRUE(z.contains({0.0, 0.0}));       // source corner
  EXPECT_TRUE(z.contains({600.0, 400.0}));   // disc top-right
  EXPECT_TRUE(z.contains({400.0, 200.0}));   // disc bottom-left
  EXPECT_TRUE(z.contains({300.0, 150.0}));   // interior
  EXPECT_FALSE(z.contains({700.0, 300.0}));  // beyond the disc
  EXPECT_FALSE(z.contains({-50.0, 0.0}));    // behind the source
}

TEST(LarZone, SourceAboveDestination) {
  const auto z = lar::request_zone({500.0, 500.0}, {100.0, 100.0}, 50.0);
  EXPECT_TRUE(z.contains({500.0, 500.0}));
  EXPECT_TRUE(z.contains({50.0, 50.0}));
  EXPECT_FALSE(z.contains({600.0, 500.0}));
}

TEST(LarZone, UnrestrictedContainsEverything) {
  const lar::RequestZone z;  // default: unrestricted
  EXPECT_TRUE(z.contains({1e9, -1e9}));
}

TEST(Lar, Name) {
  TestNet net(line_positions(2), lar_factory());
  EXPECT_STREQ(net.routing(0).name(), "LAR");
}

TEST(Lar, FirstDiscoveryFloodsAndDelivers) {
  TestNet net(line_positions(5), lar_factory());
  net.send_data(0, 4);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.stats().avg_hops(), 4.0);
}

TEST(Lar, LearnsLocationsFromDiscovery) {
  TestNet net(line_positions(4), lar_factory());
  net.send_data(0, 3);
  net.run_for(seconds(3));
  // Source learned the target's location from the RREP...
  EXPECT_TRUE(as_lar(net.routing(0)).has_location_for(3));
  // ...and intermediate/target nodes learned the origin's from the RREQ.
  EXPECT_TRUE(as_lar(net.routing(3)).has_location_for(0));
  EXPECT_TRUE(as_lar(net.routing(1)).has_location_for(0));
}

TEST(Lar, CachedRouteSkipsDiscovery) {
  TestNet net(line_positions(3), lar_factory());
  net.send_data(0, 2);
  net.run_for(seconds(3));
  const auto tx = net.stats().routing_tx();
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
  EXPECT_EQ(net.stats().routing_tx(), tx);
}

TEST(Lar, ZoneLimitsRediscoveryFlood) {
  // A straight-line corridor to the target plus a long out-of-the-way spur.
  // After locations are known, a re-discovery's request zone excludes the
  // spur nodes, so they must not rebroadcast.
  std::vector<Vec2> pos = {{0.0, 0.0},   {200.0, 0.0}, {400.0, 0.0},
                           {0.0, 200.0}, {0.0, 400.0}, {0.0, 600.0}};
  lar::Config cfg;
  cfg.route_lifetime = seconds(4);  // force a re-discovery quickly
  cfg.min_expected_radius = 150.0;
  std::uint64_t lar_tx = 0, flood_tx = 0;
  {
    TestNet net(pos, lar_factory(cfg));
    net.send_data(0, 2);
    net.run_for(seconds(6));           // route expires
    net.send_data(0, 2, 0, 1);         // zone-limited re-discovery
    net.run_for(seconds(4));
    EXPECT_EQ(net.stats().data_delivered(), 2u);
    lar_tx = net.stats().routing_tx();
  }
  {
    // Same topology and schedule but with the zone effectively disabled
    // (huge expected radius): the spur rebroadcasts both floods.
    lar::Config wide = cfg;
    wide.min_expected_radius = 10'000.0;
    TestNet net(pos, lar_factory(wide));
    net.send_data(0, 2);
    net.run_for(seconds(6));
    net.send_data(0, 2, 0, 1);
    net.run_for(seconds(4));
    EXPECT_EQ(net.stats().data_delivered(), 2u);
    flood_tx = net.stats().routing_tx();
  }
  EXPECT_LT(lar_tx, flood_tx);
}

TEST(Lar, FallbackFloodReachesMovedTarget) {
  // The target moves far outside its expected zone; the first zone-limited
  // re-discovery fails but the fallback flood finds it via the diagonal
  // chain 0-3-4 that the request zone excludes.
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0},
                           {170.0, 170.0}, {340.0, 340.0}};
  lar::Config cfg;
  cfg.route_lifetime = seconds(4);
  cfg.min_expected_radius = 120.0;
  cfg.assumed_v_max = 1.0;  // keep the zone tight despite location age
  TestNet net(pos, lar_factory(cfg));
  net.send_data(0, 2);
  net.run_for(seconds(3));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  // Target teleports diagonally away, reachable only through node 4.
  net.mobility(2).set_position({500.0, 500.0});
  net.run_for(seconds(3));  // old route also expires
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(20));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Lar, SourceReroutesAfterLinkFailure) {
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {200.0, 150.0}};
  TestNet net(pos, lar_factory());
  net.send_data(0, 2);
  net.run_for(seconds(3));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(1).set_position({2500.0, 2500.0});
  net.run_for(seconds(1));
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(20));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Lar, UnreachableTargetGivesUp) {
  TestNet net(line_positions(2), lar_factory());
  net.send_data(0, 40);
  net.run_for(seconds(120));
  EXPECT_EQ(net.stats().data_delivered(), 0u);
  EXPECT_GT(net.stats().drops(DropReason::kNoRoute) +
                net.stats().drops(DropReason::kBufferTimeout),
            0u);
}

}  // namespace
}  // namespace manet
