// Behavioural pyramid for the reliable transport (src/transport).
//
// The layers, bottom-up:
//
//   1. Fuzz: a two-node net whose "routing" is a seeded chaos monkey
//      (drop/duplicate/delay) — against it, the receiver must deliver the
//      application stream exactly once, in order, with no aborts: the
//      hand-written oracle is simply the identity sequence 0..N-1.
//   2. Hand-computed fixtures: the RTO backoff ladder fires at exactly
//      t+100/300/700 ms and gives up at t+1500 ms; AIMD grows the window
//      +1/cwnd per ACKed segment to the cap and halves it per timeout;
//      Jacobson's first sample sets srtt = RTT, rttvar = RTT/2; Karn's rule
//      keeps retransmitted segments out of the estimator.
//   3. Closed-loop backpressure: a full send buffer refuses the offer and
//      consumes no sequence number.
//   4. Fault behaviour: crash-mid-flow cold-resets every flow while the
//      epoch counter survives, so the next incarnation outranks stale
//      segments still in flight; a crashed receiver converges via
//      abort + fresh epoch.

#include "transport/transport.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "net/node.hpp"
#include "net/routing_api.hpp"
#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;

// ---------------------------------------------------------------------------
// Chaos harness: two nodes, adversarial "routing" in between
// ---------------------------------------------------------------------------

struct Chaos {
  double drop = 0.0;      ///< per-packet loss probability
  double dup = 0.0;       ///< per-packet duplication probability
  double delay_lo = 0.001;  ///< uniform one-way delay bounds (seconds)
  double delay_hi = 0.005;  ///< != delay_lo reorders packets
};

/// A RoutingProtocol that is really a chaos monkey: every packet (segment or
/// ACK) is independently dropped, duplicated, and delayed from a seeded
/// stream, then handed straight to the peer node's transport endpoint. This
/// isolates the transport's behaviour from any real routing dynamics.
class ChaosRouting final : public RoutingProtocol {
 public:
  ChaosRouting(Node& node, Chaos cfg, RngStream rng)
      : RoutingProtocol(node), cfg_(cfg), rng_(std::move(rng)) {}

  void set_peer(Node* peer) { peer_ = peer; }
  void set_chaos(Chaos cfg) { cfg_ = cfg; }

  void start() override {}
  void route_packet(Packet pkt) override {
    if (rng_.uniform() < cfg_.drop) return;
    deliver(pkt);
    if (rng_.uniform() < cfg_.dup) deliver(pkt);
  }
  void on_control(const Packet&, NodeId) override {}
  void on_node_restart() override {}
  [[nodiscard]] const char* name() const override { return "CHAOS"; }

 private:
  void deliver(const Packet& pkt) {
    Node* peer = peer_;
    const SimTime d = seconds_f(rng_.uniform(cfg_.delay_lo, cfg_.delay_hi));
    node_.sim().schedule(d, [peer, pkt] {
      // The channel never delivers to a crashed receiver; mirror that.
      if (peer == nullptr || peer->down() || peer->transport() == nullptr) return;
      if (pkt.transport.kind == SegKind::kAck) {
        peer->transport()->on_ack(pkt);
      } else {
        peer->transport()->on_segment(pkt);
      }
    });
  }

  Chaos cfg_;
  RngStream rng_;
  Node* peer_ = nullptr;
};

/// Two nodes with ReliableTransport endpoints wired over ChaosRouting.
/// Node 0 is the sender by convention; node 1 the receiver.
struct ChaosNet {
  ChaosNet(const Chaos& chaos, const TransportConfig& tcfg, std::uint64_t seed = 1)
      : net(test::line_positions(2, 100.0),
            [chaos, seed](Node& n, std::uint64_t) {
              return std::make_unique<ChaosRouting>(n, chaos,
                                                    RngStream(seed, "chaos", n.id()));
            }),
        tp0(std::make_unique<ReliableTransport>(net.node(0), tcfg, &monitor)),
        tp1(std::make_unique<ReliableTransport>(net.node(1), tcfg, &monitor)) {
    net.node(0).set_transport(tp0.get());
    net.node(1).set_transport(tp1.get());
    chaos_of(0).set_peer(&net.node(1));
    chaos_of(1).set_peer(&net.node(0));
    tp1->set_delivery_probe([this](const Packet& p) { delivered.push_back(p.app.seq); });
  }

  ChaosRouting& chaos_of(std::size_t i) {
    return static_cast<ChaosRouting&>(net.routing(i));
  }

  TestNet net;
  FlowMonitor monitor;
  std::unique_ptr<ReliableTransport> tp0;
  std::unique_ptr<ReliableTransport> tp1;
  std::vector<std::uint32_t> delivered;  ///< app seqs, in delivery order
};

/// Closed-loop application: offers app seqs 0..total-1 every `every`,
/// holding (and re-offering) the current seq whenever the buffer refuses it.
struct Driver {
  ReliableTransport& tp;
  Simulator& sim;
  std::uint32_t total;
  SimTime every;
  std::uint32_t flow = 1;
  std::uint32_t next = 0;

  void tick() {
    if (next >= total) return;
    if (tp.try_send(flow, /*dst=*/1, /*payload_bytes=*/512, next)) ++next;
    sim.schedule(every, [this] { tick(); });
  }
};

// ---------------------------------------------------------------------------
// 1. Fuzz vs the in-order oracle
// ---------------------------------------------------------------------------

TEST(TransportFuzz, ExactlyOnceInOrderUnderLossReorderDuplication) {
  const Chaos kConfigs[] = {
      {0.0, 0.0, 0.001, 0.005},   // reorder only
      {0.15, 0.0, 0.001, 0.005},  // loss + reorder
      {0.3, 0.2, 0.001, 0.008},   // heavy loss + duplication + reorder
      {0.0, 0.35, 0.001, 0.005},  // duplication storm
  };
  TransportConfig t;
  t.enabled = true;
  t.rto_initial = milliseconds(80);
  t.rto_min = milliseconds(20);
  t.rto_max = seconds(1);
  t.cwnd_max = 8;
  t.max_retx = 60;  // the fuzz must never abort: 0.3^61 is not a thing

  constexpr std::uint32_t kCount = 50;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const Chaos& chaos : kConfigs) {
      ChaosNet h(chaos, t, seed);
      Driver app{*h.tp0, h.net.sim(), kCount, milliseconds(3)};
      app.tick();
      h.net.run_for(seconds(120));

      // The oracle: the app stream comes out the far end exactly once, in
      // order — regardless of what the chaos did to individual packets.
      ASSERT_EQ(h.delivered.size(), kCount)
          << "seed " << seed << " drop=" << chaos.drop << " dup=" << chaos.dup;
      for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(h.delivered[i], i);
      EXPECT_EQ(h.tp0->aborts(), 0u);

      // Per-flow accounting agrees with the aggregate stats.
      const FlowRecord* fr = h.monitor.find(1);
      ASSERT_NE(fr, nullptr);
      EXPECT_EQ(fr->tx_packets, kCount);
      EXPECT_EQ(fr->rx_packets, kCount);
      EXPECT_EQ(fr->rx_bytes, kCount * 512u);
      EXPECT_EQ(fr->rx_bytes, h.net.stats().delivered_bytes());
      EXPECT_EQ(fr->src, 0u);
      EXPECT_EQ(fr->dst, 1u);
      if (chaos.drop > 0.0) {
        EXPECT_GT(fr->retransmissions, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Hand-computed fixtures
// ---------------------------------------------------------------------------

TEST(TransportRto, BackoffLadderFiresAt100_300_700AndAbortsAt1500ms) {
  // Blackhole link, rto_initial = 100 ms, max_retx = 3. The timer doubles
  // per backoff step, so from the transmission at t=0 the retransmissions
  // land at exactly t=100, 300, 700 ms and the 4th expiry at t=1500 ms
  // exceeds max_retx and aborts the incarnation.
  Chaos blackhole{1.0, 0.0, 0.001, 0.001};
  TransportConfig t;
  t.enabled = true;
  t.rto_initial = milliseconds(100);
  t.rto_min = milliseconds(50);
  t.rto_max = seconds(10);
  t.cwnd_init = 2;
  t.max_retx = 3;
  ChaosNet h(blackhole, t);

  ASSERT_TRUE(h.tp0->try_send(7, 1, 512, 0));
  auto v = h.tp0->sender_view(7);
  EXPECT_TRUE(v.exists);
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_DOUBLE_EQ(v.cwnd, 2.0);

  h.net.run_for(milliseconds(150));  // past the 1st expiry at t=100
  v = h.tp0->sender_view(7);
  EXPECT_EQ(v.head_retx, 1u);
  EXPECT_EQ(v.backoff, 1u);
  EXPECT_DOUBLE_EQ(v.cwnd, 1.0);  // halved, floored at one segment

  h.net.run_for(milliseconds(200));  // t=350, past the 2nd expiry at t=300
  v = h.tp0->sender_view(7);
  EXPECT_EQ(v.head_retx, 2u);
  EXPECT_EQ(v.backoff, 2u);

  h.net.run_for(milliseconds(400));  // t=750, past the 3rd expiry at t=700
  v = h.tp0->sender_view(7);
  EXPECT_EQ(v.head_retx, 3u);
  EXPECT_EQ(v.backoff, 3u);

  h.net.run_for(milliseconds(800));  // t=1550, past the give-up at t=1500
  EXPECT_FALSE(h.tp0->sender_view(7).exists);
  EXPECT_EQ(h.tp0->sender_flow_count(), 0u);
  EXPECT_EQ(h.tp0->aborts(), 1u);
  EXPECT_EQ(h.net.stats().drops(DropReason::kTransportGiveUp), 1u);
  EXPECT_TRUE(h.delivered.empty());

  // The next offer starts a fresh, strictly higher incarnation.
  ASSERT_TRUE(h.tp0->try_send(7, 1, 512, 1));
  EXPECT_EQ(h.tp0->sender_view(7).epoch, 2u);
}

TEST(TransportCwnd, AimdGrowsPerAckToTheCapAndHalvesPerTimeout) {
  // Fixed 2 ms one-way delay; cwnd_init 2, cap 3. Per ACKed segment the
  // window grows +1/cwnd: 2 -> 2.5 -> 2.9 -> cap 3.0. A blackhole phase then
  // halves it per timeout: 3 -> 1.5 -> 1 (floor). Karn: nothing sampled off
  // the retransmitted recovery, so srtt is bit-identical across the outage.
  Chaos clean{0.0, 0.0, 0.002, 0.002};
  TransportConfig t;
  t.enabled = true;
  t.rto_initial = milliseconds(100);
  t.rto_min = milliseconds(50);
  t.rto_max = seconds(2);
  t.cwnd_init = 2;
  t.cwnd_max = 3;
  ChaosNet h(clean, t);

  for (std::uint32_t s = 0; s < 6; ++s) ASSERT_TRUE(h.tp0->try_send(4, 1, 256, s));
  auto v = h.tp0->sender_view(4);
  EXPECT_EQ(v.inflight, 2u);  // cwnd_init segments on the wire
  EXPECT_EQ(v.queued, 6u);

  // t=5 ms: exactly the first two ACKs (sent at 2 ms, arriving at 4 ms)
  // have been processed — two additive increases: 2 + 1/2 + 1/2.5.
  h.net.run_for(milliseconds(5));
  EXPECT_DOUBLE_EQ(h.tp0->sender_view(4).cwnd, 2.0 + 1.0 / 2.0 + 1.0 / 2.5);

  h.net.run_for(milliseconds(20));  // drain the rest
  v = h.tp0->sender_view(4);
  EXPECT_EQ(h.delivered.size(), 6u);
  EXPECT_DOUBLE_EQ(v.cwnd, 3.0);  // additive increase stopped at the cap
  EXPECT_EQ(v.queued, 0u);
  EXPECT_GT(v.srtt_s, 0.0);
  const double srtt_before = v.srtt_s;

  // Blackhole: two fresh segments on the wire, every copy lost. srtt ~ 4 ms
  // keeps the estimator-derived RTO at the 50 ms floor, so the expiries land
  // +50/+100/+200 ms after the transmissions.
  h.chaos_of(0).set_chaos({1.0, 0.0, 0.002, 0.002});
  ASSERT_TRUE(h.tp0->try_send(4, 1, 256, 6));
  ASSERT_TRUE(h.tp0->try_send(4, 1, 256, 7));
  EXPECT_EQ(h.tp0->sender_view(4).inflight, 2u);
  h.net.run_for(milliseconds(400));
  v = h.tp0->sender_view(4);
  EXPECT_EQ(v.head_retx, 3u);
  EXPECT_EQ(v.backoff, 3u);
  EXPECT_DOUBLE_EQ(v.cwnd, 1.0);  // 3 -> 1.5 -> 1 -> 1
  EXPECT_DOUBLE_EQ(v.srtt_s, srtt_before);  // no samples while everything is lost

  // Reopen the link: the RTO ladder retransmits the head, recovery delivers
  // both segments — and Karn keeps both retransmitted RTTs out of srtt.
  h.chaos_of(0).set_chaos(clean);
  h.net.run_for(seconds(2));
  v = h.tp0->sender_view(4);
  ASSERT_EQ(h.delivered.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(h.delivered[i], i);
  EXPECT_EQ(v.queued, 0u);
  EXPECT_EQ(v.backoff, 0u);  // forward progress cleared the ladder
  EXPECT_DOUBLE_EQ(v.srtt_s, srtt_before);
  EXPECT_EQ(h.tp0->aborts(), 0u);
  // The recovery is fully deterministic: 3 blackhole retransmissions of
  // seg 6, one more that got through, then one for seg 7.
  ASSERT_NE(h.monitor.find(4), nullptr);
  EXPECT_EQ(h.monitor.find(4)->retransmissions, 5u);
}

TEST(TransportRtt, JacobsonFirstSampleSetsSrttAndRttvar) {
  // Fixed 3 ms one-way delay -> the first RTT sample is exactly 6 ms:
  // srtt = 6 ms, rttvar = 3 ms, rto = srtt + 4*rttvar = 18 ms (rto_min set
  // low enough not to clamp). A second identical sample leaves srtt alone
  // and decays rttvar by 1/4: rto = 6 + 4*2.25 = 15 ms.
  Chaos clean{0.0, 0.0, 0.003, 0.003};
  TransportConfig t;
  t.enabled = true;
  t.rto_min = milliseconds(1);
  ChaosNet h(clean, t);

  ASSERT_TRUE(h.tp0->try_send(2, 1, 512, 0));
  h.net.run_for(milliseconds(20));
  auto v = h.tp0->sender_view(2);
  EXPECT_DOUBLE_EQ(v.srtt_s, 0.006);
  EXPECT_NEAR(v.rto.sec(), 0.018, 1e-6);

  ASSERT_TRUE(h.tp0->try_send(2, 1, 512, 1));
  h.net.run_for(milliseconds(20));
  v = h.tp0->sender_view(2);
  EXPECT_DOUBLE_EQ(v.srtt_s, 0.006);
  EXPECT_NEAR(v.rto.sec(), 0.015, 1e-6);
  EXPECT_EQ(h.delivered.size(), 2u);
}

// ---------------------------------------------------------------------------
// 3. Closed-loop backpressure
// ---------------------------------------------------------------------------

TEST(TransportBackpressure, FullBufferRefusesWithoutConsumingASequenceNumber) {
  Chaos blackhole{1.0, 0.0, 0.001, 0.001};
  TransportConfig t;
  t.enabled = true;
  t.rto_initial = seconds(5);  // keep the window stable while we probe it
  t.max_retx = 50;
  t.cwnd_init = 4;
  t.cwnd_max = 4;
  t.buffer_packets = 8;
  ChaosNet h(blackhole, t);

  for (std::uint32_t s = 0; s < 8; ++s) ASSERT_TRUE(h.tp0->try_send(9, 1, 512, s));
  auto v = h.tp0->sender_view(9);
  EXPECT_EQ(v.queued, 8u);
  EXPECT_EQ(v.snd_next, 8u);
  EXPECT_EQ(v.inflight, 4u);  // cwnd_max of it on the wire, the rest queued

  // The 9th offer is refused; nothing about the flow moves, so the app can
  // re-offer the same packet later without tearing a sequence gap.
  EXPECT_FALSE(h.tp0->try_send(9, 1, 512, 8));
  v = h.tp0->sender_view(9);
  EXPECT_EQ(v.queued, 8u);
  EXPECT_EQ(v.snd_next, 8u);
}

TEST(TransportSelfFlow, DegenerateSelfDestinationDeliversImmediately) {
  Chaos clean{0.0, 0.0, 0.001, 0.001};
  TransportConfig t;
  t.enabled = true;
  ChaosNet h(clean, t);
  std::vector<std::uint32_t> local;
  h.tp0->set_delivery_probe([&local](const Packet& p) { local.push_back(p.app.seq); });

  ASSERT_TRUE(h.tp0->try_send(3, /*dst=*/0, 512, 41));
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0], 41u);
  EXPECT_EQ(h.tp0->sender_view(3).queued, 0u);  // nothing buffered or inflight
  const FlowRecord* fr = h.monitor.find(3);
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->tx_packets, 1u);
  EXPECT_EQ(fr->rx_packets, 1u);
}

// ---------------------------------------------------------------------------
// 4. Crash-mid-flow: cold reset + surviving epoch counter
// ---------------------------------------------------------------------------

TEST(TransportRestart, SenderCrashMidFlowColdResetsButEpochCounterSurvives) {
  Chaos clean{0.0, 0.0, 0.002, 0.002};
  TransportConfig t;
  t.enabled = true;
  t.rto_min = milliseconds(50);
  t.cwnd_max = 8;
  ChaosNet h(clean, t);

  // A healthy first incarnation: 10 packets through, then 3 more offered
  // and immediately cut down by a crash with the ACKs still in flight.
  for (std::uint32_t s = 0; s < 10; ++s) ASSERT_TRUE(h.tp0->try_send(5, 1, 512, s));
  h.net.run_for(milliseconds(100));
  ASSERT_EQ(h.delivered.size(), 10u);
  EXPECT_EQ(h.tp0->sender_view(5).epoch, 1u);

  for (std::uint32_t s = 10; s < 13; ++s) ASSERT_TRUE(h.tp0->try_send(5, 1, 512, s));
  h.net.node(0).crash();
  h.net.run_for(milliseconds(100));  // in-flight epoch-1 segments drain to the sink
  ASSERT_EQ(h.delivered.size(), 13u);
  h.net.node(0).restart();

  // Cold reset: every flow gone — but the incarnation counter survived.
  EXPECT_EQ(h.tp0->sender_flow_count(), 0u);
  EXPECT_EQ(h.tp0->receiver_flow_count(), 0u);
  EXPECT_EQ(h.tp0->epoch_counter(), 1u);

  // The next incarnation outranks everything the old one left behind; the
  // receiver adopts it and resequences from zero.
  ASSERT_TRUE(h.tp0->try_send(5, 1, 512, 100));
  EXPECT_EQ(h.tp0->sender_view(5).epoch, 2u);
  h.net.run_for(milliseconds(100));
  ASSERT_EQ(h.delivered.size(), 14u);
  EXPECT_EQ(h.delivered.back(), 100u);
  const auto rv = h.tp1->receiver_view(5);
  EXPECT_TRUE(rv.exists);
  EXPECT_EQ(rv.epoch, 2u);
  EXPECT_EQ(rv.rcv_next, 1u);  // the new epoch restarted the sequence space
}

TEST(TransportRestart, ReceiverCrashConvergesViaAbortAndFreshEpoch) {
  Chaos clean{0.0, 0.0, 0.002, 0.002};
  TransportConfig t;
  t.enabled = true;
  t.rto_initial = milliseconds(60);
  t.rto_min = milliseconds(30);
  t.rto_max = milliseconds(250);
  t.max_retx = 2;  // give up fast: the convergence path under test
  ChaosNet h(clean, t);

  // 120 offers at 10 ms spacing: the stream straddles the whole outage and
  // keeps flowing well after recovery, so the tail rides a healthy epoch.
  Driver app{*h.tp0, h.net.sim(), /*total=*/120, milliseconds(10)};
  app.tick();
  h.net.run_for(milliseconds(500));
  const std::size_t before_crash = h.delivered.size();
  ASSERT_GT(before_crash, 0u);

  h.net.node(1).crash();
  h.net.run_for(milliseconds(300));
  h.net.node(1).restart();
  h.net.run_for(seconds(20));

  // The stalled incarnation aborted (possibly several times while the far
  // end was dark), a fresh epoch took over, and the tail of the stream made
  // it through: the last offered app seq is the last delivered one.
  EXPECT_GT(h.tp0->aborts(), 0u);
  EXPECT_GT(h.net.stats().drops(DropReason::kTransportGiveUp), 0u);
  ASSERT_FALSE(h.delivered.empty());
  EXPECT_EQ(h.delivered.back(), 119u);
  // Aborts lose packets (counted against PDR) but never break ordering or
  // deliver twice: the probe saw a strictly increasing app-seq sequence.
  for (std::size_t i = 1; i < h.delivered.size(); ++i) {
    EXPECT_LT(h.delivered[i - 1], h.delivered[i]);
  }
  EXPECT_LT(h.delivered.size(), 120u);  // the crash really cost something
  // Both ends agree on the surviving incarnation.
  EXPECT_EQ(h.tp1->receiver_view(1).epoch, h.tp0->sender_view(1).epoch);
  EXPECT_GT(h.tp0->sender_view(1).epoch, 1u);
}

}  // namespace
}  // namespace manet
