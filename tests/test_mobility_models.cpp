// Tests for the extension mobility models (Gauss-Markov, Manhattan grid).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "core/rng.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/manhattan.hpp"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// Gauss-Markov
// ---------------------------------------------------------------------------

GaussMarkovConfig gm_cfg() {
  GaussMarkovConfig cfg;
  cfg.area = {1000.0, 1000.0};
  return cfg;
}

TEST(GaussMarkov, Reproducible) {
  GaussMarkov a(gm_cfg(), RngStream(5, "mob", 1));
  GaussMarkov b(gm_cfg(), RngStream(5, "mob", 1));
  for (int i = 0; i <= 100; ++i) EXPECT_EQ(a.position_at(seconds(i)), b.position_at(seconds(i)));
}

TEST(GaussMarkov, Moves) {
  GaussMarkov m(gm_cfg(), RngStream(6, "mob", 0));
  EXPECT_GT(distance(m.position_at(SimTime::zero()), m.position_at(seconds(30))), 1.0);
}

class GaussMarkovProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaussMarkovProperty, BoundedPositionAndSpeed) {
  const auto cfg = gm_cfg();
  GaussMarkov m(cfg, RngStream(GetParam(), "mob", 3));
  Vec2 prev = m.position_at(SimTime::zero());
  const SimTime step = milliseconds(200);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 2000; ++i) {
    t += step;
    const Vec2 p = m.position_at(t);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.area.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.area.height);
    EXPECT_LE(distance(prev, p) / step.sec(), cfg.max_speed * 1.0001);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaussMarkovProperty, ::testing::Values(1, 2, 3, 4));

TEST(GaussMarkov, HighAlphaIsSmootherThanLowAlpha) {
  // Temporal correlation: with alpha near 1 the heading barely changes per
  // step; with alpha near 0 it jumps. Compare mean absolute heading change.
  auto mean_turn = [](double alpha) {
    GaussMarkovConfig cfg;
    cfg.alpha = alpha;
    GaussMarkov m(cfg, RngStream(9, "mob", 7));
    double sum = 0.0;
    Vec2 p0 = m.position_at(seconds(0));
    Vec2 p1 = m.position_at(seconds(1));
    double heading = std::atan2(p1.y - p0.y, p1.x - p0.x);
    for (int i = 2; i < 400; ++i) {
      const Vec2 p2 = m.position_at(seconds(i));
      const double h = std::atan2(p2.y - p1.y, p2.x - p1.x);
      double d = std::fabs(h - heading);
      if (d > std::numbers::pi) d = 2 * std::numbers::pi - d;
      sum += d;
      heading = h;
      p1 = p2;
    }
    return sum / 398.0;
  };
  EXPECT_LT(mean_turn(0.95), mean_turn(0.1));
}

// ---------------------------------------------------------------------------
// Manhattan
// ---------------------------------------------------------------------------

ManhattanConfig mh_cfg() {
  ManhattanConfig cfg;
  cfg.area = {1000.0, 1000.0};
  cfg.block = 200.0;
  return cfg;
}

TEST(Manhattan, Reproducible) {
  Manhattan a(mh_cfg(), RngStream(4, "mob", 2));
  Manhattan b(mh_cfg(), RngStream(4, "mob", 2));
  for (int i = 0; i <= 100; ++i) EXPECT_EQ(a.position_at(seconds(i)), b.position_at(seconds(i)));
}

class ManhattanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManhattanProperty, AlwaysOnAStreet) {
  const auto cfg = mh_cfg();
  Manhattan m(cfg, RngStream(GetParam(), "mob", 5));
  for (int i = 0; i < 3000; ++i) {
    const Vec2 p = m.position_at(milliseconds(250 * i));
    // On a street: at least one coordinate is a multiple of the block size.
    const double rx = std::fabs(std::remainder(p.x, cfg.block));
    const double ry = std::fabs(std::remainder(p.y, cfg.block));
    EXPECT_LT(std::min(rx, ry), 1e-6) << "off-street at (" << p.x << "," << p.y << ")";
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, cfg.area.width + 1e-9);
    EXPECT_GE(p.y, -1e-9);
    EXPECT_LE(p.y, cfg.area.height + 1e-9);
  }
}

TEST_P(ManhattanProperty, SpeedWithinBounds) {
  const auto cfg = mh_cfg();
  Manhattan m(cfg, RngStream(GetParam() + 50, "mob", 6));
  Vec2 prev = m.position_at(SimTime::zero());
  const SimTime step = milliseconds(100);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 2000; ++i) {
    t += step;
    const Vec2 p = m.position_at(t);
    // Straight-line displacement can only be <= v_max * dt (turning at an
    // intersection inside the window shortens it).
    EXPECT_LE(distance(prev, p) / step.sec(), cfg.v_max * std::sqrt(2.0) * 1.001);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManhattanProperty, ::testing::Values(1, 2, 3, 4));

TEST(Manhattan, VisitsMultipleIntersections) {
  Manhattan m(mh_cfg(), RngStream(8, "mob", 1));
  std::set<std::pair<long, long>> corners;
  for (int i = 0; i < 600; ++i) {
    const Vec2 p = m.position_at(seconds(i));
    corners.insert({std::lround(p.x / 200.0), std::lround(p.y / 200.0)});
  }
  EXPECT_GT(corners.size(), 3u);
}

}  // namespace
}  // namespace manet
