// manet_report comparison engine: exact-match gating of sweep artifacts.
// Metrics are pure functions of (scenario, seed), so the CI gate runs at
// tolerance 0 — any numeric difference or shape change must be reported.

#include "report.hpp"

#include <gtest/gtest.h>

#include <string>

namespace manet::report {
namespace {

json::Value parse(const std::string& text) {
  json::Value v;
  std::string err;
  EXPECT_TRUE(json::parse(text, v, err)) << err;
  return v;
}

const char* kBaseline = R"({
  "name": "fig", "schema": 1, "seeds_per_cell": 1,
  "cells": [
    {"label": "AODV/pause:0",
     "metrics": {"pdr": {"mean": 0.95, "se": 0}, "delay_ms": {"mean": 12.5, "se": 0}},
     "profile": {"wall_s": 1.0}},
    {"label": "DSR/pause:0",
     "metrics": {"pdr": {"mean": 0.9, "se": 0}, "delay_ms": {"mean": 20.25, "se": 0}},
     "profile": {"wall_s": 2.0}}
  ]
})";

TEST(Report, IdenticalRunsPass) {
  const json::Value base = parse(kBaseline);
  const Result r = compare(base, base, Options{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.drifted, 0);
  EXPECT_EQ(r.rows.size(), 4u);
  EXPECT_TRUE(r.problems.empty());
}

TEST(Report, ProfileNoiseIsIgnored) {
  // Same metrics, different wall-clock profile: still a pass.
  std::string other = kBaseline;
  const auto pos = other.find("\"wall_s\": 1.0");
  ASSERT_NE(pos, std::string::npos);
  other.replace(pos, 13, "\"wall_s\": 9.9");
  const Result r = compare(parse(kBaseline), parse(other), Options{});
  EXPECT_TRUE(r.ok()) << r.render(Options{});
}

TEST(Report, AnyMetricDeltaDriftsAtToleranceZero) {
  std::string other = kBaseline;
  const auto pos = other.find("12.5");
  ASSERT_NE(pos, std::string::npos);
  other.replace(pos, 4, "12.6");
  const Result r = compare(parse(kBaseline), parse(other), Options{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.drifted, 1);
  const std::string table = r.render(Options{});
  EXPECT_NE(table.find("DRIFT"), std::string::npos);
  EXPECT_NE(table.find("delay_ms"), std::string::npos);
}

TEST(Report, ToleranceAllowsSmallRelativeDrift) {
  std::string other = kBaseline;
  const auto pos = other.find("12.5");
  ASSERT_NE(pos, std::string::npos);
  other.replace(pos, 4, "12.6");  // +0.8% relative
  EXPECT_TRUE(compare(parse(kBaseline), parse(other), Options{0.01}).ok());
  EXPECT_FALSE(compare(parse(kBaseline), parse(other), Options{0.001}).ok());
}

TEST(Report, MissingCellIsAProblem) {
  const char* current = R"({
    "seeds_per_cell": 1,
    "cells": [{"label": "AODV/pause:0",
               "metrics": {"pdr": {"mean": 0.95}, "delay_ms": {"mean": 12.5}}}]
  })";
  const Result r = compare(parse(kBaseline), parse(current), Options{});
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.problems.empty());
  EXPECT_NE(r.problems[0].find("DSR/pause:0"), std::string::npos);
}

TEST(Report, ExtraCellIsAProblem) {
  std::string current = kBaseline;
  const auto pos = current.find("\"DSR/pause:0\"");
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, 13, "\"DSR/pause:9\"");
  const Result r = compare(parse(kBaseline), parse(current), Options{});
  EXPECT_FALSE(r.ok());
  // Renamed cell shows up from both directions.
  EXPECT_EQ(r.problems.size(), 2u);
}

TEST(Report, MissingMetricIsAProblem) {
  std::string current = kBaseline;
  const std::string needle = "\"delay_ms\": {\"mean\": 12.5, \"se\": 0}";
  const auto pos = current.find(needle);
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, needle.size(), "\"delay2\": {\"mean\": 12.5, \"se\": 0}");
  const Result r = compare(parse(kBaseline), parse(current), Options{});
  EXPECT_FALSE(r.ok());
  bool missing = false;
  bool extra = false;
  for (const std::string& p : r.problems) {
    missing = missing || p.find("in the baseline but not the current") != std::string::npos;
    extra = extra || p.find("in the current run but not the baseline") != std::string::npos;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(extra);
}

TEST(Report, SeedCountMismatchIsAProblem) {
  std::string current = kBaseline;
  const auto pos = current.find("\"seeds_per_cell\": 1");
  ASSERT_NE(pos, std::string::npos);
  current.replace(pos, 19, "\"seeds_per_cell\": 3");
  const Result r = compare(parse(kBaseline), parse(current), Options{});
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.problems.empty());
  EXPECT_NE(r.problems[0].find("seeds_per_cell"), std::string::npos);
}

TEST(Report, NonArtifactJsonIsAProblemNotACrash) {
  const Result r = compare(parse(R"({"benchmarks": []})"), parse(kBaseline), Options{});
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.problems.empty());
  EXPECT_NE(r.problems[0].find("cells"), std::string::npos);
}

TEST(Report, BaselineZeroDeltaRendersNa) {
  const char* base = R"({"cells": [{"label": "c", "metrics": {"m": {"mean": 0}}}]})";
  const char* cur = R"({"cells": [{"label": "c", "metrics": {"m": {"mean": 0.1}}}]})";
  const Result r = compare(parse(base), parse(cur), Options{});
  EXPECT_EQ(r.drifted, 1);
  EXPECT_NE(r.render(Options{}).find("n/a"), std::string::npos);
}

}  // namespace
}  // namespace manet::report
