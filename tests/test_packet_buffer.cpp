#include "routing/common.hpp"

#include <gtest/gtest.h>

namespace manet {
namespace {

Packet data_packet(NodeId dst) {
  Packet p;
  p.kind = PacketKind::kData;
  p.ip.dst = dst;
  p.payload_bytes = 512;
  return p;
}

struct PacketBufferTest : ::testing::Test {
  Simulator sim;
  StatsCollector stats;

  /// The drop callback a Node would provide: count data-packet drops only.
  PacketBuffer::DropFn drop_fn() {
    return [this](const Packet& pkt, DropReason r) {
      if (pkt.kind == PacketKind::kData) stats.on_data_dropped(r);
    };
  }
};

TEST_F(PacketBufferTest, PushAndTake) {
  PacketBuffer buf(sim, drop_fn());
  buf.push(data_packet(5), 5);
  buf.push(data_packet(5), 5);
  buf.push(data_packet(6), 6);
  EXPECT_TRUE(buf.has(5));
  EXPECT_EQ(buf.size(), 3u);
  const auto out = buf.take(5);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(buf.has(5));
  EXPECT_TRUE(buf.has(6));
}

TEST_F(PacketBufferTest, TakePreservesOrder) {
  PacketBuffer buf(sim, drop_fn());
  for (std::uint32_t i = 0; i < 3; ++i) {
    Packet p = data_packet(7);
    p.app.seq = i;
    buf.push(std::move(p), 7);
  }
  const auto out = buf.take(7);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].app.seq, i);
}

TEST_F(PacketBufferTest, OverflowEvictsOldestAndCounts) {
  PacketBuffer buf(sim, drop_fn(), /*capacity=*/3);
  for (int i = 0; i < 5; ++i) buf.push(data_packet(1), 1);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(stats.drops(DropReason::kBufferOverflow), 2u);
}

TEST_F(PacketBufferTest, ExpiryCountsTimeout) {
  PacketBuffer buf(sim, drop_fn(), 64, /*lifetime=*/seconds(1));
  buf.push(data_packet(1), 1);
  sim.schedule(seconds(2), [] {});
  sim.run();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(stats.drops(DropReason::kBufferTimeout), 1u);
}

TEST_F(PacketBufferTest, DropAllCountsReason) {
  PacketBuffer buf(sim, drop_fn());
  buf.push(data_packet(1), 1);
  buf.push(data_packet(2), 2);
  buf.drop_all(1, DropReason::kNoRoute);
  EXPECT_EQ(stats.drops(DropReason::kNoRoute), 1u);
  EXPECT_FALSE(buf.has(1));
  EXPECT_TRUE(buf.has(2));
}

TEST_F(PacketBufferTest, ControlPacketsNotCountedAsDataDrops) {
  PacketBuffer buf(sim, drop_fn(), 1);
  Packet ctrl;
  ctrl.kind = PacketKind::kRoutingControl;
  buf.push(std::move(ctrl), 1);
  buf.push(data_packet(1), 1);  // evicts the control packet
  EXPECT_EQ(stats.total_drops(), 0u);
}

TEST(BroadcastJitter, WithinTenMilliseconds) {
  RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const SimTime j = broadcast_jitter(rng);
    EXPECT_GE(j, SimTime::zero());
    EXPECT_LE(j, milliseconds(10));
  }
}

}  // namespace
}  // namespace manet
