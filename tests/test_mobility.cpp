#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/static_mobility.hpp"

namespace manet {
namespace {

TEST(StaticMobility, NeverMoves) {
  StaticMobility m({10.0, 20.0});
  EXPECT_EQ(m.position_at(SimTime::zero()), (Vec2{10.0, 20.0}));
  EXPECT_EQ(m.position_at(seconds(1000)), (Vec2{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(m.max_speed(), 0.0);
}

TEST(StaticMobility, Teleport) {
  StaticMobility m({0.0, 0.0});
  m.set_position({5.0, 5.0});
  EXPECT_EQ(m.position_at(seconds(1)), (Vec2{5.0, 5.0}));
}

RandomWaypointConfig wp_cfg(double vmax = 20.0, SimTime pause = SimTime::zero()) {
  RandomWaypointConfig cfg;
  cfg.area = {1000.0, 1000.0};
  cfg.v_min = 0.5;
  cfg.v_max = vmax;
  cfg.pause = pause;
  cfg.warmup = seconds(100);
  return cfg;
}

TEST(RandomWaypoint, Reproducible) {
  RandomWaypoint a(wp_cfg(), RngStream(3, "mob", 0));
  RandomWaypoint b(wp_cfg(), RngStream(3, "mob", 0));
  for (int i = 0; i <= 100; ++i) {
    const SimTime t = seconds(i);
    EXPECT_EQ(a.position_at(t), b.position_at(t));
  }
}

TEST(RandomWaypoint, DifferentStreamsDiffer) {
  RandomWaypoint a(wp_cfg(), RngStream(3, "mob", 0));
  RandomWaypoint b(wp_cfg(), RngStream(3, "mob", 1));
  EXPECT_NE(a.position_at(seconds(10)), b.position_at(seconds(10)));
}

TEST(RandomWaypoint, ActuallyMoves) {
  RandomWaypoint m(wp_cfg(), RngStream(4, "mob", 0));
  const Vec2 p0 = m.position_at(SimTime::zero());
  const Vec2 p1 = m.position_at(seconds(60));
  EXPECT_GT(distance(p0, p1), 1.0);
}

TEST(RandomWaypoint, MaxSpeedReported) {
  RandomWaypoint m(wp_cfg(17.5), RngStream(1));
  EXPECT_DOUBLE_EQ(m.max_speed(), 17.5);
}

// Property: positions stay in the area and the instantaneous speed between
// samples never exceeds v_max.
class WaypointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaypointProperty, BoundedPositionAndSpeed) {
  const auto cfg = wp_cfg(20.0, milliseconds(2500));
  RandomWaypoint m(cfg, RngStream(GetParam(), "mob", 9));
  Vec2 prev = m.position_at(SimTime::zero());
  const SimTime step = milliseconds(100);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 3000; ++i) {
    t += step;
    const Vec2 p = m.position_at(t);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.area.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.area.height);
    const double v = distance(prev, p) / step.sec();
    EXPECT_LE(v, cfg.v_max * 1.0001) << "at t=" << t.sec();
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaypointProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(RandomWaypoint, PauseHoldsPosition) {
  // With a long pause, consecutive samples frequently coincide.
  auto cfg = wp_cfg(20.0, seconds(30));
  RandomWaypoint m(cfg, RngStream(7, "mob", 2));
  int stationary = 0;
  Vec2 prev = m.position_at(SimTime::zero());
  for (int i = 1; i <= 600; ++i) {
    const Vec2 p = m.position_at(milliseconds(500 * i));
    if (p == prev) ++stationary;
    prev = p;
  }
  EXPECT_GT(stationary, 50);
}

TEST(RandomWalk, StaysInsideArea) {
  RandomWalkConfig cfg;
  cfg.area = {500.0, 300.0};
  cfg.v_min = 1.0;
  cfg.v_max = 15.0;
  cfg.step = seconds(5);
  RandomWalk m(cfg, RngStream(11));
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p = m.position_at(milliseconds(250 * i));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.area.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.area.height);
  }
}

TEST(RandomWalk, Reproducible) {
  RandomWalkConfig cfg;
  RandomWalk a(cfg, RngStream(5));
  RandomWalk b(cfg, RngStream(5));
  for (int i = 0; i <= 50; ++i) EXPECT_EQ(a.position_at(seconds(i)), b.position_at(seconds(i)));
}

}  // namespace
}  // namespace manet
