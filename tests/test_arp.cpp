#include "net/arp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/simulator.hpp"
#include "mobility/static_mobility.hpp"
#include "phy/channel.hpp"

namespace manet {
namespace {

class SinkListener : public MacListener {
 public:
  void mac_deliver(const Packet& f) override {
    if (f.kind == PacketKind::kArp) {
      arp_frames.push_back(f);
    } else {
      data_frames.push_back(f);
    }
  }
  void mac_link_failure(const Packet&, NodeId) override { ++failures; }
  std::vector<Packet> arp_frames;
  std::vector<Packet> data_frames;
  int failures = 0;
};

struct ArpNet {
  explicit ArpNet(const std::vector<Vec2>& positions) {
    channel = std::make_unique<Channel>(sim, PhyConfig{}, Area{3000.0, 3000.0});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      mobs.push_back(std::make_unique<StaticMobility>(positions[i]));
      trx.push_back(std::make_unique<Transceiver>(sim, PhyConfig{}, static_cast<NodeId>(i)));
      macs.push_back(std::make_unique<WifiMac>(sim, MacConfig{}, *trx.back(), stats,
                                               RngStream(1, "mac", i)));
      listeners.push_back(std::make_unique<SinkListener>());
      macs.back()->set_listener(listeners.back().get());
      arps.push_back(
          std::make_unique<Arp>(sim, static_cast<NodeId>(i), *macs.back(), stats));
      channel->add(trx.back().get(), mobs.back().get());
    }
    channel->start();
    // Wire ARP frame reception manually (no Node in this fixture): forward
    // delivered ARP frames into the Arp modules each event round.
  }

  void pump_arp() {
    for (std::size_t i = 0; i < arps.size(); ++i) {
      auto& frames = listeners[i]->arp_frames;
      for (const Packet& f : frames) arps[i]->on_receive(f);
      frames.clear();
    }
  }

  /// Run, pumping received ARP frames into the ARP modules.
  void run_pumped(SimTime total, SimTime step = milliseconds(1)) {
    const SimTime end = sim.now() + total;
    while (sim.now() < end) {
      sim.run_until(std::min(end, sim.now() + step));
      pump_arp();
    }
  }

  Packet data(NodeId src, NodeId dst) {
    Packet p;
    p.kind = PacketKind::kData;
    p.ip.src = src;
    p.ip.dst = dst;
    p.payload_bytes = 64;
    return p;
  }

  Simulator sim;
  StatsCollector stats;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<Transceiver>> trx;
  std::vector<std::unique_ptr<WifiMac>> macs;
  std::vector<std::unique_ptr<SinkListener>> listeners;
  std::vector<std::unique_ptr<Arp>> arps;
};

TEST(Arp, BroadcastNeedsNoResolution) {
  ArpNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.arps[0]->send(net.data(0, kBroadcast), kBroadcast);
  net.run_pumped(milliseconds(50));
  EXPECT_EQ(net.listeners[1]->data_frames.size(), 1u);
  EXPECT_EQ(net.stats.arp_tx(), 0u);
}

TEST(Arp, ResolvesThenDelivers) {
  ArpNet net({{0.0, 0.0}, {200.0, 0.0}});
  EXPECT_FALSE(net.arps[0]->resolved(1));
  net.arps[0]->send(net.data(0, 1), 1);
  net.run_pumped(milliseconds(100));
  EXPECT_TRUE(net.arps[0]->resolved(1));
  EXPECT_EQ(net.listeners[1]->data_frames.size(), 1u);
  // One request (broadcast) + one reply (unicast).
  EXPECT_EQ(net.stats.arp_tx(), 2u);
}

TEST(Arp, CacheHitSkipsRequest) {
  ArpNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.arps[0]->send(net.data(0, 1), 1);
  net.run_pumped(milliseconds(100));
  const auto arp_before = net.stats.arp_tx();
  net.arps[0]->send(net.data(0, 1), 1);
  net.run_pumped(milliseconds(100));
  EXPECT_EQ(net.stats.arp_tx(), arp_before);  // no new ARP traffic
  EXPECT_EQ(net.listeners[1]->data_frames.size(), 2u);
}

TEST(Arp, ReplyResolvesRequesterToo) {
  // The responder learns the requester's mapping from the request itself.
  ArpNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.arps[0]->send(net.data(0, 1), 1);
  net.run_pumped(milliseconds(100));
  EXPECT_TRUE(net.arps[1]->resolved(0));
}

TEST(Arp, SecondPacketEvictsFirstWhileUnresolved) {
  ArpNet net({{0.0, 0.0}, {2000.0, 0.0}});  // 1 unreachable
  net.arps[0]->send(net.data(0, 1), 1);
  net.arps[0]->send(net.data(0, 1), 1);  // evicts the first
  net.run_pumped(milliseconds(50));
  EXPECT_EQ(net.stats.drops(DropReason::kArpFail), 1u);
}

TEST(Arp, UnresolvableEventuallyDrops) {
  ArpNet net({{0.0, 0.0}, {2000.0, 0.0}});
  net.arps[0]->send(net.data(0, 1), 1);
  net.run_pumped(seconds(3));
  EXPECT_EQ(net.stats.drops(DropReason::kArpFail), 1u);
  EXPECT_FALSE(net.arps[0]->resolved(1));
  // kMaxTries requests were broadcast.
  EXPECT_EQ(net.stats.arp_tx(), static_cast<std::uint64_t>(Arp::kMaxTries));
}

TEST(Arp, ThirdPartyLearnsNothingWrong) {
  ArpNet net({{0.0, 0.0}, {200.0, 0.0}, {100.0, 100.0}});
  net.arps[0]->send(net.data(0, 1), 1);
  net.run_pumped(milliseconds(100));
  // Node 2 overheard the broadcast request and may cache the sender; it must
  // not believe it can resolve node 1 (the unicast reply bypassed it).
  EXPECT_FALSE(net.arps[2]->resolved(1));
}

}  // namespace
}  // namespace manet
