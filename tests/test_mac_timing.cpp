// DCF timing conformance: the simulator is deterministic, so end-to-end
// latencies of isolated exchanges can be checked against the 802.11 timing
// budget computed by hand from the same constants.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulator.hpp"
#include "mac/wifi_mac.hpp"
#include "mobility/static_mobility.hpp"
#include "phy/channel.hpp"

namespace manet {
namespace {

class TimestampListener : public MacListener {
 public:
  explicit TimestampListener(Simulator& sim) : sim_(sim) {}
  void mac_deliver(const Packet&) override { deliveries.push_back(sim_.now()); }
  void mac_link_failure(const Packet&, NodeId) override { failures.push_back(sim_.now()); }
  std::vector<SimTime> deliveries;
  std::vector<SimTime> failures;

 private:
  Simulator& sim_;
};

struct TimingNet {
  explicit TimingNet(double gap_m, MacConfig cfg = {}) : mac_cfg(cfg) {
    channel = std::make_unique<Channel>(sim, phy, Area{3000.0, 3000.0});
    for (int i = 0; i < 2; ++i) {
      mobs.push_back(std::make_unique<StaticMobility>(Vec2{gap_m * i, 0.0}));
      trx.push_back(std::make_unique<Transceiver>(sim, phy, static_cast<NodeId>(i)));
      macs.push_back(std::make_unique<WifiMac>(sim, mac_cfg, *trx.back(), stats,
                                               RngStream(1, "mac", static_cast<std::uint64_t>(i))));
      listeners.push_back(std::make_unique<TimestampListener>(sim));
      macs.back()->set_listener(listeners.back().get());
      channel->add(trx.back().get(), mobs.back().get());
    }
    channel->start();
  }

  Packet data(std::size_t payload, NodeId dst) {
    Packet p;
    p.kind = PacketKind::kData;
    p.mac.dst = dst;
    p.ip.dst = dst;
    p.payload_bytes = payload;
    return p;
  }

  PhyConfig phy;
  MacConfig mac_cfg;
  Simulator sim;
  StatsCollector stats;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<Transceiver>> trx;
  std::vector<std::unique_ptr<WifiMac>> macs;
  std::vector<std::unique_ptr<TimestampListener>> listeners;
};

constexpr SimTime kSlack = microseconds(2);  // propagation + rounding headroom

TEST(MacTiming, BroadcastLatencyIsDifsPlusAirtime) {
  TimingNet net(200.0);
  const std::size_t payload = 512;
  Packet p = net.data(payload, kBroadcast);
  const std::size_t frame_bytes = p.size_bytes();
  net.macs[0]->enqueue(std::move(p));
  net.sim.run_until(seconds(1));
  ASSERT_EQ(net.listeners[1]->deliveries.size(), 1u);
  // Idle medium, first frame: no backoff. Delivery at DIFS + airtime + prop.
  const SimTime expected = net.mac_cfg.difs + net.phy.airtime(frame_bytes);
  const SimTime got = net.listeners[1]->deliveries[0];
  EXPECT_GE(got, expected);
  EXPECT_LE(got, expected + kSlack);
}

TEST(MacTiming, UnicastLatencyMatchesRtsCtsBudget) {
  TimingNet net(200.0);
  Packet p = net.data(512, 1);
  const std::size_t frame_bytes = p.size_bytes();
  net.macs[0]->enqueue(std::move(p));
  net.sim.run_until(seconds(1));
  ASSERT_EQ(net.listeners[1]->deliveries.size(), 1u);
  // DIFS + RTS + SIFS + CTS + SIFS + DATA (delivery happens at DATA rx end).
  const SimTime expected = net.mac_cfg.difs + net.phy.airtime(kMacRtsBytes) +
                           net.mac_cfg.sifs + net.phy.airtime(kMacCtsBytes) +
                           net.mac_cfg.sifs + net.phy.airtime(frame_bytes);
  const SimTime got = net.listeners[1]->deliveries[0];
  EXPECT_GE(got, expected);
  EXPECT_LE(got, expected + 2 * kSlack);
}

TEST(MacTiming, NoRtsPathIsFaster) {
  MacConfig no_rts;
  no_rts.use_rts = false;
  TimingNet with(200.0);
  TimingNet without(200.0, no_rts);
  Packet a = with.data(512, 1);
  Packet b = without.data(512, 1);
  with.macs[0]->enqueue(std::move(a));
  without.macs[0]->enqueue(std::move(b));
  with.sim.run_until(seconds(1));
  without.sim.run_until(seconds(1));
  ASSERT_EQ(with.listeners[1]->deliveries.size(), 1u);
  ASSERT_EQ(without.listeners[1]->deliveries.size(), 1u);
  const SimTime saved = with.listeners[1]->deliveries[0] - without.listeners[1]->deliveries[0];
  // Savings = RTS + CTS airtime + 2 SIFS (modulo the random post-backoff,
  // absent here since it is the first frame).
  const SimTime expected_saving = with.phy.airtime(kMacRtsBytes) +
                                  with.phy.airtime(kMacCtsBytes) + 2 * with.mac_cfg.sifs;
  EXPECT_GE(saved, expected_saving - kSlack);
  EXPECT_LE(saved, expected_saving + kSlack);
}

TEST(MacTiming, SecondFrameWaitsForPostBackoff) {
  TimingNet net(200.0);
  net.macs[0]->enqueue(net.data(100, 1));
  net.macs[0]->enqueue(net.data(100, 1));
  net.sim.run_until(seconds(1));
  ASSERT_EQ(net.listeners[1]->deliveries.size(), 2u);
  const SimTime gap = net.listeners[1]->deliveries[1] - net.listeners[1]->deliveries[0];
  // At least ACK turnaround + DIFS; at most plus cw_min slots of backoff.
  const SimTime floor = net.mac_cfg.sifs + net.phy.airtime(kMacAckBytes) + net.mac_cfg.difs;
  const SimTime ceiling = floor +
                          net.mac_cfg.slot * static_cast<std::int64_t>(net.mac_cfg.cw_min) +
                          net.phy.airtime(100 + kMacDataHeaderBytes + kIpHeaderBytes +
                                          kUdpHeaderBytes) +
                          net.phy.airtime(kMacRtsBytes) + net.phy.airtime(kMacCtsBytes) +
                          2 * net.mac_cfg.sifs + kSlack;
  EXPECT_GE(gap, floor);
  EXPECT_LE(gap, ceiling);
}

TEST(MacTiming, RetryFailureTimeIsBounded) {
  // All 7 RTS attempts with growing backoff: failure must land within the
  // worst-case budget and after the best-case one.
  TimingNet net(200.0);
  net.macs[0]->enqueue(net.data(100, 42));  // absent peer
  net.sim.run_until(seconds(5));
  ASSERT_EQ(net.listeners[0]->failures.size(), 1u);
  const SimTime failed_at = net.listeners[0]->failures[0];
  const SimTime rts_air = net.phy.airtime(kMacRtsBytes);
  const SimTime cts_air = net.phy.airtime(kMacCtsBytes);
  const SimTime per_try_floor = net.mac_cfg.difs + rts_air + net.mac_cfg.sifs + cts_air;
  EXPECT_GE(failed_at, 7 * per_try_floor);
  // Worst case: every backoff draw maxes out (CW doubles 31 -> 1023).
  SimTime worst = SimTime::zero();
  std::uint32_t cw = net.mac_cfg.cw_min;
  for (int attempt = 0; attempt < 7; ++attempt) {
    worst += per_try_floor + milliseconds(1) /* timeout margin */ +
             net.mac_cfg.slot * static_cast<std::int64_t>(cw);
    cw = std::min(cw * 2 + 1, net.mac_cfg.cw_max);
  }
  EXPECT_LE(failed_at, worst);
}

TEST(MacTiming, DeterministicLatencies) {
  TimingNet a(200.0), b(200.0);
  a.macs[0]->enqueue(a.data(512, 1));
  b.macs[0]->enqueue(b.data(512, 1));
  a.sim.run_until(seconds(1));
  b.sim.run_until(seconds(1));
  ASSERT_EQ(a.listeners[1]->deliveries.size(), 1u);
  ASSERT_EQ(b.listeners[1]->deliveries.size(), 1u);
  EXPECT_EQ(a.listeners[1]->deliveries[0], b.listeners[1]->deliveries[0]);
}

}  // namespace
}  // namespace manet
