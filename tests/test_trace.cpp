// TraceWriter unit tests: line shape, call-order preservation, the fault
// lifecycle records, and the end-to-end trace a faulted scenario emits.

#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace manet {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  for (std::string line; std::getline(ss, line);) out.push_back(line);
  return out;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

Packet data_packet(NodeId src, NodeId dst, std::size_t payload = 512) {
  Packet pkt;
  pkt.ip.src = src;
  pkt.ip.dst = dst;
  pkt.payload_bytes = payload;
  return pkt;
}

TEST(Trace, LineShapeMatchesFormat) {
  const std::string path = temp_path("trace_shape.tr");
  const Packet pkt = data_packet(1, 2);
  {
    TraceWriter tw(path);
    ASSERT_TRUE(tw.ok());
    tw.record('s', milliseconds(1500), 3, pkt);
  }
  char expected[160];
  std::snprintf(expected, sizeof(expected), "s 1.500000000 _3_ RTR %llu cbr %zu [1 -> 2]",
                static_cast<unsigned long long>(pkt.uid()), pkt.size_bytes());
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], expected);
}

TEST(Trace, NoteIsAppendedAfterAddresses) {
  const std::string path = temp_path("trace_note.tr");
  {
    TraceWriter tw(path);
    tw.record('D', seconds(2), 7, data_packet(0, 9), "no-route");
  }
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].substr(0, 2), "D ");
  EXPECT_NE(lines[0].find("[0 -> 9] no-route"), std::string::npos);
}

TEST(Trace, RecordsPreserveCallOrderAndCount) {
  const std::string path = temp_path("trace_order.tr");
  const char events[] = {'s', 'f', 'r', 'D'};
  {
    TraceWriter tw(path);
    for (std::size_t i = 0; i < std::size(events); ++i) {
      tw.record(events[i], seconds(static_cast<std::int64_t>(i)), static_cast<NodeId>(i),
                data_packet(0, 1));
    }
    EXPECT_EQ(tw.lines(), std::size(events));
    tw.flush();
    // flush() makes the lines visible before the writer is destroyed.
    EXPECT_EQ(lines_of(slurp(path)).size(), std::size(events));
  }
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), std::size(events));
  for (std::size_t i = 0; i < lines.size(); ++i) EXPECT_EQ(lines[i][0], events[i]);
}

TEST(Trace, TypeTagFollowsHeaders) {
  Packet data = data_packet(0, 1);
  EXPECT_STREQ(trace_type(data), "cbr");
  Packet arp;
  arp.kind = PacketKind::kArp;
  EXPECT_STREQ(trace_type(arp), "arp");
  Packet ctrl;
  ctrl.kind = PacketKind::kRoutingControl;
  EXPECT_STREQ(trace_type(ctrl), "rtr");
  Packet rts = data_packet(0, 1);
  rts.mac.type = MacFrameType::kRts;
  EXPECT_STREQ(trace_type(rts), "mac");
}

TEST(Trace, UnwritablePathIsNotOkAndSilentlyDiscards) {
  TraceWriter tw("/nonexistent-dir-for-trace-test/out.tr");
  EXPECT_FALSE(tw.ok());
  tw.record('s', seconds(1), 0, data_packet(0, 1));
  tw.record_fault(seconds(1), 0, "crash");
  tw.flush();
  EXPECT_EQ(tw.lines(), 0u);
}

TEST(Trace, FaultRecordShapes) {
  const std::string path = temp_path("trace_fault.tr");
  {
    TraceWriter tw(path);
    tw.record_fault(milliseconds(12500), 4, "crash");
    tw.record_fault(seconds(13), kBroadcast, "partition-start x=500");
    EXPECT_EQ(tw.lines(), 2u);
  }
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "F 12.500000000 _4_ FLT crash");
  EXPECT_EQ(lines[1], "F 13.000000000 _*_ FLT partition-start x=500");
}

// One faulted scenario end to end: the trace must interleave packet records
// with the fault lifecycle — crash/restart lines per node, broadcast lines
// for the partition — and timestamps must be non-decreasing (the trace is
// written in event-execution order).
TEST(Trace, ScenarioEmitsFaultLifecycle) {
  const std::string path = temp_path("trace_scenario.tr");
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kAodv;
  cfg.seed = 5;
  cfg.num_nodes = 14;
  cfg.area = {650.0, 650.0};
  cfg.v_max = 6.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(25);
  cfg.trace_path = path;
  cfg.fault.crash_rate = 1.0;
  cfg.fault.downtime_mean = seconds(5);
  cfg.fault.window_from = seconds(5);
  cfg.fault.partition = true;
  cfg.fault.partition_from = seconds(10);
  cfg.fault.partition_until = seconds(15);
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.crashes, 0u);

  const std::string text = slurp(path);
  EXPECT_NE(text.find(" FLT crash"), std::string::npos);
  EXPECT_NE(text.find(" FLT restart"), std::string::npos);
  EXPECT_NE(text.find("_*_ FLT partition-start"), std::string::npos);
  EXPECT_NE(text.find("_*_ FLT partition-end"), std::string::npos);
  EXPECT_NE(text.find("s "), std::string::npos);  // data still flows

  double prev = 0.0;
  std::size_t n = 0;
  for (const std::string& line : lines_of(text)) {
    double t = 0.0;
    ASSERT_EQ(std::sscanf(line.c_str() + 2, "%lf", &t), 1) << line;
    EXPECT_GE(t, prev) << "trace timestamps must be non-decreasing: " << line;
    prev = t;
    ++n;
  }
  EXPECT_GT(n, 100u);
}

}  // namespace
}  // namespace manet
