// Metropolitan-scale guarantees: grid-local candidate selection, the urban
// Manhattan scenario family, and large-N structural checks.
//
// Layers:
//   1. GridIndex property test at large N: for fuzzed placements and fuzzed
//      motion, a range query with the channel's slack margin returns a
//      superset of the exact in-range set, in ascending id order — the
//      invariant that lets Channel::transmit cull candidates grid-locally
//      without ever missing a receiver.
//   2. Manhattan mobility determinism: per-seed golden fingerprints (pinned
//      byte-exact), street-constrained positions, and pure-function-of-time
//      replay.
//   3. The urban family: all registered protocols run it unchanged, results
//      are byte-identical across MANET_SHARDS ∈ {1,2,4}, and faulted urban
//      runs (crash + restart) replay identically — restart safety.
//   4. A 5000-node city completes a short run with bounded memory per node
//      (the structural end of the 10k acceptance run, which lives in the
//      fig_scale bench).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "geom/grid_index.hpp"
#include "mobility/manhattan.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "testutil.hpp"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// 1. GridIndex range-query property at large N
// ---------------------------------------------------------------------------

TEST(GridIndexProperty, QueryIsSupersetOfExactDiskAtLargeN) {
  const Area area{10000.0, 10000.0};
  const double cell = 550.0;
  GridIndex grid(area, cell);
  RngStream rng(7, "grid-fuzz");

  const std::uint32_t n = 5000;
  std::vector<Vec2> pos;
  pos.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
    ASSERT_EQ(grid.insert(p), i);
    pos.push_back(p);
  }

  // The channel queries with cs_range + slack while candidate slots may be
  // up to one refresh stale; here slots are exact, so any radius must yield
  // a superset of the exact disk of the same radius.
  auto check_queries = [&](int rounds) {
    for (int q = 0; q < rounds; ++q) {
      const Vec2 c{rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
      const double radius = rng.uniform(100.0, 800.0);
      const auto exclude = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      std::vector<std::uint32_t> out;
      grid.query(c, radius, exclude, out);

      // Ascending id order (the determinism contract of the candidate walk).
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));

      // Superset of the exact disk; never contains the excluded id.
      const double r2 = radius * radius;
      std::size_t exact = 0;
      auto it = out.begin();
      for (std::uint32_t i = 0; i < n; ++i) {
        const bool inside = i != exclude && distance2(pos[i], c) <= r2;
        exact += inside ? 1u : 0u;
        if (inside) {
          while (it != out.end() && *it < i) ++it;
          ASSERT_TRUE(it != out.end() && *it == i)
              << "node " << i << " inside radius " << radius << " missing from query";
        }
      }
      EXPECT_EQ(std::count(out.begin(), out.end(), exclude), 0);
      // Grid-local culling must actually cull: the 3x3 neighbourhood of a
      // sub-cell radius cannot return the whole city.
      if (radius <= cell) {
        EXPECT_LT(out.size(), n / 4) << "query returned most of the grid";
      }
      (void)exact;
    }
  };
  check_queries(40);

  // Fuzzed motion: move a third of the points (update()), re-verify.
  for (std::uint32_t i = 0; i < n; i += 3) {
    pos[i] = Vec2{rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
    grid.update(i, pos[i]);
  }
  check_queries(40);
}

// ---------------------------------------------------------------------------
// 2. Manhattan mobility determinism
// ---------------------------------------------------------------------------

/// Fingerprint: positions of one model sampled on a fixed time lattice.
std::string manhattan_fingerprint(std::uint64_t seed) {
  ManhattanConfig cfg;
  cfg.area = Area{1000.0, 1000.0};
  Manhattan m(cfg, RngStream(seed, "mobility", 0));
  std::string fp;
  for (int t = 0; t <= 40; t += 10) {
    const Vec2 p = m.position_at(seconds(t));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d:(%.9g,%.9g) ", t, p.x, p.y);
    fp += buf;
  }
  return fp;
}

TEST(ManhattanDeterminism, PerSeedGoldenFingerprints) {
  // Pinned byte-exact. Any diff means seeded Manhattan trajectories changed
  // — which silently invalidates every urban golden and the fig_scale
  // baseline. Regenerate (and re-baseline) only for a deliberate model
  // change: MANET_PRINT_GOLDENS=1 ./test_scale prints fresh lines.
  const struct {
    std::uint64_t seed;
    const char* golden;
  } kGoldens[] = {
      {1, "0:(200,800) 10:(101.323166,800) 20:(2.64633289,800) 30:(0,909.644786) "
          "40:(0,996.612748) "},
      {2, "0:(800,800) 10:(800,732.081267) 20:(800,664.162534) 30:(791.780769,600) "
          "40:(643.16249,600) "},
      {3, "0:(800,200) 10:(862.151542,200) 20:(924.303085,200) 30:(986.454627,200) "
          "40:(1000,304.195031) "},
  };
  if (std::getenv("MANET_PRINT_GOLDENS") != nullptr) {
    for (const auto& g : kGoldens) {
      std::printf("{%llu, \"%s\"},\n", static_cast<unsigned long long>(g.seed),
                  manhattan_fingerprint(g.seed).c_str());
    }
  }
  for (const auto& g : kGoldens) {
    EXPECT_EQ(manhattan_fingerprint(g.seed), g.golden) << "seed " << g.seed;
  }
}

TEST(ManhattanDeterminism, PositionsStayOnStreets) {
  ManhattanConfig cfg;
  cfg.area = Area{1000.0, 1000.0};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Manhattan m(cfg, RngStream(seed, "mobility", seed));
    for (int t = 0; t <= 200; ++t) {
      const Vec2 p = m.position_at(seconds_f(0.5 * t));
      ASSERT_GE(p.x, 0.0);
      ASSERT_LE(p.x, cfg.area.width);
      ASSERT_GE(p.y, 0.0);
      ASSERT_LE(p.y, cfg.area.height);
      // On a street: at least one coordinate sits on the block lattice.
      const double dx = std::abs(p.x - std::round(p.x / cfg.block) * cfg.block);
      const double dy = std::abs(p.y - std::round(p.y / cfg.block) * cfg.block);
      ASSERT_LT(std::min(dx, dy), 1e-6)
          << "off-street position (" << p.x << ", " << p.y << ") at t=" << 0.5 * t;
    }
  }
}

TEST(ManhattanDeterminism, PureFunctionOfTimeAcrossSamplingPatterns) {
  // Two models, same seed, sampled on different lattices: positions at the
  // common instants must agree — the property the lazy connectivity sampler
  // and the periodic grid refresh both rely on.
  ManhattanConfig cfg;
  Manhattan dense(cfg, RngStream(11, "mobility", 4));
  Manhattan sparse(cfg, RngStream(11, "mobility", 4));
  std::vector<Vec2> at_tens;
  for (int t = 0; t <= 100; ++t) {
    const Vec2 p = dense.position_at(seconds_f(0.1 * t));
    if (t % 10 == 0) at_tens.push_back(p);
  }
  for (std::size_t k = 0; k < at_tens.size(); ++k) {
    const Vec2 p = sparse.position_at(seconds(static_cast<std::int64_t>(k)));
    EXPECT_DOUBLE_EQ(p.x, at_tens[k].x) << "t=" << k;
    EXPECT_DOUBLE_EQ(p.y, at_tens[k].y) << "t=" << k;
  }
}

// ---------------------------------------------------------------------------
// 3. The urban scenario family
// ---------------------------------------------------------------------------

using test::result_fingerprint;

TEST(UrbanFamily, BuilderWiresTheStreetCanyonModel) {
  const ScenarioConfig cfg = urban_scenario(200).build();
  EXPECT_EQ(cfg.mobility, MobilityKind::kManhattan);
  EXPECT_TRUE(cfg.phy.urban());
  EXPECT_GT(cfg.phy.nlos_loss_rate, 0.0);
  // Constant density: 200 nodes -> 4 km² -> 2 km side.
  EXPECT_DOUBLE_EQ(cfg.area.width, 2000.0);
  EXPECT_DOUBLE_EQ(cfg.area.height, 2000.0);
  // LOS down a street, NLOS across a block.
  EXPECT_TRUE(cfg.phy.line_of_sight({0.0, 0.0}, {200.0, 10.0}));
  EXPECT_FALSE(cfg.phy.line_of_sight({0.0, 0.0}, {200.0, 200.0}));
}

TEST(UrbanFamily, AllProtocolsRunItUnchanged) {
  for (const routing::ProtocolEntry& entry : protocol_registry()) {
    const ScenarioResult r =
        urban_scenario(30).protocol(entry.name).seed(1).duration(seconds(15)).run();
    EXPECT_GT(r.events, 0u) << entry.name;
    EXPECT_GT(r.data_originated, 0u) << entry.name;
  }
}

TEST(UrbanFamily, ShadowingActuallyBites) {
  // The same city with the canyon model on vs off must diverge — otherwise
  // the "urban" family is silently the open-field family.
  ScenarioBuilder b = urban_scenario(40).protocol(Protocol::kAodv).seed(2).duration(seconds(20));
  const ScenarioResult on = b.run();
  const ScenarioResult off = ScenarioBuilder::from(b.build()).urban(0.0).run();
  EXPECT_NE(result_fingerprint(on), result_fingerprint(off));
  // NLOS pruning can only remove oracle edges.
  EXPECT_LE(on.connectivity, off.connectivity);
}

TEST(UrbanFamily, ByteIdenticalAcrossShardCounts) {
  ScenarioBuilder b = urban_scenario(60).protocol(Protocol::kAodv).seed(1).duration(seconds(20));
  const ScenarioResult one = Scenario::run_once(b.shards(1).build());
  const ScenarioResult two = Scenario::run_once(b.shards(2).build());
  const ScenarioResult four = Scenario::run_once(b.shards(4).build());
  EXPECT_EQ(result_fingerprint(two), result_fingerprint(one))
      << "urban family diverged at 2 shards";
  EXPECT_EQ(result_fingerprint(four), result_fingerprint(one))
      << "urban family diverged at 4 shards";
  // Non-vacuous: the sharded runs really split the city.
  EXPECT_GT(two.cross_shard_events, 0u);
  EXPECT_GT(four.cross_shard_events, 0u);
}

TEST(UrbanFamily, FaultedRunsReplayAndShardIdentically) {
  FaultConfig fault;
  fault.crash_rate = 1.0;
  fault.downtime_mean = seconds(4);
  fault.window_from = seconds(4);
  ScenarioBuilder b =
      urban_scenario(40).protocol(Protocol::kAodv).seed(5).duration(seconds(20)).fault(fault);
  const ScenarioResult first = Scenario::run_once(b.shards(1).build());
  const ScenarioResult again = Scenario::run_once(b.shards(1).build());
  EXPECT_EQ(result_fingerprint(again), result_fingerprint(first))
      << "faulted urban run not replay-safe";
  EXPECT_GT(first.crashes, 0u) << "fault plan produced no crashes; restart path untested";
  const ScenarioResult sharded = Scenario::run_once(b.shards(2).build());
  EXPECT_EQ(result_fingerprint(sharded), result_fingerprint(first))
      << "faulted urban run diverged sharded";
}

// ---------------------------------------------------------------------------
// 4. Large-N structural checks
// ---------------------------------------------------------------------------

TEST(ScaleStructural, FiveThousandNodeCityCompletesWithBoundedMemory) {
  // Short horizon (traffic starts at 10 s) — this guards build + hot paths
  // at city scale; the full 10k × 900 s acceptance run lives in fig_scale.
  const ScenarioResult r = urban_scenario(5000)
                               .protocol(Protocol::kAodv)
                               .seed(1)
                               .duration(seconds(12))
                               .run();
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.data_originated, 0u);
  const std::uint64_t rss = process_peak_rss_bytes();
  EXPECT_GT(rss, 0u);
  // Memory per node stays in the hundreds-of-KB class, not MB — the arena
  // layout holds at city scale. (Process-wide RSS, so this is an upper
  // bound; the bench_gate baseline tracks the precise figure.)
  EXPECT_LT(rss / 5000, 1024u * 1024u) << "more than 1 MiB per node at N=5000";
}

TEST(ScaleStructural, SweepReportsMemoryPerNode) {
  std::vector<SweepCell> cells;
  cells.push_back(
      {"urban10", urban_scenario(10).protocol(Protocol::kAodv).duration(seconds(12)).build()});
  const SweepRunner runner(/*seeds=*/1, /*threads=*/1);
  const SweepResult sweep = runner.run(cells);
  ASSERT_EQ(sweep.cells.size(), 1u);
  EXPECT_GT(sweep.cells[0].peak_rss_bytes, 0u);
  EXPECT_GT(sweep.cells[0].bytes_per_node, 0.0);
  EXPECT_NE(sweep.to_baseline_json().find("bytes_per_node"), std::string::npos);
  EXPECT_NE(sweep.to_json().find("peak_rss_bytes"), std::string::npos);
  EXPECT_NE(sweep.to_csv().find("bytes_per_node"), std::string::npos);
}

}  // namespace
}  // namespace manet
