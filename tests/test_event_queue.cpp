#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "core/rng.hpp"

namespace manet {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(milliseconds(3), [&] { order.push_back(3); });
  q.schedule(milliseconds(1), [&] { order.push_back(1); });
  q.schedule(milliseconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(milliseconds(1), [&] { ++fired; });
  q.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(q.pending(id));
  q.cancel(id);
  EXPECT_FALSE(q.pending(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelExecutedEventIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(milliseconds(1), [] {});
  q.pop();
  q.cancel(id);  // must not corrupt anything
  EXPECT_TRUE(q.empty());
  q.schedule(milliseconds(2), [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(123456);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(milliseconds(1), [] {});
  q.schedule(milliseconds(2), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(milliseconds(1), [] {});
  q.schedule(milliseconds(5), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), milliseconds(5));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(milliseconds(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  for (int i = 0; i < 4; ++i) q.schedule(milliseconds(i), [] {});
  q.pop();
  q.pop();
  q.schedule(milliseconds(9), [] {});
  EXPECT_EQ(q.peak_size(), 4u);  // high-water mark, not current size
  EXPECT_EQ(q.size(), 3u);
}

// Regression: clear() used to drop the events but leave peak_size() at the
// old high-water mark, so a reused queue reported its previous life's peak.
TEST(EventQueue, ClearResetsPeakSize) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) q.schedule(milliseconds(i), [] {});
  EXPECT_EQ(q.peak_size(), 8u);
  q.clear();
  EXPECT_EQ(q.peak_size(), 0u);
  q.schedule(milliseconds(1), [] {});
  q.schedule(milliseconds(2), [] {});
  q.pop();
  EXPECT_EQ(q.peak_size(), 2u);  // new life, new high-water mark
}

TEST(EventQueue, ScheduleSeqOrdersTiesByCallerSeq) {
  // schedule_seq lets the sharded simulator stamp a global sequence number;
  // ties at equal time must pop in caller-seq order even when insertion
  // order disagrees.
  EventQueue q;
  std::vector<int> order;
  q.schedule_seq(milliseconds(5), 20, [&] { order.push_back(2); });
  q.schedule_seq(milliseconds(5), 10, [&] { order.push_back(1); });
  q.schedule_seq(milliseconds(5), 30, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleSeqKeepsInternalCounterCoherent) {
  // Plain schedule() after schedule_seq() must not mint a seq below one
  // already used, or the later event would jump the queue at equal time.
  EventQueue q;
  std::vector<int> order;
  q.schedule_seq(milliseconds(5), 100, [&] { order.push_back(1); });
  q.schedule(milliseconds(5), [&] { order.push_back(2); });  // must sort after
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, NextKeyReportsHeadTimeAndSeq) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule_seq(milliseconds(7), 42, [] {});
  q.schedule_seq(milliseconds(3), 99, [] {});
  const auto head = q.next_key();
  EXPECT_EQ(head.time, milliseconds(3));
  EXPECT_EQ(head.seq, 99u);
}

TEST(EventQueue, IdsAreNeverReused) {
  EventQueue q;
  const EventId a = q.schedule(milliseconds(1), [] {});
  q.pop();
  const EventId b = q.schedule(milliseconds(1), [] {});
  EXPECT_NE(a, b);
}

// The queue recycles slots with a bumped generation; a stale id must never
// alias the slot's next tenant.
TEST(EventQueue, StaleIdCannotCancelSlotsNextTenant) {
  EventQueue q;
  const EventId stale = q.schedule(milliseconds(1), [] {});
  q.pop();  // slot freed, id retired
  int fired = 0;
  const EventId fresh = q.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_NE(stale, fresh);  // same slot, different generation
  q.cancel(stale);          // aims at the old tenant: must be a no-op
  EXPECT_TRUE(q.pending(fresh));
  EXPECT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, IdsStayUniqueAcrossHeavySlotReuse) {
  // One slot recycled thousands of times must keep minting distinct ids.
  EventQueue q;
  std::vector<EventId> seen;
  for (int i = 0; i < 5000; ++i) {
    const EventId id = q.schedule(milliseconds(1), [] {});
    seen.push_back(id);
    q.pop();
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(EventQueue, PendingAcrossClear) {
  EventQueue q;
  const EventId before = q.schedule(milliseconds(1), [] {});
  q.clear();
  EXPECT_FALSE(q.pending(before));
  // Ids issued before clear() must not be confused with later tenants of
  // the same slots.
  int fired = 0;
  const EventId after = q.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_NE(before, after);
  EXPECT_FALSE(q.pending(before));
  EXPECT_TRUE(q.pending(after));
  q.cancel(before);  // stale: no effect on the new event
  EXPECT_TRUE(q.pending(after));
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CallbackCapturesReleasedOnCancel) {
  // Cancelling destroys the callback immediately; a shared_ptr captured by
  // the closure must drop its refcount without waiting for pop()/clear().
  EventQueue q;
  auto token = std::make_shared<int>(42);
  const EventId id = q.schedule(milliseconds(1), [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  q.cancel(id);
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, LargeCallbacksSurviveHeapFallback) {
  // Captures bigger than the inline buffer take the heap path; semantics
  // must not change.
  EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 bytes, over the 32-byte SBO
  big[0] = 7;
  big[15] = 9;
  std::uint64_t sum = 0;
  q.schedule(milliseconds(1), [big, &sum] { sum = big[0] + big[15]; });
  q.pop().cb();
  EXPECT_EQ(sum, 16u);
}

// Fuzz the queue against a trivially-correct reference model: the reference
// keeps every event in a flat vector and pops by linear scan over
// (time, insertion-seq). Any drift in pop order, pending() answers, or
// fired-callback counts vs the pre-refactor semantics shows up here.
TEST(EventQueue, FuzzMatchesReferenceModel) {
  struct RefEvent {
    SimTime time;
    std::uint64_t seq;
    int payload;
    bool live = true;
  };
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    RngStream rng(seed);
    EventQueue q;
    std::vector<RefEvent> ref;        // by insertion order; seq = index
    std::vector<EventId> ids;         // parallel to ref
    std::vector<int> fired;
    int next_payload = 0;

    auto ref_pop = [&]() -> RefEvent* {
      RefEvent* best = nullptr;
      for (RefEvent& e : ref) {
        if (!e.live) continue;
        if (best == nullptr || e.time < best->time) best = &e;  // seq order = scan order
      }
      return best;
    };

    for (int step = 0; step < 3000; ++step) {
      const double dice = rng.uniform();
      if (dice < 0.55) {  // schedule
        const SimTime t = milliseconds(rng.uniform_int(0, 500));
        const int payload = next_payload++;
        ids.push_back(q.schedule(t, [payload, &fired] { fired.push_back(payload); }));
        ref.push_back({t, static_cast<std::uint64_t>(ref.size()), payload, true});
      } else if (dice < 0.80 && !ids.empty()) {  // cancel a random id (maybe stale)
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
        ASSERT_EQ(q.pending(ids[idx]), ref[idx].live);
        q.cancel(ids[idx]);
        ref[idx].live = false;
      } else if (!q.empty()) {  // pop one
        auto ev = q.pop();
        RefEvent* expect = ref_pop();
        ASSERT_NE(expect, nullptr);
        ASSERT_EQ(ev.time, expect->time);
        expect->live = false;
        const auto before = fired.size();
        ev.cb();
        ASSERT_EQ(fired.size(), before + 1);
        ASSERT_EQ(fired.back(), expect->payload);
      }
    }
    // Drain: remaining events must fire in exactly the reference order.
    while (!q.empty()) {
      auto ev = q.pop();
      RefEvent* expect = ref_pop();
      ASSERT_NE(expect, nullptr);
      expect->live = false;
      ev.cb();
      ASSERT_EQ(fired.back(), expect->payload);
    }
    ASSERT_EQ(ref_pop(), nullptr);  // model drained too
  }
}

// Property: a random mix of schedules and cancels always pops in
// non-decreasing time order and fires exactly the non-cancelled callbacks.
class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueProperty, RandomMixMaintainsOrderAndCount) {
  RngStream rng(GetParam());
  EventQueue q;
  std::vector<EventId> live;
  int expected = 0;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.uniform() < 0.7) {
      live.push_back(q.schedule(milliseconds(rng.uniform_int(0, 1000)), [&] { ++fired; }));
      ++expected;
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      if (q.pending(live[idx])) --expected;
      q.cancel(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
    ev.cb();
  }
  EXPECT_EQ(fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace manet
