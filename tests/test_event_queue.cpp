#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace manet {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(milliseconds(3), [&] { order.push_back(3); });
  q.schedule(milliseconds(1), [&] { order.push_back(1); });
  q.schedule(milliseconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(milliseconds(1), [&] { ++fired; });
  q.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(q.pending(id));
  q.cancel(id);
  EXPECT_FALSE(q.pending(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelExecutedEventIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(milliseconds(1), [] {});
  q.pop();
  q.cancel(id);  // must not corrupt anything
  EXPECT_TRUE(q.empty());
  q.schedule(milliseconds(2), [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(123456);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(milliseconds(1), [] {});
  q.schedule(milliseconds(2), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(milliseconds(1), [] {});
  q.schedule(milliseconds(5), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), milliseconds(5));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(milliseconds(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, IdsAreNeverReused) {
  EventQueue q;
  const EventId a = q.schedule(milliseconds(1), [] {});
  q.pop();
  const EventId b = q.schedule(milliseconds(1), [] {});
  EXPECT_NE(a, b);
}

// Property: a random mix of schedules and cancels always pops in
// non-decreasing time order and fires exactly the non-cancelled callbacks.
class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueProperty, RandomMixMaintainsOrderAndCount) {
  RngStream rng(GetParam());
  EventQueue q;
  std::vector<EventId> live;
  int expected = 0;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.uniform() < 0.7) {
      live.push_back(q.schedule(milliseconds(rng.uniform_int(0, 1000)), [&] { ++fired; }));
      ++expected;
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      if (q.pending(live[idx])) --expected;
      q.cancel(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
    ev.cb();
  }
  EXPECT_EQ(fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace manet
