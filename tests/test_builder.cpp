// ScenarioBuilder: the fluent construction path must stage exactly the same
// config a careful hand-assembly produces, resolve protocol names through
// the registry, and reject invalid configs at build() with the offending
// values in the contract message (death tests — contracts abort).

#include "scenario/builder.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hpp"
#include "scenario/scenario.hpp"

namespace manet {
namespace {

TEST(ScenarioBuilder, DefaultBuildMatchesTableOneDefaults) {
  const ScenarioConfig built = ScenarioBuilder().build();
  const ScenarioConfig defaults;
  EXPECT_EQ(built.protocol, defaults.protocol);
  EXPECT_EQ(built.num_nodes, defaults.num_nodes);
  EXPECT_EQ(built.area.width, defaults.area.width);
  EXPECT_EQ(built.area.height, defaults.area.height);
  EXPECT_EQ(built.v_min, defaults.v_min);
  EXPECT_EQ(built.v_max, defaults.v_max);
  EXPECT_EQ(built.duration, defaults.duration);
  EXPECT_EQ(built.num_connections, defaults.num_connections);
  EXPECT_EQ(built.shards, defaults.shards);
}

TEST(ScenarioBuilder, SettersStageExactlyTheNamedFields) {
  const ScenarioConfig cfg = ScenarioBuilder()
                                 .protocol(Protocol::kOlsr)
                                 .seed(7)
                                 .nodes(70)
                                 .area(1500.0, 300.0)
                                 .mobility(MobilityKind::kGaussMarkov)
                                 .speed(0.5, 15.0)
                                 .pause(seconds(30))
                                 .connections(20)
                                 .payload(256)
                                 .traffic(TrafficKind::kOnOff)
                                 .cbr_interval(seconds_f(0.5))
                                 .duration(seconds(90))
                                 .shards(2)
                                 .trace("/tmp/t.tr")
                                 .frame_loss(0.05)
                                 .build();
  EXPECT_EQ(cfg.protocol, Protocol::kOlsr);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.num_nodes, 70u);
  EXPECT_EQ(cfg.area.width, 1500.0);
  EXPECT_EQ(cfg.area.height, 300.0);
  EXPECT_EQ(cfg.mobility, MobilityKind::kGaussMarkov);
  EXPECT_EQ(cfg.v_min, 0.5);
  EXPECT_EQ(cfg.v_max, 15.0);
  EXPECT_EQ(cfg.pause, seconds(30));
  EXPECT_EQ(cfg.num_connections, 20u);
  EXPECT_EQ(cfg.payload_bytes, 256u);
  EXPECT_EQ(cfg.traffic, TrafficKind::kOnOff);
  EXPECT_EQ(cfg.cbr_interval, seconds_f(0.5));
  EXPECT_EQ(cfg.duration, seconds(90));
  EXPECT_EQ(cfg.shards, 2u);
  EXPECT_EQ(cfg.trace_path, "/tmp/t.tr");
  EXPECT_EQ(cfg.phy.frame_loss_rate, 0.05);
}

TEST(ScenarioBuilder, ProtocolByNameIsCaseInsensitive) {
  EXPECT_EQ(ScenarioBuilder().protocol("dsr").build().protocol, Protocol::kDsr);
  EXPECT_EQ(ScenarioBuilder().protocol("OlSr").build().protocol, Protocol::kOlsr);
  EXPECT_EQ(ScenarioBuilder().protocol("TORA").build().protocol, Protocol::kTora);
}

TEST(ScenarioBuilder, LaterProtocolSetterWins) {
  // A by-name setter supersedes an earlier by-enum one and vice versa.
  EXPECT_EQ(ScenarioBuilder().protocol(Protocol::kDsdv).protocol("lar").build().protocol,
            Protocol::kLar);
  EXPECT_EQ(ScenarioBuilder().protocol("lar").protocol(Protocol::kDsdv).build().protocol,
            Protocol::kDsdv);
}

TEST(ScenarioBuilder, WithEscapeHatchReachesNestedKnobs) {
  const ScenarioConfig cfg = ScenarioBuilder()
                                 .with([](ScenarioConfig& c) { c.aodv.expanding_ring = false; })
                                 .with([](ScenarioConfig& c) { c.mac.use_rts = false; })
                                 .build();
  EXPECT_FALSE(cfg.aodv.expanding_ring);
  EXPECT_FALSE(cfg.mac.use_rts);
}

TEST(ScenarioBuilder, FromExistingConfigPreservesEveryField) {
  ScenarioConfig base;
  base.protocol = Protocol::kCbrp;
  base.num_nodes = 33;
  base.v_max = 9.0;
  base.mac.ifq_capacity = 13;
  const ScenarioConfig round = ScenarioBuilder::from(base).build();
  EXPECT_EQ(round.protocol, Protocol::kCbrp);
  EXPECT_EQ(round.num_nodes, 33u);
  EXPECT_EQ(round.v_max, 9.0);
  EXPECT_EQ(round.mac.ifq_capacity, 13u);
  // ...and variations stage on top of the imported base.
  EXPECT_EQ(ScenarioBuilder::from(base).nodes(44).build().num_nodes, 44u);
}

TEST(ScenarioBuilder, FaultSetterStagesTheFaultPlan) {
  FaultConfig fault;
  fault.crash_rate = 0.5;
  fault.downtime_mean = seconds(5);
  const ScenarioConfig cfg = ScenarioBuilder().fault(fault).build();
  EXPECT_EQ(cfg.fault.crash_rate, 0.5);
  EXPECT_EQ(cfg.fault.downtime_mean, seconds(5));
}

// ---------------------------------------------------------------------------
// Validation: build() must reject nonsense loudly, naming the bad value.
// ---------------------------------------------------------------------------

TEST(ScenarioBuilderDeathTest, UnknownProtocolNameListsRegisteredOnes) {
  EXPECT_DEATH((void)ScenarioBuilder().protocol("ospf").build(), "unknown protocol.*AODV");
}

TEST(ScenarioBuilderDeathTest, RejectsTooFewNodes) {
  EXPECT_DEATH((void)ScenarioBuilder().nodes(1).build(), "num_nodes");
}

TEST(ScenarioBuilderDeathTest, RejectsNonPositiveArea) {
  EXPECT_DEATH((void)ScenarioBuilder().area(0.0, 300.0).build(), "area");
}

TEST(ScenarioBuilderDeathTest, RejectsNonPositiveDuration) {
  EXPECT_DEATH((void)ScenarioBuilder().duration(SimTime::zero()).build(), "duration");
}

TEST(ScenarioBuilderDeathTest, RejectsInvertedSpeedRange) {
  EXPECT_DEATH((void)ScenarioBuilder().speed(5.0, 1.0).build(), "v_m");
}

TEST(ScenarioBuilderDeathTest, RejectsShardCountAboveKernelCap) {
  EXPECT_DEATH((void)ScenarioBuilder().shards(64).build(), "shards");
}

TEST(ScenarioBuilderDeathTest, RejectsFrameLossOutsideUnitInterval) {
  EXPECT_DEATH((void)ScenarioBuilder().frame_loss(1.5).build(), "loss");
}

TEST(ScenarioBuilderDeathTest, RejectsFaultWindowPastEndOfRun) {
  FaultConfig fault;
  fault.crash_rate = 0.5;
  fault.window_from = seconds(500);  // run only lasts 150 s
  EXPECT_DEATH((void)ScenarioBuilder().fault(fault).build(), "window");
}

}  // namespace
}  // namespace manet
