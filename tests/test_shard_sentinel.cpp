// ShardSentinel (core/shard_sentinel.hpp) — the dynamic half of the
// shard-safety checker.
//
// Three properties:
//   1. A deliberate cross-shard state touch inside an armed access scope
//      aborts, and the abort message carries the full (sim-time, node,
//      owning-shard, accessing-shard) context — that line is the worklist
//      entry a parallel-dispatch refactor works from.
//   2. Same-shard touches, unarmed (single-shard) runs, and exempt scopes
//      pass through silently.
//   3. End-to-end: full sharded scenario runs — including a faulted one,
//      whose crash/restart dispatch is the audited cross-shard exemption —
//      complete with every handler under sentinel scrutiny.
//
// The whole suite is Debug-only: in NDEBUG builds the sentinel compiles out
// and the suite reduces to the end-to-end runs (which then double-check the
// macros really did vanish without breaking anything).

#include "core/shard_sentinel.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "core/shard.hpp"
#include "fault/fault.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"

namespace manet {
namespace {

ScenarioBuilder sharded_scenario(std::uint64_t seed) {
  ScenarioBuilder b;
  b.protocol(Protocol::kAodv)
      .seed(seed)
      .nodes(14)
      .area(650.0, 650.0)
      .speed(0.1, 6.0)
      .connections(4)
      .duration(seconds(15))
      .shards(2);
  return b;
}

/// First node owned by `shard`, or size() when that shard is empty.
[[maybe_unused]] std::size_t node_on_shard(const Scenario& sc, std::uint32_t shard) {
  for (std::size_t i = 0; i < sc.size(); ++i) {
    if (sc.shard_map().shard_of(static_cast<std::uint32_t>(i)) == shard) return i;
  }
  return sc.size();
}

#if MANET_SHARD_SENTINEL

using sentinel::AccessScope;
using sentinel::Binding;
using sentinel::ExemptScope;

TEST(ShardSentinelDeath, CrossShardTouchAbortsWithContext) {
  Scenario sc(sharded_scenario(7).build());
  sc.build();
  const std::size_t victim = node_on_shard(sc, 1);
  ASSERT_LT(victim, sc.size()) << "striping left shard 1 empty";

  const Binding bind(sc.shard_map(), /*armed=*/true);
  const AccessScope scope(/*shard=*/0, milliseconds(12));
  // Node 'victim' is owned by shard 1; we are "running as" shard 0. The
  // death message is the worklist format the parallel-dispatch PR consumes.
  EXPECT_DEATH(sc.node(victim).originate(Packet{}),
               "shard sentinel: cross-shard access in Node::originate: "
               "t=12000000ns node=[0-9]+ owner-shard=1 accessing-shard=0");
}

TEST(ShardSentinel, SameShardAndExemptAndUnarmedTouchesPass) {
  Scenario sc(sharded_scenario(7).build());
  sc.build();
  const std::size_t local = node_on_shard(sc, 0);
  const std::size_t foreign = node_on_shard(sc, 1);
  ASSERT_LT(local, sc.size());
  ASSERT_LT(foreign, sc.size());

  const Binding bind(sc.shard_map(), /*armed=*/true);
  {
    // Same-shard: fine.
    const AccessScope scope(0, milliseconds(1));
    sc.node(local).drop(Packet{}, DropReason::kNoRoute);
  }
  {
    // Cross-shard but exempt (the fault-injection pattern): fine.
    const AccessScope scope(0, milliseconds(2));
    const ExemptScope exempt("test: serialized coordinator action");
    sc.node(foreign).drop(Packet{}, DropReason::kNoRoute);
  }
  {
    // Outside any access scope (pre-run wiring): fine.
    sc.node(foreign).drop(Packet{}, DropReason::kNoRoute);
  }
}

TEST(ShardSentinel, UnarmedBindingChecksNothing) {
  Scenario sc(sharded_scenario(7).build());
  sc.build();
  const std::size_t foreign = node_on_shard(sc, 1);
  ASSERT_LT(foreign, sc.size());
  // Single-shard runs bind unarmed; cross-shard touches must not trip.
  const Binding bind(sc.shard_map(), /*armed=*/false);
  const AccessScope scope(0, milliseconds(3));
  sc.node(foreign).drop(Packet{}, DropReason::kNoRoute);
}

#endif  // MANET_SHARD_SENTINEL

// ---------------------------------------------------------------------------
// End-to-end: every handler of a real sharded run under the sentinel
// ---------------------------------------------------------------------------

TEST(ShardSentinelEndToEnd, ShardedRunCompletesUnderSentinel) {
  const ScenarioResult r = Scenario::run_once(sharded_scenario(11).build());
  EXPECT_GT(r.events, 0u);
  EXPECT_EQ(r.shards, 2u);
}

TEST(ShardSentinelEndToEnd, FaultedShardedRunUsesTheAuditedExemption) {
  // Crash/restart target nodes on any shard from the coordinator-serialized
  // fault handler; the exemption in Scenario::apply_fault must cover it.
  ScenarioBuilder b = sharded_scenario(13);
  FaultConfig fault;
  fault.crash_rate = 1.5;
  fault.downtime_mean = seconds(1);
  b.fault(fault);
  const ScenarioResult r = Scenario::run_once(b.build());
  EXPECT_GT(r.events, 0u);
}

}  // namespace
}  // namespace manet
