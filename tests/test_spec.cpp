// Scenario spec loader: the declarative DSL must expand to exactly the cell
// grids the benches build through ScenarioBuilder (same labels, same configs
// — which makes the runs byte-identical, since a run is a pure function of
// (config, seed)), and every schema violation must come back as a
// line-anchored Error instead of the builder's contract abort.

#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"

namespace manet {
namespace {

spec::ScenarioSpec load(const std::string& text) { return spec::load_string(text, "test.json"); }

/// True when some error mentions `needle` (in the key or the message).
bool has_error(const spec::ScenarioSpec& s, const std::string& needle) {
  for (const spec::Error& e : s.errors) {
    if (e.key.find(needle) != std::string::npos || e.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Every config field the simulation reads, as one exact-match string.
/// Two configs with equal fingerprints produce byte-identical runs.
std::string fingerprint(const ScenarioConfig& c) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "proto=%d seed=%llu n=%u area=%g,%g static=%d mob=%d v=%g,%g pause=%lld warmup=%lld "
      "man_block=%g man_pturn=%g conn=%u payload=%zu traffic=%d cbr=%lld start=%lld "
      "startw=%lld burst=%lld idle=%lld dur=%lld shards=%u conn_meas=%d trace=%s "
      "phy=%g,%g,%g,%g urban=%g,%g,%g mac_rts=%d,%zu,%zu "
      "fault=%g,%lld,%d,%lld,%g,%lld,%lld,%d,%g,%lld,%lld,%lld "
      "tp=%d,%lld,%lld,%lld,%u,%u,%u,%u",
      static_cast<int>(c.protocol), static_cast<unsigned long long>(c.seed), c.num_nodes,
      c.area.width, c.area.height, c.static_nodes ? 1 : 0, static_cast<int>(c.mobility), c.v_min,
      c.v_max, static_cast<long long>(c.pause.ns()),
      static_cast<long long>(c.mobility_warmup.ns()), c.manhattan.block, c.manhattan.p_turn,
      c.num_connections, c.payload_bytes, static_cast<int>(c.traffic),
      static_cast<long long>(c.cbr_interval.ns()), static_cast<long long>(c.cbr_start.ns()),
      static_cast<long long>(c.cbr_start_window.ns()),
      static_cast<long long>(c.onoff_burst_mean.ns()),
      static_cast<long long>(c.onoff_idle_mean.ns()), static_cast<long long>(c.duration.ns()),
      c.shards, c.measure_connectivity ? 1 : 0, c.trace_path.c_str(), c.phy.data_rate_bps,
      c.phy.rx_range_m, c.phy.cs_range_m, c.phy.frame_loss_rate, c.phy.street_width_m,
      c.phy.nlos_rx_range_m, c.phy.nlos_loss_rate, c.mac.use_rts ? 1 : 0, c.mac.rts_threshold,
      c.mac.ifq_capacity, c.fault.crash_rate, static_cast<long long>(c.fault.downtime_mean.ns()),
      c.fault.link_blackouts, static_cast<long long>(c.fault.blackout_mean.ns()),
      c.fault.corrupt_rate, static_cast<long long>(c.fault.corrupt_from.ns()),
      static_cast<long long>(c.fault.corrupt_until.ns()), c.fault.partition ? 1 : 0,
      c.fault.partition_frac, static_cast<long long>(c.fault.partition_from.ns()),
      static_cast<long long>(c.fault.partition_until.ns()),
      static_cast<long long>(c.fault.window_from.ns()), c.transport.enabled ? 1 : 0,
      static_cast<long long>(c.transport.rto_initial.ns()),
      static_cast<long long>(c.transport.rto_min.ns()),
      static_cast<long long>(c.transport.rto_max.ns()), c.transport.cwnd_init,
      c.transport.cwnd_max, c.transport.max_retx, c.transport.buffer_packets);
  return buf;
}

// -- happy path --------------------------------------------------------------

TEST(SpecLoader, MinimalSpecYieldsOneTableOneCell) {
  const auto s = load(R"({"name": "mini"})");
  ASSERT_TRUE(s.ok()) << s.error_report();
  EXPECT_EQ(s.name, "mini");
  EXPECT_EQ(s.seeds, 1);
  EXPECT_EQ(s.out_dir, "results");
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells[0].label, "AODV");
  EXPECT_EQ(fingerprint(s.cells[0].config), fingerprint(ScenarioBuilder().build()));
}

TEST(SpecLoader, FullSchemaRoundTrip) {
  const auto s = load(R"({
    "name": "full",
    "description": "all keys",
    "seeds": 7,
    "output": {"dir": "out"},
    "base": {
      "protocol": "olsr",
      "seed": 42,
      "nodes": 25,
      "area_m": [800, 600],
      "static": false,
      "duration_s": 90,
      "shards": 2,
      "measure_connectivity": false,
      "trace": "t.tr",
      "mobility": {"model": "manhattan", "v_min_mps": 1, "v_max_mps": 12,
                   "pause_s": 5, "warmup_s": 500, "block_m": 100, "p_turn": 0.25},
      "traffic": {"kind": "onoff", "connections": 6, "payload_bytes": 256,
                  "interval_ms": 125, "start_s": 5, "start_window_s": 2,
                  "burst_mean_s": 3, "idle_mean_s": 4},
      "radio": {"data_rate_bps": 1e6, "rx_range_m": 200, "cs_range_m": 440,
                "frame_loss_rate": 0.05},
      "mac": {"use_rts": false, "rts_threshold_bytes": 128, "ifq_capacity": 20},
      "urban": {"street_width_m": 15, "nlos_range_m": 60, "nlos_loss": 0.2},
      "fault": {"crash_rate": 0.5, "downtime_mean_s": 8, "link_blackouts": 3,
                "blackout_mean_s": 2, "corrupt_rate": 0.1, "corrupt_from_s": 20,
                "corrupt_until_s": 40, "partition": true, "partition_frac": 0.4,
                "partition_from_s": 30, "partition_until_s": 50, "window_from_s": 15}
    }
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  EXPECT_EQ(s.seeds, 7);
  EXPECT_EQ(s.out_dir, "out");
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells[0].label, "OLSR");  // canonical registry name, not "olsr"
  const ScenarioConfig& c = s.cells[0].config;
  EXPECT_EQ(c.protocol, Protocol::kOlsr);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_EQ(c.num_nodes, 25u);
  EXPECT_EQ(c.area.width, 800.0);
  EXPECT_EQ(c.area.height, 600.0);
  EXPECT_EQ(c.mobility, MobilityKind::kManhattan);
  EXPECT_EQ(c.v_min, 1.0);
  EXPECT_EQ(c.v_max, 12.0);
  EXPECT_EQ(c.pause, seconds(5));
  EXPECT_EQ(c.mobility_warmup, seconds(500));
  EXPECT_EQ(c.manhattan.block, 100.0);
  EXPECT_EQ(c.manhattan.p_turn, 0.25);
  EXPECT_EQ(c.traffic, TrafficKind::kOnOff);
  EXPECT_EQ(c.num_connections, 6u);
  EXPECT_EQ(c.payload_bytes, 256u);
  EXPECT_EQ(c.cbr_interval, milliseconds(125));
  EXPECT_EQ(c.cbr_start, seconds(5));
  EXPECT_EQ(c.cbr_start_window, seconds(2));
  EXPECT_EQ(c.onoff_burst_mean, seconds(3));
  EXPECT_EQ(c.onoff_idle_mean, seconds(4));
  EXPECT_EQ(c.duration, seconds(90));
  EXPECT_EQ(c.shards, 2u);
  EXPECT_FALSE(c.measure_connectivity);
  EXPECT_EQ(c.trace_path, "t.tr");
  EXPECT_EQ(c.phy.data_rate_bps, 1e6);
  EXPECT_EQ(c.phy.rx_range_m, 200.0);
  EXPECT_EQ(c.phy.cs_range_m, 440.0);
  EXPECT_EQ(c.phy.frame_loss_rate, 0.05);
  EXPECT_EQ(c.phy.street_width_m, 15.0);
  EXPECT_EQ(c.phy.nlos_rx_range_m, 60.0);
  EXPECT_EQ(c.phy.nlos_loss_rate, 0.2);
  EXPECT_FALSE(c.mac.use_rts);
  EXPECT_EQ(c.mac.rts_threshold, 128u);
  EXPECT_EQ(c.mac.ifq_capacity, 20u);
  EXPECT_EQ(c.fault.crash_rate, 0.5);
  EXPECT_EQ(c.fault.downtime_mean, seconds(8));
  EXPECT_EQ(c.fault.link_blackouts, 3);
  EXPECT_EQ(c.fault.corrupt_rate, 0.1);
  EXPECT_TRUE(c.fault.partition);
  EXPECT_EQ(c.fault.window_from, seconds(15));
}

TEST(SpecLoader, RatePpsIsIntervalReciprocal) {
  const auto s = load(
      R"({"name": "r", "base": {"traffic": {"rate_pps": 4}}})");
  ASSERT_TRUE(s.ok()) << s.error_report();
  EXPECT_EQ(s.cells[0].config.cbr_interval, milliseconds(250));
}

TEST(SpecLoader, TransportSectionRoundTrip) {
  const auto s = load(R"({
    "name": "tp",
    "base": {"transport": {
      "enabled": true, "rto_initial_ms": 500, "rto_min_ms": 100,
      "rto_max_ms": 30000, "cwnd_init": 4, "cwnd_max": 16,
      "max_retx": 5, "buffer_packets": 32
    }}
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  const TransportConfig& t = s.cells[0].config.transport;
  EXPECT_TRUE(t.enabled);
  EXPECT_EQ(t.rto_initial, milliseconds(500));
  EXPECT_EQ(t.rto_min, milliseconds(100));
  EXPECT_EQ(t.rto_max, seconds(30));
  EXPECT_EQ(t.cwnd_init, 4u);
  EXPECT_EQ(t.cwnd_max, 16u);
  EXPECT_EQ(t.max_retx, 5u);
  EXPECT_EQ(t.buffer_packets, 32u);

  // A spec with no transport section keeps the closed loop off entirely, so
  // existing scenario files keep producing byte-identical open-loop runs.
  const auto off = load(R"({"name": "off"})");
  ASSERT_TRUE(off.ok()) << off.error_report();
  EXPECT_FALSE(off.cells[0].config.transport.enabled);
}

// -- sweep expansion ---------------------------------------------------------

TEST(SpecLoader, SweepExpandsProtocolMajorWithBenchLabels) {
  const auto s = load(R"({
    "name": "sweep",
    "sweep": {
      "protocols": ["AODV", "DSR"],
      "axes": [{"param": "pause", "values": [0, 30]}]
    }
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 4u);
  EXPECT_EQ(s.cells[0].label, "AODV/pause:0");
  EXPECT_EQ(s.cells[1].label, "AODV/pause:30");
  EXPECT_EQ(s.cells[2].label, "DSR/pause:0");
  EXPECT_EQ(s.cells[3].label, "DSR/pause:30");
  EXPECT_EQ(s.cells[1].config.pause, seconds(30));
  EXPECT_EQ(s.cells[2].config.protocol, Protocol::kDsr);
}

TEST(SpecLoader, VmaxZeroMeansStatic) {
  const auto s = load(R"({
    "name": "mob", "sweep": {"axes": [{"param": "vmax", "values": [0, 5]}]}
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 2u);
  EXPECT_EQ(s.cells[0].label, "AODV/vmax:0");
  EXPECT_TRUE(s.cells[0].config.static_nodes);
  EXPECT_FALSE(s.cells[1].config.static_nodes);
  EXPECT_EQ(s.cells[1].config.v_max, 5.0);
}

TEST(SpecLoader, RateAxisSweepsOfferedLoadAsIntervalReciprocal) {
  const auto s = load(R"({
    "name": "load",
    "sweep": {"axes": [{"param": "rate", "values": [4, 8]}]}
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 2u);
  EXPECT_EQ(s.cells[0].label, "AODV/rate:4");
  EXPECT_EQ(s.cells[1].label, "AODV/rate:8");
  EXPECT_EQ(s.cells[0].config.cbr_interval, milliseconds(250));
  EXPECT_EQ(s.cells[1].config.cbr_interval, milliseconds(125));

  const auto bad = load(R"({
    "name": "load0", "sweep": {"axes": [{"param": "rate", "values": [0]}]}
  })");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(has_error(bad, "> 0"));
}

TEST(SpecLoader, ExplicitCellsOverrideBase) {
  const auto s = load(R"({
    "name": "cells",
    "base": {"nodes": 20},
    "sweep": {"cells": [
      {"label": "small", "set": {"nodes": 10}},
      {"label": "big", "set": {"nodes": 80}}
    ]}
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 2u);
  EXPECT_EQ(s.cells[0].label, "small");
  EXPECT_EQ(s.cells[0].config.num_nodes, 10u);
  EXPECT_EQ(s.cells[1].config.num_nodes, 80u);
}

// -- error paths -------------------------------------------------------------
// Every kind of schema violation must surface as a line-anchored Error; none
// may reach the builder's aborting contracts.

TEST(SpecErrors, MissingName) {
  const auto s = load(R"({"base": {}})");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "name"));
  EXPECT_TRUE(has_error(s, "required key is missing"));
}

TEST(SpecErrors, UnknownKeysAtEveryLevel) {
  const auto s = load(R"({
    "name": "u",
    "typo_top": 1,
    "base": {"typo_base": 2, "mobility": {"typo_mob": 3}}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "typo_top"));
  EXPECT_TRUE(has_error(s, "base.typo_base"));
  EXPECT_TRUE(has_error(s, "base.mobility.typo_mob"));
  EXPECT_TRUE(has_error(s, "unknown key"));
}

TEST(SpecErrors, WrongTypes) {
  const auto s = load(R"({
    "name": "t",
    "base": {"nodes": "forty", "static": 1, "mobility": [1, 2]}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "expected number, got string"));
  EXPECT_TRUE(has_error(s, "expected bool, got number"));
  EXPECT_TRUE(has_error(s, "expected object, got array"));
}

TEST(SpecErrors, OutOfRangeValues) {
  const auto s = load(R"({
    "name": "r",
    "base": {
      "nodes": 1,
      "shards": 99,
      "duration_s": -5,
      "radio": {"frame_loss_rate": 1.0},
      "mobility": {"pause_s": -1},
      "fault": {"corrupt_rate": 1.5}
    }
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "base.nodes"));
  EXPECT_TRUE(has_error(s, "base.shards"));
  EXPECT_TRUE(has_error(s, "base.duration_s"));
  EXPECT_TRUE(has_error(s, "base.radio.frame_loss_rate"));
  EXPECT_TRUE(has_error(s, "base.mobility.pause_s"));
  EXPECT_TRUE(has_error(s, "base.fault.corrupt_rate"));
}

TEST(SpecErrors, NonIntegerWhereIntegerRequired) {
  const auto s = load(R"({"name": "i", "base": {"nodes": 12.5}})");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "must be an integer"));
}

TEST(SpecErrors, UnknownProtocolListsRegistry) {
  const auto s = load(R"({"name": "p", "base": {"protocol": "XYZ"}})");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "unknown protocol \"XYZ\""));
  EXPECT_TRUE(has_error(s, "AODV"));  // the message names the registered set
  const auto s2 = load(R"({"name": "p2", "sweep": {"protocols": ["AODV", "NOPE"]}})");
  ASSERT_FALSE(s2.ok());
  EXPECT_TRUE(has_error(s2, "sweep.protocols[1]"));
}

TEST(SpecErrors, UnknownMobilityModelAndTrafficKind) {
  const auto s = load(R"({
    "name": "m",
    "base": {"mobility": {"model": "teleport"}, "traffic": {"kind": "tcp"}}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "unknown mobility model \"teleport\""));
  EXPECT_TRUE(has_error(s, "unknown traffic kind \"tcp\""));
}

TEST(SpecErrors, RateAndIntervalAreExclusive) {
  const auto s = load(
      R"({"name": "x", "base": {"traffic": {"rate_pps": 4, "interval_ms": 250}}})");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "mutually exclusive"));
}

TEST(SpecErrors, CrossFieldContracts) {
  const auto s = load(R"({
    "name": "c",
    "base": {"mobility": {"v_min_mps": 9, "v_max_mps": 3}}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "v_min <= v_max"));

  const auto s2 = load(R"({
    "name": "c2", "base": {"duration_s": 5, "traffic": {"start_s": 10}}
  })");
  ASSERT_FALSE(s2.ok());
  EXPECT_TRUE(has_error(s2, "after the run ends"));

  const auto s3 = load(R"({
    "name": "c3",
    "base": {"urban": {"street_width_m": 20, "nlos_range_m": 400}}
  })");
  ASSERT_FALSE(s3.ok());
  EXPECT_TRUE(has_error(s3, "nlos_rx_range_m"));

  const auto s4 = load(R"({
    "name": "c4",
    "base": {"duration_s": 30, "fault": {"crash_rate": 1, "window_from_s": 60}}
  })");
  ASSERT_FALSE(s4.ok());
  EXPECT_TRUE(has_error(s4, "fault window opens"));
}

TEST(SpecErrors, TransportKeyAndValueViolations) {
  const auto s = load(R"({
    "name": "tp",
    "base": {"transport": {"typo_key": 1, "enabled": "yes"}}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "base.transport.typo_key"));
  EXPECT_TRUE(has_error(s,
                        "unknown key (expected: enabled, rto_initial_ms, rto_min_ms, "
                        "rto_max_ms, cwnd_init, cwnd_max, max_retx, buffer_packets)"));
  EXPECT_TRUE(has_error(s, "expected bool, got string"));

  const auto s2 = load(R"({
    "name": "tp2",
    "base": {"transport": {"rto_initial_ms": 0, "rto_min_ms": -5, "cwnd_init": 0,
                           "max_retx": 0, "buffer_packets": 2.5}}
  })");
  ASSERT_FALSE(s2.ok());
  EXPECT_TRUE(has_error(s2, "base.transport.rto_initial_ms"));
  EXPECT_TRUE(has_error(s2, "base.transport.rto_min_ms"));
  EXPECT_TRUE(has_error(s2, "must be > 0, got -5"));
  EXPECT_TRUE(has_error(s2, "base.transport.cwnd_init"));
  EXPECT_TRUE(has_error(s2, "base.transport.max_retx"));
  EXPECT_TRUE(has_error(s2, "must be >= 1, got 0"));
  EXPECT_TRUE(has_error(s2, "base.transport.buffer_packets"));
  EXPECT_TRUE(has_error(s2, "must be an integer"));

  // Errors are line-anchored at the offending value, like every other key.
  const auto s3 =
      load("{\n\"name\": \"x\",\n\"base\": {\n  \"transport\": {\n    \"cwnd_init\": 0\n}\n}\n}");
  ASSERT_FALSE(s3.ok());
  ASSERT_EQ(s3.errors.size(), 1u);
  EXPECT_EQ(spec::to_string(s3.errors[0], "f.json"),
            "f.json:5: base.transport.cwnd_init: must be >= 1, got 0");
}

TEST(SpecErrors, TransportCrossFieldContracts) {
  // rto_min above rto_initial breaks the RTO ordering contract.
  const auto s = load(R"({
    "name": "c", "base": {"transport": {"enabled": true, "rto_min_ms": 2000}}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "transport rto bounds need 0 < rto_min <= rto_initial <= rto_max"));

  const auto s2 = load(R"({
    "name": "c2",
    "base": {"transport": {"enabled": true, "cwnd_init": 8, "cwnd_max": 4}}
  })");
  ASSERT_FALSE(s2.ok());
  EXPECT_TRUE(has_error(s2, "transport cwnd needs 1 <= cwnd_init <= cwnd_max"));

  const auto s3 = load(R"({
    "name": "c3",
    "base": {"transport": {"enabled": true, "cwnd_max": 24, "buffer_packets": 8}}
  })");
  ASSERT_FALSE(s3.ok());
  EXPECT_TRUE(has_error(s3, "transport.buffer_packets must be >= cwnd_max"));

  // With the transport disabled the same values are inert configuration, not
  // a contract violation — the simulator never reads them.
  const auto s4 = load(R"({
    "name": "c4", "base": {"transport": {"rto_min_ms": 2000, "cwnd_init": 8, "cwnd_max": 4}}
  })");
  EXPECT_TRUE(s4.ok()) << s4.error_report();
}

TEST(SpecErrors, SweepShapeErrors) {
  const auto s = load(R"({
    "name": "s",
    "sweep": {"axes": [{"param": "bogus", "values": [1]}]}
  })");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "unknown sweep param \"bogus\""));

  const auto s2 = load(R"({
    "name": "s2",
    "sweep": {"cells": [{"label": "dup"}, {"label": "dup"}]}
  })");
  ASSERT_FALSE(s2.ok());
  EXPECT_TRUE(has_error(s2, "duplicate cell label \"dup\""));

  const auto s3 = load(R"({
    "name": "s3", "sweep": {"axes": [{"param": "pause"}]}
  })");
  ASSERT_FALSE(s3.ok());
  EXPECT_TRUE(has_error(s3, "values"));
}

TEST(SpecErrors, ParseErrorCarriesLine) {
  const auto s = load("{\n  \"name\": \"x\",\n  oops\n}");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(has_error(s, "JSON parse error"));
  EXPECT_TRUE(has_error(s, "line 3"));
}

TEST(SpecErrors, SemanticErrorsPointAtTheValueLine) {
  const auto s = load("{\n\"name\": \"x\",\n\"base\": {\n  \"nodes\": 1\n}\n}");
  ASSERT_FALSE(s.ok());
  ASSERT_EQ(s.errors.size(), 1u);
  EXPECT_EQ(s.errors[0].line, 4);  // the line "nodes": 1 sits on
  EXPECT_EQ(s.errors[0].key, "base.nodes");
  EXPECT_EQ(spec::to_string(s.errors[0], "f.json"), "f.json:4: base.nodes: must be >= 2, got 1");
}

TEST(SpecErrors, MissingFileIsAnError) {
  const auto s = spec::load_file("/nonexistent/path/spec.json");
  ASSERT_FALSE(s.ok());
}

// -- DSL == ScenarioBuilder twins --------------------------------------------
// The shipped scenario files must expand to exactly the configs their C++
// bench twins build. Config fingerprints equal => per-seed runs are
// byte-identical (a run is a pure function of (config, seed)).

std::string scenario_path(const char* file) {
  return std::string(MANET_SCENARIOS_DIR) + "/" + file;
}

TEST(SpecTwins, PauseSweepMatchesBenchPauseCell) {
  const auto s = spec::load_file(scenario_path("fig_pause_throughput.json"));
  ASSERT_TRUE(s.ok()) << s.error_report();
  const Protocol trio[] = {Protocol::kAodv, Protocol::kDsr, Protocol::kCbrp};
  const double pauses[] = {0, 30, 60, 120};
  ASSERT_EQ(s.cells.size(), 12u);
  std::size_t i = 0;
  for (const Protocol p : trio) {
    for (const double pause_s : pauses) {
      // bench::pause_cell from bench_common.hpp, inlined.
      const ScenarioConfig twin = ScenarioBuilder()
                                      .protocol(p)
                                      .seed(1)
                                      .nodes(40)
                                      .area(1500.0, 300.0)
                                      .speed(0.1, 20.0)
                                      .pause(seconds_f(pause_s))
                                      .build();
      EXPECT_EQ(fingerprint(s.cells[i].config), fingerprint(twin)) << s.cells[i].label;
      ++i;
    }
  }
}

TEST(SpecTwins, FaultSweepMatchesBenchFaultCell) {
  const auto s = spec::load_file(scenario_path("fig_fault_pdr.json"));
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 21u);
  std::size_t i = 0;
  for (const Protocol p : kAllProtocols) {
    for (const double crash : {0.0, 1.0, 2.0}) {
      // bench::fault_cell from bench_common.hpp, inlined.
      FaultConfig fault;
      fault.crash_rate = crash;
      fault.downtime_mean = seconds(20);
      fault.window_from = seconds(20);
      const ScenarioConfig twin =
          ScenarioBuilder().protocol(p).seed(1).nodes(30).speed(0.1, 5.0).fault(fault).build();
      EXPECT_EQ(fingerprint(s.cells[i].config), fingerprint(twin)) << s.cells[i].label;
      ++i;
    }
  }
}

TEST(SpecTwins, LoadCollapseMatchesBenchLoadCell) {
  const auto s = spec::load_file(scenario_path("fig_load_collapse.json"));
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 42u);  // 7 protocols x 6 source counts
  std::size_t i = 0;
  for (const Protocol p : kAllProtocols) {
    for (const std::uint32_t sources : {4u, 8u, 16u, 24u, 32u, 48u}) {
      // bench::load_cell from bench_common.hpp, inlined.
      TransportConfig transport;
      transport.enabled = true;
      const ScenarioConfig twin = ScenarioBuilder()
                                      .protocol(p)
                                      .seed(1)
                                      .nodes(40)
                                      .area(1500.0, 300.0)
                                      .speed(0.1, 10.0)
                                      .connections(sources)
                                      .transport(transport)
                                      .build();
      EXPECT_EQ(fingerprint(s.cells[i].config), fingerprint(twin)) << s.cells[i].label;
      ++i;
    }
  }
}

TEST(SpecTwins, UrbanFamilyMatchesUrbanScenario) {
  const auto s = spec::load_file(scenario_path("urban_city.json"));
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 4u);
  std::size_t i = 0;
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsr}) {
    for (const std::uint32_t n : {40u, 200u}) {
      const ScenarioConfig twin = urban_scenario(n).protocol(p).seed(1).build();
      EXPECT_EQ(fingerprint(s.cells[i].config), fingerprint(twin)) << s.cells[i].label;
      ++i;
    }
  }
}

// One run per protocol: a DSL-expanded cell and its hand-built builder twin
// must produce the same results to the last event counter (golden pin for
// the whole spec -> config -> run pipeline; SLOW tier).
TEST(SpecTwins, RunPerProtocolIsByteIdentical) {
  const auto s = load(R"({
    "name": "golden",
    "base": {
      "seed": 1, "nodes": 14, "area_m": [650, 650], "duration_s": 25,
      "mobility": {"v_max_mps": 6}, "traffic": {"connections": 4}
    },
    "sweep": {"protocols": ["AODV", "DSR", "CBRP", "DSDV", "OLSR", "LAR", "TORA"]}
  })");
  ASSERT_TRUE(s.ok()) << s.error_report();
  ASSERT_EQ(s.cells.size(), 7u);
  for (const SweepCell& cell : s.cells) {
    ScenarioConfig twin;  // test_order_independence's config_for, via builder
    {
      const routing::ProtocolEntry* e = protocol_registry().by_name(cell.label);
      ASSERT_NE(e, nullptr) << cell.label;
      twin = ScenarioBuilder()
                 .protocol(static_cast<Protocol>(e->id))
                 .seed(1)
                 .nodes(14)
                 .area(650.0, 650.0)
                 .speed(0.1, 6.0)
                 .connections(4)
                 .duration(seconds(25))
                 .build();
    }
    ASSERT_EQ(fingerprint(cell.config), fingerprint(twin)) << cell.label;
    const ScenarioResult a = Scenario::run_once(cell.config);
    const ScenarioResult b = Scenario::run_once(twin);
    EXPECT_EQ(a.events, b.events) << cell.label;
    EXPECT_EQ(a.data_originated, b.data_originated) << cell.label;
    EXPECT_EQ(a.data_delivered, b.data_delivered) << cell.label;
    EXPECT_EQ(a.routing_tx, b.routing_tx) << cell.label;
    EXPECT_EQ(a.mac_ctrl_tx, b.mac_ctrl_tx) << cell.label;
    EXPECT_EQ(a.pdr, b.pdr) << cell.label;
    EXPECT_EQ(a.delay_ms, b.delay_ms) << cell.label;
    EXPECT_EQ(a.nrl, b.nrl) << cell.label;
    EXPECT_EQ(a.avg_hops, b.avg_hops) << cell.label;
  }
}

}  // namespace
}  // namespace manet
