#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace manet {
namespace {

ScenarioConfig small_config(Protocol p, std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.num_nodes = 15;
  cfg.area = {700.0, 700.0};
  cfg.v_max = 5.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(30);
  return cfg;
}

TEST(Scenario, ProtocolNames) {
  EXPECT_STREQ(to_string(Protocol::kAodv), "AODV");
  EXPECT_STREQ(to_string(Protocol::kDsr), "DSR");
  EXPECT_STREQ(to_string(Protocol::kCbrp), "CBRP");
  EXPECT_STREQ(to_string(Protocol::kDsdv), "DSDV");
  EXPECT_STREQ(to_string(Protocol::kOlsr), "OLSR");
}

TEST(Scenario, ParameterTableListsTableOne) {
  const ScenarioConfig cfg;
  const std::string t = cfg.parameter_table();
  EXPECT_NE(t.find("CBR/UDP"), std::string::npos);
  EXPECT_NE(t.find("1000 x 1000"), std::string::npos);
  EXPECT_NE(t.find("250"), std::string::npos);
  EXPECT_NE(t.find("512"), std::string::npos);
  EXPECT_NE(t.find("random waypoint"), std::string::npos);
}

TEST(Scenario, BuildCreatesRequestedNodes) {
  Scenario s(small_config(Protocol::kAodv));
  s.build();
  EXPECT_EQ(s.size(), 15u);
  EXPECT_STREQ(s.routing(0).name(), "AODV");
}

TEST(Scenario, MakeProtocolMatchesEnum) {
  for (const Protocol p : kAllProtocols) {
    Scenario s(small_config(p));
    s.build();
    EXPECT_STREQ(s.routing(0).name(), to_string(p));
  }
}

TEST(Scenario, RunProducesTraffic) {
  const auto r = Scenario::run_once(small_config(Protocol::kAodv));
  EXPECT_GT(r.data_originated, 0u);
  EXPECT_GT(r.data_delivered, 0u);
  EXPECT_GT(r.events, 1000u);
  EXPECT_GE(r.pdr, 0.0);
  EXPECT_LE(r.pdr, 1.0);
}

TEST(Scenario, SameSeedIsBitReproducible) {
  const auto a = Scenario::run_once(small_config(Protocol::kDsr));
  const auto b = Scenario::run_once(small_config(Protocol::kDsr));
  EXPECT_EQ(a.data_originated, b.data_originated);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.routing_tx, b.routing_tx);
  EXPECT_EQ(a.mac_ctrl_tx, b.mac_ctrl_tx);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.delay_ms, b.delay_ms);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const auto a = Scenario::run_once(small_config(Protocol::kAodv, 1));
  const auto b = Scenario::run_once(small_config(Protocol::kAodv, 2));
  EXPECT_NE(a.events, b.events);
}

TEST(Scenario, SameSeedSameTrafficAcrossProtocols) {
  // Variance reduction: the workload (packets originated) is identical for
  // every protocol under the same seed — only treatment differs.
  const auto a = Scenario::run_once(small_config(Protocol::kAodv));
  const auto d = Scenario::run_once(small_config(Protocol::kDsdv));
  EXPECT_EQ(a.data_originated, d.data_originated);
}

TEST(Scenario, StaticNodesSupported) {
  auto cfg = small_config(Protocol::kOlsr);
  cfg.static_nodes = true;
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.data_originated, 0u);
}

TEST(Experiment, AggregatesSeeds) {
  ExperimentRunner runner(/*seeds=*/3, /*threads=*/2);
  const auto agg = runner.run(small_config(Protocol::kAodv));
  EXPECT_EQ(agg.replications, 3);
  EXPECT_GT(agg.pdr.mean, 0.0);
  EXPECT_LE(agg.pdr.mean, 1.0);
  EXPECT_GE(agg.pdr.se, 0.0);
  EXPECT_GT(agg.total_events, 0u);
}

TEST(Experiment, SingleSeedHasZeroStderr) {
  ExperimentRunner runner(1, 1);
  const auto agg = runner.run(small_config(Protocol::kDsdv));
  EXPECT_DOUBLE_EQ(agg.pdr.se, 0.0);
}

TEST(Experiment, ParallelMatchesSerial) {
  ExperimentRunner serial(3, 1);
  ExperimentRunner parallel(3, 3);
  const auto cfg = small_config(Protocol::kCbrp);
  const auto a = serial.run(cfg);
  const auto b = parallel.run(cfg);
  EXPECT_DOUBLE_EQ(a.pdr.mean, b.pdr.mean);
  EXPECT_DOUBLE_EQ(a.delay_ms.mean, b.delay_ms.mean);
  EXPECT_DOUBLE_EQ(a.nrl.mean, b.nrl.mean);
}

TEST(Scenario, ConnectivityOracleBoundsWellConnectedStaticNet) {
  // A dense static network is fully connected: the oracle reads 1.0 and the
  // (reliable unicast) protocols approach it.
  auto cfg = small_config(Protocol::kAodv);
  cfg.static_nodes = true;
  cfg.num_nodes = 25;
  cfg.area = {400.0, 400.0};  // everyone within ~2 hops
  const auto r = Scenario::run_once(cfg);
  EXPECT_DOUBLE_EQ(r.connectivity, 1.0);
  EXPECT_GT(r.pdr, 0.9);
}

TEST(Scenario, ConnectivityOracleSeesPartitions) {
  // Sparse static network: some flows are physically unreachable; the
  // oracle must report < 1 and PDR cannot exceed it (plus sampling slack).
  auto cfg = small_config(Protocol::kAodv, /*seed=*/3);
  cfg.static_nodes = true;
  cfg.num_nodes = 10;
  cfg.area = {2000.0, 2000.0};  // almost certainly partitioned
  const auto r = Scenario::run_once(cfg);
  EXPECT_LT(r.connectivity, 1.0);
  EXPECT_LE(r.pdr, r.connectivity + 0.05);
}

TEST(Scenario, ConnectivityMeasurementCanBeDisabled) {
  auto cfg = small_config(Protocol::kDsdv);
  cfg.measure_connectivity = false;
  const auto r = Scenario::run_once(cfg);
  EXPECT_DOUBLE_EQ(r.connectivity, 1.0);
}

TEST(Experiment, FormatMetric) {
  const std::string s = format_metric({0.5, 0.01}, 2);
  EXPECT_NE(s.find("0.50"), std::string::npos);
  EXPECT_NE(s.find("±"), std::string::npos);
}

TEST(Experiment, EnvDefaultsDontCrash) {
  const auto runner = ExperimentRunner::from_env(2);
  EXPECT_GE(runner.seeds(), 1);
  ScenarioConfig cfg;
  ExperimentRunner::apply_env_duration(cfg);  // no env set: unchanged
  EXPECT_EQ(cfg.duration, seconds(150));
}

}  // namespace
}  // namespace manet
