#include "routing/tora/tora.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory tora_factory(tora::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<tora::Tora>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

tora::Tora& as_tora(RoutingProtocol& rp) { return dynamic_cast<tora::Tora&>(rp); }

TEST(ToraHeight, LexicographicOrder) {
  using tora::Height;
  const Height dest{0, 0, false, 0, 9};
  const Height one{0, 0, false, 1, 3};
  const Height two{0, 0, false, 2, 1};
  const Height reversed{100, 5, false, 0, 5};
  EXPECT_LT(dest, one);
  EXPECT_LT(one, two);
  EXPECT_LT(two, reversed);  // a new reference level sits above everything
  EXPECT_EQ(dest, dest);
}

TEST(Tora, Name) {
  TestNet net(line_positions(2), tora_factory());
  EXPECT_STREQ(net.routing(0).name(), "TORA");
}

TEST(Tora, BeaconsBuildNeighborSets) {
  TestNet net(line_positions(3), tora_factory());
  net.run_for(seconds(4));
  EXPECT_EQ(as_tora(net.routing(1)).live_neighbors(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(as_tora(net.routing(0)).live_neighbors(), (std::vector<NodeId>{1}));
}

TEST(Tora, DeliversToDirectNeighbor) {
  TestNet net(line_positions(2), tora_factory());
  net.run_for(seconds(3));  // beacons establish adjacency
  net.send_data(0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
}

TEST(Tora, QryUpdBuildsDagAndDelivers) {
  TestNet net(line_positions(4), tora_factory());
  net.run_for(seconds(3));
  net.send_data(0, 3);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  // Heights decrease along the line towards the destination.
  const auto h1 = as_tora(net.routing(1)).height_for(3);
  const auto h2 = as_tora(net.routing(2)).height_for(3);
  ASSERT_TRUE(h1.has_value());
  ASSERT_TRUE(h2.has_value());
  EXPECT_LT(*h2, *h1);
  EXPECT_EQ(as_tora(net.routing(1)).downstream_for(3), 2u);
}

TEST(Tora, EstablishedDagServesLaterPackets) {
  TestNet net(line_positions(4), tora_factory());
  net.run_for(seconds(3));
  net.send_data(0, 3);
  net.run_for(seconds(5));
  const auto tx = net.stats().routing_tx();
  net.send_data(0, 3, 0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
  // Only periodic beacons in between; no new QRY/UPD wave.
  EXPECT_LE(net.stats().routing_tx() - tx, 10u);
}

TEST(Tora, HeightsAreLoopFreeOnGrid) {
  TestNet net(test::grid_positions(3, 3), tora_factory());
  net.run_for(seconds(3));
  net.send_data(0, 8);
  net.run_for(seconds(6));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  // Loop-freedom invariant: following best_downstream strictly decreases
  // the height, so walking it must terminate at the destination.
  NodeId cur = 0;
  int steps = 0;
  while (cur != 8 && steps < 10) {
    const auto next = as_tora(net.routing(cur)).downstream_for(8);
    ASSERT_TRUE(next.has_value()) << "stuck at " << cur;
    if (*next != 8) {
      const auto hc = as_tora(net.routing(cur)).height_for(8);
      const auto hn = as_tora(net.routing(*next)).height_for(8);
      ASSERT_TRUE(hc && hn);
      EXPECT_LT(*hn, *hc);
    }
    cur = *next;
    ++steps;
  }
  EXPECT_EQ(cur, 8u);
}

TEST(Tora, LinkReversalReroutesAroundBreak) {
  // Diamond: 0 - {1 (short), 3 (detour)} - 2. Traffic flows 0->1->2; when 1
  // vanishes, reversal plus the existing DAG re-route via 3.
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {200.0, 150.0}};
  TestNet net(pos, tora_factory());
  net.run_for(seconds(3));
  net.send_data(0, 2);
  net.run_for(seconds(5));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(1).set_position({2500.0, 2500.0});
  net.run_for(seconds(4));  // beacons expire the neighbour
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(15));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Tora, IsolatedDestinationAgesOut) {
  TestNet net(line_positions(2), tora_factory());
  net.run_for(seconds(3));
  net.send_data(0, 60);  // no such node
  net.run_for(seconds(60));
  EXPECT_EQ(net.stats().data_delivered(), 0u);
  EXPECT_GT(net.stats().drops(DropReason::kBufferTimeout) +
                net.stats().drops(DropReason::kNoRoute),
            0u);
}

TEST(Tora, ProactiveBeaconsButReactiveRoutes) {
  TestNet net(line_positions(3), tora_factory());
  net.run_for(seconds(10));
  const auto beacons_only = net.stats().routing_tx();
  EXPECT_GT(beacons_only, 0u);  // beacons flow without traffic
  // But no heights exist yet for any destination.
  EXPECT_FALSE(as_tora(net.routing(0)).height_for(2).has_value());
}

}  // namespace
}  // namespace manet
