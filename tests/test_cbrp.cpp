#include "routing/cbrp/cbrp.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory cbrp_factory(cbrp::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<cbrp::Cbrp>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

cbrp::Cbrp& as_cbrp(RoutingProtocol& rp) { return dynamic_cast<cbrp::Cbrp&>(rp); }

TEST(Cbrp, Name) {
  TestNet net(line_positions(2), cbrp_factory());
  EXPECT_STREQ(net.routing(0).name(), "CBRP");
}

TEST(Cbrp, ClustersFormOnLine) {
  // Line 0-1-2-3-4 (200 m gaps): lowest-id election yields heads {0, 2, 4},
  // with 1 and 3 as members bridging them (gateways). Elections cascade down
  // the line one hello round at a time, and gateway flags update one round
  // after the neighbouring head appears — allow ~8 rounds.
  TestNet net(line_positions(5), cbrp_factory());
  net.run_for(seconds(18));
  EXPECT_EQ(as_cbrp(net.routing(0)).role(), cbrp::Role::kHead);
  EXPECT_EQ(as_cbrp(net.routing(2)).role(), cbrp::Role::kHead);
  EXPECT_EQ(as_cbrp(net.routing(4)).role(), cbrp::Role::kHead);
  EXPECT_EQ(as_cbrp(net.routing(1)).role(), cbrp::Role::kMember);
  EXPECT_EQ(as_cbrp(net.routing(3)).role(), cbrp::Role::kMember);
  EXPECT_EQ(as_cbrp(net.routing(1)).head(), 0u);
  EXPECT_TRUE(as_cbrp(net.routing(1)).gateway());
  EXPECT_TRUE(as_cbrp(net.routing(3)).gateway());
}

TEST(Cbrp, SingleClusterWhenAllInRange) {
  std::vector<Vec2> pos = {{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}, {100.0, 100.0}};
  TestNet net(pos, cbrp_factory());
  net.run_for(seconds(12));
  EXPECT_EQ(as_cbrp(net.routing(0)).role(), cbrp::Role::kHead);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(as_cbrp(net.routing(i)).role(), cbrp::Role::kMember);
    EXPECT_EQ(as_cbrp(net.routing(i)).head(), 0u);
    EXPECT_FALSE(as_cbrp(net.routing(i)).gateway());
  }
}

TEST(Cbrp, HeadContentionResolvesWhenHeadsMeet) {
  // Two isolated nodes both become heads; bring them into range and the
  // higher id must step down.
  TestNet net({{0.0, 0.0}, {1500.0, 0.0}}, cbrp_factory());
  net.run_for(seconds(12));
  ASSERT_EQ(as_cbrp(net.routing(0)).role(), cbrp::Role::kHead);
  ASSERT_EQ(as_cbrp(net.routing(1)).role(), cbrp::Role::kHead);
  net.mobility(1).set_position({150.0, 0.0});
  net.run_for(seconds(20));  // contention grace + hellos
  EXPECT_EQ(as_cbrp(net.routing(0)).role(), cbrp::Role::kHead);
  EXPECT_EQ(as_cbrp(net.routing(1)).role(), cbrp::Role::kMember);
  EXPECT_EQ(as_cbrp(net.routing(1)).head(), 0u);
}

TEST(Cbrp, NeighborTableTracksBidirectionality) {
  TestNet net(line_positions(3), cbrp_factory());
  net.run_for(seconds(8));
  EXPECT_EQ(as_cbrp(net.routing(1)).neighbor_ids(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(as_cbrp(net.routing(0)).neighbor_ids(), (std::vector<NodeId>{1}));
}

TEST(Cbrp, DeliversToDirectNeighborWithoutDiscovery) {
  TestNet net(line_positions(3), cbrp_factory());
  net.run_for(seconds(8));
  const auto tx = net.stats().routing_tx();
  net.send_data(1, 2);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  // Only periodic hellos in the interim — no RREQ burst.
  EXPECT_LE(net.stats().routing_tx() - tx, 6u);
}

TEST(Cbrp, DeliversAcrossClusters) {
  TestNet net(line_positions(5), cbrp_factory());
  net.run_for(seconds(12));
  net.send_data(0, 4);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
}

TEST(Cbrp, RouteShorteningSkipsListedHops) {
  // Discovery through heads can yield a path longer than the direct line;
  // shortening must cut listed-but-unnecessary hops when forwarding. Build a
  // topology where everything is mutually reachable: path collapses.
  std::vector<Vec2> pos = {{0.0, 0.0}, {150.0, 0.0}, {80.0, 120.0}};
  TestNet net(pos, cbrp_factory());
  net.run_for(seconds(12));
  net.send_data(0, 2);
  net.run_for(seconds(3));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.stats().avg_hops(), 1.0);  // went direct
}

TEST(Cbrp, SourceRediscoversAfterBreak) {
  cbrp::Config cfg;
  cfg.local_repair = false;
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {200.0, 150.0}};
  TestNet net(pos, cbrp_factory(cfg));
  net.run_for(seconds(12));
  net.send_data(0, 2);
  net.run_for(seconds(3));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(1).set_position({3000.0, 3000.0});
  net.run_for(seconds(7));  // neighbour tables expire
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(20));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Cbrp, LocalRepairPatchesAroundDeadHop) {
  // 0-1-2 with helper 3 adjacent to both 1 and 2's new position.
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {250.0, 150.0}};
  TestNet net(pos, cbrp_factory());
  net.run_for(seconds(12));
  net.send_data(0, 2);
  net.run_for(seconds(3));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  // Move 2 out of 1's reach but keep it within 3's.
  net.mobility(2).set_position({420.0, 280.0});
  net.run_for(milliseconds(600));  // refresh, but hello tables still warm
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(8));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Cbrp, UnreachableTargetGivesUp) {
  TestNet net(line_positions(2), cbrp_factory());
  net.send_data(0, 30);
  net.run_for(seconds(120));
  EXPECT_EQ(net.stats().data_delivered(), 0u);
  EXPECT_GT(net.stats().drops(DropReason::kNoRoute) +
                net.stats().drops(DropReason::kBufferTimeout),
            0u);
}

}  // namespace
}  // namespace manet
