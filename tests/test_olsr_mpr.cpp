#include "routing/olsr/mpr.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/rng.hpp"

namespace manet::olsr {
namespace {

TEST(Mpr, EmptyNeighborhood) {
  EXPECT_TRUE(select_mprs(0, {}, {}).empty());
}

TEST(Mpr, NoTwoHopNeighborsNeedsNoMprs) {
  std::unordered_map<NodeId, std::vector<NodeId>> n2;
  n2[1] = {0};  // only knows us
  EXPECT_TRUE(select_mprs(0, {1}, n2).empty());
}

TEST(Mpr, SoleProviderIsMandatory) {
  std::unordered_map<NodeId, std::vector<NodeId>> n2;
  n2[1] = {0, 5};
  n2[2] = {0};
  const auto mprs = select_mprs(0, {1, 2}, n2);
  EXPECT_EQ(mprs, (std::vector<NodeId>{1}));
}

TEST(Mpr, GreedyPicksBestCover) {
  std::unordered_map<NodeId, std::vector<NodeId>> n2;
  n2[1] = {10, 11};
  n2[2] = {10, 11, 12};
  n2[3] = {12};
  const auto mprs = select_mprs(0, {1, 2, 3}, n2);
  EXPECT_EQ(mprs, (std::vector<NodeId>{2}));  // 2 covers everything
}

TEST(Mpr, OneHopNeighborsNotCountedAsTwoHop) {
  std::unordered_map<NodeId, std::vector<NodeId>> n2;
  n2[1] = {2};  // 2 is already a 1-hop neighbour
  n2[2] = {1};
  EXPECT_TRUE(select_mprs(0, {1, 2}, n2).empty());
}

TEST(Mpr, TieBreaksTowardsSmallerId) {
  std::unordered_map<NodeId, std::vector<NodeId>> n2;
  n2[5] = {20};
  n2[3] = {20};
  const auto mprs = select_mprs(0, {3, 5}, n2);
  EXPECT_EQ(mprs, (std::vector<NodeId>{3}));
}

// Properties over random neighbourhoods.
class MprProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MprProperty, CoversAllTwoHopNeighbors) {
  RngStream rng(GetParam());
  const NodeId self = 0;
  std::vector<NodeId> n1;
  std::unordered_map<NodeId, std::vector<NodeId>> n2_of;
  const int n1_count = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < n1_count; ++i) n1.push_back(static_cast<NodeId>(i + 1));
  for (const NodeId n : n1) {
    const int deg = static_cast<int>(rng.uniform_int(0, 8));
    for (int j = 0; j < deg; ++j) {
      n2_of[n].push_back(static_cast<NodeId>(rng.uniform_int(1, 40)));
    }
  }
  const auto mprs = select_mprs(self, n1, n2_of);

  // MPR set is a subset of the 1-hop set.
  const std::unordered_set<NodeId> n1_set(n1.begin(), n1.end());
  for (const NodeId m : mprs) EXPECT_TRUE(n1_set.contains(m));

  // Every strict 2-hop neighbour is covered by some MPR.
  std::unordered_set<NodeId> mpr_set(mprs.begin(), mprs.end());
  std::unordered_set<NodeId> covered;
  for (const NodeId m : mprs) {
    if (const auto it = n2_of.find(m); it != n2_of.end()) {
      covered.insert(it->second.begin(), it->second.end());
    }
  }
  for (const NodeId n : n1) {
    for (const NodeId v : n2_of[n]) {
      if (v == self || n1_set.contains(v)) continue;
      EXPECT_TRUE(covered.contains(v)) << "2-hop node " << v << " uncovered, seed "
                                       << GetParam();
    }
  }
}

TEST_P(MprProperty, Deterministic) {
  RngStream rng(GetParam() + 100);
  std::vector<NodeId> n1;
  std::unordered_map<NodeId, std::vector<NodeId>> n2_of;
  for (int i = 1; i <= 8; ++i) {
    n1.push_back(static_cast<NodeId>(i));
    for (int j = 0; j < 4; ++j) {
      n2_of[static_cast<NodeId>(i)].push_back(static_cast<NodeId>(rng.uniform_int(1, 30)));
    }
  }
  EXPECT_EQ(select_mprs(0, n1, n2_of), select_mprs(0, n1, n2_of));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MprProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace manet::olsr
