// manet_lint rule-engine tests.
//
// Each rule is exercised three ways: a positive fixture where it must fire,
// a suppressed fixture where a tagged rationale silences it, and the clean
// fixture where nothing fires. Fixtures live in tests/lint_fixtures/ (the
// directory is excluded from the real-tree lint walk). In-memory lint_text()
// cases cover the parsing subtleties: previous-line suppression reach,
// paired-header container declarations, file-level disables, and the
// comment/string stripper.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using manet::lint::Finding;
using manet::lint::lint_file;
using manet::lint::lint_text;

const std::string kFixtures = MANET_LINT_FIXTURES;

std::vector<std::string> rule_ids(const std::vector<Finding>& fs) {
  std::vector<std::string> ids;
  for (const Finding& f : fs) ids.push_back(f.rule);
  return ids;
}

int count_rule(const std::vector<Finding>& fs, const std::string& id) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == id; }));
}

/// Lint a fixture file's text as if it lived at `fake_path` — the shard-
/// safety rules are path-scoped (src/, src/routing/, ...) and the fixture
/// directory is deliberately outside all of those.
std::vector<Finding> lint_fixture_as(const std::string& name, const std::string& fake_path) {
  std::ifstream in(kFixtures + "/" + name);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_text(fake_path, ss.str());
}

// ---------------------------------------------------------------------------
// Fixture files
// ---------------------------------------------------------------------------

TEST(LintFixtures, RandPlusHashOrderIterationFails) {
  // The acceptance fixture: rand() + unannotated unordered iteration in
  // event-scheduling code must both be reported.
  const auto fs = lint_file(kFixtures + "/rand_and_hash_order.cpp");
  EXPECT_GE(count_rule(fs, "MLNT001"), 1) << "rand() not flagged";
  EXPECT_GE(count_rule(fs, "MLNT006"), 1) << "hash-order iteration not flagged";
}

TEST(LintFixtures, TaggedRationalesSuppress) {
  EXPECT_TRUE(lint_file(kFixtures + "/suppressed_ok.cpp").empty());
  EXPECT_TRUE(lint_file(kFixtures + "/wall_clock_suppressed.cpp").empty());
}

TEST(LintFixtures, CleanHeaderIsClean) {
  EXPECT_TRUE(lint_file(kFixtures + "/clean.hpp").empty());
}

TEST(LintFixtures, WallClockReadsFlagged) {
  const auto fs = lint_file(kFixtures + "/wall_clock.cpp");
  EXPECT_GE(count_rule(fs, "MLNT003"), 1) << "time() not flagged";
  EXPECT_GE(count_rule(fs, "MLNT004"), 1) << "std::chrono not flagged";
}

TEST(LintFixtures, RandomDeviceAndStrayEnginesFlagged) {
  const auto fs = lint_file(kFixtures + "/random_device.cpp");
  EXPECT_GE(count_rule(fs, "MLNT002"), 1) << "std::random_device not flagged";
  EXPECT_GE(count_rule(fs, "MLNT005"), 2) << "<random> engine/distribution not flagged";
}

TEST(LintFixtures, MissingPragmaOnceFlagged) {
  EXPECT_EQ(rule_ids(lint_file(kFixtures + "/missing_pragma.hpp")),
            std::vector<std::string>{"MLNT007"});
}

TEST(LintFixtures, FloatEqualityFlagged) {
  EXPECT_EQ(count_rule(lint_file(kFixtures + "/float_eq.cpp"), "MLNT008"), 2);
}

TEST(LintFixtures, ScenarioConfigAggregateFlagged) {
  // Exactly the three brace constructions fire; default construction,
  // copies, reference parameters, and the tagged suppression stay clean.
  const auto fs = lint_file(kFixtures + "/scenario_aggregate.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT010"), 3);
  EXPECT_EQ(static_cast<int>(fs.size()), 3) << "unexpected extra findings";
}

TEST(LintText, ScenarioConfigAggregateScopedToOutsideScenarioDir) {
  const std::string code = "ScenarioConfig cfg{};\n";
  // The scenario layer itself assembles configs by hand — exempt from
  // MLNT010 (the same line is still a mutable global, i.e. MLNT011 bait,
  // which is why the assertion is rule-specific).
  EXPECT_EQ(count_rule(lint_text("src/scenario/scenario.cpp", code, ""), "MLNT010"), 0);
  EXPECT_EQ(count_rule(lint_text("bench/tab_summary.cpp", code, ""), "MLNT010"), 1);
}

TEST(LintFixtures, MalformedSuppressionsAreFindingsAndDoNotSuppress) {
  const auto fs = lint_file(kFixtures + "/bad_suppression.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT009"), 3);  // bad disable, unknown tag, no rationale
  EXPECT_EQ(count_rule(fs, "MLNT001"), 2);  // the broken suppressions silenced nothing
}

// ---------------------------------------------------------------------------
// Engine details (in-memory)
// ---------------------------------------------------------------------------

TEST(LintEngine, PairedHeaderDeclaresTheContainer) {
  // The member is declared in the header; the .cpp only iterates it. The
  // scan of the .cpp must pick the declaration up from paired_text.
  const std::string header = "#pragma once\n#include <unordered_map>\n"
                             "struct R { std::unordered_map<int, int> table_; void f(); };\n";
  const std::string cpp = "void R::f() {\n"
                          "  for (const auto& [k, v] : table_) { sim().schedule(v, k); }\n"
                          "}\n";
  const auto fs = lint_text("fake/routing/r.cpp", cpp, header);
  EXPECT_EQ(count_rule(fs, "MLNT006"), 1);
}

TEST(LintEngine, OrderIndependentAnnotationOnPreviousLine) {
  const std::string header = "#pragma once\n#include <unordered_map>\n"
                             "struct R { std::unordered_map<int, int> table_; void f(); };\n";
  const std::string cpp = "void R::f() {\n"
                          "  // manet-lint: order-independent - max is commutative over ints\n"
                          "  for (const auto& [k, v] : table_) { sim().schedule(v, k); }\n"
                          "}\n";
  EXPECT_TRUE(lint_text("fake/routing/r.cpp", cpp, header).empty());
}

TEST(LintEngine, UnorderedIterationIgnoredOutsideEventCode) {
  // No /routing/ path, no scheduling markers: hash order cannot reach the
  // simulation, so MLNT006 stays quiet.
  const std::string cpp = "#include <unordered_map>\n"
                          "std::unordered_map<int, int> hist;\n"
                          "int total() { int t = 0; for (const auto& [k, v] : hist) t += v; "
                          "return t; }\n";
  EXPECT_TRUE(lint_text("tools/histogram.cpp", cpp).empty());
}

TEST(LintEngine, FileLevelDisable) {
  const std::string cpp = "// manet-lint: disable(MLNT001) - fixture exercising file-level "
                          "opt-out\n"
                          "#include <cstdlib>\n"
                          "int f() { return std::rand(); }\n";
  EXPECT_TRUE(lint_text("x.cpp", cpp).empty());
}

TEST(LintEngine, PatternsInsideStringsAndCommentsIgnored) {
  const std::string cpp = "const char* kHelp = \"never call rand() or time() here\";\n"
                          "// rand() in a comment is documentation, not a call\n"
                          "/* std::chrono discussion */\n";
  EXPECT_TRUE(lint_text("x.cpp", cpp).empty());
}

TEST(LintEngine, IdentifiersContainingBannedNamesNotFlagged) {
  const std::string cpp = "double airtime(int bits);\n"
                          "long next_time(long t) { return airtime(8) > 0 ? t : t + 1; }\n"
                          "struct T { long time; };\n"
                          "long get(T& t) { return t.time; }\n";
  EXPECT_TRUE(lint_text("x.cpp", cpp).empty());
}

TEST(LintEngine, RuleTableCoversMlnt001Through015) {
  EXPECT_EQ(manet::lint::rules().size(), 15u);
}

// ---------------------------------------------------------------------------
// Shard-safety rule family (MLNT011-014)
// ---------------------------------------------------------------------------

TEST(ShardSafetyRules, MutableStaticsFlaggedInSrc) {
  const auto fs = lint_fixture_as("shard_globals.cpp", "src/fake/globals.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT011"), 4) << "namespace-scope, brace-init static, "
                                             "static data member, function-local static";
}

TEST(ShardSafetyRules, MutableStaticsSuppressedByRationale) {
  EXPECT_TRUE(lint_fixture_as("shard_globals_suppressed.cpp", "src/fake/globals.cpp").empty());
}

TEST(ShardSafetyRules, MutableStaticsIgnoredOutsideSrc) {
  // Tools/tests may keep process-global state; only simulator code shards.
  EXPECT_EQ(count_rule(lint_fixture_as("shard_globals.cpp", "tools/fake/globals.cpp"),
                       "MLNT011"),
            0);
}

TEST(ShardSafetyRules, CrossNodeAccessFlaggedInNodeLayers) {
  const auto fs = lint_fixture_as("cross_node.cpp", "src/routing/fake/mesh.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT012"), 3) << "nodes_[...] x2 and a .node(...) member call";
}

TEST(ShardSafetyRules, CrossNodeAccessSuppressedByRationale) {
  EXPECT_TRUE(lint_fixture_as("cross_node_suppressed.cpp", "src/routing/fake/mesh.cpp").empty());
}

TEST(ShardSafetyRules, CrossNodeAccessIgnoredInKernel) {
  // src/core owns the delivery machinery; the rule scopes to the layers
  // holding per-node state (+ src/scenario, the composition root).
  EXPECT_EQ(count_rule(lint_fixture_as("cross_node.cpp", "src/core/fake.cpp"), "MLNT012"), 0);
}

TEST(ShardSafetyRules, ForeignScheduleFlagged) {
  const auto fs = lint_fixture_as("foreign_schedule.cpp", "src/routing/fake/proto.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT013"), 3)
      << "two foreign sim() handles and one schedule_on() injection";
}

TEST(ShardSafetyRules, ForeignScheduleSuppressedByRationale) {
  EXPECT_TRUE(
      lint_fixture_as("foreign_schedule_suppressed.cpp", "src/routing/fake/proto.cpp").empty());
}

TEST(ShardSafetyRules, ScheduleOnAllowedInKernelAndPhy) {
  // The kernel and the PHY delivery path ARE the sanctioned cross-shard
  // machinery; the member-call form must not fire there.
  EXPECT_EQ(count_rule(lint_fixture_as("foreign_schedule.cpp", "src/core/fake.cpp"), "MLNT013"),
            0);
  EXPECT_EQ(count_rule(lint_fixture_as("foreign_schedule.cpp", "src/phy/fake.cpp"), "MLNT013"),
            0);
}

TEST(ShardSafetyRules, FullNodeScanFlaggedInHotPathLayers) {
  const auto fs = lint_fixture_as("full_node_scan.cpp", "src/phy/fake.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT015"), 4)
      << "two range-fors (trx_, nodes_) and two index loops (node_count, mob_.size)";
  EXPECT_EQ(count_rule(lint_fixture_as("full_node_scan.cpp", "src/mac/fake.cpp"), "MLNT015"), 4);
  EXPECT_EQ(count_rule(lint_fixture_as("full_node_scan.cpp", "src/net/fake.cpp"), "MLNT015"), 4);
}

TEST(ShardSafetyRules, FullNodeScanSuppressedByRationale) {
  EXPECT_TRUE(
      lint_fixture_as("full_node_scan_suppressed.cpp", "src/phy/fake.cpp").empty());
}

TEST(ShardSafetyRules, FullNodeScanIgnoredOutsideHotPathLayers) {
  // Scenario setup and tools legitimately walk every node; the rule scopes
  // to the per-event layers only.
  EXPECT_EQ(
      count_rule(lint_fixture_as("full_node_scan.cpp", "src/scenario/fake.cpp"), "MLNT015"), 0);
  EXPECT_EQ(count_rule(lint_fixture_as("full_node_scan.cpp", "tools/fake.cpp"), "MLNT015"), 0);
}

TEST(ShardSafetyRules, MissingRestartOverrideFlagged) {
  const auto fs = lint_file(kFixtures + "/missing_restart.cpp");
  ASSERT_EQ(count_rule(fs, "MLNT014"), 1) << "NaiveFlood only; CleanProtocol overrides, "
                                             "NotAProtocol does not derive";
  for (const Finding& f : fs) {
    if (f.rule == "MLNT014") {
      EXPECT_NE(f.message.find("NaiveFlood"), std::string::npos);
    }
  }
}

TEST(ShardSafetyRules, MissingRestartSuppressedByRationale) {
  EXPECT_TRUE(lint_file(kFixtures + "/missing_restart_suppressed.cpp").empty());
}

// ---------------------------------------------------------------------------
// CLI contract + output formats
// ---------------------------------------------------------------------------

TEST(LintCli, NonexistentPathIsAHardError) {
  // A typo'd path in CI must fail the job, not lint nothing and pass.
  const char* argv[] = {"manet_lint", "no/such/dir"};
  EXPECT_EQ(manet::lint::run_cli(2, argv), 2);
}

TEST(LintCli, UnknownOptionAndFormatRejected) {
  const char* bad_opt[] = {"manet_lint", "--bogus", "."};
  EXPECT_EQ(manet::lint::run_cli(3, bad_opt), 2);
  const char* bad_fmt[] = {"manet_lint", "--format=xml", "."};
  EXPECT_EQ(manet::lint::run_cli(3, bad_fmt), 2);
}

TEST(LintFormat, HumanAndGithubRenderings) {
  const Finding f{"src/a.cpp", 12, "MLNT003", "host clock read"};
  EXPECT_EQ(manet::lint::format_finding(f, manet::lint::Format::kHuman),
            "src/a.cpp:12: MLNT003 [wall-clock-call] host clock read");
  EXPECT_EQ(manet::lint::format_finding(f, manet::lint::Format::kGithub),
            "::error file=src/a.cpp,line=12,title=MLNT003 wall-clock-call::host clock read");
}

}  // namespace
