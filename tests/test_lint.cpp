// manet_lint rule-engine tests.
//
// Each rule is exercised three ways: a positive fixture where it must fire,
// a suppressed fixture where a tagged rationale silences it, and the clean
// fixture where nothing fires. Fixtures live in tests/lint_fixtures/ (the
// directory is excluded from the real-tree lint walk). In-memory lint_text()
// cases cover the parsing subtleties: previous-line suppression reach,
// paired-header container declarations, file-level disables, and the
// comment/string stripper.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using manet::lint::Finding;
using manet::lint::lint_file;
using manet::lint::lint_text;

const std::string kFixtures = MANET_LINT_FIXTURES;

std::vector<std::string> rule_ids(const std::vector<Finding>& fs) {
  std::vector<std::string> ids;
  for (const Finding& f : fs) ids.push_back(f.rule);
  return ids;
}

int count_rule(const std::vector<Finding>& fs, const std::string& id) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == id; }));
}

// ---------------------------------------------------------------------------
// Fixture files
// ---------------------------------------------------------------------------

TEST(LintFixtures, RandPlusHashOrderIterationFails) {
  // The acceptance fixture: rand() + unannotated unordered iteration in
  // event-scheduling code must both be reported.
  const auto fs = lint_file(kFixtures + "/rand_and_hash_order.cpp");
  EXPECT_GE(count_rule(fs, "MLNT001"), 1) << "rand() not flagged";
  EXPECT_GE(count_rule(fs, "MLNT006"), 1) << "hash-order iteration not flagged";
}

TEST(LintFixtures, TaggedRationalesSuppress) {
  EXPECT_TRUE(lint_file(kFixtures + "/suppressed_ok.cpp").empty());
  EXPECT_TRUE(lint_file(kFixtures + "/wall_clock_suppressed.cpp").empty());
}

TEST(LintFixtures, CleanHeaderIsClean) {
  EXPECT_TRUE(lint_file(kFixtures + "/clean.hpp").empty());
}

TEST(LintFixtures, WallClockReadsFlagged) {
  const auto fs = lint_file(kFixtures + "/wall_clock.cpp");
  EXPECT_GE(count_rule(fs, "MLNT003"), 1) << "time() not flagged";
  EXPECT_GE(count_rule(fs, "MLNT004"), 1) << "std::chrono not flagged";
}

TEST(LintFixtures, RandomDeviceAndStrayEnginesFlagged) {
  const auto fs = lint_file(kFixtures + "/random_device.cpp");
  EXPECT_GE(count_rule(fs, "MLNT002"), 1) << "std::random_device not flagged";
  EXPECT_GE(count_rule(fs, "MLNT005"), 2) << "<random> engine/distribution not flagged";
}

TEST(LintFixtures, MissingPragmaOnceFlagged) {
  EXPECT_EQ(rule_ids(lint_file(kFixtures + "/missing_pragma.hpp")),
            std::vector<std::string>{"MLNT007"});
}

TEST(LintFixtures, FloatEqualityFlagged) {
  EXPECT_EQ(count_rule(lint_file(kFixtures + "/float_eq.cpp"), "MLNT008"), 2);
}

TEST(LintFixtures, ScenarioConfigAggregateFlagged) {
  // Exactly the three brace constructions fire; default construction,
  // copies, reference parameters, and the tagged suppression stay clean.
  const auto fs = lint_file(kFixtures + "/scenario_aggregate.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT010"), 3);
  EXPECT_EQ(static_cast<int>(fs.size()), 3) << "unexpected extra findings";
}

TEST(LintText, ScenarioConfigAggregateScopedToOutsideScenarioDir) {
  const std::string code = "ScenarioConfig cfg{};\n";
  // The scenario layer itself assembles configs by hand — exempt.
  EXPECT_TRUE(lint_text("src/scenario/scenario.cpp", code, "").empty());
  EXPECT_EQ(count_rule(lint_text("bench/tab_summary.cpp", code, ""), "MLNT010"), 1);
}

TEST(LintFixtures, MalformedSuppressionsAreFindingsAndDoNotSuppress) {
  const auto fs = lint_file(kFixtures + "/bad_suppression.cpp");
  EXPECT_EQ(count_rule(fs, "MLNT009"), 3);  // bad disable, unknown tag, no rationale
  EXPECT_EQ(count_rule(fs, "MLNT001"), 2);  // the broken suppressions silenced nothing
}

// ---------------------------------------------------------------------------
// Engine details (in-memory)
// ---------------------------------------------------------------------------

TEST(LintEngine, PairedHeaderDeclaresTheContainer) {
  // The member is declared in the header; the .cpp only iterates it. The
  // scan of the .cpp must pick the declaration up from paired_text.
  const std::string header = "#pragma once\n#include <unordered_map>\n"
                             "struct R { std::unordered_map<int, int> table_; void f(); };\n";
  const std::string cpp = "void R::f() {\n"
                          "  for (const auto& [k, v] : table_) { sim().schedule(v, k); }\n"
                          "}\n";
  const auto fs = lint_text("fake/routing/r.cpp", cpp, header);
  EXPECT_EQ(count_rule(fs, "MLNT006"), 1);
}

TEST(LintEngine, OrderIndependentAnnotationOnPreviousLine) {
  const std::string header = "#pragma once\n#include <unordered_map>\n"
                             "struct R { std::unordered_map<int, int> table_; void f(); };\n";
  const std::string cpp = "void R::f() {\n"
                          "  // manet-lint: order-independent - max is commutative over ints\n"
                          "  for (const auto& [k, v] : table_) { sim().schedule(v, k); }\n"
                          "}\n";
  EXPECT_TRUE(lint_text("fake/routing/r.cpp", cpp, header).empty());
}

TEST(LintEngine, UnorderedIterationIgnoredOutsideEventCode) {
  // No /routing/ path, no scheduling markers: hash order cannot reach the
  // simulation, so MLNT006 stays quiet.
  const std::string cpp = "#include <unordered_map>\n"
                          "std::unordered_map<int, int> hist;\n"
                          "int total() { int t = 0; for (const auto& [k, v] : hist) t += v; "
                          "return t; }\n";
  EXPECT_TRUE(lint_text("tools/histogram.cpp", cpp).empty());
}

TEST(LintEngine, FileLevelDisable) {
  const std::string cpp = "// manet-lint: disable(MLNT001) - fixture exercising file-level "
                          "opt-out\n"
                          "#include <cstdlib>\n"
                          "int f() { return std::rand(); }\n";
  EXPECT_TRUE(lint_text("x.cpp", cpp).empty());
}

TEST(LintEngine, PatternsInsideStringsAndCommentsIgnored) {
  const std::string cpp = "const char* kHelp = \"never call rand() or time() here\";\n"
                          "// rand() in a comment is documentation, not a call\n"
                          "/* std::chrono discussion */\n";
  EXPECT_TRUE(lint_text("x.cpp", cpp).empty());
}

TEST(LintEngine, IdentifiersContainingBannedNamesNotFlagged) {
  const std::string cpp = "double airtime(int bits);\n"
                          "long next_time(long t) { return airtime(8) > 0 ? t : t + 1; }\n"
                          "struct T { long time; };\n"
                          "long get(T& t) { return t.time; }\n";
  EXPECT_TRUE(lint_text("x.cpp", cpp).empty());
}

TEST(LintEngine, RuleTableHasTenRules) {
  EXPECT_EQ(manet::lint::rules().size(), 10u);
}

}  // namespace
