// End-to-end integration tests: full random scenarios through the whole
// stack (mobility -> channel -> MAC -> ARP -> routing -> CBR), one suite
// parameterized over all five protocols. Thresholds are deliberately loose —
// these are smoke-level correctness gates, not performance assertions (the
// benches handle those).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace manet {
namespace {

class AllProtocols : public ::testing::TestWithParam<Protocol> {};

ScenarioConfig base_config(Protocol p) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = 11;
  cfg.num_nodes = 20;
  cfg.area = {800.0, 800.0};
  cfg.num_connections = 5;
  cfg.duration = seconds(60);
  return cfg;
}

TEST_P(AllProtocols, StaticNetworkDeliversWell) {
  auto cfg = base_config(GetParam());
  cfg.static_nodes = true;
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.data_originated, 500u);
  EXPECT_GE(r.pdr, 0.70) << "static PDR too low for " << to_string(GetParam());
  EXPECT_GT(r.delay_ms, 0.0);
}

TEST_P(AllProtocols, LowMobilityDeliversReasonably) {
  auto cfg = base_config(GetParam());
  cfg.v_max = 2.0;
  const auto r = Scenario::run_once(cfg);
  EXPECT_GE(r.pdr, 0.45) << "low-mobility PDR too low for " << to_string(GetParam());
}

TEST_P(AllProtocols, HighMobilityStillFunctions) {
  auto cfg = base_config(GetParam());
  cfg.v_max = 20.0;
  const auto r = Scenario::run_once(cfg);
  EXPECT_GE(r.pdr, 0.20) << "high-mobility PDR collapsed for " << to_string(GetParam());
  EXPECT_GT(r.data_delivered, 0u);
}

TEST_P(AllProtocols, MetricsAreConsistent) {
  const auto r = Scenario::run_once(base_config(GetParam()));
  EXPECT_LE(r.data_delivered, r.data_originated);
  EXPECT_GE(r.nml, r.nrl * 0.999);  // NML includes NRL's packets
  EXPECT_GE(r.avg_hops, 1.0);
  EXPECT_LT(r.avg_hops, 10.0);
  // Throughput consistent with delivered count: delivered * 512 B / duration.
  const double expect_kbps =
      static_cast<double>(r.data_delivered) * 512.0 * 8.0 / 60.0 / 1e3;
  EXPECT_NEAR(r.throughput_kbps, expect_kbps, expect_kbps * 0.01 + 0.1);
}

TEST_P(AllProtocols, DeterministicAcrossRuns) {
  const auto a = Scenario::run_once(base_config(GetParam()));
  const auto b = Scenario::run_once(base_config(GetParam()));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.routing_tx, b.routing_tx);
}

TEST_P(AllProtocols, ReactiveQuietWithoutTraffic) {
  auto cfg = base_config(GetParam());
  cfg.num_connections = 1;
  cfg.cbr_start = seconds(55);  // almost no data in 60 s
  const auto r = Scenario::run_once(cfg);
  const bool reactive = GetParam() == Protocol::kAodv || GetParam() == Protocol::kDsr ||
                        GetParam() == Protocol::kLar;
  if (reactive) {
    // On-demand protocols generate (almost) no control traffic when idle.
    EXPECT_LT(r.routing_tx, 100u);
  } else {
    // Proactive (and CBRP's clustering) beacons regardless.
    EXPECT_GT(r.routing_tx, 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols, ::testing::ValuesIn(kAllProtocols),
                         [](const ::testing::TestParamInfo<Protocol>& param_info) {
                           return to_string(param_info.param);
                         });

// Cross-protocol shape checks (the paper's qualitative claims, loosely).
TEST(CrossProtocol, ProactiveDelayBeatsReactiveOnEstablishedRoutes) {
  auto olsr_cfg = base_config(Protocol::kOlsr);
  auto aodv_cfg = base_config(Protocol::kAodv);
  const auto olsr = Scenario::run_once(olsr_cfg);
  const auto aodv = Scenario::run_once(aodv_cfg);
  // OLSR's delivered packets see no discovery latency.
  EXPECT_LT(olsr.delay_ms, aodv.delay_ms);
}

TEST(CrossProtocol, SourceRoutingBeatsAodvOnRoutingLoad) {
  // Boukerche's headline: DSR needs fewer routing transmissions than AODV.
  // The gap needs paper-scale discovery floods, so use the Table-I network
  // size rather than the small smoke configuration.
  auto cfg = base_config(Protocol::kDsr);
  cfg.num_nodes = 50;
  cfg.area = {1000.0, 1000.0};
  cfg.v_max = 20.0;
  const auto dsr = Scenario::run_once(cfg);
  cfg.protocol = Protocol::kAodv;
  const auto aodv = Scenario::run_once(cfg);
  EXPECT_LT(dsr.nrl, aodv.nrl);
}

TEST(CrossProtocol, ProactiveRoutingLoadExceedsReactive) {
  const auto olsr = Scenario::run_once(base_config(Protocol::kOlsr));
  const auto aodv = Scenario::run_once(base_config(Protocol::kAodv));
  EXPECT_GT(olsr.nrl, aodv.nrl);
}

}  // namespace
}  // namespace manet
