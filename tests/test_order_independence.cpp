// Hash-order independence regression test.
//
// PR 2 replaced hash-order-sensitive containers (CBRP neighbour/route
// tables, ARP cache/pending queue, Wi-Fi dedup table) with ordered
// equivalents. Those sites were audited as order-independent — sorted
// copies, min-selects, or pure keyed lookups — so the swap must not change
// behaviour at all. This test pins full per-seed metric fingerprints
// captured immediately BEFORE the container swap; if any conversion (or a
// future "harmless" container change) perturbs a single event, the exact
// event counts diverge and this fails.
//
// Regenerate after an intentional behaviour change:
//   MANET_PRINT_GOLDENS=1 ./build/tests/test_order_independence
// and paste the printed table over kGoldens below.

#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace manet {
namespace {

struct Case {
  Protocol protocol;
  std::uint64_t seed;
};

constexpr Case kCases[] = {
    {Protocol::kAodv, 1}, {Protocol::kDsr, 1},  {Protocol::kCbrp, 1}, {Protocol::kCbrp, 2},
    {Protocol::kDsdv, 1}, {Protocol::kOlsr, 1}, {Protocol::kLar, 1}, {Protocol::kTora, 1},
};

ScenarioConfig config_for(const Case& c) {
  ScenarioConfig cfg;
  cfg.protocol = c.protocol;
  cfg.seed = c.seed;
  cfg.num_nodes = 14;
  cfg.area = {650.0, 650.0};
  cfg.v_max = 6.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(25);
  return cfg;
}

/// Everything observable a run produces, as one exact-match string. Counters
/// are exact integers; double-valued metrics are rendered with %.12g, which
/// distinguishes any behavioural change while tolerating sub-ULP printing
/// differences across libcs.
std::string fingerprint(const Case& c) {
  const auto r = Scenario::run_once(config_for(c));
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s seed=%llu events=%llu orig=%llu deliv=%llu rtx=%llu mac=%llu "
                "pdr=%.12g delay=%.12g nrl=%.12g hops=%.12g",
                to_string(c.protocol), static_cast<unsigned long long>(c.seed),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.data_originated),
                static_cast<unsigned long long>(r.data_delivered),
                static_cast<unsigned long long>(r.routing_tx),
                static_cast<unsigned long long>(r.mac_ctrl_tx), r.pdr, r.delay_ms, r.nrl,
                r.avg_hops);
  return buf;
}

const char* const kGoldens[] = {
    "AODV seed=1 events=31439 orig=155 deliv=154 rtx=32 mac=816 pdr=0.993548387097 delay=7.6273553961 nrl=0.207792207792 hops=1.65584415584",
    "DSR seed=1 events=31485 orig=155 deliv=155 rtx=36 mac=824 pdr=1 delay=6.59044171613 nrl=0.232258064516 hops=1.66451612903",
    "CBRP seed=1 events=39827 orig=155 deliv=154 rtx=203 mac=911 pdr=0.993548387097 delay=7.21354788312 nrl=1.31818181818 hops=1.83766233766",
    "CBRP seed=2 events=45131 orig=144 deliv=144 rtx=208 mac=1051 pdr=1 delay=11.3331642083 nrl=1.44444444444 hops=2.27777777778",
    "DSDV seed=1 events=44942 orig=155 deliv=155 rtx=471 mac=821 pdr=1 delay=9.90606171613 nrl=3.03870967742 hops=1.67741935484",
    "OLSR seed=1 events=38390 orig=155 deliv=155 rtx=282 mac=800 pdr=1 delay=5.91669034194 nrl=1.81935483871 hops=1.66451612903",
    "LAR seed=1 events=31967 orig=155 deliv=154 rtx=58 mac=818 pdr=0.993548387097 delay=6.57177623377 nrl=0.376623376623 hops=1.65584415584",
    "TORA seed=1 events=32958 orig=155 deliv=126 rtx=420 mac=535 pdr=0.812903225806 delay=7.37855453175 nrl=3.33333333333 hops=1.35714285714",
};

TEST(OrderIndependence, PerSeedMetricsMatchPreConversionGoldens) {
  static_assert(std::size(kCases) == std::size(kGoldens));
  const bool print = std::getenv("MANET_PRINT_GOLDENS") != nullptr;
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    const std::string fp = fingerprint(kCases[i]);
    if (print) {
      std::printf("    \"%s\",\n", fp.c_str());
      continue;
    }
    EXPECT_EQ(fp, kGoldens[i]) << "case " << i
                               << ": container conversion changed simulation behaviour";
  }
}

/// The same scenario run twice in-process must be bit-identical — catches
/// any residual global mutable state (a static RNG, a leaked cache).
TEST(OrderIndependence, RepeatRunIsBitIdentical) {
  const Case c{Protocol::kCbrp, 3};
  EXPECT_EQ(fingerprint(c), fingerprint(c));
}

}  // namespace
}  // namespace manet
