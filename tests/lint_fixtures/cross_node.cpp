// MLNT012 positive fixture. Scoped to the node-state layers plus
// src/scenario/, so the test lints this text under a fake src/routing/ path.
// Three direct peer-state accesses must fire; the decoys must not.
#include <cstddef>
#include <vector>

namespace manet {

struct Node {
  void tick();
};

struct Mesh {
  std::vector<Node*> nodes_;
  std::vector<int> nodes;  // decoy: similarly-named container

  void poke(std::size_t i) {
    nodes_[i]->tick();  // direct indexing into the peer table
  }
  Node& node(std::size_t i) { return *nodes_[i]; }  // accessor exposing a peer
  void relay(Mesh& other, std::size_t i) {
    other.node(i).tick();  // member call fetching a foreign node
    nodes.push_back(0);    // decoy: `nodes` is not `nodes_`
  }
  void renode();  // decoy: "node" embedded in an identifier
};

}  // namespace manet
