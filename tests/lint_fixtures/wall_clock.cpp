// Fixture: host-clock reads in sim code — time() (MLNT003) and std::chrono
// (MLNT004). Both are banned: simulated behaviour may only depend on
// Simulator::now().
#include <chrono>
#include <ctime>

long stamp_events() {
  const long wall = static_cast<long>(std::time(nullptr));
  const auto tick = std::chrono::steady_clock::now().time_since_epoch().count();
  return wall + tick;
}
