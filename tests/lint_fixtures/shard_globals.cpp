// MLNT011 positive fixture. The rule is scoped to src/, so the test feeds
// this text to lint_text() under a fake src/ path. Four mutable statics must
// fire; the const/constexpr/plain-member decoys must not.
#include <cstdint>

namespace manet {

int g_counter = 0;           // namespace-scope mutable
static double g_rate{1.0};   // brace-initialized namespace-scope static

constexpr int kLimit = 8;         // constexpr: clean
const char* const kName = "x";    // const: clean
inline int scale(int v) { return v * kLimit; }  // function: clean

class Widget {
 public:
  static int live_count_;  // static data member
  int size_ = 0;           // plain member: clean
};

int bump() {
  static std::uint64_t calls = 0;  // function-local static
  return static_cast<int>(++calls);
}

}  // namespace manet
