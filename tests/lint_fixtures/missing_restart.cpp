// MLNT014 positive fixture (lintable from any path — the rule is not
// path-scoped). NaiveFlood derives from RoutingProtocol without overriding
// on_node_restart(); CleanProtocol overrides it and must not fire. The
// unrelated base class is a decoy.
namespace manet {

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;
  virtual void on_node_restart() {}
};

class NaiveFlood final : public RoutingProtocol {
 public:
  void start();

 private:
  int seq_ = 0;
};

class CleanProtocol final : public RoutingProtocol {
 public:
  void on_node_restart() override { seq_ = 0; }

 private:
  int seq_ = 0;
};

class NotAProtocol {
 public:
  void start();
};

}  // namespace manet
