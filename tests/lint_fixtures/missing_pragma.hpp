// Fixture: header without #pragma once (MLNT007).

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
