// Fixture: exact floating-point equality against literals (MLNT008).
// Reassociation or FMA contraction makes these comparisons flip between
// builds even when the maths is "the same".
bool at_origin(double x) { return x == 0.0; }
bool moved(float v) { return v != 1.5f; }
