// MLNT015 fixture: full-population loops in per-event PHY/MAC/net code.
// Linted as if at src/phy/fake.cpp (see test_lint.cpp) — the rule is scoped
// to the hot-path layers.
#include <cstdint>
#include <vector>

struct Trx {
  int id;
};

struct FakeChannel {
  std::vector<Trx*> trx_;
  std::vector<int*> mob_;
  std::vector<int> nodes_;
  std::uint32_t node_count() const { return 3; }

  int transmit() {
    int acc = 0;
    for (Trx* t : trx_) acc += t->id;                              // range-for over trx_
    for (std::uint32_t i = 0; i < node_count(); ++i) acc += i;     // index loop, node_count()
    for (std::size_t i = 0; i < mob_.size(); ++i) acc += *mob_[i]; // index loop, mob_.size()
    for (const int n : nodes_) acc += n;                           // range-for over nodes_
    return acc;
  }

  int fine() {
    int acc = 0;
    std::vector<int> neighbors{1, 2, 3};
    for (const int n : neighbors) acc += n;  // grid-local result: not flagged
    return acc;
  }
};
