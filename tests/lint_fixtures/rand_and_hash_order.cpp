// Fixture: the canonical determinism bug pair. rand() draws from hidden
// global state (MLNT001) and the unordered_map iteration feeds hash order
// straight into the event schedule (MLNT006). Neither is annotated, so
// manet_lint must flag both.
#include <cstdlib>
#include <unordered_map>

struct Sim {
  template <typename F>
  void schedule(long delay_ns, F&& fn);
};

struct Node {
  Sim& sim();
};

std::unordered_map<unsigned, int> pending_timers;

void kick_timers(Node& node) {
  for (const auto& [id, budget] : pending_timers) {
    const long jitter = std::rand() % 1000;
    node.sim().schedule(jitter + budget, [] {});
  }
}
