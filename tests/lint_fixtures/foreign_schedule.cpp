// MLNT013 positive fixture, linted under a fake src/routing/ path. Both
// forms must fire: the member-call schedule_on() (cross-shard injection) and
// scheduling through a *foreign* node's sim() handle. Scheduling through the
// component's own sim() accessor or its node_ owner is clean.
namespace manet {

struct EventId {};

struct Simulator {
  EventId schedule(long delay, int cb);
  EventId schedule_at(long at, int cb);
  EventId schedule_on(unsigned shard, long at, int cb);
  void cancel(EventId ev);
};

struct Peer {
  Simulator& sim();
};

struct Proto {
  Simulator& sim();
  Simulator& sim_;
  Peer* neighbor_;
  Peer& node_;
  EventId timer_;

  void arm(Peer& peer) {
    sim().schedule(10, 1);                  // own accessor: clean
    node_.sim().schedule_at(20, 2);         // owning node: clean
    neighbor_->sim().schedule(30, 3);       // foreign handle: MLNT013
    peer.sim().cancel(timer_);              // foreign handle: MLNT013
    sim_.schedule_on(1, 40, 4);             // cross-shard injection: MLNT013
  }
};

}  // namespace manet
