// MLNT015 fixture: annotated periodic whole-population work stays clean.
#include <cstdint>
#include <vector>

struct FakeChannel {
  std::vector<int*> mob_;
  std::vector<int> nodes_;

  int refresh_positions() {
    int acc = 0;
    // manet-lint: allow-node-scan - periodic 4 Hz grid refresh, not per-event
    for (std::size_t i = 0; i < mob_.size(); ++i) acc += *mob_[i];
    for (const int n : nodes_) acc += n;  // manet-lint: allow-node-scan - setup-time walk, runs once per build
    return acc;
  }
};
