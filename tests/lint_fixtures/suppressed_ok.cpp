// Fixture: the same hazards as rand_and_hash_order.cpp, but every one
// carries a tagged suppression with a rationale — manet_lint must be clean.
#include <cstdlib>
#include <unordered_map>

struct Sim {
  template <typename F>
  void schedule(long delay_ns, F&& fn);
};

struct Node {
  Sim& sim();
};

std::unordered_map<unsigned, int> pending_timers;

int total_budget(Node& node) {
  int total = 0;
  // manet-lint: order-independent - pure summation; addition of ints is
  // commutative, so visit order cannot change the result.
  for (const auto& [id, budget] : pending_timers) {
    total += budget;
  }
  const int jitter = std::rand() % 7;  // manet-lint: allow-rand - fixture demonstrating an inline suppression
  node.sim().schedule(total + jitter, [] {});
  return total;
}
