// Fixture: malformed suppressions (MLNT009) — an unknown tag and a known
// tag with no rationale. Also includes a rationale-free disable(...).
// manet-lint: disable(MLNT008)
#include <cstdlib>

int lucky() {
  return std::rand();  // manet-lint: allow-everything - tag does not exist
}

int luckier() {
  return std::rand();  // manet-lint: allow-rand
}
