// MLNT010 fixture: ScenarioConfig brace construction outside src/scenario/.
// Three positives, and the shapes that must stay clean.

struct Area {
  double width;
  double height;
};

struct ScenarioConfig {
  int num_nodes = 50;
  Area area{1000.0, 1000.0};
};

ScenarioConfig make_temporary() {
  return ScenarioConfig{};  // positive: temporary aggregate
}

void positives() {
  ScenarioConfig direct{};            // positive: braced declaration
  ScenarioConfig assigned = {};       // positive: copy-list-init
  (void)direct;
  (void)assigned;
}

int negatives(const ScenarioConfig& by_ref) {  // clean: reference parameter
  ScenarioConfig defaulted;                    // clean: default construction
  ScenarioConfig copy = defaulted;             // clean: copy construction
  auto lambda = [](ScenarioConfig& c) { c.num_nodes = 2; };  // clean: param
  lambda(copy);
  return by_ref.num_nodes + copy.num_nodes;
}

void suppressed() {
  // manet-lint: allow-scenario-config - fixture proves the tag silences it
  ScenarioConfig quiet{};
  (void)quiet;
}
