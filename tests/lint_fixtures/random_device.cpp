// Fixture: std::random_device (MLNT002) and a <random> engine outside
// core/rng (MLNT005). Hardware entropy can never be replayed from a seed.
#include <random>

unsigned draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_int_distribution<unsigned> dist(0, 9);
  return dist(gen);
}
