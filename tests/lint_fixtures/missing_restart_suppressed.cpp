// MLNT014 suppressed fixture: the override is genuinely unnecessary here
// and the class head says why. Must lint clean.
namespace manet {

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;
  virtual void on_node_restart() {}
};

// manet-lint: allow-no-restart - fixture: protocol is stateless, a cold restart has nothing to clear
class StatelessRelay final : public RoutingProtocol {
 public:
  void start();
};

}  // namespace manet
