// MLNT012 suppressed fixture: same accesses as cross_node.cpp, each with a
// tagged rationale. Must lint clean under a src/routing/ path.
#include <cstddef>
#include <vector>

namespace manet {

struct Node {
  void tick();
};

struct Mesh {
  std::vector<Node*> nodes_;

  void poke(std::size_t i) {
    // manet-lint: cross-shard-audited - fixture: runs only during single-threaded build()
    nodes_[i]->tick();
  }
  // manet-lint: cross-shard-audited - fixture: test-only accessor, sentinel covers in-run use
  Node& node(std::size_t i) { return *nodes_[i]; }
  void relay(Mesh& other, std::size_t i) {
    // manet-lint: cross-shard-audited - fixture: delivery path audited by the sentinel
    other.node(i).tick();
  }
};

}  // namespace manet
