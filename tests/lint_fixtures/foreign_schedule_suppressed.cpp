// MLNT013 suppressed fixture: the same three violations as
// foreign_schedule.cpp, each carrying a tagged rationale. Must lint clean
// under a src/routing/ path.
namespace manet {

struct EventId {};

struct Simulator {
  EventId schedule(long delay, int cb);
  EventId schedule_on(unsigned shard, long at, int cb);
  void cancel(EventId ev);
};

struct Peer {
  Simulator& sim();
};

struct Proto {
  Simulator& sim_;
  Peer* neighbor_;
  EventId timer_;

  void arm(Peer& peer) {
    // manet-lint: allow-foreign-schedule - fixture: handoff driven through the audited kernel API
    neighbor_->sim().schedule(30, 3);
    // manet-lint: allow-foreign-schedule - fixture: cancellation is order-unobservable here
    peer.sim().cancel(timer_);
    // manet-lint: allow-foreign-schedule - fixture: kernel test drives the cross-shard API directly
    sim_.schedule_on(1, 40, 4);
  }
};

}  // namespace manet
