// MLNT011 suppressed fixture: the same shapes as shard_globals.cpp, every
// one carrying a tagged rationale. Must lint clean under a src/ path.
#include <cstdint>

namespace manet {

// manet-lint: allow-global-state - fixture: config knob written before the run starts
int g_counter = 0;
// manet-lint: allow-global-state - fixture: read-only after initialization
static double g_rate{1.0};

class Widget {
 public:
  // manet-lint: allow-global-state - fixture: debug-only instance census
  static int live_count_;
};

int bump() {
  // manet-lint: allow-global-state - fixture: memoized pure value
  static std::uint64_t calls = 0;
  return static_cast<int>(++calls);
}

}  // namespace manet
