// Fixture: a header that follows every rule — ordered containers, no
// wall-clock reads, no stray RNG, #pragma once present. Zero findings.
#pragma once

#include <cstdint>
#include <map>

namespace fixture {

struct Sim {
  template <typename F>
  void schedule(long delay_ns, F&& fn);
};

inline int drain(Sim& sim, const std::map<std::uint32_t, int>& timers) {
  int total = 0;
  for (const auto& [id, budget] : timers) {
    total += budget;
    sim.schedule(budget, [] {});
  }
  return total;
}

}  // namespace fixture
