// Fixture: wall-clock reads carrying the allow-wall-clock tag — profiling
// code that measures host time without feeding it into the simulation.
// manet_lint must be clean.
// manet-lint: allow-wall-clock - fixture models a profiling-only translation unit
#include <chrono>

double profile_elapsed_s() {
  // manet-lint: allow-wall-clock - wall time is reported to the artifact
  // writer only; it never becomes an event timestamp.
  const auto t0 = std::chrono::steady_clock::now();
  // manet-lint: allow-wall-clock - see above, same profiling read
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
