#include "routing/cbrp/cluster.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace manet::cbrp {
namespace {

TEST(Cluster, LonelyNodeBecomesHead) {
  EXPECT_EQ(decide_role(5, {}), Role::kHead);
}

TEST(Cluster, JoinsNearbyHead) {
  const std::vector<NeighborSummary> nbrs = {{3, Role::kHead, 3}};
  EXPECT_EQ(decide_role(5, nbrs), Role::kMember);
}

TEST(Cluster, LowestUndecidedBecomesHead) {
  const std::vector<NeighborSummary> nbrs = {{7, Role::kUndecided, kBroadcast},
                                             {9, Role::kUndecided, kBroadcast}};
  EXPECT_EQ(decide_role(5, nbrs), Role::kHead);
}

TEST(Cluster, WaitsWhenSmallerUndecidedNeighborExists) {
  const std::vector<NeighborSummary> nbrs = {{2, Role::kUndecided, kBroadcast}};
  EXPECT_EQ(decide_role(5, nbrs), Role::kUndecided);
}

TEST(Cluster, MemberNeighborsDontBlockElection) {
  const std::vector<NeighborSummary> nbrs = {{2, Role::kMember, 1}};
  EXPECT_EQ(decide_role(5, nbrs), Role::kHead);
}

TEST(Cluster, HeadWinsOverSmallerUndecided) {
  // A head neighbour dominates: join it even if smaller undecided ids exist.
  const std::vector<NeighborSummary> nbrs = {{2, Role::kUndecided, kBroadcast},
                                             {8, Role::kHead, 8}};
  EXPECT_EQ(decide_role(5, nbrs), Role::kMember);
}

TEST(Cluster, ContestedOnlyBySmallerHead) {
  EXPECT_TRUE(head_contested(5, {{3, Role::kHead, 3}}));
  EXPECT_FALSE(head_contested(5, {{8, Role::kHead, 8}}));
  EXPECT_FALSE(head_contested(5, {{3, Role::kMember, 8}}));
}

TEST(Cluster, PickHeadChoosesSmallest) {
  const std::vector<NeighborSummary> nbrs = {{9, Role::kHead, 9},
                                             {4, Role::kHead, 4},
                                             {2, Role::kMember, 4}};
  EXPECT_EQ(pick_head(nbrs), 4u);
  EXPECT_EQ(pick_head({}), kBroadcast);
}

TEST(Cluster, GatewaySeesTwoHeads) {
  const std::vector<NeighborSummary> nbrs = {{1, Role::kHead, 1}, {6, Role::kHead, 6}};
  EXPECT_TRUE(is_gateway(1, nbrs));
}

TEST(Cluster, GatewayViaForeignMember) {
  const std::vector<NeighborSummary> nbrs = {{1, Role::kHead, 1}, {7, Role::kMember, 9}};
  EXPECT_TRUE(is_gateway(1, nbrs));
}

TEST(Cluster, NotGatewayInsideOwnCluster) {
  const std::vector<NeighborSummary> nbrs = {{1, Role::kHead, 1}, {7, Role::kMember, 1}};
  EXPECT_FALSE(is_gateway(1, nbrs));
}

TEST(Cluster, UnaffiliatedMemberDoesNotMakeGateway) {
  const std::vector<NeighborSummary> nbrs = {{1, Role::kHead, 1},
                                             {7, Role::kMember, kBroadcast}};
  EXPECT_FALSE(is_gateway(1, nbrs));
}

// Property: iterating the decision rule on a random static neighbourhood
// graph converges to a valid clustering — every member has a head neighbour,
// every node is decided.
class ClusterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterProperty, SynchronousIterationConverges) {
  RngStream rng(GetParam());
  constexpr int kN = 25;
  // Random symmetric adjacency.
  bool adj[kN][kN] = {};
  for (int i = 0; i < kN; ++i) {
    for (int j = i + 1; j < kN; ++j) {
      adj[i][j] = adj[j][i] = rng.chance(0.15);
    }
  }
  std::vector<Role> role(kN, Role::kUndecided);
  std::vector<NodeId> head(kN, kBroadcast);
  for (int round = 0; round < kN + 2; ++round) {
    std::vector<Role> next_role = role;
    std::vector<NodeId> next_head = head;
    for (int i = 0; i < kN; ++i) {
      std::vector<NeighborSummary> nbrs;
      for (int j = 0; j < kN; ++j) {
        if (adj[i][j]) {
          nbrs.push_back({static_cast<NodeId>(j), role[static_cast<std::size_t>(j)],
                          head[static_cast<std::size_t>(j)]});
        }
      }
      if (role[static_cast<std::size_t>(i)] == Role::kHead) {
        // Heads persist in this synchronous model (no contention timing).
        continue;
      }
      const Role r = decide_role(static_cast<NodeId>(i), nbrs);
      next_role[static_cast<std::size_t>(i)] = r;
      next_head[static_cast<std::size_t>(i)] =
          r == Role::kHead ? static_cast<NodeId>(i)
          : r == Role::kMember ? pick_head(nbrs)
                               : kBroadcast;
    }
    role = next_role;
    head = next_head;
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_NE(role[static_cast<std::size_t>(i)], Role::kUndecided) << "node " << i;
    if (role[static_cast<std::size_t>(i)] == Role::kMember) {
      const NodeId h = head[static_cast<std::size_t>(i)];
      ASSERT_NE(h, kBroadcast);
      EXPECT_TRUE(adj[i][h]) << "member " << i << " cannot hear its head " << h;
      EXPECT_EQ(role[h], Role::kHead);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace manet::cbrp
