#include "routing/aodv/aodv.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory aodv_factory(aodv::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<aodv::Aodv>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

aodv::Aodv& as_aodv(RoutingProtocol& rp) { return dynamic_cast<aodv::Aodv&>(rp); }

TEST(Aodv, Name) {
  TestNet net(line_positions(2), aodv_factory());
  EXPECT_STREQ(net.routing(0).name(), "AODV");
}

TEST(Aodv, DeliversOverOneHop) {
  TestNet net(line_positions(2), aodv_factory());
  net.send_data(0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.stats().avg_hops(), 1.0);
}

TEST(Aodv, DeliversOverMultipleHops) {
  TestNet net(line_positions(5), aodv_factory());
  net.send_data(0, 4);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.stats().avg_hops(), 4.0);
}

TEST(Aodv, InstallsForwardAndReverseRoutes) {
  TestNet net(line_positions(3), aodv_factory());
  net.send_data(0, 2);
  net.run_for(seconds(2));
  const auto fwd = as_aodv(net.routing(0)).route_to(2);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_TRUE(fwd->valid);
  EXPECT_EQ(fwd->next_hop, 1u);
  EXPECT_EQ(fwd->hops, 2);
  // Reverse route at the destination (built from the RREQ).
  const auto rev = as_aodv(net.routing(2)).route_to(0);
  ASSERT_TRUE(rev.has_value());
  EXPECT_EQ(rev->next_hop, 1u);
}

TEST(Aodv, BuffersDuringDiscovery) {
  TestNet net(line_positions(4), aodv_factory());
  for (std::uint32_t i = 0; i < 5; ++i) net.send_data(0, 3, 0, i);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 5u);
  // One discovery serves all five packets.
  EXPECT_EQ(net.stats().drops(DropReason::kNoRoute), 0u);
}

TEST(Aodv, EstablishedRouteNeedsNoNewDiscovery) {
  TestNet net(line_positions(3), aodv_factory());
  net.send_data(0, 2);
  net.run_for(seconds(3));
  const auto tx_after_discovery = net.stats().routing_tx();
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
  EXPECT_EQ(net.stats().routing_tx(), tx_after_discovery);
}

TEST(Aodv, ExpandingRingKeepsLocalDiscoveryCheap) {
  TestNet net(line_positions(6), aodv_factory());
  net.send_data(0, 1);  // destination is a direct neighbour
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  // TTL=1 RREQ + unicast RREP; distant nodes never rebroadcast.
  EXPECT_LE(net.stats().routing_tx(), 3u);
}

TEST(Aodv, NetworkWideSearchWithoutExpandingRing) {
  // Destination 1 is a direct neighbour of the source, but bystanders 2-3-4
  // hang off the source in a chain. With ERS the TTL=1 query never reaches
  // them; with network-wide flooding they all rebroadcast.
  const std::vector<Vec2> pos = {
      {0.0, 0.0}, {200.0, 0.0}, {0.0, 200.0}, {0.0, 400.0}, {0.0, 600.0}};
  aodv::Config flood;
  flood.expanding_ring = false;
  std::uint64_t ers_tx = 0, flood_tx = 0;
  {
    TestNet net(pos, aodv_factory());
    net.send_data(0, 1);
    net.run_for(seconds(2));
    EXPECT_EQ(net.stats().data_delivered(), 1u);
    ers_tx = net.stats().routing_tx();
  }
  {
    TestNet net(pos, aodv_factory(flood));
    net.send_data(0, 1);
    net.run_for(seconds(2));
    EXPECT_EQ(net.stats().data_delivered(), 1u);
    flood_tx = net.stats().routing_tx();
  }
  EXPECT_LE(ers_tx, 3u);      // TTL-1 RREQ + RREP
  EXPECT_GT(flood_tx, ers_tx);  // bystanders rebroadcast the flood
}

TEST(Aodv, IntermediateReplyShortensDiscovery) {
  aodv::Config with_reply;
  aodv::Config dest_only;
  dest_only.intermediate_reply = false;
  std::uint64_t tx_with = 0, tx_without = 0;
  {
    TestNet net(line_positions(3), aodv_factory(with_reply));
    net.send_data(1, 2);  // teach node 1 the route to 2
    net.run_for(seconds(2));
    net.send_data(0, 2);  // node 1 can now answer from its table
    net.run_for(seconds(3));
    EXPECT_EQ(net.stats().data_delivered(), 2u);
    tx_with = net.stats().routing_tx();
  }
  {
    TestNet net(line_positions(3), aodv_factory(dest_only));
    net.send_data(1, 2);
    net.run_for(seconds(2));
    net.send_data(0, 2);
    net.run_for(seconds(3));
    EXPECT_EQ(net.stats().data_delivered(), 2u);
    tx_without = net.stats().routing_tx();
  }
  EXPECT_LT(tx_with, tx_without);
}

TEST(Aodv, LinkBreakInvalidatesRoute) {
  TestNet net(line_positions(3), aodv_factory());
  net.send_data(0, 2);
  net.run_for(seconds(2));
  ASSERT_TRUE(as_aodv(net.routing(0)).route_to(2).has_value());
  // Destination walks away.
  net.mobility(2).set_position({2000.0, 2000.0});
  net.run_for(seconds(1));  // grid refresh
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(15));
  // Node 1 detected the break (MAC feedback) and invalidated its route.
  const auto rt = as_aodv(net.routing(1)).route_to(2);
  EXPECT_TRUE(!rt.has_value() || !rt->valid);
  // The packet was eventually dropped, not delivered.
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_GT(net.stats().total_drops(), 0u);
}

TEST(Aodv, RediscoversAfterTopologyChange) {
  // 0-1-2 plus detour 0-3, 3-2 (slightly longer): when 1 disappears, traffic
  // must re-route via 3.
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {200.0, 150.0}};
  // dist(3,0) = 250, dist(3,2) = 250: both just in range.
  TestNet net(pos, aodv_factory());
  net.send_data(0, 2);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(1).set_position({2000.0, 2000.0});
  net.run_for(seconds(1));
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(10));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Aodv, UnreachableDestinationDropsAfterRetries) {
  TestNet net(line_positions(2), aodv_factory());
  net.send_data(0, 99);  // no such node
  net.run_for(seconds(60));
  EXPECT_EQ(net.stats().data_delivered(), 0u);
  EXPECT_GT(net.stats().drops(DropReason::kNoRoute) +
                net.stats().drops(DropReason::kBufferTimeout),
            0u);
  EXPECT_EQ(as_aodv(net.routing(0)).buffered_packets(), 0u);
}

TEST(Aodv, HelloMessagesKeepNeighborsFresh) {
  aodv::Config cfg;
  cfg.use_hello = true;
  TestNet net(line_positions(2), aodv_factory(cfg));
  net.run_for(seconds(5));
  // Hellos flowed even with no data traffic.
  EXPECT_GT(net.stats().routing_tx(), 0u);
  EXPECT_TRUE(as_aodv(net.routing(0)).route_to(1).has_value());
}

TEST(Aodv, TtlLimitsFloodRadius) {
  // With ERS off and a long line, discovery still succeeds but each RREQ is
  // processed at most once per node (duplicate suppression).
  TestNet net(line_positions(8), aodv_factory());
  net.send_data(0, 7);
  net.run_for(seconds(10));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
}

}  // namespace
}  // namespace manet
