// FlowMonitor: per-flow accounting pinned against hand-computed arithmetic
// and cross-checked against the aggregate StatsCollector on every registered
// protocol.
//
//   1. Unit fixtures: tx/rx counters, the RFC-3550-style mean-absolute
//      jitter, retire() semantics, totals over active + finished records.
//   2. Structure: the table is O(active flows) — a flow's record never grows
//      with its packet count.
//   3. Integration: a transport-enabled scenario per registered protocol;
//      the per-flow sums must reconcile exactly with the run's aggregate
//      counters, and transport-off runs must emit no flow records at all.

#include "stats/flow_monitor.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/time.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"
#include "transport/transport.hpp"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// 1. Hand-computed unit fixtures
// ---------------------------------------------------------------------------

TEST(FlowMonitor, CountersAndDelayJitterArithmetic) {
  FlowMonitor m;
  m.on_tx(7, /*src=*/2, /*dst=*/9, 512, seconds(1));
  m.on_tx(7, 2, 9, 512, seconds(2));
  m.on_tx(7, 2, 9, 512, seconds(3));
  m.on_retransmit(7);

  // One-way delays 10, 14, 12 ms: avg = 12 ms; jitter samples |14-10| = 4
  // and |12-14| = 2, mean 3 ms.
  m.on_rx(7, 512, milliseconds(10), seconds_f(1.010));
  m.on_rx(7, 512, milliseconds(14), seconds_f(2.014));
  m.on_rx(7, 512, milliseconds(12), seconds_f(3.012));

  const FlowRecord* r = m.find(7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->src, 2u);
  EXPECT_EQ(r->dst, 9u);
  EXPECT_EQ(r->tx_packets, 3u);
  EXPECT_EQ(r->tx_bytes, 3u * 512u);
  EXPECT_EQ(r->rx_packets, 3u);
  EXPECT_EQ(r->rx_bytes, 3u * 512u);
  EXPECT_EQ(r->retransmissions, 1u);
  EXPECT_DOUBLE_EQ(r->avg_delay_ms(), 12.0);
  EXPECT_DOUBLE_EQ(r->mean_jitter_ms(), 3.0);
  EXPECT_EQ(r->first_tx, seconds(1));
  EXPECT_EQ(r->last_rx, seconds_f(3.012));

  // A flow that never saw traffic has no record — and no divide-by-zero.
  EXPECT_EQ(m.find(8), nullptr);
  FlowRecord empty;
  EXPECT_DOUBLE_EQ(empty.avg_delay_ms(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_jitter_ms(), 0.0);
}

TEST(FlowMonitor, RetireFreezesTotalsAndReopensFresh) {
  FlowMonitor m;
  m.on_tx(3, 0, 1, 100, seconds(1));
  m.on_rx(3, 100, milliseconds(5), seconds_f(1.005));
  m.retire(3);
  EXPECT_EQ(m.active_count(), 0u);
  EXPECT_EQ(m.finished_count(), 1u);
  EXPECT_EQ(m.find(3), nullptr);  // out of the hot table

  // Totals span active + finished; a later on_* reopens a fresh record.
  m.on_tx(3, 0, 1, 100, seconds(2));
  EXPECT_EQ(m.active_count(), 1u);
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(m.find(3)->tx_packets, 1u);  // fresh, not the frozen 1+1
  m.on_retransmit(3);
  EXPECT_EQ(m.total_rx_bytes(), 100u);
  EXPECT_EQ(m.total_retransmissions(), 1u);

  const auto all = m.all();
  ASSERT_EQ(all.size(), 2u);  // the frozen record and the reopened one
  EXPECT_EQ(all[0].first, 3u);
  EXPECT_EQ(all[1].first, 3u);
}

TEST(FlowMonitor, AllIsSortedByFlowId) {
  FlowMonitor m;
  m.on_tx(9, 0, 1, 10, seconds(1));
  m.on_tx(2, 0, 1, 10, seconds(1));
  m.retire(9);
  m.on_tx(5, 0, 1, 10, seconds(1));
  const auto all = m.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, 2u);
  EXPECT_EQ(all[1].first, 5u);
  EXPECT_EQ(all[2].first, 9u);
}

// ---------------------------------------------------------------------------
// 2. O(active flows) structure
// ---------------------------------------------------------------------------

TEST(FlowMonitor, TableSizeIsBoundedByFlowsNotPackets) {
  FlowMonitor m;
  for (int i = 0; i < 100000; ++i) {
    m.on_tx(1, 0, 1, 512, seconds(i));
    m.on_rx(1, 512, milliseconds(10), seconds_f(i + 0.01));
    if (i % 3 == 0) m.on_retransmit(1);
  }
  // 100k packets, one record: the monitor keeps counters and running sums,
  // never per-packet history (the FlowRecord itself is a flat value type).
  EXPECT_EQ(m.active_count(), 1u);
  EXPECT_EQ(m.find(1)->tx_packets, 100000u);
  static_assert(sizeof(FlowRecord) < 160, "FlowRecord grew per-packet state?");
}

// ---------------------------------------------------------------------------
// 3. Per-flow vs aggregate cross-check on every registered protocol
// ---------------------------------------------------------------------------

ScenarioBuilder transport_scenario(const char* protocol) {
  TransportConfig transport;
  transport.enabled = true;
  ScenarioBuilder b;
  b.protocol(protocol)
      .seed(1)
      .nodes(12)
      .area(600.0, 600.0)
      .speed(0.1, 5.0)
      .connections(3)
      .duration(seconds(12));
  return b.transport(transport);
}

TEST(FlowMonitorIntegration, PerFlowSumsReconcileWithAggregateStats) {
  for (const routing::ProtocolEntry& entry : protocol_registry()) {
    const ScenarioResult r = Scenario::run_once(transport_scenario(entry.name).build());
    ASSERT_FALSE(r.flows.empty()) << entry.name;
    EXPECT_LE(r.flows.size(), 3u) << entry.name;  // O(active flows): one per source

    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t retransmissions = 0;
    for (const auto& [flow, fr] : r.flows) {
      rx_packets += fr.rx_packets;
      rx_bytes += fr.rx_bytes;
      tx_packets += fr.tx_packets;
      retransmissions += fr.retransmissions;
      // Every in-order delivery of a segment implies its first transmission.
      EXPECT_LE(fr.rx_packets, fr.tx_packets) << entry.name << " flow " << flow;
      EXPECT_EQ(fr.tx_bytes, fr.tx_packets * 512u) << entry.name << " flow " << flow;
      if (fr.rx_packets > 0) {
        EXPECT_GE(fr.last_rx, fr.first_tx) << entry.name << " flow " << flow;
        EXPECT_GT(fr.avg_delay_ms(), 0.0) << entry.name << " flow " << flow;
      }
    }
    // The reconciliation: the monitor's per-flow deliveries ARE the run's
    // delivered packets (512-byte payloads), its retransmission total IS the
    // run's, and nothing was transmitted that was never offered.
    EXPECT_EQ(rx_packets, r.data_delivered) << entry.name;
    EXPECT_EQ(rx_bytes, r.data_delivered * 512u) << entry.name;
    EXPECT_EQ(retransmissions, r.retransmissions) << entry.name;
    EXPECT_LE(tx_packets, r.data_originated) << entry.name;
  }
}

TEST(FlowMonitorIntegration, TransportOffRunsCarryNoFlowRecords) {
  ScenarioBuilder b = transport_scenario("AODV");
  const ScenarioResult r = Scenario::run_once(b.transport(TransportConfig{}).build());
  EXPECT_TRUE(r.flows.empty());
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_GT(r.data_delivered, 0u);
}

}  // namespace
}  // namespace manet
