// Determinism proof for the conservative parallel kernel (sharded mode).
//
// The contract: the merged event order — and therefore every observable
// metric — is a pure function of (scenario, seed), REGARDLESS of the shard
// count. Layers of proof:
//
//   1. Kernel: cross-shard handoffs preserve FIFO/seq order, merged pop
//      order across shard queues matches the single-queue order, and the
//      cross-shard FIFO never reorders equal-timestamp entries.
//   2. ShardMap: striping is a deterministic partition of the node set into
//      contiguous column bands.
//   3. Scenario: full metric fingerprints are byte-identical across
//      MANET_SHARDS ∈ {1, 2, 4} for all seven protocols, for a faulted run,
//      and for sweep aggregates; the sharded runs really do cross-shard
//      traffic (the identity is not vacuous).

#include "core/shard.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "fault/fault.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "testutil.hpp"
#include "transport/transport.hpp"

namespace manet {
namespace {

// ---------------------------------------------------------------------------
// 1. Kernel-level determinism
// ---------------------------------------------------------------------------

TEST(CrossShardQueue, FifoPreservesSeqOrderAtEqualTimestamps) {
  CrossShardQueue q;
  const SimTime t = milliseconds(5);
  for (std::uint64_t seq : {10u, 11u, 12u, 13u}) {
    q.push(t, seq, [] {});
  }
  ASSERT_EQ(q.size(), 4u);
  std::uint64_t prev = 0;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_EQ(e.at, t);
    EXPECT_GT(e.seq, prev);  // pop order == push order == seq order
    prev = e.seq;
  }
  EXPECT_EQ(q.total_pushed(), 4u);
}

TEST(Simulator, ShardedMergedOrderMatchesSingleQueueOrder) {
  // Same schedule pattern on a 1-shard and a 4-shard executive: the
  // callbacks must fire in the same global order.
  auto run = [](unsigned shards) {
    Simulator sim;
    sim.configure_shards(shards);
    std::vector<int> order;
    for (int i = 0; i < 40; ++i) {
      const auto shard = static_cast<std::uint32_t>(i % static_cast<int>(shards));
      const ShardScope scope(sim, shard);
      // Deliberate tie storm: only five distinct times across 40 events.
      sim.schedule(milliseconds(i % 5), [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  const auto baseline = run(1);
  EXPECT_EQ(run(2), baseline);
  EXPECT_EQ(run(4), baseline);
}

TEST(Simulator, CrossShardHandoffPreservesOrderAndCounts) {
  Simulator sim;
  sim.configure_shards(2);
  std::vector<int> order;
  {
    const ShardScope scope(sim, 0);
    // From shard 0's context, schedule alternately onto both shards at one
    // timestamp; execution must follow scheduling order exactly.
    for (int i = 0; i < 10; ++i) {
      // manet-lint: allow-foreign-schedule - kernel test drives the cross-shard handoff API directly
      sim.schedule_on(static_cast<std::uint32_t>(i % 2), milliseconds(3),
                      [&order, i] { order.push_back(i); });
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(sim.cross_shard_events(), 5u);  // the odd targets crossed 0 -> 1
  EXPECT_EQ(sim.events_executed(), 10u);
  EXPECT_EQ(sim.events_executed_on(0) + sim.events_executed_on(1), 10u);
}

TEST(Simulator, CancelWorksAcrossShardTaggedIds) {
  Simulator sim;
  sim.configure_shards(4);
  int fired = 0;
  const ShardScope scope(sim, 3);
  const EventId keep = sim.schedule(milliseconds(1), [&] { ++fired; });
  const EventId drop = sim.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.pending(keep));
  EXPECT_TRUE(sim.pending(drop));
  sim.cancel(drop);
  EXPECT_FALSE(sim.pending(drop));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.queue_size(), 0u);
}

// ---------------------------------------------------------------------------
// 2. ShardMap striping
// ---------------------------------------------------------------------------

TEST(ShardMap, StripedIsADeterministicPartition) {
  std::vector<Vec2> pos;
  for (int i = 0; i < 32; ++i) {
    pos.push_back({(static_cast<double>(i) + 0.5) * 1000.0 / 32.0, 500.0});
  }
  const Area area{1000.0, 1000.0};
  const ShardMap map = ShardMap::striped(pos, area, 550.0, 2);
  ASSERT_EQ(map.shards(), 2u);
  ASSERT_EQ(map.size(), pos.size());

  // Partition: every node in exactly one shard, members_ consistent with
  // shard_of, both shards populated for a uniform spread.
  std::size_t total = 0;
  for (unsigned s = 0; s < map.shards(); ++s) {
    const auto& members = map.nodes_of(s);
    EXPECT_FALSE(members.empty());
    total += members.size();
    for (const std::uint32_t id : members) EXPECT_EQ(map.shard_of(id), s);
  }
  EXPECT_EQ(total, pos.size());

  // Contiguous column bands: shard index is monotone in x for this layout.
  for (std::size_t i = 1; i < pos.size(); ++i) {
    EXPECT_GE(map.shard_of(static_cast<std::uint32_t>(i)),
              map.shard_of(static_cast<std::uint32_t>(i - 1)));
  }

  // Pure function of the inputs.
  const ShardMap again = ShardMap::striped(pos, area, 550.0, 2);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(again.shard_of(static_cast<std::uint32_t>(i)),
              map.shard_of(static_cast<std::uint32_t>(i)));
  }
}

TEST(ShardMap, DefaultMapsEverythingToShardZero) {
  const ShardMap map;
  EXPECT_EQ(map.shards(), 1u);
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(12345), 0u);
}

// ---------------------------------------------------------------------------
// 3. Scenario-level identity across shard counts
// ---------------------------------------------------------------------------

ScenarioBuilder small_scenario(Protocol p, std::uint64_t seed) {
  ScenarioBuilder b;
  b.protocol(p).seed(seed).nodes(14).area(650.0, 650.0).speed(0.1, 6.0).connections(4).duration(
      seconds(25));
  return b;
}

using test::result_fingerprint;

TEST(ShardIdentity, AllProtocolsByteIdenticalAcrossShardCounts) {
  for (const routing::ProtocolEntry& entry : protocol_registry()) {
    ScenarioBuilder b = small_scenario(Protocol::kAodv, 1).protocol(entry.name);
    const ScenarioResult one = Scenario::run_once(b.shards(1).build());
    const ScenarioResult two = Scenario::run_once(b.shards(2).build());
    const ScenarioResult four = Scenario::run_once(b.shards(4).build());

    EXPECT_EQ(result_fingerprint(two), result_fingerprint(one))
        << entry.name << " diverged at 2 shards";
    EXPECT_EQ(result_fingerprint(four), result_fingerprint(one))
        << entry.name << " diverged at 4 shards";

    // The identity must not be vacuous: the sharded runs really did split
    // the node set and hand events across the boundary.
    EXPECT_EQ(one.shards, 1u);
    EXPECT_EQ(two.shards, 2u);
    EXPECT_EQ(four.shards, 4u);
    EXPECT_EQ(one.cross_shard_events, 0u);
    EXPECT_GT(two.cross_shard_events, 0u) << entry.name << ": no cross-shard traffic at 2";
    EXPECT_GT(four.cross_shard_events, 0u) << entry.name << ": no cross-shard traffic at 4";

    // Per-shard counts partition the total.
    std::uint64_t sum = 0;
    ASSERT_EQ(two.events_per_shard.size(), 2u);
    for (const std::uint64_t n : two.events_per_shard) sum += n;
    EXPECT_EQ(sum, two.events);
  }
}

TEST(ShardIdentity, FaultedRunByteIdenticalAcrossShardCounts) {
  FaultConfig fault;
  fault.crash_rate = 1.0;
  fault.downtime_mean = seconds(5);
  fault.window_from = seconds(5);
  ScenarioBuilder b = small_scenario(Protocol::kAodv, 3);
  b.fault(fault);
  const ScenarioResult one = Scenario::run_once(b.shards(1).build());
  const ScenarioResult two = Scenario::run_once(b.shards(2).build());
  EXPECT_EQ(result_fingerprint(two), result_fingerprint(one));
  EXPECT_GT(two.cross_shard_events, 0u);
}

TEST(ShardIdentity, TransportRunsByteIdenticalAcrossShardCountsAndPinned) {
  // The reliable transport adds cross-node feedback loops (ACKs, RTO timers,
  // closed-loop sources) — exactly the machinery most likely to smuggle in a
  // shard-count dependence. Every protocol must stay byte-identical across
  // MANET_SHARDS ∈ {1, 2, 4} with transport on, and the 1-shard fingerprint
  // is pinned as a golden so silent behaviour drift is caught even when it
  // drifts consistently across shard counts.
  const struct {
    const char* protocol;
    const char* golden;
  } kGoldens[] = {
      {"AODV",
       "events=60675 orig=155 deliv=155 rtx=32 mac=1612 tretx=1 flows=4 "
       "pdr=1 delay=24.4912135355 nrl=0.206451612903 hops=1.66451612903 conn=1"},
      {"DSR",
       "events=60481 orig=155 deliv=155 rtx=36 mac=1612 tretx=0 flows=4 "
       "pdr=1 delay=6.65363146452 nrl=0.232258064516 hops=1.66451612903 conn=1"},
      {"CBRP",
       "events=71014 orig=155 deliv=155 rtx=233 mac=1735 tretx=0 flows=4 "
       "pdr=1 delay=6.29110536774 nrl=1.50322580645 hops=1.66451612903 conn=1"},
      {"DSDV",
       "events=74292 orig=155 deliv=155 rtx=464 mac=1622 tretx=0 flows=4 "
       "pdr=1 delay=6.1661884129 nrl=2.9935483871 hops=1.67741935484 conn=1"},
      {"OLSR",
       "events=67576 orig=155 deliv=155 rtx=282 mac=1591 tretx=0 flows=4 "
       "pdr=1 delay=5.99328171613 nrl=1.81935483871 hops=1.66451612903 conn=1"},
      {"LAR",
       "events=68359 orig=155 deliv=155 rtx=114 mac=1759 tretx=1 flows=4 "
       "pdr=1 delay=26.3854300194 nrl=0.735483870968 hops=1.85161290323 conn=1"},
      {"TORA",
       "events=74413 orig=155 deliv=155 rtx=489 mac=1600 tretx=1 flows=4 "
       "pdr=1 delay=25.1729141161 nrl=3.15483870968 hops=1.66451612903 conn=1"},
  };
  TransportConfig transport;
  transport.enabled = true;
  for (const auto& g : kGoldens) {
    ScenarioBuilder b = small_scenario(Protocol::kAodv, 1).protocol(g.protocol);
    b.transport(transport);
    const ScenarioResult one = Scenario::run_once(b.shards(1).build());
    const ScenarioResult two = Scenario::run_once(b.shards(2).build());
    const ScenarioResult four = Scenario::run_once(b.shards(4).build());
    test::expect_golden(result_fingerprint(one), g.golden, g.protocol);
    EXPECT_EQ(result_fingerprint(two), result_fingerprint(one))
        << g.protocol << " transport run diverged at 2 shards";
    EXPECT_EQ(result_fingerprint(four), result_fingerprint(one))
        << g.protocol << " transport run diverged at 4 shards";
    EXPECT_GT(two.cross_shard_events, 0u) << g.protocol;
    // Closed-loop traffic really flowed through the transport.
    EXPECT_FALSE(one.flows.empty()) << g.protocol;
  }
}

TEST(ShardIdentity, SweepAggregatesByteIdenticalAcrossShardCounts) {
  auto aggregate_for = [](std::uint32_t shards) {
    std::vector<SweepCell> cells;
    cells.push_back({"AODV", small_scenario(Protocol::kAodv, 1).shards(shards).build()});
    cells.push_back({"DSR", small_scenario(Protocol::kDsr, 1).shards(shards).build()});
    const SweepRunner runner(/*seeds=*/2);
    return runner.run(cells);
  };
  const SweepResult one = aggregate_for(1);
  const SweepResult two = aggregate_for(2);
  ASSERT_EQ(one.cells.size(), two.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const Aggregate& a = one.cells[i].aggregate;
    const Aggregate& b = two.cells[i].aggregate;
    EXPECT_EQ(a.pdr.mean, b.pdr.mean) << one.cells[i].label;
    EXPECT_EQ(a.delay_ms.mean, b.delay_ms.mean) << one.cells[i].label;
    EXPECT_EQ(a.nrl.mean, b.nrl.mean) << one.cells[i].label;
    EXPECT_EQ(a.nml.mean, b.nml.mean) << one.cells[i].label;
    EXPECT_EQ(a.throughput_kbps.mean, b.throughput_kbps.mean) << one.cells[i].label;
  }
}

}  // namespace
}  // namespace manet
