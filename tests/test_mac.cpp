#include "mac/wifi_mac.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulator.hpp"
#include "mobility/static_mobility.hpp"
#include "phy/channel.hpp"
#include "stats/stats.hpp"

namespace manet {
namespace {

class RecordingMacListener : public MacListener {
 public:
  void mac_deliver(const Packet& f) override { delivered.push_back(f); }
  void mac_link_failure(const Packet& f, NodeId next) override {
    failures.emplace_back(f, next);
  }
  std::vector<Packet> delivered;
  std::vector<std::pair<Packet, NodeId>> failures;
};

/// N static nodes with full MAC stacks (no routing, no ARP).
struct MacNet {
  explicit MacNet(const std::vector<Vec2>& positions, MacConfig mac_cfg = {},
                  PhyConfig phy_cfg = {}) {
    channel = std::make_unique<Channel>(sim, phy_cfg, Area{3000.0, 3000.0});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      mobs.push_back(std::make_unique<StaticMobility>(positions[i]));
      trx.push_back(std::make_unique<Transceiver>(sim, phy_cfg, static_cast<NodeId>(i)));
      macs.push_back(std::make_unique<WifiMac>(sim, mac_cfg, *trx.back(), stats,
                                               RngStream(1, "mac", i)));
      listeners.push_back(std::make_unique<RecordingMacListener>());
      macs.back()->set_listener(listeners.back().get());
      channel->add(trx.back().get(), mobs.back().get());
    }
    channel->start();
  }

  void send(NodeId src, NodeId dst, PacketKind kind = PacketKind::kData,
            std::size_t payload = 100) {
    Packet p;
    p.kind = kind;
    p.mac.dst = dst;
    p.ip.src = src;
    p.ip.dst = dst;
    p.payload_bytes = payload;
    macs[src]->enqueue(std::move(p));
  }

  Simulator sim;
  StatsCollector stats;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<Transceiver>> trx;
  std::vector<std::unique_ptr<WifiMac>> macs;
  std::vector<std::unique_ptr<RecordingMacListener>> listeners;
};

TEST(Mac, UnicastUsesRtsCtsDataAck) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.send(0, 1);
  net.sim.run_until(net.sim.now() + seconds(30));
  ASSERT_EQ(net.listeners[1]->delivered.size(), 1u);
  EXPECT_EQ(net.stats.mac_ctrl_tx(), 3u);  // RTS + CTS + ACK
  EXPECT_EQ(net.stats.data_tx(), 1u);
}

TEST(Mac, UnicastWithoutRtsWhenDisabled) {
  MacConfig cfg;
  cfg.use_rts = false;
  MacNet net({{0.0, 0.0}, {200.0, 0.0}}, cfg);
  net.send(0, 1);
  net.sim.run_until(net.sim.now() + seconds(30));
  ASSERT_EQ(net.listeners[1]->delivered.size(), 1u);
  EXPECT_EQ(net.stats.mac_ctrl_tx(), 1u);  // ACK only
}

TEST(Mac, BroadcastHasNoControlFrames) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}, {0.0, 200.0}});
  net.send(0, kBroadcast);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->delivered.size(), 1u);
  EXPECT_EQ(net.listeners[2]->delivered.size(), 1u);
  EXPECT_EQ(net.stats.mac_ctrl_tx(), 0u);
}

TEST(Mac, RetryExhaustionReportsLinkFailure) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.send(0, 77);  // nobody home
  net.sim.run_until(net.sim.now() + seconds(30));
  ASSERT_EQ(net.listeners[0]->failures.size(), 1u);
  EXPECT_EQ(net.listeners[0]->failures[0].second, 77u);
  // 7 RTS attempts, no CTS ever.
  EXPECT_EQ(net.stats.mac_ctrl_tx(), 7u);
}

TEST(Mac, FailedFrameDoesNotBlockQueue) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.send(0, 77);  // will fail
  net.send(0, 1);   // must still go through
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->delivered.size(), 1u);
  EXPECT_EQ(net.listeners[0]->failures.size(), 1u);
}

TEST(Mac, QueueOverflowDropsData) {
  MacConfig cfg;
  cfg.ifq_capacity = 5;
  MacNet small({{0.0, 0.0}, {200.0, 0.0}}, cfg);
  for (int i = 0; i < 20; ++i) small.send(0, 1);
  small.sim.run_until(small.sim.now() + seconds(30));
  // 1 in service + 5 queued accepted; the rest dropped.
  EXPECT_EQ(small.stats.drops(DropReason::kIfqFull), 14u);
  EXPECT_EQ(small.listeners[1]->delivered.size(), 6u);
}

TEST(Mac, QueueLengthReflectsBacklog) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  EXPECT_EQ(net.macs[0]->queue_length(), 0u);
  net.send(0, 1);
  net.send(0, 1);
  EXPECT_EQ(net.macs[0]->queue_length(), 2u);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.macs[0]->queue_length(), 0u);
}

TEST(Mac, ContendersAllDeliverEventually) {
  // Five stations within range of a hub (and of each other) send at once:
  // carrier sense + backoff must serialize them.
  MacNet net({{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}, {100.0, 100.0},
              {50.0, 50.0}, {60.0, 20.0}});
  for (NodeId s = 1; s <= 5; ++s) net.send(s, 0);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[0]->delivered.size(), 5u);
  EXPECT_TRUE(net.listeners[0]->failures.empty());
}

TEST(Mac, HiddenTerminalsStillDeliverWithRtsCts) {
  // 0 and 2 cannot carrier-sense each other (600 m apart with a 400 m CS
  // range) but both reach 1: the classic hidden-terminal setup. RTS/CTS plus
  // retries must still get every frame through.
  MacNet hidden({{0.0, 0.0}, {300.0, 0.0}, {600.0, 0.0}},
                MacConfig{},
                PhyConfig{.rx_range_m = 320.0, .cs_range_m = 400.0});
  for (int i = 0; i < 5; ++i) {
    hidden.send(0, 1);
    hidden.send(2, 1);
  }
  hidden.sim.run_until(hidden.sim.now() + seconds(60));
  EXPECT_EQ(hidden.listeners[1]->delivered.size(), 10u);
}

TEST(Mac, DuplicateRetransmissionFilteredButAcked) {
  // Craft the duplicate scenario directly: same src/seq with retry flag.
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  Packet p;
  p.kind = PacketKind::kData;
  p.mac.type = MacFrameType::kData;
  p.mac.src = 0;
  p.mac.dst = 1;
  p.mac.seq = 42;
  p.payload_bytes = 10;
  net.trx[0]->transmit(p);
  net.sim.run_until(net.sim.now() + seconds(30));
  Packet dup = p;
  dup.mac.retry = true;
  net.trx[0]->transmit(dup);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->delivered.size(), 1u);  // filtered
  EXPECT_EQ(net.stats.mac_ctrl_tx(), 2u);             // but both ACKed
}

TEST(Mac, DistinctSeqNotFiltered) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.send(0, 1);
  net.send(0, 1);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->delivered.size(), 2u);
}

TEST(Mac, NavDefersThirdParty) {
  // 2 overhears the RTS/CTS exchange between 0 and 1 and must not start its
  // own transmission into the middle of it; everything still delivers.
  MacNet net({{0.0, 0.0}, {200.0, 0.0}, {100.0, 170.0}});
  net.send(0, 1, PacketKind::kData, 1000);
  net.sim.schedule(microseconds(300), [&] { net.send(2, 1); });
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->delivered.size(), 2u);
  EXPECT_TRUE(net.listeners[0]->failures.empty());
  EXPECT_TRUE(net.listeners[2]->failures.empty());
}

TEST(Mac, ControlPacketCountsAsRoutingTx) {
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.send(0, kBroadcast, PacketKind::kRoutingControl);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.stats.routing_tx(), 1u);
  EXPECT_EQ(net.stats.data_tx(), 0u);
}

TEST(Mac, RetriesCountEachTransmission) {
  // Data retransmissions (ACK lost is hard to force; instead count RTS
  // retries towards an absent peer).
  MacNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.send(0, 77);
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.stats.data_tx(), 0u);  // data frame never launched (no CTS)
  EXPECT_EQ(net.stats.mac_ctrl_tx(), 7u);
}

}  // namespace
}  // namespace manet
