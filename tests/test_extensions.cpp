// Tests for the substrate extensions: channel frame-loss model, radio energy
// accounting, event tracing, AODV local repair, and the scenario hooks that
// expose them.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "routing/aodv/aodv.hpp"
#include "scenario/scenario.hpp"
#include "testutil.hpp"
#include "trace/trace.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory aodv_factory(aodv::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<aodv::Aodv>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

// ---------------------------------------------------------------------------
// Frame-loss model
// ---------------------------------------------------------------------------

TEST(FrameLoss, ZeroRateIsIdeal) {
  PhyConfig phy;
  phy.frame_loss_rate = 0.0;
  TestNet net(line_positions(2), aodv_factory(), 1, phy);
  for (std::uint32_t i = 0; i < 20; ++i) net.send_data(0, 1, 0, i);
  net.run_for(seconds(10));
  EXPECT_EQ(net.stats().data_delivered(), 20u);
}

TEST(FrameLoss, LossyChannelStillDeliversViaRetries) {
  PhyConfig phy;
  phy.frame_loss_rate = 0.2;
  TestNet net(line_positions(2), aodv_factory(), 1, phy);
  for (std::uint32_t i = 0; i < 20; ++i) net.send_data(0, 1, 0, i);
  net.run_for(seconds(20));
  // MAC retransmissions recover most unicast losses.
  EXPECT_GE(net.stats().data_delivered(), 15u);
  // But the channel visibly cost extra transmissions.
  EXPECT_GT(net.stats().mac_ctrl_tx(), 3u * net.stats().data_delivered());
}

TEST(FrameLoss, ExtremeLossBreaksConnectivity) {
  PhyConfig phy;
  phy.frame_loss_rate = 0.95;
  TestNet net(line_positions(2), aodv_factory(), 1, phy);
  for (std::uint32_t i = 0; i < 10; ++i) net.send_data(0, 1, 0, i);
  net.run_for(seconds(30));
  EXPECT_LT(net.stats().data_delivered(), 10u);
  EXPECT_GT(net.stats().total_drops(), 0u);
}

// ---------------------------------------------------------------------------
// Energy accounting
// ---------------------------------------------------------------------------

TEST(Energy, TransmissionsAndReceptionsCharge) {
  TestNet net(line_positions(2), aodv_factory());
  net.send_data(0, 1);
  net.run_for(seconds(2));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_GT(net.stats().energy_tx_j(), 0.0);
  EXPECT_GT(net.stats().energy_rx_j(), 0.0);
  EXPECT_GT(net.stats().energy_per_delivered_mj(), 0.0);
}

TEST(Energy, ScalesWithTraffic) {
  auto run_with = [](int packets) {
    TestNet net(line_positions(2), aodv_factory());
    for (int i = 0; i < packets; ++i) net.send_data(0, 1, 0, static_cast<std::uint32_t>(i));
    net.run_for(seconds(20));
    return net.stats().energy_tx_j();
  };
  EXPECT_GT(run_with(50), run_with(5) * 2.0);
}

TEST(Energy, IdleNetworkWithReactiveProtocolUsesNone) {
  TestNet net(line_positions(3), aodv_factory());
  net.run_for(seconds(10));  // AODV is silent with no traffic
  EXPECT_DOUBLE_EQ(net.stats().energy_tx_j(), 0.0);
}

// ---------------------------------------------------------------------------
// Trace writer
// ---------------------------------------------------------------------------

TEST(Trace, RecordsLifecycleEvents) {
  const std::string path = ::testing::TempDir() + "/manet_trace_test.tr";
  {
    TraceWriter tw(path);
    ASSERT_TRUE(tw.ok());
    TestNet net(line_positions(3), aodv_factory());
    for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_trace(&tw);
    net.send_data(0, 2);
    net.run_for(seconds(3));
    ASSERT_EQ(net.stats().data_delivered(), 1u);
    EXPECT_GE(tw.lines(), 3u);  // s at 0, f at 1, r at 2
    tw.flush();
  }
  std::ifstream in(path);
  std::string line;
  int sends = 0, forwards = 0, receives = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == 's' && line.find("cbr") != std::string::npos) ++sends;
    if (line[0] == 'f') ++forwards;
    if (line[0] == 'r') ++receives;
    EXPECT_NE(line.find("RTR"), std::string::npos);
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(forwards, 1);
  EXPECT_EQ(receives, 1);
  std::remove(path.c_str());
}

TEST(Trace, DropsCarryReason) {
  const std::string path = ::testing::TempDir() + "/manet_trace_drop.tr";
  {
    TraceWriter tw(path);
    TestNet net(line_positions(2), aodv_factory());
    for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_trace(&tw);
    net.send_data(0, 55);  // unreachable
    net.run_for(seconds(60));
    tw.flush();
  }
  std::ifstream in(path);
  std::string line;
  bool saw_drop = false;
  while (std::getline(in, line)) {
    if (line[0] == 'D') {
      saw_drop = true;
      // AODV gives up on the unreachable destination through its send
      // buffer: either the retries exhaust (no-route) or the packet ages out.
      EXPECT_TRUE(line.find("no-route") != std::string::npos ||
                  line.find("buffer-timeout") != std::string::npos)
          << line;
    }
  }
  EXPECT_TRUE(saw_drop);
  std::remove(path.c_str());
}

TEST(Trace, ScenarioIntegration) {
  const std::string path = ::testing::TempDir() + "/manet_trace_scn.tr";
  ScenarioConfig cfg;
  cfg.num_nodes = 10;
  cfg.area = {500.0, 500.0};
  cfg.num_connections = 2;
  cfg.duration = seconds(20);
  cfg.trace_path = path;
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.data_originated, 0u);
  std::ifstream in(path);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_TRUE(first[0] == 's' || first[0] == 'f' || first[0] == 'r' || first[0] == 'D');
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// AODV local repair
// ---------------------------------------------------------------------------

TEST(AodvLocalRepair, IntermediateNodeRepairsAroundBreak) {
  // 0-1-2 with a standby relay 3 near 1; destination 2 drifts out of 1's
  // range but stays within 3's. With local repair, node 1 re-discovers 2
  // itself and forwards the stranded packet; the flow keeps delivering.
  aodv::Config cfg;
  cfg.local_repair = true;
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {250.0, 150.0}};
  TestNet net(pos, aodv_factory(cfg));
  net.send_data(0, 2);
  net.run_for(seconds(2));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(2).set_position({420.0, 280.0});  // d(1,2)=356, d(3,2)=214
  net.run_for(seconds(1));
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(10));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(AodvLocalRepair, OffByDefaultDropsAtIntermediate) {
  aodv::Config cfg;  // local_repair = false
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {250.0, 150.0}};
  TestNet net(pos, aodv_factory(cfg));
  net.send_data(0, 2);
  net.run_for(seconds(2));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(2).set_position({420.0, 280.0});
  net.run_for(seconds(1));
  net.send_data(0, 2, 0, 1);
  net.run_for(milliseconds(500));
  // The stranded packet is gone (counted), though the source will
  // eventually rediscover for future packets.
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_GE(net.stats().drops(DropReason::kMacRetryLimit) +
                net.stats().drops(DropReason::kArpFail),
            0u);
}

// ---------------------------------------------------------------------------
// Exponential ON/OFF traffic
// ---------------------------------------------------------------------------

TEST(OnOffTraffic, SendsInBursts) {
  TestNet net(line_positions(2), aodv_factory());
  OnOffSource::Config cfg;
  cfg.dst = 1;
  cfg.interval = milliseconds(100);
  cfg.burst_mean = seconds(2);
  cfg.idle_mean = seconds(2);
  cfg.start = seconds(1);
  cfg.stop = seconds(60);
  OnOffSource src(net.node(0), cfg, RngStream(3, "onoff", 0));
  src.start();
  net.run_for(seconds(61));
  const auto sent = src.packets_sent();
  EXPECT_GT(sent, 0u);
  // ~Half the time is idle: strictly less than a continuous CBR would send.
  const auto cbr_equivalent = static_cast<std::uint32_t>(59.0 / 0.1);
  EXPECT_LT(sent, cbr_equivalent * 9 / 10);
  EXPECT_EQ(net.stats().data_originated(), sent);
}

TEST(OnOffTraffic, StopsAtStopTime) {
  TestNet net(line_positions(2), aodv_factory());
  OnOffSource::Config cfg;
  cfg.dst = 1;
  cfg.start = seconds(1);
  cfg.stop = seconds(5);
  OnOffSource src(net.node(0), cfg, RngStream(4, "onoff", 0));
  src.start();
  net.run_for(seconds(5));
  const auto at_stop = src.packets_sent();
  net.run_for(seconds(20));
  EXPECT_LE(src.packets_sent(), at_stop + 1);  // at most one in-flight tick
}

TEST(OnOffTraffic, ScenarioIntegration) {
  ScenarioConfig cfg;
  cfg.traffic = TrafficKind::kOnOff;
  cfg.num_nodes = 15;
  cfg.area = {600.0, 600.0};
  cfg.v_max = 5.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(40);
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.data_originated, 0u);
  EXPECT_GT(r.pdr, 0.3);
  EXPECT_NE(cfg.parameter_table().find("on/off"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario-level mobility-kind selection
// ---------------------------------------------------------------------------

class MobilityKinds : public ::testing::TestWithParam<MobilityKind> {};

TEST_P(MobilityKinds, ScenarioRunsAndDelivers) {
  ScenarioConfig cfg;
  cfg.mobility = GetParam();
  cfg.num_nodes = 20;
  cfg.area = {600.0, 600.0};
  cfg.v_max = 5.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(40);
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.data_originated, 0u);
  EXPECT_GT(r.pdr, 0.3) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, MobilityKinds,
                         ::testing::Values(MobilityKind::kRandomWaypoint,
                                           MobilityKind::kRandomWalk,
                                           MobilityKind::kGaussMarkov,
                                           MobilityKind::kManhattan),
                         [](const ::testing::TestParamInfo<MobilityKind>& param_info) {
                           switch (param_info.param) {
                             case MobilityKind::kRandomWaypoint: return "waypoint";
                             case MobilityKind::kRandomWalk: return "walk";
                             case MobilityKind::kGaussMarkov: return "gaussmarkov";
                             case MobilityKind::kManhattan: return "manhattan";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace manet
