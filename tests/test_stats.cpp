#include "stats/stats.hpp"

#include <gtest/gtest.h>

namespace manet {
namespace {

TEST(Stats, FreshCollectorIsClean) {
  StatsCollector s;
  EXPECT_EQ(s.data_originated(), 0u);
  EXPECT_EQ(s.data_delivered(), 0u);
  EXPECT_DOUBLE_EQ(s.pdr(), 1.0);  // nothing sent -> vacuous success
  EXPECT_DOUBLE_EQ(s.avg_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.nrl(), 0.0);
  EXPECT_DOUBLE_EQ(s.nml(), 0.0);
  EXPECT_EQ(s.total_drops(), 0u);
}

TEST(Stats, Pdr) {
  StatsCollector s;
  for (int i = 0; i < 10; ++i) s.on_data_originated();
  for (int i = 0; i < 7; ++i) s.on_data_delivered(milliseconds(10), 512, 2);
  EXPECT_DOUBLE_EQ(s.pdr(), 0.7);
}

TEST(Stats, AvgDelayAndHops) {
  StatsCollector s;
  s.on_data_delivered(milliseconds(10), 512, 1);
  s.on_data_delivered(milliseconds(30), 512, 3);
  EXPECT_DOUBLE_EQ(s.avg_delay_s(), 0.020);
  EXPECT_DOUBLE_EQ(s.avg_hops(), 2.0);
}

TEST(Stats, NrlCountsPerTransmission) {
  StatsCollector s;
  s.on_data_originated();
  s.on_data_delivered(milliseconds(1), 512, 1);
  for (int i = 0; i < 6; ++i) s.on_routing_tx(24);
  EXPECT_DOUBLE_EQ(s.nrl(), 6.0);
  EXPECT_EQ(s.routing_bytes(), 6u * 24u);
}

TEST(Stats, NrlFiniteWithZeroDelivered) {
  StatsCollector s;
  s.on_data_originated();
  s.on_routing_tx(24);
  EXPECT_DOUBLE_EQ(s.nrl(), 1.0);  // normalized by 1
}

TEST(Stats, NmlSumsAllControl) {
  StatsCollector s;
  s.on_data_delivered(milliseconds(1), 512, 1);
  s.on_routing_tx(24);   // 1
  s.on_mac_ctrl_tx();    // RTS
  s.on_mac_ctrl_tx();    // CTS
  s.on_mac_ctrl_tx();    // ACK
  s.on_arp_tx();         // ARP
  EXPECT_DOUBLE_EQ(s.nml(), 5.0);
}

TEST(Stats, Throughput) {
  StatsCollector s;
  // 100 packets x 512 B over 10 s = 40.96 kbit/s.
  for (int i = 0; i < 100; ++i) s.on_data_delivered(milliseconds(5), 512, 1);
  EXPECT_NEAR(s.throughput_bps(seconds(10)), 40960.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.throughput_bps(SimTime::zero()), 0.0);
}

TEST(Stats, DropAccounting) {
  StatsCollector s;
  s.on_data_dropped(DropReason::kIfqFull);
  s.on_data_dropped(DropReason::kIfqFull);
  s.on_data_dropped(DropReason::kNoRoute);
  EXPECT_EQ(s.drops(DropReason::kIfqFull), 2u);
  EXPECT_EQ(s.drops(DropReason::kNoRoute), 1u);
  EXPECT_EQ(s.drops(DropReason::kTtlExpired), 0u);
  EXPECT_EQ(s.total_drops(), 3u);
}

TEST(Stats, DropReasonNames) {
  for (int i = 0; i < static_cast<int>(DropReason::kCount_); ++i) {
    const char* name = to_string(static_cast<DropReason>(i));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "?");
  }
}

TEST(Stats, PerFlowBreakdown) {
  StatsCollector s;
  s.on_data_originated(1);
  s.on_data_originated(1);
  s.on_data_originated(2);
  s.on_data_delivered(milliseconds(10), 512, 1, 1);
  s.on_data_delivered(milliseconds(30), 512, 2, 2);
  const auto f1 = s.flow(1);
  EXPECT_EQ(f1.originated, 2u);
  EXPECT_EQ(f1.delivered, 1u);
  EXPECT_DOUBLE_EQ(f1.pdr(), 0.5);
  EXPECT_DOUBLE_EQ(f1.avg_delay_s(), 0.010);
  const auto f2 = s.flow(2);
  EXPECT_DOUBLE_EQ(f2.pdr(), 1.0);
  EXPECT_DOUBLE_EQ(f2.avg_delay_s(), 0.030);
  // Unknown flow: clean zeros.
  EXPECT_EQ(s.flow(9).originated, 0u);
  EXPECT_DOUBLE_EQ(s.flow(9).pdr(), 1.0);
  // Enumeration sorted by id, consistent with the global counters.
  const auto all = s.flows();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, 1u);
  EXPECT_EQ(all[1].first, 2u);
  std::uint64_t sum_orig = 0, sum_del = 0;
  for (const auto& [id, f] : all) {
    sum_orig += f.originated;
    sum_del += f.delivered;
  }
  EXPECT_EQ(sum_orig, s.data_originated());
  EXPECT_EQ(sum_del, s.data_delivered());
}

TEST(Stats, SummaryListsPerFlowCounts) {
  StatsCollector s;
  s.on_data_originated(3);
  s.on_data_delivered(milliseconds(5), 512, 1, 3);
  const std::string text = s.summary(seconds(10));
  EXPECT_NE(text.find("per-flow"), std::string::npos);
  EXPECT_NE(text.find("#3=1/1"), std::string::npos);
}

TEST(Stats, SummaryMentionsKeyNumbers) {
  StatsCollector s;
  s.on_data_originated();
  s.on_data_delivered(milliseconds(10), 512, 2);
  s.on_data_dropped(DropReason::kNoRoute);
  const std::string text = s.summary(seconds(10));
  EXPECT_NE(text.find("PDR"), std::string::npos);
  EXPECT_NE(text.find("no-route"), std::string::npos);
}

}  // namespace
}  // namespace manet
