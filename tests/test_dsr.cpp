#include "routing/dsr/dsr.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory dsr_factory(dsr::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<dsr::Dsr>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

dsr::Dsr& as_dsr(RoutingProtocol& rp) { return dynamic_cast<dsr::Dsr&>(rp); }

TEST(Dsr, Name) {
  TestNet net(line_positions(2), dsr_factory());
  EXPECT_STREQ(net.routing(0).name(), "DSR");
}

TEST(Dsr, DeliversOverOneHop) {
  TestNet net(line_positions(2), dsr_factory());
  net.send_data(0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
}

TEST(Dsr, DeliversOverMultipleHops) {
  TestNet net(line_positions(5), dsr_factory());
  net.send_data(0, 4);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.stats().avg_hops(), 4.0);
}

TEST(Dsr, DiscoveryPopulatesCache) {
  TestNet net(line_positions(4), dsr_factory());
  net.send_data(0, 3);
  net.run_for(seconds(3));
  const auto path = as_dsr(net.routing(0)).cache().find(3, net.sim().now());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (dsr::Path{0, 1, 2, 3}));
}

TEST(Dsr, IntermediateNodesLearnReversePath) {
  TestNet net(line_positions(4), dsr_factory());
  net.send_data(0, 3);
  net.run_for(seconds(3));
  // Node 2 relayed the RREQ and cached a route back to the originator.
  const auto back = as_dsr(net.routing(2)).cache().find(0, net.sim().now());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->front(), 2u);
  EXPECT_EQ(back->back(), 0u);
}

TEST(Dsr, CachedRouteSkipsDiscovery) {
  TestNet net(line_positions(3), dsr_factory());
  net.send_data(0, 2);
  net.run_for(seconds(3));
  const auto tx = net.stats().routing_tx();
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
  EXPECT_EQ(net.stats().routing_tx(), tx);
}

TEST(Dsr, NonPropagatingQueryAnswersNeighborCheaply) {
  TestNet net(line_positions(6), dsr_factory());
  net.send_data(0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_LE(net.stats().routing_tx(), 3u);  // ring-0 RREQ + RREP
}

TEST(Dsr, IntermediateReplyFromCache) {
  dsr::Config plain;
  dsr::Config no_cache_reply;
  no_cache_reply.intermediate_reply = false;
  std::uint64_t with = 0, without = 0;
  for (int variant = 0; variant < 2; ++variant) {
    TestNet net(line_positions(4), dsr_factory(variant == 0 ? plain : no_cache_reply));
    net.send_data(1, 3);  // node 1 learns [1,2,3]
    net.run_for(seconds(3));
    net.send_data(0, 3);  // node 1 may splice [0,1]+[1,2,3]
    net.run_for(seconds(3));
    EXPECT_EQ(net.stats().data_delivered(), 2u);
    (variant == 0 ? with : without) = net.stats().routing_tx();
  }
  EXPECT_LT(with, without);
}

TEST(Dsr, SalvageReroutesStrandedPacket) {
  // 0-1-2 with a standby relay 3 near 1 and 2.
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {250.0, 150.0}};
  TestNet net(pos, dsr_factory());
  net.send_data(0, 2);
  net.run_for(seconds(2));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  // Give node 1 an alternative path and break the 1->2 link by moving 2 to a
  // spot only 3 can reach.
  net.mobility(2).set_position({420.0, 280.0});  // d(1,2)=356, d(3,2)=214
  net.run_for(seconds(1));
  as_dsr(net.routing(1)).cache().add({1, 3, 2}, net.sim().now());
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(5));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(Dsr, RouteErrorReachesSourceAndPurgesLink) {
  dsr::Config cfg;
  cfg.salvage = false;
  std::vector<Vec2> pos = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}, {200.0, 150.0}};
  // Detour: 0-3 (250 m) and 3-2 (250 m).
  TestNet net(pos, dsr_factory(cfg));
  net.send_data(0, 2);
  net.run_for(seconds(2));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  net.mobility(1).set_position({2000.0, 2000.0});
  net.run_for(seconds(1));
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(15));
  // Source learned of the break, rediscovered via 3, and delivered.
  EXPECT_EQ(net.stats().data_delivered(), 2u);
  const auto path = as_dsr(net.routing(0)).cache().find(2, net.sim().now());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (dsr::Path{0, 3, 2}));
}

TEST(Dsr, UnreachableTargetGivesUp) {
  TestNet net(line_positions(2), dsr_factory());
  net.send_data(0, 50);
  net.run_for(seconds(120));
  EXPECT_EQ(net.stats().data_delivered(), 0u);
  EXPECT_GT(net.stats().drops(DropReason::kNoRoute) +
                net.stats().drops(DropReason::kBufferTimeout),
            0u);
}

TEST(Dsr, SourceRouteBytesGrowWithPathLength) {
  // Longer paths mean bigger headers: verify via delivered-byte accounting.
  TestNet short_net(line_positions(2), dsr_factory());
  short_net.send_data(0, 1);
  short_net.run_for(seconds(2));
  TestNet long_net(line_positions(6), dsr_factory());
  long_net.send_data(0, 5);
  long_net.run_for(seconds(5));
  EXPECT_EQ(short_net.stats().data_delivered(), 1u);
  EXPECT_EQ(long_net.stats().data_delivered(), 1u);
}

}  // namespace
}  // namespace manet
