#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulator.hpp"
#include "mobility/static_mobility.hpp"
#include "phy/channel.hpp"
#include "phy/transceiver.hpp"

namespace manet {
namespace {

/// Records everything the PHY reports upward.
class RecordingListener : public PhyListener {
 public:
  void phy_busy_start() override { ++busy_starts; }
  void phy_busy_end() override { ++busy_ends; }
  void phy_rx(const Packet& f) override { frames.push_back(f); }

  int busy_starts = 0;
  int busy_ends = 0;
  std::vector<Packet> frames;
};

/// N static transceivers on a channel, with recording listeners.
struct PhyNet {
  explicit PhyNet(const std::vector<Vec2>& positions, PhyConfig cfg = {}) {
    channel = std::make_unique<Channel>(sim, cfg, Area{3000.0, 3000.0});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      mobs.push_back(std::make_unique<StaticMobility>(positions[i]));
      trx.push_back(std::make_unique<Transceiver>(sim, cfg, static_cast<NodeId>(i)));
      listeners.push_back(std::make_unique<RecordingListener>());
      trx.back()->set_listener(listeners.back().get());
      channel->add(trx.back().get(), mobs.back().get());
    }
    channel->start();
  }

  Packet data_frame(NodeId src, NodeId dst, std::size_t payload = 100) {
    Packet p;
    p.kind = PacketKind::kData;
    p.mac.type = MacFrameType::kData;
    p.mac.src = src;
    p.mac.dst = dst;
    p.payload_bytes = payload;
    return p;
  }

  Simulator sim;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<StaticMobility>> mobs;
  std::vector<std::unique_ptr<Transceiver>> trx;
  std::vector<std::unique_ptr<RecordingListener>> listeners;
};

TEST(Phy, AirtimeMath) {
  PhyConfig cfg;  // 2 Mbit/s, 192 us preamble
  // 500 bytes = 4000 bits = 2 ms at 2 Mbit/s, plus preamble.
  EXPECT_EQ(cfg.airtime(500), microseconds(192) + milliseconds(2));
}

TEST(Phy, PropagationDelay) {
  PhyConfig cfg;
  EXPECT_EQ(cfg.propagation(300.0), microseconds(1));
  EXPECT_GT(cfg.max_propagation(), SimTime::zero());
}

TEST(Phy, InRangeReceiverGetsFrame) {
  PhyNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.trx[0]->transmit(net.data_frame(0, 1));
  net.sim.run_until(net.sim.now() + seconds(30));
  ASSERT_EQ(net.listeners[1]->frames.size(), 1u);
  EXPECT_EQ(net.listeners[1]->frames[0].mac.src, 0u);
}

TEST(Phy, CarrierOnlyBetweenRxAndCsRange) {
  PhyNet net({{0.0, 0.0}, {400.0, 0.0}});  // 400 m: beyond 250, inside 550
  net.trx[0]->transmit(net.data_frame(0, 1));
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_TRUE(net.listeners[1]->frames.empty());
  EXPECT_EQ(net.listeners[1]->busy_starts, 1);
  EXPECT_EQ(net.listeners[1]->busy_ends, 1);
}

TEST(Phy, BeyondCsRangeHearsNothing) {
  PhyNet net({{0.0, 0.0}, {600.0, 0.0}});
  net.trx[0]->transmit(net.data_frame(0, 1));
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_TRUE(net.listeners[1]->frames.empty());
  EXPECT_EQ(net.listeners[1]->busy_starts, 0);
}

TEST(Phy, SenderSelfBusyDuringTransmit) {
  PhyNet net({{0.0, 0.0}, {200.0, 0.0}});
  EXPECT_FALSE(net.trx[0]->medium_busy());
  net.trx[0]->transmit(net.data_frame(0, 1));
  EXPECT_TRUE(net.trx[0]->medium_busy());
  EXPECT_TRUE(net.trx[0]->transmitting());
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_FALSE(net.trx[0]->medium_busy());
}

TEST(Phy, FrameArrivesAfterPropagationDelay) {
  PhyNet net({{0.0, 0.0}, {240.0, 0.0}});  // 0.8 us propagation, within range
  const SimTime air = net.trx[0]->transmit(net.data_frame(0, 1));
  // The frame completes at air + 0.8 us at the receiver.
  net.sim.run_until(air);
  EXPECT_TRUE(net.listeners[1]->frames.empty());
  net.sim.run_until(air + microseconds(2));
  EXPECT_EQ(net.listeners[1]->frames.size(), 1u);
}

TEST(Phy, OverlappingTransmissionsCollideAtReceiver) {
  // 0 and 2 both in range of 1 but out of range of each other.
  PhyNet net({{0.0, 0.0}, {240.0, 0.0}, {480.0, 0.0}});
  net.trx[0]->transmit(net.data_frame(0, 1));
  net.trx[2]->transmit(net.data_frame(2, 1));
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_TRUE(net.listeners[1]->frames.empty());
  EXPECT_EQ(net.trx[1]->frames_corrupted(), 2u);
}

TEST(Phy, StaggeredNonOverlappingFramesBothArrive) {
  PhyNet net({{0.0, 0.0}, {240.0, 0.0}, {480.0, 0.0}});
  net.trx[0]->transmit(net.data_frame(0, 1, 50));
  const SimTime gap = net.channel->config().airtime(50 + kMacDataHeaderBytes +
                                                    kIpHeaderBytes + kUdpHeaderBytes) +
                      milliseconds(1);
  net.sim.schedule(gap, [&] { net.trx[2]->transmit(net.data_frame(2, 1, 50)); });
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->frames.size(), 2u);
}

TEST(Phy, HalfDuplexReceiverLosesFrameWhileTransmitting) {
  PhyNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.trx[0]->transmit(net.data_frame(0, 1, 200));
  // Node 1 starts its own transmission while 0's frame is in flight.
  net.sim.schedule(microseconds(50), [&] { net.trx[1]->transmit(net.data_frame(1, 0, 10)); });
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_TRUE(net.listeners[1]->frames.empty());
  EXPECT_EQ(net.trx[1]->frames_corrupted(), 1u);
  // Node 0 also loses 1's frame: it was transmitting when it started arriving.
  EXPECT_TRUE(net.listeners[0]->frames.empty());
}

TEST(Phy, InterferenceFromCarrierOnlyCorruptsFrame) {
  // 1 receives from 0 (in range); 2 is at 500 m from 1 — carrier only —
  // and transmits concurrently, destroying the frame.
  PhyNet net({{0.0, 0.0}, {240.0, 0.0}, {740.0, 0.0}});
  net.trx[0]->transmit(net.data_frame(0, 1));
  net.trx[2]->transmit(net.data_frame(2, kBroadcast));
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_TRUE(net.listeners[1]->frames.empty());
}

TEST(Phy, BroadcastReachesAllInRange) {
  PhyNet net({{0.0, 0.0}, {200.0, 0.0}, {0.0, 200.0}, {2000.0, 2000.0}});
  net.trx[0]->transmit(net.data_frame(0, kBroadcast));
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_EQ(net.listeners[1]->frames.size(), 1u);
  EXPECT_EQ(net.listeners[2]->frames.size(), 1u);
  EXPECT_TRUE(net.listeners[3]->frames.empty());
}

TEST(Phy, NeighborsOfUsesExactPositions) {
  PhyNet net({{0.0, 0.0}, {249.0, 0.0}, {251.0, 0.0}});
  const auto nbrs = net.channel->neighbors_of(0, 250.0);
  EXPECT_EQ(nbrs, (std::vector<NodeId>{1}));
}

TEST(Phy, MovingNodeChangesConnectivity) {
  PhyNet net({{0.0, 0.0}, {200.0, 0.0}});
  net.mobs[1]->set_position({1000.0, 1000.0});
  net.sim.run_until(seconds(1));  // allow a refresh
  net.trx[0]->transmit(net.data_frame(0, 1));
  net.sim.run_until(net.sim.now() + seconds(30));
  EXPECT_TRUE(net.listeners[1]->frames.empty());
}

}  // namespace
}  // namespace manet
