// Shared test fixtures: deterministic static-topology networks and the
// golden-fingerprint helpers.
//
// TestNet builds a complete stack (channel, nodes at fixed positions, a
// chosen routing protocol) so protocol tests can assert on delivery, route
// shape, and control traffic over hand-crafted topologies (lines, grids,
// stars) instead of random scenarios.
//
// result_fingerprint() + expect_golden() are the one shared vocabulary for
// the pinned byte-exact determinism suites (test_shards, test_scale,
// test_fault): every observable a run produces rendered as one exact-match
// string, and one regeneration protocol (MANET_PRINT_GOLDENS=1) for all of
// them.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulator.hpp"
#include "mobility/mobility_pool.hpp"
#include "mobility/static_mobility.hpp"
#include "net/node.hpp"
#include "phy/channel.hpp"
#include "scenario/scenario.hpp"
#include "stats/stats.hpp"

namespace manet::test {

/// True when the run should print fresh golden literals instead of asserting
/// (deliberate model changes: MANET_PRINT_GOLDENS=1 ./test_x, then paste).
inline bool print_goldens() { return std::getenv("MANET_PRINT_GOLDENS") != nullptr; }

/// Byte-compare `got` against a pinned golden literal; under
/// MANET_PRINT_GOLDENS, print the fresh literal (tagged with `context` so it
/// can be pasted back into the right table row) and skip the assertion.
inline void expect_golden(const std::string& got, std::string_view golden,
                          const std::string& context) {
  if (print_goldens()) {
    std::printf("\"%s\",  // %s\n", got.c_str(), context.c_str());
    return;
  }
  EXPECT_EQ(got, std::string(golden))
      << context << " (deliberate change? MANET_PRINT_GOLDENS=1 prints fresh literals)";
}

/// Everything observable a run produces, as one exact-match string — the
/// shared fingerprint of the shard-identity, urban, and fault determinism
/// suites. Includes the transport counters; transport-off runs render them
/// as tretx=0 flows=0, so pre-transport fingerprints extend, not fork.
inline std::string result_fingerprint(const ScenarioResult& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "events=%llu orig=%llu deliv=%llu rtx=%llu mac=%llu tretx=%llu flows=%zu "
                "pdr=%.12g delay=%.12g nrl=%.12g hops=%.12g conn=%.12g",
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.data_originated),
                static_cast<unsigned long long>(r.data_delivered),
                static_cast<unsigned long long>(r.routing_tx),
                static_cast<unsigned long long>(r.mac_ctrl_tx),
                static_cast<unsigned long long>(r.retransmissions), r.flows.size(), r.pdr,
                r.delay_ms, r.nrl, r.avg_hops, r.connectivity);
  return buf;
}

class TestNet {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<RoutingProtocol>(Node&, std::uint64_t seed)>;

  /// Nodes at `positions`; node i gets id i. The default radio (250 m rx,
  /// 550 m cs) applies unless `phy` is customized before construction.
  TestNet(std::vector<Vec2> positions, const ProtocolFactory& factory,
          std::uint64_t seed = 1, PhyConfig phy = {}, MacConfig mac = {},
          Area area = {2500.0, 2500.0}) {
    channel_ = std::make_unique<Channel>(sim_, phy, area);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      StaticMobility* mob = pool_.make<StaticMobility>(positions[i]);
      mobilities_.push_back(mob);
      nodes_.push_back(std::make_unique<Node>(sim_, stats_, *channel_,
                                              static_cast<NodeId>(i), mob, mac, seed));
    }
    for (auto& n : nodes_) {
      protocols_.push_back(factory(*n, seed));
      n->set_routing(protocols_.back().get());
    }
    channel_->start();
    for (auto& p : protocols_) p->start();
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] StatsCollector& stats() { return stats_; }
  [[nodiscard]] Channel& channel() { return *channel_; }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] RoutingProtocol& routing(std::size_t i) { return *protocols_[i]; }
  [[nodiscard]] StaticMobility& mobility(std::size_t i) { return *mobilities_[i]; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Advance simulated time by `dt`.
  void run_for(SimTime dt) { sim_.run_until(sim_.now() + dt); }

  /// Originate one data packet at `src` towards `dst`.
  void send_data(NodeId src, NodeId dst, std::uint32_t flow = 0, std::uint32_t seq = 0) {
    Packet pkt;
    pkt.ip.dst = dst;
    pkt.payload_bytes = 512;
    pkt.app = AppHeader{.flow = flow, .seq = seq, .sent_at = sim_.now()};
    node(src).originate(std::move(pkt));
  }

 private:
  Simulator sim_;
  StatsCollector stats_;
  MobilityPool pool_;  ///< before channel_/nodes_: they point into it
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<RoutingProtocol>> protocols_;
  std::vector<StaticMobility*> mobilities_;
};

/// Positions for a line of `n` nodes spaced `gap` metres apart.
inline std::vector<Vec2> line_positions(std::size_t n, double gap = 200.0) {
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back({gap * static_cast<double>(i), 50.0});
  return out;
}

/// Positions for an r x c grid with `gap` spacing.
inline std::vector<Vec2> grid_positions(std::size_t rows, std::size_t cols, double gap = 200.0) {
  std::vector<Vec2> out;
  out.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.push_back({gap * static_cast<double>(c), gap * static_cast<double>(r)});
    }
  }
  return out;
}

}  // namespace manet::test
