#include "routing/olsr/olsr.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::grid_positions;
using test::line_positions;

TestNet::ProtocolFactory olsr_factory(olsr::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<olsr::Olsr>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

olsr::Olsr& as_olsr(RoutingProtocol& rp) { return dynamic_cast<olsr::Olsr&>(rp); }

TEST(Olsr, Name) {
  TestNet net(line_positions(2), olsr_factory());
  EXPECT_STREQ(net.routing(0).name(), "OLSR");
}

TEST(Olsr, LinkSensingFindsSymmetricNeighbors) {
  TestNet net(line_positions(3), olsr_factory());
  net.run_for(seconds(6));  // a few HELLO rounds
  EXPECT_EQ(as_olsr(net.routing(0)).sym_neighbors(), (std::vector<NodeId>{1}));
  EXPECT_EQ(as_olsr(net.routing(1)).sym_neighbors(), (std::vector<NodeId>{0, 2}));
}

TEST(Olsr, MiddleNodeBecomesMpr) {
  TestNet net(line_positions(3), olsr_factory());
  net.run_for(seconds(8));
  EXPECT_EQ(as_olsr(net.routing(0)).mprs(), (std::vector<NodeId>{1}));
  EXPECT_EQ(as_olsr(net.routing(2)).mprs(), (std::vector<NodeId>{1}));
  const auto sel = as_olsr(net.routing(1)).mpr_selectors();
  EXPECT_EQ(sel, (std::vector<NodeId>{0, 2}));
}

TEST(Olsr, RoutingTableReachesAllNodes) {
  TestNet net(line_positions(5), olsr_factory());
  net.run_for(seconds(15));  // HELLOs + TC propagation
  auto& r0 = as_olsr(net.routing(0));
  for (NodeId dst = 1; dst <= 4; ++dst) {
    const auto nh = r0.next_hop_to(dst);
    ASSERT_TRUE(nh.has_value()) << "dst=" << dst;
    EXPECT_EQ(*nh, 1u);
  }
}

TEST(Olsr, DeliversDataProactively) {
  TestNet net(line_positions(4), olsr_factory());
  net.run_for(seconds(15));
  net.send_data(0, 3);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  // Route was pre-computed: only forwarding latency.
  EXPECT_LT(net.stats().avg_delay_s(), 0.1);
}

TEST(Olsr, NoRouteBeforeConvergence) {
  TestNet net(line_positions(4), olsr_factory());
  net.send_data(0, 3);
  net.run_for(milliseconds(50));
  EXPECT_EQ(net.stats().drops(DropReason::kNoRoute), 1u);
}

TEST(Olsr, ControlTrafficFlowsWithoutData) {
  TestNet net(line_positions(4), olsr_factory());
  net.run_for(seconds(20));
  EXPECT_GT(net.stats().routing_tx(), 20u);  // HELLOs + TCs
}

TEST(Olsr, BrokenLinkExpiresFromTables) {
  TestNet net(line_positions(3), olsr_factory());
  net.run_for(seconds(10));
  ASSERT_TRUE(as_olsr(net.routing(0)).next_hop_to(2).has_value());
  net.mobility(2).set_position({3000.0, 3000.0});
  // Staleness propagates in stages: node 1's link set holds node 2 for
  // neighb_hold (6 s), during which its HELLOs keep advertising the dead
  // link to node 0, whose 2-hop entry then needs its own hold to expire —
  // ~12 s worst case plus TC refresh jitter.
  net.run_for(seconds(10));
  EXPECT_FALSE(as_olsr(net.routing(1)).next_hop_to(2).has_value());
  net.run_for(seconds(10));
  EXPECT_FALSE(as_olsr(net.routing(0)).next_hop_to(2).has_value());
}

TEST(Olsr, RejoinedNodeRelearned) {
  TestNet net(line_positions(3), olsr_factory());
  net.run_for(seconds(10));
  net.mobility(2).set_position({3000.0, 3000.0});
  net.run_for(seconds(10));
  net.mobility(2).set_position({400.0, 50.0});
  net.run_for(seconds(10));
  EXPECT_TRUE(as_olsr(net.routing(0)).next_hop_to(2).has_value());
  net.send_data(0, 2);
  net.run_for(seconds(1));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
}

TEST(Olsr, GridRoutesAreShortest) {
  TestNet net(grid_positions(3, 3), olsr_factory());
  net.run_for(seconds(20));
  // Corner to corner: 4 hops on the 4-neighbour grid.
  net.send_data(0, 8);
  net.run_for(seconds(1));
  ASSERT_EQ(net.stats().data_delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.stats().avg_hops(), 4.0);
}

TEST(Olsr, MprFloodingCheaperThanClassic) {
  // Compare TC forwarding cost with and without the MPR rule on a dense grid.
  olsr::Config classic;
  classic.mpr_flooding = false;
  std::uint64_t mpr_tx = 0, classic_tx = 0;
  {
    TestNet net(grid_positions(4, 4, 150.0), olsr_factory());
    net.run_for(seconds(30));
    mpr_tx = net.stats().routing_tx();
  }
  {
    TestNet net(grid_positions(4, 4, 150.0), olsr_factory(classic));
    net.run_for(seconds(30));
    classic_tx = net.stats().routing_tx();
  }
  EXPECT_LT(mpr_tx, classic_tx);
}

}  // namespace
}  // namespace manet
