#include "routing/shortest_path.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace manet {
namespace {

AdjacencyMap line(int n) {
  AdjacencyMap adj;
  for (int i = 0; i + 1 < n; ++i) {
    adj[static_cast<NodeId>(i)].push_back(static_cast<NodeId>(i + 1));
    adj[static_cast<NodeId>(i + 1)].push_back(static_cast<NodeId>(i));
  }
  return adj;
}

TEST(ShortestPath, EmptyGraph) {
  const auto res = shortest_paths(0, {});
  EXPECT_TRUE(res.next_hop.empty());
  EXPECT_TRUE(res.dist.empty());
}

TEST(ShortestPath, LineDistances) {
  const auto res = shortest_paths(0, line(5));
  EXPECT_EQ(res.dist.at(1), 1u);
  EXPECT_EQ(res.dist.at(4), 4u);
  EXPECT_EQ(res.next_hop.at(4), 1u);
  EXPECT_EQ(res.next_hop.at(1), 1u);
}

TEST(ShortestPath, SelfExcluded) {
  const auto res = shortest_paths(0, line(3));
  EXPECT_FALSE(res.dist.contains(0));
  EXPECT_FALSE(res.next_hop.contains(0));
}

TEST(ShortestPath, DisconnectedUnreached) {
  AdjacencyMap adj = line(3);
  adj[10].push_back(11);
  adj[11].push_back(10);
  const auto res = shortest_paths(0, adj);
  EXPECT_FALSE(res.dist.contains(10));
  EXPECT_FALSE(res.next_hop.contains(11));
}

TEST(ShortestPath, PrefersShorterRoute) {
  // 0-1-2-3 and 0-4-3: the 2-hop route via 4 wins.
  AdjacencyMap adj;
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  link(0, 1);
  link(1, 2);
  link(2, 3);
  link(0, 4);
  link(4, 3);
  const auto res = shortest_paths(0, adj);
  EXPECT_EQ(res.dist.at(3), 2u);
  EXPECT_EQ(res.next_hop.at(3), 4u);
}

TEST(ShortestPath, DeterministicTieBreak) {
  // Two equal-length routes to 3 via 1 or 2: the smaller first hop wins.
  AdjacencyMap adj;
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  link(0, 2);
  link(0, 1);
  link(1, 3);
  link(2, 3);
  for (int i = 0; i < 5; ++i) {
    const auto res = shortest_paths(0, adj);
    EXPECT_EQ(res.next_hop.at(3), 1u);
  }
}

TEST(ShortestPath, RespectsEdgeDirection) {
  AdjacencyMap adj;
  adj[0].push_back(1);  // one-way
  const auto res = shortest_paths(1, adj);
  EXPECT_FALSE(res.dist.contains(0));
}

// Property: next hops are consistent — following them reaches the target in
// exactly dist steps.
class SpfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpfProperty, NextHopsLeadHome) {
  RngStream rng(GetParam());
  AdjacencyMap adj;
  constexpr int kN = 40;
  for (int e = 0; e < 100; ++e) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, kN - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, kN - 1));
    if (a == b) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  const auto res = shortest_paths(0, adj);
  for (const auto& [dst, d] : res.dist) {
    // Walk from 0 following next hops recomputed at each node.
    NodeId cur = 0;
    std::uint32_t steps = 0;
    while (cur != dst && steps <= d) {
      const auto local = shortest_paths(cur, adj);
      ASSERT_TRUE(local.next_hop.contains(dst));
      // One step towards dst: distance strictly decreases.
      const NodeId nh = local.next_hop.at(dst);
      if (nh == dst) {
        cur = dst;
      } else {
        const auto from_nh = shortest_paths(nh, adj);
        ASSERT_TRUE(from_nh.dist.contains(dst));
        EXPECT_LT(from_nh.dist.at(dst), local.dist.at(dst));
        cur = nh;
      }
      ++steps;
    }
    EXPECT_EQ(cur, dst);
    EXPECT_EQ(steps, d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace manet
