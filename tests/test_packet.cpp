#include "packet/packet.hpp"

#include <gtest/gtest.h>

#include "routing/aodv/aodv_messages.hpp"
#include "routing/dsr/dsr_messages.hpp"

namespace manet {
namespace {

TEST(Packet, FreshUidsAreUnique) {
  Packet a, b;
  EXPECT_NE(a.uid(), b.uid());
}

TEST(Packet, CopyPreservesUid) {
  Packet a;
  const Packet b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.uid(), b.uid());
}

TEST(Packet, CopySharesPayloadUntilMutation) {
  Packet a;
  auto rreq = std::make_unique<aodv::Rreq>();
  rreq->dest = 7;
  a.routing = std::move(rreq);
  Packet b = a;
  // The copy is cheap: one payload object, shared read-only.
  EXPECT_TRUE(a.routing.shares_with(b.routing));
  EXPECT_EQ(a.routing.get(), b.routing.get());
  // First mutation detaches the writer; the original is untouched.
  auto* pb = dynamic_cast<aodv::Rreq*>(b.routing.mutate());
  ASSERT_NE(pb, nullptr);
  pb->dest = 9;
  EXPECT_FALSE(a.routing.shares_with(b.routing));
  const auto* pa = dynamic_cast<const aodv::Rreq*>(a.routing.get());
  ASSERT_NE(pa, nullptr);
  EXPECT_EQ(pa->dest, 7u);
}

TEST(Packet, MutationNeverLeaksToSiblingCopies) {
  // A broadcast: every receiver holds its own copy of one frame. A receiver
  // that rewrites its source route (forwarding) must not perturb siblings.
  Packet frame;
  auto sr = std::make_unique<dsr::SourceRoute>();
  sr->path = {0, 1, 2, 3};
  sr->next_index = 1;
  frame.routing = std::move(sr);
  Packet rx1 = frame;
  Packet rx2 = frame;
  auto* mut = dynamic_cast<dsr::SourceRoute*>(rx1.routing.mutate());
  ASSERT_NE(mut, nullptr);
  ++mut->next_index;
  mut->path.push_back(9);
  for (const Packet* p : {&frame, &rx2}) {
    const auto* s = dynamic_cast<const dsr::SourceRoute*>(p->routing.get());
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->next_index, 1u);
    EXPECT_EQ(s->path.size(), 4u);
  }
  // rx2 and the original still share one object; only rx1 detached.
  EXPECT_TRUE(frame.routing.shares_with(rx2.routing));
  EXPECT_FALSE(frame.routing.shares_with(rx1.routing));
}

TEST(Packet, MutateWhenSoleOwnerDoesNotClone) {
  Packet a;
  a.routing = std::make_unique<aodv::Rreq>();
  const RoutingPayload* before = a.routing.get();
  EXPECT_EQ(a.routing.mutate(), before);  // no sharer, no copy
}

TEST(Packet, AssignmentSharesPayload) {
  Packet a;
  a.routing = std::make_unique<aodv::Rrep>();
  Packet b;
  b = a;
  EXPECT_EQ(a.routing.get(), b.routing.get());
  EXPECT_NE(b.routing, nullptr);
  // Detaching b leaves a intact.
  EXPECT_NE(b.routing.mutate(), nullptr);
  EXPECT_NE(a.routing.get(), b.routing.get());
}

TEST(Packet, SelfAssignmentSafe) {
  Packet a;
  a.routing = std::make_unique<aodv::Rreq>();
  Packet& ref = a;
  a = ref;
  EXPECT_NE(a.routing, nullptr);
}

TEST(Packet, ControlFrameSizes) {
  Packet p;
  p.mac.type = MacFrameType::kRts;
  EXPECT_EQ(p.size_bytes(), kMacRtsBytes);
  p.mac.type = MacFrameType::kCts;
  EXPECT_EQ(p.size_bytes(), kMacCtsBytes);
  p.mac.type = MacFrameType::kAck;
  EXPECT_EQ(p.size_bytes(), kMacAckBytes);
}

TEST(Packet, ArpFrameSize) {
  Packet p;
  p.kind = PacketKind::kArp;
  EXPECT_EQ(p.size_bytes(), kMacDataHeaderBytes + kArpBytes);
}

TEST(Packet, DataFrameSizeIncludesAllLayers) {
  Packet p;
  p.kind = PacketKind::kData;
  p.payload_bytes = 512;
  EXPECT_EQ(p.size_bytes(),
            kMacDataHeaderBytes + kIpHeaderBytes + kUdpHeaderBytes + 512);
}

TEST(Packet, DataFrameWithSourceRouteGrows) {
  Packet p;
  p.kind = PacketKind::kData;
  p.payload_bytes = 512;
  const std::size_t bare = p.size_bytes();
  auto sr = std::make_unique<dsr::SourceRoute>();
  sr->path = {0, 1, 2, 3, 4};  // three intermediate hops
  p.routing = std::move(sr);
  EXPECT_EQ(p.size_bytes(), bare + 4 + 4 + 4 * 3);
}

TEST(Packet, RoutingControlSize) {
  Packet p;
  p.kind = PacketKind::kRoutingControl;
  auto rreq = std::make_unique<aodv::Rreq>();
  const std::size_t body = rreq->size_bytes();
  p.routing = std::move(rreq);
  EXPECT_EQ(p.size_bytes(), kMacDataHeaderBytes + kIpHeaderBytes + body);
}

TEST(Payloads, AodvSizesMatchRfc) {
  EXPECT_EQ(aodv::Rreq{}.size_bytes(), 24u);
  EXPECT_EQ(aodv::Rrep{}.size_bytes(), 20u);
  aodv::Rerr rerr;
  rerr.unreachable.emplace_back(1, 2);
  rerr.unreachable.emplace_back(3, 4);
  EXPECT_EQ(rerr.size_bytes(), 4u + 16u);
}

TEST(Payloads, CloneIsPolymorphic) {
  aodv::Rerr rerr;
  rerr.unreachable.emplace_back(5, 6);
  const std::unique_ptr<RoutingPayload> copy = rerr.clone();
  auto* typed = dynamic_cast<aodv::Rerr*>(copy.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->unreachable.size(), 1u);
}

}  // namespace
}  // namespace manet
