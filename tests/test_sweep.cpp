#include "scenario/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "scenario/experiment.hpp"

namespace manet {
namespace {

ScenarioConfig tiny_config(Protocol p, std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.num_nodes = 12;
  cfg.area = {600.0, 600.0};
  cfg.v_max = 5.0;
  cfg.num_connections = 3;
  cfg.duration = seconds(15);
  return cfg;
}

std::vector<SweepCell> tiny_grid() {
  return {{"aodv/a", tiny_config(Protocol::kAodv, 1)},
          {"aodv/b", tiny_config(Protocol::kAodv, 50)},
          {"dsdv/a", tiny_config(Protocol::kDsdv, 1)}};
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const SweepCellResult& x = a.cells[i];
    const SweepCellResult& y = b.cells[i];
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.aggregate.total_events, y.aggregate.total_events);
    EXPECT_EQ(x.aggregate.replications, y.aggregate.replications);
    EXPECT_EQ(x.peak_queue_depth, y.peak_queue_depth);
    // Bit-identical metric payloads: every table entry, mean and se.
    const Aggregate& ya = y.aggregate;
    x.aggregate.for_each([&](const char* name, const Metric& mx) {
      ya.for_each([&](const char* yname, const Metric& my) {
        if (std::string_view(name) == yname) {
          EXPECT_DOUBLE_EQ(mx.mean, my.mean) << name;
          EXPECT_DOUBLE_EQ(mx.se, my.se) << name;
        }
      });
    });
    ASSERT_EQ(x.runs.size(), y.runs.size());
    for (std::size_t k = 0; k < x.runs.size(); ++k) {
      EXPECT_EQ(x.runs[k].seed, y.runs[k].seed);
      EXPECT_EQ(x.runs[k].events, y.runs[k].events);
      EXPECT_EQ(x.runs[k].peak_queue_depth, y.runs[k].peak_queue_depth);
    }
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto grid = tiny_grid();
  const SweepResult r1 = SweepRunner(/*seeds=*/2, /*threads=*/1).run(grid);
  const SweepResult r2 = SweepRunner(2, 2).run(grid);
  const SweepResult r8 = SweepRunner(2, 8).run(grid);
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

TEST(Sweep, CellsKeepRegistrationOrderAndSeeds) {
  const SweepResult r = SweepRunner(2, 4).run(tiny_grid());
  ASSERT_EQ(r.cells.size(), 3u);
  EXPECT_EQ(r.cells[0].label, "aodv/a");
  EXPECT_EQ(r.cells[1].label, "aodv/b");
  EXPECT_EQ(r.cells[2].label, "dsdv/a");
  ASSERT_EQ(r.cells[1].runs.size(), 2u);
  EXPECT_EQ(r.cells[1].runs[0].seed, 50u);  // base seed ...
  EXPECT_EQ(r.cells[1].runs[1].seed, 51u);  // ... + replication index
  EXPECT_EQ(r.seeds_per_cell, 2);
}

TEST(Sweep, ProfilesArePopulated) {
  const SweepResult r = SweepRunner(1, 1).run({{"cell", tiny_config(Protocol::kAodv)}});
  ASSERT_EQ(r.cells.size(), 1u);
  const SweepCellResult& c = r.cells[0];
  EXPECT_GT(c.aggregate.total_events, 0u);
  EXPECT_GT(c.peak_queue_depth, 0u);
  EXPECT_GT(c.wall_s, 0.0);
  EXPECT_GT(c.events_per_sec, 0.0);
  ASSERT_EQ(c.runs.size(), 1u);
  EXPECT_GT(c.runs[0].sim_rate, 0.0);
  EXPECT_GT(r.events_per_sec, 0.0);
  EXPECT_GE(r.wall_s, 0.0);
  EXPECT_EQ(r.total_events, c.aggregate.total_events);
}

TEST(Sweep, MatchesExperimentRunnerWrapper) {
  // ExperimentRunner::run is a single-cell SweepRunner: identical numbers.
  const ScenarioConfig cfg = tiny_config(Protocol::kDsr);
  const Aggregate via_wrapper = ExperimentRunner(3, 2).run(cfg);
  const Aggregate via_sweep = SweepRunner(3, 2).run({{"x", cfg}}).cells[0].aggregate;
  EXPECT_DOUBLE_EQ(via_wrapper.pdr.mean, via_sweep.pdr.mean);
  EXPECT_DOUBLE_EQ(via_wrapper.delay_ms.se, via_sweep.delay_ms.se);
  EXPECT_EQ(via_wrapper.total_events, via_sweep.total_events);
}

TEST(Sweep, FindLocatesCellsByLabel) {
  const SweepResult r = SweepRunner(1, 2).run(tiny_grid());
  ASSERT_NE(r.find("dsdv/a"), nullptr);
  EXPECT_EQ(r.find("dsdv/a")->label, "dsdv/a");
  EXPECT_EQ(r.find("nope"), nullptr);
}

TEST(Aggregation, MeanAndStderrMatchHandComputedFixtures) {
  // {1, 2, 3}: mean 2, sample var 1, se = sqrt(1/3).
  const Metric m = aggregate_metric({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.se, std::sqrt(1.0 / 3.0));
  // {4, 8}: mean 6, sample var 8, se = sqrt(8/2) = 2.
  const Metric two = aggregate_metric({4.0, 8.0});
  EXPECT_DOUBLE_EQ(two.mean, 6.0);
  EXPECT_DOUBLE_EQ(two.se, 2.0);
  // Single sample and empty input degenerate to se 0.
  EXPECT_DOUBLE_EQ(aggregate_metric({5.0}).mean, 5.0);
  EXPECT_DOUBLE_EQ(aggregate_metric({5.0}).se, 0.0);
  EXPECT_DOUBLE_EQ(aggregate_metric({}).mean, 0.0);
}

TEST(Aggregation, MetricTableDrivesAggregation) {
  ScenarioResult a;
  a.pdr = 0.5;
  a.delay_ms = 10.0;
  a.throughput_kbps = 100.0;
  a.events = 7;
  ScenarioResult b;
  b.pdr = 1.0;
  b.delay_ms = 30.0;
  b.throughput_kbps = 300.0;
  b.events = 5;
  const Aggregate agg = aggregate_results({a, b});
  EXPECT_DOUBLE_EQ(agg.pdr.mean, 0.75);
  EXPECT_DOUBLE_EQ(agg.delay_ms.mean, 20.0);
  EXPECT_DOUBLE_EQ(agg.throughput_kbps.mean, 200.0);
  EXPECT_EQ(agg.total_events, 12u);
  EXPECT_EQ(agg.replications, 2);

  int count = 0;
  agg.for_each([&](const char*, const Metric&) { ++count; });
  EXPECT_EQ(count, static_cast<int>(std::size(kMetricDefs)));
}

TEST(BenchEnvTest, RejectsGarbageAndNegatives) {
  setenv("MANET_BENCH_SEEDS", "banana", 1);
  setenv("MANET_BENCH_THREADS", "-1", 1);
  setenv("MANET_BENCH_DURATION", "-5", 1);
  const BenchEnv env = BenchEnv::parse(4);
  EXPECT_EQ(env.seeds, 4);      // garbage -> default
  EXPECT_EQ(env.threads, 0u);   // -1 no longer wraps to a huge unsigned
  EXPECT_EQ(env.duration_s, 0l);
  unsetenv("MANET_BENCH_SEEDS");
  unsetenv("MANET_BENCH_THREADS");
  unsetenv("MANET_BENCH_DURATION");
}

TEST(BenchEnvTest, ParsesValidValuesAndAppliesDuration) {
  setenv("MANET_BENCH_SEEDS", "7", 1);
  setenv("MANET_BENCH_THREADS", "3", 1);
  setenv("MANET_BENCH_DURATION", "42", 1);
  setenv("MANET_BENCH_RESULTS_DIR", "out/dir", 1);
  const BenchEnv env = BenchEnv::parse(2);
  EXPECT_EQ(env.seeds, 7);
  EXPECT_EQ(env.threads, 3u);
  EXPECT_EQ(env.duration_s, 42l);
  EXPECT_EQ(env.results_dir, "out/dir");
  ScenarioConfig cfg;
  env.apply_duration(cfg);
  EXPECT_EQ(cfg.duration, seconds(42));
  unsetenv("MANET_BENCH_SEEDS");
  unsetenv("MANET_BENCH_THREADS");
  unsetenv("MANET_BENCH_DURATION");
  unsetenv("MANET_BENCH_RESULTS_DIR");
}

TEST(BenchEnvTest, UnsetKeepsDefaultsAndDurationUntouched) {
  unsetenv("MANET_BENCH_SEEDS");
  unsetenv("MANET_BENCH_THREADS");
  unsetenv("MANET_BENCH_DURATION");
  const BenchEnv env = BenchEnv::parse(3);
  EXPECT_EQ(env.seeds, 3);
  EXPECT_EQ(env.threads, 0u);
  EXPECT_EQ(env.results_dir, "results");
  ScenarioConfig cfg;
  env.apply_duration(cfg);
  EXPECT_EQ(cfg.duration, seconds(150));
}

TEST(Artifacts, JsonContainsCellsMetricsAndProfiling) {
  SweepResult r = SweepRunner(2, 2).run(tiny_grid());
  r.name = "unit_test";
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"aodv/b\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_rate\""), std::string::npos);
  // Every registered metric appears.
  for (const MetricDef& d : kMetricDefs) {
    EXPECT_NE(json.find(std::string("\"") + d.name + "\""), std::string::npos) << d.name;
  }
  // Structurally sane: balanced braces/brackets.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Artifacts, CsvHasHeaderFromMetricTableAndOneRowPerCell) {
  const SweepResult r = SweepRunner(1, 1).run(tiny_grid());
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("label,pdr_mean,pdr_se"), std::string::npos);
  EXPECT_NE(csv.find("peak_queue_depth"), std::string::npos);
  std::size_t rows = 0;
  for (const char c : csv) rows += (c == '\n');
  EXPECT_EQ(rows, 1u + r.cells.size());  // header + cells
}

TEST(Artifacts, WriteJsonCreatesParentDirectories) {
  const SweepResult r = SweepRunner(1, 1).run({{"cell", tiny_config(Protocol::kAodv)}});
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "manet_sweep_test" / "nested";
  const std::string path = (dir / "out.json").string();
  std::filesystem::remove_all(dir.parent_path());
  ASSERT_TRUE(r.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "{");
  std::filesystem::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace manet
