// Recovery-invariant suite for the fault-injection subsystem.
//
// Three layers of proof:
//   1. The compiled FaultPlan is a pure function of (config, seed): same
//      seed => byte-identical schedule; events are sorted, crash/restart
//      strictly alternate, and the quiet warm-up window is respected.
//   2. A faulted run is deterministic end to end: full per-seed metric
//      fingerprints (the test_order_independence pattern) are pinned for
//      every protocol, and the same grid aggregates bit-identically under
//      1, 2 and 8 sweep workers.
//   3. The invariants faults must preserve: a crashed node neither sends,
//      forwards nor receives (proved from the event trace against the
//      plan's own down windows); a restarted node comes back with cold
//      routing state; injected crashes strictly lower PDR versus the
//      crash-free control for every protocol.
//
// Regenerate the fingerprints after an intentional behaviour change:
//   MANET_PRINT_GOLDENS=1 ./build/tests/test_fault
// and paste the printed table over kGoldens below.

#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "routing/aodv/aodv.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

// ---------------------------------------------------------------------------
// 1. Plan compilation
// ---------------------------------------------------------------------------

FaultConfig rich_fault_config() {
  FaultConfig f;
  f.crash_rate = 1.0;
  f.downtime_mean = seconds(5);
  f.link_blackouts = 2;
  f.blackout_mean = seconds(3);
  f.corrupt_rate = 0.05;
  f.corrupt_from = seconds(8);
  f.corrupt_until = seconds(16);
  f.partition = true;
  f.partition_from = seconds(10);
  f.partition_until = seconds(15);
  f.window_from = seconds(5);
  return f;
}

TEST(FaultPlan, SameSeedCompilesByteIdenticalSchedule) {
  const FaultConfig f = rich_fault_config();
  const Area area{650.0, 650.0};
  const auto a = FaultPlan::compile(f, 14, area, seconds(25), 42);
  const auto b = FaultPlan::compile(f, 14, area, seconds(25), 42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.to_string(), b.to_string());
  const auto c = FaultPlan::compile(f, 14, area, seconds(25), 43);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, DisabledConfigCompilesEmpty) {
  const FaultConfig off;
  EXPECT_FALSE(off.enabled());
  const auto plan = FaultPlan::compile(off, 20, {1000.0, 1000.0}, seconds(100), 1);
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.to_string().empty());
}

TEST(FaultPlan, EventsSortedAndCrashRestartAlternate) {
  FaultConfig f;
  f.crash_rate = 2.0;
  f.downtime_mean = seconds(4);
  f.window_from = seconds(5);
  const SimTime duration = seconds(60);
  const auto plan = FaultPlan::compile(f, 10, {500.0, 500.0}, duration, 7);
  ASSERT_FALSE(plan.empty());

  SimTime prev = SimTime::zero();
  std::vector<int> open(10, 0);
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_GE(ev.at, prev);
    prev = ev.at;
    EXPECT_GE(ev.at, f.window_from);
    EXPECT_LT(ev.at, duration);
    if (ev.kind == FaultEventKind::kCrash) {
      EXPECT_EQ(open[ev.a], 0) << "node " << ev.a << " crashed while already down";
      open[ev.a] = 1;
    } else if (ev.kind == FaultEventKind::kRestart) {
      EXPECT_EQ(open[ev.a], 1) << "node " << ev.a << " restarted while up";
      open[ev.a] = 0;
    }
  }
}

TEST(FaultPlan, DownWindowsAreOrderedAndDisjoint) {
  FaultConfig f;
  f.crash_rate = 3.0;
  f.downtime_mean = seconds(2);
  const auto plan = FaultPlan::compile(f, 8, {500.0, 500.0}, seconds(120), 3);
  for (NodeId id = 0; id < 8; ++id) {
    SimTime prev_end = SimTime::zero();
    for (const auto& [start, end] : plan.down_windows(id)) {
      EXPECT_LT(start, end);
      EXPECT_GE(start, prev_end);
      prev_end = end;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Runtime masks
// ---------------------------------------------------------------------------

TEST(FaultRuntime, CrashAndRestartMaintainDownSet) {
  FaultRuntime rt;
  EXPECT_FALSE(rt.any_node_down());
  rt.apply({seconds(1), FaultEventKind::kCrash, 3});
  EXPECT_TRUE(rt.node_down(3));
  EXPECT_FALSE(rt.node_down(4));
  EXPECT_TRUE(rt.any_node_down());
  rt.apply({seconds(2), FaultEventKind::kRestart, 3});
  EXPECT_FALSE(rt.node_down(3));
  EXPECT_FALSE(rt.any_node_down());
}

TEST(FaultRuntime, LinkBlackoutBlocksBothDirections) {
  FaultRuntime rt;
  const Vec2 p{0.0, 0.0};
  EXPECT_FALSE(rt.link_blocked(1, 2, p, p));
  rt.apply({seconds(1), FaultEventKind::kLinkDown, 2, 1});
  EXPECT_TRUE(rt.link_blocked(1, 2, p, p));
  EXPECT_TRUE(rt.link_blocked(2, 1, p, p));
  EXPECT_FALSE(rt.link_blocked(1, 3, p, p));
  rt.apply({seconds(2), FaultEventKind::kLinkUp, 2, 1});
  EXPECT_FALSE(rt.link_blocked(1, 2, p, p));
}

TEST(FaultRuntime, PartitionBlocksOnlyStraddlingPairs) {
  FaultRuntime rt;
  rt.apply({seconds(1), FaultEventKind::kPartitionStart, 0, 0, /*x=*/500.0});
  const Vec2 west{100.0, 50.0}, east{900.0, 50.0}, east2{600.0, 400.0};
  EXPECT_TRUE(rt.link_blocked(0, 1, west, east));
  EXPECT_TRUE(rt.link_blocked(1, 0, east, west));
  EXPECT_FALSE(rt.link_blocked(1, 2, east, east2));
  rt.apply({seconds(2), FaultEventKind::kPartitionEnd, 0, 0, 500.0});
  EXPECT_FALSE(rt.link_blocked(0, 1, west, east));
}

TEST(FaultRuntime, CorruptWindowSetsAndClearsRate) {
  FaultRuntime rt;
  EXPECT_DOUBLE_EQ(rt.corrupt_rate(), 0.0);
  rt.apply({seconds(1), FaultEventKind::kCorruptStart, 0, 0, 0.25});
  EXPECT_DOUBLE_EQ(rt.corrupt_rate(), 0.25);
  rt.apply({seconds(2), FaultEventKind::kCorruptEnd, 0, 0, 0.0});
  EXPECT_DOUBLE_EQ(rt.corrupt_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// 3. Deterministic faulted runs: per-seed golden fingerprints
// ---------------------------------------------------------------------------

ScenarioConfig faulted_config(Protocol p, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.num_nodes = 14;
  cfg.area = {650.0, 650.0};
  cfg.v_max = 6.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(25);
  cfg.fault = rich_fault_config();
  return cfg;
}

std::string fingerprint(Protocol p, std::uint64_t seed) {
  const auto r = Scenario::run_once(faulted_config(p, seed));
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s seed=%llu events=%llu orig=%llu deliv=%llu crashes=%llu corrupt=%llu "
                "during=%llu after=%llu pdr=%.12g repair=%.12g",
                to_string(p), static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.data_originated),
                static_cast<unsigned long long>(r.data_delivered),
                static_cast<unsigned long long>(r.crashes),
                static_cast<unsigned long long>(r.fault_corrupted),
                static_cast<unsigned long long>(r.delivered_during_fault),
                static_cast<unsigned long long>(r.delivered_after_fault), r.pdr,
                r.repair_latency_ms);
  return buf;
}

const char* const kGoldens[] = {
    "AODV seed=1 events=16577 orig=155 deliv=103 crashes=14 corrupt=43 during=103 after=0 pdr=0.664516129032 repair=174.691716286",
    "DSR seed=1 events=18674 orig=155 deliv=103 crashes=14 corrupt=45 during=103 after=0 pdr=0.664516129032 repair=163.187730071",
    "CBRP seed=1 events=13342 orig=155 deliv=76 crashes=14 corrupt=43 during=76 after=0 pdr=0.490322580645 repair=185.7412915",
    "DSDV seed=1 events=22539 orig=155 deliv=99 crashes=14 corrupt=66 during=99 after=0 pdr=0.638709677419 repair=221.587281357",
    "OLSR seed=1 events=19890 orig=155 deliv=94 crashes=14 corrupt=38 during=94 after=0 pdr=0.606451612903 repair=210.127528143",
    "LAR seed=1 events=17597 orig=155 deliv=103 crashes=14 corrupt=45 during=103 after=0 pdr=0.664516129032 repair=159.491294643",
    "TORA seed=1 events=23547 orig=155 deliv=102 crashes=14 corrupt=62 during=102 after=0 pdr=0.658064516129 repair=158.838976143",
};

TEST(FaultDeterminism, PerSeedFingerprintsMatchGoldens) {
  static_assert(std::size(kAllProtocols) == std::size(kGoldens));
  for (std::size_t i = 0; i < std::size(kAllProtocols); ++i) {
    test::expect_golden(fingerprint(kAllProtocols[i], 1), kGoldens[i],
                        std::string(to_string(kAllProtocols[i])) + " faulted run");
  }
}

TEST(FaultDeterminism, RepeatFaultedRunIsBitIdentical) {
  EXPECT_EQ(fingerprint(Protocol::kAodv, 9), fingerprint(Protocol::kAodv, 9));
}

// The reliable transport under fire: crashes mid-flow exercise the
// cold-reset + epoch machinery inside a full scenario (RTO timers firing on
// down nodes, aborted incarnations, receivers adopting fresh epochs), and
// the whole thing must still be a pure function of (scenario, seed).
ScenarioConfig transport_faulted_config(Protocol p, std::uint64_t seed) {
  ScenarioConfig cfg = faulted_config(p, seed);
  cfg.transport.enabled = true;
  return cfg;
}

std::string transport_fault_fingerprint(Protocol p, std::uint64_t seed) {
  const auto r = Scenario::run_once(transport_faulted_config(p, seed));
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "events=%llu orig=%llu deliv=%llu tretx=%llu flows=%zu crashes=%llu "
                "pdr=%.12g",
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.data_originated),
                static_cast<unsigned long long>(r.data_delivered),
                static_cast<unsigned long long>(r.retransmissions), r.flows.size(),
                static_cast<unsigned long long>(r.crashes), r.pdr);
  return buf;
}

TEST(FaultDeterminism, TransportFaultedRunsDeterministicAndPinned) {
  const struct {
    Protocol protocol;
    const char* golden;
  } kTransportGoldens[] = {
      {Protocol::kAodv,
       "events=29697 orig=155 deliv=103 tretx=7 flows=4 crashes=14 pdr=0.664516129032"},
      {Protocol::kDsdv,
       "events=34594 orig=155 deliv=99 tretx=13 flows=4 crashes=14 pdr=0.638709677419"},
  };
  for (const auto& g : kTransportGoldens) {
    const std::string fp = transport_fault_fingerprint(g.protocol, 1);
    test::expect_golden(fp, g.golden,
                        std::string(to_string(g.protocol)) + " transport faulted run");
    // Bit-identical on replay: timers, aborts and epochs are all replayable.
    EXPECT_EQ(transport_fault_fingerprint(g.protocol, 1), fp) << to_string(g.protocol);
    // Non-vacuous: the run really crashed nodes while flows were up, and the
    // transport really retransmitted around the outages.
    const auto r = Scenario::run_once(transport_faulted_config(g.protocol, 1));
    EXPECT_GT(r.crashes, 0u);
    EXPECT_GT(r.retransmissions, 0u);
    EXPECT_FALSE(r.flows.empty());
  }
}

TEST(FaultDeterminism, SweepAggregatesIdenticalUnder1And2And8Workers) {
  std::vector<SweepCell> cells;
  for (const Protocol p : {Protocol::kAodv, Protocol::kDsdv}) {
    for (const double crash : {0.0, 1.0}) {
      auto cfg = faulted_config(p, 1);
      cfg.duration = seconds(20);
      cfg.fault.crash_rate = crash;
      char label[48];
      std::snprintf(label, sizeof(label), "%s/crash:%g", to_string(p), crash);
      cells.push_back({label, cfg});
    }
  }
  const SweepResult one = SweepRunner(/*seeds=*/2, /*threads=*/1).run(cells);
  const SweepResult two = SweepRunner(2, 2).run(cells);
  const SweepResult eight = SweepRunner(2, 8).run(cells);
  ASSERT_EQ(one.cells.size(), cells.size());
  for (const SweepResult* other : {&two, &eight}) {
    ASSERT_EQ(other->cells.size(), one.cells.size());
    for (std::size_t i = 0; i < one.cells.size(); ++i) {
      EXPECT_EQ(one.cells[i].label, other->cells[i].label);
      EXPECT_EQ(one.cells[i].aggregate.total_events, other->cells[i].aggregate.total_events);
      const Aggregate& a = one.cells[i].aggregate;
      const Aggregate& b = other->cells[i].aggregate;
      a.for_each([&](const char* name, const Metric& ma) {
        b.for_each([&](const char* bname, const Metric& mb) {
          if (std::string_view(name) != bname) return;
          EXPECT_DOUBLE_EQ(ma.mean, mb.mean) << name;
          EXPECT_DOUBLE_EQ(ma.se, mb.se) << name;
        });
      });
    }
  }
}

// ---------------------------------------------------------------------------
// 4. Recovery invariants
// ---------------------------------------------------------------------------

// A crashed node is silent and deaf: the event trace of a faulted run must
// contain no send/forward/receive record for a node strictly inside any of
// its own down windows. The windows come from the compiled plan itself, so
// the test cross-checks two independent code paths (plan compilation vs the
// node/channel gating).
TEST(FaultInvariant, NoTraceActivityFromCrashedNodes) {
  const std::string path = testing::TempDir() + "fault_invariant.tr";
  ScenarioConfig cfg = faulted_config(Protocol::kAodv, 11);
  cfg.trace_path = path;
  Scenario s(cfg);
  const auto r = s.run();
  ASSERT_GT(r.crashes, 0u);

  std::vector<std::vector<std::pair<double, double>>> windows(cfg.num_nodes);
  for (NodeId id = 0; id < cfg.num_nodes; ++id) {
    for (const auto& [start, end] : s.fault_plan().down_windows(id)) {
      windows[id].emplace_back(start.sec(), end.sec());
    }
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::uint64_t checked = 0;
  while (std::getline(in, line)) {
    char ev = '\0';
    double t = 0.0;
    unsigned node = 0;
    if (std::sscanf(line.c_str(), "%c %lf _%u_", &ev, &t, &node) != 3) continue;
    if (ev != 's' && ev != 'f' && ev != 'r') continue;
    ASSERT_LT(node, cfg.num_nodes) << line;
    ++checked;
    for (const auto& [start, end] : windows[node]) {
      EXPECT_FALSE(t > start && t < end)
          << "node " << node << " was active at " << t << " s inside its down window ["
          << start << ", " << end << "): " << line;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(FaultInvariant, RestartComesBackWithColdRoutingState) {
  TestNet net(line_positions(3), [](Node& n, std::uint64_t seed) {
    return std::make_unique<aodv::Aodv>(n, aodv::Config{}, RngStream(seed, "routing", n.id()));
  });
  net.send_data(0, 2);
  net.run_for(seconds(3));
  auto& aodv0 = dynamic_cast<aodv::Aodv&>(net.routing(0));
  ASSERT_TRUE(aodv0.route_to(2).has_value());
  EXPECT_EQ(net.stats().data_delivered(), 1u);

  net.node(0).crash();
  EXPECT_TRUE(net.node(0).down());
  // Offered while down: counted against PDR, dropped at the node boundary.
  net.send_data(0, 2, 0, 1);
  EXPECT_EQ(net.stats().drops(DropReason::kNodeDown), 1u);

  net.node(0).restart();
  EXPECT_FALSE(net.node(0).down());
  EXPECT_FALSE(aodv0.route_to(2).has_value()) << "routes must not survive a restart";
  EXPECT_FALSE(aodv0.route_to(1).has_value());
  EXPECT_EQ(aodv0.buffered_packets(), 0u);

  // And the cold node can rebuild the route from scratch.
  net.send_data(0, 2, 0, 2);
  net.run_for(seconds(3));
  EXPECT_EQ(net.stats().data_delivered(), 2u);
}

TEST(FaultInvariant, CorruptionWindowCorruptsFramesAndIsCounted) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kAodv;
  cfg.seed = 2;
  cfg.num_nodes = 14;
  cfg.area = {650.0, 650.0};
  cfg.v_max = 6.0;
  cfg.num_connections = 4;
  cfg.duration = seconds(25);
  cfg.fault.corrupt_rate = 0.2;
  const auto r = Scenario::run_once(cfg);
  EXPECT_GT(r.fault_corrupted, 0u);
  EXPECT_EQ(r.crashes, 0u);
}

// The acceptance check of the whole subsystem: against a crash-free control,
// injected crashes measurably lower PDR for every protocol (sources keep
// offering load while down, and forwarding nodes disappear mid-route).
TEST(FaultInvariant, CrashesLowerPdrForEveryProtocol) {
  for (const Protocol p : kAllProtocols) {
    ScenarioConfig cfg;
    cfg.protocol = p;
    cfg.seed = 1;
    cfg.num_nodes = 20;
    cfg.area = {800.0, 800.0};
    cfg.v_max = 5.0;
    cfg.num_connections = 5;
    cfg.duration = seconds(60);
    const auto base = Scenario::run_once(cfg);

    cfg.fault.crash_rate = 2.0;
    cfg.fault.downtime_mean = seconds(10);
    cfg.fault.window_from = seconds(10);
    const auto faulted = Scenario::run_once(cfg);

    EXPECT_GT(faulted.crashes, 0u) << to_string(p);
    EXPECT_LT(faulted.pdr, base.pdr) << to_string(p) << ": crash faults must lower PDR";
    EXPECT_GT(faulted.pdr, 0.0) << to_string(p) << ": the network must still deliver";
  }
}

}  // namespace
}  // namespace manet
