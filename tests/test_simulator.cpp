#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> observed;
  sim.schedule(milliseconds(10), [&] { observed.push_back(sim.now()); });
  sim.schedule(milliseconds(20), [&] { observed.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], milliseconds(10));
  EXPECT_EQ(observed[1], milliseconds(20));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(milliseconds(1), recurse);
  };
  sim.schedule(milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(5), [&] { ++fired; });
  sim.schedule(milliseconds(15), [&] { ++fired; });
  const auto ran = sim.run_until(milliseconds(10));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(10));  // clock advanced to horizon
  sim.run_until(milliseconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(10), [&] { ++fired; });
  sim.run_until(milliseconds(10));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(milliseconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(milliseconds(1), [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, PendingReflectsLifecycle) {
  Simulator sim;
  const EventId id = sim.schedule(milliseconds(1), [] {});
  EXPECT_TRUE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(sim.pending(id));
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(milliseconds(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.schedule_at(milliseconds(42), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, milliseconds(42));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(5), [&] {
    order.push_back(1);
    sim.schedule(SimTime::zero(), [&] { order.push_back(2); });
  });
  sim.schedule(milliseconds(5), [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event lands after the already-queued same-time event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), milliseconds(5));
}

}  // namespace
}  // namespace manet
