// Traffic-source tests: CBR inter-packet timing and start/stop boundaries,
// ON/OFF burst behaviour, and source behaviour when its node crashes
// mid-flow (fault injection).

#include "app/cbr.hpp"

#include <gtest/gtest.h>

#include "app/onoff.hpp"
#include "routing/aodv/aodv.hpp"
#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::line_positions;

TestNet::ProtocolFactory aodv_factory() {
  return [](Node& n, std::uint64_t seed) {
    return std::make_unique<aodv::Aodv>(n, aodv::Config{}, RngStream(seed, "routing", n.id()));
  };
}

CbrSource::Config cbr_config(NodeId dst) {
  CbrSource::Config cfg;
  cfg.dst = dst;
  cfg.interval = milliseconds(100);
  cfg.start = seconds(1);
  cfg.stop = seconds(2);
  return cfg;
}

TEST(Cbr, SendsAtFixedIntervalFromStart) {
  TestNet net(line_positions(2), aodv_factory());
  CbrSource src(net.node(0), cbr_config(1));
  src.start();
  // Nothing before the start time.
  net.sim().run_until(milliseconds(999));
  EXPECT_EQ(src.packets_sent(), 0u);
  // Mid-flow: sends at 1.0, 1.1, ..., 1.5 s have fired by 1.55 s.
  net.sim().run_until(milliseconds(1550));
  EXPECT_EQ(src.packets_sent(), 6u);
  EXPECT_EQ(net.stats().data_originated(), 6u);
}

TEST(Cbr, StopBoundaryIsInclusive) {
  TestNet net(line_positions(2), aodv_factory());
  CbrSource src(net.node(0), cbr_config(1));
  src.start();
  net.run_for(seconds(5));
  // 1.0 .. 2.0 s inclusive at 100 ms spacing: 11 packets, then the first
  // tick past `stop` (2.1 s) halts the source for good.
  EXPECT_EQ(src.packets_sent(), 11u);
  EXPECT_EQ(net.stats().data_originated(), 11u);
  EXPECT_EQ(net.stats().data_delivered(), 11u);
}

TEST(Cbr, CrashedSourceMidFlowCountsAgainstPdrAndResumes) {
  TestNet net(line_positions(2), aodv_factory());
  auto cfg = cbr_config(1);
  cfg.stop = seconds(10);
  CbrSource src(net.node(0), cfg);
  src.start();

  net.sim().run_until(milliseconds(2050));
  const auto sent_before = src.packets_sent();
  const auto delivered_before = net.stats().data_delivered();
  EXPECT_GT(delivered_before, 0u);
  EXPECT_EQ(net.stats().drops(DropReason::kNodeDown), 0u);

  // Crash the source mid-flow: the application keeps offering packets (they
  // count as originated — offered load destroyed by the fault is PDR loss),
  // but every one is dropped at the node boundary and none is delivered.
  net.node(0).crash();
  net.sim().run_until(milliseconds(3050));
  EXPECT_EQ(src.packets_sent(), sent_before + 10);
  EXPECT_EQ(net.stats().data_originated(), src.packets_sent());
  EXPECT_EQ(net.stats().drops(DropReason::kNodeDown), 10u);
  EXPECT_EQ(net.stats().data_delivered(), delivered_before);

  // After restart the flow resumes (AODV re-discovers the one-hop route).
  net.node(0).restart();
  net.run_for(seconds(3));
  EXPECT_GT(net.stats().data_delivered(), delivered_before);
  EXPECT_EQ(net.stats().drops(DropReason::kNodeDown), 10u);
}

TEST(Cbr, CrashedDestinationReceivesNothing) {
  TestNet net(line_positions(2), aodv_factory());
  auto cfg = cbr_config(1);
  cfg.stop = seconds(10);
  CbrSource src(net.node(0), cfg);
  src.start();
  net.sim().run_until(milliseconds(2050));
  const auto delivered_before = net.stats().data_delivered();
  net.node(1).crash();
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), delivered_before);
  net.node(1).restart();
  net.run_for(seconds(3));
  EXPECT_GT(net.stats().data_delivered(), delivered_before);
}

OnOffSource::Config onoff_config(NodeId dst) {
  OnOffSource::Config cfg;
  cfg.dst = dst;
  cfg.interval = milliseconds(50);
  cfg.burst_mean = seconds(1);
  cfg.idle_mean = seconds(1);
  cfg.start = seconds(1);
  cfg.stop = seconds(21);
  return cfg;
}

TEST(OnOff, AlternatesBurstsWithIdlePeriods) {
  TestNet net(line_positions(2), aodv_factory());
  OnOffSource src(net.node(0), onoff_config(1), RngStream(7, "onoff", 0));
  src.start();
  net.sim().run_until(milliseconds(999));
  EXPECT_FALSE(src.sending());
  net.sim().run_until(milliseconds(1001));
  EXPECT_TRUE(src.sending());  // the first burst begins exactly at start
  net.run_for(seconds(25));
  // Over 20 s with equal mean ON and OFF periods the source must have sent
  // packets, but far fewer than a CBR source at the same interval would
  // (20 s / 50 ms = 400): the OFF gaps are real.
  EXPECT_GT(src.packets_sent(), 0u);
  EXPECT_LT(src.packets_sent(), 400u);
  EXPECT_EQ(net.stats().data_originated(), src.packets_sent());
}

TEST(OnOff, SameSeedIsReproducible) {
  std::uint32_t sent[2];
  for (int i = 0; i < 2; ++i) {
    TestNet net(line_positions(2), aodv_factory());
    OnOffSource src(net.node(0), onoff_config(1), RngStream(7, "onoff", 0));
    src.start();
    net.run_for(seconds(30));
    sent[i] = src.packets_sent();
  }
  EXPECT_EQ(sent[0], sent[1]);
}

TEST(OnOff, StopsAtStopTime) {
  TestNet net(line_positions(2), aodv_factory());
  auto cfg = onoff_config(1);
  cfg.stop = seconds(3);
  OnOffSource src(net.node(0), cfg, RngStream(7, "onoff", 0));
  src.start();
  net.run_for(seconds(4));
  const auto at_stop = src.packets_sent();
  net.run_for(seconds(10));
  EXPECT_EQ(src.packets_sent(), at_stop);
}

}  // namespace
}  // namespace manet
