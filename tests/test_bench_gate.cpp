// The benchmark gate is itself gated: these tests prove the comparison
// engine parses both producer shapes, tolerates noise inside the threshold,
// and — the fixture CI relies on — fails a simulated >25% slowdown.
#include "gate.hpp"

#include <gtest/gtest.h>

#include "scenario/sweep.hpp"

namespace manet::gate {
namespace {

using Entries = std::vector<Entry>;

Entries parse_ok(const std::string& text) {
  Entries out;
  std::string err;
  EXPECT_TRUE(extract_entries(text, out, err)) << err;
  return out;
}

TEST(BenchGate, ParsesGoogleBenchmarkJson) {
  const Entries e = parse_ok(R"({
    "context": {"date": "irrelevant", "host_name": "ci"},
    "benchmarks": [
      {"name": "EventQueueScheduleRun/1000", "run_type": "iteration",
       "real_time": 1.0e5, "items_per_second": 1.25e7},
      {"name": "EventQueueScheduleRun/1000_mean", "run_type": "aggregate",
       "items_per_second": 1.2e7},
      {"name": "NoItemsCounter", "real_time": 5.0}
    ]
  })");
  // Aggregate rows and rows without items_per_second are skipped.
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].name, "EventQueueScheduleRun/1000");
  EXPECT_DOUBLE_EQ(e[0].events_per_sec, 1.25e7);
  EXPECT_DOUBLE_EQ(e[0].wall_s, 0.0);
}

TEST(BenchGate, ParsesBaselineShape) {
  const Entries e = parse_ok(R"({
    "schema": 1,
    "entries": [
      {"name": "fig_pause_throughput", "events_per_sec": 8.1e6, "wall_s": 2.5},
      {"name": "fig_pause_throughput/AODV/pause:0", "events_per_sec": 7.9e6, "wall_s": 0.6}
    ]
  })");
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[1].name, "fig_pause_throughput/AODV/pause:0");
  EXPECT_DOUBLE_EQ(e[1].wall_s, 0.6);
}

TEST(BenchGate, SweepBaselineEmitterRoundTrips) {
  // SweepResult::to_baseline_json() must parse back into the same entries
  // bench_gate records — this is the contract between the two halves.
  SweepResult sweep;
  sweep.name = "fig_pause_throughput";
  sweep.events_per_sec = 5.0e6;
  sweep.wall_s = 3.0;
  SweepCellResult cell;
  cell.label = "AODV/pause:0";
  cell.events_per_sec = 4.5e6;
  cell.wall_s = 1.5;
  sweep.cells.push_back(std::move(cell));

  const Entries e = parse_ok(sweep.to_baseline_json());
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].name, "fig_pause_throughput");
  EXPECT_DOUBLE_EQ(e[0].events_per_sec, 5.0e6);
  EXPECT_EQ(e[1].name, "fig_pause_throughput/AODV/pause:0");
  EXPECT_DOUBLE_EQ(e[1].events_per_sec, 4.5e6);

  // And the gate's own serializer round-trips too.
  const Entries again = parse_ok(to_baseline_json(e));
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[1].name, e[1].name);
  EXPECT_DOUBLE_EQ(again[1].events_per_sec, e[1].events_per_sec);
}

TEST(BenchGate, ParsesFullSweepArtifact) {
  const Entries e = parse_ok(R"({
    "name": "fig_pause_throughput", "schema": 1,
    "wall_s": 2.0, "events_per_sec": 6.0e6,
    "cells": [
      {"label": "AODV/pause:0", "metrics": {"pdr": {"mean": 0.9, "se": 0.01}},
       "profile": {"wall_s": 1.0, "events_per_sec": 5.5e6, "runs": []}}
    ]
  })");
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[1].name, "fig_pause_throughput/AODV/pause:0");
  EXPECT_DOUBLE_EQ(e[1].events_per_sec, 5.5e6);
}

TEST(BenchGate, RejectsMalformedJson) {
  Entries out;
  std::string err;
  EXPECT_FALSE(extract_entries("{\"entries\": [", out, err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(extract_entries("{\"unknown\": 1}", out, err));
  EXPECT_NE(err.find("unrecognized"), std::string::npos);
}

TEST(BenchGate, NoiseWithinThresholdPasses) {
  const Entries baseline = {{"kernel", 10.0e6, 1.0}};
  const Entries fresh = {{"kernel", 8.0e6, 1.2}};  // -20%: inside the 25% band
  const CheckResult r = check(baseline, fresh, {});
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_EQ(r.compared, 1);
}

TEST(BenchGate, SimulatedLargeSlowdownFails) {
  // The acceptance fixture: a >25% events/sec drop must fail the gate.
  const Entries baseline = {{"EventQueueScheduleRun/100000", 4.7e6, 0.0},
                            {"ScenarioEventRate", 7.8e6, 0.0}};
  Entries fresh = baseline;
  fresh[1].events_per_sec = baseline[1].events_per_sec * 0.70;  // -30%
  const CheckResult r = check(baseline, fresh, {});
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("ScenarioEventRate"), std::string::npos);
  EXPECT_NE(r.report.find("FAIL"), std::string::npos);
}

TEST(BenchGate, ImprovementsAlwaysPass) {
  const Entries baseline = {{"kernel", 5.0e6, 2.0}};
  const Entries fresh = {{"kernel", 9.0e6, 1.0}};
  EXPECT_TRUE(check(baseline, fresh, {}).ok);
}

TEST(BenchGate, MissingEntryFails) {
  // A benchmark silently dropped from the fresh run must not un-gate itself.
  const Entries baseline = {{"kernel", 5.0e6, 0.0}, {"vanished", 3.0e6, 0.0}};
  const Entries fresh = {{"kernel", 5.0e6, 0.0}};
  const CheckResult r = check(baseline, fresh, {});
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("missing"), std::string::npos);
  // New benchmarks in fresh (absent from baseline) are fine.
  EXPECT_TRUE(check(fresh, baseline, {}).ok);
}

TEST(BenchGate, WallClockOnlyGatesWhenStrict) {
  const Entries baseline = {{"sweep", 5.0e6, 1.0}};
  const Entries fresh = {{"sweep", 5.0e6, 2.0}};  // 2x slower wall-clock
  EXPECT_TRUE(check(baseline, fresh, {}).ok);     // advisory by default
  CheckOptions strict;
  strict.strict_wall = true;
  const CheckResult r = check(baseline, fresh, strict);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failures[0].find("wall_s"), std::string::npos);
}

TEST(BenchGate, CustomThresholdRespected) {
  const Entries baseline = {{"kernel", 10.0e6, 0.0}};
  const Entries fresh = {{"kernel", 8.9e6, 0.0}};  // -11%
  CheckOptions tight;
  tight.max_regress = 0.10;
  EXPECT_FALSE(check(baseline, fresh, tight).ok);
  CheckOptions loose;
  loose.max_regress = 0.15;
  EXPECT_TRUE(check(baseline, fresh, loose).ok);
}

}  // namespace
}  // namespace manet::gate
