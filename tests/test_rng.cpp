#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace manet {
namespace {

TEST(Rng, Deterministic) {
  RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NamedStreamsAreIndependent) {
  RngStream a(7, "mobility", 0), b(7, "traffic", 0), c(7, "mobility", 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NamedStreamsReproducible) {
  RngStream a(7, "mac", 3), b(7, "mac", 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  RngStream r(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  RngStream r(6);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = r.uniform(10.0, 20.0);
    EXPECT_GE(u, 10.0);
    EXPECT_LT(u, 20.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000.0, 15.0, 0.05);
}

TEST(Rng, UniformIntInclusiveBounds) {
  RngStream r(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleton) {
  RngStream r(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  RngStream r(10);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntIsUnbiased) {
  // Chi-square-ish check over a small range.
  RngStream r(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.uniform_int(0, kBuckets - 1)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 400);  // ~4 sigma
  }
}

TEST(Rng, ExponentialMean) {
  RngStream r(12);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = r.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100'000.0, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  RngStream r(13);
  double sum = 0.0, ss = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = r.normal(5.0, 3.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / kN;
  const double var = ss / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  RngStream r(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, WorksWithStdShuffleConcept) {
  static_assert(RngStream::min() == 0);
  static_assert(RngStream::max() == ~0ULL);
  RngStream r(15);
  EXPECT_NE(r(), r());
}

TEST(Rng, Fnv1aStable) {
  // Hash must be stable across runs: stream derivation depends on it.
  EXPECT_EQ(fnv1a("mobility"), fnv1a("mobility"));
  EXPECT_NE(fnv1a("mobility"), fnv1a("traffic"));
}

}  // namespace
}  // namespace manet
